// Multichip: compress the cache-coherent links of a 4-chip NUMA system.
//
// This example reproduces the paper's second use case (§V-B): a
// four-node CMP with round-robin page interleaving, where node 0 runs
// the program and three point-to-point coherence links (QPI/NVLINK
// class) carry remote fills and dirty write-backs. One CABLE pipeline
// sits on each link pair.
//
// Run with: go run ./examples/multichip
package main

import (
	"fmt"
	"log"

	"cable"
)

func main() {
	for _, b := range []string{"zeusmp", "soplex", "dealII", "omnetpp"} {
		cfg := cable.DefaultMultiChipConfig(b)
		cfg.Accesses = 20000
		cfg.LLCBytes = 256 << 10
		res, err := cable.RunMultiChip(cfg)
		if err != nil {
			log.Fatal(err)
		}
		remoteFrac := float64(res.RemoteFills) / float64(res.RemoteFills+res.LocalAccesses)
		fmt.Printf("%-10s cable %5.2fx   gzip %5.2fx   cpack %5.2fx   (%.0f%% of fills crossed a link, %d dirty WBs)\n",
			b, res.Ratio("cable"), res.Ratio("gzip"), res.Ratio("cpack"),
			100*remoteFrac, res.DirtyWBs)
	}
	fmt.Println("\ncoherence traffic includes dirty write-backs, which are harder")
	fmt.Println("to compress — the paper notes slightly lower ratios here")
}
