// Memlink: compress the off-chip memory link of a manycore chip.
//
// This example reproduces the paper's primary use case (§V-A): an
// on-chip LLC backed by an off-chip DRAM-buffer L4 over a narrow
// 16-bit link, as in IBM POWER8/9 or Intel Skylake eDRAM systems. It
// runs a few SPEC2006-like workloads through the functional simulator
// and compares CABLE against BDI, CPACK, LBE256 and a gzip-class
// streaming compressor on identical traffic.
//
// Run with: go run ./examples/memlink
package main

import (
	"fmt"
	"log"

	"cable"
)

func main() {
	benchmarks := []string{"mcf", "dealII", "omnetpp", "gobmk", "bzip2", "povray"}
	schemes := []string{"bdi", "cpack", "lbe256", "gzip", "cable"}

	fmt.Printf("%-10s", "benchmark")
	for _, s := range schemes {
		fmt.Printf("%10s", s)
	}
	fmt.Println()

	for _, b := range benchmarks {
		cfg := cable.DefaultMemoryLinkConfig(b)
		cfg.AccessesPerProgram = 20000
		cfg.Chip.LLCBytes = 256 << 10 // scaled-down chip for a fast demo
		cfg.Chip.L4Bytes = 1 << 20
		res, err := cable.RunMemoryLink(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", b)
		for _, s := range schemes {
			fmt.Printf("%9.2fx", res.Ratio(s))
		}
		fmt.Println()
	}
	fmt.Println("\nratios are uncompressed/compressed on the off-chip link,")
	fmt.Println("after 16-bit flit quantization (32x max)")
}
