// Quickstart: drive a CABLE link by hand.
//
// This example builds the smallest possible CABLE deployment — an
// inclusive home/remote cache pair joined by a HomeEnd/RemoteEnd — and
// walks one line through the full protocol: fill an original line,
// fill a similar line, and watch the second one travel as a tiny DIFF
// plus a reference pointer instead of 64 raw bytes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	"cable"
)

func main() {
	home, err := cable.NewCache(cable.CacheConfig{
		Name: "l4", SizeBytes: 256 << 10, Ways: 16, LineSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	remote, err := cable.NewCache(cable.CacheConfig{
		Name: "llc", SizeBytes: 64 << 10, Ways: 8, LineSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	he, re, err := cable.NewLink(cable.DefaultConfig(), home, remote)
	if err != nil {
		log.Fatal(err)
	}

	// Two cache lines at unrelated addresses with similar content —
	// say, two copies of the same struct differing in one field.
	lineA := make([]byte, 64)
	for i := range lineA {
		lineA[i] = byte(i*37 + 11)
	}
	lineB := append([]byte(nil), lineA...)
	binary.LittleEndian.PutUint32(lineB[24:], 0xFEEDFACE)

	const addrA, addrB = 0x1000, 0x9A7 // different sets, unrelated tags
	home.Insert(addrA, lineA, cable.Shared)
	home.Insert(addrB, lineB, cable.Shared)

	// 1. The remote cache requests line A (a cold miss). The request
	// carries the way-replacement info, as on the UltraSPARC T2.
	send := func(addr uint64) {
		idx := remote.IndexOf(addr)
		way := remote.VictimWay(idx)
		p, lat, err := he.EncodeFill(addr, cable.Shared, way)
		if err != nil {
			log.Fatal(err)
		}
		data, err := re.DecodeFill(p)
		if err != nil {
			log.Fatal(err)
		}
		want, _, _ := home.Probe(addr)
		if !bytes.Equal(data, want.Data) {
			log.Fatalf("decode mismatch for %#x", addr)
		}
		remote.InsertAt(addr, data, cable.Shared, way)
		re.OnFillInstalled(cable.LineID{Index: idx, Way: way}, data, cable.Shared)
		kind := "raw"
		if p.Compressed {
			kind = fmt.Sprintf("compressed, %d refs", len(p.Refs))
		}
		fmt.Printf("fill %#06x: %3d bits on the wire (%s), pipeline latency %d cycles\n",
			addr, p.Bits(he.RemoteLIDBits()), kind, lat.Total())
	}

	send(addrA) // cold: nothing to reference yet
	send(addrB) // warm: line A is now a dictionary entry in both caches

	st := he.Stats
	fmt.Printf("\nhome end: %d fills, %d used references, payload %d/%d bits (%.1fx)\n",
		st.Fills, st.DiffWins, st.PayloadBits, st.SourceBits,
		float64(st.SourceBits)/float64(st.PayloadBits))
}
