// Engines: plug different compression algorithms into the CABLE
// framework.
//
// CABLE is a framework, not an algorithm (§II-B): it finds reference
// lines; the DIFF coding is delegated to a pluggable engine. This
// example first uses the engines directly on a crafted line (with and
// without a reference), then swaps the engine inside a full memory-link
// simulation, reproducing the Fig 20 ordering:
// ORACLE > LBE > gzip > CPACK128.
//
// Run with: go run ./examples/engines
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	"cable"
)

func main() {
	// A reference line and a byte-shifted near-copy: word-aligned
	// engines struggle with the shift; the oracle does not.
	ref := make([]byte, 64)
	for i := range ref {
		ref[i] = byte(i*53 + 7)
	}
	line := make([]byte, 64)
	copy(line[1:], ref[:63]) // shifted by one byte
	binary.LittleEndian.PutUint32(line[40:], 0xABCD1234)

	fmt.Println("direct engine use on a byte-shifted near-copy (64B line):")
	for _, name := range []string{"cpack128", "lbe", "gzip-seeded", "oracle"} {
		e, err := cable.NewEngine(name)
		if err != nil {
			log.Fatal(err)
		}
		bare := e.Compress(line, nil)
		seeded := e.Compress(line, [][]byte{ref})
		dec, err := e.Decompress(seeded, [][]byte{ref}, 64)
		if err != nil || !bytes.Equal(dec, line) {
			log.Fatalf("%s: round trip broken: %v", name, err)
		}
		fmt.Printf("  %-12s %4d bits alone, %4d bits with reference\n",
			name, bare.NBits, seeded.NBits)
	}

	fmt.Println("\nCABLE+engine on a full memory-link simulation (dealII):")
	for _, name := range []string{"cpack128", "gzip-seeded", "lbe", "oracle"} {
		cfg := cable.DefaultMemoryLinkConfig("dealII")
		cfg.AccessesPerProgram = 15000
		cfg.Chip.LLCBytes = 256 << 10
		cfg.Chip.L4Bytes = 1 << 20
		cfg.Chip.Cable.EngineName = name
		cfg.WithMeters = false
		res, err := cable.RunMemoryLink(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  CABLE+%-12s %5.2fx\n", name, res.Ratio("cable"))
	}
}
