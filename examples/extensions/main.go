// Extensions: the paper's §IV design variants, side by side.
//
// Baseline CABLE assumes inclusive caches, non-silent evictions and
// point-to-point ordered links. Section IV relaxes each assumption:
//
//   - §IV-B silent evictions: with a 1-1 home mapping, clean victims
//     need no eviction notices — the home tracks displacement from the
//     replacement-way info already in every request.
//   - §IV-C non-inclusive hierarchies: a Home Agent that does not cache
//     everything the remote holds compresses opportunistically and
//     sends write-backs reference-free.
//   - §IV-D super-WMT: many links pool one capacity-managed way-map
//     instead of per-link full tables.
//
// Run with: go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	"cable"
)

func main() {
	const bench = "dealII"

	// Baseline inclusive memory link.
	base := cable.DefaultMemoryLinkConfig(bench)
	base.AccessesPerProgram = 20000
	base.Chip.LLCBytes = 256 << 10
	base.Chip.L4Bytes = 1 << 20
	base.WithMeters = false
	b, err := cable.RunMemoryLink(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (inclusive, explicit evictions):   %5.2fx, %6d eviction notices\n",
		b.Ratio("cable"), b.Chip.Notices)

	// §IV-B: silent evictions.
	silent := base
	silent.Chip.SilentEvictions = true
	s, err := cable.RunMemoryLink(silent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("silent evictions (§IV-B):                   %5.2fx, %6d eviction notices\n",
		s.Ratio("cable"), s.Chip.Notices)

	// §IV-C: non-inclusive Home Agent.
	ni := cable.DefaultNonInclusiveConfig(bench)
	ni.Accesses = 20000
	ni.RemoteBytes = 256 << 10
	ni.HomeBytes = 512 << 10
	n, err := cable.RunNonInclusive(ni)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-inclusive home agent (§IV-C):           %5.2fx, %6d forwarded fills\n",
		n.Cable.Value(), n.ForwardedFills)

	// §IV-D: pooled super-WMT on the 4-chip coherence links.
	mc := cable.DefaultMultiChipConfig(bench)
	mc.Accesses = 20000
	mc.LLCBytes = 256 << 10
	mc.WithMeters = false
	private, err := cable.RunMultiChip(mc)
	if err != nil {
		log.Fatal(err)
	}
	mc.PooledWMT = true
	mc.PooledWMTFactor = 0.25
	pooled, err := cable.RunMultiChip(mc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coherence links, private WMTs:              %5.2fx\n", private.Ratio("cable"))
	fmt.Printf("coherence links, pooled super-WMT (§IV-D):  %5.2fx (quarter capacity)\n",
		pooled.Ratio("cable"))
}
