package main

import (
	"encoding/json"
	"fmt"
)

// validateTrace checks that data parses as Chrome trace-event JSON
// (object format): a top-level object with a traceEvents array whose
// entries all carry a name and a phase, with numeric ts/dur on
// complete events and pid/tid fields present. This is the same check
// the CI trace-export smoke runs.
func validateTrace(data []byte) error {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return fmt.Errorf("not a JSON object: %v", err)
	}
	raw, ok := top["traceEvents"]
	if !ok {
		return fmt.Errorf("missing traceEvents array")
	}
	var events []map[string]json.RawMessage
	if err := json.Unmarshal(raw, &events); err != nil {
		return fmt.Errorf("traceEvents is not an array of objects: %v", err)
	}
	for i, e := range events {
		var name, ph string
		if err := unmarshalField(e, "name", &name); err != nil || name == "" {
			return fmt.Errorf("event %d: missing name", i)
		}
		if err := unmarshalField(e, "ph", &ph); err != nil || ph == "" {
			return fmt.Errorf("event %d (%s): missing ph", i, name)
		}
		if ph == "M" {
			continue // metadata events need no timestamp
		}
		var ts float64
		if err := unmarshalField(e, "ts", &ts); err != nil {
			return fmt.Errorf("event %d (%s): missing numeric ts", i, name)
		}
		if ts < 0 {
			return fmt.Errorf("event %d (%s): negative ts %v", i, name, ts)
		}
		if ph == "X" {
			var dur float64
			if err := unmarshalField(e, "dur", &dur); err != nil || dur <= 0 {
				return fmt.Errorf("event %d (%s): complete event without positive dur", i, name)
			}
		}
		for _, k := range []string{"pid", "tid"} {
			var v float64
			if err := unmarshalField(e, k, &v); err != nil {
				return fmt.Errorf("event %d (%s): missing numeric %s", i, name, k)
			}
		}
	}
	return nil
}

func unmarshalField(e map[string]json.RawMessage, key string, out interface{}) error {
	raw, ok := e[key]
	if !ok {
		return fmt.Errorf("missing %s", key)
	}
	return json.Unmarshal(raw, out)
}
