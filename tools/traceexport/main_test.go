package main

import (
	"encoding/json"
	"testing"
)

func sampleTimeline() *timelineFile {
	return &timelineFile{
		Window: 512,
		Cells: []cellTimeline{
			{
				Cell: "memlink/bzip2/abcdef", Now: 4096,
				Events: []event{
					{VT: 1, Kind: "encode", Track: "cable", Class: "diff1", Bits: 120, Skip: false, DurNs: 2500},
					{VT: 1, Kind: "decode", Track: "cable", Bits: 120},
					{VT: 2, Kind: "encode", Track: "cable", Class: "raw", Bits: 512, Skip: true},
					{VT: 3, Kind: "fault", Track: "cable"},
					{VT: 3, Kind: "degrade", Track: "cable", Bits: 520},
				},
			},
			{
				Cell: "multichip/gcc/123456", Now: 2048,
				Events: []event{
					{VT: 7, Kind: "wb-encode", Track: "link1", Bits: 64},
					{VT: 9, Kind: "wb-decode", Track: "link0", Bits: 64},
				},
			},
		},
		Memo: []memoEvent{{Hit: false, WallNs: 1000}, {Hit: true, WallNs: 5000}},
	}
}

func TestConvertShape(t *testing.T) {
	tf := convert(sampleTimeline())
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	var spans, instants, meta int
	pids := map[int]bool{}
	for _, e := range tf.TraceEvents {
		pids[e.Pid] = true
		switch e.Ph {
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Fatalf("span %q has no duration", e.Name)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	// 5 spans (3 encodes/decodes + 2 writebacks), 2 instants + 2 memo
	// instants, metadata: 2 process names + 3 thread names + memo process.
	if spans != 5 {
		t.Fatalf("spans = %d, want 5", spans)
	}
	if instants != 4 {
		t.Fatalf("instants = %d, want 4", instants)
	}
	if meta != 6 {
		t.Fatalf("metadata events = %d, want 6", meta)
	}
	// Cells land on pids 1..N; memo on pid 0.
	for _, pid := range []int{0, 1, 2} {
		if !pids[pid] {
			t.Fatalf("missing pid %d in %v", pid, pids)
		}
	}
	// The explicit wall-clock duration survives in microseconds.
	found := false
	for _, e := range tf.TraceEvents {
		if e.Ph == "X" && e.Dur == 2.5 {
			found = true
		}
	}
	if !found {
		t.Fatal("2500ns span did not convert to 2.5µs")
	}
}

// TestConvertValidates: the converter's output passes the validator
// (the same pairing the CI smoke runs), and stays deterministic.
func TestConvertValidates(t *testing.T) {
	a, err := json.Marshal(convert(sampleTimeline()))
	if err != nil {
		t.Fatal(err)
	}
	if err := validateTrace(a); err != nil {
		t.Fatalf("converted trace invalid: %v", err)
	}
	b, err := json.Marshal(convert(sampleTimeline()))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("conversion is not deterministic")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []string{
		`[]`,                             // array, not object
		`{}`,                             // no traceEvents
		`{"traceEvents":[{"ph":"X"}]}`,   // missing name
		`{"traceEvents":[{"name":"x"}]}`, // missing ph
		`{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":0,"tid":0}]}`,  // span without dur
		`{"traceEvents":[{"name":"x","ph":"i","ts":-1,"pid":0,"tid":0}]}`, // negative ts
		`{"traceEvents":[{"name":"x","ph":"i","ts":1,"tid":0}]}`,          // missing pid
	}
	for _, s := range bad {
		if err := validateTrace([]byte(s)); err == nil {
			t.Fatalf("validator accepted %s", s)
		}
	}
	good := `{"traceEvents":[{"name":"p","ph":"M","pid":1,"tid":0,"args":{"name":"cell"}},` +
		`{"name":"encode","ph":"X","ts":1,"dur":1,"pid":1,"tid":1}]}`
	if err := validateTrace([]byte(good)); err != nil {
		t.Fatalf("validator rejected a good trace: %v", err)
	}
}

func TestParseArgs(t *testing.T) {
	in, out, v := parseArgs([]string{"-in", "a.json", "-o", "b.json"})
	if in != "a.json" || out != "b.json" || v != "" {
		t.Fatalf("got %q %q %q", in, out, v)
	}
	_, _, v = parseArgs([]string{"-validate", "t.json"})
	if v != "t.json" {
		t.Fatalf("validate = %q", v)
	}
}
