// Command traceexport converts a flight-recorder timeline dump (the
// cablesim/cablereport -timeline flag) into Chrome trace-event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Usage:
//
//	traceexport -in timeline.json -o trace.json
//	traceexport < timeline.json > trace.json
//	traceexport -validate trace.json   # check a converted file
//
// Mapping: each flight cell becomes a trace process (pid), each link
// track a thread (tid) within it, both labeled with metadata events.
// Encode/decode/write-back spans become complete ("X") events whose ts
// is the virtual-time tick in microseconds — a stable, comparable
// x-axis across runs — and whose duration is the recorded wall-clock
// span when present (1 µs placeholder otherwise, so spans stay visible).
// Faults and raw-fallback degradations become instant ("i") events.
// Cell-memo hit/miss events (volatile timelines only) land on a
// dedicated pid-0 process.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// timelineFile mirrors obs.FlightTimelineDump (duplicated here so the
// tool stays a standalone consumer of the documented JSON format).
type timelineFile struct {
	Window int            `json:"window"`
	Cells  []cellTimeline `json:"cells"`
	Memo   []memoEvent    `json:"memo_events"`
}

type cellTimeline struct {
	Cell          string  `json:"cell"`
	Now           uint64  `json:"now"`
	DroppedEvents uint64  `json:"dropped_events"`
	Events        []event `json:"events"`
}

type event struct {
	VT    uint64 `json:"vt"`
	Kind  string `json:"kind"`
	Track string `json:"track"`
	Class string `json:"class"`
	Bits  uint32 `json:"bits"`
	Skip  bool   `json:"skip"`
	DurNs int64  `json:"dur_ns"`
}

type memoEvent struct {
	Hit    bool  `json:"hit"`
	WallNs int64 `json:"wall_ns"`
}

// traceEvent is one Chrome trace-event entry (the JSON Array Format's
// event object; see the chromium trace-event documentation).
type traceEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func main() {
	in, out, validate := parseArgs(os.Args[1:])
	if validate != "" {
		data, err := os.ReadFile(validate)
		if err != nil {
			fatal(err)
		}
		if err := validateTrace(data); err != nil {
			fatal(fmt.Errorf("%s: %v", validate, err))
		}
		fmt.Printf("%s: valid Chrome trace-event JSON\n", validate)
		return
	}

	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var tl timelineFile
	if err := json.NewDecoder(r).Decode(&tl); err != nil {
		fatal(fmt.Errorf("parse timeline: %v", err))
	}

	tf := convert(&tl)

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(tf); err != nil {
		fatal(err)
	}
}

func parseArgs(args []string) (in, out, validate string) {
	usage := func() {
		fmt.Fprintln(os.Stderr, "usage: traceexport [-in timeline.json] [-o trace.json] | traceexport -validate trace.json")
		os.Exit(2)
	}
	for i := 0; i < len(args); i++ {
		next := func() string {
			i++
			if i >= len(args) {
				usage()
			}
			return args[i]
		}
		switch args[i] {
		case "-in", "--in":
			in = next()
		case "-o", "--o", "-out", "--out":
			out = next()
		case "-validate", "--validate":
			validate = next()
		case "-h", "-help", "--help":
			usage()
		default:
			fmt.Fprintf(os.Stderr, "traceexport: unknown flag %q\n", args[i])
			usage()
		}
	}
	return in, out, validate
}

// convert maps the timeline onto trace events. Cells are emitted in
// file order (the dump is already key-sorted), so conversion of a
// deterministic timeline is itself deterministic.
func convert(tl *timelineFile) *traceFile {
	tf := &traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	meta := func(pid, tid int, name, label string) {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: name, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]interface{}{"name": label},
		})
	}
	for ci, cell := range tl.Cells {
		pid := ci + 1
		meta(pid, 0, "process_name", cell.Cell)
		// Tracks get stable tids in first-appearance order.
		tids := map[string]int{}
		tidOf := func(track string) int {
			if t, ok := tids[track]; ok {
				return t
			}
			t := len(tids) + 1
			tids[track] = t
			meta(pid, t, "thread_name", track)
			return t
		}
		// Pre-register tracks in sorted order so tids don't depend on
		// which event kind happens to appear first.
		names := map[string]bool{}
		for _, e := range cell.Events {
			names[e.Track] = true
		}
		sorted := make([]string, 0, len(names))
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		for _, n := range sorted {
			tidOf(n)
		}
		for _, e := range cell.Events {
			te := traceEvent{Name: e.Kind, Ts: float64(e.VT), Pid: pid, Tid: tidOf(e.Track)}
			switch e.Kind {
			case "fault", "degrade":
				te.Ph = "i"
				te.S = "t"
				if e.Bits > 0 {
					te.Args = map[string]interface{}{"bits": e.Bits}
				}
			default:
				te.Ph = "X"
				te.Dur = float64(e.DurNs) / 1000.0
				if te.Dur <= 0 {
					te.Dur = 1 // keep zero-duration virtual spans visible
				}
				args := map[string]interface{}{"bits": e.Bits}
				if e.Class != "" {
					args["class"] = e.Class
				}
				if e.Skip {
					args["skip"] = true
				}
				te.Args = args
			}
			tf.TraceEvents = append(tf.TraceEvents, te)
		}
	}
	if len(tl.Memo) > 0 {
		meta(0, 0, "process_name", "cell-memo")
		base := tl.Memo[0].WallNs
		for _, m := range tl.Memo {
			name := "memo-miss"
			if m.Hit {
				name = "memo-hit"
			}
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: name, Ph: "i", S: "g",
				Ts: float64(m.WallNs-base) / 1000.0,
			})
		}
	}
	return tf
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "traceexport: %v\n", err)
	os.Exit(1)
}
