package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// runCompare implements `benchjson -compare old.json new.json
// [-max-regress PCT]`. Benchmarks are matched by base name and cpu
// count across the two snapshots; for each match it prints the ns/op
// delta, and returns 1 if any benchmark slowed down by more than
// maxRegress percent (default 10). Benchmarks present in only one file
// are listed but never gate — snapshots grow new benchmarks every PR.
func runCompare(args []string, out, errw io.Writer) int {
	var paths []string
	maxRegress := 10.0
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-max-regress", "--max-regress":
			i++
			if i >= len(args) {
				fmt.Fprintln(errw, "benchjson: -max-regress needs a value")
				return 2
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v < 0 {
				fmt.Fprintf(errw, "benchjson: bad -max-regress %q\n", args[i])
				return 2
			}
			maxRegress = v
		default:
			paths = append(paths, args[i])
		}
	}
	if len(paths) != 2 {
		fmt.Fprintln(errw, "usage: benchjson -compare old.json new.json [-max-regress PCT]")
		return 2
	}
	oldF, err := loadBenchFile(paths[0])
	if err != nil {
		fmt.Fprintf(errw, "benchjson: %v\n", err)
		return 2
	}
	newF, err := loadBenchFile(paths[1])
	if err != nil {
		fmt.Fprintf(errw, "benchjson: %v\n", err)
		return 2
	}

	matches, oldOnly, newOnly := matchResults(oldF.Results, newF.Results)
	if len(oldF.Results) == 0 || len(newF.Results) == 0 {
		// An empty snapshot means the bench run itself produced nothing —
		// that is a broken input, not a benign disjoint set.
		fmt.Fprintf(errw, "benchjson: %s has no benchmark results\n", pickEmpty(paths, oldF, newF))
		return 2
	}

	fmt.Fprintf(out, "%-44s %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	failed := 0
	for _, m := range matches {
		delta := 0.0
		if m.oldNs > 0 {
			delta = (m.newNs - m.oldNs) / m.oldNs * 100
		}
		mark := ""
		if delta > maxRegress {
			mark = "  REGRESSION"
			failed++
		}
		fmt.Fprintf(out, "%-44s %12.1f %12.1f %+8.1f%%%s\n", m.name, m.oldNs, m.newNs, delta, mark)
	}
	// Unmatched benchmarks are reported but never gate: snapshots grow
	// new benchmarks (and retire old ones) every PR, and a gate that
	// errors on them would force lockstep snapshot updates.
	for _, n := range newOnly {
		fmt.Fprintf(out, "%-44s new (not in %s)\n", n, paths[0])
	}
	for _, n := range oldOnly {
		fmt.Fprintf(out, "%-44s removed (not in %s)\n", n, paths[1])
	}
	if failed > 0 {
		fmt.Fprintf(errw, "benchjson: %d benchmark(s) regressed by more than %.0f%%\n", failed, maxRegress)
		return 1
	}
	switch {
	case len(matches) == 0:
		fmt.Fprintf(out, "ok: no benchmarks in common (%d new, %d removed) — nothing gated\n", len(newOnly), len(oldOnly))
	default:
		fmt.Fprintf(out, "ok: %d benchmark(s) within %.0f%% of %s (%d new, %d removed)\n",
			len(matches), maxRegress, paths[0], len(newOnly), len(oldOnly))
	}
	return 0
}

// pickEmpty names the snapshot(s) with no results for the error path.
func pickEmpty(paths []string, oldF, newF *benchFile) string {
	switch {
	case len(oldF.Results) == 0 && len(newF.Results) == 0:
		return paths[0] + " and " + paths[1]
	case len(oldF.Results) == 0:
		return paths[0]
	default:
		return paths[1]
	}
}

func loadBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

type comparePair struct {
	name         string
	oldNs, newNs float64
}

// matchResults pairs benchmarks across snapshots by (base name, cpus).
// The pkg field is intentionally ignored: older snapshots were written
// before benchjson recorded packages, so keying on it would silently
// skip every comparison against them.
func matchResults(oldR, newR []benchResult) (matches []comparePair, oldOnly, newOnly []string) {
	key := func(r benchResult) string {
		base, cpus := splitCPU(r.Name)
		return base + "-" + strconv.Itoa(cpus)
	}
	oldBy := map[string]benchResult{}
	for _, r := range oldR {
		if _, dup := oldBy[key(r)]; !dup {
			oldBy[key(r)] = r
		}
	}
	seen := map[string]bool{}
	for _, r := range newR {
		k := key(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		if o, ok := oldBy[k]; ok {
			matches = append(matches, comparePair{name: r.Name, oldNs: o.NsPerOp, newNs: r.NsPerOp})
		} else {
			newOnly = append(newOnly, r.Name)
		}
	}
	for k, r := range oldBy {
		if !seen[k] {
			oldOnly = append(oldOnly, r.Name)
		}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].name < matches[j].name })
	sort.Strings(oldOnly)
	sort.Strings(newOnly)
	return matches, oldOnly, newOnly
}
