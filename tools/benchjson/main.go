// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a stable JSON array on stdout, so benchmark snapshots can
// be committed (see the Makefile's bench-json and bench-scaling
// targets) and diffed across PRs without parsing bench text by hand.
//
// It also compares two such snapshots:
//
//	benchjson -compare old.json new.json -max-regress 10
//
// prints a per-benchmark ns/op delta table for every benchmark present
// in both files (matched by base name and cpu count) and exits non-zero
// if any slowed down by more than the given percentage — the CI
// perf-regression gate.
//
// Each result records the package it came from (the most recent "pkg:"
// header — BENCH_pr5.json wrongly stamped one file-level pkg on every
// result) and the GOMAXPROCS suffix `go test -cpu` appends to benchmark
// names. For scaling families run at -cpu 1,2,4,... the converter also
// derives speedup and per-core efficiency against the same benchmark's
// 1-cpu baseline, which is what the README's scaling table quotes.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchResult is one benchmark line.
type benchResult struct {
	Name string `json:"name"`
	Pkg  string `json:"pkg,omitempty"`
	// Cpus is the GOMAXPROCS the benchmark ran under (the -N name
	// suffix); 1 when the name carries no suffix.
	Cpus       int     `json:"cpus"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerSec   float64 `json:"mb_per_sec,omitempty"`
	// bytes/allocs are not omitempty: the bench targets always pass
	// -benchmem, and 0 allocs/op is the encode path's headline.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Speedup and Efficiency are filled for results whose (pkg, base
	// name) also ran at 1 cpu: ns@1cpu / ns@Ncpu, and that divided by N.
	Speedup    float64 `json:"speedup,omitempty"`
	Efficiency float64 `json:"efficiency,omitempty"`
	// Extra holds custom b.ReportMetric units (the mesh soak's
	// transfers/s), keyed by unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type benchFile struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	Results []benchResult `json:"results"`
}

// benchLine matches the fixed prefix; optional metrics (MB/s, B/op,
// allocs/op) can appear in any combination after it.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op`)
	bytesOp    = regexp.MustCompile(`([\d.]+) B/op`)
	allocsOp   = regexp.MustCompile(`(\d+) allocs/op`)
	throughput = regexp.MustCompile(`([\d.]+) MB/s`)
	metricPair = regexp.MustCompile(`([\d.]+) ([A-Za-z][^\s]*)`)
	cpuSuffix  = regexp.MustCompile(`^(.+)-(\d+)$`)
)

// splitCPU separates the -N GOMAXPROCS suffix go test appends from the
// base benchmark name; a name without one ran at 1.
func splitCPU(name string) (base string, cpus int) {
	if m := cpuSuffix.FindStringSubmatch(name); m != nil {
		if n, err := strconv.Atoi(m[2]); err == nil && n > 0 {
			return m[1], n
		}
	}
	return name, 1
}

// collapseMin folds repeated `-count N` samples of the same benchmark
// into the fastest one. Minimum-of-N is the noise-robust estimator for
// benchmark timing: scheduler preemption and frequency scaling only
// ever add time, so on a shared VM the minimum tracks the code while
// the mean tracks the neighbours. First-appearance order is kept so
// snapshots diff cleanly.
func collapseMin(results []benchResult) []benchResult {
	seen := map[string]int{}
	collapsed := make([]benchResult, 0, len(results))
	for _, r := range results {
		key := r.Pkg + " " + r.Name
		if i, ok := seen[key]; ok {
			if r.NsPerOp < collapsed[i].NsPerOp {
				collapsed[i] = r
			}
			continue
		}
		seen[key] = len(collapsed)
		collapsed = append(collapsed, r)
	}
	return collapsed
}

func main() {
	// The compare syntax puts positional paths between flags, which the
	// flag package cannot parse; compare.go scans os.Args directly.
	if len(os.Args) > 1 && (os.Args[1] == "-compare" || os.Args[1] == "--compare") {
		os.Exit(runCompare(os.Args[2:], os.Stdout, os.Stderr))
	}
	out := benchFile{Results: []benchResult{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := benchResult{Name: m[1], Pkg: pkg, Iterations: iters, NsPerOp: ns}
		_, r.Cpus = splitCPU(r.Name)
		if bm := bytesOp.FindStringSubmatch(line); bm != nil {
			b, _ := strconv.ParseFloat(bm[1], 64)
			r.BytesPerOp = int64(b)
		}
		if am := allocsOp.FindStringSubmatch(line); am != nil {
			r.AllocsPerOp, _ = strconv.ParseInt(am[1], 10, 64)
		}
		if tm := throughput.FindStringSubmatch(line); tm != nil {
			r.MBPerSec, _ = strconv.ParseFloat(tm[1], 64)
		}
		// Everything after the ns/op column is `value unit` pairs; the
		// units the struct doesn't already carry came from
		// b.ReportMetric and go into Extra verbatim.
		for _, pm := range metricPair.FindAllStringSubmatch(line[len(m[0]):], -1) {
			switch pm[2] {
			case "ns/op", "MB/s", "B/op", "allocs/op":
				continue
			}
			v, err := strconv.ParseFloat(pm[1], 64)
			if err != nil {
				continue
			}
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[pm[2]] = v
		}
		out.Results = append(out.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	out.Results = collapseMin(out.Results)

	// Baselines: first 1-cpu result per (pkg, base name).
	base1 := map[string]float64{}
	for _, r := range out.Results {
		base, cpus := splitCPU(r.Name)
		key := r.Pkg + " " + base
		if cpus == 1 {
			if _, ok := base1[key]; !ok {
				base1[key] = r.NsPerOp
			}
		}
	}
	for i := range out.Results {
		r := &out.Results[i]
		base, cpus := splitCPU(r.Name)
		if cpus <= 1 || r.NsPerOp <= 0 {
			continue
		}
		if ns1, ok := base1[r.Pkg+" "+base]; ok {
			r.Speedup = ns1 / r.NsPerOp
			r.Efficiency = r.Speedup / float64(cpus)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
