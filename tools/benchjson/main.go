// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a stable JSON array on stdout, so benchmark snapshots can
// be committed (see the Makefile's bench-json target) and diffed across
// PRs without parsing bench text by hand.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchResult is one benchmark line.
type benchResult struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerSec   float64 `json:"mb_per_sec,omitempty"`
	// bytes/allocs are not omitempty: the bench-json target always
	// passes -benchmem, and 0 allocs/op is the encode path's headline.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

type benchFile struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	Pkg     string        `json:"pkg,omitempty"`
	Results []benchResult `json:"results"`
}

// benchLine matches the fixed prefix; optional metrics (MB/s, B/op,
// allocs/op) can appear in any combination after it.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op`)
	bytesOp    = regexp.MustCompile(`([\d.]+) B/op`)
	allocsOp   = regexp.MustCompile(`(\d+) allocs/op`)
	throughput = regexp.MustCompile(`([\d.]+) MB/s`)
)

func main() {
	out := benchFile{Results: []benchResult{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			out.Pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := benchResult{Name: m[1], Iterations: iters, NsPerOp: ns}
		if bm := bytesOp.FindStringSubmatch(line); bm != nil {
			b, _ := strconv.ParseFloat(bm[1], 64)
			r.BytesPerOp = int64(b)
		}
		if am := allocsOp.FindStringSubmatch(line); am != nil {
			r.AllocsPerOp, _ = strconv.ParseInt(am[1], 10, 64)
		}
		if tm := throughput.FindStringSubmatch(line); tm != nil {
			r.MBPerSec, _ = strconv.ParseFloat(tm[1], 64)
		}
		out.Results = append(out.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
