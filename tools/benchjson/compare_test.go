package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name string, results []benchResult) string {
	t.Helper()
	path := filepath.Join(dir, name)
	b, err := json.Marshal(benchFile{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestComparePassAndFail(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", []benchResult{
		{Name: "BenchmarkEncodeFill", Cpus: 1, NsPerOp: 1000},
		{Name: "BenchmarkScaling-4", Cpus: 4, NsPerOp: 500},
		{Name: "BenchmarkGone", Cpus: 1, NsPerOp: 10},
	})

	// Improvement + small regression within the gate: exit 0.
	newOK := writeBench(t, dir, "new_ok.json", []benchResult{
		{Name: "BenchmarkEncodeFill", Pkg: "cable", Cpus: 1, NsPerOp: 800},
		{Name: "BenchmarkScaling-4", Pkg: "cable", Cpus: 4, NsPerOp: 540}, // +8%
		{Name: "BenchmarkNew", Pkg: "cable", Cpus: 1, NsPerOp: 5},
	})
	var out, errw bytes.Buffer
	if code := runCompare([]string{oldPath, newOK, "-max-regress", "10"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errw.String())
	}
	for _, want := range []string{
		"BenchmarkEncodeFill", "-20.0%", "+8.0%",
		"BenchmarkGone", "removed (not in " + newOK + ")",
		"BenchmarkNew", "new (not in " + oldPath + ")",
		"1 new, 1 removed",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}

	// A 50% regression breaches the gate: exit 1 and flag the row.
	newBad := writeBench(t, dir, "new_bad.json", []benchResult{
		{Name: "BenchmarkEncodeFill", Cpus: 1, NsPerOp: 1500},
	})
	out.Reset()
	errw.Reset()
	if code := runCompare([]string{oldPath, newBad, "-max-regress", "10"}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression not flagged:\n%s", out.String())
	}

	// The same file against itself with a generous gate: exit 0.
	if code := runCompare([]string{oldPath, oldPath}, &out, &errw); code != 0 {
		t.Fatalf("self-compare exit %d", code)
	}
}

// TestCollapseMin pins the -count N folding: repeated samples of one
// benchmark keep the fastest, distinct benchmarks (and the same base
// name at different -cpu points) stay separate, and first-appearance
// order survives.
func TestCollapseMin(t *testing.T) {
	in := []benchResult{
		{Name: "BenchmarkA", Pkg: "p", Cpus: 1, NsPerOp: 300},
		{Name: "BenchmarkB", Pkg: "p", Cpus: 1, NsPerOp: 50},
		{Name: "BenchmarkA", Pkg: "p", Cpus: 1, NsPerOp: 100, Iterations: 7},
		{Name: "BenchmarkA-4", Pkg: "p", Cpus: 4, NsPerOp: 80},
		{Name: "BenchmarkA", Pkg: "p", Cpus: 1, NsPerOp: 200},
	}
	got := collapseMin(in)
	if len(got) != 3 {
		t.Fatalf("collapsed to %d results, want 3: %+v", len(got), got)
	}
	if got[0].Name != "BenchmarkA" || got[0].NsPerOp != 100 || got[0].Iterations != 7 {
		t.Fatalf("min sample not kept whole: %+v", got[0])
	}
	if got[1].Name != "BenchmarkB" || got[2].Name != "BenchmarkA-4" {
		t.Fatalf("order or distinct names lost: %+v", got)
	}
}

func TestCompareUsageErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := runCompare([]string{"only-one.json"}, &out, &errw); code != 2 {
		t.Fatalf("one path: exit %d, want 2", code)
	}
	if code := runCompare([]string{"a.json", "b.json", "-max-regress", "nope"}, &out, &errw); code != 2 {
		t.Fatalf("bad -max-regress: exit %d, want 2", code)
	}
	if code := runCompare([]string{"/nonexistent.json", "/nonexistent2.json"}, &out, &errw); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
	dir := t.TempDir()
	empty := writeBench(t, dir, "empty.json", nil)
	a := writeBench(t, dir, "a.json", []benchResult{{Name: "BenchmarkA", Cpus: 1, NsPerOp: 1}})
	if code := runCompare([]string{empty, a}, &out, &errw); code != 2 {
		t.Fatalf("empty old snapshot: exit %d, want 2", code)
	}
	if code := runCompare([]string{a, empty}, &out, &errw); code != 2 {
		t.Fatalf("empty new snapshot: exit %d, want 2", code)
	}
}

// TestCompareDisjointSets pins the renamed-world case: two valid
// snapshots with no benchmarks in common pass the gate, reporting
// everything as new/removed. A fully rewritten bench suite must not
// break CI just because nothing matched.
func TestCompareDisjointSets(t *testing.T) {
	dir := t.TempDir()
	a := writeBench(t, dir, "a.json", []benchResult{{Name: "BenchmarkA", Cpus: 1, NsPerOp: 1}})
	b := writeBench(t, dir, "b.json", []benchResult{{Name: "BenchmarkB", Cpus: 1, NsPerOp: 1}})
	var out, errw bytes.Buffer
	if code := runCompare([]string{a, b}, &out, &errw); code != 0 {
		t.Fatalf("disjoint sets: exit %d, want 0 (stderr %s)", code, errw.String())
	}
	for _, want := range []string{"BenchmarkB", "new (not in " + a + ")", "BenchmarkA", "removed (not in " + b + ")", "no benchmarks in common"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCompareRealSnapshots pins the committed BENCH files the CI gate
// runs against: each adjacent pair must stay comparable.
func TestCompareRealSnapshots(t *testing.T) {
	pairs := [][2]string{
		{"../../BENCH_pr5.json", "../../BENCH_pr6.json"},
		{"../../BENCH_pr6.json", "../../BENCH_pr8.json"},
	}
	for _, pair := range pairs {
		skip := false
		for _, p := range pair {
			if _, err := os.Stat(p); err != nil {
				t.Logf("snapshot missing, skipping pair: %v", err)
				skip = true
			}
		}
		if skip {
			continue
		}
		var out, errw bytes.Buffer
		if code := runCompare([]string{pair[0], pair[1], "-max-regress", "10"}, &out, &errw); code != 0 {
			t.Fatalf("%s→%s gate failed (%d):\n%s%s", pair[0], pair[1], code, out.String(), errw.String())
		}
		if !strings.Contains(out.String(), "BenchmarkEncodeFill") {
			t.Fatalf("shared benchmark not compared:\n%s", out.String())
		}
	}
}
