package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name string, results []benchResult) string {
	t.Helper()
	path := filepath.Join(dir, name)
	b, err := json.Marshal(benchFile{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestComparePassAndFail(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", []benchResult{
		{Name: "BenchmarkEncodeFill", Cpus: 1, NsPerOp: 1000},
		{Name: "BenchmarkScaling-4", Cpus: 4, NsPerOp: 500},
		{Name: "BenchmarkGone", Cpus: 1, NsPerOp: 10},
	})

	// Improvement + small regression within the gate: exit 0.
	newOK := writeBench(t, dir, "new_ok.json", []benchResult{
		{Name: "BenchmarkEncodeFill", Pkg: "cable", Cpus: 1, NsPerOp: 800},
		{Name: "BenchmarkScaling-4", Pkg: "cable", Cpus: 4, NsPerOp: 540}, // +8%
		{Name: "BenchmarkNew", Pkg: "cable", Cpus: 1, NsPerOp: 5},
	})
	var out, errw bytes.Buffer
	if code := runCompare([]string{oldPath, newOK, "-max-regress", "10"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errw.String())
	}
	for _, want := range []string{"BenchmarkEncodeFill", "-20.0%", "+8.0%", "BenchmarkGone", "BenchmarkNew"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}

	// A 50% regression breaches the gate: exit 1 and flag the row.
	newBad := writeBench(t, dir, "new_bad.json", []benchResult{
		{Name: "BenchmarkEncodeFill", Cpus: 1, NsPerOp: 1500},
	})
	out.Reset()
	errw.Reset()
	if code := runCompare([]string{oldPath, newBad, "-max-regress", "10"}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression not flagged:\n%s", out.String())
	}

	// The same file against itself with a generous gate: exit 0.
	if code := runCompare([]string{oldPath, oldPath}, &out, &errw); code != 0 {
		t.Fatalf("self-compare exit %d", code)
	}
}

func TestCompareUsageErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := runCompare([]string{"only-one.json"}, &out, &errw); code != 2 {
		t.Fatalf("one path: exit %d, want 2", code)
	}
	if code := runCompare([]string{"a.json", "b.json", "-max-regress", "nope"}, &out, &errw); code != 2 {
		t.Fatalf("bad -max-regress: exit %d, want 2", code)
	}
	if code := runCompare([]string{"/nonexistent.json", "/nonexistent2.json"}, &out, &errw); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
	dir := t.TempDir()
	a := writeBench(t, dir, "a.json", []benchResult{{Name: "BenchmarkA", Cpus: 1, NsPerOp: 1}})
	b := writeBench(t, dir, "b.json", []benchResult{{Name: "BenchmarkB", Cpus: 1, NsPerOp: 1}})
	if code := runCompare([]string{a, b}, &out, &errw); code != 2 {
		t.Fatalf("disjoint sets: exit %d, want 2", code)
	}
}

// TestCompareRealSnapshots pins the committed BENCH files the CI gate
// runs against: they must stay comparable.
func TestCompareRealSnapshots(t *testing.T) {
	for _, p := range []string{"../../BENCH_pr5.json", "../../BENCH_pr6.json"} {
		if _, err := os.Stat(p); err != nil {
			t.Skipf("snapshot missing: %v", err)
		}
	}
	var out, errw bytes.Buffer
	if code := runCompare([]string{"../../BENCH_pr5.json", "../../BENCH_pr6.json", "-max-regress", "10"}, &out, &errw); code != 0 {
		t.Fatalf("pr5→pr6 gate failed (%d):\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "BenchmarkEncodeFill") {
		t.Fatalf("shared benchmark not compared:\n%s", out.String())
	}
}
