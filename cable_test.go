package cable_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"cable"
)

func TestPublicAPILinkRoundTrip(t *testing.T) {
	home, err := cable.NewCache(cable.CacheConfig{Name: "l4", SizeBytes: 128 << 10, Ways: 16, LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := cable.NewCache(cable.CacheConfig{Name: "llc", SizeBytes: 32 << 10, Ways: 8, LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	he, re, err := cable.NewLink(cable.DefaultConfig(), home, remote)
	if err != nil {
		t.Fatal(err)
	}
	lineA := make([]byte, 64)
	for i := range lineA {
		lineA[i] = byte(i*3 + 1)
	}
	lineB := append([]byte(nil), lineA...)
	binary.LittleEndian.PutUint32(lineB[12:], 0x12345678)
	home.Insert(0x40, lineA, cable.Shared)
	home.Insert(0x91, lineB, cable.Shared)

	fill := func(addr uint64, want []byte) *cable.Payload {
		idx := remote.IndexOf(addr)
		way := remote.VictimWay(idx)
		p, _, err := he.EncodeFill(addr, cable.Shared, way)
		if err != nil {
			t.Fatal(err)
		}
		got, err := re.DecodeFill(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("fill %#x mismatch", addr)
		}
		remote.InsertAt(addr, got, cable.Shared, way)
		re.OnFillInstalled(cable.LineID{Index: idx, Way: way}, got, cable.Shared)
		return &p
	}
	fill(0x40, lineA)
	p := fill(0x91, lineB)
	if !p.Compressed || len(p.Refs) == 0 {
		t.Fatalf("second fill should reference the first: %+v", p)
	}
	if bits := p.Bits(he.RemoteLIDBits()); bits >= 200 {
		t.Fatalf("near-copy cost %d bits, want ≪ 513", bits)
	}
}

func TestNewCacheValidates(t *testing.T) {
	if _, err := cable.NewCache(cable.CacheConfig{Name: "bad", SizeBytes: 100, Ways: 3, LineSize: 64}); err == nil {
		t.Fatal("invalid geometry should error")
	}
}

func TestNewLinkValidates(t *testing.T) {
	small, _ := cable.NewCache(cable.CacheConfig{Name: "s", SizeBytes: 8 << 10, Ways: 8, LineSize: 64})
	big, _ := cable.NewCache(cable.CacheConfig{Name: "b", SizeBytes: 64 << 10, Ways: 8, LineSize: 64})
	bad := cable.DefaultConfig()
	bad.MaxRefs = 9
	if _, _, err := cable.NewLink(bad, big, small); err == nil {
		t.Fatal("invalid config should error")
	}
	if _, _, err := cable.NewLink(cable.DefaultConfig(), big, small); err != nil {
		t.Fatal(err)
	}
}

func TestEnginesRegistry(t *testing.T) {
	for _, name := range cable.Engines() {
		e, err := cable.NewEngine(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		line := make([]byte, 64)
		line[7] = 0xAB
		enc := e.Compress(line, nil)
		got, err := e.Decompress(enc, nil, 64)
		if err != nil || !bytes.Equal(got, line) {
			t.Fatalf("%s: round trip failed: %v", name, err)
		}
	}
}

func TestBenchmarksListed(t *testing.T) {
	if len(cable.Benchmarks()) != 29 {
		t.Fatalf("benchmarks = %d, want 29", len(cable.Benchmarks()))
	}
}

func TestExperimentsListed(t *testing.T) {
	ids := cable.Experiments()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments", len(ids))
	}
	for _, id := range ids {
		if cable.DescribeExperiment(id) == "" {
			t.Fatalf("%s lacks a description", id)
		}
	}
}

func TestPublicSimulations(t *testing.T) {
	ml := cable.DefaultMemoryLinkConfig("gobmk")
	ml.AccessesPerProgram = 4000
	ml.Chip.LLCBytes = 64 << 10
	ml.Chip.L4Bytes = 256 << 10
	res, err := cable.RunMemoryLink(ml)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio("cable") <= 1 {
		t.Fatalf("cable ratio %.2f", res.Ratio("cable"))
	}

	mc := cable.DefaultMultiChipConfig("gobmk")
	mc.Accesses = 4000
	mc.LLCBytes = 64 << 10
	mres, err := cable.RunMultiChip(mc)
	if err != nil {
		t.Fatal(err)
	}
	if mres.RemoteFills == 0 {
		t.Fatal("no coherence traffic")
	}

	tc := cable.DefaultTimingConfig("cable", "gobmk")
	tc.Threads, tc.TotalTh = 2, 256
	tc.InstrPerTh = 50_000
	tc.LLCPerThread = 32 << 10
	tres, err := cable.RunTiming(tc)
	if err != nil {
		t.Fatal(err)
	}
	if tres.IPCPerThread <= 0 {
		t.Fatal("no progress in timing sim")
	}
}

func TestPublicExtensions(t *testing.T) {
	home, _ := cable.NewCache(cable.CacheConfig{Name: "h", SizeBytes: 64 << 10, Ways: 16, LineSize: 64})
	remote, _ := cable.NewCache(cable.CacheConfig{Name: "r", SizeBytes: 16 << 10, Ways: 8, LineSize: 64})
	pool := cable.NewSuperWMT(128, 4, home, remote)
	he, re, err := cable.NewLinkWithWayMap(cable.DefaultConfig(), home, remote, pool.View(0))
	if err != nil || he == nil || re == nil {
		t.Fatal(err)
	}

	ni := cable.DefaultNonInclusiveConfig("gobmk")
	ni.Accesses = 3000
	ni.RemoteBytes = 64 << 10
	ni.HomeBytes = 128 << 10
	res, err := cable.RunNonInclusive(ni)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cable.Value() <= 1 {
		t.Fatalf("non-inclusive ratio %.2f", res.Cable.Value())
	}
}
