// Command cabletrace records and inspects synthetic workload traces.
//
// Usage:
//
//	cabletrace -bench mcf -n 100000 -o mcf.trace   # record
//	cabletrace -bench mcf -instance 3 -o mcf3.trace # record chip-3's stream
//	cabletrace -spec mix.json -n 48000 -o mix       # record a spec's per-client streams
//	cabletrace -stats mcf.trace                     # inspect a trace
//	cabletrace -profile mcf -n 20000                # content profile
//
// The content profile reports the axes that drive link compression:
// zero-line fraction, trivial-word density, cross-line signature
// sharing, and per-engine standalone compressibility — useful when
// calibrating a workload model against a real system's traffic.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cable/internal/compress"
	"cable/internal/sig"
	"cable/internal/trace"
	"cable/internal/workload"
	"cable/internal/workload/spec"
)

func main() {
	bench := flag.String("bench", "", "benchmark to record (see -list)")
	n := flag.Int("n", 100000, "number of accesses")
	out := flag.String("o", "", "output trace file (-spec: output prefix, one PREFIX.CLIENT.trace per client)")
	instance := flag.Int("instance", 0, "generator instance to record with -bench (chip/program slot decorrelation)")
	specFile := flag.String("spec", "", "workload-spec JSON file: record the mix's per-client streams")
	statsFile := flag.String("stats", "", "trace file to summarize")
	profile := flag.String("profile", "", "benchmark to content-profile")
	list := flag.Bool("list", false, "list benchmarks")
	flag.Parse()

	switch {
	case *list:
		for _, name := range workload.Names() {
			s, _ := workload.ByName(name)
			zd := ""
			if s.ZeroDominant {
				zd = " (zero-dominant)"
			}
			fmt.Printf("%-12s %s%s\n", name, s.Class, zd)
		}
	case *statsFile != "":
		if err := summarize(*statsFile); err != nil {
			fatal(err)
		}
	case *profile != "":
		if err := profileBench(*profile, *n); err != nil {
			fatal(err)
		}
	case *specFile != "" && *out != "":
		if err := recordSpec(*specFile, *n, *out); err != nil {
			fatal(err)
		}
	case *bench != "" && *out != "":
		if err := record(*bench, *instance, *n, *out); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "cabletrace: need -list, -stats FILE, -profile BENCH, -bench BENCH -o FILE, or -spec FILE -o PREFIX")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cabletrace: %v\n", err)
	os.Exit(1)
}

func record(bench string, instance, n int, out string) error {
	gen, err := workload.New(bench, instance, 0)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Record(f, gen, n); err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses of %s (instance %d) to %s\n", n, bench, instance, out)
	return nil
}

// recordSpec runs a workload spec's live mix for n total accesses and
// writes one capture per client (PREFIX.CLIENT.trace). Replaying the
// set through the same spec (-workload-spec + -replay) reconstructs
// the identical merged stream.
func recordSpec(path string, n int, prefix string) error {
	w, err := spec.Load(path)
	if err != nil {
		return err
	}
	var files []string
	err = spec.RecordClients(w, n, func(id string) (io.WriteCloser, error) {
		name := fmt.Sprintf("%s.%s.trace", prefix, id)
		files = append(files, name)
		return os.Create(name)
	})
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses of spec %q across %d per-client captures: %s\n",
		n, w.Name, len(files), strings.Join(files, " "))
	return nil
}

func summarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	h := r.Header()
	var records, writes uint64
	var gaps uint64
	seen := map[uint64]uint64{}
	for {
		a, err := r.Next()
		if err != nil {
			break
		}
		records++
		if a.Write {
			writes++
		}
		gaps += uint64(a.Gap)
		seen[a.LineAddr]++
	}
	fmt.Printf("trace: %s (instance %d, base %#x)\n", h.Benchmark, h.Instance, h.AddrBase)
	fmt.Printf("records:        %d\n", records)
	fmt.Printf("distinct lines: %d\n", len(seen))
	if records > 0 {
		fmt.Printf("write fraction: %.3f\n", float64(writes)/float64(records))
		fmt.Printf("mean gap:       %.1f instructions\n", float64(gaps)/float64(records))
		fmt.Printf("mean reuse:     %.2f accesses/line\n", float64(records)/float64(len(seen)))
	}
	return nil
}

func profileBench(bench string, n int) error {
	gen, err := workload.New(bench, 0, 0)
	if err != nil {
		return err
	}
	ex := sig.NewExtractor(workload.LineSize, 0xCAB1E)
	engines := []compress.Engine{
		compress.NewBDI(),
		compress.NewCPack("cpack", 64),
		compress.NewLBE("lbe256", 256),
	}
	var zeroLines, trivialWords, totalWords int
	sigOwners := map[sig.Signature]int{}
	encBits := make([]uint64, len(engines))
	for i := 0; i < n; i++ {
		a := gen.Next()
		line := gen.LineData(a.LineAddr)
		nt := sig.NonTrivialWords(line)
		totalWords += len(line) / 4
		trivialWords += len(line)/4 - nt
		if nt == 0 {
			zeroLines++
		}
		for _, s := range ex.InsertSignatures(line) {
			sigOwners[s]++
		}
		for e, eng := range engines {
			encBits[e] += uint64(eng.Compress(line, nil).NBits)
		}
	}
	shared := 0
	for _, c := range sigOwners {
		if c >= 2 {
			shared++
		}
	}
	fmt.Printf("content profile: %s over %d accesses\n", bench, n)
	fmt.Printf("zero lines:          %.1f%%\n", 100*float64(zeroLines)/float64(n))
	fmt.Printf("trivial words:       %.1f%%\n", 100*float64(trivialWords)/float64(totalWords))
	fmt.Printf("shared signatures:   %d of %d (%.1f%%) — CABLE's reference pool\n",
		shared, len(sigOwners), 100*float64(shared)/float64(max(1, len(sigOwners))))
	for e, eng := range engines {
		ratio := float64(n*workload.LineSize*8) / float64(encBits[e])
		fmt.Printf("standalone %-8s %.2fx\n", eng.Name()+":", ratio)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
