package main

import (
	"os"
	"path/filepath"
	"testing"

	"cable/internal/trace"
	"cable/internal/workload"
)

// TestRecordReplay drives the tool's record path and replays the file:
// the trace must reproduce the generator's access stream exactly.
func TestRecordReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mcf.trace")
	const n = 500
	if err := record("mcf", 0, n, path); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if h := r.Header(); h.Benchmark != "mcf" {
		t.Fatalf("header = %+v", h)
	}
	ref, err := workload.New("mcf", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if want := ref.Next(); got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
}

func TestSummarizeSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gcc.trace")
	if err := record("gcc", 0, 200, path); err != nil {
		t.Fatal(err)
	}
	if err := summarize(path); err != nil {
		t.Fatal(err)
	}
	if err := summarize(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestProfileSmoke(t *testing.T) {
	if err := profileBench("dealII", 300); err != nil {
		t.Fatal(err)
	}
	if err := profileBench("no-such-bench", 10); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}
