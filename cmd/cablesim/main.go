// Command cablesim runs one experiment from the paper's evaluation and
// prints its table.
//
// Usage:
//
//	cablesim -exp fig12            # full-scale run
//	cablesim -exp fig14a -quick    # reduced scale (seconds)
//	cablesim -exp fig21 -parallel 8  # bound the per-cell worker pool
//	cablesim -exp fig12 -gomaxprocs 2  # cap scheduler parallelism (scaling runs)
//	cablesim -exp fig12 -metrics m.json  # dump the metrics registry after the run
//	cablesim -exp fig12 -http :6060      # live /metrics, /health dashboard and /debug/pprof
//	cablesim -exp fig12 -windows w.json  # dump the flight recorder's windowed time series
//	cablesim -exp fig12 -timeline t.json # dump the event timeline (tools/traceexport input)
//	cablesim -exp mesh -topology ring -chips 8  # N-chip topology scale-out
//	cablesim -exp workload -workload-spec mix.json  # declarative multi-client mix
//	cablesim -exp workload -replay a.trace,b.trace  # replay recorded captures
//	cablesim -list                 # list experiment ids
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"cable"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list)")
	quick := flag.Bool("quick", false, "reduced-scale run")
	list := flag.Bool("list", false, "list experiment ids")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for the driver's independent cells")
	metrics := flag.String("metrics", "", "write a deterministic metrics-registry JSON dump to this file after the run")
	httpAddr := flag.String("http", "", "serve live /metrics, /windows, /timeline, /health and /debug/pprof on this address while running")
	windowsOut := flag.String("windows", "", "write a deterministic flight-recorder windowed time-series JSON dump to this file after the run")
	timelineOut := flag.String("timeline", "", "write a deterministic flight-recorder event-timeline JSON dump to this file after the run")
	flightWindow := flag.Int("flight-window", 0, "flight-recorder window length in virtual-time ticks (0 = default 2048)")
	nomemo := flag.Bool("nomemo", false, "disable the cross-experiment cell cache (outputs are bit-identical either way)")
	faultRate := flag.Float64("fault-rate", 0, "per-bit flip probability injected into CABLE wire images (0 disables; outputs at 0 are byte-identical to a fault-free build)")
	faultTrunc := flag.Float64("fault-trunc-rate", 0, "per-image truncation probability injected into CABLE wire images")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the deterministic fault pattern (same seed+rates ⇒ identical results at any -parallel)")
	gomaxprocs := flag.Int("gomaxprocs", 0, "cap the Go scheduler's OS-thread parallelism before running (0 = keep the environment's GOMAXPROCS)")
	topology := flag.String("topology", "", "interconnect shape for -exp mesh: ring|mesh|star (default mesh)")
	chips := flag.Int("chips", 0, "chip count for -exp mesh (default 16; 8 in -quick)")
	specFile := flag.String("workload-spec", "", "workload-spec JSON file driving -exp workload (memory link) or -exp mesh (one mix per chip)")
	replayFiles := flag.String("replay", "", "comma-separated cabletrace captures to replay: program slots for -exp workload, one per chip for -exp mesh, per-client (with -workload-spec) for spec replay")
	flag.Parse()

	if *gomaxprocs > 0 {
		runtime.GOMAXPROCS(*gomaxprocs)
	}

	// The flight recorder is built whenever any consumer wants it: the
	// dump flags or the live dashboard. Wall-clock span durations are
	// volatile, so they are only captured for the live view — the
	// -windows/-timeline files are deterministic either way.
	var flight *cable.Flight
	if *windowsOut != "" || *timelineOut != "" || *httpAddr != "" {
		flight = cable.NewFlight(cable.FlightConfig{Window: *flightWindow, WallClock: *httpAddr != ""})
	}

	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, cable.MetricsHandlerFor(flight)); err != nil {
				fmt.Fprintf(os.Stderr, "cablesim: -http: %v\n", err)
			}
		}()
	}

	if *list {
		for _, id := range cable.Experiments() {
			fmt.Printf("%-10s %s\n", id, cable.DescribeExperiment(id))
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "cablesim: -exp required (or -list); e.g. cablesim -exp fig12 -quick")
		os.Exit(2)
	}
	opt := cable.ExperimentOptions{
		Quick: *quick, Parallelism: *parallel, DisableCellMemo: *nomemo,
		Fault:    cable.FaultConfig{BitRate: *faultRate, TruncRate: *faultTrunc, Seed: *faultSeed},
		Topology: *topology, Chips: *chips,
		Flight: flight,
	}
	if *specFile != "" {
		w, err := cable.LoadWorkloadSpec(*specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cablesim: -workload-spec: %v\n", err)
			os.Exit(1)
		}
		opt.Workload = w
	}
	if *replayFiles != "" {
		for _, path := range strings.Split(*replayFiles, ",") {
			t, err := cable.LoadTrace(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cablesim: -replay: %v\n", err)
				os.Exit(1)
			}
			opt.Replay = append(opt.Replay, t)
		}
	}
	srcBits := cable.MetricValue("core.source_bits")
	start := time.Now()
	res, err := cable.RunExperiment(*exp, opt)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cablesim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.Table)
	for _, n := range res.Notes {
		fmt.Printf("note: %s\n", n)
	}
	// Encoder throughput, honestly scoped: the numerator is source data
	// actually pushed through CABLE home-end encoders this run
	// (memo-served cells encode nothing), the denominator whole-run
	// wall-clock including simulation outside the encoder.
	if bits := cable.MetricValue("core.source_bits") - srcBits; bits > 0 && elapsed > 0 {
		fmt.Fprintf(os.Stderr, "encoded %.3f GB of source lines in %.2fs wall clock — %.3f GB/s through the encoders (whole-run clock; memoized cells encode nothing)\n",
			float64(bits)/8e9, elapsed.Seconds(), float64(bits)/8e9/elapsed.Seconds())
	}
	if *metrics != "" {
		if err := cable.WriteMetricsFile(*metrics, false); err != nil {
			fmt.Fprintf(os.Stderr, "cablesim: metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *windowsOut != "" {
		if err := flight.WriteWindowsFile(*windowsOut, false); err != nil {
			fmt.Fprintf(os.Stderr, "cablesim: windows: %v\n", err)
			os.Exit(1)
		}
	}
	if *timelineOut != "" {
		if err := flight.WriteTimelineFile(*timelineOut, false); err != nil {
			fmt.Fprintf(os.Stderr, "cablesim: timeline: %v\n", err)
			os.Exit(1)
		}
	}
}
