// Command cablereport regenerates every table and figure of the
// paper's evaluation and emits a Markdown report (the data behind
// EXPERIMENTS.md).
//
// Usage:
//
//	cablereport            # full scale (minutes)
//	cablereport -quick     # reduced scale
//	cablereport -o out.md  # write to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cable"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-scale runs")
	out := flag.String("o", "", "output file (default stdout)")
	only := flag.String("exp", "", "single experiment id to run")
	charts := flag.Bool("charts", false, "render ASCII bar charts under each table")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cablereport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	ids := cable.Experiments()
	if *only != "" {
		ids = []string{*only}
	}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "# CABLE reproduction report (%s scale)\n\n", mode)
	for _, id := range ids {
		start := time.Now()
		res, err := cable.RunExperiment(id, cable.ExperimentOptions{Quick: *quick})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cablereport: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s\n", res.Table)
		if *charts {
			fmt.Fprintf(w, "```\n%s```\n\n", res.Table.ChartAll())
		}
		for _, n := range res.Notes {
			fmt.Fprintf(w, "> %s\n", n)
		}
		fmt.Fprintf(w, "\n_(%s: %s, %.1fs)_\n\n", id, cable.DescribeExperiment(id), time.Since(start).Seconds())
		fmt.Fprintf(os.Stderr, "done %-8s %.1fs\n", id, time.Since(start).Seconds())
	}
}
