// Command cablereport regenerates every table and figure of the
// paper's evaluation and emits a Markdown report (the data behind
// EXPERIMENTS.md).
//
// Usage:
//
//	cablereport              # full scale (minutes)
//	cablereport -quick       # reduced scale
//	cablereport -o out.md    # write to a file
//	cablereport -parallel 8  # bound the worker pool (default GOMAXPROCS)
//	cablereport -gomaxprocs 2    # cap scheduler parallelism (scaling runs)
//	cablereport -breakdown   # only the encoding-class coverage table
//	cablereport -metrics m.json  # dump the metrics registry after the run
//	cablereport -http :6060      # live /metrics, /health dashboard and /debug/pprof
//	cablereport -windows w.json  # dump the flight recorder's windowed time series
//	cablereport -timeline t.json # dump the event timeline (tools/traceexport input)
//
// Experiments run concurrently but the report streams in paper order:
// each section is written as soon as it and everything before it have
// finished. Output is bit-identical at any -parallel setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"cable"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-scale runs")
	out := flag.String("o", "", "output file (default stdout)")
	only := flag.String("exp", "", "single experiment id to run")
	charts := flag.Bool("charts", false, "render ASCII bar charts under each table")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size across and within experiments")
	breakdown := flag.Bool("breakdown", false, "run only the encoding-class coverage table")
	metrics := flag.String("metrics", "", "write a deterministic metrics-registry JSON dump to this file after the run")
	httpAddr := flag.String("http", "", "serve live /metrics, /windows, /timeline, /health and /debug/pprof on this address while running")
	windowsOut := flag.String("windows", "", "write a deterministic flight-recorder windowed time-series JSON dump to this file after the run")
	timelineOut := flag.String("timeline", "", "write a deterministic flight-recorder event-timeline JSON dump to this file after the run")
	flightWindow := flag.Int("flight-window", 0, "flight-recorder window length in virtual-time ticks (0 = default 2048)")
	nomemo := flag.Bool("nomemo", false, "disable the cross-experiment cell cache (outputs are bit-identical either way)")
	faultRate := flag.Float64("fault-rate", 0, "per-bit flip probability injected into CABLE wire images (0 disables; outputs at 0 are byte-identical to a fault-free build)")
	faultTrunc := flag.Float64("fault-trunc-rate", 0, "per-image truncation probability injected into CABLE wire images")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the deterministic fault pattern (same seed+rates ⇒ identical results at any -parallel)")
	gomaxprocs := flag.Int("gomaxprocs", 0, "cap the Go scheduler's OS-thread parallelism before running (0 = keep the environment's GOMAXPROCS)")
	topology := flag.String("topology", "", "interconnect shape for the mesh experiment: ring|mesh|star (default mesh)")
	chips := flag.Int("chips", 0, "chip count for the mesh experiment (default 16; 8 in -quick)")
	specFile := flag.String("workload-spec", "", "workload-spec JSON file driving the workload and mesh experiments")
	replayFiles := flag.String("replay", "", "comma-separated cabletrace captures to replay through the workload and mesh experiments")
	flag.Parse()

	if *gomaxprocs > 0 {
		runtime.GOMAXPROCS(*gomaxprocs)
	}

	// Build the flight recorder whenever a consumer wants it; wall-clock
	// span durations are captured only for the live view (the dump files
	// stay deterministic either way).
	var flight *cable.Flight
	if *windowsOut != "" || *timelineOut != "" || *httpAddr != "" {
		flight = cable.NewFlight(cable.FlightConfig{Window: *flightWindow, WallClock: *httpAddr != ""})
	}
	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, cable.MetricsHandlerFor(flight)); err != nil {
				fmt.Fprintf(os.Stderr, "cablereport: -http: %v\n", err)
			}
		}()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cablereport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	ids := cable.Experiments()
	if *breakdown {
		ids = []string{"breakdown"}
	}
	if *only != "" {
		ids = []string{*only}
	}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "# CABLE reproduction report (%s scale)\n\n", mode)
	opt := cable.ExperimentOptions{
		Quick: *quick, Parallelism: *parallel, DisableCellMemo: *nomemo,
		Fault:    cable.FaultConfig{BitRate: *faultRate, TruncRate: *faultTrunc, Seed: *faultSeed},
		Topology: *topology, Chips: *chips,
		Flight: flight,
	}
	if *specFile != "" {
		spec, err := cable.LoadWorkloadSpec(*specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cablereport: -workload-spec: %v\n", err)
			os.Exit(1)
		}
		opt.Workload = spec
	}
	if *replayFiles != "" {
		for _, path := range strings.Split(*replayFiles, ",") {
			t, err := cable.LoadTrace(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cablereport: -replay: %v\n", err)
				os.Exit(1)
			}
			opt.Replay = append(opt.Replay, t)
		}
	}
	srcBits := cable.MetricValue("core.source_bits")
	total := time.Now()
	for sr := range cable.StreamExperiments(ids, opt) {
		if sr.Err != nil {
			fmt.Fprintf(os.Stderr, "cablereport: %s: %v\n", sr.ID, sr.Err)
			os.Exit(1)
		}
		res := sr.Result
		fmt.Fprintf(w, "%s\n", res.Table)
		if *charts {
			fmt.Fprintf(w, "```\n%s```\n\n", res.Table.ChartAll())
		}
		for _, n := range res.Notes {
			fmt.Fprintf(w, "> %s\n", n)
		}
		fmt.Fprintf(w, "\n_(%s: %s, %.1fs)_\n\n", sr.ID, cable.DescribeExperiment(sr.ID), sr.Elapsed.Seconds())
		fmt.Fprintf(os.Stderr, "done %-8s %.1fs\n", sr.ID, sr.Elapsed.Seconds())
	}
	elapsed := time.Since(total)
	fmt.Fprintf(os.Stderr, "total %d experiments, %.1fs wall clock (parallel=%d)\n",
		len(ids), elapsed.Seconds(), *parallel)
	// Encoder throughput, honestly scoped: source data pushed through
	// CABLE home-end encoders this run (memo-served cells encode
	// nothing) over whole-run wall-clock, simulation overhead included.
	if bits := cable.MetricValue("core.source_bits") - srcBits; bits > 0 && elapsed > 0 {
		fmt.Fprintf(os.Stderr, "encoded %.3f GB of source lines — %.3f GB/s through the encoders (whole-run clock; memoized cells encode nothing)\n",
			float64(bits)/8e9, float64(bits)/8e9/elapsed.Seconds())
	}
	if *metrics != "" {
		if err := cable.WriteMetricsFile(*metrics, false); err != nil {
			fmt.Fprintf(os.Stderr, "cablereport: metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *windowsOut != "" {
		if err := flight.WriteWindowsFile(*windowsOut, false); err != nil {
			fmt.Fprintf(os.Stderr, "cablereport: windows: %v\n", err)
			os.Exit(1)
		}
	}
	if *timelineOut != "" {
		if err := flight.WriteTimelineFile(*timelineOut, false); err != nil {
			fmt.Fprintf(os.Stderr, "cablereport: timeline: %v\n", err)
			os.Exit(1)
		}
	}
}
