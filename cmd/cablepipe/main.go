// Command cablepipe runs the CABLE streaming codec over a byte pipe:
// stdin/stdout by default, or a one-shot TCP socket pair.
//
// Usage:
//
//	cablepipe -encode < file > file.cbl          # compress a stream
//	cablepipe -decode < file.cbl > file          # decompress it
//	cablepipe -encode -connect host:9000 < file  # ship encoded bytes over TCP
//	cablepipe -decode -listen :9000 > file       # receive and decode them
//	cablepipe -encode -listen :9000 < file       # or serve the encoder side
//	cablepipe -encode -stats < file > /dev/null  # MB/s + ratio on stderr
//
// Exactly one of -encode/-decode is required. With -listen the process
// accepts a single connection, serves it, and exits; with -connect it
// dials once. The encoder writes to the socket and the decoder reads
// from it, so `cablepipe -encode -connect` pairs with
// `cablepipe -decode -listen` (and vice versa with the roles of
// listener and dialer swapped).
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"cable/internal/codec"
)

func main() {
	encode := flag.Bool("encode", false, "compress stdin (or the socket peer's stream)")
	decode := flag.Bool("decode", false, "decompress to stdout")
	listen := flag.String("listen", "", "accept one TCP connection on this address for the encoded side")
	connect := flag.String("connect", "", "dial this TCP address for the encoded side")
	batch := flag.Int("batch", 32, "lines per encoded frame")
	dict := flag.Int("dict", 1<<20, "dictionary size in bytes (both sides)")
	ways := flag.Int("ways", 8, "dictionary associativity")
	line := flag.Int("line", 64, "line size in bytes")
	engine := flag.String("engine", "lbe", "per-line compression engine")
	pipeline := flag.Bool("pipeline", true, "overlap frame emission with encoding")
	stats := flag.Bool("stats", false, "print throughput and ratio to stderr")
	flag.Parse()

	if *encode == *decode {
		fatal(fmt.Errorf("exactly one of -encode or -decode is required"))
	}
	if *listen != "" && *connect != "" {
		fatal(fmt.Errorf("-listen and -connect are mutually exclusive"))
	}

	// The encoded side of the pipe: stdout/stdin unless a socket is asked
	// for. The plaintext side is always the other standard stream.
	var encodedW io.Writer = os.Stdout
	var encodedR io.Reader = os.Stdin
	if sock, err := dialOrListen(*listen, *connect); err != nil {
		fatal(err)
	} else if sock != nil {
		defer sock.Close()
		encodedW, encodedR = sock, sock
	}

	opt := codec.Options{
		LineSize:  *line,
		DictBytes: *dict,
		DictWays:  *ways,
		Engine:    *engine,
		Batch:     *batch,
		Pipeline:  *pipeline,
	}

	start := time.Now()
	var st codec.StreamStats
	var err error
	if *encode {
		st, err = runEncode(encodedW, os.Stdin, opt)
	} else {
		st, err = runDecode(os.Stdout, encodedR)
	}
	if err != nil {
		fatal(err)
	}
	if *stats {
		el := time.Since(start).Seconds()
		plain := st.InBytes
		fmt.Fprintf(os.Stderr, "%d bytes in, %d bytes out, ratio %.3f, %.1f MB/s, %v\n",
			st.InBytes, st.OutBytes, st.Ratio(), float64(plain)/1e6/el, time.Since(start).Round(time.Millisecond))
	}
}

func dialOrListen(listen, connect string) (net.Conn, error) {
	switch {
	case listen != "":
		l, err := net.Listen("tcp", listen)
		if err != nil {
			return nil, err
		}
		defer l.Close()
		return l.Accept()
	case connect != "":
		return net.Dial("tcp", connect)
	default:
		return nil, nil
	}
}

func runEncode(dst io.Writer, src io.Reader, opt codec.Options) (codec.StreamStats, error) {
	e, err := codec.NewEncoder(dst, opt)
	if err != nil {
		return codec.StreamStats{}, err
	}
	if _, err := io.Copy(e, src); err != nil {
		return e.Stats, err
	}
	if err := e.Close(); err != nil {
		return e.Stats, err
	}
	// Half-close the socket so the decoding peer sees EOF.
	if c, ok := dst.(*net.TCPConn); ok {
		c.CloseWrite()
	}
	return e.Stats, nil
}

func runDecode(dst io.Writer, src io.Reader) (codec.StreamStats, error) {
	d := codec.NewDecoder(src)
	if _, err := io.Copy(dst, d); err != nil {
		return d.Stats, err
	}
	return d.Stats, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cablepipe:", err)
	os.Exit(1)
}
