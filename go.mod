module cable

go 1.22
