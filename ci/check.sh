#!/bin/sh
# CI gate: vet + full test suite under the race detector, then a smoke
# run of the report CLI at reduced scale with a parallel worker pool.
# Mirrors `make check`; kept as a script so CI systems without make can
# call it directly.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go test -race"
# The race detector is ~5x CPU; the experiment drivers need more than
# the 10m default on small CI machines.
go test -race -timeout 45m ./...

echo "== cablereport smoke (quick, parallel)"
go run ./cmd/cablereport -quick -exp tab3 -parallel 4 -o /dev/null

echo "ci: OK"
