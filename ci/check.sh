#!/bin/sh
# CI gate: formatting, vet, the observability package under a tight
# race loop, a one-iteration bench smoke (compiles and runs every
# benchmark body, including the 0 allocs/op encode path), the full test
# suite under the race detector, then a smoke run of the report CLI at
# reduced scale with a parallel worker pool. Mirrors `make check`; kept
# as a script so CI systems without make can call it directly.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== obs race loop"
# The metrics registry is the one structure every goroutine touches;
# hammer it separately (twice, fast) before the long full-suite run.
go test -race -count=2 ./internal/obs

echo "== streaming codec race loop"
# The codec's pipelined mode hands frames to a writer goroutine; run the
# whole package twice under the race detector before the full suite.
go test -race -count=2 ./internal/codec

echo "== line-cache + cell-memo race loop"
# The two memoization layers added by the cell-cache work: the workload
# line cache and the single-flight experiment memo. Fast targeted pass
# before the full -race suite reaches them.
go test -race -count=1 ./internal/workload
go test -race -count=1 -run 'TestCellMemoReuse|TestMetricsDeterministic' ./internal/experiments

echo "== fault-injection race loop"
# One injector per simulation is the concurrency contract; the shared
# piece is the process-default metric counters. Hammer the injector
# and the three topology soaks under the race detector.
go test -race -count=1 ./internal/fault
go test -race -count=1 -run 'FaultSoak|FaultDeterminism|ZeroRateInert' ./internal/sim

echo "== payload fault fuzz smoke"
# Short corruption fuzz over the guarded decode path: bit flips and
# truncations must surface as classified errors, never panics.
go test -run=NOTHING -fuzz=FuzzPayloadDecodeFaults -fuzztime=10s ./internal/core

echo "== bit-IO word/reference parity fuzz smoke"
# Differential fuzz of the word-at-a-time bit stream against the
# retained per-bit reference implementation: random widths, interleaved
# bit/byte ops, truncated streams — images must stay byte-identical.
go test -run=NOTHING -fuzz=FuzzBitsWordParity -fuzztime=10s ./internal/bits

echo "== workload-spec parse fuzz smoke"
# Short fuzz over the spec DSL parser: arbitrary JSON must produce
# typed errors (ErrInvalid) or a valid workload, never a panic.
go test -run=NOTHING -fuzz=FuzzParseSpec -fuzztime=10s ./internal/workload/spec

echo "== codec frame-decode fuzz smoke"
# Short fuzz over the streaming wire format: arbitrary bytes must
# surface as typed errors (ErrBadFrame or the core payload taxonomy),
# never a panic, and errors must be sticky across reads.
go test -run=NOTHING -fuzz=FuzzCodecFrameDecode -fuzztime=10s ./internal/codec

echo "== fault-injected determinism (same seed+rate, any -parallel)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/cablesim -exp fig12 -quick -parallel 1 -fault-rate 1e-3 -fault-seed 7 >"$tmpdir/p1.txt"
go run ./cmd/cablesim -exp fig12 -quick -parallel 8 -fault-rate 1e-3 -fault-seed 7 >"$tmpdir/p8.txt"
cmp "$tmpdir/p1.txt" "$tmpdir/p8.txt"

echo "== flight-recorder determinism (windows+timeline, any -parallel, memo on/off)"
# The flight recorder's dump files are keyed to virtual time, so they
# must be byte-identical across worker counts, GOMAXPROCS, and the
# cell-memo being on or off. Compare the adversarial corner (8 workers,
# memo disabled, 2 OS threads) against the serial memoized baseline.
go run ./cmd/cablesim -exp fig12 -quick -parallel 1 \
    -windows "$tmpdir/w1.json" -timeline "$tmpdir/t1.json" >/dev/null
go run ./cmd/cablesim -exp fig12 -quick -parallel 8 -nomemo -gomaxprocs 2 \
    -windows "$tmpdir/w8.json" -timeline "$tmpdir/t8.json" >/dev/null
cmp "$tmpdir/w1.json" "$tmpdir/w8.json"
cmp "$tmpdir/t1.json" "$tmpdir/t8.json"

echo "== trace-export smoke (record -> convert -> validate)"
go run ./tools/traceexport -in "$tmpdir/t1.json" -o "$tmpdir/trace.json"
go run ./tools/traceexport -validate "$tmpdir/trace.json"

echo "== bench regression gate (pr5 -> pr6 -> pr8 -> pr10 snapshots)"
go run ./tools/benchjson -compare BENCH_pr5.json BENCH_pr6.json -max-regress 10
go run ./tools/benchjson -compare BENCH_pr6.json BENCH_pr8.json -max-regress 10
go run ./tools/benchjson -compare BENCH_pr8.json BENCH_pr10.json -max-regress 10

echo "== cablepipe encode|decode pipe smoke"
# The codec CLI round trip at the process boundary: encode a real file,
# decode it back, demand byte identity.
go run ./cmd/cablepipe -encode -stats <cable.go >"$tmpdir/c.cbl"
go run ./cmd/cablepipe -decode <"$tmpdir/c.cbl" | cmp - cable.go

echo "== mesh determinism (table+metrics, any -parallel, memo on/off)"
# The topology engine's bit-identity contract at the CLI surface: the
# rendered table and the deterministic metrics dump must match between
# a serial memoized run and 8 workers with the memo off on 2 OS threads.
go run ./cmd/cablesim -exp mesh -quick -parallel 1 -metrics "$tmpdir/mm1.json" >"$tmpdir/m1.txt"
go run ./cmd/cablesim -exp mesh -quick -parallel 8 -nomemo -gomaxprocs 2 -metrics "$tmpdir/mm8.json" >"$tmpdir/m8.txt"
cmp "$tmpdir/m1.txt" "$tmpdir/m8.txt"
cmp "$tmpdir/mm1.json" "$tmpdir/mm8.json"

echo "== workload spec record -> replay -> compare smoke"
# The record→replay contract at the CLI surface: capture the example
# mix's per-client streams, replay them through the same spec at the
# adversarial corner (8 workers, memo off, 2 OS threads), and demand
# the identical ratio table as the serial memoized live run. Notes are
# dropped from the comparison — they name the source mode.
go run ./cmd/cabletrace -spec examples/workloads/bursty-mix.json -n 24000 -o "$tmpdir/mix" >/dev/null
go run ./cmd/cablesim -exp workload -quick -parallel 1 \
    -workload-spec examples/workloads/bursty-mix.json | grep -v '^note:' >"$tmpdir/wl-live.txt"
go run ./cmd/cablesim -exp workload -quick -parallel 8 -nomemo -gomaxprocs 2 \
    -workload-spec examples/workloads/bursty-mix.json \
    -replay "$tmpdir/mix.frontend.trace,$tmpdir/mix.batch.trace" | grep -v '^note:' >"$tmpdir/wl-replay.txt"
cmp "$tmpdir/wl-live.txt" "$tmpdir/wl-replay.txt"

echo "== mesh workload-spec determinism (any -parallel, memo on/off)"
# The same spec through the topology DES: bit-identical tables between
# a serial memoized run and 8 workers, memo off, 2 OS threads.
go run ./cmd/cablesim -exp mesh -quick -parallel 1 \
    -workload-spec examples/workloads/bursty-mix.json >"$tmpdir/ms1.txt"
go run ./cmd/cablesim -exp mesh -quick -parallel 8 -nomemo -gomaxprocs 2 \
    -workload-spec examples/workloads/bursty-mix.json >"$tmpdir/ms8.txt"
cmp "$tmpdir/ms1.txt" "$tmpdir/ms8.txt"

echo "== mesh determinism under 2 workers (-race)"
# Same contract at the engine level with the race detector watching the
# per-link worker pool: every shape, clean and fault-injected.
GOMAXPROCS=2 go test -race -count=1 -run 'TestRunDeterministicAcrossParallelism' ./internal/topo

echo "== mesh fault soak (1M transfers)"
# make soak-mesh: the 16-chip mesh through a million fault-injected
# transfers — zero panics, every corrupted frame counted and recovered
# by exactly one raw resend.
CABLE_MESH_SOAK_TRANSFERS=1000000 go test -count=1 -run 'TestMeshSoak' ./internal/topo

echo "== parallel determinism under 2 workers (-race)"
# The in-tree gate for the runner's bit-identity contract, clean and
# fault-injected, under a deliberately tiny GOMAXPROCS so the pool is
# oversubscribed and interleavings are forced.
GOMAXPROCS=2 go test -race -run TestParallelDeterminism -count=1 ./internal/experiments

echo "== bench smoke (1 iteration)"
go test -run=NOTHING -bench=. -benchtime=1x .

echo "== bench-scaling smoke (1 iteration, 2 cpu points)"
# Compiles and runs the scaling family at two -cpu points and pushes the
# output through tools/benchjson, so neither the benchmarks nor the
# converter's cpu-suffix/efficiency path can rot.
go test -run=NOTHING -bench 'BenchmarkRunAllScaling$|BenchmarkMemLinkProtocolScaling$' -benchtime=1x -benchmem -cpu 1,2 . | go run ./tools/benchjson >/dev/null

echo "== go test -race"
# The race detector is ~5x CPU; the experiment drivers need more than
# the 10m default on small CI machines.
go test -race -timeout 45m ./...

echo "== cablereport smoke (quick, parallel)"
go run ./cmd/cablereport -quick -exp tab3 -parallel 4 -o /dev/null

echo "ci: OK"
