package cable_test

// Benchmark harness: one testing.B target per table/figure of the
// paper's evaluation (§VI). Each bench runs the corresponding
// experiment driver at reduced scale and reports the headline metric of
// that figure via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in miniature. cmd/cablereport runs
// the same drivers at full scale.

import (
	"runtime"
	"testing"

	"cable"
	"cable/internal/sim"
)

// runExperiment executes an experiment once per benchmark iteration and
// reports metric(result) under the given unit.
func runExperiment(b *testing.B, id string, metric func(*cable.ExperimentResult) float64, unit string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := cable.RunExperiment(id, cable.ExperimentOptions{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		last = metric(res)
	}
	b.ReportMetric(last, unit)
	b.ReportMetric(0, "ns/op") // wall time is not the result here
}

func BenchmarkFig03DictionarySize(b *testing.B) {
	runExperiment(b, "fig3", func(r *cable.ExperimentResult) float64 {
		rows := r.Table.Rows()
		return r.Table.Get(rows[len(rows)-1], "ideal") / r.Table.Get(rows[0], "ideal")
	}, "ideal-growth-x")
}

func BenchmarkFig11RelativeCompression(b *testing.B) {
	runExperiment(b, "fig11", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "cable")
	}, "cable-vs-cpack-x")
}

func BenchmarkFig12RawCompression(b *testing.B) {
	runExperiment(b, "fig12", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "cable")
	}, "cable-ratio-x")
}

func BenchmarkFig13Coherence(b *testing.B) {
	runExperiment(b, "fig13", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "cable")
	}, "cable-ratio-x")
}

func BenchmarkFig14aThroughput(b *testing.B) {
	runExperiment(b, "fig14a", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "cable")
	}, "cable-speedup-x")
}

func BenchmarkFig14bThreadSweep(b *testing.B) {
	runExperiment(b, "fig14b", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("2048 threads", "cable")
	}, "speedup-at-2048-x")
}

func BenchmarkFig15Cooperative(b *testing.B) {
	runExperiment(b, "fig15", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "cable-multi4") / r.Table.Get("mean", "cable-single")
	}, "cable-multi4-gain-x")
}

func BenchmarkFig16Destructive(b *testing.B) {
	runExperiment(b, "fig16", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "gzip")
	}, "gzip-pollution-rel")
}

func BenchmarkFig17LatencyOverhead(b *testing.B) {
	runExperiment(b, "fig17", func(r *cable.ExperimentResult) float64 {
		return 100 * r.Table.Get("mean", "cable")
	}, "cable-loss-pct")
}

func BenchmarkFig18Energy(b *testing.B) {
	runExperiment(b, "fig18", func(r *cable.ExperimentResult) float64 {
		return 100 * (1 - r.Table.Get("mean", "cable-total"))
	}, "energy-saved-pct")
}

func BenchmarkFig19aCacheSize(b *testing.B) {
	runExperiment(b, "fig19a", func(r *cable.ExperimentResult) float64 {
		rows := r.Table.Rows()
		return r.Table.Get(rows[len(rows)-1], "cable")
	}, "cable-at-max-llc-x")
}

func BenchmarkFig19bL4Ratio(b *testing.B) {
	runExperiment(b, "fig19b", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("1:8", "cable") / r.Table.Get("1:2", "cable")
	}, "l4-ratio-sensitivity")
}

func BenchmarkFig20Engines(b *testing.B) {
	runExperiment(b, "fig20", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "oracle")
	}, "oracle-ratio-x")
}

func BenchmarkFig21HashTableSize(b *testing.B) {
	runExperiment(b, "fig21", func(r *cable.ExperimentResult) float64 {
		rows := r.Table.Rows()
		return r.Table.Get(rows[len(rows)-1], "relative")
	}, "smallest-table-rel")
}

func BenchmarkFig22AccessCount(b *testing.B) {
	runExperiment(b, "fig22", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("1", "relative")
	}, "one-access-rel")
}

func BenchmarkFig23LinkWidth(b *testing.B) {
	runExperiment(b, "fig23", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("64-bit-packed", "cable") / r.Table.Get("64-bit", "cable")
	}, "packed-recovery-x")
}

func BenchmarkTab03Area(b *testing.B) {
	runExperiment(b, "tab3", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("off-chip buffer", "hash-table-%")
	}, "buffer-ht-pct")
}

func BenchmarkTogglesReduction(b *testing.B) {
	runExperiment(b, "toggles", func(r *cable.ExperimentResult) float64 {
		return 100 * r.Table.Get("mean", "cable")
	}, "toggle-reduction-pct")
}

func BenchmarkHeadline(b *testing.B) {
	runExperiment(b, "headline", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("cable vs cpack", "value")
	}, "cable-vs-cpack-x")
}

func BenchmarkOnOffControl(b *testing.B) {
	runExperiment(b, "onoff", func(r *cable.ExperimentResult) float64 {
		return 100 * r.Table.Get("mean", "adaptive-loss")
	}, "adaptive-loss-pct")
}

// benchRunAll drives the experiment runner over a fixed two-experiment
// workload (one sweep-heavy, one cheap) at the given pool size, so
// serial and parallel wall-clock are directly comparable with
// benchstat: go test -bench 'BenchmarkRunAll' -count 10.
func benchRunAll(b *testing.B, parallelism int) {
	ids := []string{"fig21", "tab3"}
	opt := cable.ExperimentOptions{Quick: true, Parallelism: parallelism}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cable.RunExperiments(ids, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllSerial(b *testing.B) { benchRunAll(b, 1) }

func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, runtime.GOMAXPROCS(0)) }

// BenchmarkRunAllScaling is the experiment-runner scaling probe: the
// worker pool tracks GOMAXPROCS, so driving one binary with the -cpu
// list (`make bench-scaling`, i.e. go test -cpu 1,2,4,8,16) yields one
// wall-clock point per core count, and tools/benchjson turns the -N
// name suffixes into the speedup/efficiency columns BENCH_pr6.json and
// the README's scaling table quote. The cell memo is disabled: all -cpu
// points share one process, so later points would otherwise be served
// from the first point's cache and measure nothing.
func BenchmarkRunAllScaling(b *testing.B) {
	ids := []string{"fig21", "tab3"}
	opt := cable.ExperimentOptions{Quick: true, Parallelism: runtime.GOMAXPROCS(0), DisableCellMemo: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cable.RunExperiments(ids, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemLinkProtocolScaling measures aggregate protocol
// throughput over GOMAXPROCS concurrent chips (each op is one full
// memory-link run on a private chip). The workload is embarrassingly
// parallel by construction, so efficiency lost under -cpu scaling is
// runtime, allocator, or metrics-registry contention — the serial
// bottlenecks this PR removes — not algorithm.
func BenchmarkMemLinkProtocolScaling(b *testing.B) {
	cfg := cable.DefaultMemoryLinkConfig("dealII")
	cfg.AccessesPerProgram = 2000
	cfg.WithMeters = false
	cfg.Chip.LLCBytes = 256 << 10
	cfg.Chip.L4Bytes = 1 << 20
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cable.RunMemoryLink(cfg); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkMeshSoak is the topology engine's throughput benchmark: one
// op is a full fault-injected 16-chip mesh run (schedule, parallel
// per-link encode, replay) at 50k transfers. transfers/s is the number
// BENCH_pr8.json quotes; MB/s is the simulated source data pushed
// through the per-link CABLE pipelines per wall-clock second.
func BenchmarkMeshSoak(b *testing.B) {
	cfg := cable.DefaultTopologyConfig("dealII")
	cfg.Transfers = 50000
	cfg.Verify = false
	cfg.Fault = cable.FaultConfig{BitRate: 1e-3, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	var transfers uint64
	for i := 0; i < b.N; i++ {
		res, err := cable.RunTopology(cfg)
		if err != nil {
			b.Fatal(err)
		}
		transfers += res.LinkTransfers
	}
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(transfers)/secs, "transfers/s")
		b.ReportMetric(float64(transfers)*64/1e6/secs, "MB/s")
	}
}

// --- micro-benchmarks of the hot paths ---

// warmChip builds a memory-link chip and drives it to steady state, so
// the encode-path benchmarks below measure warm-structure behavior.
// It takes testing.TB so the alloc-guard test shares the setup.
func warmChip(tb testing.TB) (*sim.Chip, []uint64) {
	tb.Helper()
	cfg := cable.DefaultMemoryLinkConfig("dealII")
	cfg.AccessesPerProgram = 4000
	cfg.WithMeters = false
	cfg.Chip.LLCBytes = 256 << 10
	cfg.Chip.L4Bytes = 1 << 20
	res, err := cable.RunMemoryLink(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	chip := res.Chip
	var addrs []uint64
	for idx := 0; idx < chip.L4.NumSets(); idx++ {
		for way := 0; way < chip.L4.Config().Ways; way++ {
			if addr, ok := chip.L4.LineAddrOf(cable.LineID{Index: idx, Way: way}); ok {
				addrs = append(addrs, addr)
			}
		}
	}
	if len(addrs) == 0 {
		tb.Fatal("warm chip has empty L4")
	}
	return chip, addrs
}

// benchFillStream precomputes the fill request stream both encode
// benchmarks consume, so they measure API cost over the same work: a
// power-of-two-length cycle of resident addresses with rotating
// replacement ways. The per-line caller pulls one request at a time;
// the batch caller hands over 32-request windows — exactly the call
// shapes the two APIs impose on a runner draining a fill queue.
func benchFillStream(addrs []uint64, ways int) []cable.BatchFill {
	const n = 4096 // power of two: the cycle index reduces to a mask
	reqs := make([]cable.BatchFill, n)
	for i := range reqs {
		reqs[i] = cable.BatchFill{LineAddr: addrs[i%len(addrs)], State: cable.Shared, ReplWay: i % ways}
	}
	return reqs
}

// BenchmarkEncodeFill measures the per-line encode hot path on a warm
// home end: standalone compression, signature search, candidate
// ranking, DIFF compression and hash-table/WMT synchronization. The
// encode path is allocation-free in steady state (0 allocs/op).
func BenchmarkEncodeFill(b *testing.B) {
	chip, addrs := warmChip(b)
	reqs := benchFillStream(addrs, chip.LLC.Config().Ways)
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rq := &reqs[i&(len(reqs)-1)]
		if _, _, err := chip.Home.EncodeFill(rq.LineAddr, rq.State, rq.ReplWay); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeBatch measures the batched encode API at batch size
// 32 on the same warm chip and request stream as BenchmarkEncodeFill;
// divide ns/op by 32 for the per-line figure the README's efficiency
// table quotes. The batch path amortizes metric publication, probing
// and capability checks across the batch and must stay at 0 allocs/op.
func BenchmarkEncodeBatch(b *testing.B) {
	chip, addrs := warmChip(b)
	reqs := benchFillStream(addrs, chip.LLC.Config().Ways)
	const batch = 32
	b.SetBytes(batch * 64)
	b.ReportAllocs()
	b.ResetTimer()
	off := 0
	for i := 0; i < b.N; i++ {
		if err := chip.Home.EncodeFills(reqs[off:off+batch], nil); err != nil {
			b.Fatal(err)
		}
		off = (off + batch) & (len(reqs) - 1)
	}
}

// BenchmarkDecodeFill measures one encode→decode round trip plus the
// remote-side install bookkeeping that keeps the WMT truthful
// (references resolved from the remote data array, DIFF expanded by
// the engine).
func BenchmarkDecodeFill(b *testing.B) {
	chip, addrs := warmChip(b)
	ways := chip.LLC.Config().Ways
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := addrs[i%len(addrs)]
		way := i % ways
		p, _, err := chip.Home.EncodeFill(addr, cable.Shared, way)
		if err != nil {
			b.Fatal(err)
		}
		data, err := chip.Remote.DecodeFill(p)
		if err != nil {
			b.Fatal(err)
		}
		id := cable.LineID{Index: chip.LLC.IndexOf(addr), Way: way}
		chip.LLC.InsertAt(addr, data, cable.Shared, way)
		chip.Remote.OnFillInstalled(id, data, cable.Shared)
	}
}

// BenchmarkMemLinkProtocol is the former end-to-end form of
// BenchmarkEncodeFill: whole-protocol throughput on a warm chip,
// including every meter-free simulator layer.
func BenchmarkMemLinkProtocol(b *testing.B) {
	cfg := cable.DefaultMemoryLinkConfig("dealII")
	cfg.AccessesPerProgram = 2000
	cfg.WithMeters = false
	cfg.Chip.LLCBytes = 256 << 10
	cfg.Chip.L4Bytes = 1 << 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cable.RunMemoryLink(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineCompress(b *testing.B) {
	line := make([]byte, 64)
	ref := make([]byte, 64)
	for i := range line {
		line[i] = byte(i * 31)
		ref[i] = byte(i * 31)
	}
	ref[5] ^= 0xFF
	refs := [][]byte{ref}
	for _, name := range []string{"bdi", "cpack", "lbe", "oracle"} {
		e, err := cable.NewEngine(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(64)
			for i := 0; i < b.N; i++ {
				e.Compress(line, refs)
			}
		})
	}
}

func BenchmarkAblation(b *testing.B) {
	runExperiment(b, "ablation", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("baseline (17b LIDs, depth 2, 2 sigs)", "ratio") /
			r.Table.Get("40b tag pointers (no WMT)", "ratio")
	}, "wmt-pointer-gain-x")
}
