package cable_test

// Benchmark harness: one testing.B target per table/figure of the
// paper's evaluation (§VI). Each bench runs the corresponding
// experiment driver at reduced scale and reports the headline metric of
// that figure via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in miniature. cmd/cablereport runs
// the same drivers at full scale.

import (
	"testing"

	"cable"
)

// runExperiment executes an experiment once per benchmark iteration and
// reports metric(result) under the given unit.
func runExperiment(b *testing.B, id string, metric func(*cable.ExperimentResult) float64, unit string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := cable.RunExperiment(id, cable.ExperimentOptions{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		last = metric(res)
	}
	b.ReportMetric(last, unit)
	b.ReportMetric(0, "ns/op") // wall time is not the result here
}

func BenchmarkFig03DictionarySize(b *testing.B) {
	runExperiment(b, "fig3", func(r *cable.ExperimentResult) float64 {
		rows := r.Table.Rows()
		return r.Table.Get(rows[len(rows)-1], "ideal") / r.Table.Get(rows[0], "ideal")
	}, "ideal-growth-x")
}

func BenchmarkFig11RelativeCompression(b *testing.B) {
	runExperiment(b, "fig11", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "cable")
	}, "cable-vs-cpack-x")
}

func BenchmarkFig12RawCompression(b *testing.B) {
	runExperiment(b, "fig12", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "cable")
	}, "cable-ratio-x")
}

func BenchmarkFig13Coherence(b *testing.B) {
	runExperiment(b, "fig13", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "cable")
	}, "cable-ratio-x")
}

func BenchmarkFig14aThroughput(b *testing.B) {
	runExperiment(b, "fig14a", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "cable")
	}, "cable-speedup-x")
}

func BenchmarkFig14bThreadSweep(b *testing.B) {
	runExperiment(b, "fig14b", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("2048 threads", "cable")
	}, "speedup-at-2048-x")
}

func BenchmarkFig15Cooperative(b *testing.B) {
	runExperiment(b, "fig15", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "cable-multi4") / r.Table.Get("mean", "cable-single")
	}, "cable-multi4-gain-x")
}

func BenchmarkFig16Destructive(b *testing.B) {
	runExperiment(b, "fig16", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "gzip")
	}, "gzip-pollution-rel")
}

func BenchmarkFig17LatencyOverhead(b *testing.B) {
	runExperiment(b, "fig17", func(r *cable.ExperimentResult) float64 {
		return 100 * r.Table.Get("mean", "cable")
	}, "cable-loss-pct")
}

func BenchmarkFig18Energy(b *testing.B) {
	runExperiment(b, "fig18", func(r *cable.ExperimentResult) float64 {
		return 100 * (1 - r.Table.Get("mean", "cable-total"))
	}, "energy-saved-pct")
}

func BenchmarkFig19aCacheSize(b *testing.B) {
	runExperiment(b, "fig19a", func(r *cable.ExperimentResult) float64 {
		rows := r.Table.Rows()
		return r.Table.Get(rows[len(rows)-1], "cable")
	}, "cable-at-max-llc-x")
}

func BenchmarkFig19bL4Ratio(b *testing.B) {
	runExperiment(b, "fig19b", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("1:8", "cable") / r.Table.Get("1:2", "cable")
	}, "l4-ratio-sensitivity")
}

func BenchmarkFig20Engines(b *testing.B) {
	runExperiment(b, "fig20", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("mean", "oracle")
	}, "oracle-ratio-x")
}

func BenchmarkFig21HashTableSize(b *testing.B) {
	runExperiment(b, "fig21", func(r *cable.ExperimentResult) float64 {
		rows := r.Table.Rows()
		return r.Table.Get(rows[len(rows)-1], "relative")
	}, "smallest-table-rel")
}

func BenchmarkFig22AccessCount(b *testing.B) {
	runExperiment(b, "fig22", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("1", "relative")
	}, "one-access-rel")
}

func BenchmarkFig23LinkWidth(b *testing.B) {
	runExperiment(b, "fig23", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("64-bit-packed", "cable") / r.Table.Get("64-bit", "cable")
	}, "packed-recovery-x")
}

func BenchmarkTab03Area(b *testing.B) {
	runExperiment(b, "tab3", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("off-chip buffer", "hash-table-%")
	}, "buffer-ht-pct")
}

func BenchmarkTogglesReduction(b *testing.B) {
	runExperiment(b, "toggles", func(r *cable.ExperimentResult) float64 {
		return 100 * r.Table.Get("mean", "cable")
	}, "toggle-reduction-pct")
}

func BenchmarkHeadline(b *testing.B) {
	runExperiment(b, "headline", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("cable vs cpack", "value")
	}, "cable-vs-cpack-x")
}

func BenchmarkOnOffControl(b *testing.B) {
	runExperiment(b, "onoff", func(r *cable.ExperimentResult) float64 {
		return 100 * r.Table.Get("mean", "adaptive-loss")
	}, "adaptive-loss-pct")
}

// --- micro-benchmarks of the hot paths ---

func BenchmarkEncodeFill(b *testing.B) {
	cfg := cable.DefaultMemoryLinkConfig("dealII")
	cfg.AccessesPerProgram = 1 // construct only
	cfg.WithMeters = false
	cfg.Chip.LLCBytes = 256 << 10
	cfg.Chip.L4Bytes = 1 << 20
	res, err := cable.RunMemoryLink(cfg)
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	// Measure end-to-end protocol throughput: accesses per second on
	// a warm chip.
	cfg.AccessesPerProgram = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cable.RunMemoryLink(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineCompress(b *testing.B) {
	line := make([]byte, 64)
	ref := make([]byte, 64)
	for i := range line {
		line[i] = byte(i * 31)
		ref[i] = byte(i * 31)
	}
	ref[5] ^= 0xFF
	refs := [][]byte{ref}
	for _, name := range []string{"bdi", "cpack", "lbe", "oracle"} {
		e, err := cable.NewEngine(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(64)
			for i := 0; i < b.N; i++ {
				e.Compress(line, refs)
			}
		})
	}
}

func BenchmarkAblation(b *testing.B) {
	runExperiment(b, "ablation", func(r *cable.ExperimentResult) float64 {
		return r.Table.Get("baseline (17b LIDs, depth 2, 2 sigs)", "ratio") /
			r.Table.Get("40b tag pointers (no WMT)", "ratio")
	}, "wmt-pointer-gain-x")
}
