package cable_test

// BenchmarkCodecStream races the CABLE streaming codec against
// compress/gzip and the in-repo streaming LZSS (the paper's hardware
// gzip stand-in, §VI) on two payload classes:
//
//   - trace: the concatenated line contents touched by a SPEC-model
//     workload generator — the cache-line traffic CABLE is built for.
//   - mix:   the line contents of the bursty multi-client mix spec in
//     examples/workloads, whose interleaved clients pollute any
//     single-dictionary compressor.
//
// Each sub-benchmark reports MB/s (plaintext throughput) and the
// end-to-end compression ratio (plaintext bytes per encoded byte, >1 is
// compression) so `make bench-json` snapshots both columns.

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	cable "cable"
	"cable/internal/compress"
	"cable/internal/workload"
	"cable/internal/workload/spec"
)

// tracePayload concatenates the line data of a workload generator's
// access stream: the byte stream a link-attached codec would see when
// streaming one chip's fill traffic.
func tracePayload(b *testing.B, bench string, lines int) []byte {
	b.Helper()
	g, err := workload.New(bench, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, 0, lines*64)
	for i := 0; i < lines; i++ {
		out = append(out, g.LineData(g.Next().LineAddr)...)
	}
	return out
}

// mixPayload concatenates the line data of the bursty multi-client mix:
// several clients' streams interleaved on one link.
func mixPayload(b *testing.B, lines int) []byte {
	b.Helper()
	w, err := spec.Load("examples/workloads/bursty-mix.json")
	if err != nil {
		b.Fatal(err)
	}
	m, err := spec.NewMix(w, spec.MixOptions{Budget: uint64(lines)})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, 0, lines*64)
	for i := 0; i < lines; i++ {
		em, err := m.Next()
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, m.LineData(em.Access.LineAddr)...)
	}
	return out
}

// codecStreamPayloads builds the benchmark corpus once per process.
func codecStreamPayloads(b *testing.B) map[string][]byte {
	b.Helper()
	const lines = 8 << 10 // 512 KB per class
	return map[string][]byte{
		"trace": tracePayload(b, "mcf", lines),
		"mix":   mixPayload(b, lines),
	}
}

func BenchmarkCodecStream(b *testing.B) {
	for _, class := range []string{"trace", "mix"} {
		payload := codecStreamPayloads(b)[class]

		b.Run(class+"/cable", func(b *testing.B) {
			e, err := cable.NewStreamEncoder(io.Discard, cable.StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			// Warm run pins the ratio column and grows the scratch.
			if _, err := e.Write(payload); err != nil {
				b.Fatal(err)
			}
			ratio := e.Stats.Ratio()
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Reset(io.Discard)
				if _, err := e.Write(payload); err != nil {
					b.Fatal(err)
				}
				if err := e.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ratio, "ratio")
		})

		b.Run(class+"/cable-decode", func(b *testing.B) {
			var wire bytes.Buffer
			e, err := cable.NewStreamEncoder(&wire, cable.StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Write(payload); err != nil {
				b.Fatal(err)
			}
			if err := e.Close(); err != nil {
				b.Fatal(err)
			}
			d := cable.NewStreamDecoder(bytes.NewReader(wire.Bytes()))
			sink := make([]byte, 64<<10)
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Reset(bytes.NewReader(wire.Bytes()))
				for {
					if _, err := d.Read(sink); err != nil {
						if err == io.EOF {
							break
						}
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(payload))/float64(wire.Len()), "ratio")
		})

		b.Run(class+"/gzip", func(b *testing.B) {
			var n countingDiscard
			w := gzip.NewWriter(&n)
			if _, err := w.Write(payload); err != nil {
				b.Fatal(err)
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			ratio := float64(len(payload)) / float64(n)
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var m countingDiscard
				w.Reset(&m)
				if _, err := w.Write(payload); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ratio, "ratio")
		})

		b.Run(class+"/lzss", func(b *testing.B) {
			// The paper's gzip stand-in: streaming LZSS with the 32 KB
			// max dictionary of IBM's ASIC, fed line by line.
			z := compress.NewLZSS("lzss", 32<<10)
			var bits int
			for off := 0; off+64 <= len(payload); off += 64 {
				bits += z.Compress(payload[off : off+64]).NBits
			}
			ratio := float64(len(payload)*8) / float64(bits)
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				z.Reset()
				for off := 0; off+64 <= len(payload); off += 64 {
					z.Compress(payload[off : off+64])
				}
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// countingDiscard is io.Discard with a length.
type countingDiscard int

func (c *countingDiscard) Write(p []byte) (int, error) {
	*c += countingDiscard(len(p))
	return len(p), nil
}

// BenchmarkCodecStreamPipelined measures the pipelined emission mode
// against a writer that costs something (a gzip-free memcpy sink), the
// case overlap is built for.
func BenchmarkCodecStreamPipelined(b *testing.B) {
	payload := codecStreamPayloads(b)["trace"]
	for _, pipe := range []bool{false, true} {
		name := "direct"
		if pipe {
			name = "pipelined"
		}
		b.Run(name, func(b *testing.B) {
			sink := make([]byte, 0, len(payload))
			w := &copySink{buf: sink}
			e, err := cable.NewStreamEncoder(w, cable.StreamOptions{Pipeline: pipe})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.buf = w.buf[:0]
				e.Reset(w)
				if _, err := e.Write(payload); err != nil {
					b.Fatal(err)
				}
				if err := e.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// copySink models a writer with real per-byte cost (one copy), like a
// socket buffer.
type copySink struct{ buf []byte }

func (s *copySink) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}
