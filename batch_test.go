package cable_test

// Equivalence contract of the batched encode/decode API: EncodeFills and
// DecodeFills must be observably indistinguishable from the one-line
// EncodeFill/DecodeFill loop — same payload bytes, same latencies, same
// HomeStats/RemoteStats, same metric totals — at every batch size. The
// batch path only defers counter publication; it must never change a
// decision.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"cable"
	"cable/internal/obs"
	"cable/internal/sim"
)

// batchWarmChip builds a deterministic warm chip whose link ends report
// into a private registry, so counter totals of independent chips can be
// compared exactly.
func batchWarmChip(t *testing.T, reg *obs.Registry) (*sim.Chip, []uint64) {
	t.Helper()
	cfg := cable.DefaultMemoryLinkConfig("dealII")
	cfg.AccessesPerProgram = 2000
	cfg.WithMeters = false
	cfg.Chip.LLCBytes = 128 << 10
	cfg.Chip.L4Bytes = 512 << 10
	cfg.Metrics = reg
	res, err := cable.RunMemoryLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chip := res.Chip
	var addrs []uint64
	for idx := 0; idx < chip.L4.NumSets(); idx++ {
		for way := 0; way < chip.L4.Config().Ways; way++ {
			if addr, ok := chip.L4.LineAddrOf(cable.LineID{Index: idx, Way: way}); ok {
				addrs = append(addrs, addr)
			}
		}
	}
	if len(addrs) == 0 {
		t.Fatal("warm chip has empty L4")
	}
	return chip, addrs
}

// batchFillSeq builds the shared driving sequence: cycling addresses,
// alternating coherence states (exercising both sides of the home-sync
// branch), rotating replacement ways.
func batchFillSeq(addrs []uint64, ways, n int) []cable.BatchFill {
	reqs := make([]cable.BatchFill, n)
	for i := range reqs {
		state := cable.Shared
		if i%3 == 2 {
			state = cable.Exclusive
		}
		reqs[i] = cable.BatchFill{
			LineAddr: addrs[(i*7)%len(addrs)],
			State:    state,
			ReplWay:  i % ways,
		}
	}
	return reqs
}

type encOut struct {
	img     []byte
	nbits   int
	lat     cable.FillLatency
	decoded []byte
}

func registryJSON(t *testing.T, reg *obs.Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEncodeFillsMatchesSequential drives identical warm chips with an
// identical request stream — one through the per-line API, the others
// through EncodeFills at several batch sizes including a non-divisor
// tail — and requires bit-identical payloads, equal latency models,
// equal Stats, and byte-equal metric dumps.
func TestEncodeFillsMatchesSequential(t *testing.T) {
	const n = 257

	regSeq := obs.NewRegistry()
	seqChip, addrs := batchWarmChip(t, regSeq)
	ways := seqChip.LLC.Config().Ways
	idxBits, wayBits := seqChip.LLC.IndexBits(), seqChip.LLC.WayBits()
	reqs := batchFillSeq(addrs, ways, n)

	seq := make([]encOut, n)
	for i, rq := range reqs {
		p, lat, err := seqChip.Home.EncodeFill(rq.LineAddr, rq.State, rq.ReplWay)
		if err != nil {
			t.Fatal(err)
		}
		enc := p.Marshal(idxBits, wayBits)
		data, err := seqChip.Remote.DecodeFill(p)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = encOut{
			img:     append([]byte(nil), enc.Data...),
			nbits:   enc.NBits,
			lat:     lat,
			decoded: append([]byte(nil), data...),
		}
	}
	seqHome := seqChip.Home.Stats
	seqRemote := seqChip.Remote.Stats
	seqDump := registryJSON(t, regSeq)

	for _, k := range []int{1, 5, 32} {
		t.Run(fmt.Sprintf("batch=%d", k), func(t *testing.T) {
			reg := obs.NewRegistry()
			chip, addrs2 := batchWarmChip(t, reg)
			if !reflect.DeepEqual(addrs2, addrs) {
				t.Fatal("warm chips disagree on resident lines; simulation is not deterministic")
			}
			got := make([]encOut, 0, n)
			payloads := make([]cable.Payload, 0, k)
			for off := 0; off < n; off += k {
				end := off + k
				if end > n {
					end = n
				}
				payloads = payloads[:0]
				err := chip.Home.EncodeFills(reqs[off:end], func(i int, p cable.Payload, lat cable.FillLatency) {
					enc := p.Marshal(idxBits, wayBits)
					got = append(got, encOut{
						img:   append([]byte(nil), enc.Data...),
						nbits: enc.NBits,
						lat:   lat,
					})
					payloads = append(payloads, p.Clone())
				})
				if err != nil {
					t.Fatal(err)
				}
				base := off
				if err := chip.Remote.DecodeFills(payloads, func(i int, data []byte) {
					got[base+i].decoded = append([]byte(nil), data...)
				}); err != nil {
					t.Fatal(err)
				}
			}
			if len(got) != n {
				t.Fatalf("emit called %d times, want %d", len(got), n)
			}
			for i := range got {
				if got[i].nbits != seq[i].nbits || !bytes.Equal(got[i].img, seq[i].img) {
					t.Fatalf("req %d: payload image differs from sequential encode (%d bits vs %d)", i, got[i].nbits, seq[i].nbits)
				}
				if got[i].lat != seq[i].lat {
					t.Fatalf("req %d: latency %+v, sequential %+v", i, got[i].lat, seq[i].lat)
				}
				if !bytes.Equal(got[i].decoded, seq[i].decoded) {
					t.Fatalf("req %d: batch decode differs from sequential decode", i)
				}
			}
			if chip.Home.Stats != seqHome {
				t.Errorf("HomeStats diverge:\nbatch: %+v\nseq:   %+v", chip.Home.Stats, seqHome)
			}
			if chip.Remote.Stats != seqRemote {
				t.Errorf("RemoteStats diverge:\nbatch: %+v\nseq:   %+v", chip.Remote.Stats, seqRemote)
			}
			if dump := registryJSON(t, reg); !bytes.Equal(dump, seqDump) {
				t.Errorf("metric totals diverge from sequential run:\n--- batch ---\n%s\n--- seq ---\n%s", dump, seqDump)
			}
		})
	}
}

// TestEncodeFillsMissingLine pins error behavior: a request for a line
// absent from the home cache fails with the already-emitted prefix's
// effects intact, exactly like a sequential caller stopping at the
// failure.
func TestEncodeFillsMissingLine(t *testing.T) {
	reg := obs.NewRegistry()
	chip, addrs := batchWarmChip(t, reg)
	ways := chip.LLC.Config().Ways

	// An address with the L4's tag bits flipped cannot be resident.
	var bogus uint64 = addrs[0] ^ (1 << 40)
	reqs := batchFillSeq(addrs, ways, 4)
	reqs = append(reqs, cable.BatchFill{LineAddr: bogus, State: cable.Shared})

	fills0 := chip.Home.Stats.Fills
	ctr0 := reg.Snapshot(false).Counters["core.fills"]
	emitted := 0
	err := chip.Home.EncodeFills(reqs, func(i int, p cable.Payload, lat cable.FillLatency) { emitted++ })
	if err == nil {
		t.Fatal("EncodeFills succeeded on a non-resident line")
	}
	if emitted != 4 {
		t.Fatalf("emitted %d payloads before the failure, want 4", emitted)
	}
	if d := chip.Home.Stats.Fills - fills0; d != 4 {
		t.Fatalf("Stats.Fills grew by %d, want 4 (failed line must not count)", d)
	}
	if d := reg.Snapshot(false).Counters["core.fills"] - ctr0; d != 4 {
		t.Fatalf("core.fills grew by %d after failed batch, want 4 (prefix flushed)", d)
	}
}
