# Tier-1 verification (ROADMAP.md): build + tests.
.PHONY: all build test check bench bench-json bench-scaling report soak-mesh

all: build test

build:
	go build ./...

test:
	go test ./...

# check is the pre-merge gate: formatting, vet, a race-detector hammer
# on the metrics registry, a one-iteration bench smoke, then the full
# suite under the race detector. The parallel execution layer
# (internal/experiments/runner.go) is exercised concurrently by the
# runner tests, so this catches data races in drivers and the core
# encode path.
check:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	go vet ./...
	go test -race -count=2 ./internal/obs
	go test -race -count=2 ./internal/codec
	go test -race -count=1 ./internal/workload
	go test -race -count=1 -run 'TestCellMemoReuse|TestMetricsDeterministic' ./internal/experiments
	go test -race -count=1 ./internal/fault
	go test -race -count=1 -run 'FaultSoak|FaultDeterminism|ZeroRateInert' ./internal/sim
	go test -run=NOTHING -fuzz=FuzzPayloadDecodeFaults -fuzztime=10s ./internal/core
	go test -run=NOTHING -fuzz=FuzzBitsWordParity -fuzztime=10s ./internal/bits
	go test -run=NOTHING -fuzz=FuzzParseSpec -fuzztime=10s ./internal/workload/spec
	go test -run=NOTHING -fuzz=FuzzCodecFrameDecode -fuzztime=10s ./internal/codec
	GOMAXPROCS=2 go test -race -run TestParallelDeterminism -count=1 ./internal/experiments
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	go run ./cmd/cablesim -exp fig12 -quick -parallel 1 -windows "$$tmp/w1.json" -timeline "$$tmp/t1.json" >/dev/null && \
	go run ./cmd/cablesim -exp fig12 -quick -parallel 8 -nomemo -gomaxprocs 2 -windows "$$tmp/w8.json" -timeline "$$tmp/t8.json" >/dev/null && \
	cmp "$$tmp/w1.json" "$$tmp/w8.json" && cmp "$$tmp/t1.json" "$$tmp/t8.json" && \
	go run ./tools/traceexport -in "$$tmp/t1.json" -o "$$tmp/trace.json" && \
	go run ./tools/traceexport -validate "$$tmp/trace.json"
	go run ./tools/benchjson -compare BENCH_pr5.json BENCH_pr6.json -max-regress 10
	go run ./tools/benchjson -compare BENCH_pr6.json BENCH_pr8.json -max-regress 10
	go run ./tools/benchjson -compare BENCH_pr8.json BENCH_pr10.json -max-regress 10
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	go run ./cmd/cablepipe -encode -stats < cable.go > "$$tmp/c.cbl" && \
	go run ./cmd/cablepipe -decode < "$$tmp/c.cbl" | cmp - cable.go
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	go run ./cmd/cablesim -exp mesh -quick -parallel 1 -metrics "$$tmp/mm1.json" >"$$tmp/m1.txt" && \
	go run ./cmd/cablesim -exp mesh -quick -parallel 8 -nomemo -gomaxprocs 2 -metrics "$$tmp/mm8.json" >"$$tmp/m8.txt" && \
	cmp "$$tmp/m1.txt" "$$tmp/m8.txt" && cmp "$$tmp/mm1.json" "$$tmp/mm8.json"
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	go run ./cmd/cabletrace -spec examples/workloads/bursty-mix.json -n 24000 -o "$$tmp/mix" >/dev/null && \
	go run ./cmd/cablesim -exp workload -quick -parallel 1 -workload-spec examples/workloads/bursty-mix.json | grep -v '^note:' >"$$tmp/wl-live.txt" && \
	go run ./cmd/cablesim -exp workload -quick -parallel 8 -nomemo -gomaxprocs 2 -workload-spec examples/workloads/bursty-mix.json \
		-replay "$$tmp/mix.frontend.trace,$$tmp/mix.batch.trace" | grep -v '^note:' >"$$tmp/wl-replay.txt" && \
	cmp "$$tmp/wl-live.txt" "$$tmp/wl-replay.txt" && \
	go run ./cmd/cablesim -exp mesh -quick -parallel 1 -workload-spec examples/workloads/bursty-mix.json >"$$tmp/ms1.txt" && \
	go run ./cmd/cablesim -exp mesh -quick -parallel 8 -nomemo -gomaxprocs 2 -workload-spec examples/workloads/bursty-mix.json >"$$tmp/ms8.txt" && \
	cmp "$$tmp/ms1.txt" "$$tmp/ms8.txt"
	GOMAXPROCS=2 go test -race -count=1 -run 'TestRunDeterministicAcrossParallelism' ./internal/topo
	CABLE_MESH_SOAK_TRANSFERS=1000000 go test -count=1 -run 'TestMeshSoak' ./internal/topo
	go test -run=NOTHING -bench=. -benchtime=1x .
	go test -run=NOTHING -bench 'BenchmarkRunAllScaling$$|BenchmarkMemLinkProtocolScaling$$' -benchtime=1x -benchmem -cpu 1,2 . | go run ./tools/benchjson >/dev/null
	go test -race -timeout 45m ./...

# bench runs the hot-path microbenchmarks in benchstat-friendly form
# (10 samples each); pipe the output of two builds into benchstat.
bench:
	go test -run xxx -bench 'BenchmarkEncodeFill|BenchmarkDecodeFill|BenchmarkEngineCompress' -benchmem -count 10 .

# bench-json snapshots the headline benchmarks (end-to-end protocol,
# full quick-scale report, hot encode path, the topology soak, the
# word-level bit-IO / signature-scan kernels, and the streaming codec
# vs gzip/LZSS) as committed JSON, so perf PRs carry machine-readable
# before/after numbers. The gated anchors shared with BENCH_pr8.json
# are BenchmarkEncodeFill and BenchmarkMemLinkProtocol: both are
# single-threaded and stable across sessions. BenchmarkEncodeBatch is
# deliberately excluded — it spawns a worker pool, so its number tracks
# container load, not code, and would trip the 10% cross-snapshot gate
# on noise (it still runs in make check's bench smoke). Likewise
# BenchmarkRunAllSerial as of this snapshot: it allocates ~73 MB/op, so
# its time is GC- and VM-load-bound — same-code A/B runs spread 22-31
# ms/op on the shared container, and the pr8 sample sits outside what
# pr8's own code reproduces today, so gating it compares weather, not
# code (it still runs in make check's bench smoke). Each benchmark
# runs -count 5 and benchjson keeps the fastest sample: minimum-of-N
# discards VM scheduler noise, which otherwise dwarfs real deltas.
bench-json:
	{ go test -run xxx -bench 'BenchmarkMemLinkProtocol$$|BenchmarkEncodeFill$$|BenchmarkMeshSoak$$|BenchmarkCodecStream' -benchmem -count 5 . ; \
	  go test -run xxx -bench 'BenchmarkWriteBits$$|BenchmarkReadBits$$' -benchmem -count 5 ./internal/bits ; \
	  go test -run xxx -bench 'BenchmarkSigScan$$' -benchmem -count 5 ./internal/sig ; } \
		| go run ./tools/benchjson > BENCH_pr10.json

# bench-scaling snapshots the multi-core story as BENCH_pr6.json: the
# experiment-runner and protocol scaling curves at GOMAXPROCS 1/2/4/8/16
# (one binary, go test -cpu, so every point shares code and workload)
# plus the batched-encode headline. tools/benchjson derives speedup and
# per-core efficiency from the -N name suffixes. On a 1-vCPU container
# the >1-cpu points measure oversubscription, not speedup — DESIGN.md's
# "Multi-core scaling" section carries the mutex/block-profile evidence
# instead.
bench-scaling:
	{ go test -run xxx -bench 'BenchmarkRunAllScaling$$|BenchmarkMemLinkProtocolScaling$$' -benchmem -cpu 1,2,4,8,16 -count 1 . ; \
	  go test -run xxx -bench 'BenchmarkEncodeFill$$|BenchmarkEncodeBatch$$' -benchmem -count 1 . ; } \
		| go run ./tools/benchjson > BENCH_pr6.json

# soak-mesh drives the 16-chip mesh through 1M fault-injected transfers
# (the PR-acceptance run used 10M via CABLE_MESH_SOAK_TRANSFERS=10000000):
# zero panics, every corrupted frame counted and recovered.
soak-mesh:
	CABLE_MESH_SOAK_TRANSFERS=1000000 go test -count=1 -run 'TestMeshSoak' -v ./internal/topo

report:
	go run ./cmd/cablereport -quick
