package trace

import (
	"bytes"
	"io"
	"os"
	"testing"

	"cable/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	gen, err := workload.New("gcc", 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := workload.New("gcc", 0, 1<<20)

	var buf bytes.Buffer
	if err := Record(&buf, gen, 1000); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h := r.Header()
	if h.Benchmark != "gcc" || h.AddrBase != 1<<20 || h.Records != 1000 {
		t.Fatalf("header = %+v", h)
	}
	for i := 0; i < 1000; i++ {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want := ref.Next()
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE123"))); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := NewReader(bytes.NewReader([]byte("CB"))); err == nil {
		t.Fatal("short header should error")
	}
}

func TestTruncatedRecord(t *testing.T) {
	gen, _ := workload.New("gcc", 0, 0)
	var buf bytes.Buffer
	if err := Record(&buf, gen, 2); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("first record should parse: %v", err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated record should be a hard error, got %v", err)
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Benchmark: "x"})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Write(workload.Access{}); err == nil {
		t.Fatal("write after close should error")
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := NewWriter(&buf, Header{Benchmark: string(long)}); err == nil {
		t.Fatal("overlong name should error")
	}
	w, _ := NewWriter(&buf, Header{Benchmark: "ok"})
	if err := w.Write(workload.Access{Gap: -1}); err == nil {
		t.Fatal("negative gap should error")
	}
}

// TestGapBounds pins the writer's gap range to the on-disk uint32
// field: every representable value round-trips (including 1<<31, which
// the historical check wrongly rejected alongside wrongly accepting
// nothing above it), and the first unrepresentable value is rejected.
func TestGapBounds(t *testing.T) {
	accepted := []int{0, 1, 1<<31 - 1, 1 << 31, 1<<32 - 1}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Benchmark: "gcc", Records: uint64(len(accepted))})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range accepted {
		if err := w.Write(workload.Access{LineAddr: 1, Gap: g}); err != nil {
			t.Fatalf("gap %d should be accepted: %v", g, err)
		}
	}
	for _, g := range []int{-1, 1 << 32, 1<<32 + 7} {
		if err := w.Write(workload.Access{LineAddr: 1, Gap: g}); err == nil {
			t.Fatalf("gap %d should be rejected", g)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range accepted {
		a, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if a.Gap != g {
			t.Fatalf("record %d: gap %d != %d", i, a.Gap, g)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestRecordSetsInstance pins the bugfix for recorded co-run copies:
// the header must carry the generator's instance so replays of co-run
// captures stay distinguishable.
func TestRecordSetsInstance(t *testing.T) {
	gen, err := workload.New("gcc", 3, 1<<32)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(&buf, gen, 10); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h := r.Header()
	if h.Instance != 3 {
		t.Fatalf("instance = %d, want 3", h.Instance)
	}
	if h.Records != 10 {
		t.Fatalf("records = %d, want 10", h.Records)
	}
}

// TestRecordsBackpatch covers the v2 count reconciliation paths: a
// seekable sink gets the true count patched into the header, a
// non-seekable sink keeps an unknown (0) count silently, and a
// non-seekable sink with a wrong declared count fails Close.
func TestRecordsBackpatch(t *testing.T) {
	path := t.TempDir() + "/t.trace"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, Header{Benchmark: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := w.Write(workload.Access{LineAddr: uint64(i), Gap: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Records != 7 {
		t.Fatalf("seekable sink: records = %d, want backpatched 7", tr.Header.Records)
	}

	var buf bytes.Buffer
	w, _ = NewWriter(&buf, Header{Benchmark: "gcc"})
	w.Write(workload.Access{Gap: 1})
	if err := w.Close(); err != nil {
		t.Fatalf("unknown declared count on a pipe should close clean: %v", err)
	}
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	if r.Header().Records != 0 {
		t.Fatalf("pipe sink: records = %d, want unknown (0)", r.Header().Records)
	}

	buf.Reset()
	w, _ = NewWriter(&buf, Header{Benchmark: "gcc", Records: 5})
	w.Write(workload.Access{Gap: 1})
	if err := w.Close(); err == nil {
		t.Fatal("wrong declared count on a pipe should fail Close")
	}
}

// TestV1Golden proves back-compat against a committed CBLT0001 file:
// the header parses with Records reported as 0 (unknown), and every
// record — including gaps above the v1 writer's wrong 1<<31 bound —
// reads back verbatim.
func TestV1Golden(t *testing.T) {
	f, err := os.Open("testdata/v1_gcc.trace")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	h := r.Header()
	if h.Benchmark != "gcc" || h.Instance != 2 || h.AddrBase != 4096 || h.Records != 0 {
		t.Fatalf("v1 header = %+v", h)
	}
	want := []workload.Access{
		{LineAddr: 4096, Gap: 1},
		{LineAddr: 4097, Gap: 100, Write: true},
		{LineAddr: 4096 + 999, Gap: 1 << 31},
		{LineAddr: ^uint64(0), Gap: 1<<32 - 1, Write: true},
	}
	for i, wa := range want {
		a, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if a != wa {
			t.Fatalf("record %d: %+v != %+v", i, a, wa)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Benchmark: "x"})
	for i := 0; i < 5; i++ {
		w.Write(workload.Access{LineAddr: uint64(i), Gap: 1})
	}
	if w.Count() != 5 {
		t.Fatalf("count = %d", w.Count())
	}
}
