package trace

import (
	"bytes"
	"io"
	"testing"

	"cable/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	gen, err := workload.New("gcc", 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := workload.New("gcc", 0, 1<<20)

	var buf bytes.Buffer
	if err := Record(&buf, gen, 1000); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h := r.Header()
	if h.Benchmark != "gcc" || h.AddrBase != 1<<20 {
		t.Fatalf("header = %+v", h)
	}
	for i := 0; i < 1000; i++ {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want := ref.Next()
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE123"))); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := NewReader(bytes.NewReader([]byte("CB"))); err == nil {
		t.Fatal("short header should error")
	}
}

func TestTruncatedRecord(t *testing.T) {
	gen, _ := workload.New("gcc", 0, 0)
	var buf bytes.Buffer
	if err := Record(&buf, gen, 2); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("first record should parse: %v", err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated record should be a hard error, got %v", err)
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Benchmark: "x"})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Write(workload.Access{}); err == nil {
		t.Fatal("write after close should error")
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := NewWriter(&buf, Header{Benchmark: string(long)}); err == nil {
		t.Fatal("overlong name should error")
	}
	w, _ := NewWriter(&buf, Header{Benchmark: "ok"})
	if err := w.Write(workload.Access{Gap: -1}); err == nil {
		t.Fatal("negative gap should error")
	}
}

func TestCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Benchmark: "x"})
	for i := 0; i < 5; i++ {
		w.Write(workload.Access{LineAddr: uint64(i), Gap: 1})
	}
	if w.Count() != 5 {
		t.Fatalf("count = %d", w.Count())
	}
}
