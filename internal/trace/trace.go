// Package trace records and replays memory-access streams. The paper
// evaluates on SimPoint traces; this package gives the synthetic
// workloads the same workflow — capture a stream once, replay it
// deterministically across schemes and configurations — and defines the
// compact binary format the cabletrace tool reads and writes.
//
// Format v2 ("CBLT0002") headers carry the record count so readers can
// pre-size buffers and detect truncation even when the file is cut at a
// record boundary. v1 ("CBLT0001") files remain readable; their count
// is reported as 0, meaning unknown.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"cable/internal/workload"
)

// Magic strings identify the trace file format versions.
const (
	magicV1 = "CBLT0001"
	magicV2 = "CBLT0002"
)

// ErrTruncated reports a trace whose body ends before the record count
// declared in its header.
var ErrTruncated = errors.New("trace: truncated")

// Header describes a recorded trace.
type Header struct {
	Benchmark string
	Instance  uint32
	AddrBase  uint64
	// Records is the number of records the trace declares. 0 means
	// unknown (v1 files, or a streaming v2 writer that could not
	// backpatch); readers skip truncation validation when unknown.
	Records uint64
}

// recordSize is the fixed on-disk record width: 8B line address,
// 4B gap, 1B flags.
const recordSize = 13

// recordsOffset returns the byte offset of the Records field for a
// given benchmark name, so Close can backpatch the true count.
func recordsOffset(benchmark string) int64 {
	return int64(len(magicV2) + 1 + len(benchmark) + 4 + 8)
}

// Writer streams access records to w.
type Writer struct {
	bw     *bufio.Writer
	seeker io.WriteSeeker // non-nil when the sink supports backpatching
	header Header
	count  uint64
	closed bool
}

// NewWriter writes a v2 trace header for the given source and returns a
// Writer for its records. h.Records may declare the count upfront; if
// the count written before Close differs, Close backpatches it when w
// seeks (e.g. *os.File) and errors otherwise — unless the declared
// count was 0 (unknown), which any sink accepts.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicV2); err != nil {
		return nil, err
	}
	name := []byte(h.Benchmark)
	if len(name) > 255 {
		return nil, fmt.Errorf("trace: benchmark name %q too long", h.Benchmark)
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return nil, err
	}
	if _, err := bw.Write(name); err != nil {
		return nil, err
	}
	var fixed [20]byte
	binary.LittleEndian.PutUint32(fixed[0:], h.Instance)
	binary.LittleEndian.PutUint64(fixed[4:], h.AddrBase)
	binary.LittleEndian.PutUint64(fixed[12:], h.Records)
	if _, err := bw.Write(fixed[:]); err != nil {
		return nil, err
	}
	ws, _ := w.(io.WriteSeeker)
	return &Writer{bw: bw, seeker: ws, header: h}, nil
}

// Write appends one access record: line address delta-encoded against
// the base is not attempted — records are fixed 13-byte entries
// (8B address, 4B gap, 1B flags) for simplicity and O(1) seeking.
func (w *Writer) Write(a workload.Access) error {
	if w.closed {
		return fmt.Errorf("trace: write after Close")
	}
	// The on-disk gap field is a uint32: accept its full range and
	// nothing else.
	if a.Gap < 0 || uint64(a.Gap) > math.MaxUint32 {
		return fmt.Errorf("trace: gap %d out of uint32 range", a.Gap)
	}
	var rec [recordSize]byte
	binary.LittleEndian.PutUint64(rec[0:], a.LineAddr)
	binary.LittleEndian.PutUint32(rec[8:], uint32(a.Gap))
	if a.Write {
		rec[12] = 1
	}
	if _, err := w.bw.Write(rec[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes the stream and reconciles the header's record count
// with the records actually written.
func (w *Writer) Close() error {
	w.closed = true
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.count == w.header.Records {
		return nil
	}
	if w.seeker == nil {
		if w.header.Records == 0 {
			return nil // count stays unknown; readers skip validation
		}
		return fmt.Errorf("trace: wrote %d records but header declares %d and sink cannot seek",
			w.count, w.header.Records)
	}
	if _, err := w.seeker.Seek(recordsOffset(w.header.Benchmark), io.SeekStart); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], w.count)
	if _, err := w.seeker.Write(buf[:]); err != nil {
		return err
	}
	_, err := w.seeker.Seek(0, io.SeekEnd)
	return err
}

// Reader replays a recorded trace.
type Reader struct {
	br     *bufio.Reader
	header Header
	read   uint64
}

// NewReader parses the header (v1 or v2) and prepares record iteration.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magicV2))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	var version int
	switch string(got) {
	case magicV1:
		version = 1
	case magicV2:
		version = 2
	default:
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	h := Header{Benchmark: string(name)}
	var fixed [12]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return nil, err
	}
	h.Instance = binary.LittleEndian.Uint32(fixed[0:])
	h.AddrBase = binary.LittleEndian.Uint64(fixed[4:])
	if version >= 2 {
		var cnt [8]byte
		if _, err := io.ReadFull(br, cnt[:]); err != nil {
			return nil, err
		}
		h.Records = binary.LittleEndian.Uint64(cnt[:])
	}
	return &Reader{br: br, header: h}, nil
}

// Header returns the trace metadata.
func (r *Reader) Header() Header { return r.header }

// Next returns the next record, or io.EOF at end of trace. When the
// header declares a record count, a stream ending early — even at a
// clean record boundary — returns an error wrapping ErrTruncated.
func (r *Reader) Next() (workload.Access, error) {
	if r.header.Records > 0 && r.read == r.header.Records {
		return workload.Access{}, io.EOF
	}
	var rec [recordSize]byte
	if _, err := io.ReadFull(r.br, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return workload.Access{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		if err == io.EOF && r.header.Records > 0 {
			return workload.Access{}, fmt.Errorf("%w: got %d of %d declared records",
				ErrTruncated, r.read, r.header.Records)
		}
		return workload.Access{}, err
	}
	gap := binary.LittleEndian.Uint32(rec[8:])
	if uint64(gap) > uint64(math.MaxInt) {
		// Unreachable on 64-bit platforms; guards 32-bit int overflow.
		return workload.Access{}, fmt.Errorf("trace: gap %d overflows int on this platform", gap)
	}
	r.read++
	return workload.Access{
		LineAddr: binary.LittleEndian.Uint64(rec[0:]),
		Gap:      int(gap),
		Write:    rec[12] != 0,
	}, nil
}

// Record captures n accesses from a generator into w. The header
// carries the generator's benchmark, co-run instance, address base,
// and the record count.
func Record(w io.Writer, gen *workload.Generator, n int) error {
	tw, err := NewWriter(w, Header{
		Benchmark: gen.Spec().Name,
		Instance:  uint32(gen.Instance()),
		AddrBase:  gen.AddrBase(),
		Records:   uint64(n),
	})
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := tw.Write(gen.Next()); err != nil {
			return err
		}
	}
	return tw.Close()
}
