// Package trace records and replays memory-access streams. The paper
// evaluates on SimPoint traces; this package gives the synthetic
// workloads the same workflow — capture a stream once, replay it
// deterministically across schemes and configurations — and defines the
// compact binary format the cabletrace tool reads and writes.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"cable/internal/workload"
)

// magic identifies the trace file format.
const magic = "CBLT0001"

// Header describes a recorded trace.
type Header struct {
	Benchmark string
	Instance  uint32
	AddrBase  uint64
	Records   uint64
}

// Writer streams access records to w.
type Writer struct {
	bw     *bufio.Writer
	count  uint64
	closed bool
}

// NewWriter writes a trace header for the given source and returns a
// Writer for its records.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	name := []byte(h.Benchmark)
	if len(name) > 255 {
		return nil, fmt.Errorf("trace: benchmark name %q too long", h.Benchmark)
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return nil, err
	}
	if _, err := bw.Write(name); err != nil {
		return nil, err
	}
	var fixed [12]byte
	binary.LittleEndian.PutUint32(fixed[0:], h.Instance)
	binary.LittleEndian.PutUint64(fixed[4:], h.AddrBase)
	if _, err := bw.Write(fixed[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Write appends one access record: line address delta-encoded against
// the base is not attempted — records are fixed 13-byte entries
// (8B address, 4B gap, 1B flags) for simplicity and O(1) seeking.
func (w *Writer) Write(a workload.Access) error {
	if w.closed {
		return fmt.Errorf("trace: write after Close")
	}
	var rec [13]byte
	binary.LittleEndian.PutUint64(rec[0:], a.LineAddr)
	if a.Gap < 0 || a.Gap > 1<<31 {
		return fmt.Errorf("trace: gap %d out of range", a.Gap)
	}
	binary.LittleEndian.PutUint32(rec[8:], uint32(a.Gap))
	if a.Write {
		rec[12] = 1
	}
	if _, err := w.bw.Write(rec[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes the stream.
func (w *Writer) Close() error {
	w.closed = true
	return w.bw.Flush()
}

// Reader replays a recorded trace.
type Reader struct {
	br     *bufio.Reader
	header Header
}

// NewReader parses the header and prepares record iteration.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var fixed [12]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return nil, err
	}
	return &Reader{
		br: br,
		header: Header{
			Benchmark: string(name),
			Instance:  binary.LittleEndian.Uint32(fixed[0:]),
			AddrBase:  binary.LittleEndian.Uint64(fixed[4:]),
		},
	}, nil
}

// Header returns the trace metadata.
func (r *Reader) Header() Header { return r.header }

// Next returns the next record, or io.EOF at end of trace.
func (r *Reader) Next() (workload.Access, error) {
	var rec [13]byte
	if _, err := io.ReadFull(r.br, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return workload.Access{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return workload.Access{}, err
	}
	return workload.Access{
		LineAddr: binary.LittleEndian.Uint64(rec[0:]),
		Gap:      int(binary.LittleEndian.Uint32(rec[8:])),
		Write:    rec[12] != 0,
	}, nil
}

// Record captures n accesses from a generator into w.
func Record(w io.Writer, gen *workload.Generator, n int) error {
	tw, err := NewWriter(w, Header{
		Benchmark: gen.Spec().Name,
		AddrBase:  gen.AddrBase(),
	})
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := tw.Write(gen.Next()); err != nil {
			return err
		}
	}
	return tw.Close()
}
