// Trace loading and replay sources. A loaded Trace is immutable and
// safe to share across concurrent simulations; each simulation wraps it
// in its own Source, which carries the read cursor and a content
// generator reconstructed from the header.
package trace

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"cable/internal/obs"
	"cable/internal/workload"
)

// ErrExhausted reports a replay source asked for more accesses than its
// trace holds.
var ErrExhausted = errors.New("trace: replay exhausted")

// Trace is a fully loaded capture: header plus every record, with a
// content digest for memo keys.
type Trace struct {
	Header   Header
	Accesses []workload.Access
	digest   [16]byte
}

// ReadAll loads a complete trace from r, validating the declared record
// count when the header carries one.
func ReadAll(r io.Reader) (*Trace, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	h := tr.Header()
	var recs []workload.Access
	if h.Records > 0 {
		recs = make([]workload.Access, 0, h.Records)
	}
	for {
		a, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, a)
	}
	t := &Trace{Header: h, Accesses: recs}
	t.digest = t.computeDigest()
	return t, nil
}

// Load reads a trace file from disk.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Digest returns a 128-bit content digest over the header and every
// record, for folding replayed traces into config digest chains:
// distinct captures never alias memo cells.
func (t *Trace) Digest() [16]byte { return t.digest }

func (t *Trace) computeDigest() [16]byte {
	h := fnv.New128a()
	var buf [13]byte
	io.WriteString(h, "cbltrace/v1\x00")
	io.WriteString(h, t.Header.Benchmark)
	h.Write([]byte{0})
	putU32(buf[:], t.Header.Instance)
	h.Write(buf[:4])
	putU64(buf[:], t.Header.AddrBase)
	h.Write(buf[:8])
	putU64(buf[:], uint64(len(t.Accesses)))
	h.Write(buf[:8])
	for _, a := range t.Accesses {
		putU64(buf[:], a.LineAddr)
		putU32(buf[8:], uint32(a.Gap))
		buf[12] = 0
		if a.Write {
			buf[12] = 1
		}
		h.Write(buf[:13])
	}
	var d [16]byte
	h.Sum(d[:0])
	return d
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Source replays a trace as a workload.Source: the access stream comes
// from the records, rebased from the capture's address base onto base;
// line contents come from a generator reconstructed from the header's
// benchmark and instance. Rebasing is sound because generated content
// is a pure function of the relative address.
type Source struct {
	t    *Trace
	base uint64
	pos  int
	gen  *workload.Generator
}

// Source builds a replay source over the trace, placing its address
// space at base and registering content-cache counters in reg (nil
// means the process-default registry). It fails if the header names a
// benchmark this build does not know, since contents could not be
// reconstructed.
func (t *Trace) Source(base uint64, reg *obs.Registry) (*Source, error) {
	gen, err := workload.NewIn(t.Header.Benchmark, int(t.Header.Instance), base, reg)
	if err != nil {
		return nil, fmt.Errorf("trace: cannot reconstruct content: %w", err)
	}
	return &Source{t: t, base: base, gen: gen}, nil
}

// Header returns the metadata of the underlying trace.
func (s *Source) Header() Header { return s.t.Header }

// Len returns the total number of records in the underlying trace.
func (s *Source) Len() int { return len(s.t.Accesses) }

// Remaining returns how many records are left to replay.
func (s *Source) Remaining() int { return len(s.t.Accesses) - s.pos }

// Next returns the next recorded access, rebased, or ErrExhausted past
// the end of the capture.
func (s *Source) Next() (workload.Access, error) {
	if s.pos >= len(s.t.Accesses) {
		return workload.Access{}, fmt.Errorf("%w: %q has %d records",
			ErrExhausted, s.t.Header.Benchmark, len(s.t.Accesses))
	}
	a := s.t.Accesses[s.pos]
	s.pos++
	a.LineAddr = a.LineAddr - s.t.Header.AddrBase + s.base
	return a, nil
}

// LineData materializes line contents at the rebased address.
func (s *Source) LineData(lineAddr uint64) []byte { return s.gen.LineData(lineAddr) }
