package trace

import (
	"bytes"
	"errors"
	"testing"

	"cable/internal/obs"
	"cable/internal/workload"
)

// TestReadAllAndSourceRebase records a co-run copy at one address base
// and replays it at another: the replayed stream must equal the live
// generator's stream shifted by the base delta, and contents at the
// new base must match a live generator placed there (content is a pure
// function of the relative address).
func TestReadAllAndSourceRebase(t *testing.T) {
	const n = 500
	gen, err := workload.New("gcc", 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(&buf, gen, n); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Accesses) != n || tr.Header.Records != n {
		t.Fatalf("loaded %d accesses, header %d, want %d", len(tr.Accesses), tr.Header.Records, n)
	}

	const newBase = 5 << 32
	src, err := tr.Source(newBase, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := workload.NewIn("gcc", 2, newBase, obs.NewRegistry())
	for i := 0; i < n; i++ {
		got, err := src.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want := ref.Next()
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
		line := src.LineData(got.LineAddr)
		if !bytes.Equal(line, ref.LineData(want.LineAddr)) {
			t.Fatalf("record %d: content mismatch at %#x", i, got.LineAddr)
		}
	}
	if _, err := src.Next(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted past the capture, got %v", err)
	}
}

// TestTraceDigestDistinct pins digest behavior: loading the same bytes
// twice gives the same digest, and any change — one record, or only a
// header field — gives a different one (distinct captures never alias
// memo cells).
func TestTraceDigestDistinct(t *testing.T) {
	mk := func(instance uint32, gap int) *Trace {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{Benchmark: "gcc", Instance: instance, Records: 2})
		if err != nil {
			t.Fatal(err)
		}
		w.Write(workload.Access{LineAddr: 1, Gap: 1})
		w.Write(workload.Access{LineAddr: 2, Gap: gap})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		tr, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a1, a2 := mk(0, 7), mk(0, 7)
	if a1.Digest() != a2.Digest() {
		t.Fatal("identical captures must share a digest")
	}
	if a1.Digest() == mk(0, 8).Digest() {
		t.Fatal("a record change must change the digest")
	}
	if a1.Digest() == mk(1, 7).Digest() {
		t.Fatal("a header change must change the digest")
	}
}

// TestSourceUnknownBenchmark: replay needs the content model, so a
// header naming an unknown benchmark must fail Source construction.
func TestSourceUnknownBenchmark(t *testing.T) {
	tr := &Trace{Header: Header{Benchmark: "no-such-benchmark"}}
	if _, err := tr.Source(0, obs.NewRegistry()); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}
