package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"cable/internal/workload"
)

// TestWriterReaderProperty round-trips randomized headers and record
// streams: whatever a Writer accepts, a Reader must return verbatim,
// and the stream must end in a clean io.EOF.
func TestWriterReaderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xCAB1E))
	for trial := 0; trial < 50; trial++ {
		h := Header{
			Benchmark: string(rune('a' + trial%26)),
			Instance:  rng.Uint32(),
			AddrBase:  rng.Uint64(),
		}
		n := rng.Intn(200)
		recs := make([]workload.Access, n)
		for i := range recs {
			recs[i] = workload.Access{
				LineAddr: rng.Uint64(),
				Gap:      rng.Intn(1 << 31),
				Write:    rng.Intn(2) == 1,
			}
		}

		var buf bytes.Buffer
		w, err := NewWriter(&buf, h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, a := range recs {
			if err := w.Write(a); err != nil {
				t.Fatalf("trial %d record %d: %v", trial, i, err)
			}
		}
		if w.Count() != uint64(n) {
			t.Fatalf("trial %d: count %d != %d", trial, w.Count(), n)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := r.Header()
		if got.Benchmark != h.Benchmark || got.Instance != h.Instance || got.AddrBase != h.AddrBase {
			t.Fatalf("trial %d: header %+v != %+v", trial, got, h)
		}
		for i, want := range recs {
			a, err := r.Next()
			if err != nil {
				t.Fatalf("trial %d record %d: %v", trial, i, err)
			}
			if a != want {
				t.Fatalf("trial %d record %d: %+v != %+v", trial, i, a, want)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("trial %d: want clean EOF, got %v", trial, err)
		}
	}
}

// TestTruncationAtEveryBoundary cuts a valid trace at every possible
// byte length and demands an error from somewhere — header parse or
// record iteration — never a silent short read. Only prefixes landing
// exactly on a record boundary may parse fully (with a clean EOF).
func TestTruncationAtEveryBoundary(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Benchmark: "gcc", Instance: 1, AddrBase: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	for i := 0; i < n; i++ {
		if err := w.Write(workload.Access{LineAddr: uint64(i) << 6, Gap: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	headerLen := len(full) - n*13

	for cut := 0; cut < len(full); cut++ {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if cut < headerLen {
			if err == nil {
				t.Fatalf("cut %d (inside header) parsed", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: header should parse: %v", cut, err)
		}
		recBytes := cut - headerLen
		whole, rem := recBytes/13, recBytes%13
		for i := 0; i < whole; i++ {
			if _, err := r.Next(); err != nil {
				t.Fatalf("cut %d: whole record %d failed: %v", cut, i, err)
			}
		}
		_, err = r.Next()
		if rem == 0 {
			if err != io.EOF {
				t.Fatalf("cut %d: want EOF after %d records, got %v", cut, whole, err)
			}
		} else if err == nil || err == io.EOF {
			t.Fatalf("cut %d: partial record must be a hard error, got %v", cut, err)
		}
	}
}
