package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"cable/internal/workload"
)

// TestWriterReaderProperty round-trips randomized headers and record
// streams: whatever a Writer accepts, a Reader must return verbatim,
// and the stream must end in a clean io.EOF.
func TestWriterReaderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xCAB1E))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		h := Header{
			Benchmark: string(rune('a' + trial%26)),
			Instance:  rng.Uint32(),
			AddrBase:  rng.Uint64(),
			Records:   uint64(n),
		}
		recs := make([]workload.Access, n)
		for i := range recs {
			recs[i] = workload.Access{
				LineAddr: rng.Uint64(),
				Gap:      int(rng.Uint32()), // full on-disk uint32 range
				Write:    rng.Intn(2) == 1,
			}
		}

		var buf bytes.Buffer
		w, err := NewWriter(&buf, h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, a := range recs {
			if err := w.Write(a); err != nil {
				t.Fatalf("trial %d record %d: %v", trial, i, err)
			}
		}
		if w.Count() != uint64(n) {
			t.Fatalf("trial %d: count %d != %d", trial, w.Count(), n)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := r.Header()
		if got != h {
			t.Fatalf("trial %d: header %+v != %+v", trial, got, h)
		}
		for i, want := range recs {
			a, err := r.Next()
			if err != nil {
				t.Fatalf("trial %d record %d: %v", trial, i, err)
			}
			if a != want {
				t.Fatalf("trial %d record %d: %+v != %+v", trial, i, a, want)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("trial %d: want clean EOF, got %v", trial, err)
		}
	}
}

// TestTruncationAtEveryBoundary cuts a valid v2 trace at every
// possible byte length and demands an error from somewhere — header
// parse or record iteration — never a silent short read. Because the
// v2 header declares the record count, even cuts landing exactly on a
// record boundary must now surface as ErrTruncated rather than the
// clean EOF v1 readers were forced to accept.
func TestTruncationAtEveryBoundary(t *testing.T) {
	var buf bytes.Buffer
	const n = 3
	w, err := NewWriter(&buf, Header{Benchmark: "gcc", Instance: 1, AddrBase: 64, Records: n})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Write(workload.Access{LineAddr: uint64(i) << 6, Gap: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	headerLen := len(full) - n*13

	for cut := 0; cut < len(full); cut++ {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if cut < headerLen {
			if err == nil {
				t.Fatalf("cut %d (inside header) parsed", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: header should parse: %v", cut, err)
		}
		recBytes := cut - headerLen
		whole, rem := recBytes/13, recBytes%13
		for i := 0; i < whole; i++ {
			if _, err := r.Next(); err != nil {
				t.Fatalf("cut %d: whole record %d failed: %v", cut, i, err)
			}
		}
		_, err = r.Next()
		switch {
		case rem != 0:
			if err == nil || err == io.EOF {
				t.Fatalf("cut %d: partial record must be a hard error, got %v", cut, err)
			}
		default: // clean record boundary, but short of the declared count
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: want ErrTruncated after %d of %d records, got %v", cut, whole, n, err)
			}
		}
	}

	// The uncut stream still ends in a clean EOF.
	r, err := NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}
