package core

import (
	"fmt"

	"cable/internal/obs"
)

// Config holds the CABLE framework parameters studied in §VI.
type Config struct {
	// MaxSearchSigs bounds signatures extracted per search; 16 for
	// 64-byte lines (§III-C).
	MaxSearchSigs int
	// AccessCount is how many pre-ranked candidates are read from the
	// data array for final ranking — 6 by default, swept in Fig 22.
	AccessCount int
	// MaxRefs is the number of references the DIFF may use (3).
	MaxRefs int
	// BucketDepth is the hash-table bucket size (2).
	BucketDepth int
	// InsertSigs is how many signatures are inserted per line when
	// synchronizing the hash tables — 2 in the paper, kept low to
	// limit hash collisions (§III-B). Ablation parameter.
	InsertSigs int
	// HashSizeFactor scales the hash table relative to "full-sized"
	// (= one entry per home-cache line): 1.0 full, 0.5 half, 2.0
	// double. Swept in Fig 21.
	HashSizeFactor float64
	// StandaloneThreshold: if compressing without references reaches
	// this ratio, skip the reference search entirely (§III-E, 16×).
	StandaloneThreshold float64
	// EngineName selects the delegated compression algorithm.
	EngineName string
	// SigSeed seeds the H3 hash; both link ends must agree.
	SigSeed int64
	// PointerBitsOverride, when > 0, replaces the geometry-derived
	// RemoteLID width in payload accounting — the §III-D ablation
	// that prices references at full tag width (e.g. 40 bits) as if
	// the WMT did not exist.
	PointerBitsOverride int
	// WritebackCompression enables remote→home compression. It is
	// disabled for non-inclusive hierarchies (§IV-C).
	WritebackCompression bool
	// Metrics, when non-nil, scopes this link's obs counters to a
	// private registry instead of the process default. Memoized
	// experiment cells use this so a cell's metric delta can be
	// captured once and replayed on cache hits. Not part of the
	// behavioral configuration: it never affects simulated results and
	// is excluded from content digests.
	Metrics *obs.Registry
}

// DefaultConfig returns the paper's baseline parameters.
func DefaultConfig() Config {
	return Config{
		MaxSearchSigs:        16,
		AccessCount:          6,
		MaxRefs:              3,
		BucketDepth:          2,
		InsertSigs:           2,
		HashSizeFactor:       1.0,
		StandaloneThreshold:  16,
		EngineName:           "lbe",
		SigSeed:              0xCAB1E,
		WritebackCompression: true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MaxRefs < 0 || c.MaxRefs > 3 {
		return fmt.Errorf("core: MaxRefs %d outside 0..3 (2-bit refcount field)", c.MaxRefs)
	}
	if c.AccessCount < 1 {
		return fmt.Errorf("core: AccessCount %d < 1", c.AccessCount)
	}
	if c.BucketDepth < 1 {
		return fmt.Errorf("core: BucketDepth %d < 1", c.BucketDepth)
	}
	if c.InsertSigs < 1 {
		return fmt.Errorf("core: InsertSigs %d < 1", c.InsertSigs)
	}
	if c.HashSizeFactor <= 0 {
		return fmt.Errorf("core: HashSizeFactor %v <= 0", c.HashSizeFactor)
	}
	if c.MaxSearchSigs < 1 {
		return fmt.Errorf("core: MaxSearchSigs %d < 1", c.MaxSearchSigs)
	}
	return nil
}

// Latency constants from Table IV / §IV-D, in core cycles. CABLE is
// modeled at its worst case throughout, as in the paper.
const (
	// SearchLatencyWorst is the full 16-signature search (§IV-D).
	SearchLatencyWorst = 16
	// SearchLatencyBest is a search with ≤2 signatures.
	SearchLatencyBest = 8
	// CompressLatency covers dictionary build + DIFF production.
	CompressLatency = 32
	// DecompressLatency covers dictionary build + reconstruction.
	DecompressLatency = 16
	// EndToEndLatency is search + compress + decompress.
	EndToEndLatency = SearchLatencyWorst + CompressLatency + DecompressLatency
)
