package core

import (
	"fmt"

	"cable/internal/bits"
	"cable/internal/cache"
	"cable/internal/compress"
)

// Payload is the unit CABLE transmits over the link (§III-E). Overheads
// are minimal: a 1-bit compressed flag, and for compressed payloads a
// 2-bit reference count followed by the RemoteLIDs and the
// variable-length DIFF. The DIFF length is implicit because the
// decompressed size is fixed (one cache line).
type Payload struct {
	Compressed bool
	Refs       []cache.LineID // RemoteLIDs, at most MaxRefs
	Diff       compress.Encoded
	Raw        []byte // uncompressed fallback, when !Compressed

	// AckSeq echoes the highest remote EvictSeq the home end had
	// processed when it produced this payload (§IV-A). It rides in
	// header fields the transport already carries, so it does not
	// count toward Bits.
	AckSeq uint64
}

// Clone returns a deep copy that owns its buffers. The payloads
// produced by EncodeFill/EncodeWriteback alias their end's reusable
// scratch and are valid only until that end's next encode; callers
// that retain a payload across encodes must Clone it first.
func (p Payload) Clone() Payload {
	q := p
	if p.Refs != nil {
		q.Refs = append([]cache.LineID(nil), p.Refs...)
	}
	if p.Diff.Data != nil {
		q.Diff.Data = append([]byte(nil), p.Diff.Data...)
	}
	if p.Raw != nil {
		q.Raw = append([]byte(nil), p.Raw...)
	}
	return q
}

// payload header widths.
const (
	flagBits     = 1
	refCountBits = 2
)

// Bits returns the exact transmitted size in bits given the RemoteLID
// width of the link.
func (p Payload) Bits(remoteLIDBits int) int {
	if !p.Compressed {
		return flagBits + len(p.Raw)*8
	}
	return flagBits + refCountBits + len(p.Refs)*remoteLIDBits + p.Diff.NBits
}

// Marshal serializes the payload to the wire. idxBits and wayBits
// describe the remote cache geometry (RemoteLID = index + way).
func (p Payload) Marshal(idxBits, wayBits int) compress.Encoded {
	var w bits.Writer
	return p.MarshalInto(&w, idxBits, wayBits)
}

// MarshalInto is the scratch form of Marshal: it resets w and writes
// the wire image into it, so a caller-owned Writer amortizes the
// buffer across payloads. The result aliases w and is valid until the
// Writer's next use.
func (p Payload) MarshalInto(w *bits.Writer, idxBits, wayBits int) compress.Encoded {
	w.Reset()
	if !p.Compressed {
		w.WriteBit(0)
		w.WriteBytes(p.Raw)
		return compress.Encoded{Data: w.Bytes(), NBits: w.Len()}
	}
	w.WriteBit(1)
	w.WriteBits(uint64(len(p.Refs)), refCountBits)
	for _, r := range p.Refs {
		w.WriteBits(uint64(r.Index), idxBits)
		w.WriteBits(uint64(r.Way), wayBits)
	}
	// The DIFF is the tail; its length is implied by the fixed
	// decompressed size, so no length field is sent.
	w.WriteStream(p.Diff.Data, p.Diff.NBits)
	return compress.Encoded{Data: w.Bytes(), NBits: w.Len()}
}

// MarshalGuarded is Marshal plus an appended CRC-8 guard over the
// payload image; UnmarshalPayloadGuarded verifies and strips it. The
// guard costs crcBits on the wire, so it is an option the fault-aware
// drivers enable rather than part of the baseline format (whose bit
// accounting matches the paper).
func (p Payload) MarshalGuarded(idxBits, wayBits int) compress.Encoded {
	var w bits.Writer
	return p.MarshalGuardedInto(&w, idxBits, wayBits)
}

// MarshalGuardedInto is the scratch form of MarshalGuarded.
func (p Payload) MarshalGuardedInto(w *bits.Writer, idxBits, wayBits int) compress.Encoded {
	enc := p.MarshalInto(w, idxBits, wayBits)
	crc := crc8Image(enc.Data, enc.NBits)
	w.WriteBits(uint64(crc), crcBits)
	return compress.Encoded{Data: w.Bytes(), NBits: w.Len()}
}

// UnmarshalPayload parses a wire payload. lineSize bounds the raw form.
// Anomalies surface as wrapped ErrTruncatedPayload, never a panic: the
// bit reader bounds every access to the physical buffer even when
// enc.NBits overstates it.
func UnmarshalPayload(enc compress.Encoded, idxBits, wayBits, lineSize int) (Payload, error) {
	r := enc.Reader()
	flag, err := r.ReadBit()
	if err != nil {
		return Payload{}, fmt.Errorf("core: empty payload: %w: %w", ErrTruncatedPayload, err)
	}
	if flag == 0 {
		raw, err := r.ReadBytes(lineSize)
		if err != nil {
			return Payload{}, fmt.Errorf("core: raw payload: %w: %w", ErrTruncatedPayload, err)
		}
		return Payload{Raw: raw}, nil
	}
	n, err := r.ReadBits(refCountBits)
	if err != nil {
		return Payload{}, fmt.Errorf("core: refcount: %w: %w", ErrTruncatedPayload, err)
	}
	p := Payload{Compressed: true}
	for i := 0; i < int(n); i++ {
		idx, err := r.ReadBits(idxBits)
		if err != nil {
			return Payload{}, fmt.Errorf("core: ref %d index: %w: %w", i, ErrTruncatedPayload, err)
		}
		way, err := r.ReadBits(wayBits)
		if err != nil {
			return Payload{}, fmt.Errorf("core: ref %d way: %w: %w", i, ErrTruncatedPayload, err)
		}
		p.Refs = append(p.Refs, cache.LineID{Index: int(idx), Way: int(way)})
	}
	nbits := r.Remaining()
	var dw bits.Writer
	dw.CopyRemaining(r)
	p.Diff = compress.Encoded{Data: dw.Bytes(), NBits: nbits}
	return p, nil
}

// PayloadScratch holds the reusable buffers of the allocation-free
// unmarshal path. One scratch belongs to one decoded payload at a time:
// the payload written by UnmarshalPayloadScratch aliases it and is valid
// until the scratch's next use. Callers that decode batches keep one
// scratch per in-flight payload.
type PayloadScratch struct {
	refs []cache.LineID
	raw  []byte
	diff bits.Writer
}

// UnmarshalPayloadScratch is UnmarshalPayload into caller scratch: the
// parsed payload is written through p and aliases s, so steady-state
// decodes allocate nothing once the scratch has grown to payload size.
func UnmarshalPayloadScratch(p *Payload, s *PayloadScratch, enc compress.Encoded, idxBits, wayBits, lineSize int) error {
	*p = Payload{}
	r := enc.Reader()
	flag, err := r.ReadBit()
	if err != nil {
		return fmt.Errorf("core: empty payload: %w: %w", ErrTruncatedPayload, err)
	}
	if flag == 0 {
		s.raw, err = r.AppendBytes(s.raw[:0], lineSize)
		if err != nil {
			return fmt.Errorf("core: raw payload: %w: %w", ErrTruncatedPayload, err)
		}
		p.Raw = s.raw
		return nil
	}
	n, err := r.ReadBits(refCountBits)
	if err != nil {
		return fmt.Errorf("core: refcount: %w: %w", ErrTruncatedPayload, err)
	}
	p.Compressed = true
	s.refs = s.refs[:0]
	for i := 0; i < int(n); i++ {
		idx, err := r.ReadBits(idxBits)
		if err != nil {
			return fmt.Errorf("core: ref %d index: %w: %w", i, ErrTruncatedPayload, err)
		}
		way, err := r.ReadBits(wayBits)
		if err != nil {
			return fmt.Errorf("core: ref %d way: %w: %w", i, ErrTruncatedPayload, err)
		}
		s.refs = append(s.refs, cache.LineID{Index: int(idx), Way: int(way)})
	}
	if len(s.refs) > 0 {
		p.Refs = s.refs
	}
	nbits := r.Remaining()
	s.diff.Reset()
	s.diff.CopyRemaining(r)
	p.Diff = compress.Encoded{Data: s.diff.Bytes(), NBits: nbits}
	return nil
}

// UnmarshalPayloadGuardedScratch is UnmarshalPayloadGuarded into caller
// scratch (see UnmarshalPayloadScratch).
func UnmarshalPayloadGuardedScratch(p *Payload, s *PayloadScratch, enc compress.Encoded, idxBits, wayBits, lineSize int) error {
	if enc.NBits < crcBits+flagBits {
		return fmt.Errorf("core: %d-bit image below guard size: %w", enc.NBits, ErrTruncatedPayload)
	}
	if enc.NBits > 8*len(enc.Data) {
		return fmt.Errorf("core: %d-bit image in %d-byte buffer: %w", enc.NBits, len(enc.Data), ErrTruncatedPayload)
	}
	bodyBits := enc.NBits - crcBits
	var got byte
	for i := 0; i < crcBits; i++ {
		pos := bodyBits + i
		got = got<<1 | enc.Data[pos/8]>>(7-uint(pos%8))&1
	}
	if want := crc8Image(enc.Data, bodyBits); got != want {
		return fmt.Errorf("core: guard %#02x, image CRC %#02x: %w", got, want, ErrCRCMismatch)
	}
	return UnmarshalPayloadScratch(p, s, compress.Encoded{Data: enc.Data, NBits: bodyBits}, idxBits, wayBits, lineSize)
}

// UnmarshalPayloadGuarded verifies and strips the CRC-8 guard appended
// by MarshalGuarded, then parses the remaining image. A failed check
// returns a wrapped ErrCRCMismatch; an image too short to carry the
// guard returns a wrapped ErrTruncatedPayload.
func UnmarshalPayloadGuarded(enc compress.Encoded, idxBits, wayBits, lineSize int) (Payload, error) {
	if enc.NBits < crcBits+flagBits {
		return Payload{}, fmt.Errorf("core: %d-bit image below guard size: %w", enc.NBits, ErrTruncatedPayload)
	}
	if enc.NBits > 8*len(enc.Data) {
		return Payload{}, fmt.Errorf("core: %d-bit image in %d-byte buffer: %w", enc.NBits, len(enc.Data), ErrTruncatedPayload)
	}
	bodyBits := enc.NBits - crcBits
	var got byte
	for i := 0; i < crcBits; i++ {
		pos := bodyBits + i
		got = got<<1 | enc.Data[pos/8]>>(7-uint(pos%8))&1
	}
	if want := crc8Image(enc.Data, bodyBits); got != want {
		return Payload{}, fmt.Errorf("core: guard %#02x, image CRC %#02x: %w", got, want, ErrCRCMismatch)
	}
	return UnmarshalPayload(compress.Encoded{Data: enc.Data, NBits: bodyBits}, idxBits, wayBits, lineSize)
}
