package core

import (
	"fmt"
	"sync"

	"cable/internal/obs"
)

// MaxRefsLimit is the architectural ceiling on references per payload
// (the 2-bit refcount field, enforced by Config.Validate).
const MaxRefsLimit = 3

// This file threads the encode/decode hot paths into the global metrics
// registry (internal/obs). Every link end resolves its counter pointers
// once at construction and draws a private shard index, so a
// steady-state increment is one uncontended atomic add on a padded
// cache line — cheap enough to leave enabled everywhere, including
// BenchmarkEncodeFill, which must stay at 0 allocs/op.
//
// The per-end HomeStats/RemoteStats structs remain the authoritative
// per-link numbers the simulators read; the registry aggregates the
// same events process-wide so `-metrics` and the live `/metrics`
// endpoint can see across every link of every experiment cell.

// homeCounters is the resolved counter block for home-end encoders.
// All home ends share the counter objects (they are process-wide
// aggregates); each end contributes through its own shard.
type homeCounters struct {
	fills          *obs.Counter
	thresholdSkips *obs.Counter
	sigsSearched   *obs.Counter
	htProbes       *obs.Counter // hash-table lookups issued
	htHits         *obs.Counter // LineIDs returned by those lookups
	htInserts      *obs.Counter
	htRemoves      *obs.Counter
	htCollisions   *obs.Counter // inserts that displaced a live entry
	candidatesRead *obs.Counter // data-array reads during ranking
	wmtHits        *obs.Counter
	wmtMisses      *obs.Counter
	outcomeRaw     *obs.Counter
	outcomeStand   *obs.Counter
	outcomeDiff    *obs.Counter
	refsUsed       [MaxRefsLimit + 1]*obs.Counter
	payloadBits    *obs.Counter
	sourceBits     *obs.Counter
	wbDecodes      *obs.Counter
	payloadDist    *obs.Histogram
}

// remoteCounters is the resolved block for remote-end decoders and
// write-back encoders.
type remoteCounters struct {
	fillDecodes   *obs.Counter
	evictRescues  *obs.Counter // references served by the eviction buffer
	evictBuffered *obs.Counter // evictions entering the buffer
	writebacks    *obs.Counter
	wbRaw         *obs.Counter
	wbStandalone  *obs.Counter
	wbDiff        *obs.Counter
	wbPayloadBits *obs.Counter
	htInserts     *obs.Counter
	htRemoves     *obs.Counter
}

func newHomeCounters(r *obs.Registry) homeCounters {
	hc := homeCounters{
		fills:          r.Counter("core.fills"),
		thresholdSkips: r.Counter("core.threshold_skips"),
		sigsSearched:   r.Counter("core.sigs_searched"),
		htProbes:       r.Counter("core.ht_probes"),
		htHits:         r.Counter("core.ht_hits"),
		htInserts:      r.Counter("core.ht_inserts"),
		htRemoves:      r.Counter("core.ht_removes"),
		htCollisions:   r.Counter("core.ht_collisions"),
		candidatesRead: r.Counter("core.candidates_read"),
		wmtHits:        r.Counter("core.wmt_hits"),
		wmtMisses:      r.Counter("core.wmt_misses"),
		outcomeRaw:     r.Counter("core.outcome_raw"),
		outcomeStand:   r.Counter("core.outcome_standalone"),
		outcomeDiff:    r.Counter("core.outcome_diff"),
		payloadBits:    r.Counter("core.payload_bits"),
		sourceBits:     r.Counter("core.source_bits"),
		wbDecodes:      r.Counter("core.wb_decodes"),
		payloadDist:    r.Histogram("core.payload_bits_dist"),
	}
	for i := range hc.refsUsed {
		hc.refsUsed[i] = r.Counter(fmt.Sprintf("core.refs_used_%d", i))
	}
	return hc
}

func newRemoteCounters(r *obs.Registry) remoteCounters {
	return remoteCounters{
		fillDecodes:   r.Counter("remote.fill_decodes"),
		evictRescues:  r.Counter("remote.evict_rescues"),
		evictBuffered: r.Counter("remote.evict_buffered"),
		writebacks:    r.Counter("remote.writebacks"),
		wbRaw:         r.Counter("remote.wb_raw"),
		wbStandalone:  r.Counter("remote.wb_standalone"),
		wbDiff:        r.Counter("remote.wb_diff"),
		wbPayloadBits: r.Counter("remote.wb_payload_bits"),
		htInserts:     r.Counter("remote.ht_inserts"),
		htRemoves:     r.Counter("remote.ht_removes"),
	}
}

var (
	homeCountersOnce   sync.Once
	sharedHomeCounters homeCounters

	remoteCountersOnce   sync.Once
	sharedRemoteCounters remoteCounters
)

// homeMetricsIn resolves the home counter block against reg, or the
// shared process-default block when reg is nil, plus a fresh shard for
// the calling end.
func homeMetricsIn(reg *obs.Registry) (*homeCounters, uint32) {
	if reg == nil {
		homeCountersOnce.Do(func() {
			sharedHomeCounters = newHomeCounters(obs.Default())
		})
		return &sharedHomeCounters, obs.NextShard()
	}
	hc := newHomeCounters(reg)
	return &hc, obs.NextShard()
}

// remoteMetricsIn is homeMetricsIn's remote-end sibling.
func remoteMetricsIn(reg *obs.Registry) (*remoteCounters, uint32) {
	if reg == nil {
		remoteCountersOnce.Do(func() {
			sharedRemoteCounters = newRemoteCounters(obs.Default())
		})
		return &sharedRemoteCounters, obs.NextShard()
	}
	rc := newRemoteCounters(reg)
	return &rc, obs.NextShard()
}
