package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"cable/internal/cache"
)

// linkHarness drives the full CABLE protocol between an inclusive
// home/remote cache pair, exactly as the memory-link simulator does:
// requests carry way-replacement info, evictions are non-silent, dirty
// evictions are write-back compressed, and every transfer is verified
// bit-exact after a wire marshal/unmarshal round trip.
type linkHarness struct {
	t        *testing.T
	lineSize int
	rng      *rand.Rand
	home     *cache.Cache
	remote   *cache.Cache
	he       *HomeEnd
	re       *RemoteEnd
	backing  map[uint64][]byte
	protos   [][]byte // prototype pool generating similar lines
	fills    int
	wbs      int
}

func newLinkHarness(t *testing.T, cfg Config, homeKB, remoteKB int) *linkHarness {
	return newLinkHarnessLines(t, cfg, homeKB, remoteKB, 64)
}

func newLinkHarnessLines(t *testing.T, cfg Config, homeKB, remoteKB, lineSize int) *linkHarness {
	t.Helper()
	home := cache.New(cache.Config{Name: "l4", SizeBytes: homeKB << 10, Ways: 16, LineSize: lineSize})
	remote := cache.New(cache.Config{Name: "llc", SizeBytes: remoteKB << 10, Ways: 8, LineSize: lineSize})
	he, err := NewHomeEnd(cfg, home, remote)
	if err != nil {
		t.Fatal(err)
	}
	re, err := NewRemoteEnd(cfg, remote)
	if err != nil {
		t.Fatal(err)
	}
	h := &linkHarness{
		t: t, lineSize: lineSize, rng: rand.New(rand.NewSource(42)),
		home: home, remote: remote, he: he, re: re,
		backing: make(map[uint64][]byte),
	}
	for i := 0; i < 6; i++ {
		p := make([]byte, lineSize)
		h.rng.Read(p)
		h.protos = append(h.protos, p)
	}
	return h
}

// lineFor synthesizes deterministic, similarity-rich memory contents:
// most lines are near-copies of a prototype, some are zero, some random.
func (h *linkHarness) lineFor(addr uint64) []byte {
	rng := rand.New(rand.NewSource(int64(addr) * 2654435761))
	switch rng.Intn(10) {
	case 0:
		return make([]byte, h.lineSize)
	case 1:
		d := make([]byte, h.lineSize)
		rng.Read(d)
		return d
	default:
		d := append([]byte(nil), h.protos[rng.Intn(len(h.protos))]...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			binary.LittleEndian.PutUint32(d[rng.Intn(h.lineSize/4)*4:], rng.Uint32())
		}
		return d
	}
}

func (h *linkHarness) backingRead(addr uint64) []byte {
	if d, ok := h.backing[addr]; ok {
		return d
	}
	d := h.lineFor(addr)
	h.backing[addr] = d
	return d
}

// evictRemote performs a full remote eviction of the occupant of id,
// write-back compressing dirty data.
func (h *linkHarness) evictRemote(ev cache.Eviction) {
	if ev.State == cache.Modified {
		wb := h.re.EncodeWriteback(ev.Data)
		h.wbs++
		h.roundTripWire(&wb, h.remote)
		got, err := h.he.DecodeWriteback(wb)
		if err != nil {
			h.t.Fatalf("writeback decode: %v", err)
		}
		if !bytes.Equal(got, ev.Data) {
			h.t.Fatalf("writeback corrupted:\n got %x\nwant %x", got, ev.Data)
		}
		// Home updates its stale copy; the backing store too (the
		// harness home is small enough to evict).
		if l, _, ok := h.home.Probe(ev.LineAddr); ok {
			copy(l.Data, got)
		}
		h.backing[ev.LineAddr] = append([]byte(nil), got...)
	}
	seq := h.re.OnEviction(ev.ID, ev.Data)
	h.he.OnRemoteEviction(ev.ID, seq)
}

// ensureHome installs addr into the home cache, handling the inclusive
// back-invalidation of any home victim.
func (h *linkHarness) ensureHome(addr uint64) {
	if _, _, ok := h.home.Probe(addr); ok {
		return
	}
	idx := h.home.IndexOf(addr)
	way := h.home.VictimWay(idx)
	if victim, vok := h.home.LineAddrOf(cache.LineID{Index: idx, Way: way}); vok {
		// Inclusive hierarchy: evicting from home forces the remote
		// copy out first.
		h.he.OnHomeEviction(victim)
		if ev, ok := h.remote.Invalidate(victim); ok {
			h.evictRemote(ev)
		}
	}
	h.home.InsertAt(addr, h.backingRead(addr), cache.Shared, way)
}

// roundTripWire marshals and unmarshals the payload, asserting the wire
// format is lossless and that Bits() matches the marshaled length.
func (h *linkHarness) roundTripWire(p *Payload, geom *cache.Cache) {
	enc := p.Marshal(geom.IndexBits(), geom.WayBits())
	if enc.NBits != p.Bits(geom.IndexBits()+geom.WayBits()) {
		h.t.Fatalf("Bits()=%d but marshal produced %d bits", p.Bits(geom.IndexBits()+geom.WayBits()), enc.NBits)
	}
	got, err := UnmarshalPayload(enc, geom.IndexBits(), geom.WayBits(), h.lineSize)
	if err != nil {
		h.t.Fatalf("unmarshal: %v", err)
	}
	got.AckSeq = p.AckSeq // not on the wire
	if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", *p) {
		h.t.Fatalf("wire round trip mismatch:\n got %+v\nwant %+v", got, *p)
	}
}

// request performs one remote-cache access.
func (h *linkHarness) request(addr uint64, write bool) {
	if line, id, ok := h.remote.Access(addr); ok {
		if write {
			if line.State == cache.Shared {
				h.re.OnUpgrade(id, line.Data)
				h.he.OnUpgrade(addr)
				line.State = cache.Modified
			}
			binary.LittleEndian.PutUint32(line.Data[h.rng.Intn(h.lineSize/4)*4:], h.rng.Uint32())
		}
		return
	}
	h.ensureHome(addr)
	idx := h.remote.IndexOf(addr)
	way := h.remote.VictimWay(idx)
	if victim, ok := h.remote.LineAddrOf(cache.LineID{Index: idx, Way: way}); ok {
		ev, _ := h.remote.Invalidate(victim)
		h.evictRemote(ev)
	}
	state := cache.Shared
	if write {
		state = cache.Modified
	}
	p, lat, err := h.he.EncodeFill(addr, state, way)
	if err != nil {
		h.t.Fatalf("encode fill %#x: %v", addr, err)
	}
	if lat.Total() > EndToEndLatency {
		h.t.Fatalf("latency %d exceeds worst case %d", lat.Total(), EndToEndLatency)
	}
	h.roundTripWire(&p, h.remote)
	data, err := h.re.DecodeFill(p)
	if err != nil {
		h.t.Fatalf("decode fill %#x: %v", addr, err)
	}
	want, _, _ := h.home.Probe(addr)
	if !bytes.Equal(data, want.Data) {
		h.t.Fatalf("fill %#x corrupted (refs=%d):\n got %x\nwant %x", addr, len(p.Refs), data, want.Data)
	}
	h.fills++
	h.remote.InsertAt(addr, data, state, way)
	h.re.OnFillInstalled(cache.LineID{Index: idx, Way: way}, data, state)
	h.re.OnAck(p.AckSeq)
	if write {
		l, _, _ := h.remote.Probe(addr)
		binary.LittleEndian.PutUint32(l.Data[h.rng.Intn(h.lineSize/4)*4:], h.rng.Uint32())
	}
}

// checkInvariants asserts the structural consistency CABLE correctness
// rests on.
func (h *linkHarness) checkInvariants() {
	h.t.Helper()
	// Every WMT entry must describe a real, identical, Shared pair.
	h.he.WMT().ForEach(func(rid, hid cache.LineID) {
		rl := h.remote.ReadByID(rid)
		if rl == nil {
			h.t.Fatalf("WMT %v→%v: remote slot empty", rid, hid)
		}
		if rl.State != cache.Shared {
			h.t.Fatalf("WMT %v→%v: remote line state %v", rid, hid, rl.State)
		}
		hl := h.home.ReadByID(hid)
		if hl == nil {
			h.t.Fatalf("WMT %v→%v: home slot empty", rid, hid)
		}
		ra, _ := h.remote.LineAddrOf(rid)
		ha, _ := h.home.LineAddrOf(hid)
		if ra != ha {
			h.t.Fatalf("WMT %v→%v: addr mismatch %#x vs %#x", rid, hid, ra, ha)
		}
		if !bytes.Equal(rl.Data, hl.Data) {
			h.t.Fatalf("WMT %v→%v: data mismatch", rid, hid)
		}
	})
	// Every Shared remote line must be WMT-tracked (fills set it and
	// only upgrades/evictions clear it).
	h.remote.ForEach(func(addr uint64, id cache.LineID, l *cache.Line) {
		if l.State != cache.Shared {
			return
		}
		if _, ok := h.he.WMT().Reverse(id); !ok {
			h.t.Fatalf("shared remote line %#x at %v not tracked by WMT", addr, id)
		}
	})
}

func TestLinkProtocolExactness(t *testing.T) {
	for _, engine := range []string{"lbe", "cpack128", "gzip-seeded", "oracle", "bdi"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.EngineName = engine
			h := newLinkHarness(t, cfg, 64, 16)
			for i := 0; i < 4000; i++ {
				addr := uint64(h.rng.Intn(2048))
				h.request(addr, h.rng.Intn(4) == 0)
				if i%500 == 0 {
					h.checkInvariants()
				}
			}
			h.checkInvariants()
			if h.fills < 1000 {
				t.Fatalf("only %d fills exercised", h.fills)
			}
			if h.wbs == 0 {
				t.Fatal("no write-backs exercised")
			}
			if engine != "bdi" && h.he.Stats.DiffWins == 0 {
				t.Fatal("reference-seeded DIFF never won — search pipeline inert")
			}
		})
	}
}

func TestLinkCompressionBeatsBaseline(t *testing.T) {
	// On similarity-rich traffic CABLE's payloads must be much
	// smaller than raw and beat its own engine without references.
	cfg := DefaultConfig()
	h := newLinkHarness(t, cfg, 256, 32)
	for i := 0; i < 6000; i++ {
		h.request(uint64(h.rng.Intn(8192)), false)
	}
	ratio := float64(h.he.Stats.SourceBits) / float64(h.he.Stats.PayloadBits)
	if ratio < 2 {
		t.Fatalf("fill compression ratio %.2f < 2", ratio)
	}
	t.Logf("fill ratio %.2f, diff wins %d/%d, refs histogram %v",
		ratio, h.he.Stats.DiffWins, h.he.Stats.Fills, h.he.Stats.RefsUsed)
}

func TestLinkWritebackCompressionDisabled(t *testing.T) {
	// §IV-C: non-inclusive mode disables reference-based WBs.
	cfg := DefaultConfig()
	cfg.WritebackCompression = false
	h := newLinkHarness(t, cfg, 64, 16)
	for i := 0; i < 3000; i++ {
		h.request(uint64(h.rng.Intn(1024)), h.rng.Intn(2) == 0)
	}
	if h.re.Stats.WBDiffWins != 0 {
		t.Fatalf("WB DIFFs used despite WritebackCompression=false: %d", h.re.Stats.WBDiffWins)
	}
	if h.wbs == 0 {
		t.Fatal("no write-backs exercised")
	}
}

func TestEncodeFillMissingLine(t *testing.T) {
	cfg := DefaultConfig()
	h := newLinkHarness(t, cfg, 64, 16)
	if _, _, err := h.he.EncodeFill(0x999, cache.Shared, 0); err == nil {
		t.Fatal("EncodeFill of absent line must error")
	}
}

func TestZeroLineSkipsSearch(t *testing.T) {
	// A zero line compresses past the 16× threshold standalone, so
	// the search is skipped entirely (§III-E).
	cfg := DefaultConfig()
	h := newLinkHarness(t, cfg, 64, 16)
	addr := uint64(77)
	h.backing[addr] = make([]byte, 64)
	h.request(addr, false)
	if h.he.Stats.ThresholdSkips != 1 {
		t.Fatalf("threshold skips = %d, want 1", h.he.Stats.ThresholdSkips)
	}
	if h.he.Stats.RefsUsed[1]+h.he.Stats.RefsUsed[2]+h.he.Stats.RefsUsed[3] != 0 {
		t.Fatal("zero line should not carry references")
	}
}

// TestLinkProtocol128ByteLines exercises the whole protocol at the
// 128-byte line size some architectures use (§IV-D notes hash-table
// overhead halves there). CBVs grow to 32 bits and signature extraction
// scans twice the words.
func TestLinkProtocol128ByteLines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSearchSigs = 32
	h := newLinkHarnessLines(t, cfg, 128, 32, 128)
	for i := 0; i < 3000; i++ {
		h.request(uint64(h.rng.Intn(2048)), h.rng.Intn(4) == 0)
		if i%500 == 0 {
			h.checkInvariants()
		}
	}
	h.checkInvariants()
	if h.he.Stats.DiffWins == 0 {
		t.Fatal("no reference-seeded payloads at 128B lines")
	}
	ratio := float64(h.he.Stats.SourceBits) / float64(h.he.Stats.PayloadBits)
	if ratio < 2 {
		t.Fatalf("128B-line compression ratio %.2f < 2", ratio)
	}
	t.Logf("128B lines: ratio %.2f, diff wins %d/%d", ratio, h.he.Stats.DiffWins, h.he.Stats.Fills)
}
