package core

import (
	"bytes"
	"errors"
	"testing"

	"cable/internal/cache"
	"cable/internal/compress"
)

func guardTestPayloads() []Payload {
	return []Payload{
		{Raw: bytes.Repeat([]byte{0xA5}, 64)},
		{Compressed: true, Diff: compress.Encoded{Data: []byte{0b10110000}, NBits: 4}},
		{
			Compressed: true,
			Refs:       []cache.LineID{{Index: 511, Way: 7}, {Index: 0, Way: 0}, {Index: 257, Way: 3}},
			Diff:       compress.Encoded{Data: []byte{0xDE, 0xAD, 0xBE}, NBits: 23},
		},
	}
}

func TestGuardedMarshalRoundTrip(t *testing.T) {
	idxBits, wayBits := 9, 3
	for i, p := range guardTestPayloads() {
		enc := p.MarshalGuarded(idxBits, wayBits)
		if enc.NBits != p.Bits(idxBits+wayBits)+crcBits {
			t.Fatalf("case %d: guarded image %d bits, want body %d + %d guard",
				i, enc.NBits, p.Bits(idxBits+wayBits), crcBits)
		}
		got, err := UnmarshalPayloadGuarded(enc, idxBits, wayBits, 64)
		if err != nil {
			t.Fatalf("case %d: clean guarded image rejected: %v", i, err)
		}
		if got.Compressed != p.Compressed || len(got.Refs) != len(p.Refs) ||
			got.Diff.NBits != p.Diff.NBits || !bytes.Equal(got.Raw, p.Raw) {
			t.Fatalf("case %d: round-trip mismatch\n got %+v\nwant %+v", i, got, p)
		}
	}
}

// CRC-8 detects every single-bit error, including flips inside the
// guard field itself: flipping any one bit of a guarded image must be
// rejected with ErrCRCMismatch.
func TestGuardDetectsEverySingleBitFlip(t *testing.T) {
	idxBits, wayBits := 9, 3
	for i, p := range guardTestPayloads() {
		enc := p.MarshalGuarded(idxBits, wayBits)
		for pos := 0; pos < enc.NBits; pos++ {
			img := append([]byte(nil), enc.Data...)
			img[pos/8] ^= 0x80 >> uint(pos%8)
			_, err := UnmarshalPayloadGuarded(compress.Encoded{Data: img, NBits: enc.NBits}, idxBits, wayBits, 64)
			if !errors.Is(err, ErrCRCMismatch) {
				t.Fatalf("case %d: flip at bit %d not caught: %v", i, pos, err)
			}
		}
	}
}

// Truncating a guarded image to any shorter length must be rejected —
// the bit length is folded into the CRC, so even a truncation landing
// on another byte-aligned boundary cannot alias a valid image.
func TestGuardDetectsTruncation(t *testing.T) {
	idxBits, wayBits := 9, 3
	for i, p := range guardTestPayloads() {
		enc := p.MarshalGuarded(idxBits, wayBits)
		for nb := 0; nb < enc.NBits; nb++ {
			_, err := UnmarshalPayloadGuarded(compress.Encoded{Data: enc.Data, NBits: nb}, idxBits, wayBits, 64)
			if err == nil {
				t.Fatalf("case %d: truncation to %d/%d bits accepted", i, nb, enc.NBits)
			}
			if !errors.Is(err, ErrCRCMismatch) && !errors.Is(err, ErrTruncatedPayload) {
				t.Fatalf("case %d: truncation to %d bits misclassified: %v", i, nb, err)
			}
		}
		// A declared length past the physical buffer is truncation too.
		_, err := UnmarshalPayloadGuarded(compress.Encoded{Data: enc.Data, NBits: 8*len(enc.Data) + 1}, idxBits, wayBits, 64)
		if !errors.Is(err, ErrTruncatedPayload) {
			t.Fatalf("case %d: overlong declared length misclassified: %v", i, err)
		}
	}
}

// The unguarded unmarshal must classify every truncation as a wrapped
// ErrTruncatedPayload (never a panic, never an unclassified error).
func TestUnmarshalTruncationTyped(t *testing.T) {
	idxBits, wayBits := 9, 3
	for i, p := range guardTestPayloads() {
		enc := p.Marshal(idxBits, wayBits)
		// Raw payloads shorter than a line and headers cut mid-field.
		for _, nb := range []int{0, 1, 2, 5, enc.NBits / 2} {
			if nb >= enc.NBits {
				continue
			}
			_, err := UnmarshalPayload(compress.Encoded{Data: enc.Data, NBits: nb}, idxBits, wayBits, 64)
			if p.Compressed && nb >= flagBits+refCountBits+len(p.Refs)*(idxBits+wayBits) {
				// Compressed bodies treat any tail as DIFF bits; the
				// corruption surfaces later, at decompress time.
				continue
			}
			if err == nil {
				continue // some prefixes parse as a shorter valid payload
			}
			if !errors.Is(err, ErrTruncatedPayload) {
				t.Fatalf("case %d at %d bits: unclassified error %v", i, nb, err)
			}
		}
	}
}

func TestCRC8ImageProperties(t *testing.T) {
	data := []byte{0x12, 0x34, 0x56, 0x78}
	// Masking: bits past nbits in the final byte must not affect the CRC.
	a := crc8Image(data, 29)
	dirty := append([]byte(nil), data...)
	dirty[3] |= 0x07 // bits 29..31
	if b := crc8Image(dirty, 29); a != b {
		t.Fatalf("CRC reads past nbits: %#x != %#x", a, b)
	}
	// Length folding: same bytes, different declared length, different CRC.
	if crc8Image(data, 32) == crc8Image(data, 24) {
		t.Fatal("CRC ignores the bit length; byte-aligned truncations alias")
	}
}
