package core

import (
	"testing"

	"cable/internal/cache"
	"cable/internal/sig"
)

func TestHashTableInsertLookupRemove(t *testing.T) {
	ht := NewHashTable(16, 2)
	s := sig.Signature(0x1234)
	a := cache.LineID{Index: 1, Way: 0}
	b := cache.LineID{Index: 2, Way: 3}
	ht.Insert(s, a)
	ht.Insert(s, b)
	got := ht.Lookup(s, nil)
	if len(got) != 2 {
		t.Fatalf("lookup returned %d ids, want 2", len(got))
	}
	if !ht.Remove(s, a) {
		t.Fatal("remove of present id failed")
	}
	if ht.Remove(s, a) {
		t.Fatal("second remove should fail")
	}
	got = ht.Lookup(s, nil)
	if len(got) != 1 || got[0] != b {
		t.Fatalf("after remove: %v", got)
	}
}

func TestHashTableDuplicateInsertIsNoop(t *testing.T) {
	ht := NewHashTable(8, 2)
	s := sig.Signature(7)
	id := cache.LineID{Index: 3, Way: 1}
	ht.Insert(s, id)
	ht.Insert(s, id)
	if got := ht.Lookup(s, nil); len(got) != 1 {
		t.Fatalf("duplicate insert created %d entries", len(got))
	}
}

func TestHashTableFIFODisplacement(t *testing.T) {
	ht := NewHashTable(4, 2)
	s := sig.Signature(0) // bucket 0
	ids := []cache.LineID{{Index: 0, Way: 0}, {Index: 1, Way: 0}, {Index: 2, Way: 0}}
	for _, id := range ids {
		ht.Insert(s, id)
	}
	got := ht.Lookup(s, nil)
	if len(got) != 2 {
		t.Fatalf("bucket depth not enforced: %d", len(got))
	}
	// Oldest (ids[0]) must be gone; the two newest remain.
	for _, id := range got {
		if id == ids[0] {
			t.Fatal("FIFO should displace the oldest entry")
		}
	}
	if ht.Collisions != 1 {
		t.Fatalf("collisions = %d, want 1", ht.Collisions)
	}
}

func TestHashTableSizeRounding(t *testing.T) {
	ht := NewHashTable(1000, 2)
	if ht.NumBuckets() != 1024 {
		t.Fatalf("buckets = %d, want 1024", ht.NumBuckets())
	}
	tiny := NewHashTable(0, 2)
	if tiny.NumBuckets() != 1 {
		t.Fatalf("min buckets = %d, want 1", tiny.NumBuckets())
	}
}

func TestHashTableDistinctBuckets(t *testing.T) {
	ht := NewHashTable(256, 2)
	a, b := sig.Signature(1), sig.Signature(2)
	ht.Insert(a, cache.LineID{Index: 10, Way: 0})
	if got := ht.Lookup(b, nil); len(got) != 0 {
		t.Fatalf("different signature found entries: %v", got)
	}
}

func TestHashTableInsertRemoveLine(t *testing.T) {
	ht := NewHashTable(1024, 2)
	ex := sig.NewExtractor(64, 1)
	line := make([]byte, 64)
	copy(line, []byte{0xDE, 0xAD, 0xBE, 0xEF})
	copy(line[32:], []byte{0x11, 0x22, 0x33, 0x44})
	id := cache.LineID{Index: 5, Way: 2}
	ht.InsertLine(ex, line, id)
	if ht.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2 insert signatures", ht.Occupancy())
	}
	ht.RemoveLine(ex, line, id)
	if ht.Occupancy() != 0 {
		t.Fatalf("occupancy after RemoveLine = %d", ht.Occupancy())
	}
}

func TestHashTableSizeBits(t *testing.T) {
	// §IV-D: a full-sized table for a 16MB cache with 18-bit HomeLIDs
	// is ~3.5% of the data cache.
	lines := 16 << 20 / 64
	ht := NewHashTable(lines/2, 2) // entries = lines at depth 2
	frac := float64(ht.SizeBits(18)) / float64(16<<20*8)
	if frac < 0.03 || frac > 0.04 {
		t.Fatalf("full-sized hash table overhead %.4f, want ≈0.035", frac)
	}
}
