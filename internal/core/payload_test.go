package core

import (
	"bytes"
	"testing"

	"cable/internal/cache"
	"cable/internal/compress"
)

func TestPayloadBitsAccounting(t *testing.T) {
	raw := Payload{Raw: make([]byte, 64)}
	if got := raw.Bits(17); got != 1+512 {
		t.Fatalf("raw bits = %d, want 513", got)
	}
	diff := compress.Encoded{Data: []byte{0xFF, 0xC0}, NBits: 10}
	p := Payload{Compressed: true, Refs: []cache.LineID{{Index: 1, Way: 2}, {Index: 3, Way: 4}}, Diff: diff}
	// 1 flag + 2 refcount + 2×17 + 10 diff
	if got := p.Bits(17); got != 1+2+34+10 {
		t.Fatalf("compressed bits = %d, want 47", got)
	}
	standalone := Payload{Compressed: true, Diff: diff}
	if got := standalone.Bits(17); got != 1+2+10 {
		t.Fatalf("standalone bits = %d, want 13", got)
	}
}

func TestPayloadMarshalRoundTrip(t *testing.T) {
	idxBits, wayBits := 9, 3
	cases := []Payload{
		{Raw: bytes.Repeat([]byte{0xA5}, 64)},
		{Compressed: true, Diff: compress.Encoded{Data: []byte{0b10110000}, NBits: 4}},
		{
			Compressed: true,
			Refs:       []cache.LineID{{Index: 511, Way: 7}, {Index: 0, Way: 0}, {Index: 257, Way: 3}},
			Diff:       compress.Encoded{Data: []byte{0xDE, 0xAD, 0xBE}, NBits: 23},
		},
	}
	for i, p := range cases {
		enc := p.Marshal(idxBits, wayBits)
		if enc.NBits != p.Bits(idxBits+wayBits) {
			t.Fatalf("case %d: marshal %d bits, Bits() %d", i, enc.NBits, p.Bits(idxBits+wayBits))
		}
		got, err := UnmarshalPayload(enc, idxBits, wayBits, 64)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Compressed != p.Compressed || len(got.Refs) != len(p.Refs) ||
			got.Diff.NBits != p.Diff.NBits || !bytes.Equal(got.Raw, p.Raw) {
			t.Fatalf("case %d: mismatch\n got %+v\nwant %+v", i, got, p)
		}
		for j := range p.Refs {
			if got.Refs[j] != p.Refs[j] {
				t.Fatalf("case %d ref %d: %v != %v", i, j, got.Refs[j], p.Refs[j])
			}
		}
		gr, pr := got.Diff.Reader(), p.Diff.Reader()
		for pr.Remaining() > 0 {
			a, _ := gr.ReadBit()
			b, _ := pr.ReadBit()
			if a != b {
				t.Fatalf("case %d: diff bits differ", i)
			}
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalPayload(compress.Encoded{}, 9, 3, 64); err == nil {
		t.Fatal("empty payload should error")
	}
	// Raw flag but truncated body.
	short := compress.Encoded{Data: []byte{0x00, 0xFF}, NBits: 9}
	if _, err := UnmarshalPayload(short, 9, 3, 64); err == nil {
		t.Fatal("truncated raw payload should error")
	}
}

func TestSearchLatencyModel(t *testing.T) {
	cases := []struct{ sigs, want int }{
		{0, 0},
		{1, 9},
		{2, 9},
		{16, 16},
		{14, 15},
	}
	for _, c := range cases {
		if got := searchLatency(c.sigs); got != c.want {
			t.Errorf("searchLatency(%d) = %d, want %d", c.sigs, got, c.want)
		}
	}
	if EndToEndLatency != 64 {
		t.Errorf("EndToEndLatency = %d, want 64 (16 search + 32 comp + 16 decomp)", EndToEndLatency)
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.MaxRefs = 4 },
		func(c *Config) { c.MaxRefs = -1 },
		func(c *Config) { c.AccessCount = 0 },
		func(c *Config) { c.BucketDepth = 0 },
		func(c *Config) { c.HashSizeFactor = 0 },
		func(c *Config) { c.MaxSearchSigs = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
