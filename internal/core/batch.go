package core

import (
	"fmt"

	"cable/internal/cache"
	"cable/internal/compress"
	"cable/internal/obs"
	"cable/internal/sig"
)

// This file is the batched encode/decode API. EncodeFill's per-line cost
// is dominated not by compression but by bookkeeping: ~30 atomic metric
// increments (htHits per signature, per-candidate WMT/read counters, the
// payload histogram's three atomics, CompressWith's two per engine
// call), a duplicate home-cache Probe in the Shared branch, per-call
// interface dispatch for the engine and way-map, and the RemoteLIDBits
// override check per Bits() evaluation. EncodeFills runs the exact same
// pipeline over K lines but accumulates every counter and Stats field in
// plain locals flushed once per batch, probes once per line, hoists the
// pointer width, devirtualizes the way-map and engine, and fuses the
// hash-table probe with candidate deduplication.
//
// Bit-identity with the sequential path is a hard contract: line i+1 may
// reference line i (the Shared branch inserts the filled line into the
// HT/WMT before the next encode), so lines are processed strictly in
// order and every structural mutation happens at the same point as in
// EncodeFill. TestEncodeFillsMatchesSequential pins payload bytes,
// Stats, and metric totals against the one-line path.

// BatchFill is one fill request of a batch: the same triple EncodeFill
// takes.
type BatchFill struct {
	LineAddr uint64
	State    cache.State
	ReplWay  int
}

// batchAcc accumulates one batch's worth of counter and HomeStats
// updates in plain fields. flush publishes them with one atomic add per
// touched counter instead of one per event.
type batchAcc struct {
	fills          uint64
	sourceBits     uint64
	thresholdSkips uint64
	sigsSearched   uint64
	htHits         uint64
	htInserts      uint64
	htRemoves      uint64
	htCollisions   uint64
	candidatesRead uint64
	wmtHits        uint64
	wmtMisses      uint64
	outcomeRaw     uint64
	outcomeStand   uint64
	outcomeDiff    uint64
	refsUsed       [MaxRefsLimit + 1]uint64
	payloadBits    uint64
	payloadDist    obs.HistAcc
}

// batchState is the per-EncodeFills context: the accumulator plus
// everything hoisted out of the per-line loop.
type batchState struct {
	acc     batchAcc
	wmt     *WMT // non-nil when the way-map is a private WMT (devirtualized)
	lidBits int
}

// flush publishes the accumulated events to the metrics registry and the
// exported Stats block. Stats and counters therefore advance when the
// batch completes (or fails), not per line — totals are identical to the
// sequential path's.
func (h *HomeEnd) flushBatch(a *batchAcc) {
	s := &h.Stats
	s.Fills += a.fills
	s.SourceBits += a.sourceBits
	s.ThresholdSkips += a.thresholdSkips
	s.SigsSearched += a.sigsSearched
	s.CandidatesRead += a.candidatesRead
	s.RawWins += a.outcomeRaw
	s.StandaloneWins += a.outcomeStand
	s.DiffWins += a.outcomeDiff
	s.PayloadBits += a.payloadBits
	for i, v := range a.refsUsed {
		s.RefsUsed[i] += v
	}

	mx, shard := h.mx, h.shard
	if a.fills != 0 {
		mx.fills.Add(shard, a.fills)
		mx.sourceBits.Add(shard, a.sourceBits)
		mx.payloadBits.Add(shard, a.payloadBits)
	}
	if a.thresholdSkips != 0 {
		mx.thresholdSkips.Add(shard, a.thresholdSkips)
	}
	if a.sigsSearched != 0 {
		mx.sigsSearched.Add(shard, a.sigsSearched)
		mx.htProbes.Add(shard, a.sigsSearched)
	}
	if a.htHits != 0 {
		mx.htHits.Add(shard, a.htHits)
	}
	if a.htInserts != 0 {
		mx.htInserts.Add(shard, a.htInserts)
	}
	if a.htRemoves != 0 {
		mx.htRemoves.Add(shard, a.htRemoves)
	}
	if a.htCollisions != 0 {
		mx.htCollisions.Add(shard, a.htCollisions)
	}
	if a.candidatesRead != 0 {
		mx.candidatesRead.Add(shard, a.candidatesRead)
	}
	if a.wmtHits != 0 {
		mx.wmtHits.Add(shard, a.wmtHits)
	}
	if a.wmtMisses != 0 {
		mx.wmtMisses.Add(shard, a.wmtMisses)
	}
	if a.outcomeRaw != 0 {
		mx.outcomeRaw.Add(shard, a.outcomeRaw)
	}
	if a.outcomeStand != 0 {
		mx.outcomeStand.Add(shard, a.outcomeStand)
	}
	if a.outcomeDiff != 0 {
		mx.outcomeDiff.Add(shard, a.outcomeDiff)
	}
	for i, v := range a.refsUsed {
		if v != 0 {
			mx.refsUsed[i].Add(shard, v)
		}
	}
	a.payloadDist.FlushTo(mx.payloadDist)
	*a = batchAcc{}
}

// EncodeFills encodes a batch of fills in request order, invoking emit
// for each with the payload and latency EncodeFill would have produced.
// Like EncodeFill's result, the payload aliases the end's scratch and is
// valid only for the duration of the callback; retainers must Clone.
//
// Every observable effect — payload bits, HT/WMT state, trace records,
// and (once the call returns) HomeStats and metric totals — is identical
// to calling EncodeFill once per request; Stats and counters are
// published at batch completion rather than per line. On an error (line
// absent from the home cache) the effects of the already-emitted prefix
// stand, matching a sequential caller that stopped at the failing line.
func (h *HomeEnd) EncodeFills(reqs []BatchFill, emit func(i int, p Payload, lat FillLatency)) error {
	standalone := compress.NewBatchCompressor(h.engine, &h.scr.standalone)
	diff := compress.NewBatchCompressor(h.engine, &h.scr.diff)
	bs := batchState{lidBits: h.RemoteLIDBits()}
	bs.wmt, _ = h.wmt.(*WMT)
	acc := &bs.acc
	var payload Payload
	for i := range reqs {
		req := &reqs[i]
		line, homeID, ok := h.home.Probe(req.LineAddr)
		if !ok {
			h.flushBatch(acc)
			standalone.Flush()
			diff.Flush()
			return fmt.Errorf("core: EncodeFill %#x: line not present in home cache %q", req.LineAddr, h.home.Config().Name)
		}
		data := line.Data
		acc.fills++
		acc.sourceBits += uint64(len(data) * 8)

		bestBits, lat := h.encodeBatch(data, &bs, &standalone, &diff, &payload)

		rSlot := cache.LineID{Index: int(req.LineAddr & uint64(h.remoteSets-1)), Way: req.ReplWay}
		h.noteDisplacementBatch(rSlot, &bs)
		if req.State == cache.Shared {
			// The sequential path re-probes here; nothing between the
			// probe above and this point mutates the home cache, so the
			// first probe's result is still exact.
			if bs.wmt != nil {
				bs.wmt.Set(rSlot, homeID)
			} else {
				h.wmt.Set(rSlot, homeID)
			}
			h.insertLineBatch(data, homeID, acc)
		}
		payload.AckSeq = h.AckSeq
		// bestBits is Payload.Bits(lidBits) by construction (AckSeq is
		// not transmitted in the sized header), so skip the recompute.
		acc.payloadBits += uint64(bestBits)
		acc.payloadDist.Observe(uint64(bestBits))
		h.recordOutcomeBatch(&payload, acc)
		if h.tr != nil {
			h.tr.Record(obs.EncodeRecord{
				LineAddr:      req.LineAddr,
				Class:         payloadClass(payload),
				Refs:          uint8(len(payload.Refs)),
				SigsSearched:  uint8(h.lastSigs),
				Candidates:    uint8(h.lastCands),
				ThresholdSkip: h.lastSkip,
				PayloadBits:   uint32(bestBits),
			})
		}
		if emit != nil {
			emit(i, payload, lat)
		}
	}
	h.flushBatch(acc)
	standalone.Flush()
	diff.Flush()
	return nil
}

// encodeBatch is encode with deferred counters: identical decisions,
// identical scratch usage, and the winning payload's exact bit size
// returned so the caller need not re-derive it. The winner is written
// through out, sparing the per-line copy of a returned Payload.
func (h *HomeEnd) encodeBatch(data []byte, bs *batchState, standalone, diff *compress.BatchCompressor, out *Payload) (int, FillLatency) {
	h.lastSigs, h.lastCands, h.lastSkip = 0, 0, false
	scr := &h.scr
	acc := &bs.acc
	stand := standalone.Compress(data, nil)
	rawBits := flagBits + len(data)*8

	*out = Payload{Compressed: true, Diff: stand}
	bestBits := out.Bits(bs.lidBits)
	if rawBits < bestBits {
		scr.raw = append(scr.raw[:0], data...)
		*out = Payload{Raw: scr.raw}
		bestBits = rawBits
	}
	lat := FillLatency{CompressCycles: CompressLatency, DecompressCycles: DecompressLatency}

	if h.standaloneSkips(stand.NBits) {
		acc.thresholdSkips++
		h.lastSkip = true
		return bestBits, lat
	}

	scr.searchSigs = h.ex.AppendSearchSignatures(scr.searchSigs[:0], data, h.cfg.MaxSearchSigs)
	sigs := scr.searchSigs
	h.lastSigs = len(sigs)
	acc.sigsSearched += uint64(len(sigs))
	lat.SearchCycles = searchLatency(len(sigs))
	cands := h.gatherCandidatesBatch(data, sigs, bs)
	h.lastCands = len(cands)
	scr.refs = scr.pick.pick(cands, h.cfg.MaxRefs, scr.refs[:0])
	if refs := scr.refs; len(refs) > 0 {
		scr.refData = scr.refData[:0]
		scr.refIDs = scr.refIDs[:0]
		for _, c := range refs {
			scr.refData = append(scr.refData, c.data)
			scr.refIDs = append(scr.refIDs, c.remoteID)
		}
		d := diff.Compress(data, scr.refData)
		p := Payload{Compressed: true, Refs: scr.refIDs, Diff: d}
		if b := p.Bits(bs.lidBits); b < bestBits {
			*out, bestBits = p, b
		}
	}
	return bestBits, lat
}

// standaloneSkips reports whether a standalone encode of nbits clears
// the threshold, via the memoized table (built on first use). Out-of-
// range sizes — possible only for an engine that expands beyond LBE's
// worst case — fall back to the float comparison.
func (h *HomeEnd) standaloneSkips(nbits int) bool {
	if h.thrSkip == nil {
		// LBE's worst case is a 34-bit literal code per 32-bit source
		// word; size the table past that so real encodes always hit it.
		n := (h.lineSize/4)*34 + 2
		h.thrSkip = make([]bool, n)
		for nb := range h.thrSkip {
			h.thrSkip[nb] = compress.Ratio(h.lineSize, nb) >= h.cfg.StandaloneThreshold
		}
	}
	if nbits >= 0 && nbits < len(h.thrSkip) {
		return h.thrSkip[nbits]
	}
	return compress.Ratio(h.lineSize, nbits) >= h.cfg.StandaloneThreshold
}

// gatherCandidatesBatch is gatherCandidates with deferred counters, the
// hash-table probe fused with deduplication (no intermediate LineID
// buffer), and the way-map devirtualized.
func (h *HomeEnd) gatherCandidatesBatch(data []byte, sigs []sig.Signature, bs *batchState) []candidate {
	scr := &h.scr
	acc := &bs.acc
	ht := h.ht
	cands := scr.cands[:0]
	scr.dedup.begin(len(sigs) * h.cfg.BucketDepth)
	for _, s := range sigs {
		ht.Lookups++
		for _, e := range ht.bucket(s) {
			if !e.valid {
				continue
			}
			acc.htHits++
			if pos, dup := scr.dedup.insert(e.id, int32(len(cands))); dup {
				cands[pos].dups++
			} else {
				cands = append(cands, candidate{homeID: e.id, dups: 1})
			}
		}
	}
	scr.cands = cands
	cands = preRank(cands, h.cfg.AccessCount)

	out := cands[:0]
	for _, c := range cands {
		var remoteID cache.LineID
		var resident bool
		if bs.wmt != nil {
			remoteID, resident = bs.wmt.Lookup(c.homeID)
		} else {
			remoteID, resident = h.wmt.Lookup(c.homeID)
		}
		if !resident {
			acc.wmtMisses++
			continue
		}
		acc.wmtHits++
		ref := h.home.ReadByID(c.homeID)
		acc.candidatesRead++
		if ref == nil {
			continue
		}
		c.remoteID = remoteID
		c.data = ref.Data
		c.cbv = CoverageVector(data, ref.Data)
		if c.cbv == 0 {
			continue
		}
		out = append(out, c)
	}
	return out
}

func (h *HomeEnd) insertLineBatch(data []byte, id cache.LineID, acc *batchAcc) {
	h.scr.insertSigs = h.ex.AppendInsertSignatures(h.scr.insertSigs[:0], data)
	collisionsBefore := h.ht.Collisions
	for _, s := range h.scr.insertSigs {
		h.ht.Insert(s, id)
	}
	acc.htInserts += uint64(len(h.scr.insertSigs))
	acc.htCollisions += h.ht.Collisions - collisionsBefore
}

func (h *HomeEnd) removeLineBatch(data []byte, id cache.LineID, acc *batchAcc) {
	h.scr.insertSigs = h.ex.AppendInsertSignatures(h.scr.insertSigs[:0], data)
	for _, s := range h.scr.insertSigs {
		h.ht.Remove(s, id)
	}
	acc.htRemoves += uint64(len(h.scr.insertSigs))
}

func (h *HomeEnd) noteDisplacementBatch(rSlot cache.LineID, bs *batchState) {
	var displacedHome cache.LineID
	var ok bool
	if bs.wmt != nil {
		displacedHome, ok = bs.wmt.Clear(rSlot)
	} else {
		displacedHome, ok = h.wmt.Clear(rSlot)
	}
	if !ok {
		return
	}
	if line := h.home.ReadByID(displacedHome); line != nil {
		h.removeLineBatch(line.Data, displacedHome, &bs.acc)
	}
}

func (h *HomeEnd) recordOutcomeBatch(p *Payload, acc *batchAcc) {
	switch {
	case !p.Compressed:
		acc.outcomeRaw++
	case len(p.Refs) == 0:
		acc.outcomeStand++
	default:
		acc.outcomeDiff++
	}
	if p.Compressed {
		acc.refsUsed[len(p.Refs)]++
	}
}

// DecodeFills decodes a batch of fill payloads in order, invoking emit
// for each reconstructed line. The data slice aliases the end's decode
// scratch and is valid only for the duration of the callback (the same
// contract as DecodeFill); per-decode counters and Stats are flushed
// once per batch. Decoding stops at the first corrupt payload, after the
// prefix's counters are published — identical to a sequential caller.
func (r *RemoteEnd) DecodeFills(ps []Payload, emit func(i int, data []byte)) error {
	var decodes, rescues uint64
	flush := func() {
		r.Stats.FillDecodes += decodes
		r.Stats.RescuedRefs += rescues
		if decodes != 0 {
			r.mx.fillDecodes.Add(r.shard, decodes)
		}
		if rescues != 0 {
			r.mx.evictRescues.Add(r.shard, rescues)
		}
	}
	for i := range ps {
		p := &ps[i]
		decodes++
		var out []byte
		if !p.Compressed {
			if len(p.Raw) != r.lineSize {
				flush()
				return fmt.Errorf("core: raw fill of %dB, want %dB: %w", len(p.Raw), r.lineSize, ErrTruncatedPayload)
			}
			r.scr.decOut = append(r.scr.decOut[:0], p.Raw...)
			out = r.scr.decOut
		} else {
			r.scr.decRefs = r.scr.decRefs[:0]
			for _, rid := range p.Refs {
				if data := r.evbuf.Resolve(rid, p.AckSeq); data != nil {
					rescues++
					r.scr.decRefs = append(r.scr.decRefs, data)
					continue
				}
				line := r.remote.ReadByID(rid)
				if line == nil {
					flush()
					return fmt.Errorf("core: fill references empty remote slot %v: %w", rid, ErrBadReference)
				}
				r.scr.decRefs = append(r.scr.decRefs, line.Data)
			}
			dec, err := compress.DecompressWith(r.engine, &r.scr.dec, p.Diff, r.scr.decRefs, r.lineSize)
			if err != nil {
				flush()
				return fmt.Errorf("core: fill diff: %w: %w", ErrCorruptDiff, err)
			}
			out = dec
		}
		if emit != nil {
			emit(i, out)
		}
	}
	flush()
	return nil
}
