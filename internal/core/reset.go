package core

// This file is the in-place reset layer: every structure a link end
// owns can rewind to its freshly-constructed state without giving its
// backing arrays up. Release (pool.go) is for ends that are done for
// good; Reset is for ends that are about to run another stream — the
// streaming codec pools whole Encoder/Decoder instances across
// connections, and rebuilding multi-megabyte tables per stream would
// dwarf the per-stream work.

// Reset clears every bucket and zeroes the stats, keeping the backing
// array. A Reset table is indistinguishable from a newly built one of
// the same geometry.
func (h *HashTable) Reset() {
	clear(h.entries)
	h.Inserts, h.Removes, h.Lookups, h.Collisions = 0, 0, 0, 0
}

// Reset invalidates every slot and zeroes the stats, keeping the
// backing array.
func (w *WMT) Reset() {
	clear(w.entries)
	w.Hits, w.Misses = 0, 0
}

// Reset drops every pending record and rewinds the sequence counter, so
// the next Add issues EvictSeq 1 again.
func (b *EvictionBuffer) Reset() {
	clear(b.pending)
	b.nextSeq = 0
	b.Inserted, b.Rescued = 0, 0
}

// Reset rewinds the home end to its post-construction state: empty hash
// table, empty (private) way-map, zero AckSeq and stats. Scratch
// buffers and the memoized threshold table survive — they are
// content-independent — so a Reset end encodes with warm capacity. A
// shared way-map (SuperWMT view) is left untouched: it outlives any
// single link.
func (h *HomeEnd) Reset() {
	h.ht.Reset()
	if w, ok := h.wmt.(*WMT); ok {
		w.Reset()
	}
	h.AckSeq = 0
	h.Stats = HomeStats{}
	h.lastSigs, h.lastCands, h.lastSkip = 0, 0, false
}

// Reset rewinds the remote end to its post-construction state: empty
// hash table, empty eviction buffer, zero stats. Scratch buffers
// survive.
func (r *RemoteEnd) Reset() {
	r.ht.Reset()
	r.evbuf.Reset()
	r.Stats = RemoteStats{}
}
