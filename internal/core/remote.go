package core

import (
	"fmt"

	"cable/internal/cache"
	"cable/internal/compress"
	"cable/internal/obs"
	"cable/internal/sig"
)

// RemoteEnd is the decompressing side of a CABLE link: the smaller
// cache that receives fills (the on-chip LLC in the memory-link use
// case). It owns its own hash table — populated only from lines
// received from the home cache — which drives write-back compression
// (§III-G), and the eviction buffer that closes the §IV-A race.
type RemoteEnd struct {
	cfg    Config
	remote *cache.Cache
	engine compress.Engine
	ex     *sig.Extractor
	ht     *HashTable
	evbuf  *EvictionBuffer

	lineSize int

	scr encScratch

	mx    *remoteCounters
	shard uint32

	// rec/recTrack feed the optional flight recorder (nil = disabled,
	// one pointer check per decode/WB-encode).
	rec      *obs.Recorder
	recTrack *obs.Track

	// Stats accumulates decoder/WB-encoder events.
	Stats RemoteStats
}

// RemoteStats counts remote-end events.
type RemoteStats struct {
	FillDecodes   uint64
	RescuedRefs   uint64 // references served by the eviction buffer
	Writebacks    uint64
	WBRawWins     uint64
	WBStandalone  uint64
	WBDiffWins    uint64
	WBPayloadBits uint64
	WBSourceBits  uint64
}

// NewRemoteEnd builds the remote side of a link. The hash table is
// sized against the remote cache with the same size factor.
func NewRemoteEnd(cfg Config, remote *cache.Cache) (*RemoteEnd, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng, err := compress.NewEngine(cfg.EngineName)
	if err != nil {
		return nil, err
	}
	buckets := int(float64(remote.NumLines()) * cfg.HashSizeFactor / float64(cfg.BucketDepth))
	if buckets < 1 {
		buckets = 1
	}
	r := &RemoteEnd{
		cfg:      cfg,
		remote:   remote,
		engine:   eng,
		ex:       sig.NewExtractorN(remote.Config().LineSize, cfg.SigSeed, cfg.InsertSigs),
		ht:       NewHashTable(buckets, cfg.BucketDepth),
		evbuf:    NewEvictionBuffer(),
		lineSize: remote.Config().LineSize,
	}
	r.mx, r.shard = remoteMetricsIn(cfg.Metrics)
	r.scr.prime()
	r.scr.standalone.UseRegistry(cfg.Metrics)
	r.scr.diff.UseRegistry(cfg.Metrics)
	return r, nil
}

// SetRecorder attaches (or, with nil, detaches) the flight recorder.
// Fill decodes and write-back encodes on this end land on track t.
func (r *RemoteEnd) SetRecorder(rec *obs.Recorder, t *obs.Track) { r.rec, r.recTrack = rec, t }

// HashTable exposes the remote hash table for tests and sizing.
func (r *RemoteEnd) HashTable() *HashTable { return r.ht }

// EvictionBuffer exposes the eviction buffer.
func (r *RemoteEnd) EvictionBuffer() *EvictionBuffer { return r.evbuf }

// RemoteLIDBits is the pointer width for this cache's geometry, or the
// configured override for the tag-pointer ablation.
func (r *RemoteEnd) RemoteLIDBits() int {
	if r.cfg.PointerBitsOverride > 0 {
		return r.cfg.PointerBitsOverride
	}
	return r.remote.IndexBits() + r.remote.WayBits()
}

// DecodeFill reconstructs a fill payload. References are read from the
// remote data array by RemoteLID; if a referenced slot was evicted
// after the home end produced the payload, the eviction buffer supplies
// the copy (§IV-A). The result aliases this end's decode scratch and
// is valid until the next decode; retainers must copy (the simulators'
// caches all copy on install).
func (r *RemoteEnd) DecodeFill(p Payload) ([]byte, error) {
	r.Stats.FillDecodes++
	r.mx.fillDecodes.Inc(r.shard)
	if r.rec != nil {
		start := r.rec.Clock()
		defer func() {
			r.rec.Span(r.recTrack, obs.EvDecode, p.Bits(r.RemoteLIDBits()), r.rec.Clock()-start)
		}()
	}
	if !p.Compressed {
		if len(p.Raw) != r.lineSize {
			return nil, fmt.Errorf("core: raw fill of %dB, want %dB: %w", len(p.Raw), r.lineSize, ErrTruncatedPayload)
		}
		r.scr.decOut = append(r.scr.decOut[:0], p.Raw...)
		return r.scr.decOut, nil
	}
	r.scr.decRefs = r.scr.decRefs[:0]
	for _, rid := range p.Refs {
		if data := r.evbuf.Resolve(rid, p.AckSeq); data != nil {
			r.Stats.RescuedRefs++
			r.mx.evictRescues.Inc(r.shard)
			r.scr.decRefs = append(r.scr.decRefs, data)
			continue
		}
		line := r.remote.ReadByID(rid)
		if line == nil {
			return nil, fmt.Errorf("core: fill references empty remote slot %v: %w", rid, ErrBadReference)
		}
		r.scr.decRefs = append(r.scr.decRefs, line.Data)
	}
	out, err := compress.DecompressWith(r.engine, &r.scr.dec, p.Diff, r.scr.decRefs, r.lineSize)
	if err != nil {
		return nil, fmt.Errorf("core: fill diff: %w: %w", ErrCorruptDiff, err)
	}
	return out, nil
}

// insertLine and removeLine mirror the home end's scratch-backed
// hash-table maintenance.
func (r *RemoteEnd) insertLine(data []byte, id cache.LineID) {
	r.scr.insertSigs = r.ex.AppendInsertSignatures(r.scr.insertSigs[:0], data)
	for _, s := range r.scr.insertSigs {
		r.ht.Insert(s, id)
	}
	r.mx.htInserts.Add(r.shard, uint64(len(r.scr.insertSigs)))
}

func (r *RemoteEnd) removeLine(data []byte, id cache.LineID) {
	r.scr.insertSigs = r.ex.AppendInsertSignatures(r.scr.insertSigs[:0], data)
	for _, s := range r.scr.insertSigs {
		r.ht.Remove(s, id)
	}
	r.mx.htRemoves.Add(r.shard, uint64(len(r.scr.insertSigs)))
}

// OnFillInstalled must be called after the decoded line is installed in
// the remote cache: shared lines enter the remote hash table so future
// write-backs can reference them (§III-F).
func (r *RemoteEnd) OnFillInstalled(id cache.LineID, data []byte, state cache.State) {
	if state == cache.Shared {
		r.insertLine(data, id)
	}
}

// OnEviction must be called when the remote cache evicts the line that
// was at id with contents data. It scrubs the hash table, buffers the
// copy against in-flight references, and returns the EvictSeq to embed
// in the eviction notice (§IV-A).
func (r *RemoteEnd) OnEviction(id cache.LineID, data []byte) uint64 {
	r.removeLine(data, id)
	r.mx.evictBuffered.Inc(r.shard)
	return r.evbuf.Add(id, data)
}

// OnAck releases eviction-buffer entries the home cache has
// acknowledged (piggybacked on responses).
func (r *RemoteEnd) OnAck(seq uint64) { r.evbuf.Release(seq) }

// OnSilentEviction scrubs a line evicted under the §IV-B silent
// protocol: no eviction notice is sent — the home cache learns of the
// displacement from the replacement-way info in the request that caused
// it — so nothing enters the eviction buffer. Only valid for 1-1 or
// linearly-interleaved home mappings, where the displacement is
// processed before any response that could reference the victim.
func (r *RemoteEnd) OnSilentEviction(id cache.LineID, data []byte) {
	r.removeLine(data, id)
}

// OnUpgrade must be called when the core writes to a shared line: it
// stops serving as a reference.
func (r *RemoteEnd) OnUpgrade(id cache.LineID, data []byte) {
	r.removeLine(data, id)
}

// EncodeWriteback compresses a dirty line being written back to the
// home cache. References come from the remote end's own hash table and
// must be clean shared lines; the payload carries the remote's own
// LineIDs, which the home end translates through its WMT (§III-G).
// Write-back compression is disabled for non-inclusive hierarchies.
// Like EncodeFill payloads, the result aliases this end's scratch and
// is valid until the next encode; retainers must Clone it.
func (r *RemoteEnd) EncodeWriteback(data []byte) Payload {
	r.Stats.Writebacks++
	r.Stats.WBSourceBits += uint64(len(data) * 8)
	var wbStart int64
	if r.rec != nil {
		wbStart = r.rec.Clock()
	}
	scr := &r.scr

	standalone := compress.CompressWith(r.engine, &scr.standalone, data, nil)
	best := Payload{Compressed: true, Diff: standalone}
	bestBits := best.Bits(r.RemoteLIDBits())
	if rawBits := flagBits + len(data)*8; rawBits < bestBits {
		scr.raw = append(scr.raw[:0], data...)
		best = Payload{Raw: scr.raw}
		bestBits = rawBits
	}

	searchRefs := r.cfg.WritebackCompression &&
		compress.Ratio(len(data), standalone.NBits) < r.cfg.StandaloneThreshold
	if searchRefs {
		scr.searchSigs = r.ex.AppendSearchSignatures(scr.searchSigs[:0], data, r.cfg.MaxSearchSigs)
		cands := r.gatherWBCandidates(data, scr.searchSigs)
		scr.refs = scr.pick.pick(cands, r.cfg.MaxRefs, scr.refs[:0])
		if refs := scr.refs; len(refs) > 0 {
			scr.refData = scr.refData[:0]
			scr.refIDs = scr.refIDs[:0]
			for _, c := range refs {
				scr.refData = append(scr.refData, c.data)
				scr.refIDs = append(scr.refIDs, c.remoteID)
			}
			diff := compress.CompressWith(r.engine, &scr.diff, data, scr.refData)
			p := Payload{Compressed: true, Refs: scr.refIDs, Diff: diff}
			if b := p.Bits(r.RemoteLIDBits()); b < bestBits {
				best, bestBits = p, b
			}
		}
	}
	if r.rec != nil {
		r.rec.Span(r.recTrack, obs.EvWBEncode, bestBits, r.rec.Clock()-wbStart)
	}
	r.Stats.WBPayloadBits += uint64(bestBits)
	r.mx.writebacks.Inc(r.shard)
	r.mx.wbPayloadBits.Add(r.shard, uint64(bestBits))
	switch {
	case !best.Compressed:
		r.Stats.WBRawWins++
		r.mx.wbRaw.Inc(r.shard)
	case len(best.Refs) == 0:
		r.Stats.WBStandalone++
		r.mx.wbStandalone.Inc(r.shard)
	default:
		r.Stats.WBDiffWins++
		r.mx.wbDiff.Inc(r.shard)
	}
	return best
}

// gatherWBCandidates mirrors the home-side search against the remote
// cache: candidates must still be present and in Shared state (a line
// that was upgraded or evicted has left the hash table, but verify
// anyway — the structure is allowed to be inexact, the result is not).
func (r *RemoteEnd) gatherWBCandidates(data []byte, sigs []sig.Signature) []candidate {
	scr := &r.scr
	cands := scr.cands[:0]
	scr.dedup.begin(len(sigs) * r.cfg.BucketDepth)
	for _, s := range sigs {
		scr.lookup = r.ht.Lookup(s, scr.lookup[:0])
		for _, id := range scr.lookup {
			if pos, dup := scr.dedup.insert(id, int32(len(cands))); dup {
				cands[pos].dups++
			} else {
				cands = append(cands, candidate{remoteID: id, dups: 1})
			}
		}
	}
	scr.cands = cands
	cands = preRank(cands, r.cfg.AccessCount)
	out := cands[:0]
	for _, c := range cands {
		line := r.remote.ReadByID(c.remoteID)
		if line == nil || line.State != cache.Shared {
			continue
		}
		c.data = line.Data
		c.cbv = CoverageVector(data, line.Data)
		if c.cbv == 0 {
			continue
		}
		out = append(out, c)
	}
	return out
}
