// Package core implements the CABLE framework — the paper's primary
// contribution: a point-to-point link encoder that re-purposes the data
// already stored in coherent caches as a massive, scalable compression
// dictionary.
//
// A link is a HomeEnd (the larger cache, e.g. the off-chip L4, which
// services and compresses requests) paired with a RemoteEnd (the smaller
// cache, e.g. the on-chip LLC, which receives and decompresses). The
// home end owns a signature hash table and a Way-Map Table; the remote
// end owns its own hash table for write-back compression. Both sides
// synchronize these structures from the coherence events they already
// observe (§III-F), so no extra coherence traffic is needed.
package core

import (
	"fmt"

	"cable/internal/cache"
	"cable/internal/sig"
)

// HashTable maps line signatures to the LineIDs of cache lines carrying
// them (Fig 7). It is a plain SRAM-style structure, not a CAM: each
// entry (bucket) holds BucketDepth LineIDs with FIFO replacement.
// Lookups are inexact — hash collisions yield false positives that the
// ranking step filters out by reading the actual data.
type HashTable struct {
	// entries is the flat bucket array: bucket b occupies
	// entries[b*depth : (b+1)*depth]. One contiguous allocation
	// instead of one per bucket mirrors the SRAM it models and keeps
	// bucket probes on at most two cache lines.
	entries  []entry
	nbuckets int
	depth    int

	// Stats
	Inserts    uint64
	Removes    uint64
	Lookups    uint64
	Collisions uint64 // insert displaced a live entry
}

type entry struct {
	id    cache.LineID
	valid bool
}

// NewHashTable builds a table with the given number of buckets (rounded
// up to a power of two) and bucket depth. A "full-sized" table has as
// many entries as the home cache has lines (§IV-D).
func NewHashTable(buckets, depth int) *HashTable {
	if buckets < 1 {
		buckets = 1
	}
	n := 1
	for n < buckets {
		n <<= 1
	}
	return &HashTable{entries: htEntryPool.get(n * depth), nbuckets: n, depth: depth}
}

// NumBuckets returns the bucket count.
func (h *HashTable) NumBuckets() int { return h.nbuckets }

// Depth returns the bucket depth.
func (h *HashTable) Depth() int { return h.depth }

func (h *HashTable) bucket(s sig.Signature) []entry {
	b := int(uint32(s) & uint32(h.nbuckets-1))
	return h.entries[b*h.depth : (b+1)*h.depth]
}

// Insert records that the line at id carries signature s. Within a
// bucket the oldest entry is displaced (FIFO): the most recent lines
// keep their signatures, which is what lets a half-sized table "retain
// signatures of the most recent half" (§IV-D).
func (h *HashTable) Insert(s sig.Signature, id cache.LineID) {
	h.Inserts++
	b := h.bucket(s)
	for i := range b {
		if b[i].valid && b[i].id == id {
			return // already present
		}
	}
	for i := range b {
		if !b[i].valid {
			// Shift to keep FIFO order: newest at the end.
			copy(b[i:], b[i+1:])
			b[len(b)-1] = entry{id: id, valid: true}
			return
		}
	}
	h.Collisions++
	copy(b, b[1:])
	b[len(b)-1] = entry{id: id, valid: true}
}

// Lookup appends the LineIDs stored under signature s to dst and
// returns it.
func (h *HashTable) Lookup(s sig.Signature, dst []cache.LineID) []cache.LineID {
	h.Lookups++
	for _, e := range h.bucket(s) {
		if e.valid {
			dst = append(dst, e.id)
		}
	}
	return dst
}

// Remove deletes the (s, id) association if present — the precise
// invalidation CABLE performs when caches desynchronize (§III-B).
func (h *HashTable) Remove(s sig.Signature, id cache.LineID) bool {
	b := h.bucket(s)
	for i := range b {
		if b[i].valid && b[i].id == id {
			copy(b[i:], b[i+1:])
			b[len(b)-1] = entry{}
			h.Removes++
			return true
		}
	}
	return false
}

// RemoveLine deletes every signature of data pointing at id.
func (h *HashTable) RemoveLine(ex *sig.Extractor, data []byte, id cache.LineID) {
	for _, s := range ex.InsertSignatures(data) {
		h.Remove(s, id)
	}
}

// InsertLine records the insert-signatures of data for id.
func (h *HashTable) InsertLine(ex *sig.Extractor, data []byte, id cache.LineID) {
	for _, s := range ex.InsertSignatures(data) {
		h.Insert(s, id)
	}
}

// Occupancy counts live entries (for tests and reports).
func (h *HashTable) Occupancy() int {
	n := 0
	for i := range h.entries {
		if h.entries[i].valid {
			n++
		}
	}
	return n
}

// SizeBits returns the storage cost of the table given the LineID
// width, for the Table III area model.
func (h *HashTable) SizeBits(lineIDBits int) int {
	return h.nbuckets * h.depth * (lineIDBits + 1)
}

// String implements fmt.Stringer.
func (h *HashTable) String() string {
	return fmt.Sprintf("hashtable{buckets=%d depth=%d live=%d}", h.nbuckets, h.depth, h.Occupancy())
}
