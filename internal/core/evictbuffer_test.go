package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"cable/internal/cache"
)

func TestEvictionBufferBasics(t *testing.T) {
	b := NewEvictionBuffer()
	slot := cache.LineID{Index: 4, Way: 1}
	data := []byte{1, 2, 3}
	seq := b.Add(slot, data)
	if seq != 1 || b.LastSeq() != 1 || b.Len() != 1 {
		t.Fatalf("seq=%d last=%d len=%d", seq, b.LastSeq(), b.Len())
	}
	// Home acked nothing (ack 0): reference means the evicted copy.
	if got := b.Resolve(slot, 0); !bytes.Equal(got, data) {
		t.Fatalf("Resolve(ack=0) = %v", got)
	}
	// Home has processed the eviction: the current occupant is meant.
	if got := b.Resolve(slot, seq); got != nil {
		t.Fatalf("Resolve(ack=seq) = %v, want nil", got)
	}
	b.Release(seq)
	if b.Len() != 0 {
		t.Fatalf("len after release = %d", b.Len())
	}
}

func TestEvictionBufferCopiesData(t *testing.T) {
	b := NewEvictionBuffer()
	slot := cache.LineID{Index: 0, Way: 0}
	data := []byte{9}
	b.Add(slot, data)
	data[0] = 1
	if got := b.Resolve(slot, 0); got[0] != 9 {
		t.Fatal("buffer must copy eviction data")
	}
}

func TestEvictionBufferMultiplePendingSameSlot(t *testing.T) {
	// Two in-flight evictions from one slot: the reference target
	// depends on how much the home has seen.
	b := NewEvictionBuffer()
	slot := cache.LineID{Index: 2, Way: 2}
	s1 := b.Add(slot, []byte{1})
	s2 := b.Add(slot, []byte{2})
	if got := b.Resolve(slot, 0); got[0] != 1 {
		t.Fatalf("ack=0 → occupant before first eviction, got %v", got)
	}
	if got := b.Resolve(slot, s1); got[0] != 2 {
		t.Fatalf("ack=s1 → occupant before second eviction, got %v", got)
	}
	if got := b.Resolve(slot, s2); got != nil {
		t.Fatalf("ack=s2 → current occupant, got %v", got)
	}
	b.Release(s1)
	if b.Len() != 1 {
		t.Fatalf("partial release kept %d", b.Len())
	}
}

func TestEvictionBufferUnknownSlot(t *testing.T) {
	b := NewEvictionBuffer()
	if got := b.Resolve(cache.LineID{Index: 9, Way: 9}, 0); got != nil {
		t.Fatal("unknown slot should resolve to nil")
	}
}

// TestOutOfOrderEvictionRace reproduces the §IV-A race end to end: the
// home end selects a reference, the remote cache evicts it before the
// response arrives, and the eviction buffer must still decompress the
// response correctly.
func TestOutOfOrderEvictionRace(t *testing.T) {
	cfg := DefaultConfig()
	h := newLinkHarness(t, cfg, 256, 16)

	// Warm up until the encoder is using references.
	for i := 0; h.he.Stats.DiffWins == 0 && i < 4000; i++ {
		h.request(uint64(h.rng.Intn(512)), false)
	}
	if h.he.Stats.DiffWins == 0 {
		t.Fatal("never produced a reference-seeded payload")
	}

	// Find an address whose fill uses references, then race it.
	rng := rand.New(rand.NewSource(99))
	for tries := 0; tries < 3000; tries++ {
		addr := uint64(rng.Intn(4096)) + 8192 // fresh range → misses
		h.backing[addr] = append([]byte(nil), h.protos[rng.Intn(len(h.protos))]...)
		binary.LittleEndian.PutUint32(h.backing[addr][8:], rng.Uint32())

		h.ensureHome(addr)
		idx := h.remote.IndexOf(addr)
		way := h.remote.VictimWay(idx)
		if victim, ok := h.remote.LineAddrOf(cache.LineID{Index: idx, Way: way}); ok {
			ev, _ := h.remote.Invalidate(victim)
			h.evictRemote(ev)
		}
		p, _, err := h.he.EncodeFill(addr, cache.Shared, way)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Refs) == 0 {
			continue
		}
		// RACE: before the payload "arrives", the remote cache evicts
		// the referenced line. The eviction notice has NOT reached the
		// home (it is in flight), so p.AckSeq predates it.
		refSlot := p.Refs[0]
		refAddr, ok := h.remote.LineAddrOf(refSlot)
		if !ok {
			t.Fatalf("reference %v not resident before race", refSlot)
		}
		ev, _ := h.remote.Invalidate(refAddr)
		h.re.OnEviction(ev.ID, ev.Data) // seq issued, notice in flight

		// The payload now arrives. Without the buffer the slot is
		// empty and decode would fail; with it, decode is exact.
		data, err := h.re.DecodeFill(p)
		if err != nil {
			t.Fatalf("decode during race: %v", err)
		}
		want, _, _ := h.home.Probe(addr)
		if !bytes.Equal(data, want.Data) {
			t.Fatal("race corrupted fill data")
		}
		if h.re.Stats.RescuedRefs == 0 {
			t.Fatal("eviction buffer was not used")
		}
		// Deliver the in-flight eviction notice and install the fill
		// so the harness stays consistent.
		h.he.OnRemoteEviction(ev.ID, h.re.EvictionBuffer().LastSeq())
		h.remote.InsertAt(addr, data, cache.Shared, way)
		h.re.OnFillInstalled(cache.LineID{Index: idx, Way: way}, data, cache.Shared)
		h.re.OnAck(h.re.EvictionBuffer().LastSeq())
		h.checkInvariants()
		return
	}
	t.Fatal("could not construct a referencing fill to race")
}

// TestRaceWithRefill extends the race: the evicted slot is refilled
// with a different line before the stale-referencing payload arrives.
// ack-based resolution must pick the buffered copy, not the new
// occupant.
func TestRaceWithRefill(t *testing.T) {
	cfg := DefaultConfig()
	h := newLinkHarness(t, cfg, 256, 16)
	for i := 0; h.he.Stats.DiffWins == 0 && i < 4000; i++ {
		h.request(uint64(h.rng.Intn(512)), false)
	}
	rng := rand.New(rand.NewSource(7))
	for tries := 0; tries < 3000; tries++ {
		addr := uint64(rng.Intn(4096)) + 16384
		h.backing[addr] = append([]byte(nil), h.protos[rng.Intn(len(h.protos))]...)
		h.ensureHome(addr)
		idx := h.remote.IndexOf(addr)
		way := h.remote.VictimWay(idx)
		if victim, ok := h.remote.LineAddrOf(cache.LineID{Index: idx, Way: way}); ok {
			ev, _ := h.remote.Invalidate(victim)
			h.evictRemote(ev)
		}
		p, _, err := h.he.EncodeFill(addr, cache.Shared, way)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Refs) == 0 {
			continue
		}
		refSlot := p.Refs[0]
		refAddr, _ := h.remote.LineAddrOf(refSlot)
		ev, _ := h.remote.Invalidate(refAddr)
		h.re.OnEviction(ev.ID, ev.Data)
		// Refill the same slot with different content (a local
		// write allocation — no home interaction needed for the test).
		junk := make([]byte, 64)
		rng.Read(junk)
		h.remote.InsertAt(refAddr^1, junk, cache.Modified, refSlot.Way)

		data, err := h.re.DecodeFill(p)
		if err != nil {
			t.Fatalf("decode during refill race: %v", err)
		}
		want, _, _ := h.home.Probe(addr)
		if !bytes.Equal(data, want.Data) {
			t.Fatal("refill race corrupted fill: decoder used the new occupant")
		}
		return
	}
	t.Fatal("could not construct the refill race")
}
