package core

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"cable/internal/cache"
	"cable/internal/sig"
)

func cbvLine(words ...uint32) []byte {
	line := make([]byte, 64)
	for i, w := range words {
		binary.LittleEndian.PutUint32(line[i*4:], w)
	}
	return line
}

func TestCoverageVector(t *testing.T) {
	data := cbvLine(1, 2, 3, 4)
	ref := cbvLine(1, 9, 3, 9)
	cbv := CoverageVector(data, ref)
	// Words 0 and 2 match; words 4..15 are zero in both → match too.
	want := uint32(0b0101) | uint32(0xFFF0)
	if cbv != want {
		t.Fatalf("cbv = %016b, want %016b", cbv, want)
	}
}

func TestCoverageVectorIdentical(t *testing.T) {
	data := cbvLine(7, 8, 9)
	if cbv := CoverageVector(data, data); cbv != 0xFFFF {
		t.Fatalf("identical lines cbv = %x, want ffff", cbv)
	}
}

func candList(cbvs ...uint32) []candidate {
	cands := make([]candidate, len(cbvs))
	for i, v := range cbvs {
		cands[i] = candidate{homeID: cache.LineID{Index: i, Way: 0}, cbv: v, dups: 1}
	}
	return cands
}

func TestSelectRefsPaperExample(t *testing.T) {
	// §III-C worked example: CBVs 1100, 0110, 0011. Greedy-with-swap
	// drops 0110 and selects {1100, 0011} for full coverage.
	cands := candList(0b1100, 0b0110, 0b0011)
	got := selectRefs(cands, 3)
	if len(got) != 2 {
		t.Fatalf("selected %d refs, want 2", len(got))
	}
	if got[0].cbv|got[1].cbv != 0b1111 {
		t.Fatalf("combined coverage %04b, want 1111", got[0].cbv|got[1].cbv)
	}
	for _, c := range got {
		if c.cbv == 0b0110 {
			t.Fatal("0110 should have been dropped")
		}
	}
}

func TestSelectRefsDropsRedundant(t *testing.T) {
	// A candidate fully covered by the others must not waste a
	// RemoteLID on the wire.
	cands := candList(0b1111, 0b0011)
	got := selectRefs(cands, 3)
	if len(got) != 1 || got[0].cbv != 0b1111 {
		t.Fatalf("got %d refs (cbv %04b)", len(got), got[0].cbv)
	}
}

func TestSelectRefsMaxRefs(t *testing.T) {
	cands := candList(0b0001, 0b0010, 0b0100, 0b1000)
	got := selectRefs(cands, 3)
	if len(got) != 3 {
		t.Fatalf("selected %d refs, want 3 (cap)", len(got))
	}
	if got2 := selectRefs(cands, 0); got2 != nil {
		t.Fatal("maxRefs=0 must select nothing")
	}
}

func TestSelectRefsNoCoverage(t *testing.T) {
	if got := selectRefs(candList(0, 0), 3); got != nil {
		t.Fatalf("zero-coverage candidates selected: %v", got)
	}
	if got := selectRefs(nil, 3); got != nil {
		t.Fatal("empty candidate list selected refs")
	}
}

func TestSelectRefsPrefersHigherDups(t *testing.T) {
	cands := candList(0b1100, 0b1100)
	cands[1].dups = 5
	got := selectRefs(cands, 3)
	if len(got) != 1 || got[0].dups != 5 {
		t.Fatalf("tie should prefer higher dup count, got %+v", got)
	}
}

func TestPreRank(t *testing.T) {
	cands := candList(1, 1, 1, 1, 1, 1, 1, 1)
	cands[3].dups = 9
	cands[6].dups = 5
	top := preRank(cands, 3)
	if len(top) != 3 {
		t.Fatalf("pre-rank kept %d", len(top))
	}
	if top[0].dups != 9 || top[1].dups != 5 {
		t.Fatalf("pre-rank order wrong: %+v", top)
	}
	// Stability: ties keep first-seen order (homeID index 0 next).
	if top[2].homeID.Index != 0 {
		t.Fatalf("pre-rank not stable: %+v", top[2])
	}
}

// naiveCoverageVector is the per-word loop the SWAR CoverageVector
// replaced; the two must agree on every line length and word pattern.
func naiveCoverageVector(data, ref []byte) uint32 {
	var cbv uint32
	n := len(data) / sig.WordSize
	for i := 0; i < n; i++ {
		if sig.Word(data, i*sig.WordSize) == sig.Word(ref, i*sig.WordSize) {
			cbv |= 1 << uint(i)
		}
	}
	return cbv
}

func TestCoverageVectorMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, size := range []int{0, 4, 8, 12, 16, 32, 60, 64, 128} {
		for trial := 0; trial < 200; trial++ {
			data := make([]byte, size)
			ref := make([]byte, size)
			rng.Read(data)
			copy(ref, data)
			// Flip a few words so matches and mismatches interleave.
			for k := rng.Intn(4); k > 0 && size > 0; k-- {
				ref[rng.Intn(size)] ^= byte(1 << uint(rng.Intn(8)))
			}
			if got, want := CoverageVector(data, ref), naiveCoverageVector(data, ref); got != want {
				t.Fatalf("size %d: cbv %016b, want %016b", size, got, want)
			}
		}
	}
}
