package core

import (
	"fmt"

	"cable/internal/cache"
	"cable/internal/compress"
	"cable/internal/obs"
	"cable/internal/sig"
)

// HomeEnd is the compressing side of a CABLE link: the larger cache
// that services requests (the off-chip L4 in the memory-link use case,
// or the home node's LLC across a coherence link). It owns the
// signature hash table and the Way-Map Table and keeps both
// synchronized from the request/eviction stream it already sees.
type HomeEnd struct {
	cfg    Config
	home   *cache.Cache
	engine compress.Engine
	ex     *sig.Extractor
	ht     *HashTable
	wmt    WayMap

	remoteSets    int
	remoteIdxBits int
	remoteWayBits int
	lineSize      int

	scr encScratch

	// mx/shard feed the process-wide metrics registry: the counter
	// block is shared, the shard (a padded cache line per counter) is
	// private to this end, so hot-path increments never contend.
	mx    *homeCounters
	shard uint32

	// tr is the optional decision-trace hook (nil = disabled, one
	// pointer check on the encode path).
	tr *obs.Tracer

	// rec/recTrack feed the optional flight recorder (nil = disabled,
	// same one-pointer-check discipline as tr).
	rec      *obs.Recorder
	recTrack *obs.Track

	// lastSigs/lastCands/lastSkip describe the most recent encode's
	// search, for the trace record.
	lastSigs  int
	lastCands int
	lastSkip  bool

	// thrSkip[nbits] caches the standalone-threshold decision for every
	// possible standalone output size (lineSize and threshold are fixed
	// per end). Entries are computed with the exact float expression the
	// sequential path evaluates, so a table hit is bit-identical to it.
	// Built lazily by the batch path; nil until first EncodeFills.
	thrSkip []bool

	// AckSeq is the highest remote EvictSeq this end has processed;
	// it is echoed in responses (§IV-A).
	AckSeq uint64

	// Stats accumulates encoder decisions.
	Stats HomeStats
}

// encScratch holds the reusable buffers of the encode pipeline so that
// steady-state encodes allocate nothing. A link end owns exactly one
// (ends are not goroutine-safe; parallel simulations build one link
// per worker).
type encScratch struct {
	searchSigs []sig.Signature
	insertSigs []sig.Signature
	lookup     []cache.LineID
	cands      []candidate
	refs       []candidate
	refData    [][]byte
	refIDs     []cache.LineID
	raw        []byte
	decRefs    [][]byte
	decOut     []byte // raw-path decode output
	dec        compress.DecScratch
	standalone compress.Scratch
	diff       compress.Scratch
	pick       refPicker
	dedup      dedupIndex
}

// HomeStats counts encoder events.
type HomeStats struct {
	Fills          uint64
	RawWins        uint64 // uncompressed payload was smallest
	StandaloneWins uint64 // compressed without references
	ThresholdSkips uint64 // standalone ratio ≥ threshold, search skipped
	DiffWins       uint64 // reference-seeded DIFF won
	RefsUsed       [4]uint64
	SigsSearched   uint64
	CandidatesRead uint64
	PayloadBits    uint64
	SourceBits     uint64
	WBDecodes      uint64
}

// NewHomeEnd builds the home side of a link between home and a remote
// cache with remote's geometry, using a private per-link WMT. The
// remote cache object is used only for its geometry — the home end
// never reads remote data.
func NewHomeEnd(cfg Config, home, remote *cache.Cache) (*HomeEnd, error) {
	return NewHomeEndWithWayMap(cfg, home, remote, nil)
}

// NewHomeEndWithWayMap builds a home end over an explicit way-map —
// typically a SuperWMT view shared across links (§IV-D). A nil wm gets
// a private WMT.
func NewHomeEndWithWayMap(cfg Config, home, remote *cache.Cache, wm WayMap) (*HomeEnd, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng, err := compress.NewEngine(cfg.EngineName)
	if err != nil {
		return nil, err
	}
	buckets := int(float64(home.NumLines()) * cfg.HashSizeFactor / float64(cfg.BucketDepth))
	if buckets < 1 {
		buckets = 1
	}
	if wm == nil {
		wm = NewWMT(home, remote)
	}
	h := &HomeEnd{
		cfg:           cfg,
		home:          home,
		engine:        eng,
		ex:            sig.NewExtractorN(home.Config().LineSize, cfg.SigSeed, cfg.InsertSigs),
		ht:            NewHashTable(buckets, cfg.BucketDepth),
		wmt:           wm,
		remoteSets:    remote.NumSets(),
		remoteIdxBits: remote.IndexBits(),
		remoteWayBits: remote.WayBits(),
		lineSize:      home.Config().LineSize,
	}
	h.mx, h.shard = homeMetricsIn(cfg.Metrics)
	h.scr.prime()
	h.scr.standalone.UseRegistry(cfg.Metrics)
	h.scr.diff.UseRegistry(cfg.Metrics)
	return h, nil
}

// SetTracer attaches (or, with nil, detaches) the sampled decision
// tracer. The disabled path is a single pointer check per encode.
func (h *HomeEnd) SetTracer(t *obs.Tracer) { h.tr = t }

// Tracer returns the attached decision tracer, if any.
func (h *HomeEnd) Tracer() *obs.Tracer { return h.tr }

// SetRecorder attaches (or, with nil, detaches) the flight recorder.
// Encodes and write-back decodes on this end land on track t.
func (h *HomeEnd) SetRecorder(rec *obs.Recorder, t *obs.Track) { h.rec, h.recTrack = rec, t }

// RemoteLIDBits is the transmitted pointer width (Table III), or the
// configured override for the tag-pointer ablation.
func (h *HomeEnd) RemoteLIDBits() int {
	if h.cfg.PointerBitsOverride > 0 {
		return h.cfg.PointerBitsOverride
	}
	return h.remoteIdxBits + h.remoteWayBits
}

// HashTable exposes the hash table (for tests and the area model).
func (h *HomeEnd) HashTable() *HashTable { return h.ht }

// WMT exposes the way-map (for tests and the area model).
func (h *HomeEnd) WMT() WayMap { return h.wmt }

// Engine returns the delegated compression engine.
func (h *HomeEnd) Engine() compress.Engine { return h.engine }

// FillLatency describes the cycle cost of one encoded fill, per the
// §IV-D pipeline model. The paper's results conservatively use the
// worst case; the per-fill numbers feed the adaptive study.
type FillLatency struct {
	SearchCycles     int
	CompressCycles   int
	DecompressCycles int
}

// Total returns end-to-end added latency in cycles.
func (l FillLatency) Total() int { return l.SearchCycles + l.CompressCycles + l.DecompressCycles }

// searchLatency models the 2-signature-per-cycle, 8-stage search
// pipeline: ⌈n/2⌉ issue cycles drained through an 8-cycle pipeline,
// bounded by the paper's best (8) and worst (16) cases.
func searchLatency(nsigs int) int {
	if nsigs == 0 {
		return 0
	}
	lat := (nsigs+1)/2 + 8
	if lat < SearchLatencyBest {
		lat = SearchLatencyBest
	}
	if lat > SearchLatencyWorst {
		lat = SearchLatencyWorst
	}
	return lat
}

// EncodeFill compresses the response for lineAddr, which must be
// present in the home cache (on an L4 miss the simulator installs the
// DRAM fill first — "compression continues as if it was a hit", §V-A).
// state is the coherence state granted to the remote copy and replWay
// the way-replacement info carried in the request (§II-C). EncodeFill
// also performs the home-side synchronization for this transfer.
func (h *HomeEnd) EncodeFill(lineAddr uint64, state cache.State, replWay int) (Payload, FillLatency, error) {
	line, _, ok := h.home.Probe(lineAddr)
	if !ok {
		return Payload{}, FillLatency{}, fmt.Errorf("core: EncodeFill %#x: line not present in home cache %q", lineAddr, h.home.Config().Name)
	}
	p, lat := h.encodeFillData(lineAddr, line.Data, state, replWay)
	return p, lat, nil
}

// EncodeFillData is the non-inclusive variant (§IV-C): the response
// data is supplied directly and need not be resident in the home cache
// (a Haswell-EP-style Home Agent forwards lines it does not cache).
// References still come from home-cached, WMT-tracked lines; the filled
// line only becomes a future reference if the home happens to cache it.
func (h *HomeEnd) EncodeFillData(lineAddr uint64, data []byte, state cache.State, replWay int) (Payload, FillLatency, error) {
	if len(data) != h.lineSize {
		return Payload{}, FillLatency{}, fmt.Errorf("core: EncodeFillData %#x: %dB line, want %dB", lineAddr, len(data), h.lineSize)
	}
	p, lat := h.encodeFillData(lineAddr, data, state, replWay)
	return p, lat, nil
}

func (h *HomeEnd) encodeFillData(lineAddr uint64, data []byte, state cache.State, replWay int) (Payload, FillLatency) {
	h.Stats.Fills++
	h.Stats.SourceBits += uint64(len(data) * 8)
	h.mx.fills.Inc(h.shard)
	h.mx.sourceBits.Add(h.shard, uint64(len(data)*8))

	var encStart int64
	if h.rec != nil {
		encStart = h.rec.Clock()
	}
	payload, lat := h.encode(data)

	// Synchronization (§III-F). The displaced occupant of the target
	// slot can no longer serve as a reference.
	rSlot := cache.LineID{Index: int(lineAddr & uint64(h.remoteSets-1)), Way: replWay}
	h.noteDisplacement(rSlot)
	if state == cache.Shared {
		// The line becomes a reference only if the home caches it
		// (always true for inclusive hierarchies).
		if line, homeID, ok := h.home.Probe(lineAddr); ok {
			h.wmt.Set(rSlot, homeID)
			h.insertLine(line.Data, homeID)
		}
	}
	payload.AckSeq = h.AckSeq
	pbits := payload.Bits(h.RemoteLIDBits())
	h.Stats.PayloadBits += uint64(pbits)
	h.mx.payloadBits.Add(h.shard, uint64(pbits))
	h.mx.payloadDist.Observe(uint64(pbits))
	h.recordOutcome(payload)
	if h.rec != nil {
		h.rec.Encode(h.recTrack, payloadClass(payload), pbits, h.lastSkip, h.rec.Clock()-encStart)
	}
	if h.tr != nil {
		h.tr.Record(obs.EncodeRecord{
			LineAddr:      lineAddr,
			Class:         payloadClass(payload),
			Refs:          uint8(len(payload.Refs)),
			SigsSearched:  uint8(h.lastSigs),
			Candidates:    uint8(h.lastCands),
			ThresholdSkip: h.lastSkip,
			PayloadBits:   uint32(pbits),
		})
	}
	return payload, lat
}

// payloadClass maps a winning payload to its encoding class.
func payloadClass(p Payload) obs.EncodeClass {
	switch {
	case !p.Compressed:
		return obs.ClassRaw
	case len(p.Refs) == 0:
		return obs.ClassStandalone
	default:
		return obs.DiffClass(len(p.Refs))
	}
}

// encode runs the §III-C/§III-E pipeline on one line: concurrent
// standalone compression, threshold check, signature search, CBV
// ranking, DIFF compression, and the smallest-payload decision.
//
// Every buffer the returned Payload carries (Raw, Refs, Diff bits)
// aliases this end's scratch, so a payload is valid only until the
// next encode on the same end; callers that retain one must Clone it.
// The simulators and link drivers all consume payloads immediately.
func (h *HomeEnd) encode(data []byte) (Payload, FillLatency) {
	h.lastSigs, h.lastCands, h.lastSkip = 0, 0, false
	scr := &h.scr
	standalone := compress.CompressWith(h.engine, &scr.standalone, data, nil)
	rawBits := flagBits + len(data)*8

	best := Payload{Compressed: true, Diff: standalone}
	bestBits := best.Bits(h.RemoteLIDBits())
	if rawBits < bestBits {
		scr.raw = append(scr.raw[:0], data...)
		best = Payload{Raw: scr.raw}
		bestBits = rawBits
	}
	lat := FillLatency{CompressCycles: CompressLatency, DecompressCycles: DecompressLatency}

	if compress.Ratio(len(data), standalone.NBits) >= h.cfg.StandaloneThreshold {
		h.Stats.ThresholdSkips++
		h.mx.thresholdSkips.Inc(h.shard)
		h.lastSkip = true
		return best, lat
	}

	scr.searchSigs = h.ex.AppendSearchSignatures(scr.searchSigs[:0], data, h.cfg.MaxSearchSigs)
	sigs := scr.searchSigs
	h.Stats.SigsSearched += uint64(len(sigs))
	h.lastSigs = len(sigs)
	h.mx.sigsSearched.Add(h.shard, uint64(len(sigs)))
	h.mx.htProbes.Add(h.shard, uint64(len(sigs)))
	lat.SearchCycles = searchLatency(len(sigs))
	cands := h.gatherCandidates(data, sigs)
	h.lastCands = len(cands)
	scr.refs = scr.pick.pick(cands, h.cfg.MaxRefs, scr.refs[:0])
	if refs := scr.refs; len(refs) > 0 {
		scr.refData = scr.refData[:0]
		scr.refIDs = scr.refIDs[:0]
		for _, c := range refs {
			scr.refData = append(scr.refData, c.data)
			scr.refIDs = append(scr.refIDs, c.remoteID)
		}
		diff := compress.CompressWith(h.engine, &scr.diff, data, scr.refData)
		p := Payload{Compressed: true, Refs: scr.refIDs, Diff: diff}
		if b := p.Bits(h.RemoteLIDBits()); b < bestBits {
			best, bestBits = p, b
		}
	}
	return best, lat
}

// gatherCandidates probes the hash table with every search signature,
// pre-ranks by duplication, reads the top candidates from the data
// array, checks remote residency through the WMT, and builds CBVs.
// Candidates are deduplicated in first-seen order through the scratch
// dedup index — O(1) per lookup result instead of the former O(n²)
// rescan of the candidate slice, with bit-identical output.
func (h *HomeEnd) gatherCandidates(data []byte, sigs []sig.Signature) []candidate {
	scr := &h.scr
	cands := scr.cands[:0]
	scr.dedup.begin(len(sigs) * h.cfg.BucketDepth)
	for _, s := range sigs {
		scr.lookup = h.ht.Lookup(s, scr.lookup[:0])
		h.mx.htHits.Add(h.shard, uint64(len(scr.lookup)))
		for _, id := range scr.lookup {
			if pos, dup := scr.dedup.insert(id, int32(len(cands))); dup {
				cands[pos].dups++
			} else {
				cands = append(cands, candidate{homeID: id, dups: 1})
			}
		}
	}
	scr.cands = cands
	cands = preRank(cands, h.cfg.AccessCount)

	out := cands[:0]
	for _, c := range cands {
		remoteID, resident := h.wmt.Lookup(c.homeID)
		if !resident {
			h.mx.wmtMisses.Inc(h.shard)
			continue
		}
		h.mx.wmtHits.Inc(h.shard)
		ref := h.home.ReadByID(c.homeID)
		h.Stats.CandidatesRead++
		h.mx.candidatesRead.Inc(h.shard)
		if ref == nil {
			continue
		}
		c.remoteID = remoteID
		c.data = ref.Data
		c.cbv = CoverageVector(data, ref.Data)
		if c.cbv == 0 {
			continue // hash collision: no similarity at all (Fig 7)
		}
		out = append(out, c)
	}
	return out
}

// insertLine records data's insert-signatures for id through the
// reused signature scratch.
func (h *HomeEnd) insertLine(data []byte, id cache.LineID) {
	h.scr.insertSigs = h.ex.AppendInsertSignatures(h.scr.insertSigs[:0], data)
	collisionsBefore := h.ht.Collisions
	for _, s := range h.scr.insertSigs {
		h.ht.Insert(s, id)
	}
	h.mx.htInserts.Add(h.shard, uint64(len(h.scr.insertSigs)))
	h.mx.htCollisions.Add(h.shard, h.ht.Collisions-collisionsBefore)
}

// removeLine scrubs data's insert-signatures for id through the reused
// signature scratch.
func (h *HomeEnd) removeLine(data []byte, id cache.LineID) {
	h.scr.insertSigs = h.ex.AppendInsertSignatures(h.scr.insertSigs[:0], data)
	for _, s := range h.scr.insertSigs {
		h.ht.Remove(s, id)
	}
	h.mx.htRemoves.Add(h.shard, uint64(len(h.scr.insertSigs)))
}

// noteDisplacement handles the implicit eviction conveyed by the
// way-replacement info: whatever the WMT tracked in the target remote
// slot is about to be displaced, so its signatures must be removed.
func (h *HomeEnd) noteDisplacement(rSlot cache.LineID) {
	displacedHome, ok := h.wmt.Clear(rSlot)
	if !ok {
		return
	}
	if line := h.home.ReadByID(displacedHome); line != nil {
		h.removeLine(line.Data, displacedHome)
	}
}

func (h *HomeEnd) recordOutcome(p Payload) {
	switch {
	case !p.Compressed:
		h.Stats.RawWins++
		h.mx.outcomeRaw.Inc(h.shard)
	case len(p.Refs) == 0:
		h.Stats.StandaloneWins++
		h.mx.outcomeStand.Inc(h.shard)
	default:
		h.Stats.DiffWins++
		h.mx.outcomeDiff.Inc(h.shard)
	}
	if p.Compressed {
		h.Stats.RefsUsed[len(p.Refs)]++
		h.mx.refsUsed[len(p.Refs)].Inc(h.shard)
	}
}

// OnRemoteEviction processes an explicit (non-silent) eviction notice:
// the remote slot no longer holds the line, so it cannot serve as a
// reference. seq is the eviction's EvictSeq; processing it advances the
// acknowledged sequence echoed in future responses.
func (h *HomeEnd) OnRemoteEviction(rSlot cache.LineID, seq uint64) {
	h.noteDisplacement(rSlot)
	if seq > h.AckSeq {
		h.AckSeq = seq
	}
}

// OnHomeEviction must be called before the home cache evicts lineAddr
// (with inclusive caches this also back-invalidates the remote copy).
// It scrubs the WMT entry and hash-table signatures.
func (h *HomeEnd) OnHomeEviction(lineAddr uint64) {
	line, homeID, ok := h.home.Probe(lineAddr)
	if !ok {
		return
	}
	h.wmt.ClearHome(homeID)
	h.removeLine(line.Data, homeID)
}

// OnUpgrade processes a shared→modified upgrade request: the remote
// copy is about to be written, so the line must stop serving as a
// reference on both sides (§III-F).
func (h *HomeEnd) OnUpgrade(lineAddr uint64) {
	line, homeID, ok := h.home.Probe(lineAddr)
	if !ok {
		return
	}
	h.wmt.ClearHome(homeID)
	h.removeLine(line.Data, homeID)
}

// DecodeWriteback reconstructs a write-back payload produced by the
// remote end. Reference RemoteLIDs are translated through the WMT back
// to home positions (§III-G). The result aliases this end's decode
// scratch and is valid until the next decode; retainers must copy.
func (h *HomeEnd) DecodeWriteback(p Payload) ([]byte, error) {
	h.Stats.WBDecodes++
	h.mx.wbDecodes.Inc(h.shard)
	if h.rec != nil {
		start := h.rec.Clock()
		defer func() {
			h.rec.Span(h.recTrack, obs.EvWBDecode, p.Bits(h.RemoteLIDBits()), h.rec.Clock()-start)
		}()
	}
	if !p.Compressed {
		if len(p.Raw) != h.lineSize {
			return nil, fmt.Errorf("core: raw writeback of %dB, want %dB: %w", len(p.Raw), h.lineSize, ErrTruncatedPayload)
		}
		h.scr.decOut = append(h.scr.decOut[:0], p.Raw...)
		return h.scr.decOut, nil
	}
	h.scr.decRefs = h.scr.decRefs[:0]
	for _, rid := range p.Refs {
		homeID, ok := h.wmt.Reverse(rid)
		if !ok {
			return nil, fmt.Errorf("core: writeback references untracked remote slot %v: %w", rid, ErrBadReference)
		}
		line := h.home.ReadByID(homeID)
		if line == nil {
			return nil, fmt.Errorf("core: WMT maps %v to empty home slot %v: %w", rid, homeID, ErrBadReference)
		}
		h.scr.decRefs = append(h.scr.decRefs, line.Data)
	}
	out, err := compress.DecompressWith(h.engine, &h.scr.dec, p.Diff, h.scr.decRefs, h.lineSize)
	if err != nil {
		return nil, fmt.Errorf("core: writeback diff: %w: %w", ErrCorruptDiff, err)
	}
	return out, nil
}
