package core

import "cable/internal/cache"

// dedupIndex is a generation-stamped open-addressing set that
// deduplicates hash-table lookup results during candidate gathering.
// It replaces the former O(n²) linear rescan of the candidate slice:
// with deep buckets and many search signatures the scan cost grew with
// the square of the candidate count, while this index is O(1) per
// lookup result. Clearing between encodes is a single generation bump,
// so the scratch never needs re-zeroing on the hot path.
type dedupIndex struct {
	slots []dedupSlot
	mask  uint32
	gen   uint32
}

type dedupSlot struct {
	gen uint32
	pos int32
	id  cache.LineID
}

// begin prepares the index for one encode that will observe at most
// max candidate IDs (lookup results, pre-dedup). Capacity is kept at
// least twice max so probe chains stay short.
func (d *dedupIndex) begin(max int) {
	need := 1
	for need < 2*max {
		need <<= 1
	}
	if need > len(d.slots) {
		d.slots = make([]dedupSlot, need)
		d.mask = uint32(need - 1)
		d.gen = 0
	}
	d.gen++
	if d.gen == 0 {
		// Generation wrap: stale stamps from 2³² encodes ago could
		// alias the fresh generation, so clear once and restart.
		for i := range d.slots {
			d.slots[i].gen = 0
		}
		d.gen = 1
	}
}

// insert records id at position pos unless it is already present; it
// returns the position recorded for id and whether it was a duplicate.
func (d *dedupIndex) insert(id cache.LineID, pos int32) (int32, bool) {
	h := dedupHash(id) & d.mask
	for {
		s := &d.slots[h]
		if s.gen != d.gen {
			s.gen, s.id, s.pos = d.gen, id, pos
			return pos, false
		}
		if s.id == id {
			return s.pos, true
		}
		h = (h + 1) & d.mask
	}
}

func dedupHash(id cache.LineID) uint32 {
	x := uint64(uint32(id.Index))<<32 | uint64(uint32(id.Way))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return uint32(x)
}
