package core

import (
	"fmt"

	"cable/internal/cache"
)

// WMT is the Way-Map Table (§III-D): a home-cache structure that tracks
// which home lines are resident in the remote cache and *where*. Its
// layout mirrors the remote cache (remote sets × remote ways); each
// entry holds a normalized HomeLID — alias + home way, where "alias" is
// the home index bits left over after removing the remote index bits.
// A hit at (remoteIndex, way) both proves remote residency and yields
// the RemoteLID, cutting pointer size by more than half versus tags.
type WMT struct {
	sets      int
	ways      int
	remoteIdx int // remote index bits
	aliasBits int // home index bits − remote index bits
	entries   [][]wmtEntry

	// Stats
	Hits   uint64
	Misses uint64
}

type wmtEntry struct {
	alias   uint64
	homeWay int
	valid   bool
}

// NewWMT builds a WMT for a home cache of homeCfg tracking a remote
// cache of remoteCfg. The home cache must have at least as many sets as
// the remote (it is the larger, inclusive cache).
func NewWMT(home, remote *cache.Cache) *WMT {
	if home.IndexBits() < remote.IndexBits() {
		panic(fmt.Sprintf("core: home cache %q has fewer sets than remote %q",
			home.Config().Name, remote.Config().Name))
	}
	w := &WMT{
		sets:      remote.NumSets(),
		ways:      remote.Config().Ways,
		remoteIdx: remote.IndexBits(),
		aliasBits: home.IndexBits() - remote.IndexBits(),
	}
	w.entries = make([][]wmtEntry, w.sets)
	for i := range w.entries {
		w.entries[i] = make([]wmtEntry, w.ways)
	}
	return w
}

// split decomposes a home LineID into (remoteIndex, alias).
func (w *WMT) split(homeID cache.LineID) (remoteIndex int, alias uint64) {
	return homeID.Index & (w.sets - 1), uint64(homeID.Index) >> uint(w.remoteIdx)
}

// Lookup translates a HomeLID to a RemoteLID (Fig 9). ok is false when
// the line is not guaranteed to exist in the remote cache.
func (w *WMT) Lookup(homeID cache.LineID) (cache.LineID, bool) {
	rIdx, alias := w.split(homeID)
	for way, e := range w.entries[rIdx] {
		if e.valid && e.alias == alias && e.homeWay == homeID.Way {
			w.Hits++
			return cache.LineID{Index: rIdx, Way: way}, true
		}
	}
	w.Misses++
	return cache.LineID{}, false
}

// Reverse translates a RemoteLID back to the HomeLID stored there —
// the write-back decompression path (§III-G). ok is false for an
// invalid slot.
func (w *WMT) Reverse(remoteID cache.LineID) (cache.LineID, bool) {
	if remoteID.Index < 0 || remoteID.Index >= w.sets || remoteID.Way < 0 || remoteID.Way >= w.ways {
		return cache.LineID{}, false
	}
	e := w.entries[remoteID.Index][remoteID.Way]
	if !e.valid {
		return cache.LineID{}, false
	}
	homeIdx := int(e.alias)<<uint(w.remoteIdx) | remoteID.Index
	return cache.LineID{Index: homeIdx, Way: e.homeWay}, true
}

// Set records that the home line homeID is resident in the remote cache
// at remoteID. It returns the HomeLID previously tracked in that slot,
// if any — the displaced line whose signatures must be invalidated.
func (w *WMT) Set(remoteID cache.LineID, homeID cache.LineID) (displaced cache.LineID, wasValid bool) {
	rIdx, alias := w.split(homeID)
	if rIdx != remoteID.Index {
		panic(fmt.Sprintf("core: WMT set index mismatch: home %v maps to remote set %d, slot is %d",
			homeID, rIdx, remoteID.Index))
	}
	e := &w.entries[remoteID.Index][remoteID.Way]
	if e.valid {
		displaced = cache.LineID{Index: int(e.alias)<<uint(w.remoteIdx) | remoteID.Index, Way: e.homeWay}
		wasValid = true
	}
	*e = wmtEntry{alias: alias, homeWay: homeID.Way, valid: true}
	return displaced, wasValid
}

// Clear invalidates the slot at remoteID, returning the HomeLID it
// tracked.
func (w *WMT) Clear(remoteID cache.LineID) (cache.LineID, bool) {
	if remoteID.Index < 0 || remoteID.Index >= w.sets || remoteID.Way < 0 || remoteID.Way >= w.ways {
		return cache.LineID{}, false
	}
	e := &w.entries[remoteID.Index][remoteID.Way]
	if !e.valid {
		return cache.LineID{}, false
	}
	homeID := cache.LineID{Index: int(e.alias)<<uint(w.remoteIdx) | remoteID.Index, Way: e.homeWay}
	*e = wmtEntry{}
	return homeID, true
}

// ClearHome invalidates the slot tracking homeID, if any (used on home
// evictions and upgrades, where the event is keyed by the home line).
func (w *WMT) ClearHome(homeID cache.LineID) (cache.LineID, bool) {
	rID, ok := w.Lookup(homeID)
	if !ok {
		return cache.LineID{}, false
	}
	w.entries[rID.Index][rID.Way] = wmtEntry{}
	return rID, true
}

// ForEach visits every valid entry as (remoteID, homeID).
func (w *WMT) ForEach(fn func(remoteID, homeID cache.LineID)) {
	for idx := range w.entries {
		for way, e := range w.entries[idx] {
			if e.valid {
				fn(cache.LineID{Index: idx, Way: way},
					cache.LineID{Index: int(e.alias)<<uint(w.remoteIdx) | idx, Way: e.homeWay})
			}
		}
	}
}

// Occupancy counts valid entries.
func (w *WMT) Occupancy() int {
	n := 0
	for _, set := range w.entries {
		for _, e := range set {
			if e.valid {
				n++
			}
		}
	}
	return n
}

// EntryBits is the per-entry storage cost: alias bits + home way bits +
// valid bit. For the paper's 8-way 8 MB LLC / 16-way 16 MB buffer this
// is 1 alias + 3(+1) way bits ≈ 4 bits (§IV-D).
func (w *WMT) EntryBits(homeWayBits int) int {
	return w.aliasBits + homeWayBits + 1
}

// SizeBits returns total WMT storage for the area model.
func (w *WMT) SizeBits(homeWayBits int) int {
	return w.sets * w.ways * w.EntryBits(homeWayBits)
}
