package core

import (
	"fmt"

	"cable/internal/cache"
)

// WMT is the Way-Map Table (§III-D): a home-cache structure that tracks
// which home lines are resident in the remote cache and *where*. Its
// layout mirrors the remote cache (remote sets × remote ways); each
// entry holds a normalized HomeLID — alias + home way, where "alias" is
// the home index bits left over after removing the remote index bits.
// A hit at (remoteIndex, way) both proves remote residency and yields
// the RemoteLID, cutting pointer size by more than half versus tags.
type WMT struct {
	sets      int
	ways      int
	remoteIdx int // remote index bits
	aliasBits int // home index bits − remote index bits
	// entries is the flat slot array: slot (set, way) lives at
	// entries[set*ways+way]. One pooled allocation instead of one per
	// set keeps cell startup off the allocator (see pool.go) and set
	// scans on contiguous cache lines.
	entries []wmtEntry

	// Stats
	Hits   uint64
	Misses uint64
}

// wmtEntry packs one way-map slot into a single machine word — bit 63
// valid, bits 48..62 home way, bits 0..47 alias — so a set scan touches
// at most one cache line (8-way: 64 bytes, vs three lines for the
// previous three-field struct) and Lookup's three-field compare becomes
// a single word compare against a precomputed key. The zero value is an
// invalid slot, which keeps the pooled-backing contract (cleared slices
// come back all-invalid) for free.
type wmtEntry uint64

const (
	wmtValidBit  = wmtEntry(1) << 63
	wmtWayShift  = 48
	wmtAliasMask = wmtEntry(1)<<wmtWayShift - 1
)

// packWMT builds the slot word for a valid mapping. The packing is
// bijective over (alias < 2^48, way < 2^15) — NewWMT rejects geometries
// outside that — so equality of packed words is exactly equality of the
// (valid, alias, homeWay) triples.
func packWMT(alias uint64, homeWay int) wmtEntry {
	return wmtValidBit | wmtEntry(homeWay)<<wmtWayShift | wmtEntry(alias)
}

func (e wmtEntry) valid() bool   { return e&wmtValidBit != 0 }
func (e wmtEntry) alias() uint64 { return uint64(e & wmtAliasMask) }
func (e wmtEntry) homeWay() int  { return int(e>>wmtWayShift) & 0x7FFF }

// NewWMT builds a WMT for a home cache of homeCfg tracking a remote
// cache of remoteCfg. The home cache must have at least as many sets as
// the remote (it is the larger, inclusive cache).
func NewWMT(home, remote *cache.Cache) *WMT {
	if home.IndexBits() < remote.IndexBits() {
		panic(fmt.Sprintf("core: home cache %q has fewer sets than remote %q",
			home.Config().Name, remote.Config().Name))
	}
	w := &WMT{
		sets:      remote.NumSets(),
		ways:      remote.Config().Ways,
		remoteIdx: remote.IndexBits(),
		aliasBits: home.IndexBits() - remote.IndexBits(),
	}
	if w.aliasBits >= wmtWayShift || home.Config().Ways > 0x7FFF {
		panic(fmt.Sprintf("core: WMT geometry overflows packed entry (alias bits %d, home ways %d)",
			w.aliasBits, home.Config().Ways))
	}
	w.entries = wmtEntryPool.get(w.sets * w.ways)
	return w
}

// split decomposes a home LineID into (remoteIndex, alias).
func (w *WMT) split(homeID cache.LineID) (remoteIndex int, alias uint64) {
	return homeID.Index & (w.sets - 1), uint64(homeID.Index) >> uint(w.remoteIdx)
}

// Lookup translates a HomeLID to a RemoteLID (Fig 9). ok is false when
// the line is not guaranteed to exist in the remote cache.
func (w *WMT) Lookup(homeID cache.LineID) (cache.LineID, bool) {
	rIdx, alias := w.split(homeID)
	key := packWMT(alias, homeID.Way)
	set := w.entries[rIdx*w.ways : (rIdx+1)*w.ways]
	for way, e := range set {
		if e == key {
			w.Hits++
			return cache.LineID{Index: rIdx, Way: way}, true
		}
	}
	w.Misses++
	return cache.LineID{}, false
}

// Reverse translates a RemoteLID back to the HomeLID stored there —
// the write-back decompression path (§III-G). ok is false for an
// invalid slot.
func (w *WMT) Reverse(remoteID cache.LineID) (cache.LineID, bool) {
	if remoteID.Index < 0 || remoteID.Index >= w.sets || remoteID.Way < 0 || remoteID.Way >= w.ways {
		return cache.LineID{}, false
	}
	e := w.entries[remoteID.Index*w.ways+remoteID.Way]
	if !e.valid() {
		return cache.LineID{}, false
	}
	homeIdx := int(e.alias())<<uint(w.remoteIdx) | remoteID.Index
	return cache.LineID{Index: homeIdx, Way: e.homeWay()}, true
}

// Set records that the home line homeID is resident in the remote cache
// at remoteID. It returns the HomeLID previously tracked in that slot,
// if any — the displaced line whose signatures must be invalidated.
func (w *WMT) Set(remoteID cache.LineID, homeID cache.LineID) (displaced cache.LineID, wasValid bool) {
	rIdx, alias := w.split(homeID)
	if rIdx != remoteID.Index {
		panic(fmt.Sprintf("core: WMT set index mismatch: home %v maps to remote set %d, slot is %d",
			homeID, rIdx, remoteID.Index))
	}
	e := &w.entries[remoteID.Index*w.ways+remoteID.Way]
	if old := *e; old.valid() {
		displaced = cache.LineID{Index: int(old.alias())<<uint(w.remoteIdx) | remoteID.Index, Way: old.homeWay()}
		wasValid = true
	}
	*e = packWMT(alias, homeID.Way)
	return displaced, wasValid
}

// Clear invalidates the slot at remoteID, returning the HomeLID it
// tracked.
func (w *WMT) Clear(remoteID cache.LineID) (cache.LineID, bool) {
	if remoteID.Index < 0 || remoteID.Index >= w.sets || remoteID.Way < 0 || remoteID.Way >= w.ways {
		return cache.LineID{}, false
	}
	e := &w.entries[remoteID.Index*w.ways+remoteID.Way]
	if !e.valid() {
		return cache.LineID{}, false
	}
	homeID := cache.LineID{Index: int(e.alias())<<uint(w.remoteIdx) | remoteID.Index, Way: e.homeWay()}
	*e = 0
	return homeID, true
}

// ClearHome invalidates the slot tracking homeID, if any (used on home
// evictions and upgrades, where the event is keyed by the home line).
func (w *WMT) ClearHome(homeID cache.LineID) (cache.LineID, bool) {
	rID, ok := w.Lookup(homeID)
	if !ok {
		return cache.LineID{}, false
	}
	w.entries[rID.Index*w.ways+rID.Way] = 0
	return rID, true
}

// ForEach visits every valid entry as (remoteID, homeID).
func (w *WMT) ForEach(fn func(remoteID, homeID cache.LineID)) {
	for i, e := range w.entries {
		if e.valid() {
			fn(cache.LineID{Index: i / w.ways, Way: i % w.ways},
				cache.LineID{Index: int(e.alias())<<uint(w.remoteIdx) | i/w.ways, Way: e.homeWay()})
		}
	}
}

// Occupancy counts valid entries.
func (w *WMT) Occupancy() int {
	n := 0
	for _, e := range w.entries {
		if e.valid() {
			n++
		}
	}
	return n
}

// EntryBits is the per-entry storage cost: alias bits + home way bits +
// valid bit. For the paper's 8-way 8 MB LLC / 16-way 16 MB buffer this
// is 1 alias + 3(+1) way bits ≈ 4 bits (§IV-D).
func (w *WMT) EntryBits(homeWayBits int) int {
	return w.aliasBits + homeWayBits + 1
}

// SizeBits returns total WMT storage for the area model.
func (w *WMT) SizeBits(homeWayBits int) int {
	return w.sets * w.ways * w.EntryBits(homeWayBits)
}
