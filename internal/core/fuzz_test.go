package core

import (
	"errors"
	"sync"
	"testing"

	"cable/internal/cache"
	"cable/internal/compress"
)

// FuzzUnmarshalPayload feeds arbitrary wire bits to the payload parser:
// it must either parse or error, never panic, and parsed payloads must
// re-marshal to an equivalent wire image.
func FuzzUnmarshalPayload(f *testing.F) {
	f.Add([]byte{0x00}, 8)
	f.Add([]byte{0xC0, 0x01, 0x02, 0x03}, 32)
	f.Fuzz(func(t *testing.T, data []byte, nbits int) {
		if nbits < 0 || nbits > len(data)*8 {
			return
		}
		enc := compress.Encoded{Data: data, NBits: nbits}
		p, err := UnmarshalPayload(enc, 9, 3, 64)
		if err != nil {
			return
		}
		re := p.Marshal(9, 3)
		if re.NBits != p.Bits(12) {
			t.Fatalf("re-marshal %d bits, Bits() %d", re.NBits, p.Bits(12))
		}
	})
}

// fuzzRemote builds one small remote end whose decode path the fault
// fuzzer drives. Built once per fuzz worker process; the fuzz engine
// runs the body sequentially, matching the end's single-simulation
// concurrency contract.
var fuzzRemote = sync.OnceValues(func() (*RemoteEnd, *cache.Cache) {
	llc := cache.New(cache.Config{Name: "fuzzllc", SizeBytes: 16 << 10, Ways: 4, LineSize: 64})
	re, err := NewRemoteEnd(DefaultConfig(), llc)
	if err != nil {
		panic(err)
	}
	// Populate a few shared lines so some fuzzed references resolve.
	for i := 0; i < 32; i++ {
		line := make([]byte, 64)
		for j := range line {
			line[j] = byte(i * j)
		}
		addr := uint64(i * 64)
		idx := llc.IndexOf(addr)
		way := llc.VictimWay(idx)
		llc.InsertAt(addr, line, cache.Shared, way)
	}
	return re, llc
})

// fuzzSeedImages marshals real payloads — a raw line and genuine
// write-back encodings — as the guarded-image seed corpus.
func fuzzSeedImages() []compress.Encoded {
	re, _ := fuzzRemote()
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(i*7 + 3)
	}
	seeds := []compress.Encoded{
		Payload{Raw: line}.MarshalGuarded(9, 3),
	}
	p := re.EncodeWriteback(line).Clone()
	seeds = append(seeds, p.MarshalGuarded(9, 3))
	return seeds
}

// FuzzPayloadDecodeFaults models the full receive path under arbitrary
// wire corruption: a guarded image is bit-flipped and/or truncated,
// then unmarshaled and — if the guard passes — decoded against a live
// remote end. The contract under fuzz: never panic, and every failure
// is classified under the decode-error taxonomy so drivers can degrade
// gracefully.
func FuzzPayloadDecodeFaults(f *testing.F) {
	for _, s := range fuzzSeedImages() {
		f.Add(s.Data, s.NBits, uint16(0), uint16(s.NBits))
	}
	f.Fuzz(func(t *testing.T, data []byte, nbits int, flipPos, trunc uint16) {
		if nbits < 0 || nbits > len(data)*8 {
			return
		}
		img := append([]byte(nil), data...)
		if nbits > 0 {
			pos := int(flipPos) % nbits
			img[pos/8] ^= 0x80 >> uint(pos%8)
			nbits = int(trunc) % (nbits + 1)
		}
		q, err := UnmarshalPayloadGuarded(compress.Encoded{Data: img, NBits: nbits}, 9, 3, 64)
		if err != nil {
			if !errors.Is(err, ErrCRCMismatch) && !errors.Is(err, ErrTruncatedPayload) {
				t.Fatalf("unmarshal error outside the taxonomy: %v", err)
			}
			return
		}
		re, _ := fuzzRemote()
		if _, err := re.DecodeFill(q); err != nil {
			if !errors.Is(err, ErrTruncatedPayload) && !errors.Is(err, ErrBadReference) && !errors.Is(err, ErrCorruptDiff) {
				t.Fatalf("decode error outside the taxonomy: %v", err)
			}
		}
	})
}
