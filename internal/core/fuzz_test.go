package core

import (
	"testing"

	"cable/internal/compress"
)

// FuzzUnmarshalPayload feeds arbitrary wire bits to the payload parser:
// it must either parse or error, never panic, and parsed payloads must
// re-marshal to an equivalent wire image.
func FuzzUnmarshalPayload(f *testing.F) {
	f.Add([]byte{0x00}, 8)
	f.Add([]byte{0xC0, 0x01, 0x02, 0x03}, 32)
	f.Fuzz(func(t *testing.T, data []byte, nbits int) {
		if nbits < 0 || nbits > len(data)*8 {
			return
		}
		enc := compress.Encoded{Data: data, NBits: nbits}
		p, err := UnmarshalPayload(enc, 9, 3, 64)
		if err != nil {
			return
		}
		re := p.Marshal(9, 3)
		if re.NBits != p.Bits(12) {
			t.Fatalf("re-marshal %d bits, Bits() %d", re.NBits, p.Bits(12))
		}
	})
}
