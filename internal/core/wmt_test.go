package core

import (
	"testing"

	"cable/internal/cache"
)

func wmtPair(t testing.TB) (*cache.Cache, *cache.Cache, *WMT) {
	t.Helper()
	home := cache.New(cache.Config{Name: "home", SizeBytes: 64 << 10, Ways: 16, LineSize: 64})
	remote := cache.New(cache.Config{Name: "remote", SizeBytes: 16 << 10, Ways: 8, LineSize: 64})
	return home, remote, NewWMT(home, remote)
}

func TestWMTSetLookupClear(t *testing.T) {
	_, _, w := wmtPair(t)
	homeID := cache.LineID{Index: 37, Way: 5}
	remoteID := cache.LineID{Index: 37 & 31, Way: 2}
	if _, ok := w.Lookup(homeID); ok {
		t.Fatal("lookup hit in empty WMT")
	}
	w.Set(remoteID, homeID)
	got, ok := w.Lookup(homeID)
	if !ok || got != remoteID {
		t.Fatalf("Lookup = %v,%v want %v,true", got, ok, remoteID)
	}
	back, ok := w.Reverse(remoteID)
	if !ok || back != homeID {
		t.Fatalf("Reverse = %v,%v want %v,true", back, ok, homeID)
	}
	cleared, ok := w.Clear(remoteID)
	if !ok || cleared != homeID {
		t.Fatalf("Clear = %v,%v", cleared, ok)
	}
	if _, ok := w.Lookup(homeID); ok {
		t.Fatal("lookup hit after clear")
	}
}

func TestWMTSetReportsDisplacement(t *testing.T) {
	_, _, w := wmtPair(t)
	slot := cache.LineID{Index: 3, Way: 1}
	first := cache.LineID{Index: 3, Way: 0}
	second := cache.LineID{Index: 32 + 3, Way: 7} // alias 1
	w.Set(slot, first)
	displaced, was := w.Set(slot, second)
	if !was || displaced != first {
		t.Fatalf("displacement = %v,%v want %v,true", displaced, was, first)
	}
	got, ok := w.Reverse(slot)
	if !ok || got != second {
		t.Fatalf("slot now maps to %v", got)
	}
}

func TestWMTAliasDistinguishesHomeSets(t *testing.T) {
	// Two home lines whose indices differ only in alias bits land in
	// the same remote set; the WMT must tell them apart.
	_, _, w := wmtPair(t)
	a := cache.LineID{Index: 5, Way: 0}      // alias 0
	b := cache.LineID{Index: 32 + 5, Way: 0} // alias 1
	w.Set(cache.LineID{Index: 5, Way: 0}, a)
	w.Set(cache.LineID{Index: 5, Way: 1}, b)
	ra, ok := w.Lookup(a)
	if !ok || ra.Way != 0 {
		t.Fatalf("a → %v,%v", ra, ok)
	}
	rb, ok := w.Lookup(b)
	if !ok || rb.Way != 1 {
		t.Fatalf("b → %v,%v", rb, ok)
	}
}

func TestWMTClearHome(t *testing.T) {
	_, _, w := wmtPair(t)
	homeID := cache.LineID{Index: 9, Way: 3}
	slot := cache.LineID{Index: 9, Way: 6}
	w.Set(slot, homeID)
	rid, ok := w.ClearHome(homeID)
	if !ok || rid != slot {
		t.Fatalf("ClearHome = %v,%v", rid, ok)
	}
	if w.Occupancy() != 0 {
		t.Fatal("entry survived ClearHome")
	}
	if _, ok := w.ClearHome(homeID); ok {
		t.Fatal("second ClearHome should miss")
	}
}

func TestWMTSetPanicsOnIndexMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched remote set")
		}
	}()
	_, _, w := wmtPair(t)
	// home index 5 maps to remote set 5, not 6.
	w.Set(cache.LineID{Index: 6, Way: 0}, cache.LineID{Index: 5, Way: 0})
}

func TestWMTReverseBounds(t *testing.T) {
	_, _, w := wmtPair(t)
	ids := []cache.LineID{
		{Index: -1, Way: 0}, {Index: 0, Way: -1},
		{Index: 1 << 20, Way: 0}, {Index: 0, Way: 99},
	}
	for _, id := range ids {
		if _, ok := w.Reverse(id); ok {
			t.Fatalf("Reverse(%v) should miss", id)
		}
		if _, ok := w.Clear(id); ok {
			t.Fatalf("Clear(%v) should miss", id)
		}
	}
}

func TestWMTForEach(t *testing.T) {
	_, _, w := wmtPair(t)
	homeID := cache.LineID{Index: 32 + 7, Way: 2}
	slot := cache.LineID{Index: 7, Way: 4}
	w.Set(slot, homeID)
	n := 0
	w.ForEach(func(rid, hid cache.LineID) {
		n++
		if rid != slot || hid != homeID {
			t.Fatalf("ForEach gave %v→%v", rid, hid)
		}
	})
	if n != 1 {
		t.Fatalf("visited %d entries", n)
	}
}

func TestWMTEntryBitsPaperGeometry(t *testing.T) {
	// §IV-D: 8-way 8MB LLC remote, 16MB buffer home → WMT overhead
	// ~0.4% of the home data cache.
	home := cache.New(cache.Config{Name: "l4", SizeBytes: 16 << 20, Ways: 8, LineSize: 64})
	remote := cache.New(cache.Config{Name: "llc", SizeBytes: 8 << 20, Ways: 8, LineSize: 64})
	w := NewWMT(home, remote)
	frac := float64(w.SizeBits(home.WayBits())) / float64(16<<20*8)
	if frac < 0.002 || frac > 0.006 {
		t.Fatalf("WMT overhead %.4f, want ≈0.004 (paper: 0.4%%)", frac)
	}
	// alias(1) + way(3) + valid(1) = 5 bits with this geometry; the
	// paper quotes 4 (1 alias + 3 way) excluding the valid bit.
	if got := w.EntryBits(home.WayBits()) - 1; got != 4 {
		t.Fatalf("entry payload bits = %d, want 4", got)
	}
}

func TestNewWMTPanicsWhenHomeSmaller(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: home smaller than remote")
		}
	}()
	home := cache.New(cache.Config{Name: "h", SizeBytes: 8 << 10, Ways: 8, LineSize: 64})
	remote := cache.New(cache.Config{Name: "r", SizeBytes: 64 << 10, Ways: 8, LineSize: 64})
	NewWMT(home, remote)
}
