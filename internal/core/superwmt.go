package core

import (
	"fmt"

	"cable/internal/cache"
)

// WayMap abstracts the way-map table so several links can share one
// pooled structure. The per-link WMT is the baseline implementation;
// SuperWMT provides the §IV-D extension for large systems: "WMT
// information can be pooled into a single, competitively shared
// super-WMT managed like a cache to decrease storage overheads".
type WayMap interface {
	// Lookup translates a HomeLID to a RemoteLID, proving residency.
	Lookup(homeID cache.LineID) (cache.LineID, bool)
	// Reverse translates a RemoteLID back to the tracked HomeLID.
	Reverse(remoteID cache.LineID) (cache.LineID, bool)
	// Set records residency, returning any displaced HomeLID.
	Set(remoteID, homeID cache.LineID) (cache.LineID, bool)
	// Clear invalidates a remote slot.
	Clear(remoteID cache.LineID) (cache.LineID, bool)
	// ClearHome invalidates by home line.
	ClearHome(homeID cache.LineID) (cache.LineID, bool)
	// ForEach visits valid entries.
	ForEach(fn func(remoteID, homeID cache.LineID))
	// Occupancy counts valid entries.
	Occupancy() int
}

var (
	_ WayMap = (*WMT)(nil)
	_ WayMap = (*superView)(nil)
)

// SuperWMT is a capacity-bounded, set-associative pool of way-map
// entries shared by every link of a chip. Unlike the per-link WMT —
// which mirrors the remote cache exactly and never misses for tracked
// lines — the super-WMT is managed like a cache: under contention it
// evicts entries (LRU), after which the affected line simply stops
// serving as a reference. Fill compression degrades gracefully;
// write-back compression must be disabled (the remote side cannot
// observe pool evictions), mirroring the §IV-C fallback.
type SuperWMT struct {
	sets      int
	ways      int
	remoteIdx int // remote index bits
	entries   [][]superEntry
	tick      uint64

	// Stats
	Hits, Misses, Evictions uint64
}

type superEntry struct {
	peer      int
	rIdx, rWy int
	alias     uint64
	homeWay   int
	lru       uint64
	valid     bool
}

// NewSuperWMT builds a pool with roughly capacity entries organized
// ways-wide. home/remote provide the geometry shared by all peers.
func NewSuperWMT(capacity, ways int, home, remote *cache.Cache) *SuperWMT {
	if home.IndexBits() < remote.IndexBits() {
		panic(fmt.Sprintf("core: home cache %q smaller than remote %q",
			home.Config().Name, remote.Config().Name))
	}
	if ways < 1 {
		panic(fmt.Sprintf("core: super-WMT needs ≥1 way, got %d", ways))
	}
	if capacity < ways {
		capacity = ways
	}
	sets := 1
	for sets*ways < capacity {
		sets <<= 1
	}
	s := &SuperWMT{
		sets:      sets,
		ways:      ways,
		remoteIdx: remote.IndexBits(),
	}
	s.entries = make([][]superEntry, sets)
	for i := range s.entries {
		s.entries[i] = make([]superEntry, ways)
	}
	return s
}

// Capacity returns the pool's entry capacity.
func (s *SuperWMT) Capacity() int { return s.sets * s.ways }

func (s *SuperWMT) setIndex(peer, rIdx int) int {
	x := uint64(peer)<<32 | uint64(uint32(rIdx))
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return int(x) & (s.sets - 1)
}

// View returns the per-link WayMap facade for one peer.
func (s *SuperWMT) View(peer int) WayMap { return &superView{pool: s, peer: peer} }

type superView struct {
	pool *SuperWMT
	peer int
}

func (v *superView) split(homeID cache.LineID) (rIdx int, alias uint64) {
	mask := 1<<uint(v.pool.remoteIdx) - 1
	return homeID.Index & mask, uint64(homeID.Index) >> uint(v.pool.remoteIdx)
}

func (v *superView) homeLID(e *superEntry) cache.LineID {
	return cache.LineID{Index: int(e.alias)<<uint(v.pool.remoteIdx) | e.rIdx, Way: e.homeWay}
}

// Lookup implements WayMap.
func (v *superView) Lookup(homeID cache.LineID) (cache.LineID, bool) {
	p := v.pool
	rIdx, alias := v.split(homeID)
	set := p.entries[p.setIndex(v.peer, rIdx)]
	for i := range set {
		e := &set[i]
		if e.valid && e.peer == v.peer && e.rIdx == rIdx && e.alias == alias && e.homeWay == homeID.Way {
			p.Hits++
			p.tick++
			e.lru = p.tick
			return cache.LineID{Index: e.rIdx, Way: e.rWy}, true
		}
	}
	p.Misses++
	return cache.LineID{}, false
}

// Reverse implements WayMap.
func (v *superView) Reverse(remoteID cache.LineID) (cache.LineID, bool) {
	p := v.pool
	set := p.entries[p.setIndex(v.peer, remoteID.Index)]
	for i := range set {
		e := &set[i]
		if e.valid && e.peer == v.peer && e.rIdx == remoteID.Index && e.rWy == remoteID.Way {
			return v.homeLID(e), true
		}
	}
	return cache.LineID{}, false
}

// Set implements WayMap. An existing entry for the same remote slot is
// overwritten (its previous HomeLID returned as displaced); otherwise
// the LRU entry of the set is evicted if needed.
func (v *superView) Set(remoteID, homeID cache.LineID) (cache.LineID, bool) {
	p := v.pool
	rIdx, alias := v.split(homeID)
	if rIdx != remoteID.Index {
		panic(fmt.Sprintf("core: super-WMT set index mismatch: home %v vs slot %v", homeID, remoteID))
	}
	set := p.entries[p.setIndex(v.peer, remoteID.Index)]
	var victim *superEntry
	var oldest uint64 = ^uint64(0)
	for i := range set {
		e := &set[i]
		if e.valid && e.peer == v.peer && e.rIdx == remoteID.Index && e.rWy == remoteID.Way {
			displaced := v.homeLID(e)
			p.tick++
			*e = superEntry{peer: v.peer, rIdx: remoteID.Index, rWy: remoteID.Way,
				alias: alias, homeWay: homeID.Way, lru: p.tick, valid: true}
			return displaced, true
		}
		if !e.valid {
			victim = e
			oldest = 0
		} else if e.lru < oldest {
			victim, oldest = e, e.lru
		}
	}
	if victim.valid {
		p.Evictions++
	}
	p.tick++
	*victim = superEntry{peer: v.peer, rIdx: remoteID.Index, rWy: remoteID.Way,
		alias: alias, homeWay: homeID.Way, lru: p.tick, valid: true}
	return cache.LineID{}, false
}

// Clear implements WayMap.
func (v *superView) Clear(remoteID cache.LineID) (cache.LineID, bool) {
	p := v.pool
	set := p.entries[p.setIndex(v.peer, remoteID.Index)]
	for i := range set {
		e := &set[i]
		if e.valid && e.peer == v.peer && e.rIdx == remoteID.Index && e.rWy == remoteID.Way {
			homeID := v.homeLID(e)
			*e = superEntry{}
			return homeID, true
		}
	}
	return cache.LineID{}, false
}

// ClearHome implements WayMap.
func (v *superView) ClearHome(homeID cache.LineID) (cache.LineID, bool) {
	p := v.pool
	rIdx, alias := v.split(homeID)
	set := p.entries[p.setIndex(v.peer, rIdx)]
	for i := range set {
		e := &set[i]
		if e.valid && e.peer == v.peer && e.rIdx == rIdx && e.alias == alias && e.homeWay == homeID.Way {
			rid := cache.LineID{Index: e.rIdx, Way: e.rWy}
			*e = superEntry{}
			return rid, true
		}
	}
	return cache.LineID{}, false
}

// ForEach implements WayMap (this peer's entries only).
func (v *superView) ForEach(fn func(remoteID, homeID cache.LineID)) {
	for _, set := range v.pool.entries {
		for i := range set {
			e := &set[i]
			if e.valid && e.peer == v.peer {
				fn(cache.LineID{Index: e.rIdx, Way: e.rWy}, v.homeLID(e))
			}
		}
	}
}

// Occupancy implements WayMap (this peer's entries only).
func (v *superView) Occupancy() int {
	n := 0
	v.ForEach(func(cache.LineID, cache.LineID) { n++ })
	return n
}
