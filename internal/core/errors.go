package core

import "errors"

// Decode-path error taxonomy. Every anomaly a corrupted or truncated
// wire image can produce surfaces as (a wrapped form of) one of these
// sentinels, so protocol drivers can classify failures with errors.Is
// and degrade gracefully — count the error, fall back to a raw
// transfer — instead of crashing. CRAM and Touché treat integrity
// metadata and safe fallback as first-class parts of a compressed
// memory design; these errors are the contract that makes that
// possible here.
var (
	// ErrTruncatedPayload marks a wire image that ends before the
	// payload it claims to carry (truncation faults, short frames).
	ErrTruncatedPayload = errors.New("truncated payload")
	// ErrBadReference marks a payload whose reference pointers do not
	// resolve to live lines (empty slot, untracked WMT entry, or
	// geometry out of range) — the receiver cannot rebuild the DIFF
	// dictionary.
	ErrBadReference = errors.New("bad reference")
	// ErrCorruptDiff marks a DIFF body that fails to decode to exactly
	// one cache line (bad opcode stream, dictionary overrun, wrong
	// decoded length).
	ErrCorruptDiff = errors.New("corrupt diff")
	// ErrCRCMismatch marks a guarded payload whose trailing CRC does
	// not match the received image (bit flips on the wire).
	ErrCRCMismatch = errors.New("payload CRC mismatch")
)

// crcBits is the width of the optional payload guard (CRC-8/ATM,
// polynomial x^8+x^2+x+1). 8 bits on a ~100-bit mean payload is cheap
// and catches all single-burst errors ≤ 8 bits plus 255/256 of longer
// corruption; the simulators back it with a ground-truth check, as a
// production link would back it with a retry protocol.
const crcBits = 8

// crc8Table is the byte-wise table for polynomial 0x07 (MSB-first).
var crc8Table = func() (t [256]byte) {
	for i := range t {
		crc := byte(i)
		for b := 0; b < 8; b++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return
}()

// crc8Image computes the guard CRC over the first nbits of a marshaled
// payload image. Bits past nbits in the final byte are masked out (the
// writer zero-pads, but a received image may carry CRC bits there), and
// the bit length itself is folded in so a truncation to a byte-aligned
// prefix cannot alias a shorter valid image.
func crc8Image(data []byte, nbits int) byte {
	nbytes := (nbits + 7) / 8
	var crc byte
	for i := 0; i < nbytes; i++ {
		b := data[i]
		if i == nbytes-1 && nbits%8 != 0 {
			b &= 0xFF << uint(8-nbits%8)
		}
		crc = crc8Table[crc^b]
	}
	crc = crc8Table[crc^byte(nbits)]
	crc = crc8Table[crc^byte(nbits>>8)]
	return crc
}
