package core

import (
	"math/rand"
	"testing"

	"cable/internal/cache"
)

func superPool(t testing.TB, capacity int) (*SuperWMT, *cache.Cache, *cache.Cache) {
	t.Helper()
	home := cache.New(cache.Config{Name: "home", SizeBytes: 64 << 10, Ways: 16, LineSize: 64})
	remote := cache.New(cache.Config{Name: "remote", SizeBytes: 16 << 10, Ways: 8, LineSize: 64})
	return NewSuperWMT(capacity, 4, home, remote), home, remote
}

func TestSuperWMTBasicsPerPeer(t *testing.T) {
	pool, _, _ := superPool(t, 1024)
	v1, v2 := pool.View(1), pool.View(2)
	homeID := cache.LineID{Index: 37, Way: 5}
	slot := cache.LineID{Index: 37 & 31, Way: 2}
	v1.Set(slot, homeID)

	got, ok := v1.Lookup(homeID)
	if !ok || got != slot {
		t.Fatalf("peer1 lookup = %v,%v", got, ok)
	}
	if _, ok := v2.Lookup(homeID); ok {
		t.Fatal("peer2 sees peer1's entry")
	}
	back, ok := v1.Reverse(slot)
	if !ok || back != homeID {
		t.Fatalf("reverse = %v,%v", back, ok)
	}
	if _, ok := v2.Reverse(slot); ok {
		t.Fatal("peer2 reverse hit")
	}
	if v1.Occupancy() != 1 || v2.Occupancy() != 0 {
		t.Fatalf("occupancy %d/%d", v1.Occupancy(), v2.Occupancy())
	}
	cleared, ok := v1.Clear(slot)
	if !ok || cleared != homeID {
		t.Fatalf("clear = %v,%v", cleared, ok)
	}
	if v1.Occupancy() != 0 {
		t.Fatal("entry survived clear")
	}
}

func TestSuperWMTSameSlotOverwrite(t *testing.T) {
	pool, _, _ := superPool(t, 1024)
	v := pool.View(1)
	slot := cache.LineID{Index: 3, Way: 1}
	first := cache.LineID{Index: 3, Way: 0}
	second := cache.LineID{Index: 32 + 3, Way: 7}
	v.Set(slot, first)
	displaced, was := v.Set(slot, second)
	if !was || displaced != first {
		t.Fatalf("displacement = %v,%v", displaced, was)
	}
	if got, _ := v.Reverse(slot); got != second {
		t.Fatalf("slot holds %v", got)
	}
}

func TestSuperWMTClearHome(t *testing.T) {
	pool, _, _ := superPool(t, 1024)
	v := pool.View(2)
	homeID := cache.LineID{Index: 9, Way: 3}
	slot := cache.LineID{Index: 9, Way: 6}
	v.Set(slot, homeID)
	rid, ok := v.ClearHome(homeID)
	if !ok || rid != slot {
		t.Fatalf("ClearHome = %v,%v", rid, ok)
	}
	if _, ok := v.ClearHome(homeID); ok {
		t.Fatal("second ClearHome should miss")
	}
}

func TestSuperWMTCapacityEviction(t *testing.T) {
	// A tiny pool under load must evict (LRU) and never exceed
	// capacity — that is the point of the extension.
	pool, _, remote := superPool(t, 64)
	v := pool.View(1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		idx := rng.Intn(remote.NumSets())
		way := rng.Intn(remote.Config().Ways)
		alias := rng.Intn(2)
		homeID := cache.LineID{Index: alias<<5 | idx, Way: rng.Intn(16)}
		v.Set(cache.LineID{Index: idx, Way: way}, homeID)
	}
	if pool.Evictions == 0 {
		t.Fatal("no pool evictions under heavy load")
	}
	if occ := v.Occupancy(); occ > pool.Capacity() {
		t.Fatalf("occupancy %d exceeds capacity %d", occ, pool.Capacity())
	}
}

func TestSuperWMTForEach(t *testing.T) {
	pool, _, _ := superPool(t, 1024)
	v1, v2 := pool.View(1), pool.View(2)
	v1.Set(cache.LineID{Index: 1, Way: 0}, cache.LineID{Index: 1, Way: 0})
	v1.Set(cache.LineID{Index: 2, Way: 0}, cache.LineID{Index: 2, Way: 0})
	v2.Set(cache.LineID{Index: 3, Way: 0}, cache.LineID{Index: 3, Way: 0})
	n := 0
	v1.ForEach(func(rid, hid cache.LineID) { n++ })
	if n != 2 {
		t.Fatalf("peer1 ForEach saw %d entries, want 2", n)
	}
}

func TestSuperWMTSetPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pool, _, _ := superPool(t, 64)
	pool.View(1).Set(cache.LineID{Index: 6, Way: 0}, cache.LineID{Index: 5, Way: 0})
}

// TestHomeEndWithSuperWMT runs the full link protocol with a pooled
// way-map small enough to thrash: correctness must hold (every payload
// decodes exactly) even as pool evictions silently drop reference
// tracking.
func TestHomeEndWithSuperWMT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WritebackCompression = false // pool evictions are invisible remotely
	home := cache.New(cache.Config{Name: "l4", SizeBytes: 64 << 10, Ways: 16, LineSize: 64})
	remote := cache.New(cache.Config{Name: "llc", SizeBytes: 16 << 10, Ways: 8, LineSize: 64})
	pool := NewSuperWMT(32, 4, home, remote) // tiny: constant eviction
	he, err := NewHomeEndWithWayMap(cfg, home, remote, pool.View(0))
	if err != nil {
		t.Fatal(err)
	}
	re, err := NewRemoteEnd(cfg, remote)
	if err != nil {
		t.Fatal(err)
	}
	h := &linkHarness{
		t: t, lineSize: 64, rng: rand.New(rand.NewSource(7)),
		home: home, remote: remote, he: he, re: re,
		backing: make(map[uint64][]byte),
	}
	for i := 0; i < 6; i++ {
		p := make([]byte, 64)
		h.rng.Read(p)
		h.protos = append(h.protos, p)
	}
	for i := 0; i < 3000; i++ {
		h.request(uint64(h.rng.Intn(1024)), h.rng.Intn(4) == 0)
	}
	if pool.Evictions == 0 {
		t.Fatal("pool never evicted — not exercising the extension")
	}
	if h.fills < 500 {
		t.Fatalf("only %d fills", h.fills)
	}
	// With a thrashing pool fewer references are available, but the
	// protocol must still produce some DIFFs and stay exact.
	t.Logf("super-WMT: %d fills, %d diff wins, %d pool evictions",
		h.fills, h.he.Stats.DiffWins, pool.Evictions)
}
