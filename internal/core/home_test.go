package core

import (
	"encoding/binary"
	"testing"

	"cable/internal/cache"
)

// fig7Harness builds a home/remote pair with specific resident lines.
func fig7Harness(t *testing.T) (*HomeEnd, *RemoteEnd, *cache.Cache, *cache.Cache) {
	t.Helper()
	home := cache.New(cache.Config{Name: "home", SizeBytes: 64 << 10, Ways: 16, LineSize: 64})
	remote := cache.New(cache.Config{Name: "remote", SizeBytes: 16 << 10, Ways: 8, LineSize: 64})
	he, err := NewHomeEnd(DefaultConfig(), home, remote)
	if err != nil {
		t.Fatal(err)
	}
	re, err := NewRemoteEnd(DefaultConfig(), remote)
	if err != nil {
		t.Fatal(err)
	}
	return he, re, home, remote
}

// install pushes a line through the fill path so all structures sync.
func install(t *testing.T, he *HomeEnd, re *RemoteEnd, home, remote *cache.Cache, addr uint64, data []byte) {
	t.Helper()
	home.Insert(addr, data, cache.Shared)
	idx := remote.IndexOf(addr)
	way := remote.VictimWay(idx)
	p, _, err := he.EncodeFill(addr, cache.Shared, way)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.DecodeFill(p)
	if err != nil {
		t.Fatal(err)
	}
	remote.InsertAt(addr, got, cache.Shared, way)
	re.OnFillInstalled(cache.LineID{Index: idx, Way: way}, got, cache.Shared)
}

// TestFig7HashCollisionFiltered reproduces the Fig 7 scenario: two
// dissimilar lines whose signatures collide into one hash bucket. The
// CBV ranking must reject the false positive — the dissimilar line
// never becomes a reference.
func TestFig7HashCollisionFiltered(t *testing.T) {
	he, re, home, remote := fig7Harness(t)

	// A line of distinctive content, installed and hash-indexed.
	ref := make([]byte, 64)
	for i := range ref {
		ref[i] = byte(i*41 + 3)
	}
	install(t, he, re, home, remote, 0x100, ref)

	// Force a colliding hash-table entry: insert a bogus LineID under
	// the same signatures the requested line will search for. The
	// bogus slot holds totally dissimilar content.
	junk := make([]byte, 64)
	for i := range junk {
		junk[i] = byte(255 - i)
	}
	install(t, he, re, home, remote, 0x222, junk)
	req := append([]byte(nil), ref...)
	binary.LittleEndian.PutUint32(req[8:], 0xFEED0001)
	junkLine, junkID, _ := home.Probe(0x222)
	for _, s := range he.ex.SearchSignatures(req, 16) {
		he.ht.Insert(s, junkID) // artificial collisions (Fig 7)
	}
	_ = junkLine

	home.Insert(0x300, req, cache.Shared)
	way := remote.VictimWay(remote.IndexOf(0x300))
	p, _, err := he.EncodeFill(0x300, cache.Shared, way)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Compressed || len(p.Refs) == 0 {
		t.Fatalf("near-copy should compress with references: %+v", p)
	}
	// Every chosen reference must be the similar line, never the
	// colliding junk line.
	junkRemote, ok := he.wmt.Lookup(junkID)
	if !ok {
		t.Fatal("junk line should be remote-resident (it was installed)")
	}
	for _, rid := range p.Refs {
		if rid == junkRemote {
			t.Fatal("hash-collision false positive survived CBV ranking")
		}
	}
	got, err := re.DecodeFill(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != req[i] {
			t.Fatal("decode mismatch")
		}
	}
}

// TestEncodeStatsConsistency checks the bookkeeping identities the
// reports depend on.
func TestEncodeStatsConsistency(t *testing.T) {
	cfg := DefaultConfig()
	h := newLinkHarness(t, cfg, 64, 16)
	for i := 0; i < 2000; i++ {
		h.request(uint64(h.rng.Intn(1024)), h.rng.Intn(4) == 0)
	}
	st := h.he.Stats
	if st.Fills != st.RawWins+st.StandaloneWins+st.DiffWins {
		t.Fatalf("fills %d ≠ raw %d + standalone %d + diff %d",
			st.Fills, st.RawWins, st.StandaloneWins, st.DiffWins)
	}
	var refSum uint64
	for _, n := range st.RefsUsed {
		refSum += n
	}
	if refSum != st.StandaloneWins+st.DiffWins {
		t.Fatalf("refs histogram %d ≠ compressed payloads %d", refSum, st.StandaloneWins+st.DiffWins)
	}
	if st.RefsUsed[0] != st.StandaloneWins {
		t.Fatalf("zero-ref payloads %d ≠ standalone wins %d", st.RefsUsed[0], st.StandaloneWins)
	}
	if st.SourceBits != st.Fills*512 {
		t.Fatalf("source bits %d ≠ fills × 512", st.SourceBits)
	}
	if st.PayloadBits >= st.SourceBits {
		t.Fatal("payloads did not compress overall")
	}
}

// TestWritebackRefsAlwaysResolvable: every reference a write-back
// carries must translate through the home WMT — the §III-G correctness
// condition — across heavy random traffic.
func TestWritebackRefsAlwaysResolvable(t *testing.T) {
	cfg := DefaultConfig()
	h := newLinkHarness(t, cfg, 64, 16)
	for i := 0; i < 5000; i++ {
		h.request(uint64(h.rng.Intn(1024)), h.rng.Intn(2) == 0) // write-heavy
	}
	if h.re.Stats.WBDiffWins == 0 {
		t.Fatal("no reference-carrying write-backs exercised")
	}
	// The harness already hard-fails on DecodeWriteback errors; reaching
	// here with WBDiffWins > 0 is the assertion.
}
