package core

import (
	"encoding/binary"
	"math/bits"

	"cable/internal/cache"
	"cable/internal/sig"
)

// candidate is one reference candidate surviving the hash-table probe
// and WMT residency check.
type candidate struct {
	homeID   cache.LineID
	remoteID cache.LineID
	data     []byte
	cbv      uint32 // coverage bit vector: bit i = word i matches exactly
	dups     int    // how many signatures mapped to this line (pre-rank key)
}

// CoverageVector computes the CBV (§III-C): bit i set iff 32-bit word i
// of ref equals word i of data. For 64-byte lines this is the paper's
// 16-bit vector.
func CoverageVector(data, ref []byte) uint32 {
	var cbv uint32
	n := len(data) / sig.WordSize
	i := 0
	// Two words per 64-bit XOR: a zero 32-bit lane is an exact word
	// match. Lane order matches the scalar form because little-endian
	// loads place word i in the low half and word i+1 in the high half.
	for ; i+2 <= n; i += 2 {
		x := binary.LittleEndian.Uint64(data[i*sig.WordSize:]) ^
			binary.LittleEndian.Uint64(ref[i*sig.WordSize:])
		if x&0xFFFFFFFF == 0 {
			cbv |= 1 << uint(i)
		}
		if x>>32 == 0 {
			cbv |= 1 << uint(i+1)
		}
	}
	if i < n && sig.Word(data, i*sig.WordSize) == sig.Word(ref, i*sig.WordSize) {
		cbv |= 1 << uint(i)
	}
	return cbv
}

// preRank orders candidates by duplication count (§III-C: LineIDs that
// several signatures map to are more likely similar) and truncates to
// accessCount — the number of data-array reads the search step spends.
// A hand-rolled stable insertion sort keeps the hot path allocation-
// free (sort.SliceStable boxes its closure); candidate lists are tiny
// (≤ MaxSearchSigs × BucketDepth entries).
func preRank(cands []candidate, accessCount int) []candidate {
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		j := i - 1
		for j >= 0 && cands[j].dups < c.dups {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = c
	}
	if len(cands) > accessCount {
		cands = cands[:accessCount]
	}
	return cands
}

// maxRefBound caps the reference-set enumeration depth. The payload's
// 2-bit refcount field bounds Config.MaxRefs to 3 (Validate enforces
// it), so fixed arrays of this size make the picker allocation-free.
const maxRefBound = 3

// refPicker is the reusable scratch of the reference-selection step.
// Zero value is ready; one picker belongs to one link end.
type refPicker struct {
	best    [maxRefBound]int
	bestLen int
	chosen  [maxRefBound]int
}

// selectRefs picks the subset of at most maxRefs candidates maximizing
// combined CBV coverage, mirroring the paper's swap-capable greedy
// (its worked example drops an already-chosen line for a better pair).
// With at most six candidates exact enumeration is cheap and exactly
// "maximize coverage". Ties prefer fewer references (each costs a
// RemoteLID on the wire), then higher duplication counts. Candidates
// contributing no additional coverage are dropped.
func selectRefs(cands []candidate, maxRefs int) []candidate {
	var pk refPicker
	return pk.pick(cands, maxRefs, nil)
}

// pick appends the selected references to out and returns it; with a
// reused out buffer the whole selection is allocation-free.
func (pk *refPicker) pick(cands []candidate, maxRefs int, out []candidate) []candidate {
	if maxRefs <= 0 || len(cands) == 0 {
		return out[:0]
	}
	if maxRefs > maxRefBound {
		maxRefs = maxRefBound
	}
	bestCover, bestDups := -1, -1
	pk.bestLen = 0
	bestSize := 0
	// walk enumerates index subsets in lexicographic order (identical
	// to the recursive formulation, so tie-breaking is unchanged).
	var walk func(start, depth int)
	walk = func(start, depth int) {
		if depth > 0 {
			var cbv uint32
			dups := 0
			for _, i := range pk.chosen[:depth] {
				cbv |= cands[i].cbv
				dups += cands[i].dups
			}
			cover := bits.OnesCount32(cbv)
			better := cover > bestCover ||
				(cover == bestCover && depth < bestSize) ||
				(cover == bestCover && depth == bestSize && dups > bestDups)
			if better {
				bestCover, bestSize, bestDups = cover, depth, dups
				pk.bestLen = copy(pk.best[:], pk.chosen[:depth])
			}
		}
		if depth == maxRefs {
			return
		}
		for i := start; i < len(cands); i++ {
			pk.chosen[depth] = i
			walk(i+1, depth+1)
		}
	}
	walk(0, 0)
	if bestCover <= 0 {
		return out[:0] // no candidate matches even one word
	}
	best := pk.best[:pk.bestLen]
	// Drop members that add nothing over the rest of the chosen set.
	out = out[:0]
	for k, i := range best {
		var others uint32
		for k2, j := range best {
			if k2 != k {
				others |= cands[j].cbv
			}
		}
		if cands[i].cbv&^others != 0 || len(best) == 1 {
			out = append(out, cands[i])
		}
	}
	if len(out) == 0 {
		out = append(out, cands[best[0]])
	}
	return out
}
