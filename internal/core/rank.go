package core

import (
	"math/bits"
	"sort"

	"cable/internal/cache"
	"cable/internal/sig"
)

// candidate is one reference candidate surviving the hash-table probe
// and WMT residency check.
type candidate struct {
	homeID   cache.LineID
	remoteID cache.LineID
	data     []byte
	cbv      uint32 // coverage bit vector: bit i = word i matches exactly
	dups     int    // how many signatures mapped to this line (pre-rank key)
}

// CoverageVector computes the CBV (§III-C): bit i set iff 32-bit word i
// of ref equals word i of data. For 64-byte lines this is the paper's
// 16-bit vector.
func CoverageVector(data, ref []byte) uint32 {
	var cbv uint32
	n := len(data) / sig.WordSize
	for i := 0; i < n; i++ {
		if sig.Word(data, i*sig.WordSize) == sig.Word(ref, i*sig.WordSize) {
			cbv |= 1 << uint(i)
		}
	}
	return cbv
}

// preRank orders candidates by duplication count (§III-C: LineIDs that
// several signatures map to are more likely similar) and truncates to
// accessCount — the number of data-array reads the search step spends.
func preRank(cands []candidate, accessCount int) []candidate {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].dups > cands[j].dups })
	if len(cands) > accessCount {
		cands = cands[:accessCount]
	}
	return cands
}

// selectRefs picks the subset of at most maxRefs candidates maximizing
// combined CBV coverage, mirroring the paper's swap-capable greedy
// (its worked example drops an already-chosen line for a better pair).
// With at most six candidates exact enumeration is cheap and exactly
// "maximize coverage". Ties prefer fewer references (each costs a
// RemoteLID on the wire), then higher duplication counts. Candidates
// contributing no additional coverage are dropped.
func selectRefs(cands []candidate, maxRefs int) []candidate {
	if maxRefs <= 0 || len(cands) == 0 {
		return nil
	}
	bestCover, bestSize, bestDups := -1, 0, -1
	var best []int
	n := len(cands)
	var walk func(start int, chosen []int)
	walk = func(start int, chosen []int) {
		if len(chosen) > 0 {
			var cbv uint32
			dups := 0
			for _, i := range chosen {
				cbv |= cands[i].cbv
				dups += cands[i].dups
			}
			cover := bits.OnesCount32(cbv)
			better := cover > bestCover ||
				(cover == bestCover && len(chosen) < bestSize) ||
				(cover == bestCover && len(chosen) == bestSize && dups > bestDups)
			if better {
				bestCover, bestSize, bestDups = cover, len(chosen), dups
				best = append(best[:0], chosen...)
			}
		}
		if len(chosen) == maxRefs {
			return
		}
		for i := start; i < n; i++ {
			walk(i+1, append(chosen, i))
		}
	}
	walk(0, nil)
	if bestCover <= 0 {
		return nil // no candidate matches even one word
	}
	// Drop members that add nothing over the rest of the chosen set.
	out := make([]candidate, 0, len(best))
	for k, i := range best {
		var others uint32
		for k2, j := range best {
			if k2 != k {
				others |= cands[j].cbv
			}
		}
		if cands[i].cbv&^others != 0 || len(best) == 1 {
			out = append(out, cands[i])
		}
	}
	if len(out) == 0 {
		out = append(out, cands[best[0]])
	}
	return out
}
