package core

import "sync"

// This file pools the big per-link table backings. Every simulation
// cell builds a fresh chip, and the dominant allocations of that
// startup are the flat arrays behind the signature hash tables and the
// WMT — hundreds of KB to MB each at paper geometries. Under -parallel
// the workers hammer the allocator (and the GC) with short-lived copies
// of the same few sizes, so released tables go into size-segregated
// sync.Pools instead and the next cell reuses them.
//
// Release is opt-in and must only be called when the owning structure
// is provably unreachable — the memoizing experiment runner does it for
// chips whose results have been deep-copied (memoized results carry no
// chip pointer). Released structures nil their backing so accidental
// reuse fails fast instead of corrupting a pooled array.

// slicePool hands out zeroed slices of one element type, segregated by
// exact length. Misses allocate; Put zeroes eagerly so Get never hands
// back stale entries.
type slicePool[T any] struct {
	classes sync.Map // length -> *sync.Pool of []T
}

func (p *slicePool[T]) get(n int) []T {
	if n <= 0 {
		return nil
	}
	if c, ok := p.classes.Load(n); ok {
		if v := c.(*sync.Pool).Get(); v != nil {
			return v.([]T)
		}
	}
	return make([]T, n)
}

func (p *slicePool[T]) put(s []T) {
	n := len(s)
	if n == 0 {
		return
	}
	clear(s)
	c, ok := p.classes.Load(n)
	if !ok {
		c, _ = p.classes.LoadOrStore(n, &sync.Pool{})
	}
	c.(*sync.Pool).Put(s)
}

var (
	htEntryPool  slicePool[entry]
	wmtEntryPool slicePool[wmtEntry]
)

// Release returns the table's backing array to the pool. The table is
// unusable afterwards.
func (h *HashTable) Release() {
	htEntryPool.put(h.entries)
	h.entries = nil
}

// Release returns the WMT's backing array to the pool. The table is
// unusable afterwards.
func (w *WMT) Release() {
	wmtEntryPool.put(w.entries)
	w.entries = nil
}

// Release recycles the home end's table backings and compression
// scratches. Only a privately-owned WMT is released — a shared SuperWMT
// view outlives any single link. The end is unusable afterwards.
func (h *HomeEnd) Release() {
	h.ht.Release()
	if w, ok := h.wmt.(*WMT); ok {
		w.Release()
	}
	h.scr.release()
	h.ht = nil
	h.wmt = nil
	h.home = nil
}

// Release recycles the remote end's table backing and compression
// scratches. The end is unusable afterwards.
func (r *RemoteEnd) Release() {
	r.ht.Release()
	r.scr.release()
	r.ht = nil
	r.remote = nil
}

// prime draws pooled word buffers for the scratch compressors so a
// fresh link end's first encodes start from recycled capacity.
func (s *encScratch) prime() {
	s.standalone.Prime()
	s.diff.Prime()
	s.dec.Prime()
}

// release returns the scratch compressors' word buffers to their pool.
func (s *encScratch) release() {
	s.standalone.Release()
	s.diff.Release()
	s.dec.Release()
}
