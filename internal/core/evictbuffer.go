package core

import "cable/internal/cache"

// EvictionBuffer solves the §IV-A race: the home cache may select a
// reference concurrently with its eviction from the remote cache, and a
// response pointing at a missing reference cannot be decompressed. The
// remote cache keeps a copy of each unacknowledged eviction, tagged with
// a sequence number (EvictSeq). The home cache echoes the last EvictSeq
// it has processed in every response; the remote side then knows, per
// referenced slot, whether the home meant the current occupant or a
// not-yet-acknowledged previous one.
//
// This works even over out-of-order transports such as Intel QPI.
type EvictionBuffer struct {
	pending map[cache.LineID][]evictRecord
	nextSeq uint64

	// Stats
	Inserted uint64
	Rescued  uint64 // decodes served from the buffer rather than the cache
}

type evictRecord struct {
	seq  uint64
	data []byte
}

// NewEvictionBuffer returns an empty buffer. Sequence numbers start at 1
// so that ack 0 means "home has seen nothing".
func NewEvictionBuffer() *EvictionBuffer {
	return &EvictionBuffer{pending: make(map[cache.LineID][]evictRecord)}
}

// Add records an eviction from slot and returns its EvictSeq. The data
// is copied.
func (b *EvictionBuffer) Add(slot cache.LineID, data []byte) uint64 {
	b.nextSeq++
	b.Inserted++
	b.pending[slot] = append(b.pending[slot], evictRecord{seq: b.nextSeq, data: append([]byte(nil), data...)})
	return b.nextSeq
}

// LastSeq returns the most recently issued EvictSeq.
func (b *EvictionBuffer) LastSeq() uint64 { return b.nextSeq }

// Resolve returns the data the home cache referenced at slot, given the
// EvictSeq the home acknowledged when it produced the response. If the
// home had already seen every eviction from this slot, nil is returned
// and the current cache occupant is the correct reference. Otherwise
// the home referenced the occupant as of its knowledge point: the
// oldest pending eviction with seq > ack.
func (b *EvictionBuffer) Resolve(slot cache.LineID, ack uint64) []byte {
	for _, r := range b.pending[slot] {
		if r.seq > ack {
			b.Rescued++
			return r.data
		}
	}
	return nil
}

// Release drops every record with seq ≤ ack: the home cache has
// processed those evictions and will never reference them again.
func (b *EvictionBuffer) Release(ack uint64) {
	for slot, recs := range b.pending {
		keep := recs[:0]
		for _, r := range recs {
			if r.seq > ack {
				keep = append(keep, r)
			}
		}
		if len(keep) == 0 {
			delete(b.pending, slot)
		} else {
			b.pending[slot] = keep
		}
	}
}

// Len returns the number of buffered evictions.
func (b *EvictionBuffer) Len() int {
	n := 0
	for _, recs := range b.pending {
		n += len(recs)
	}
	return n
}
