// Package bits provides bit-granular serialization used by the
// compression engines and the CABLE payload format. Compressed link
// payloads are sized in bits, not bytes: the paper's compression ratios
// and link-flit quantization (§III-E) both depend on exact bit counts.
//
// The implementation is word-at-a-time: the Writer stages bits in a
// 64-bit accumulator and flushes eight bytes at once, the Reader
// extracts up to 64 bits per call from an 8-byte window over the
// buffer. The bit order on the wire — most-significant-bit first within
// each byte — is identical to the historical per-bit implementation
// (retained in reference.go and cross-checked by differential tests),
// so encoded images are byte-for-byte unchanged.
package bits

import (
	"encoding/binary"
	"fmt"
)

// Writer accumulates a bit stream most-significant-bit first within each
// byte. The zero value is ready to use.
//
// Internally, bits are staged MSB-aligned in a 64-bit accumulator and
// flushed to the byte buffer eight bytes at a time; Bytes materializes
// any staged tail (zero-padded to a byte boundary) without disturbing
// subsequent writes.
type Writer struct {
	buf   []byte
	nbits int
	acc   uint64 // staged bits, MSB-aligned (bit 63 is the next wire bit)
	accn  int    // number of staged bits, 0..63
	tail  int    // trailing bytes of buf that duplicate acc (set by Bytes)
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbits }

// unseal drops the tail bytes Bytes materialized so writes can resume
// from the accumulator (which still holds those bits exactly).
func (w *Writer) unseal() {
	if w.tail > 0 {
		w.buf = w.buf[:len(w.buf)-w.tail]
		w.tail = 0
	}
}

// Bytes returns the underlying buffer. The final byte is zero-padded.
// Writing after Bytes is allowed and continues the same stream; the
// returned slice remains valid until the next Reset.
func (w *Writer) Bytes() []byte {
	if w.accn > 0 && w.tail == 0 {
		nb := (w.accn + 7) / 8
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], w.acc)
		w.buf = append(w.buf, tmp[:nb]...)
		w.tail = nb
	}
	return w.buf
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.unseal()
	w.acc |= uint64(b&1) << uint(63-w.accn)
	w.accn++
	w.nbits++
	if w.accn == 64 {
		w.flush()
	}
}

// flush moves the full accumulator into the buffer.
func (w *Writer) flush() {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], w.acc)
	w.buf = append(w.buf, tmp[:]...)
	w.acc, w.accn = 0, 0
}

// writeBitsWidth exists only for its bounds check: indexing it with the
// width rejects n outside [0, 64] with a panic, at the cost of one
// compare instead of an un-inlinable formatted panic.
var writeBitsWidth [65]struct{}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
//
// This is the hottest call in the compression engines (a few dozen
// calls per encoded line), so the body is kept within the inlining
// budget: the width check is an array bounds check, the unseal test is
// open-coded, and the once-per-64-bits accumulator spill is outlined.
func (w *Writer) WriteBits(v uint64, n int) {
	_ = writeBitsWidth[n]
	if w.tail > 0 {
		w.buf = w.buf[:len(w.buf)-w.tail]
		w.tail = 0
	}
	v &= 1<<uint(n) - 1 // all-ones when n == 64: 1<<64 wraps to 0
	w.nbits += n
	free := 64 - w.accn
	if n < free {
		w.acc |= v << uint(free-n)
		w.accn += n
		return
	}
	w.spillBits(v, n, free)
}

// spillBits completes a WriteBits that fills the accumulator: flush the
// full 64 bits and restage the remainder. Kept out of line so WriteBits
// itself stays within the inlining budget — the spill runs once per 64
// bits written, the fast path on every call.
//
//go:noinline
func (w *Writer) spillBits(v uint64, n, free int) {
	w.acc |= v >> uint(n-free)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], w.acc)
	w.buf = append(w.buf, tmp[:]...)
	rem := n - free
	w.accn = rem
	if rem == 0 {
		w.acc = 0
	} else {
		w.acc = v << uint(64-rem)
	}
}

// WriteBytes appends p as 8·len(p) bits. When the stream is at a byte
// boundary this is a single copy; otherwise bytes are packed through the
// accumulator eight at a time.
func (w *Writer) WriteBytes(p []byte) {
	w.unseal()
	if w.accn%8 == 0 {
		if nb := w.accn / 8; nb > 0 {
			var tmp [8]byte
			binary.BigEndian.PutUint64(tmp[:], w.acc)
			w.buf = append(w.buf, tmp[:nb]...)
			w.acc, w.accn = 0, 0
		}
		w.buf = append(w.buf, p...)
		w.nbits += 8 * len(p)
		return
	}
	for len(p) >= 8 {
		w.WriteBits(binary.BigEndian.Uint64(p), 64)
		p = p[8:]
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// WriteStream appends the first nbits of p (MSB-first within each byte,
// the layout Writer itself produces), the word-level equivalent of
// replaying a stream bit by bit. nbits must fit in p.
func (w *Writer) WriteStream(p []byte, nbits int) {
	if nbits < 0 || nbits > 8*len(p) {
		panic(fmt.Sprintf("bits: WriteStream %d bits from %d-byte buffer", nbits, len(p)))
	}
	full := nbits / 8
	w.WriteBytes(p[:full])
	if rem := nbits % 8; rem != 0 {
		w.WriteBits(uint64(p[full]>>uint(8-rem)), rem)
	}
}

// CopyRemaining appends every unread bit of r to w, 64 bits at a time —
// the word-level form of the ReadBit/WriteBit relay loop. The source
// may start at any bit alignment.
func (w *Writer) CopyRemaining(r *Reader) {
	for r.Remaining() >= 64 {
		v, _ := r.ReadBits(64)
		w.WriteBits(v, 64)
	}
	if n := r.Remaining(); n > 0 {
		v, _ := r.ReadBits(n)
		w.WriteBits(v, n)
	}
}

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbits, w.acc, w.accn, w.tail = 0, 0, 0, 0
}

// Reader consumes a bit stream produced by Writer.
type Reader struct {
	buf   []byte
	nbits int
	pos   int
	// short records that the stream was declared longer than the
	// backing buffer (a truncated wire image). Reads are bounded to the
	// physical buffer either way — a Reader can never index past buf —
	// and reads past the physical end report the truncation.
	short bool
}

// NewReader returns a Reader over nbits bits of buf. A declared length
// beyond the physical buffer (or a negative one) is clamped so reads
// can never index out of range; the mismatch is reported by Err and by
// the error of the read that hits the physical end.
func NewReader(buf []byte, nbits int) *Reader {
	r := &Reader{}
	r.Reset(buf, nbits)
	return r
}

// Reset re-points the reader at a new stream, reusing the struct (the
// allocation-free sibling of NewReader). It applies the same bounds
// validation as NewReader.
func (r *Reader) Reset(buf []byte, nbits int) {
	r.buf, r.nbits, r.pos, r.short = buf, nbits, 0, false
	if r.nbits < 0 {
		r.nbits, r.short = 0, true
	}
	if max := 8 * len(buf); r.nbits > max {
		r.nbits, r.short = max, true
	}
}

// Err reports whether the stream was constructed with a declared length
// outside the backing buffer (nil otherwise).
func (r *Reader) Err() error {
	if r.short {
		return fmt.Errorf("bits: stream declared longer than its %d-byte buffer", len(r.buf))
	}
	return nil
}

// Remaining returns the number of unread, physically-backed bits.
func (r *Reader) Remaining() int { return r.nbits - r.pos }

// eos reports the end-of-stream error and, mirroring the per-bit
// implementation (which consumed every available bit before failing),
// leaves the reader fully drained.
func (r *Reader) eos() error {
	r.pos = r.nbits
	if r.short {
		return fmt.Errorf("bits: read past end of truncated %d-bit stream", r.nbits)
	}
	return fmt.Errorf("bits: read past end of %d-bit stream", r.nbits)
}

// ReadBit consumes one bit. It reports an error past end of stream.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.nbits {
		return 0, r.eos()
	}
	b := uint(r.buf[r.pos/8]>>(7-uint(r.pos%8))) & 1
	r.pos++
	return b, nil
}

// peek64 extracts n bits starting at bit position pos, right-aligned.
// The caller guarantees 1 ≤ n ≤ 64 and pos+n ≤ nbits (≤ 8·len(buf)), so
// every byte the window touches is physically backed.
func (r *Reader) peek64(pos, n int) uint64 {
	off := pos >> 3
	shift := uint(pos & 7)
	var word uint64
	if off+8 <= len(r.buf) {
		word = binary.BigEndian.Uint64(r.buf[off:])
	} else {
		var tmp [8]byte
		copy(tmp[:], r.buf[off:])
		word = binary.BigEndian.Uint64(tmp[:])
	}
	if n <= 64-int(shift) {
		return (word << shift) >> uint(64-n)
	}
	// The read spans nine bytes: top bits from the shifted window, the
	// rest from the next byte (guaranteed in-bounds, see above).
	need := n - (64 - int(shift))
	return (word<<shift)>>uint(64-n) | uint64(r.buf[off+8])>>uint(8-need)
}

// ReadBits consumes n bits and returns them right-aligned.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bits: ReadBits width %d out of range", n)
	}
	if r.nbits-r.pos < n {
		return 0, r.eos()
	}
	if n == 0 {
		return 0, nil
	}
	v := r.peek64(r.pos, n)
	r.pos += n
	return v, nil
}

// AppendBytes consumes 8·n bits and appends them to dst, the
// allocation-free sibling of ReadBytes: with a reused dst the
// steady-state decode path allocates nothing. At a byte boundary this
// is a single copy.
func (r *Reader) AppendBytes(dst []byte, n int) ([]byte, error) {
	if n < 0 {
		return dst, fmt.Errorf("bits: AppendBytes count %d out of range", n)
	}
	if r.nbits-r.pos < 8*n {
		return dst, r.eos()
	}
	if r.pos%8 == 0 {
		off := r.pos / 8
		dst = append(dst, r.buf[off:off+n]...)
		r.pos += 8 * n
		return dst, nil
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], r.peek64(r.pos, 64))
		dst = append(dst, tmp[:]...)
		r.pos += 64
	}
	for ; i < n; i++ {
		dst = append(dst, byte(r.peek64(r.pos, 8)))
		r.pos += 8
	}
	return dst, nil
}

// ReadBytes consumes 8·n bits into a fresh slice.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	p, err := r.AppendBytes(make([]byte, 0, n), n)
	if err != nil {
		return nil, err
	}
	return p, nil
}
