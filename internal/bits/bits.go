// Package bits provides bit-granular serialization used by the
// compression engines and the CABLE payload format. Compressed link
// payloads are sized in bits, not bytes: the paper's compression ratios
// and link-flit quantization (§III-E) both depend on exact bit counts.
package bits

import "fmt"

// Writer accumulates a bit stream most-significant-bit first within each
// byte. The zero value is ready to use.
type Writer struct {
	buf   []byte
	nbits int
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbits }

// Bytes returns the underlying buffer. The final byte is zero-padded.
func (w *Writer) Bytes() []byte { return w.buf }

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	if w.nbits%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b&1 != 0 {
		w.buf[w.nbits/8] |= 0x80 >> uint(w.nbits%8)
	}
	w.nbits++
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bits: WriteBits width %d out of range", n))
	}
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i)))
	}
}

// WriteBytes appends p as 8·len(p) bits.
func (w *Writer) WriteBytes(p []byte) {
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbits = 0
}

// Reader consumes a bit stream produced by Writer.
type Reader struct {
	buf   []byte
	nbits int
	pos   int
	// short records that the stream was declared longer than the
	// backing buffer (a truncated wire image). Reads are bounded to the
	// physical buffer either way — a Reader can never index past buf —
	// and reads past the physical end report the truncation.
	short bool
}

// NewReader returns a Reader over nbits bits of buf. A declared length
// beyond the physical buffer (or a negative one) is clamped so reads
// can never index out of range; the mismatch is reported by Err and by
// the error of the read that hits the physical end.
func NewReader(buf []byte, nbits int) *Reader {
	r := &Reader{}
	r.Reset(buf, nbits)
	return r
}

// Reset re-points the reader at a new stream, reusing the struct (the
// allocation-free sibling of NewReader). It applies the same bounds
// validation as NewReader.
func (r *Reader) Reset(buf []byte, nbits int) {
	r.buf, r.nbits, r.pos, r.short = buf, nbits, 0, false
	if r.nbits < 0 {
		r.nbits, r.short = 0, true
	}
	if max := 8 * len(buf); r.nbits > max {
		r.nbits, r.short = max, true
	}
}

// Err reports whether the stream was constructed with a declared length
// outside the backing buffer (nil otherwise).
func (r *Reader) Err() error {
	if r.short {
		return fmt.Errorf("bits: stream declared longer than its %d-byte buffer", len(r.buf))
	}
	return nil
}

// Remaining returns the number of unread, physically-backed bits.
func (r *Reader) Remaining() int { return r.nbits - r.pos }

// ReadBit consumes one bit. It reports an error past end of stream.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.nbits {
		if r.short {
			return 0, fmt.Errorf("bits: read past end of truncated %d-bit stream", r.nbits)
		}
		return 0, fmt.Errorf("bits: read past end of %d-bit stream", r.nbits)
	}
	b := uint(r.buf[r.pos/8]>>(7-uint(r.pos%8))) & 1
	r.pos++
	return b, nil
}

// ReadBits consumes n bits and returns them right-aligned.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bits: ReadBits width %d out of range", n)
	}
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadBytes consumes 8·n bits into a fresh slice.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	p := make([]byte, n)
	for i := range p {
		v, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		p[i] = byte(v)
	}
	return p, nil
}
