package bits

import (
	"bytes"
	"math/rand"
	"testing"
)

// The tests in this file are differential: every operation runs against
// both the word-at-a-time implementation and the retained per-bit
// reference (reference.go), and the streams, lengths, values and error
// states must agree exactly. This is what "byte-identical output" means
// mechanically for the serialization layer.

// checkWriterParity asserts the two writers hold identical streams.
func checkWriterParity(t *testing.T, w *Writer, ref *refWriter, ctx string) {
	t.Helper()
	if w.Len() != ref.len() {
		t.Fatalf("%s: Len=%d ref=%d", ctx, w.Len(), ref.len())
	}
	if !bytes.Equal(w.Bytes(), ref.bytes()) {
		t.Fatalf("%s: bytes %x != ref %x", ctx, w.Bytes(), ref.bytes())
	}
}

// driveWriters applies one pseudo-random op to both writers.
func driveWriters(rng *rand.Rand, w *Writer, ref *refWriter) string {
	switch rng.Intn(5) {
	case 0:
		b := uint(rng.Intn(2))
		w.WriteBit(b)
		ref.writeBit(b)
		return "WriteBit"
	case 1:
		n := rng.Intn(65)
		v := rng.Uint64()
		w.WriteBits(v, n)
		ref.writeBits(v, n)
		return "WriteBits"
	case 2:
		p := make([]byte, rng.Intn(20))
		rng.Read(p)
		w.WriteBytes(p)
		ref.writeBytes(p)
		return "WriteBytes"
	case 3:
		p := make([]byte, rng.Intn(12))
		rng.Read(p)
		nbits := rng.Intn(8*len(p) + 1)
		w.WriteStream(p, nbits)
		ref.writeStream(p, nbits)
		return "WriteStream"
	default:
		// Interleaved Bytes(): materializes the staged tail; writing
		// must continue the same stream afterwards (the guarded-marshal
		// pattern in core).
		w.Bytes()
		ref.bytes()
		return "Bytes"
	}
}

func TestWriterWordParity(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var w Writer
		var ref refWriter
		for op := 0; op < 60; op++ {
			name := driveWriters(rng, &w, &ref)
			checkWriterParity(t, &w, &ref, name)
		}
		w.Reset()
		ref.reset()
		checkWriterParity(t, &w, &ref, "Reset")
		// One more round after reuse.
		for op := 0; op < 20; op++ {
			name := driveWriters(rng, &w, &ref)
			checkWriterParity(t, &w, &ref, name)
		}
	}
}

// driveReaders applies one pseudo-random read to both readers and
// asserts identical results (value, error presence and text, position).
func driveReaders(t *testing.T, rng *rand.Rand, r *Reader, ref *refReader) {
	t.Helper()
	switch rng.Intn(4) {
	case 0:
		got, gerr := r.ReadBit()
		want, werr := ref.readBit()
		if got != want || !errEqual(gerr, werr) {
			t.Fatalf("ReadBit: (%d,%v) != ref (%d,%v)", got, gerr, want, werr)
		}
	case 1:
		n := rng.Intn(67) - 1 // include invalid widths -1 and 65
		got, gerr := r.ReadBits(n)
		want, werr := ref.readBits(n)
		if got != want || !errEqual(gerr, werr) {
			t.Fatalf("ReadBits(%d): (%#x,%v) != ref (%#x,%v)", n, got, gerr, want, werr)
		}
	case 2:
		n := rng.Intn(12)
		got, gerr := r.ReadBytes(n)
		want, werr := ref.readBytes(n)
		if !bytes.Equal(got, want) || !errEqual(gerr, werr) {
			t.Fatalf("ReadBytes(%d): (%x,%v) != ref (%x,%v)", n, got, gerr, want, werr)
		}
	default:
		n := rng.Intn(12)
		dst := make([]byte, 0, n)
		got, gerr := r.AppendBytes(dst, n)
		want, werr := ref.readBytes(n)
		if werr != nil {
			// The reference returns nil on error; AppendBytes returns
			// dst unchanged. Only the error state must match.
			if gerr == nil || len(got) != 0 {
				t.Fatalf("AppendBytes(%d): (%x,%v), ref error %v", n, got, gerr, werr)
			}
		} else if !bytes.Equal(got, want) || gerr != nil {
			t.Fatalf("AppendBytes(%d): (%x,%v) != ref (%x,nil)", n, got, gerr, want)
		}
	}
	if r.Remaining() != ref.remaining() {
		t.Fatalf("Remaining %d != ref %d", r.Remaining(), ref.remaining())
	}
}

func errEqual(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

func TestReaderWordParity(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, rng.Intn(40))
		rng.Read(buf)
		// Mix well-formed, truncated and negative declared lengths.
		nbits := rng.Intn(8*len(buf)+20) - 5
		r := NewReader(buf, nbits)
		var ref refReader
		ref.reset(buf, nbits)
		if !errEqual(r.Err(), ref.err()) {
			t.Fatalf("Err: %v != ref %v", r.Err(), ref.err())
		}
		for op := 0; op < 40; op++ {
			driveReaders(t, rng, r, &ref)
		}
	}
}

// TestAppendBytesReuse pins the allocation contract: appending into a
// reused buffer performs no allocation at any bit alignment.
func TestAppendBytesReuse(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3) // misalign
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	w.WriteBytes(payload)
	r := NewReader(w.Bytes(), w.Len())
	dst := make([]byte, 0, len(payload))
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(w.Bytes(), w.Len())
		if _, err := r.ReadBits(3); err != nil {
			t.Fatal(err)
		}
		var err error
		dst, err = r.AppendBytes(dst[:0], len(payload))
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendBytes into reused buffer: %v allocs/op", allocs)
	}
	if !bytes.Equal(dst, payload) {
		t.Fatalf("AppendBytes got %x, want %x", dst, payload)
	}
}

// FuzzBitsWordParity cross-checks the word-at-a-time Writer/Reader
// against the per-bit reference on fuzz-driven op sequences: random
// widths, interleaved bit/byte/stream ops, then a read-back pass over a
// randomly truncated view of the stream.
func FuzzBitsWordParity(f *testing.F) {
	f.Add([]byte{0x01, 0x40, 0xFF, 0x03, 0x00})
	f.Add([]byte{0x02, 0x08, 0xAA, 0xBB, 0xCC, 0x04, 0x00, 0x10})
	f.Add(bytes.Repeat([]byte{0x1F}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		var w Writer
		var ref refWriter
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		// Op stream: each op consumes a selector byte plus operands.
		for pos < len(data) && w.Len() < 1<<14 {
			switch next() % 5 {
			case 0:
				b := uint(next() & 1)
				w.WriteBit(b)
				ref.writeBit(b)
			case 1:
				n := int(next() % 65)
				var v uint64
				for i := 0; i < 8; i++ {
					v = v<<8 | uint64(next())
				}
				w.WriteBits(v, n)
				ref.writeBits(v, n)
			case 2:
				n := int(next() % 16)
				p := make([]byte, n)
				for i := range p {
					p[i] = next()
				}
				w.WriteBytes(p)
				ref.writeBytes(p)
			case 3:
				n := int(next() % 8)
				p := make([]byte, n)
				for i := range p {
					p[i] = next()
				}
				nbits := 0
				if len(p) > 0 {
					nbits = int(next()) % (8*len(p) + 1)
				}
				w.WriteStream(p, nbits)
				ref.writeStream(p, nbits)
			default:
				w.Bytes()
			}
		}
		if w.Len() != ref.len() || !bytes.Equal(w.Bytes(), ref.bytes()) {
			t.Fatalf("writer parity: %d bits %x vs ref %d bits %x",
				w.Len(), w.Bytes(), ref.len(), ref.bytes())
		}
		// Read-back over a possibly-truncated view: drop up to 3 bytes
		// of backing while keeping the declared length.
		buf := append([]byte(nil), w.Bytes()...)
		cut := int(next() % 4)
		if cut > len(buf) {
			cut = len(buf)
		}
		view := buf[:len(buf)-cut]
		r := NewReader(view, w.Len())
		var rr refReader
		rr.reset(view, w.Len())
		if !errEqual(r.Err(), rr.err()) {
			t.Fatalf("Err parity: %v vs %v", r.Err(), rr.err())
		}
		for i := 0; i < 64 && pos < len(data); i++ {
			switch next() % 3 {
			case 0:
				g, ge := r.ReadBit()
				x, xe := rr.readBit()
				if g != x || !errEqual(ge, xe) {
					t.Fatalf("ReadBit parity: (%d,%v) vs (%d,%v)", g, ge, x, xe)
				}
			case 1:
				n := int(next() % 65)
				g, ge := r.ReadBits(n)
				x, xe := rr.readBits(n)
				if g != x || !errEqual(ge, xe) {
					t.Fatalf("ReadBits(%d) parity: (%#x,%v) vs (%#x,%v)", n, g, ge, x, xe)
				}
			default:
				n := int(next() % 10)
				g, ge := r.ReadBytes(n)
				x, xe := rr.readBytes(n)
				if !bytes.Equal(g, x) || !errEqual(ge, xe) {
					t.Fatalf("ReadBytes(%d) parity: (%x,%v) vs (%x,%v)", n, g, ge, x, xe)
				}
			}
			if r.Remaining() != rr.remaining() {
				t.Fatalf("Remaining parity: %d vs %d", r.Remaining(), rr.remaining())
			}
		}
	})
}

// TestCopyRemainingParity checks the 64-bit-chunk relay against a
// ReadBit/WriteBit relay at every start alignment, including truncated
// declared lengths.
func TestCopyRemainingParity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		buf := make([]byte, rng.Intn(40))
		rng.Read(buf)
		nbits := 8 * len(buf)
		if rng.Intn(3) == 0 {
			nbits = rng.Intn(8*len(buf) + 16) // sometimes truncated or short
		}
		skip := 0
		if n := NewReader(buf, nbits).Remaining(); n > 0 {
			skip = rng.Intn(n + 1)
		}

		ra := NewReader(buf, nbits)
		var wa Writer
		wa.WriteBits(uint64(trial), rng.Intn(20)) // random start alignment
		prefix := wa.Len()
		ra.ReadBits(skip % 65)
		for s := skip % 65; s < skip; s++ {
			ra.ReadBit()
		}
		wa.CopyRemaining(ra)

		rb := NewReader(buf, nbits)
		var wb refWriter
		wb.writeBits(uint64(trial), prefix)
		for s := 0; s < skip; s++ {
			rb.ReadBit()
		}
		for rb.Remaining() > 0 {
			b, _ := rb.ReadBit()
			wb.writeBit(b)
		}

		if wa.Len() != wb.len() {
			t.Fatalf("trial %d: len %d, want %d", trial, wa.Len(), wb.len())
		}
		if got, want := wa.Bytes(), wb.bytes(); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: bytes %x, want %x", trial, got, want)
		}
		if ra.Remaining() != 0 {
			t.Fatalf("trial %d: source not drained, %d bits left", trial, ra.Remaining())
		}
	}
}
