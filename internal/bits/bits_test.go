package bits

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBit(t *testing.T) {
	var w Writer
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("expected error past end of stream")
	}
}

func TestWriteBitsWidths(t *testing.T) {
	for width := 0; width <= 64; width++ {
		var w Writer
		v := uint64(0xDEADBEEFCAFEBABE)
		if width < 64 {
			v &= (1 << uint(width)) - 1
		}
		w.WriteBits(v, width)
		if w.Len() != width {
			t.Fatalf("width %d: Len = %d", width, w.Len())
		}
		r := NewReader(w.Bytes(), w.Len())
		got, err := r.ReadBits(width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if got != v {
			t.Fatalf("width %d: got %x, want %x", width, got, v)
		}
	}
}

func TestWriteBytesRoundTrip(t *testing.T) {
	var w Writer
	w.WriteBit(1) // misalign on purpose
	payload := []byte{0x00, 0xFF, 0x5A, 0xA5, 0x12}
	w.WriteBytes(payload)
	r := NewReader(w.Bytes(), w.Len())
	if _, err := r.ReadBit(); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBytes(len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %x, want %x", got, payload)
	}
}

func TestReset(t *testing.T) {
	var w Writer
	w.WriteBits(0x3FF, 10)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatalf("after Reset: Len=%d bytes=%d", w.Len(), len(w.Bytes()))
	}
	w.WriteBits(0x5, 3)
	r := NewReader(w.Bytes(), w.Len())
	v, err := r.ReadBits(3)
	if err != nil || v != 5 {
		t.Fatalf("got %d, %v", v, err)
	}
}

func TestWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteBits(65) should panic")
		}
	}()
	var w Writer
	w.WriteBits(0, 65)
}

func TestReadBitsWidthError(t *testing.T) {
	r := NewReader([]byte{0xFF}, 8)
	if _, err := r.ReadBits(65); err == nil {
		t.Fatal("ReadBits(65) should error")
	}
	if _, err := r.ReadBits(-1); err == nil {
		t.Fatal("ReadBits(-1) should error")
	}
}

func TestRemaining(t *testing.T) {
	var w Writer
	w.WriteBits(0xABCD, 16)
	r := NewReader(w.Bytes(), w.Len())
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 11 {
		t.Fatalf("Remaining after 5 = %d", r.Remaining())
	}
}

// Property: any sequence of (value,width) writes reads back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		widths := make([]int, count)
		values := make([]uint64, count)
		var w Writer
		for i := 0; i < count; i++ {
			widths[i] = rng.Intn(65)
			values[i] = rng.Uint64()
			if widths[i] < 64 {
				values[i] &= (1 << uint(widths[i])) - 1
			}
			w.WriteBits(values[i], widths[i])
		}
		r := NewReader(w.Bytes(), w.Len())
		for i := 0; i < count; i++ {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != values[i] {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	var w Writer
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 17)
	}
}

func BenchmarkReadBits(b *testing.B) {
	var w Writer
	const n = 1024
	for i := 0; i < n; i++ {
		w.WriteBits(uint64(i), 17)
	}
	buf, nbits := w.Bytes(), w.Len()
	var r Reader
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%n == 0 {
			r.Reset(buf, nbits)
		}
		if _, err := r.ReadBits(17); err != nil {
			b.Fatal(err)
		}
	}
}

// Regression: a Reader whose declared length exceeds its physical
// buffer (a truncated wire image) must clamp and error, never index
// past the buffer. The pre-fix code panicked with an out-of-range
// slice access on the first read past the physical end.
func TestReaderTruncatedStream(t *testing.T) {
	var w Writer
	w.WriteBytes([]byte{0xAB, 0xCD})

	// Declared 64 bits, backed by 2 bytes.
	r := NewReader(w.Bytes(), 64)
	if r.Err() == nil {
		t.Fatal("truncated stream reported no construction error")
	}
	if got := r.Remaining(); got != 16 {
		t.Fatalf("Remaining = %d, want clamp to 16 physical bits", got)
	}
	if v, err := r.ReadBits(16); err != nil || v != 0xABCD {
		t.Fatalf("reads within the physical buffer must succeed: v=%#x err=%v", v, err)
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("read past the physical end of a truncated stream succeeded")
	}

	// Negative declared length clamps to empty.
	r = NewReader(w.Bytes(), -5)
	if r.Err() == nil || r.Remaining() != 0 {
		t.Fatalf("negative length: err=%v remaining=%d", r.Err(), r.Remaining())
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("read from negative-length stream succeeded")
	}

	// A well-formed stream keeps Err nil and errors only at its end.
	r = NewReader(w.Bytes(), 16)
	if r.Err() != nil {
		t.Fatalf("well-formed stream reported %v", r.Err())
	}
	if _, err := r.ReadBits(16); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("read past declared end succeeded")
	}

	// Reset must re-validate: reusing a healthy reader on a truncated
	// stream re-arms the clamp, and vice versa.
	r.Reset(w.Bytes(), 1000)
	if r.Err() == nil || r.Remaining() != 16 {
		t.Fatalf("Reset validation: err=%v remaining=%d", r.Err(), r.Remaining())
	}
	r.Reset(w.Bytes(), 8)
	if r.Err() != nil {
		t.Fatalf("Reset back to valid: %v", r.Err())
	}
}
