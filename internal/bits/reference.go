package bits

import "fmt"

// This file retains the original per-bit Writer/Reader implementations
// as unexported reference models. They are the executable specification
// of the wire format: the word-at-a-time implementations in bits.go must
// produce and consume byte-identical streams, which the differential
// tests and FuzzBitsWordParity assert against these.

// refWriter is the per-bit reference implementation of Writer.
type refWriter struct {
	buf   []byte
	nbits int
}

func (w *refWriter) len() int { return w.nbits }

func (w *refWriter) bytes() []byte { return w.buf }

func (w *refWriter) writeBit(b uint) {
	if w.nbits%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b&1 != 0 {
		w.buf[w.nbits/8] |= 0x80 >> uint(w.nbits%8)
	}
	w.nbits++
}

func (w *refWriter) writeBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bits: WriteBits width %d out of range", n))
	}
	for i := n - 1; i >= 0; i-- {
		w.writeBit(uint(v >> uint(i)))
	}
}

func (w *refWriter) writeBytes(p []byte) {
	for _, b := range p {
		w.writeBits(uint64(b), 8)
	}
}

func (w *refWriter) writeStream(p []byte, nbits int) {
	r := &refReader{}
	r.reset(p, nbits)
	for r.remaining() > 0 {
		b, _ := r.readBit()
		w.writeBit(b)
	}
}

func (w *refWriter) reset() {
	w.buf = w.buf[:0]
	w.nbits = 0
}

// refReader is the per-bit reference implementation of Reader.
type refReader struct {
	buf   []byte
	nbits int
	pos   int
	short bool
}

func (r *refReader) reset(buf []byte, nbits int) {
	r.buf, r.nbits, r.pos, r.short = buf, nbits, 0, false
	if r.nbits < 0 {
		r.nbits, r.short = 0, true
	}
	if max := 8 * len(buf); r.nbits > max {
		r.nbits, r.short = max, true
	}
}

func (r *refReader) err() error {
	if r.short {
		return fmt.Errorf("bits: stream declared longer than its %d-byte buffer", len(r.buf))
	}
	return nil
}

func (r *refReader) remaining() int { return r.nbits - r.pos }

func (r *refReader) readBit() (uint, error) {
	if r.pos >= r.nbits {
		if r.short {
			return 0, fmt.Errorf("bits: read past end of truncated %d-bit stream", r.nbits)
		}
		return 0, fmt.Errorf("bits: read past end of %d-bit stream", r.nbits)
	}
	b := uint(r.buf[r.pos/8]>>(7-uint(r.pos%8))) & 1
	r.pos++
	return b, nil
}

func (r *refReader) readBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bits: ReadBits width %d out of range", n)
	}
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

func (r *refReader) readBytes(n int) ([]byte, error) {
	p := make([]byte, n)
	for i := range p {
		v, err := r.readBits(8)
		if err != nil {
			return nil, err
		}
		p[i] = byte(v)
	}
	return p, nil
}
