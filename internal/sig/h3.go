// Package sig implements CABLE's signature mechanism (§III-A): sampling
// 32-bit words from a cache line, skipping trivial words, and hashing
// them with the H3 universal hash family used in the paper's OpenPiton
// search pipeline.
package sig

import (
	"math/bits"
	"math/rand"
)

// H3 is an instance of the H3 universal hash family (Carter & Wegman).
// Each of the 32 input bits selects a random row; the hash is the XOR of
// the selected rows. H3 is cheap in hardware (one XOR tree per output
// bit) which is why the paper's RTL uses it.
type H3 struct {
	rows [32]uint32
	// tbl[k][b] precomputes the XOR of rows 8k..8k+7 selected by byte
	// value b, so Hash is four table lookups instead of a 32-iteration
	// bit loop — hashing is the hottest operation of the encode path
	// (every search/insert signature flows through it). By XOR
	// linearity the result is bit-identical to the row-by-row form.
	tbl [4][256]uint32
}

// NewH3 builds an H3 instance from a deterministic seed so that home and
// remote caches — and repeated simulator runs — agree on every hash.
func NewH3(seed int64) *H3 {
	rng := rand.New(rand.NewSource(seed))
	h := &H3{}
	for i := range h.rows {
		h.rows[i] = rng.Uint32()
	}
	for k := 0; k < 4; k++ {
		for b := 1; b < 256; b++ {
			// Peel the lowest set bit; the rest is already computed.
			h.tbl[k][b] = h.tbl[k][b&(b-1)] ^ h.rows[8*k+bits.TrailingZeros32(uint32(b))]
		}
	}
	return h
}

// Hash maps a 32-bit word to a 32-bit hash.
func (h *H3) Hash(x uint32) uint32 {
	return h.tbl[0][x&0xff] ^ h.tbl[1][x>>8&0xff] ^ h.tbl[2][x>>16&0xff] ^ h.tbl[3][x>>24]
}
