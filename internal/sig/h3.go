// Package sig implements CABLE's signature mechanism (§III-A): sampling
// 32-bit words from a cache line, skipping trivial words, and hashing
// them with the H3 universal hash family used in the paper's OpenPiton
// search pipeline.
package sig

import "math/rand"

// H3 is an instance of the H3 universal hash family (Carter & Wegman).
// Each of the 32 input bits selects a random row; the hash is the XOR of
// the selected rows. H3 is cheap in hardware (one XOR tree per output
// bit) which is why the paper's RTL uses it.
type H3 struct {
	rows [32]uint32
}

// NewH3 builds an H3 instance from a deterministic seed so that home and
// remote caches — and repeated simulator runs — agree on every hash.
func NewH3(seed int64) *H3 {
	rng := rand.New(rand.NewSource(seed))
	h := &H3{}
	for i := range h.rows {
		h.rows[i] = rng.Uint32()
	}
	return h
}

// Hash maps a 32-bit word to a 32-bit hash.
func (h *H3) Hash(x uint32) uint32 {
	var out uint32
	for i := 0; x != 0; i++ {
		if x&1 != 0 {
			out ^= h.rows[i]
		}
		x >>= 1
	}
	return out
}
