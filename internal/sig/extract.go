package sig

import (
	"encoding/binary"
	"math/bits"
)

// WordSize is the signature sampling granularity in bytes. CABLE samples
// 32-bit words and shifts offsets by four bytes rather than one (§III-A),
// exploiting the 32/64-bit alignment of most language runtimes.
const WordSize = 4

// Signature is the hashed, shortened (32-bit) representation of a cache
// line used to index the hash table.
type Signature uint32

// IsTrivial reports whether a 32-bit word is trivial: 24 or more bits of
// leading zeroes or leading ones (Fig 6). Trivial words (zeroes, small
// positive/negative integers) are too common to identify a line.
func IsTrivial(w uint32) bool {
	return bits.LeadingZeros32(w) >= 24 || bits.LeadingZeros32(^w) >= 24
}

// Word returns the 32-bit little-endian word at byte offset off.
func Word(line []byte, off int) uint32 {
	return binary.LittleEndian.Uint32(line[off : off+WordSize])
}

// Extractor turns cache lines into signatures. It is shared by the home
// and remote sides of a link, which must agree on hashing.
type Extractor struct {
	h *H3
	// insertOffsets are the default sampling positions used when
	// inserting a line into the hash table (Fig 5). Only two
	// signatures are inserted per line to keep hash collisions low
	// (§III-B).
	insertOffsets []int
}

// DefaultInsertOffsets mirrors Fig 5: one signature sampled from the
// first half of the line and one from the second half.
func DefaultInsertOffsets(lineSize int) []int {
	return []int{0, lineSize / 2}
}

// InsertOffsetsN spaces n sampling positions evenly across the line
// (the bucket-count ablation; n=2 reproduces the paper's default).
func InsertOffsetsN(lineSize, n int) []int {
	if n < 1 {
		n = 1
	}
	if n > lineSize/WordSize {
		n = lineSize / WordSize
	}
	offs := make([]int, n)
	for i := range offs {
		offs[i] = (i * lineSize / n) &^ (WordSize - 1)
	}
	return offs
}

// NewExtractor builds an extractor for the given line size using a
// deterministic H3 seed and the paper's two insert offsets.
func NewExtractor(lineSize int, seed int64) *Extractor {
	return NewExtractorN(lineSize, seed, 2)
}

// NewExtractorN builds an extractor with n insert-signature offsets
// (§III-B studies keeping this low to limit hash collisions).
func NewExtractorN(lineSize int, seed int64, n int) *Extractor {
	return &Extractor{h: NewH3(seed), insertOffsets: InsertOffsetsN(lineSize, n)}
}

// hashWord computes the signature of one non-trivial word.
func (e *Extractor) hashWord(w uint32) Signature { return Signature(e.h.Hash(w)) }

// InsertSignatures extracts the (at most two) signatures used when a
// line is inserted into the hash table. Each default offset is moved
// forward past trivial words; duplicate signatures collapse.
func (e *Extractor) InsertSignatures(line []byte) []Signature {
	return e.AppendInsertSignatures(make([]Signature, 0, len(e.insertOffsets)), line)
}

// AppendInsertSignatures is the allocation-free form of
// InsertSignatures: it appends to dst (typically a reused per-end
// scratch buffer) and returns the extended slice.
func (e *Extractor) AppendInsertSignatures(dst []Signature, line []byte) []Signature {
	start := len(dst)
	for _, base := range e.insertOffsets {
		off := advance(line, base)
		if off < 0 {
			continue
		}
		s := e.hashWord(Word(line, off))
		if len(dst) == start || dst[len(dst)-1] != s {
			dst = append(dst, s)
		}
	}
	return dst
}

// SearchSignatures extracts every distinct non-trivial word signature in
// the line, up to max (the paper uses 16 for 64-byte lines, §III-C).
// A zero-filled line yields none.
func (e *Extractor) SearchSignatures(line []byte, max int) []Signature {
	return e.AppendSearchSignatures(make([]Signature, 0, max), line, max)
}

// AppendSearchSignatures is the allocation-free form of
// SearchSignatures: it appends at most max distinct signatures to dst
// and returns the extended slice. The line is scanned two words per
// 8-byte load (nonTrivialMask), so all-trivial stretches — the common
// case on integer-heavy lines — cost one branch per chunk.
// Deduplication is a linear scan over the appended region — max is
// small (16 in the paper), so this beats a map and allocates nothing.
func (e *Extractor) AppendSearchSignatures(dst []Signature, line []byte, max int) []Signature {
	start := len(dst)
	off := 0
	for ; off+2*WordSize <= len(line) && len(dst)-start < max; off += 2 * WordSize {
		m := nonTrivialMask(binary.LittleEndian.Uint64(line[off:]))
		if m == 0 {
			continue
		}
		if m&1 != 0 {
			dst = appendDistinct(dst, start, e.hashWord(Word(line, off)))
		}
		if m&2 != 0 && len(dst)-start < max {
			dst = appendDistinct(dst, start, e.hashWord(Word(line, off+WordSize)))
		}
	}
	if off+WordSize <= len(line) && len(dst)-start < max {
		if w := Word(line, off); !IsTrivial(w) {
			dst = appendDistinct(dst, start, e.hashWord(w))
		}
	}
	return dst
}

// appendDistinct appends s unless it already occurs in dst[start:].
func appendDistinct(dst []Signature, start int, s Signature) []Signature {
	for _, prev := range dst[start:] {
		if prev == s {
			return dst
		}
	}
	return append(dst, s)
}
