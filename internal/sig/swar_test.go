package sig

import (
	"math/rand"
	"testing"
)

// Naive reference loops for the SWAR kernels: the exact scalar
// implementations the packed-word versions replaced.

func naiveAdvance(line []byte, start int) int {
	for off := start; off+WordSize <= len(line); off += WordSize {
		if !IsTrivial(Word(line, off)) {
			return off
		}
	}
	return -1
}

func naiveNonTrivialWords(line []byte) int {
	n := 0
	for off := 0; off+WordSize <= len(line); off += WordSize {
		if !IsTrivial(Word(line, off)) {
			n++
		}
	}
	return n
}

func naiveZeroLine(line []byte) bool {
	for _, b := range line {
		if b != 0 {
			return false
		}
	}
	return true
}

func naiveSearchSignatures(e *Extractor, line []byte, max int) []Signature {
	dst := []Signature{}
	for off := 0; off+WordSize <= len(line) && len(dst) < max; off += WordSize {
		w := Word(line, off)
		if IsTrivial(w) {
			continue
		}
		s := e.hashWord(w)
		dup := false
		for _, prev := range dst {
			if prev == s {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, s)
		}
	}
	return dst
}

// lineCases generates lines covering the shapes the kernels must get
// right: all lengths 0..40 (tails not a multiple of 8), all-zero,
// all-ones, all-trivial small integers, dense random, and sparse lines
// with a single non-trivial word at every position.
func lineCases(rng *rand.Rand) [][]byte {
	var cases [][]byte
	for n := 0; n <= 40; n++ {
		zero := make([]byte, n)
		cases = append(cases, zero)
		ones := make([]byte, n)
		trivial := make([]byte, n)
		dense := make([]byte, n)
		for i := range ones {
			ones[i] = 0xFF
		}
		for i := 0; i+WordSize <= n; i += WordSize {
			trivial[i] = byte(rng.Intn(256)) // small LE integer per word
		}
		rng.Read(dense)
		cases = append(cases, ones, trivial, dense)
		for w := 0; w+WordSize <= n; w += WordSize {
			sparse := make([]byte, n)
			sparse[w+1] = 0x12 // non-trivial: top 24 bits neither 0 nor 1
			sparse[w+3] = 0x34
			cases = append(cases, sparse)
		}
	}
	for i := 0; i < 200; i++ {
		p := make([]byte, rng.Intn(130))
		rng.Read(p)
		// Bias toward trivial words so runs of both kinds appear.
		for off := 0; off+WordSize <= len(p); off += WordSize {
			switch rng.Intn(3) {
			case 0:
				p[off+1], p[off+2], p[off+3] = 0, 0, 0
			case 1:
				p[off+1], p[off+2], p[off+3] = 0xFF, 0xFF, 0xFF
			}
		}
		cases = append(cases, p)
	}
	return cases
}

func TestAdvanceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, line := range lineCases(rng) {
		for start := 0; start <= len(line)+4; start += WordSize {
			got := advance(line, start)
			want := naiveAdvance(line, start)
			if got != want {
				t.Fatalf("advance(%x, %d) = %d, want %d", line, start, got, want)
			}
		}
	}
}

func TestNonTrivialWordsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, line := range lineCases(rng) {
		if got, want := NonTrivialWords(line), naiveNonTrivialWords(line); got != want {
			t.Fatalf("NonTrivialWords(%x) = %d, want %d", line, got, want)
		}
	}
}

func TestZeroLineMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, line := range lineCases(rng) {
		if got, want := ZeroLine(line), naiveZeroLine(line); got != want {
			t.Fatalf("ZeroLine(%x) = %v, want %v", line, got, want)
		}
	}
}

func TestSearchSignaturesMatchSWAR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := NewExtractor(64, 42)
	for _, line := range lineCases(rng) {
		for _, max := range []int{0, 1, 2, 3, 16, 64} {
			got := e.AppendSearchSignatures(nil, line, max)
			want := naiveSearchSignatures(e, line, max)
			if len(got) != len(want) {
				t.Fatalf("search(%x, max=%d): %v vs naive %v", line, max, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("search(%x, max=%d): %v vs naive %v", line, max, got, want)
				}
			}
		}
	}
}

// TestNonTrivialMaskExhaustiveLanes sweeps the triviality boundary
// values through both lanes of the packed test.
func TestNonTrivialMaskExhaustiveLanes(t *testing.T) {
	boundary := []uint32{
		0, 1, 0xFF, 0x100, 0x1FF, 0xFFFFFF00 - 1, 0xFFFFFF00,
		0xFFFFFFFF, 0xFFFFFEFF, 0x80000000, 0x00FFFFFF, 0xFF000000,
	}
	for _, lo := range boundary {
		for _, hi := range boundary {
			x := uint64(lo) | uint64(hi)<<32
			m := nonTrivialMask(x)
			want := uint(0)
			if !IsTrivial(lo) {
				want |= 1
			}
			if !IsTrivial(hi) {
				want |= 2
			}
			if m != want {
				t.Fatalf("nonTrivialMask(%#x) = %b, want %b (lo=%#x hi=%#x)", x, m, want, lo, hi)
			}
		}
	}
}
