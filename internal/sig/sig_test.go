package sig

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestH3Deterministic(t *testing.T) {
	a, b := NewH3(42), NewH3(42)
	for _, w := range []uint32{0, 1, 0xFFFFFFFF, 0xDEADBEEF, 1 << 31} {
		if a.Hash(w) != b.Hash(w) {
			t.Fatalf("same seed disagrees on %#x", w)
		}
	}
	c := NewH3(43)
	diff := 0
	for w := uint32(1); w < 100; w++ {
		if a.Hash(w) != c.Hash(w) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produce identical hash functions")
	}
}

func TestH3Linearity(t *testing.T) {
	// H3 is linear over GF(2): H(a^b) == H(a)^H(b).
	h := NewH3(7)
	f := func(a, b uint32) bool {
		return h.Hash(a^b) == h.Hash(a)^h.Hash(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestH3ZeroMapsToZero(t *testing.T) {
	if NewH3(1).Hash(0) != 0 {
		t.Fatal("H3 of zero must be zero (empty XOR)")
	}
}

func TestH3Distribution(t *testing.T) {
	// Hashes of sequential small integers should spread across buckets.
	h := NewH3(99)
	buckets := make([]int, 16)
	for w := uint32(1); w <= 4096; w++ {
		buckets[h.Hash(w)%16]++
	}
	for i, n := range buckets {
		if n < 128 || n > 384 { // expect 256 each; allow wide slack
			t.Fatalf("bucket %d has %d of 4096 — badly skewed", i, n)
		}
	}
}

func TestIsTrivial(t *testing.T) {
	cases := []struct {
		w    uint32
		want bool
	}{
		{0x00000000, true},  // all zeroes
		{0xFFFFFFFF, true},  // all ones
		{0x000000FF, true},  // 24 leading zeroes
		{0x000001FF, false}, // 23 leading zeroes
		{0xFFFFFF00, true},  // 24 leading ones
		{0xFFFFFE00, false}, // 23 leading ones
		{0x00000001, true},  // small int
		{0xDEADBEEF, false}, // pointer-like
		{0x7FFFFFFF, false}, // large positive
		{0x80000000, false}, // sign bit only: one leading one then zeros
	}
	for _, c := range cases {
		if got := IsTrivial(c.w); got != c.want {
			t.Errorf("IsTrivial(%#08x) = %v, want %v", c.w, got, c.want)
		}
	}
}

func makeLine(words ...uint32) []byte {
	line := make([]byte, 64)
	for i, w := range words {
		binary.LittleEndian.PutUint32(line[i*4:], w)
	}
	return line
}

func TestInsertSignaturesSkipsTrivial(t *testing.T) {
	e := NewExtractor(64, 1)
	// Words 0..3 trivial, word 4 non-trivial; second half: word 8
	// trivial, word 9 non-trivial.
	line := makeLine(0, 1, 0xFFFFFFFF, 2, 0xCAFEBABE, 0, 0, 0, 0, 0x12345678)
	sigs := e.InsertSignatures(line)
	if len(sigs) != 2 {
		t.Fatalf("got %d signatures, want 2", len(sigs))
	}
	want0 := e.hashWord(0xCAFEBABE)
	want1 := e.hashWord(0x12345678)
	if sigs[0] != want0 || sigs[1] != want1 {
		t.Fatalf("signatures not from first non-trivial words: %v", sigs)
	}
}

func TestInsertSignaturesAllTrivial(t *testing.T) {
	e := NewExtractor(64, 1)
	if got := e.InsertSignatures(make([]byte, 64)); len(got) != 0 {
		t.Fatalf("zero line should yield no signatures, got %d", len(got))
	}
}

func TestInsertSignaturesCollapseDuplicates(t *testing.T) {
	e := NewExtractor(64, 1)
	// Only one non-trivial word, after the midpoint: both offsets
	// advance to the same word.
	line := makeLine(0, 0, 0, 0, 0, 0, 0, 0, 0, 0xABCD1234)
	sigs := e.InsertSignatures(line)
	if len(sigs) != 1 {
		t.Fatalf("duplicate signatures should collapse, got %d", len(sigs))
	}
}

func TestSearchSignaturesMaxAndDedup(t *testing.T) {
	e := NewExtractor(64, 1)
	words := make([]uint32, 16)
	for i := range words {
		words[i] = 0x10000000 + uint32(i) // all non-trivial, distinct
	}
	words[5] = words[3] // one duplicate
	line := makeLine(words...)
	sigs := e.SearchSignatures(line, 16)
	if len(sigs) != 15 {
		t.Fatalf("got %d signatures, want 15 (16 words, 1 dup)", len(sigs))
	}
	capped := e.SearchSignatures(line, 4)
	if len(capped) != 4 {
		t.Fatalf("max not honored: got %d", len(capped))
	}
}

func TestSearchSignaturesZeroLine(t *testing.T) {
	e := NewExtractor(64, 1)
	if got := e.SearchSignatures(make([]byte, 64), 16); len(got) != 0 {
		t.Fatalf("zero line should yield no search signatures, got %d", len(got))
	}
}

func TestNonTrivialWords(t *testing.T) {
	line := makeLine(0, 0xDEADBEEF, 1, 0xFFFFFF00, 0x11223344)
	if got := NonTrivialWords(line); got != 2 {
		t.Fatalf("NonTrivialWords = %d, want 2", got)
	}
}

func TestSimilarLinesShareSignatures(t *testing.T) {
	// Core premise of the paper: a line and a slightly edited copy
	// share most signatures, so the hash table can find them.
	e := NewExtractor(64, 1)
	rng := rand.New(rand.NewSource(5))
	base := make([]byte, 64)
	for i := range base {
		base[i] = byte(rng.Intn(256))
	}
	edited := append([]byte(nil), base...)
	binary.LittleEndian.PutUint32(edited[28:], 0x55667788) // edit one word
	a := e.SearchSignatures(base, 16)
	b := e.SearchSignatures(edited, 16)
	shared := 0
	set := map[Signature]bool{}
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		if set[s] {
			shared++
		}
	}
	if shared < 10 {
		t.Fatalf("edited copy shares only %d signatures", shared)
	}
}

func BenchmarkSearchSignatures(b *testing.B) {
	e := NewExtractor(64, 1)
	rng := rand.New(rand.NewSource(9))
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(rng.Intn(256))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SearchSignatures(line, 16)
	}
}

// BenchmarkSigScan times the packed-word triviality scan on a line with
// an interleaved trivial/non-trivial pattern (the advance kernel's
// worst case: it can't skip a whole 2-word chunk branch-free).
func BenchmarkSigScan(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(rng.Intn(256))
	}
	for w := 0; w < len(line)/WordSize; w += 2 {
		binary.LittleEndian.PutUint32(line[w*WordSize:], uint32(rng.Intn(2))) // trivial word
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if NonTrivialWords(line) == 0 {
			b.Fatal("line unexpectedly all-trivial")
		}
	}
}
