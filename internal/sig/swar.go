package sig

import (
	"encoding/binary"
	mathbits "math/bits"
)

// SWAR kernels for the signature scans. Lines are walked eight bytes at
// a time: one little-endian uint64 load covers two 32-bit sampling
// words (the lane at byte offset off in bits 0..31, the lane at off+4
// in bits 32..63), and the per-lane triviality test is evaluated
// branch-free on the packed word. The scalar loops these replace are
// retained in naive form by the property tests.

// nonTrivialMask reports which 32-bit lanes of an 8-byte chunk are
// non-trivial: bit 0 for the lane at the lower byte offset, bit 1 for
// the higher. A lane is trivial when its top 24 bits are all zero or
// all one (IsTrivial, Fig 6), so the test reduces to comparing the
// masked lane against 0 and against the mask itself — both evaluated
// with the branch-free (v|-v)>>63 nonzero reduction.
func nonTrivialMask(x uint64) uint {
	const m = uint64(0xFFFFFF00)
	a := x & m
	b := (x >> 32) & m
	af := a ^ m
	bf := b ^ m
	// (v|-v)>>63 is 1 iff v != 0; a lane is non-trivial iff it differs
	// from both all-zero and all-one top bits.
	na := ((a | -a) >> 63) & ((af | -af) >> 63)
	nb := ((b | -b) >> 63) & ((bf | -bf) >> 63)
	return uint(na | nb<<1)
}

// advance returns the first offset at or after start holding a
// non-trivial word, or -1 if none remains. Offsets move forward in
// 4-byte steps (Fig 6); chunks of two words are tested per load.
func advance(line []byte, start int) int {
	off := start
	for ; off+2*WordSize <= len(line); off += 2 * WordSize {
		if m := nonTrivialMask(binary.LittleEndian.Uint64(line[off:])); m != 0 {
			if m&1 != 0 {
				return off
			}
			return off + WordSize
		}
	}
	if off+WordSize <= len(line) && !IsTrivial(Word(line, off)) {
		return off
	}
	return -1
}

// NonTrivialWords counts non-trivial 32-bit words in the line; the
// search latency model uses it (fewer signatures → shorter search).
func NonTrivialWords(line []byte) int {
	n, off := 0, 0
	for ; off+2*WordSize <= len(line); off += 2 * WordSize {
		n += mathbits.OnesCount(uint(nonTrivialMask(binary.LittleEndian.Uint64(line[off:]))))
	}
	if off+WordSize <= len(line) && !IsTrivial(Word(line, off)) {
		n++
	}
	return n
}

// ZeroLine reports whether every byte of line is zero, eight bytes at a
// time. Zero lines yield no signatures and dominate several workloads,
// so engines short-circuit on them before any per-word work.
func ZeroLine(line []byte) bool {
	off := 0
	for ; off+8 <= len(line); off += 8 {
		if binary.LittleEndian.Uint64(line[off:]) != 0 {
			return false
		}
	}
	for ; off < len(line); off++ {
		if line[off] != 0 {
			return false
		}
	}
	return true
}
