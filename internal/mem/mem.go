// Package mem is the lazily-materialized backing store behind the
// simulated memory hierarchy: line contents are generated on first
// touch by the owning workload's content function and mutated by
// write-backs thereafter.
package mem

import "fmt"

// Store maps line addresses to 64-byte contents.
type Store struct {
	lineSize int
	data     map[uint64][]byte
	fill     func(lineAddr uint64) []byte

	// arena is bump-allocated backing for materialized lines: fill's
	// return may alias caller-owned scratch (workload generators hand
	// out views of their line cache), so the store copies — in chunks,
	// to keep the copy off the allocation profile.
	arena []byte

	// Reads/Writes count backing-store traffic (≈ DRAM accesses).
	Reads  uint64
	Writes uint64
}

// arenaChunkLines is how many lines one arena chunk holds.
const arenaChunkLines = 256

// alloc carves one line-sized buffer out of the arena.
func (s *Store) alloc() []byte {
	if len(s.arena) < s.lineSize {
		s.arena = make([]byte, arenaChunkLines*s.lineSize)
	}
	b := s.arena[:s.lineSize:s.lineSize]
	s.arena = s.arena[s.lineSize:]
	return b
}

// NewStore builds a store; fill materializes cold lines and must return
// exactly lineSize bytes.
func NewStore(lineSize int, fill func(lineAddr uint64) []byte) *Store {
	return &Store{lineSize: lineSize, data: make(map[uint64][]byte), fill: fill}
}

// Read returns the contents of lineAddr, materializing it if cold. The
// returned slice is owned by the store; callers must copy before
// mutating.
func (s *Store) Read(lineAddr uint64) []byte {
	s.Reads++
	if d, ok := s.data[lineAddr]; ok {
		return d
	}
	d := s.fill(lineAddr)
	if len(d) != s.lineSize {
		panic(fmt.Sprintf("mem: fill returned %dB for line %#x, want %dB", len(d), lineAddr, s.lineSize))
	}
	cp := s.alloc()
	copy(cp, d)
	s.data[lineAddr] = cp
	return cp
}

// Write replaces the contents of lineAddr (a write-back reaching
// memory). The data is copied.
func (s *Store) Write(lineAddr uint64, data []byte) {
	if len(data) != s.lineSize {
		panic(fmt.Sprintf("mem: write of %dB to line %#x, want %dB", len(data), lineAddr, s.lineSize))
	}
	s.Writes++
	if d, ok := s.data[lineAddr]; ok {
		copy(d, data)
		return
	}
	cp := s.alloc()
	copy(cp, data)
	s.data[lineAddr] = cp
}

// Lines returns how many lines have been materialized.
func (s *Store) Lines() int { return len(s.data) }
