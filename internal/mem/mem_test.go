package mem

import (
	"bytes"
	"testing"
)

func TestStoreLazyFill(t *testing.T) {
	fills := 0
	s := NewStore(4, func(a uint64) []byte {
		fills++
		return []byte{byte(a), 0, 0, 0}
	})
	d := s.Read(7)
	if d[0] != 7 || fills != 1 {
		t.Fatalf("read = %v, fills = %d", d, fills)
	}
	s.Read(7)
	if fills != 1 {
		t.Fatal("second read must not refill")
	}
	if s.Lines() != 1 || s.Reads != 2 {
		t.Fatalf("lines=%d reads=%d", s.Lines(), s.Reads)
	}
}

func TestStoreWrite(t *testing.T) {
	s := NewStore(4, func(uint64) []byte { return make([]byte, 4) })
	w := []byte{1, 2, 3, 4}
	s.Write(9, w)
	w[0] = 99
	if got := s.Read(9); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("write not copied: %v", got)
	}
	if s.Writes != 1 {
		t.Fatalf("writes = %d", s.Writes)
	}
}

func TestStorePanicsOnSizeMismatch(t *testing.T) {
	s := NewStore(4, func(uint64) []byte { return make([]byte, 3) })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad fill size should panic")
			}
		}()
		s.Read(1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad write size should panic")
			}
		}()
		s.Write(1, []byte{1})
	}()
}
