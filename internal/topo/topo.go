// Package topo is the discrete-event N-chip topology engine: it
// generalizes the two-chip simulators in internal/sim to arbitrary
// chip counts wired as a ring, a 2D mesh (XY routing), or a star, with
// one CABLE home/remote end pair per directed link.
//
// The engine runs in three passes (see engine.go):
//
//  1. Schedule (serial DES): a monotonic virtual-time event queue
//     (container/heap, ordered by (time, seq)) drives per-chip arrival
//     processes through each chip's shared encoder queue and each
//     directed link's FIFO wire queue at raw (uncompressed) line cost.
//     This pass discovers, per link, the exact ordered transfer
//     sequence — the frozen content schedule — plus the raw-baseline
//     makespan.
//  2. Encode (parallel by link): each link independently replays its
//     frozen transfer sequence through a private CABLE pipeline (home
//     cache + HomeEnd, remote cache + RemoteEnd, link meter, per-link
//     fault injector), producing the compressed on-wire size of every
//     transfer. Links never share mutable state, so this pass
//     partitions across a bounded worker pool and stays bit-identical
//     at any parallelism.
//  3. Replay (serial DES): the same event-queue simulation as pass 1,
//     re-timed with the measured compressed wire costs, yields the
//     CABLE makespan, per-link utilization and queue delays, and — in
//     recording runs — the per-link flight-recorder windows, sealed in
//     deterministic virtual-time order.
//
// Traffic is read-only fills: line content is a pure function of the
// line address (one shared content function backs every chip), which
// is what makes per-link encode outcomes independent of other links
// and passes 2/3 a pure function of the pass-1 schedule.
package topo

import (
	"encoding/binary"
	"fmt"
	"sort"

	"cable/internal/core"
	"cable/internal/fault"
	"cable/internal/link"
	"cable/internal/obs"
	"cable/internal/sim"
	"cable/internal/trace"
	"cable/internal/workload/spec"
)

// Topology shapes.
const (
	ShapeRing = "ring"
	ShapeMesh = "mesh"
	ShapeStar = "star"
)

// Config drives one topology simulation. Every field except Metrics,
// Recorder and Parallelism is behavioral (folded into Digest);
// Parallelism only partitions work and cannot change any output bit.
type Config struct {
	// Shape is the interconnect: ShapeRing, ShapeMesh (2D, XY routing,
	// most-square factoring of Chips) or ShapeStar (hub is chip 0).
	Shape string
	// Chips is the number of chips (≥2).
	Chips int
	// Benchmark names the workload every chip runs (each chip is a
	// distinct instance with its own access stream over the shared
	// address space).
	Benchmark string
	// Transfers is the target number of per-link transfers (hop
	// crossings). Injection stops once the created messages account
	// for at least this many hops, so the realized count overshoots by
	// at most one route length.
	Transfers int
	// PageLines is the home-interleave granularity in lines (4 KB
	// pages = 64 lines): line addr a is homed on chip
	// (a/PageLines)%Chips.
	PageLines uint64
	// Seed drives the per-chip arrival processes (inter-arrival gaps).
	Seed uint64
	// MeanGap is the mean per-chip inter-arrival gap in link cycles.
	// The default (12) pushes the raw baseline past saturation on a
	// 16-chip mesh — hot XY links queue heavily — so the
	// bandwidth-starved regime the paper targets is actually exercised,
	// while the compressed replay stays below the knee.
	MeanGap int
	// EncodeCycles is each chip's encoder occupancy per transfer: all
	// of a chip's outgoing links share one encoder (the shared-home
	// contention point), so transfers serialize through it. This is the
	// pipeline's initiation interval, not its latency — latency cost is
	// the timing simulator's subject (fig17).
	EncodeCycles int
	// HopCycles is the router forward latency between a link's
	// delivery and the arrival at the next chip's encoder.
	HopCycles int
	// HomeBytes/HomeWays size each directed link's home-side
	// dictionary cache; RemoteBytes/RemoteWays its remote cache.
	HomeBytes, HomeWays     int
	RemoteBytes, RemoteWays int
	Link                    link.Config
	Cable                   core.Config
	// Verify checks every clean decode bit-exact against the home data
	// and panics on mismatch.
	Verify bool
	// Fault configures deterministic wire corruption. Each directed
	// link derives its own injector seed from Fault.Seed and the link
	// index, so fault patterns stay a pure per-link function of the
	// config and the link's transfer sequence.
	Fault fault.Config
	// Parallelism bounds the pass-2 worker pool (0 ⇒ GOMAXPROCS).
	// Observation-only for results: outputs are bit-identical at any
	// setting.
	Parallelism int
	// Metrics scopes obs counters (nil ⇒ process default registry).
	Metrics *obs.Registry
	// Recorder, when non-nil, attaches a flight recorder with one
	// track per directed link, fed at explicit virtual times during
	// the serial replay pass. Observation-only.
	Recorder *obs.Recorder
	// Workload, when non-nil, replaces Benchmark: every chip runs the
	// declarative multi-client mix (variant-decorated per chip, so the
	// chips' streams decorrelate while content stays a pure address
	// function), injecting at the mix's own emission times instead of
	// the uniform gap process. In this mode Transfers is the total
	// access budget, split evenly across chips and run to exhaustion —
	// phase-change fractions are exact over each chip's share — rather
	// than a hop-count stop target. Behavioral: folded into Digest.
	Workload *spec.Workload
	// Replay, when non-empty, replaces Benchmark with recorded
	// captures, one per chip (all of one benchmark), feeding each
	// chip's injected accesses verbatim while injection times still
	// come from the Seed gap process — so captures of the live
	// per-chip streams reproduce the live run bit-identically.
	// Mutually exclusive with Workload. Behavioral: folded into
	// Digest.
	Replay []*trace.Trace
}

// DefaultConfig is the 16-chip mesh the scale-out study uses.
func DefaultConfig(benchmark string) Config {
	cable := core.DefaultConfig()
	// Coherence-link hash tables are quarter-sized (§VI-A), same as
	// the multichip study.
	cable.HashSizeFactor = 0.25
	return Config{
		Shape:     ShapeMesh,
		Chips:     16,
		Benchmark: benchmark,
		Transfers: 200000,
		PageLines: 64,
		Seed:      1,
		MeanGap:   12,
		// The encoder accepts a new line every 4 cycles — every hop
		// re-encodes through the arrival chip's shared encoder, so a
		// longer interval would bottleneck raw and CABLE identically and
		// hide the wire relief this study measures. 4 cycles of router
		// forwarding per hop.
		EncodeCycles: 4,
		HopCycles:    4,
		HomeBytes:    1 << 20, HomeWays: 8,
		RemoteBytes: 256 << 10, RemoteWays: 8,
		Link:   link.DefaultConfig(),
		Cable:  cable,
		Verify: true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Shape {
	case ShapeRing, ShapeMesh, ShapeStar:
	default:
		return fmt.Errorf("topo: unknown shape %q (want %s|%s|%s)", c.Shape, ShapeRing, ShapeMesh, ShapeStar)
	}
	if c.Chips < 2 {
		return fmt.Errorf("topo: need ≥2 chips, got %d", c.Chips)
	}
	if c.Transfers <= 0 {
		return fmt.Errorf("topo: need a positive transfer target, got %d", c.Transfers)
	}
	if c.PageLines == 0 || c.MeanGap <= 0 || c.EncodeCycles <= 0 || c.HopCycles < 0 {
		return fmt.Errorf("topo: non-positive timing/interleave parameter")
	}
	if c.Workload != nil && len(c.Replay) > 0 {
		return fmt.Errorf("topo: combined workload spec + replay is not supported in topology runs (replay spec captures through the memlink driver)")
	}
	if c.Workload != nil && c.Benchmark != "" {
		return fmt.Errorf("topo: Benchmark and Workload are mutually exclusive")
	}
	if len(c.Replay) > 0 {
		if c.Benchmark != "" {
			return fmt.Errorf("topo: Benchmark and Replay are mutually exclusive")
		}
		if len(c.Replay) != c.Chips {
			return fmt.Errorf("topo: %d replay captures for %d chips (need one per chip)", len(c.Replay), c.Chips)
		}
		for i, t := range c.Replay {
			if t.Header.Benchmark != c.Replay[0].Header.Benchmark {
				return fmt.Errorf("topo: replay captures mix benchmarks %q (chip 0) and %q (chip %d)",
					c.Replay[0].Header.Benchmark, t.Header.Benchmark, i)
			}
		}
	}
	if c.Benchmark == "" && c.Workload == nil && len(c.Replay) == 0 {
		return fmt.Errorf("topo: no benchmark, workload, or replay configured")
	}
	return nil
}

// Digest fingerprints every behavioral field with the sim package's
// canonical digester, so topology cells share the experiments' memo
// map with the other simulators without aliasing. Metrics, Recorder
// and Parallelism are excluded (observation-only / partitioning-only).
func (c Config) Digest() sim.Digest {
	d := sim.NewDigester("topo/v1")
	d.Str(c.Shape)
	d.Int(c.Chips)
	d.Str(c.Benchmark)
	d.Int(c.Transfers)
	d.U64(c.PageLines)
	d.U64(c.Seed)
	d.Int(c.MeanGap)
	d.Int(c.EncodeCycles)
	d.Int(c.HopCycles)
	d.Int(c.HomeBytes)
	d.Int(c.HomeWays)
	d.Int(c.RemoteBytes)
	d.Int(c.RemoteWays)
	d.LinkConfig(c.Link)
	d.CoreConfig(c.Cable)
	d.Bool(c.Verify)
	// The per-link seed derivation (linkFaultConfig) is part of the
	// format; folding the base config covers it.
	d.FaultConfig(c.Fault)
	// Workload and Replay change the access schedule, so they split
	// memo cells: distinct specs (or captures) must never alias.
	d.Bool(c.Workload != nil)
	if c.Workload != nil {
		c.Workload.Fold(d)
	}
	d.Int(len(c.Replay))
	for _, t := range c.Replay {
		td := t.Digest()
		d.U64(binary.LittleEndian.Uint64(td[:8]))
		d.U64(binary.LittleEndian.Uint64(td[8:]))
	}
	return d.Sum()
}

// linkFaultConfig derives directed link li's injector configuration:
// same rates, a per-link decorrelated seed.
func linkFaultConfig(base fault.Config, li int) fault.Config {
	s := base.Seed + uint64(li)*0x9E3779B97F4A7C15
	base.Seed = splitmix64(&s)
	return base
}

// splitmix64 advances *s and returns the next value of the stream
// (same generator the fault injector uses).
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// linkMeta is one directed link's identity.
type linkMeta struct {
	src, dst int32
	name     string // "src->dst", zero-padded so dumps sort naturally
}

// Topology is the static interconnect: the directed link set (in
// deterministic construction order — ascending source, then ascending
// destination) and the routing function.
type Topology struct {
	shape  string
	chips  int
	w, h   int // mesh dimensions (w ≤ h); 0 for other shapes
	links  []linkMeta
	linkAt []int32 // [src*chips+dst] → link index, -1 if not adjacent
}

// meshDims factors n into the most-square w×h grid with w ≤ h.
func meshDims(n int) (w, h int) {
	w = 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			w = d
		}
	}
	return w, n / w
}

// buildTopology enumerates the directed links of a validated config.
func buildTopology(shape string, chips int) (*Topology, error) {
	t := &Topology{shape: shape, chips: chips, linkAt: make([]int32, chips*chips)}
	for i := range t.linkAt {
		t.linkAt[i] = -1
	}
	if shape == ShapeMesh {
		t.w, t.h = meshDims(chips)
	}
	neighbors := func(src int) []int {
		var ns []int
		switch shape {
		case ShapeRing:
			ns = append(ns, (src+1)%chips)
			if p := (src - 1 + chips) % chips; p != ns[0] {
				ns = append(ns, p)
			}
		case ShapeStar:
			if src == 0 {
				for d := 1; d < chips; d++ {
					ns = append(ns, d)
				}
			} else {
				ns = append(ns, 0)
			}
		case ShapeMesh:
			x, y := src%t.w, src/t.w
			if x > 0 {
				ns = append(ns, src-1)
			}
			if x < t.w-1 {
				ns = append(ns, src+1)
			}
			if y > 0 {
				ns = append(ns, src-t.w)
			}
			if y < t.h-1 {
				ns = append(ns, src+t.w)
			}
		}
		sort.Ints(ns)
		return ns
	}
	for src := 0; src < chips; src++ {
		for _, dst := range neighbors(src) {
			t.linkAt[src*chips+dst] = int32(len(t.links))
			t.links = append(t.links, linkMeta{
				src: int32(src), dst: int32(dst),
				name: fmt.Sprintf("%02d->%02d", src, dst),
			})
		}
	}
	if len(t.links) == 0 {
		return nil, fmt.Errorf("topo: %s with %d chips has no links", shape, chips)
	}
	return t, nil
}

// nextHop returns the next chip on the route from u toward dst (u ≠
// dst). Ring routes take the shorter direction (ties go clockwise);
// meshes route X-then-Y; stars go through hub 0.
func (t *Topology) nextHop(u, dst int) int {
	switch t.shape {
	case ShapeRing:
		fwd := (dst - u + t.chips) % t.chips
		if fwd <= t.chips-fwd {
			return (u + 1) % t.chips
		}
		return (u - 1 + t.chips) % t.chips
	case ShapeStar:
		if u == 0 {
			return dst
		}
		return 0
	default: // mesh, XY
		ux, uy := u%t.w, u/t.w
		dx, dy := dst%t.w, dst/t.w
		switch {
		case ux < dx:
			return u + 1
		case ux > dx:
			return u - 1
		case uy < dy:
			return u + t.w
		default:
			return u - t.w
		}
	}
}

// route appends the directed link indices from src to dst onto buf.
func (t *Topology) route(src, dst int, buf []int32) []int32 {
	for u := src; u != dst; {
		v := t.nextHop(u, dst)
		li := t.linkAt[u*t.chips+v]
		if li < 0 {
			panic(fmt.Sprintf("topo: no link %d->%d on a %s route %d->%d", u, v, t.shape, src, dst))
		}
		buf = append(buf, li)
		u = v
	}
	return buf
}
