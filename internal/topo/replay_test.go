package topo

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"cable/internal/trace"
	"cable/internal/workload"
	"cable/internal/workload/spec"
)

// topoMixJSON matches the acceptance shape: two clients, poisson +
// gamma-bursty arrivals, one phase change.
const topoMixJSON = `{
  "version": 1,
  "name": "topo-mix",
  "seed": 5,
  "mean_gap": 24,
  "clients": [
    {"id": "front", "rate_fraction": 0.6, "arrival": {"process": "poisson"},
     "content": {"base": "gcc"},
     "phases": [{"at": 0.5, "content": {"base": "omnetpp", "working_set_lines": 8192}}]},
    {"id": "batch", "rate_fraction": 0.4, "arrival": {"process": "gamma", "cv": 3},
     "content": {"base": "mcf", "stream_frac": 0.5}}
  ]
}`

func specConfig(t *testing.T, shape string, chips int) Config {
	t.Helper()
	w, err := spec.Parse([]byte(topoMixJSON))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(shape, chips)
	cfg.Benchmark = ""
	cfg.Workload = w
	return cfg
}

// TestTopoSpecDeterministicAcrossParallelism runs the spec-driven mesh
// serial and parallel: identical results bit for bit.
func TestTopoSpecDeterministicAcrossParallelism(t *testing.T) {
	cfg := specConfig(t, ShapeMesh, 4)
	cfg.Parallelism = 1
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("spec-driven topology run differs across parallelism")
	}
	if serial.LinkTransfers == 0 {
		t.Fatal("spec-driven run moved no traffic")
	}
}

// recordChip captures chip c's live stream: the same benchmark,
// instance c, base 0 — exactly what benchFeed draws.
func recordChip(t *testing.T, bench string, c, n int) *trace.Trace {
	t.Helper()
	gen, err := workload.New(bench, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Record(&buf, gen, n); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTopoReplayMatchesLive is the record→replay contract for the
// topology engine: captures of the live per-chip streams, replayed
// with the same seed (injection gaps), reproduce the live run — every
// per-link table included — bit for bit.
func TestTopoReplayMatchesLive(t *testing.T) {
	cfg := testConfig(ShapeMesh, 4)
	live, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayCfg := cfg
	replayCfg.Benchmark = ""
	replayCfg.Replay = make([]*trace.Trace, cfg.Chips)
	for c := 0; c < cfg.Chips; c++ {
		// Transfers records per chip over-covers any chip's share of
		// the injection budget.
		replayCfg.Replay[c] = recordChip(t, cfg.Benchmark, c, cfg.Transfers)
	}
	replay, err := Run(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replay) {
		t.Fatal("topology replay diverged from the live run")
	}
}

// TestTopoReplayExhaustedMidSchedule pins the dry-capture error: too
// few records per chip must fail hard, wrapping trace.ErrExhausted.
func TestTopoReplayExhaustedMidSchedule(t *testing.T) {
	cfg := testConfig(ShapeRing, 2)
	cfg.Benchmark = ""
	cfg.Replay = []*trace.Trace{
		recordChip(t, "dealII", 0, 10),
		recordChip(t, "dealII", 1, 10),
	}
	_, err := Run(cfg)
	if err == nil || !errors.Is(err, trace.ErrExhausted) {
		t.Fatalf("want error wrapping trace.ErrExhausted, got %v", err)
	}
}

// TestTopoValidateWorkloadSources pins the source mutual-exclusion
// rules added with spec/replay support.
func TestTopoValidateWorkloadSources(t *testing.T) {
	w, err := spec.Parse([]byte(topoMixJSON))
	if err != nil {
		t.Fatal(err)
	}
	capture := recordChip(t, "dealII", 0, 10)

	specAndBench := testConfig(ShapeRing, 2)
	specAndBench.Workload = w
	if err := specAndBench.Validate(); err == nil {
		t.Fatal("Workload + Benchmark should be rejected")
	}

	specAndReplay := testConfig(ShapeRing, 2)
	specAndReplay.Benchmark = ""
	specAndReplay.Workload = w
	specAndReplay.Replay = []*trace.Trace{capture, capture}
	if err := specAndReplay.Validate(); err == nil {
		t.Fatal("Workload + Replay should be rejected in topology runs")
	}

	wrongCount := testConfig(ShapeRing, 2)
	wrongCount.Benchmark = ""
	wrongCount.Replay = []*trace.Trace{capture}
	if err := wrongCount.Validate(); err == nil {
		t.Fatal("chip/capture count mismatch should be rejected")
	}

	noSource := testConfig(ShapeRing, 2)
	noSource.Benchmark = ""
	if err := noSource.Validate(); err == nil {
		t.Fatal("configs without any workload source should be rejected")
	}
}

// TestTopoWorkloadDigestsDistinct: spec and replay configurations key
// distinct memo cells from the benchmark run and from each other.
func TestTopoWorkloadDigestsDistinct(t *testing.T) {
	bench := testConfig(ShapeRing, 2)
	specCfg := specConfig(t, ShapeRing, 2)
	replayCfg := testConfig(ShapeRing, 2)
	replayCfg.Benchmark = ""
	replayCfg.Replay = []*trace.Trace{
		recordChip(t, "dealII", 0, 10),
		recordChip(t, "dealII", 1, 10),
	}
	seen := map[[16]byte]string{}
	for name, cfg := range map[string]Config{
		"bench": bench, "spec": specCfg, "replay": replayCfg,
	} {
		d := cfg.Digest()
		if prev, ok := seen[d]; ok {
			t.Fatalf("digest collision: %s aliases %s", name, prev)
		}
		seen[d] = name
	}
}
