package topo

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cable/internal/bits"
	"cable/internal/cache"
	"cable/internal/compress"
	"cable/internal/core"
	"cable/internal/fault"
	"cable/internal/link"
	"cable/internal/mem"
	"cable/internal/obs"
	"cable/internal/stats"
)

// LinkStat is one directed link's outcome.
type LinkStat struct {
	// Name is "src->dst" (zero-padded); Src/Dst are the chip ids.
	Name     string
	Src, Dst int
	// Transfers counts every hop crossing (dictionary hits included);
	// Hits is the subset delivered as a header-only cache reference.
	Transfers, Hits uint64
	// SourceBits/WireBits are the pre/post-compression totals (wire
	// includes raw-resend recovery bits); Toggles counts wire bit
	// transitions on full-image transfers.
	SourceBits, WireBits, Toggles uint64
	// FaultsInjected/DecodeErrors/RawFallbacks account the per-link
	// degradation pipeline.
	FaultsInjected, DecodeErrors, RawFallbacks uint64
	// BusyCycles/QueueCycles come from the CABLE replay pass: wire
	// occupancy and total wire-queue waiting time. RawBusyCycles is
	// the raw baseline's occupancy of the same link.
	BusyCycles, RawBusyCycles, QueueCycles uint64
}

// Ratio is the link's compression ratio.
func (s *LinkStat) Ratio() float64 {
	if s.WireBits == 0 {
		return 1
	}
	return float64(s.SourceBits) / float64(s.WireBits)
}

// Result is one topology simulation's outcome. Plain data: safe to
// deep-copy and memoize.
type Result struct {
	Shape         string
	Chips, Links  int
	Width, Height int // mesh grid (0 for ring/star)

	// Accesses/LocalAccesses count generator draws and same-chip hits;
	// Messages is the number of injected cross-chip fills.
	Accesses, LocalAccesses, Messages uint64
	// LinkTransfers counts hop crossings; RemoteHits the header-only
	// subset.
	LinkTransfers, RemoteHits uint64
	FaultsInjected            uint64
	DecodeErrors              uint64
	RawFallbacks              uint64

	// Total aggregates compression across links.
	Total   stats.Ratio
	Toggles uint64

	// RawMakespan/CableMakespan are the two passes' completion times
	// in link cycles; their ratio is the bandwidth-relief speedup.
	RawMakespan, CableMakespan uint64

	PerLink []LinkStat
}

// Ratio returns the aggregate compression ratio.
func (r *Result) Ratio() float64 { return r.Total.Value() }

// Speedup is the raw/CABLE makespan ratio (>1 when compression
// relieves queueing).
func (r *Result) Speedup() float64 {
	if r.CableMakespan == 0 {
		return 1
	}
	return float64(r.RawMakespan) / float64(r.CableMakespan)
}

// MeanUtilization is the mean CABLE-pass wire occupancy across links.
func (r *Result) MeanUtilization() float64 {
	if r.CableMakespan == 0 || len(r.PerLink) == 0 {
		return 0
	}
	var busy uint64
	for i := range r.PerLink {
		busy += r.PerLink[i].BusyCycles
	}
	return float64(busy) / (float64(r.CableMakespan) * float64(len(r.PerLink)))
}

// topoCounters is the run-level obs set, registered up front in
// deterministic order. The degradation trio is registered only when
// fault injection is configured, so clean runs keep `-metrics` dumps
// byte-identical to a build without the fault layer.
type topoCounters struct {
	accesses, local, messages     *obs.Counter
	transfers, hits               *obs.Counter
	sourceBits, wireBits          *obs.Counter
	faults, decodeErrs, fallbacks *obs.Counter
	perLink                       []perLinkCounters
}

type perLinkCounters struct {
	transfers, hits, wireBits *obs.Counter
}

func topoMetricsIn(reg *obs.Registry, t *Topology, withFault bool) *topoCounters {
	if reg == nil {
		reg = obs.Default()
	}
	tc := &topoCounters{
		accesses:   reg.Counter("topo.accesses"),
		local:      reg.Counter("topo.local_accesses"),
		messages:   reg.Counter("topo.messages"),
		transfers:  reg.Counter("topo.link_transfers"),
		hits:       reg.Counter("topo.remote_hits"),
		sourceBits: reg.Counter("topo.source_bits"),
		wireBits:   reg.Counter("topo.wire_bits"),
	}
	if withFault {
		tc.faults = reg.Counter("topo.faults_injected")
		tc.decodeErrs = reg.Counter("topo.decode_errors")
		tc.fallbacks = reg.Counter("topo.raw_fallbacks")
	}
	// Per-link counters keyed by link ID ("topo.link.03_07.*"):
	// registered in link construction order so the name set — and
	// therefore every dump — is a pure function of the topology.
	tc.perLink = make([]perLinkCounters, len(t.links))
	for i, lm := range t.links {
		base := fmt.Sprintf("topo.link.%02d_%02d.", lm.src, lm.dst)
		tc.perLink[i] = perLinkCounters{
			transfers: reg.Counter(base + "transfers"),
			hits:      reg.Counter(base + "hits"),
			wireBits:  reg.Counter(base + "wire_bits"),
		}
	}
	return tc
}

// linkPipe is one directed link's private CABLE pipeline, alive only
// while its frozen transfer sequence is being encoded (pass 2).
type linkPipe struct {
	home, remote *cache.Cache
	he           *core.HomeEnd
	re           *core.RemoteEnd
	lnk          *link.Link
	inj          *fault.Injector
	mw           bits.Writer
	ctrlBits     int
}

func (e *engine) newLinkPipe(li int, reg *obs.Registry) (*linkPipe, error) {
	lm := e.topo.links[li]
	home := cache.New(cache.Config{
		Name: "topo-h" + lm.name, SizeBytes: e.cfg.HomeBytes, Ways: e.cfg.HomeWays, LineSize: 64,
	})
	remote := cache.New(cache.Config{
		Name: "topo-r" + lm.name, SizeBytes: e.cfg.RemoteBytes, Ways: e.cfg.RemoteWays, LineSize: 64,
	})
	cableCfg := e.cfg.Cable
	cableCfg.Metrics = reg
	he, err := core.NewHomeEnd(cableCfg, home, remote)
	if err != nil {
		return nil, err
	}
	re, err := core.NewRemoteEnd(cableCfg, remote)
	if err != nil {
		return nil, err
	}
	return &linkPipe{
		home: home, remote: remote, he: he, re: re,
		lnk: link.NewIn(e.cfg.Link, reg),
		inj: fault.NewIn(linkFaultConfig(e.cfg.Fault, li), reg),
		// A dictionary hit crosses the wire as a line reference plus a
		// small message header instead of data.
		ctrlBits: remote.LineIDBits() + 8,
	}, nil
}

// release recycles the pipeline's chip state through the shared pools
// (cache line backings, hash tables, way maps, encoder scratch).
func (p *linkPipe) release() {
	p.he.Release()
	p.re.Release()
	p.home.Release()
	p.remote.Release()
}

// encodeLink replays link li's frozen transfer sequence through its
// CABLE pipeline, filling the schedule's wireBits (and, when
// recording, toggle/fault sidecars) and the link's stat row. Links are
// fully independent: private caches, ends, link meter and injector, a
// worker-local backing store — so any assignment of links to workers
// produces identical bits.
func (e *engine) encodeLink(li int, p *linkPipe, store *mem.Store, st *LinkStat, recording bool) {
	s := e.sched
	addrs := s.linkAddrs[li]
	s.wireBits[li] = make([]int32, len(addrs))
	if recording {
		s.recToggles[li] = make([]uint32, len(addrs))
		s.recFlags[li] = make([]uint8, len(addrs))
	}
	idxBits, wayBits := p.remote.IndexBits(), p.remote.WayBits()

	// rawResend recovers a failed decode with a clean uncompressed
	// re-transfer, charged on top of the failed attempt (same contract
	// as the two-chip simulators).
	rawResend := func(data []byte, ackSeq uint64) int {
		st.RawFallbacks++
		pay := core.Payload{Raw: data, AckSeq: ackSeq}
		var enc compress.Encoded
		if p.inj != nil {
			enc = pay.MarshalGuardedInto(&p.mw, idxBits, wayBits)
		} else {
			enc = pay.MarshalInto(&p.mw, idxBits, wayBits)
		}
		return p.lnk.SendWire(enc.Data, enc.NBits)
	}
	corruptAndDecode := func(pay core.Payload, want []byte, lineAddr uint64) (wire int, faulted bool, derr error) {
		enc := pay.MarshalGuardedInto(&p.mw, idxBits, wayBits)
		wire = p.lnk.SendWire(enc.Data, enc.NBits)
		nb, corrupted := p.inj.Corrupt(enc.Data, enc.NBits)
		var got []byte
		q, derr := core.UnmarshalPayloadGuarded(compress.Encoded{Data: enc.Data, NBits: nb},
			idxBits, wayBits, 64)
		if derr == nil {
			q.AckSeq = pay.AckSeq
			got, derr = p.re.DecodeFill(q)
		}
		if corrupted {
			st.FaultsInjected++
			if derr == nil && !bytes.Equal(got, want) {
				derr = fmt.Errorf("topo: corruption of line %#x escaped the CRC guard: %w", lineAddr, core.ErrCRCMismatch)
			}
			if derr == nil {
				derr = fmt.Errorf("topo: corrupted frame for line %#x absorbed: %w", lineAddr, core.ErrCRCMismatch)
			}
		} else {
			if derr != nil && e.cfg.Verify {
				panic(fmt.Sprintf("topo: decode of clean image %#x: %v", lineAddr, derr))
			}
			if derr == nil && e.cfg.Verify && !bytes.Equal(got, want) {
				panic(fmt.Sprintf("topo: clean transfer corrupted %#x", lineAddr))
			}
		}
		return wire, corrupted, derr
	}

	for k, addr := range addrs {
		st.Transfers++
		st.SourceBits += 64 * 8

		// The link's home side always holds the line it is about to
		// send (it models the sender chip's copy).
		if _, _, ok := p.home.Probe(addr); !ok {
			idx := p.home.IndexOf(addr)
			way := p.home.VictimWay(idx)
			if victim, ok := p.home.LineAddrOf(cache.LineID{Index: idx, Way: way}); ok {
				p.he.OnHomeEviction(victim)
			}
			p.home.InsertAt(addr, store.Read(addr), cache.Shared, way)
		}

		// Dictionary hit: the receiving side of this link still holds
		// the line, so the transfer degenerates to a header-only
		// reference (the multi-hop payoff of a cache-based encoder).
		if _, _, ok := p.remote.Access(addr); ok {
			st.Hits++
			wire := p.lnk.Send(p.ctrlBits)
			st.WireBits += uint64(wire)
			s.wireBits[li][k] = int32(wire)
			continue
		}

		// Full CABLE fill into the remote cache's victim way, with
		// explicit eviction notices (the §IV-B ack protocol).
		idx := p.remote.IndexOf(addr)
		way := p.remote.VictimWay(idx)
		if victim, ok := p.remote.LineAddrOf(cache.LineID{Index: idx, Way: way}); ok {
			ev, _ := p.remote.Invalidate(victim)
			seq := p.re.OnEviction(ev.ID, ev.Data)
			p.he.OnRemoteEviction(ev.ID, seq)
		}
		pay, _, err := p.he.EncodeFill(addr, cache.Shared, way)
		if err != nil {
			panic(fmt.Sprintf("topo: fill encode %#x on %s: %v", addr, st.Name, err))
		}
		want, _, _ := p.home.Probe(addr)
		togglesBefore := p.lnk.Toggles
		var wire int
		var data []byte
		if p.inj != nil {
			w, faulted, derr := corruptAndDecode(pay, want.Data, addr)
			wire = w
			if recording && faulted {
				s.recFlags[li][k] |= flagFault
			}
			if derr != nil {
				st.DecodeErrors++
				wire += rawResend(want.Data, pay.AckSeq)
				if recording {
					s.recFlags[li][k] |= flagDegrade
				}
			}
			data = want.Data
		} else {
			var derr error
			data, derr = p.re.DecodeFill(pay)
			if derr != nil && e.cfg.Verify {
				panic(fmt.Sprintf("topo: decode %#x on %s: %v", addr, st.Name, derr))
			}
			if derr == nil && e.cfg.Verify && !bytes.Equal(data, want.Data) {
				panic(fmt.Sprintf("topo: fill corrupted %#x on %s", addr, st.Name))
			}
			enc := pay.MarshalInto(&p.mw, idxBits, wayBits)
			wire = p.lnk.SendWire(enc.Data, enc.NBits)
			if derr != nil {
				st.DecodeErrors++
				wire += rawResend(want.Data, pay.AckSeq)
				data = want.Data
			}
		}
		st.WireBits += uint64(wire)
		st.Toggles += p.lnk.Toggles - togglesBefore
		if recording {
			s.recToggles[li][k] = uint32(p.lnk.Toggles - togglesBefore)
		}
		s.wireBits[li][k] = int32(wire)
		p.remote.InsertAt(addr, data, cache.Shared, way)
		p.re.OnFillInstalled(cache.LineID{Index: idx, Way: way}, data, cache.Shared)
		p.re.OnAck(pay.AckSeq)
	}
}

// Run executes one topology simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t, err := buildTopology(cfg.Shape, cfg.Chips)
	if err != nil {
		return nil, err
	}
	tc := topoMetricsIn(cfg.Metrics, t, cfg.Fault.Enabled())
	shard := obs.NextShard()

	// Pass 1 — schedule: the per-chip injection feed (live arrival
	// processes, a workload mix, or recorded captures) through the raw
	// baseline, freezing each link's transfer sequence.
	feed, err := newInjectFeed(cfg)
	if err != nil {
		return nil, err
	}
	e := newEngine(cfg, t)
	recording := cfg.Recorder != nil
	e.sched.wireBits = make([][]int32, len(t.links))
	if recording {
		e.sched.recToggles = make([][]uint32, len(t.links))
		e.sched.recFlags = make([][]uint8, len(t.links))
	}
	rawPass, err := e.simulate(true, feed, nil, nil)
	if err != nil {
		return nil, err
	}

	// Pass 2 — encode: partition links across a bounded worker pool.
	// Each worker owns a backing store over the shared pure content
	// function (line bytes are a function of the address alone, so
	// worker-local stores are consistent by construction) and recycles
	// one link's chip state into the pools before starting the next.
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(t.links) {
		workers = len(t.links)
	}
	perLink := make([]LinkStat, len(t.links))
	for i, lm := range t.links {
		perLink[i] = LinkStat{Name: lm.name, Src: int(lm.src), Dst: int(lm.dst)}
	}
	newContent := newContentFactory(cfg)
	errs := make([]error, len(t.links))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The content function's line-cache traffic depends on which
			// links this worker happens to claim — an artifact of the
			// partition, not of the simulated system — so it reports into
			// a throwaway registry to keep metric dumps identical at any
			// parallelism.
			content, gerr := newContent()
			if gerr != nil {
				// Claim links so the pool still drains; each claimed
				// link reports the construction error.
				for {
					li := int(next.Add(1)) - 1
					if li >= len(t.links) {
						return
					}
					errs[li] = gerr
				}
			}
			store := mem.NewStore(64, content)
			for {
				li := int(next.Add(1)) - 1
				if li >= len(t.links) {
					return
				}
				pipe, perr := e.newLinkPipe(li, cfg.Metrics)
				if perr != nil {
					errs[li] = perr
					continue
				}
				e.encodeLink(li, pipe, store, &perLink[li], recording)
				pipe.release()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Pass 3 — replay: identical event discipline, compressed wire
	// costs, flight windows sealed at wire-completion virtual times.
	var tracks []*obs.Track
	if recording {
		tracks = make([]*obs.Track, len(t.links))
		for i, lm := range t.links {
			tracks[i] = cfg.Recorder.Track("link" + lm.name)
		}
	}
	cablePass, err := e.simulate(false, nil, cfg.Recorder, tracks)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Shape: cfg.Shape, Chips: cfg.Chips, Links: len(t.links),
		Width: t.w, Height: t.h,
		Accesses:      e.sched.accesses,
		LocalAccesses: e.sched.local,
		Messages:      uint64(len(e.sched.msgAddr)),
		RawMakespan:   rawPass.makespan,
		CableMakespan: cablePass.makespan,
		PerLink:       perLink,
	}
	for i := range perLink {
		st := &res.PerLink[i]
		st.BusyCycles = cablePass.busy[i]
		st.RawBusyCycles = rawPass.busy[i]
		st.QueueCycles = cablePass.queueWait[i]
		res.LinkTransfers += st.Transfers
		res.RemoteHits += st.Hits
		res.FaultsInjected += st.FaultsInjected
		res.DecodeErrors += st.DecodeErrors
		res.RawFallbacks += st.RawFallbacks
		res.Toggles += st.Toggles
		res.Total.Add(int(st.SourceBits), int(st.WireBits))
		tc.perLink[i].transfers.Add(shard, st.Transfers)
		tc.perLink[i].hits.Add(shard, st.Hits)
		tc.perLink[i].wireBits.Add(shard, st.WireBits)
	}
	tc.accesses.Add(shard, res.Accesses)
	tc.local.Add(shard, res.LocalAccesses)
	tc.messages.Add(shard, res.Messages)
	tc.transfers.Add(shard, res.LinkTransfers)
	tc.hits.Add(shard, res.RemoteHits)
	tc.sourceBits.Add(shard, res.Total.SourceBits)
	tc.wireBits.Add(shard, res.Total.WireBits)
	if tc.faults != nil {
		tc.faults.Add(shard, res.FaultsInjected)
		tc.decodeErrs.Add(shard, res.DecodeErrors)
		tc.fallbacks.Add(shard, res.RawFallbacks)
	}
	return res, nil
}
