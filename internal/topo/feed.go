package topo

import (
	"errors"
	"fmt"

	"cable/internal/obs"
	"cable/internal/trace"
	"cable/internal/workload"
	"cable/internal/workload/spec"
)

// injectFeed feeds the schedule pass: each chip's access stream plus
// the virtual times at which the accesses inject. Implementations keep
// strictly per-chip state (private generator/sampler/capture cursors),
// so the stream each chip sees is a pure function of the config — the
// event queue's pop order cannot perturb it.
type injectFeed interface {
	// firstAt returns chip c's first injection time; ok=false means
	// the chip injects nothing at all.
	firstAt(c int32) (at uint64, ok bool)
	// next returns chip c's current access and the absolute time of
	// the chip's next injection. more=false ends the chip's stream; a
	// non-nil error aborts the run (a capture ran dry mid-schedule).
	next(c int32, now uint64) (a workload.Access, nextAt uint64, more bool, err error)
	// hopTarget reports whether cfg.Transfers stops injection as a
	// hop-count target (gap-process feeds) or the streams run to
	// exhaustion (spec mixes, whose budget already encodes the length).
	hopTarget() bool
}

// gapProcess is the uniform per-chip inter-arrival process shared by
// the benchmark and replay feeds: one splitmix64 stream per chip,
// derived from the run seed, gaps uniform in [1, 2*MeanGap-1].
type gapProcess struct {
	state   []uint64
	meanGap uint64
}

func newGapProcess(seed uint64, chips, meanGap int) *gapProcess {
	g := &gapProcess{state: make([]uint64, chips), meanGap: uint64(meanGap)}
	for c := range g.state {
		st := seed + uint64(c)*0x9E3779B97F4A7C15
		g.state[c] = splitmix64(&st)
	}
	return g
}

func (g *gapProcess) gap(c int32) uint64 {
	u := splitmix64(&g.state[c])
	return 1 + u%(2*g.meanGap-1)
}

// benchFeed is the classic path: every chip runs its own instance of
// one benchmark, injecting on the uniform gap process.
type benchFeed struct {
	gens []*workload.Generator
	gaps *gapProcess
}

func newBenchFeed(cfg Config) (*benchFeed, error) {
	f := &benchFeed{
		gens: make([]*workload.Generator, cfg.Chips),
		gaps: newGapProcess(cfg.Seed, cfg.Chips, cfg.MeanGap),
	}
	for c := range f.gens {
		g, err := workload.NewIn(cfg.Benchmark, c, 0, cfg.Metrics)
		if err != nil {
			return nil, err
		}
		f.gens[c] = g
	}
	return f, nil
}

func (f *benchFeed) firstAt(c int32) (uint64, bool) { return f.gaps.gap(c), true }

func (f *benchFeed) next(c int32, now uint64) (workload.Access, uint64, bool, error) {
	return f.gens[c].Next(), now + f.gaps.gap(c), true, nil
}

func (f *benchFeed) hopTarget() bool { return true }

// replayFeed substitutes each chip's generator with a recorded capture
// (addresses rebased to the engine's zero-based space) while injection
// times still come from the run seed's gap process — so replaying
// captures of the live per-chip streams reproduces the live schedule,
// and with it every per-link table, bit for bit.
type replayFeed struct {
	chips []replayChip
	gaps  *gapProcess
}

type replayChip struct {
	accs []workload.Access
	base uint64
	pos  int
}

func newReplayFeed(cfg Config) (*replayFeed, error) {
	f := &replayFeed{
		chips: make([]replayChip, cfg.Chips),
		gaps:  newGapProcess(cfg.Seed, cfg.Chips, cfg.MeanGap),
	}
	for c, t := range cfg.Replay {
		f.chips[c] = replayChip{accs: t.Accesses, base: t.Header.AddrBase}
	}
	return f, nil
}

func (f *replayFeed) firstAt(c int32) (uint64, bool) {
	return f.gaps.gap(c), true
}

// next hard-errors on a dry capture instead of ending the chip's
// stream: a live generator never runs out, so a silent early stop
// would quietly diverge from the run being reproduced.
func (f *replayFeed) next(c int32, now uint64) (workload.Access, uint64, bool, error) {
	rc := &f.chips[c]
	if rc.pos >= len(rc.accs) {
		return workload.Access{}, 0, false, fmt.Errorf(
			"topo: chip %d capture exhausted after %d records mid-schedule: %w",
			c, rc.pos, trace.ErrExhausted)
	}
	a := rc.accs[rc.pos]
	rc.pos++
	a.LineAddr -= rc.base
	return a, now + f.gaps.gap(c), true, nil
}

func (f *replayFeed) hopTarget() bool { return true }

// specFeed runs the declarative workload mix on every chip, variant-
// decorated per chip so the chips' address streams decorrelate while
// content stays one pure function of the address. Injection times are
// the mix's own emission times (the clients' arrival processes), and
// each chip's mix runs its budget — cfg.Transfers split evenly across
// chips — to exhaustion, which keeps phase-change fractions exact.
type specFeed struct {
	pending []spec.Emission
	mixes   []*spec.Mix
	// left counts each chip's remaining emissions: a live mix samples
	// forever (its Budget only anchors phase boundaries), so the feed
	// enforces the per-chip access budget itself.
	left []uint64
}

func newSpecFeed(cfg Config) (*specFeed, error) {
	per := cfg.Transfers / cfg.Chips
	if per < 1 {
		per = 1
	}
	f := &specFeed{
		pending: make([]spec.Emission, cfg.Chips),
		mixes:   make([]*spec.Mix, cfg.Chips),
		left:    make([]uint64, cfg.Chips),
	}
	for c := 0; c < cfg.Chips; c++ {
		m, err := spec.NewMix(cfg.Workload, spec.MixOptions{
			Variant:  uint64(c),
			Budget:   uint64(per),
			Registry: cfg.Metrics,
		})
		if err != nil {
			return nil, err
		}
		f.mixes[c] = m
		e, err := m.Next()
		if err != nil {
			if errors.Is(err, spec.ErrExhausted) {
				continue
			}
			return nil, err
		}
		f.pending[c] = e
		f.left[c] = uint64(per)
	}
	return f, nil
}

func (f *specFeed) firstAt(c int32) (uint64, bool) {
	return f.pending[c].At, f.left[c] > 0
}

func (f *specFeed) next(c int32, now uint64) (workload.Access, uint64, bool, error) {
	a := f.pending[c].Access
	f.left[c]--
	if f.left[c] == 0 {
		return a, 0, false, nil
	}
	e, err := f.mixes[c].Next()
	if err != nil {
		if errors.Is(err, spec.ErrExhausted) {
			return a, 0, false, nil
		}
		return a, 0, false, err
	}
	f.pending[c] = e
	return a, e.At, true, nil
}

func (f *specFeed) hopTarget() bool { return false }

// newInjectFeed compiles the config's workload selection (Validate has
// already checked mutual exclusion) into the schedule pass's feed.
func newInjectFeed(cfg Config) (injectFeed, error) {
	switch {
	case cfg.Workload != nil:
		return newSpecFeed(cfg)
	case len(cfg.Replay) > 0:
		return newReplayFeed(cfg)
	default:
		return newBenchFeed(cfg)
	}
}

// newContentFactory returns the per-worker content-function builder
// for the encode pass. Line content is a pure function of the address
// in every mode, so worker-local instances are consistent by
// construction; each reports into a throwaway registry because which
// worker materializes which lines is a partition artifact.
func newContentFactory(cfg Config) func() (func(uint64) []byte, error) {
	if cfg.Workload != nil {
		return func() (func(uint64) []byte, error) {
			ct, err := spec.NewContentTable(cfg.Workload, obs.NewRegistry())
			if err != nil {
				return nil, err
			}
			return ct.LineData, nil
		}
	}
	bench := cfg.Benchmark
	if len(cfg.Replay) > 0 {
		bench = cfg.Replay[0].Header.Benchmark
	}
	return func() (func(uint64) []byte, error) {
		g, err := workload.NewIn(bench, 0, 0, obs.NewRegistry())
		if err != nil {
			return nil, err
		}
		return g.LineData, nil
	}
}
