package topo

import (
	"os"
	"reflect"
	"strconv"
	"testing"

	"cable/internal/fault"
	"cable/internal/obs"
)

// testConfig is a small-but-nontrivial cell: every chip sends, every
// link carries traffic, and the caches are small enough to evict.
func testConfig(shape string, chips int) Config {
	cfg := DefaultConfig("dealII")
	cfg.Shape = shape
	cfg.Chips = chips
	cfg.Transfers = 6000
	cfg.HomeBytes = 64 << 10
	cfg.RemoteBytes = 32 << 10
	return cfg
}

func TestMeshDims(t *testing.T) {
	cases := map[int][2]int{2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 7: {1, 7}, 8: {2, 4}, 12: {3, 4}, 16: {4, 4}}
	for n, want := range cases {
		w, h := meshDims(n)
		if w != want[0] || h != want[1] {
			t.Errorf("meshDims(%d) = %dx%d, want %dx%d", n, w, h, want[0], want[1])
		}
	}
}

func TestRouting(t *testing.T) {
	// Ring: shortest direction, ties clockwise.
	ring, err := buildTopology(ShapeRing, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := ring.nextHop(0, 2); got != 1 {
		t.Errorf("ring 0->2 next hop = %d, want 1", got)
	}
	if got := ring.nextHop(0, 5); got != 5 {
		t.Errorf("ring 0->5 next hop = %d, want 5", got)
	}
	if got := ring.nextHop(0, 3); got != 1 {
		t.Errorf("ring 0->3 (tie) next hop = %d, want clockwise 1", got)
	}
	// Star: everything through hub 0.
	star, err := buildTopology(ShapeStar, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r := star.route(3, 4, nil); len(r) != 2 {
		t.Errorf("star 3->4 route length = %d, want 2", len(r))
	}
	if len(star.links) != 8 {
		t.Errorf("star(5) has %d directed links, want 8", len(star.links))
	}
	// Mesh: X then Y, every route finite.
	mesh, err := buildTopology(ShapeMesh, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(mesh.links) != 48 {
		t.Errorf("mesh(16) has %d directed links, want 48", len(mesh.links))
	}
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				continue
			}
			r := mesh.route(src, dst, nil)
			wantHops := abs(src%4-dst%4) + abs(src/4-dst/4)
			if len(r) != wantHops {
				t.Errorf("mesh route %d->%d has %d hops, want %d", src, dst, len(r), wantHops)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestRunDeterministicAcrossParallelism proves the bit-identity
// contract at the engine level: any worker count, with and without
// fault injection, on every shape.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	for _, shape := range []string{ShapeRing, ShapeMesh, ShapeStar} {
		for _, faulty := range []bool{false, true} {
			cfg := testConfig(shape, 6)
			cfg.Metrics = obs.NewRegistry()
			if faulty {
				cfg.Verify = false
				cfg.Fault = fault.Config{BitRate: 1e-3, Seed: 7}
			}
			cfg.Parallelism = 1
			base, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s serial: %v", shape, err)
			}
			cfg2 := cfg
			cfg2.Metrics = obs.NewRegistry()
			cfg2.Parallelism = 8
			par, err := Run(cfg2)
			if err != nil {
				t.Fatalf("%s parallel: %v", shape, err)
			}
			if !reflect.DeepEqual(base, par) {
				t.Errorf("%s (fault=%v): results differ between -parallel 1 and 8", shape, faulty)
			}
			if base.LinkTransfers < uint64(cfg.Transfers) {
				t.Errorf("%s: %d transfers < target %d", shape, base.LinkTransfers, cfg.Transfers)
			}
			if base.Ratio() <= 1 {
				t.Errorf("%s: compression ratio %.2f not > 1", shape, base.Ratio())
			}
			if base.Speedup() <= 1 {
				t.Errorf("%s: makespan speedup %.2f not > 1", shape, base.Speedup())
			}
		}
	}
}

// TestFaultAccounting pins the degradation invariant: every corrupted
// image is detected, counted once, and recovered by exactly one raw
// resend — summed per link and globally.
func TestFaultAccounting(t *testing.T) {
	cfg := testConfig(ShapeMesh, 8)
	cfg.Verify = false
	cfg.Fault = fault.Config{BitRate: 2e-3, TruncRate: 1e-4, Seed: 11}
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected == 0 {
		t.Fatal("no faults injected at 2e-3 over 6k transfers")
	}
	if res.DecodeErrors != res.FaultsInjected || res.RawFallbacks != res.FaultsInjected {
		t.Errorf("degradation invariant broken: faults=%d decode_errors=%d fallbacks=%d",
			res.FaultsInjected, res.DecodeErrors, res.RawFallbacks)
	}
	var perLink uint64
	for i := range res.PerLink {
		perLink += res.PerLink[i].FaultsInjected
	}
	if perLink != res.FaultsInjected {
		t.Errorf("per-link fault sum %d != total %d", perLink, res.FaultsInjected)
	}
}

// TestZeroRateFaultInert proves an enabled-rate-zero fault config
// cannot perturb results or the metric name set.
func TestZeroRateFaultInert(t *testing.T) {
	cfg := testConfig(ShapeRing, 4)
	cfg.Metrics = obs.NewRegistry()
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg2 := cfg
	cfg2.Metrics = reg
	cfg2.Fault = fault.Config{Seed: 99} // zero rates: no injector
	zero, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, zero) {
		t.Error("zero-rate fault config changed results")
	}
	for name := range reg.Snapshot(false).Counters {
		if name == "topo.faults_injected" {
			t.Error("zero-rate run registered fault counters")
		}
	}
}

// TestFlightWindowReconciliation sums every per-link flight window
// (partial included) and checks the totals equal the link's stat row —
// the window stream is a lossless decomposition of the run.
func TestFlightWindowReconciliation(t *testing.T) {
	cfg := testConfig(ShapeMesh, 8)
	cfg.Verify = false
	cfg.Fault = fault.Config{BitRate: 1e-3, Seed: 5}
	cfg.Metrics = obs.NewRegistry()
	rec := obs.NewRecorder(obs.FlightConfig{Window: 4096, MaxWindows: 1 << 20})
	cfg.Recorder = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dump := rec.Dump(false)
	if len(dump.Tracks) != len(res.PerLink) {
		t.Fatalf("%d tracks for %d links", len(dump.Tracks), len(res.PerLink))
	}
	if dump.Now != res.CableMakespan {
		t.Errorf("recorder now %d != cable makespan %d", dump.Now, res.CableMakespan)
	}
	for i, td := range dump.Tracks {
		st := res.PerLink[i]
		if want := "link" + st.Name; td.Name != want {
			t.Fatalf("track %d named %q, want %q", i, td.Name, want)
		}
		var transfers, source, wire, toggles, faults, fallbacks uint64
		var prevEnd uint64
		for _, w := range td.Windows {
			if w.Start != prevEnd {
				t.Fatalf("track %s: window starts at %d, previous ended at %d", td.Name, w.Start, prevEnd)
			}
			prevEnd = w.End
			transfers += w.Transfers
			source += w.SourceBits
			wire += w.WireBits
			toggles += w.Toggles
			faults += w.Faults
			fallbacks += w.RawFallbacks
		}
		if transfers != st.Transfers || source != st.SourceBits || wire != st.WireBits ||
			toggles != st.Toggles || faults != st.FaultsInjected || fallbacks != st.RawFallbacks {
			t.Errorf("track %s: window sums (t=%d s=%d w=%d tog=%d f=%d fb=%d) != link stats (t=%d s=%d w=%d tog=%d f=%d fb=%d)",
				td.Name, transfers, source, wire, toggles, faults, fallbacks,
				st.Transfers, st.SourceBits, st.WireBits, st.Toggles, st.FaultsInjected, st.RawFallbacks)
		}
	}
}

// TestMeshSoak drives the 16-chip mesh through a sustained
// fault-injected run. The default (250k transfers) keeps `go test`
// fast; `make soak-mesh` raises it via CABLE_MESH_SOAK_TRANSFERS
// (1M in CI; the PR acceptance run used 10M).
func TestMeshSoak(t *testing.T) {
	transfers := 250_000
	if s := os.Getenv("CABLE_MESH_SOAK_TRANSFERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad CABLE_MESH_SOAK_TRANSFERS=%q", s)
		}
		transfers = n
	}
	cfg := DefaultConfig("dealII")
	cfg.Transfers = transfers
	cfg.Verify = false
	cfg.Fault = fault.Config{BitRate: 1e-3, Seed: 1}
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkTransfers < uint64(transfers) {
		t.Fatalf("soak made %d transfers, want ≥%d", res.LinkTransfers, transfers)
	}
	if res.FaultsInjected == 0 || res.DecodeErrors != res.FaultsInjected {
		t.Fatalf("soak degradation accounting: faults=%d decode_errors=%d", res.FaultsInjected, res.DecodeErrors)
	}
	t.Logf("soak: %d transfers, ratio %.2fx, speedup %.2fx, util %.2f, faults %d",
		res.LinkTransfers, res.Ratio(), res.Speedup(), res.MeanUtilization(), res.FaultsInjected)
}
