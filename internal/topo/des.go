package topo

import (
	"container/heap"

	"cable/internal/obs"
)

// This file is the discrete-event core shared by the schedule pass
// (raw service times, records the per-link transfer sequences) and the
// replay pass (measured CABLE service times, records timing and flight
// windows). Determinism rules:
//
//   - The event queue is a container/heap ordered by (time, seq): seq
//     is a monotonically increasing push counter, so simultaneous
//     events pop in push order. No map iteration, no randomness —
//     event order is a pure function of the config.
//   - Every server (one encoder per chip, one wire per directed link)
//     is FIFO: arrivals queue in event-pop order and are served in
//     queue order.
//
// Virtual time is in link cycles.

// Event kinds.
const (
	evInject   = iota // next arrival (id = chip in schedule mode)
	evArrive          // hop lands at a chip's encoder queue (id = chip)
	evEncDone         // chip encoder finishes a transfer (id = chip)
	evWireDone        // link wire finishes a transfer (id = link)
)

// refNone marks an idle server.
const refNone = ^uint64(0)

// pack/unpack a hop reference: message index << 8 | hop position.
// Routes are at most chips-1 hops, far under 256.
func packRef(msg int, hop int) uint64 { return uint64(msg)<<8 | uint64(hop) }
func unpackRef(ref uint64) (msg, hop int) {
	return int(ref >> 8), int(ref & 0xFF)
}

type event struct {
	at   uint64
	seq  uint64
	kind uint8
	id   int32
	ref  uint64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// fifo is a ref queue that remembers each entry's arrival time (for
// queue-delay accounting). Amortized O(1); storage is compacted when
// the dead prefix dominates.
type fifo struct {
	refs []uint64
	ats  []uint64
	head int
}

func (q *fifo) empty() bool { return q.head == len(q.refs) }

func (q *fifo) push(ref, at uint64) {
	if q.head > 1024 && q.head*2 > len(q.refs) {
		n := copy(q.refs, q.refs[q.head:])
		copy(q.ats, q.ats[q.head:])
		q.refs = q.refs[:n]
		q.ats = q.ats[:n]
		q.head = 0
	}
	q.refs = append(q.refs, ref)
	q.ats = append(q.ats, at)
}

func (q *fifo) pop() (ref, at uint64) {
	ref, at = q.refs[q.head], q.ats[q.head]
	q.head++
	return ref, at
}

// schedule is the pass-1 product: the frozen per-link transfer
// sequences plus the flattened message/hop tables that let the replay
// pass re-drive the identical traffic without generators or routing.
type schedule struct {
	// linkAddrs[L][k] is the line address of link L's k-th transfer.
	linkAddrs [][]uint64
	// wireBits[L][k] is the measured on-wire size in bits (filled by
	// the encode pass; includes raw-resend recovery bits).
	wireBits [][]int32
	// recToggles/recFlags are per-transfer recording sidecars,
	// allocated only when a flight recorder is attached. Flag bit 0 =
	// injector corrupted the image, bit 1 = decode degraded to a raw
	// resend.
	recToggles [][]uint32
	recFlags   [][]uint8

	// Flattened messages: message m's hops occupy
	// hopLink/hopIdx[msgOff[m]:msgOff[m+1]]. hopIdx[j] is the hop's
	// entry index on its link (assigned in pass-1 wire-arrival order).
	msgAddr   []uint64
	msgSrc    []int32
	msgInject []uint64
	msgOff    []int32
	hopLink   []int32
	hopIdx    []int32

	// accesses/local count generator draws and same-chip hits.
	accesses uint64
	local    uint64
}

const (
	flagFault   = 1 << 0
	flagDegrade = 1 << 1
)

// engine is the per-run DES state shared by both passes.
type engine struct {
	cfg   Config
	topo  *Topology
	sched *schedule

	// rawCycles is the raw-baseline wire occupancy per transfer: a
	// full uncompressed line plus a fixed 32-bit header allowance.
	rawCycles uint64

	heap    eventHeap
	seq     uint64
	encCur  []uint64 // per chip: ref in the encoder, refNone if idle
	encQ    []fifo
	wireCur []uint64 // per link: ref on the wire, refNone if idle
	wireQ   []fifo
	wireSvc []uint64 // per link: service length of the ref on the wire
}

// passStats is one DES pass's timing outcome.
type passStats struct {
	makespan  uint64
	busy      []uint64 // per link: cycles the wire was occupied
	queueWait []uint64 // per link: total wire-queue waiting cycles
}

func newEngine(cfg Config, t *Topology) *engine {
	e := &engine{
		cfg: cfg, topo: t,
		sched:   &schedule{linkAddrs: make([][]uint64, len(t.links))},
		encCur:  make([]uint64, cfg.Chips),
		encQ:    make([]fifo, cfg.Chips),
		wireCur: make([]uint64, len(t.links)),
		wireQ:   make([]fifo, len(t.links)),
		wireSvc: make([]uint64, len(t.links)),
	}
	w := cfg.Link.WidthBits
	e.rawCycles = uint64((64*8 + rawHeaderBits + w - 1) / w)
	return e
}

// rawHeaderBits is the fixed per-transfer framing allowance charged to
// the raw baseline (address/route/ack fields a real message carries).
const rawHeaderBits = 32

func (e *engine) push(at uint64, kind uint8, id int32, ref uint64) {
	e.seq++
	heap.Push(&e.heap, event{at: at, seq: e.seq, kind: kind, id: id, ref: ref})
}

// reset clears the server and queue state between passes.
func (e *engine) reset() {
	e.heap = e.heap[:0]
	e.seq = 0
	for i := range e.encCur {
		e.encCur[i] = refNone
		e.encQ[i] = fifo{}
	}
	for i := range e.wireCur {
		e.wireCur[i] = refNone
		e.wireQ[i] = fifo{}
		e.wireSvc[i] = 0
	}
}

// hopOf returns message m's hop-h flattened index.
func (s *schedule) hopOf(m, h int) int { return int(s.msgOff[m]) + h }

// routeLen returns message m's hop count.
func (s *schedule) routeLen(m int) int { return int(s.msgOff[m+1] - s.msgOff[m]) }

// simulate runs one DES pass. In schedule mode (record=true) it drives
// the per-chip injection feed (live arrival processes, a workload mix,
// or recorded captures), records every message and assigns per-link
// entry indices in wire-arrival order, and serves every wire transfer
// at the raw-baseline cost. In replay mode it re-injects the recorded
// messages at their recorded times and serves each transfer at its
// measured compressed cost, optionally feeding per-link flight tracks
// at wire-completion virtual times.
func (e *engine) simulate(record bool, feed injectFeed, rec *obs.Recorder, tracks []*obs.Track) (passStats, error) {
	e.reset()
	s := e.sched
	ps := passStats{
		busy:      make([]uint64, len(e.topo.links)),
		queueWait: make([]uint64, len(e.topo.links)),
	}

	// svc returns the wire occupancy of ref's current hop.
	w := uint64(e.cfg.Link.WidthBits)
	svc := func(ref uint64) uint64 {
		if record {
			return e.rawCycles
		}
		m, h := unpackRef(ref)
		L := s.hopLink[s.hopOf(m, h)]
		bits := uint64(s.wireBits[L][s.hopIdx[s.hopOf(m, h)]])
		cyc := (bits + w - 1) / w
		if cyc == 0 {
			cyc = 1
		}
		return cyc
	}

	startWire := func(L int32, ref, at uint64) {
		c := svc(ref)
		e.wireCur[L] = ref
		e.wireSvc[L] = c
		ps.busy[L] += c
		e.push(at+c, evWireDone, L, 0)
	}
	enqueueWire := func(L int32, ref, at uint64) {
		if record {
			// Assign the hop its frozen per-link entry index: FIFO
			// wire queues serve in arrival order, so arrival order IS
			// the order the link's CABLE pipeline sees transfers.
			m, h := unpackRef(ref)
			k := int32(len(s.linkAddrs[L]))
			s.linkAddrs[L] = append(s.linkAddrs[L], s.msgAddr[m])
			s.hopIdx[s.hopOf(m, h)] = k
		}
		if e.wireCur[L] == refNone {
			startWire(L, ref, at)
		} else {
			e.wireQ[L].push(ref, at)
		}
	}
	enqueueEnc := func(c int32, ref, at uint64) {
		if e.encCur[c] == refNone {
			e.encCur[c] = ref
			e.push(at+uint64(e.cfg.EncodeCycles), evEncDone, c, 0)
		} else {
			e.encQ[c].push(ref, at)
		}
	}

	plannedHops := 0
	stopInject := false
	// replayNext walks the recorded messages in creation order (which
	// is inject-time order — pass-1 pops events time-sorted).
	replayNext := 0

	// Seed the queue.
	if record {
		for c := 0; c < e.cfg.Chips; c++ {
			if at, ok := feed.firstAt(int32(c)); ok {
				e.push(at, evInject, int32(c), 0)
			}
		}
	} else if len(s.msgAddr) > 0 {
		e.push(s.msgInject[0], evInject, -1, 0)
	}

	var routeBuf []int32
	for e.heap.Len() > 0 {
		ev := heap.Pop(&e.heap).(event)
		t := ev.at
		if t > ps.makespan {
			ps.makespan = t
		}
		switch ev.kind {
		case evInject:
			if record {
				c := ev.id
				s.accesses++
				a, nextAt, more, ferr := feed.next(c, t)
				if ferr != nil {
					return ps, ferr
				}
				dst := int32((a.LineAddr / e.cfg.PageLines) % uint64(e.cfg.Chips))
				if dst == c {
					s.local++
				} else {
					routeBuf = e.topo.route(int(c), int(dst), routeBuf[:0])
					m := len(s.msgAddr)
					s.msgAddr = append(s.msgAddr, a.LineAddr)
					s.msgSrc = append(s.msgSrc, c)
					s.msgInject = append(s.msgInject, t)
					if len(s.msgOff) == 0 {
						s.msgOff = append(s.msgOff, 0)
					}
					s.hopLink = append(s.hopLink, routeBuf...)
					s.hopIdx = append(s.hopIdx, make([]int32, len(routeBuf))...)
					s.msgOff = append(s.msgOff, int32(len(s.hopLink)))
					plannedHops += len(routeBuf)
					enqueueEnc(c, packRef(m, 0), t)
					if plannedHops >= e.cfg.Transfers && feed.hopTarget() {
						stopInject = true
					}
				}
				if more && !stopInject {
					e.push(nextAt, evInject, c, 0)
				}
			} else {
				m := replayNext
				enqueueEnc(s.msgSrc[m], packRef(m, 0), t)
				replayNext++
				if replayNext < len(s.msgAddr) {
					e.push(s.msgInject[replayNext], evInject, -1, 0)
				}
			}

		case evArrive:
			enqueueEnc(ev.id, ev.ref, t)

		case evEncDone:
			c := ev.id
			ref := e.encCur[c]
			if !e.encQ[c].empty() {
				next, _ := e.encQ[c].pop()
				e.encCur[c] = next
				e.push(t+uint64(e.cfg.EncodeCycles), evEncDone, c, 0)
			} else {
				e.encCur[c] = refNone
			}
			m, h := unpackRef(ref)
			enqueueWire(s.hopLink[s.hopOf(m, h)], ref, t)

		case evWireDone:
			L := ev.id
			ref := e.wireCur[L]
			if !e.wireQ[L].empty() {
				next, arrived := e.wireQ[L].pop()
				ps.queueWait[L] += t - arrived
				startWire(L, next, t)
			} else {
				e.wireCur[L] = refNone
			}
			m, h := unpackRef(ref)
			if rec != nil {
				k := s.hopIdx[s.hopOf(m, h)]
				bits := int(s.wireBits[L][k])
				fl := s.recFlags[L][k]
				if fl&flagFault != 0 {
					rec.FaultAt(tracks[L], t)
				}
				if fl&flagDegrade != 0 {
					rec.DegradeAt(tracks[L], t)
				}
				rec.TransferAt(tracks[L], t, 64*8, bits, uint64(s.recToggles[L][k]))
			}
			if h+1 < s.routeLen(m) {
				e.push(t+uint64(e.cfg.HopCycles), evArrive, e.topo.links[L].dst, packRef(m, h+1))
			}
		}
	}
	if rec != nil {
		rec.AdvanceTo(ps.makespan)
	}
	return ps, nil
}
