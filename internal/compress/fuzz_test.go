package compress

import (
	"bytes"
	"testing"
)

// Decoders face bits that crossed a physical link: they must reject
// corruption with an error, never panic or loop. The fuzz targets feed
// arbitrary bit streams to every decoder, and valid streams round-trip.

func fuzzRefs(seed []byte) [][]byte {
	if len(seed) == 0 {
		return nil
	}
	refs := make([][]byte, int(seed[0])%3+1)
	for i := range refs {
		r := make([]byte, 64)
		for j := range r {
			r[j] = byte(int(seed[0]) + i*31 + j)
		}
		refs[i] = r
	}
	return refs
}

func FuzzDecoderRobustness(f *testing.F) {
	f.Add([]byte{0x00}, 10, 0)
	f.Add([]byte{0xFF, 0x12, 0x34}, 24, 1)
	f.Add(bytes.Repeat([]byte{0xA5}, 64), 512, 2)
	engineList := engines()
	f.Fuzz(func(t *testing.T, data []byte, nbits int, which int) {
		if nbits < 0 || nbits > len(data)*8 {
			return
		}
		enc := Encoded{Data: data, NBits: nbits}
		refs := fuzzRefs(data)
		n := len(engineList)
		e := engineList[((which%n)+n)%n]
		// Must not panic; errors are fine.
		out, err := e.Decompress(enc, refs, 64)
		if err == nil && len(out) != 64 {
			t.Fatalf("%s: nil error but %d bytes", e.Name(), len(out))
		}
	})
}

func FuzzEngineRoundTrip(f *testing.F) {
	f.Add(bytes.Repeat([]byte{0}, 64), 0)
	f.Add(bytes.Repeat([]byte{0xAB}, 64), 1)
	engineList := engines()
	f.Fuzz(func(t *testing.T, line []byte, which int) {
		if len(line) != 64 {
			return
		}
		refs := fuzzRefs(line)
		n := len(engineList)
		e := engineList[((which%n)+n)%n]
		enc := e.Compress(line, refs)
		got, err := e.Decompress(enc, refs, 64)
		if err != nil {
			t.Fatalf("%s: valid stream rejected: %v", e.Name(), err)
		}
		if !bytes.Equal(got, line) {
			t.Fatalf("%s: round trip mismatch", e.Name())
		}
	})
}

func FuzzLZSSStream(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5, 6})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		c := NewLZSS("gzip", 4096)
		d := NewLZSSDecoder(4096)
		for _, chunk := range [][]byte{a, b} {
			line := make([]byte, 64)
			copy(line, chunk)
			enc := c.Compress(line)
			got, err := d.Decompress(enc, 64)
			if err != nil {
				t.Fatalf("stream decode: %v", err)
			}
			if !bytes.Equal(got, line) {
				t.Fatal("stream desync")
			}
		}
	})
}
