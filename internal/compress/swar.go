package compress

import (
	"encoding/binary"
	mathbits "math/bits"
)

// Word-level first-mismatch / equal-run primitives for the diff-match
// hot paths. Each compares or scans eight bytes (two 32-bit words) per
// load and finds the first difference with XOR + TrailingZeros64, so
// the long matches that make dictionary runs and LZ extensions cheap
// cost one instruction pair per 8 bytes instead of a branchy per-unit
// loop. All three are exact drop-ins for the scalar loops they replace
// (asserted by the property tests).

// matchLen returns the length of the common prefix of a and b in bytes,
// capped at max. Overlapping source/destination views are fine: each
// position is compared against the original contents of both slices,
// exactly like the scalar loop.
func matchLen(a, b []byte, max int) int {
	if max > len(a) {
		max = len(a)
	}
	if max > len(b) {
		max = len(b)
	}
	i := 0
	for ; i+8 <= max; i += 8 {
		x := binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:])
		if x != 0 {
			return i + mathbits.TrailingZeros64(x)/8
		}
	}
	for ; i < max; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return max
}

// matchLen32 returns the length of the common prefix of a and b in
// 32-bit words, capped at max. Two words are packed per comparison.
func matchLen32(a, b []uint32, max int) int {
	if max > len(a) {
		max = len(a)
	}
	if max > len(b) {
		max = len(b)
	}
	i := 0
	for ; i+2 <= max; i += 2 {
		x := (uint64(a[i]) | uint64(a[i+1])<<32) ^ (uint64(b[i]) | uint64(b[i+1])<<32)
		if x != 0 {
			return i + mathbits.TrailingZeros64(x)/32
		}
	}
	if i < max && a[i] == b[i] {
		i++
	}
	return i
}

// zeroRun32 counts the leading zero words of a, capped at max.
func zeroRun32(a []uint32, max int) int {
	if max > len(a) {
		max = len(a)
	}
	i := 0
	for ; i+2 <= max; i += 2 {
		if x := uint64(a[i]) | uint64(a[i+1])<<32; x != 0 {
			return i + mathbits.TrailingZeros64(x)/32
		}
	}
	if i < max && a[i] == 0 {
		i++
	}
	return i
}
