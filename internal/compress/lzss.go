package compress

import (
	"fmt"

	"cable/internal/bits"
)

// LZSS is the gzip-class streaming baseline (the paper models gzip as
// IBM's ASIC LZ77 with a 32 KB dictionary, the max configurable size).
// The sliding window persists across cache lines, so — exactly like a
// hardware gzip engine on a link — it benefits from inter-line locality
// in a single stream and suffers dictionary pollution when unrelated
// streams interleave (§VI-C).
//
// Coding: 1-bit flag, then either an 8-bit literal or a
// log2(window)-bit backwards offset plus 8-bit length (3..258 bytes,
// deflate's maximum).
type LZSS struct {
	name    string
	window  int
	history []byte
	// head is a chain hash over 3-byte prefixes to keep the match
	// search linear in practice.
	head map[uint32][]int
	base int // bytes trimmed off the front of history
}

const (
	lzssMinMatch = 3
	// lzssMaxMatch mirrors deflate's 258-byte maximum (8-bit length
	// field), which matters for long zero/value runs.
	lzssMaxMatch = lzssMinMatch + 255
	lzssLenBits  = 8
)

// NewLZSS returns a streaming compressor with the given window size.
func NewLZSS(name string, window int) *LZSS {
	if window < lzssMaxMatch {
		panic(fmt.Sprintf("compress: lzss window %d too small", window))
	}
	return &LZSS{name: name, window: window, head: make(map[uint32][]int)}
}

// Name implements StreamEngine.
func (z *LZSS) Name() string { return z.name }

// Reset empties the window so the compressor can start a fresh stream,
// keeping its buffers. A Reset compressor emits byte-identical output
// to a newly built one.
func (z *LZSS) Reset() {
	z.history = z.history[:0]
	clear(z.head)
	z.base = 0
}

// Window returns the configured window size in bytes.
func (z *LZSS) Window() int { return z.window }

func lzssKey(p []byte) uint32 {
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16
}

func (z *LZSS) offBits() int { return indexBits(z.window) }

// appendHistory adds b to the window, indexing new 3-byte prefixes and
// trimming the window lazily.
func (z *LZSS) appendHistory(b []byte) {
	start := len(z.history)
	z.history = append(z.history, b...)
	for i := start; i+lzssMinMatch <= len(z.history); i++ {
		if i < start-lzssMinMatch+1 {
			continue
		}
		k := lzssKey(z.history[i:])
		z.head[k] = append(z.head[k], z.base+i)
	}
	// Also index positions straddling the previous append.
	for i := start - lzssMinMatch + 1; i >= 0 && i < start; i++ {
		k := lzssKey(z.history[i:])
		z.head[k] = append(z.head[k], z.base+i)
	}
	z.trim()
}

func (z *LZSS) trim() {
	if len(z.history) <= 2*z.window {
		return
	}
	cut := len(z.history) - z.window
	z.history = append([]byte(nil), z.history[cut:]...)
	z.base += cut
	// Rebuild the chains; amortized O(window).
	z.head = make(map[uint32][]int, len(z.head))
	for i := 0; i+lzssMinMatch <= len(z.history); i++ {
		k := lzssKey(z.history[i:])
		z.head[k] = append(z.head[k], z.base+i)
	}
}

// findMatch searches the window for the longest match of src, where cur
// is the absolute stream position of src[0].
func (z *LZSS) findMatch(src []byte, cur int) (dist, length int) {
	if len(src) < lzssMinMatch {
		return 0, 0
	}
	chain := z.head[lzssKey(src)]
	best := 0
	bestDist := 0
	// Walk newest-first; cap the chain walk to bound worst case.
	for c, i := 0, len(chain)-1; i >= 0 && c < 64; i, c = i-1, c+1 {
		pos := chain[i]
		d := cur - pos
		if d <= 0 || d > z.window {
			continue
		}
		h := pos - z.base
		if h < 0 {
			continue
		}
		l := matchLen(z.history[h:], src, lzssMaxMatch)
		if l > best {
			best, bestDist = l, d
			if best == lzssMaxMatch {
				break
			}
		}
	}
	if best < lzssMinMatch {
		return 0, 0
	}
	return bestDist, best
}

// Compress implements StreamEngine: it encodes line against the window
// accumulated from all previous lines on this link, then appends line to
// the window. Matches never span into the line being encoded, so the
// decoder (whose window ends at the previous line) can always resolve
// them.
func (z *LZSS) Compress(line []byte) Encoded {
	ob := z.offBits()
	var w bits.Writer
	for p := 0; p < len(line); {
		dist, l := z.findMatch(line[p:], z.base+len(z.history)+p)
		// Also consider intra-line matches, including overlapping
		// run matches (distance < length), which make zero/value
		// runs cheap: the decoder resolves them byte-by-byte.
		if id, il := intraLineMatch(line, p); il > l {
			dist, l = id, il
		}
		if l >= lzssMinMatch {
			w.WriteBit(1)
			w.WriteBits(uint64(dist-1), ob)
			w.WriteBits(uint64(l-lzssMinMatch), lzssLenBits)
			p += l
		} else {
			w.WriteBit(0)
			w.WriteBits(uint64(line[p]), 8)
			p++
		}
	}
	z.appendHistory(line)
	return Encoded{Data: w.Bytes(), NBits: w.Len()}
}

// intraLineMatch finds the longest match for line[p:] whose source is an
// earlier position in the same line. A match of length l at distance d
// is valid iff line[p+i] == line[p+i-d] for all i < l — exactly the
// sequence a byte-at-a-time decoder reproduces, so d < l (overlap) is
// legal. Each position compares against the original line contents on
// both sides, so the word-packed matchLen over the two (overlapping)
// views computes the same predicate as the scalar loop.
func intraLineMatch(line []byte, p int) (dist, length int) {
	best, bestDist := 0, 0
	max := lzssMaxMatch
	if len(line)-p < max {
		max = len(line) - p
	}
	for d := 1; d <= p; d++ {
		l := matchLen(line[p-d:], line[p:], max)
		if l > best {
			best, bestDist = l, d
			if best == max {
				break
			}
		}
	}
	if best < lzssMinMatch {
		return 0, 0
	}
	return bestDist, best
}

// LZSSDecoder mirrors LZSS on the receive side of the link.
type LZSSDecoder struct {
	window  int
	history []byte
}

// NewLZSSDecoder returns a decoder for a stream produced by an LZSS
// compressor with the same window.
func NewLZSSDecoder(window int) *LZSSDecoder {
	return &LZSSDecoder{window: window}
}

// Reset empties the decoder window for a fresh stream.
func (z *LZSSDecoder) Reset() {
	z.history = z.history[:0]
}

// Decompress implements StreamDecoder.
func (z *LZSSDecoder) Decompress(enc Encoded, lineSize int) ([]byte, error) {
	ob := indexBits(z.window)
	r := enc.Reader()
	out := make([]byte, 0, lineSize)
	for len(out) < lineSize {
		flag, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("lzss: truncated stream: %w", err)
		}
		if flag == 0 {
			v, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			out = append(out, byte(v))
			continue
		}
		d64, err := r.ReadBits(ob)
		if err != nil {
			return nil, err
		}
		l64, err := r.ReadBits(lzssLenBits)
		if err != nil {
			return nil, err
		}
		dist := int(d64) + 1
		length := int(l64) + lzssMinMatch
		// Matches resolve against window + already-decoded bytes of
		// this line (the compressor only matches the window, but the
		// combined view is identical byte-for-byte).
		for i := 0; i < length; i++ {
			pos := len(z.history) + len(out) - dist
			if pos < 0 || pos >= len(z.history)+len(out) {
				return nil, fmt.Errorf("lzss: match distance %d out of range", dist)
			}
			var b byte
			if pos < len(z.history) {
				b = z.history[pos]
			} else {
				b = out[pos-len(z.history)]
			}
			out = append(out, b)
		}
	}
	if len(out) != lineSize {
		return nil, fmt.Errorf("lzss: decoded %d bytes, want %d", len(out), lineSize)
	}
	z.history = append(z.history, out...)
	if len(z.history) > 2*z.window {
		cut := len(z.history) - z.window
		z.history = append([]byte(nil), z.history[cut:]...)
	}
	return out, nil
}
