package compress

import (
	"encoding/binary"
	"fmt"

	"cable/internal/bits"
	"cable/internal/sig"
)

// BDI implements Base-Delta-Immediate compression (Pekhimenko et al.,
// PACT 2012), the representative non-dictionary baseline. A line is
// encoded as one base value plus narrow deltas; values near zero use an
// implicit zero base (the "immediate" part), selected per value by a
// one-bit mask.
//
// Encodings tried, in order of preference (best compression first):
//
//	zeros        line is all zero
//	rep8         line is one repeated 8-byte value
//	b8d1,b8d2,b8d4  8-byte base, 1/2/4-byte deltas
//	b4d1,b4d2       4-byte base, 1/2-byte deltas
//	b2d1            2-byte base, 1-byte deltas
//	raw          uncompressed fallback
//
// Every encoding carries a 4-bit tag.
type BDI struct{}

// NewBDI returns the BDI engine.
func NewBDI() *BDI { return &BDI{} }

// Name implements Engine.
func (*BDI) Name() string { return "bdi" }

const bdiTagBits = 4

// bdi encoding tags.
const (
	bdiZeros = iota
	bdiRep8
	bdiB8D1
	bdiB8D2
	bdiB8D4
	bdiB4D1
	bdiB4D2
	bdiB2D1
	bdiRaw
)

type bdiLayout struct {
	base  int // base size in bytes
	delta int // delta size in bytes
}

var bdiLayouts = map[int]bdiLayout{
	bdiB8D1: {8, 1},
	bdiB8D2: {8, 2},
	bdiB8D4: {8, 4},
	bdiB4D1: {4, 1},
	bdiB4D2: {4, 2},
	bdiB2D1: {2, 1},
}

// bdiOrder is the preference order for base+delta encodings.
var bdiOrder = []int{bdiB8D1, bdiB4D1, bdiB2D1, bdiB8D2, bdiB4D2, bdiB8D4}

func segments(line []byte, size int) []uint64 {
	n := len(line) / size
	vals := make([]uint64, n)
	for i := 0; i < n; i++ {
		switch size {
		case 8:
			vals[i] = binary.LittleEndian.Uint64(line[i*8:])
		case 4:
			vals[i] = uint64(binary.LittleEndian.Uint32(line[i*4:]))
		case 2:
			vals[i] = uint64(binary.LittleEndian.Uint16(line[i*2:]))
		}
	}
	return vals
}

func fitsSigned(delta int64, bytes int) bool {
	limit := int64(1) << uint(bytes*8-1)
	return delta >= -limit && delta < limit
}

// signExtend interprets the low `bytes` bytes of v as a signed value.
func signExtend(v uint64, bytes int) int64 {
	shift := uint(64 - bytes*8)
	return int64(v<<shift) >> shift
}

// tryLayout attempts one base+delta layout. It returns the encoded size
// in bits and the chosen arbitrary base, or ok=false.
func tryLayout(vals []uint64, baseSize, deltaSize int) (base uint64, mask []bool, ok bool) {
	mask = make([]bool, len(vals)) // true → immediate (zero base)
	haveBase := false
	for i, v := range vals {
		if fitsSigned(int64(v), deltaSize) || fitsSigned(signExtend(v, baseSize), deltaSize) {
			mask[i] = true
			continue
		}
		if !haveBase {
			base, haveBase = v, true
		}
		d := int64(v) - int64(base)
		if !fitsSigned(d, deltaSize) {
			return 0, nil, false
		}
	}
	return base, mask, true
}

func bdiSizeBits(tag int, nVals int) int {
	l := bdiLayouts[tag]
	// tag + base + per-value (1 mask bit + delta bytes)
	return bdiTagBits + l.base*8 + nVals*(1+l.delta*8)
}

// Compress implements Engine. BDI has no dictionary; refs are ignored.
func (*BDI) Compress(line []byte, refs [][]byte) Encoded {
	var w bits.Writer
	if sig.ZeroLine(line) {
		w.WriteBits(bdiZeros, bdiTagBits)
		return Encoded{Data: w.Bytes(), NBits: w.Len()}
	}
	if v, ok := repeated8(line); ok {
		w.WriteBits(bdiRep8, bdiTagBits)
		w.WriteBits(v, 64)
		return Encoded{Data: w.Bytes(), NBits: w.Len()}
	}
	bestTag := bdiRaw
	bestBits := bdiTagBits + len(line)*8
	var bestBase uint64
	var bestMask []bool
	for _, tag := range bdiOrder {
		l := bdiLayouts[tag]
		if len(line)%l.base != 0 {
			continue
		}
		vals := segments(line, l.base)
		base, mask, ok := tryLayout(vals, l.base, l.delta)
		if !ok {
			continue
		}
		if sz := bdiSizeBits(tag, len(vals)); sz < bestBits {
			bestTag, bestBits, bestBase, bestMask = tag, sz, base, mask
		}
	}
	if bestTag == bdiRaw {
		w.WriteBits(bdiRaw, bdiTagBits)
		w.WriteBytes(line)
		return Encoded{Data: w.Bytes(), NBits: w.Len()}
	}
	l := bdiLayouts[bestTag]
	vals := segments(line, l.base)
	w.WriteBits(uint64(bestTag), bdiTagBits)
	w.WriteBits(bestBase, l.base*8)
	for i, v := range vals {
		if bestMask[i] {
			w.WriteBit(1)
			w.WriteBits(v&deltaMask(l.delta), l.delta*8)
		} else {
			w.WriteBit(0)
			d := uint64(int64(v) - int64(bestBase))
			w.WriteBits(d&deltaMask(l.delta), l.delta*8)
		}
	}
	return Encoded{Data: w.Bytes(), NBits: w.Len()}
}

func deltaMask(bytes int) uint64 {
	if bytes >= 8 {
		return ^uint64(0)
	}
	return (1 << uint(bytes*8)) - 1
}

// Decompress implements Engine.
func (b *BDI) Decompress(enc Encoded, refs [][]byte, lineSize int) ([]byte, error) {
	// A local scratch keeps one code path; the result is uniquely
	// owned because the scratch dies here.
	var s DecScratch
	return b.DecompressScratch(&s, enc, refs, lineSize)
}

// DecompressScratch implements ScratchDecoder: the bit reader and the
// result bytes live in s, so steady-state decodes allocate nothing. The
// result aliases s.
func (*BDI) DecompressScratch(s *DecScratch, enc Encoded, refs [][]byte, lineSize int) ([]byte, error) {
	s.r.Reset(enc.Data, enc.NBits)
	r := &s.r
	tag64, err := r.ReadBits(bdiTagBits)
	if err != nil {
		return nil, fmt.Errorf("bdi: %w", err)
	}
	tag := int(tag64)
	if cap(s.res) < lineSize {
		s.res = make([]byte, lineSize)
	}
	line := s.res[:lineSize]
	switch tag {
	case bdiZeros:
		clear(line)
		return line, nil
	case bdiRep8:
		v, err := r.ReadBits(64)
		if err != nil {
			return nil, err
		}
		for i := 0; i < lineSize; i += 8 {
			binary.LittleEndian.PutUint64(line[i:], v)
		}
		return line, nil
	case bdiRaw:
		res, err := r.AppendBytes(line[:0], lineSize)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	l, ok := bdiLayouts[tag]
	if !ok {
		return nil, fmt.Errorf("bdi: invalid tag %d", tag)
	}
	base, err := r.ReadBits(l.base * 8)
	if err != nil {
		return nil, err
	}
	n := lineSize / l.base
	if n*l.base != lineSize {
		clear(line) // segments don't cover the tail; keep it zero
	}
	for i := 0; i < n; i++ {
		imm, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		dRaw, err := r.ReadBits(l.delta * 8)
		if err != nil {
			return nil, err
		}
		d := signExtend(dRaw, l.delta)
		var v uint64
		if imm == 1 {
			v = uint64(d)
		} else {
			v = uint64(int64(base) + d)
		}
		v &= deltaMask(l.base)
		switch l.base {
		case 8:
			binary.LittleEndian.PutUint64(line[i*8:], v)
		case 4:
			binary.LittleEndian.PutUint32(line[i*4:], uint32(v))
		case 2:
			binary.LittleEndian.PutUint16(line[i*2:], uint16(v))
		}
	}
	return line, nil
}

func repeated8(line []byte) (uint64, bool) {
	if len(line) < 8 || len(line)%8 != 0 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(line)
	for i := 8; i < len(line); i += 8 {
		if binary.LittleEndian.Uint64(line[i:]) != v {
			return 0, false
		}
	}
	return v, true
}
