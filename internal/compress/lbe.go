package compress

import "fmt"

// LBE is a word-granularity dictionary encoder modeled on the
// line-based encoder of MORC (Nguyen & Wentzlaff, MICRO 2015), the
// engine the paper found to pair best with CABLE. Its key property
// (§VI-E: "LBE can copy large aligned data blocks with lower overheads")
// is the run-copy code: one pointer amortized over up to 16 consecutive
// dictionary words, which is exactly what makes a cache-line reference
// cheap.
//
// Code table (idx is log2(capacity) wide):
//
//	00 + 4-bit len            zero run of len+1 words
//	01 + idx + 4-bit len      copy len+1 consecutive words from dict[idx:]
//	10 + 32-bit literal       literal word, appended to the dictionary
//	110 + idx + 8-bit byte    dict word with the low byte replaced
//	111 + idx + 16-bit half   dict word with the low half replaced
//
// The baseline LBE256 uses a 256-byte FIFO dictionary reset per line;
// CABLE+LBE seeds the dictionary with up to three 64-byte references.
type LBE struct {
	name    string
	entries int // dictionary capacity in words
}

// NewLBE returns an LBE engine with dictBytes of dictionary capacity.
func NewLBE(name string, dictBytes int) *LBE {
	if dictBytes <= 0 || dictBytes%4 != 0 {
		panic(fmt.Sprintf("compress: lbe dictionary %dB invalid", dictBytes))
	}
	return &LBE{name: name, entries: dictBytes / 4}
}

// Name implements Engine.
func (l *LBE) Name() string { return l.name }

const lbeMaxRun = 16 // 4-bit run length field encodes 1..16 words

type lbeDict struct {
	words []uint32
	cap   int
}

func newLBEDict(capWords int, refs [][]byte) *lbeDict {
	d := &lbeDict{cap: capWords}
	for _, r := range refs {
		for _, w := range Words(r) {
			d.push(w)
		}
	}
	return d
}

// push appends a word; when full the dictionary stops growing (seeded
// reference words are never displaced — they are the valuable content).
func (d *lbeDict) push(w uint32) {
	if len(d.words) < d.cap {
		d.words = append(d.words, w)
	}
}

// longestRun finds the dictionary position giving the longest run match
// for src starting at word position p. Run extension is word-packed
// (matchLen32), two dictionary words per comparison.
func (d *lbeDict) longestRun(src []uint32, p int) (idx, length int) {
	best, bestIdx := 0, -1
	w0 := src[p]
	for i, e := range d.words {
		// A candidate whose first word differs has run length 0 and can
		// never beat best (≥ 0): skip it with one compare instead of a
		// matchLen32 call. The surviving selection — first index with
		// the strictly longest run — is unchanged.
		if e != w0 {
			continue
		}
		l := matchLen32(d.words[i:], src[p:], lbeMaxRun)
		if l > best {
			best, bestIdx = l, i
		}
	}
	return bestIdx, best
}

// partialMatch finds the dictionary word sharing the most upper bytes
// with w: matchBytes is 3 (upper 3 bytes equal) or 2 (upper half), or 0.
func (d *lbeDict) partialMatch(w uint32) (idx, matchBytes int) {
	best, bestIdx := 0, -1
	for i, e := range d.words {
		// One shift of the XOR rejects non-candidates with a single
		// branch; survivors share at least the upper half.
		x := e ^ w
		if x>>16 != 0 {
			continue
		}
		if x>>8 == 0 {
			// First index reaching m=3 always wins in the original
			// best-tracking loop, whether or not an m=2 preceded it.
			return i, 3
		}
		if best < 2 {
			best, bestIdx = 2, i
		}
	}
	return bestIdx, best
}

func (d *lbeDict) idxBits() int { return indexBits(d.cap) }

// Compress implements Engine.
func (l *LBE) Compress(line []byte, refs [][]byte) Encoded {
	var s Scratch
	enc := l.CompressScratch(&s, line, refs)
	// Detach from the throwaway scratch so the result owns its bits.
	return Encoded{Data: append([]byte(nil), enc.Data...), NBits: enc.NBits}
}

// CompressScratch implements ScratchEngine: the hot-path form used by
// CABLE link ends, which compress one line per fill and must not
// allocate in steady state. The returned Encoded aliases s.
func (l *LBE) CompressScratch(s *Scratch, line []byte, refs [][]byte) Encoded {
	d := &lbeDict{words: s.dict[:0], cap: l.entries}
	for _, r := range refs {
		for i := 0; i+4 <= len(r); i += 4 {
			d.push(Word32(r, i))
		}
	}
	ib := d.idxBits()
	src := AppendWords(s.src[:0], line)
	w := &s.w
	w.Reset()
	for p := 0; p < len(src); {
		// Zero run.
		zl := zeroRun32(src[p:], lbeMaxRun)
		var idx, rl int
		if zl < lbeMaxRun {
			idx, rl = d.longestRun(src, p)
		}
		// A full-length zero run wins unconditionally (rl is capped at
		// the same lbeMaxRun, so zl >= rl holds), hence the dictionary
		// search above is skipped for it.
		// Cost per option, in saved bits vs. literals (32+2 each).
		// Prefer the option covering the most words; ties favor the
		// cheaper zero code.
		// Each code is emitted as a single WriteBits call: writing
		// a<<m|b in one call of n+m bits is, by the MSB-first
		// accumulator semantics, the same stream as writing a (n bits)
		// then b (m bits). Fusing fields saves the dominant per-call
		// overhead of the bit writer. All fused widths stay <= 64
		// (ib is at most ~10 for any sane dictionary).
		switch {
		case zl > 0 && zl >= rl:
			w.WriteBits(0b00<<4|uint64(zl-1), 6)
			p += zl
		case rl >= 2 || (rl == 1 && zl == 0):
			w.WriteBits(0b01<<uint(ib+4)|uint64(idx)<<4|uint64(rl-1), 6+ib)
			p += rl
		default:
			if mi, m := d.partialMatch(src[p]); m == 3 {
				w.WriteBits(0b110<<uint(ib+8)|uint64(mi)<<8|uint64(src[p]&0xFF), 11+ib)
				d.push(src[p])
			} else if m == 2 {
				w.WriteBits(0b111<<uint(ib+16)|uint64(mi)<<16|uint64(src[p]&0xFFFF), 19+ib)
				d.push(src[p])
			} else {
				w.WriteBits(0b10<<32|uint64(src[p]), 34)
				d.push(src[p])
			}
			p++
		}
	}
	s.dict, s.src = d.words, src
	return Encoded{Data: w.Bytes(), NBits: w.Len()}
}

// Decompress implements Engine.
func (l *LBE) Decompress(enc Encoded, refs [][]byte, lineSize int) ([]byte, error) {
	// A local scratch keeps one code path; the result is uniquely
	// owned because the scratch dies here.
	var s DecScratch
	return l.DecompressScratch(&s, enc, refs, lineSize)
}

// DecompressScratch implements ScratchDecoder: the decode dictionary,
// word buffers and result bytes all live in s, so steady-state decodes
// allocate nothing. The result aliases s.
func (l *LBE) DecompressScratch(s *DecScratch, enc Encoded, refs [][]byte, lineSize int) ([]byte, error) {
	d := lbeDict{words: s.dict[:0], cap: l.entries}
	for _, ref := range refs {
		s.out = AppendWords(s.out[:0], ref)
		for _, w := range s.out {
			d.push(w)
		}
	}
	ib := d.idxBits()
	s.r.Reset(enc.Data, enc.NBits)
	r := &s.r
	nWords := lineSize / 4
	out := s.out[:0]
	for len(out) < nWords {
		code, err := r.ReadBits(2)
		if err != nil {
			return nil, fmt.Errorf("lbe: truncated stream: %w", err)
		}
		switch code {
		case 0b00:
			n, err := r.ReadBits(4)
			if err != nil {
				return nil, err
			}
			for i := uint64(0); i <= n; i++ {
				out = append(out, 0)
			}
		case 0b01:
			idx, err := r.ReadBits(ib)
			if err != nil {
				return nil, err
			}
			n, err := r.ReadBits(4)
			if err != nil {
				return nil, err
			}
			if int(idx)+int(n) >= len(d.words) {
				return nil, fmt.Errorf("lbe: run [%d,%d] out of dictionary range %d", idx, idx+n, len(d.words))
			}
			for i := uint64(0); i <= n; i++ {
				out = append(out, d.words[idx+i])
			}
		case 0b10:
			v, err := r.ReadBits(32)
			if err != nil {
				return nil, err
			}
			out = append(out, uint32(v))
			d.push(uint32(v))
		case 0b11:
			half, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			idx, err := r.ReadBits(ib)
			if err != nil {
				return nil, err
			}
			lowBits := 8
			mask := uint32(0xFFFFFF00)
			if half == 1 {
				lowBits = 16
				mask = 0xFFFF0000
			}
			low, err := r.ReadBits(lowBits)
			if err != nil {
				return nil, err
			}
			if int(idx) >= len(d.words) {
				return nil, fmt.Errorf("lbe: index %d out of dictionary range %d", idx, len(d.words))
			}
			word := d.words[idx]&mask | uint32(low)
			out = append(out, word)
			d.push(word)
		}
	}
	if len(out) != nWords {
		return nil, fmt.Errorf("lbe: decoded %d words, want %d", len(out), nWords)
	}
	s.dict, s.out = d.words, out // retain grown capacity
	s.res = AppendPutWords(s.res[:0], out)
	return s.res, nil
}
