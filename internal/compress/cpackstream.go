package compress

// CPackStream is the Fig 3 instrument: C-Pack modified with a
// configurable dictionary that persists across the whole link stream.
// For every line it reports the encoded size twice — with real pointer
// (dictionary index) widths, and with pointers costed at zero bits —
// reproducing the paper's "Ideal" vs "Ideal With Pointer" curves: raw
// match coverage keeps improving with dictionary size, but wider
// indices eat the gains.
//
// Because Fig 3 sweeps dictionaries to megabytes, matching is indexed:
// hash maps from the full word and its upper prefixes to the most
// recent dictionary position. Entries are validated on lookup (FIFO
// overwrites leave stale map entries behind), so matches are always
// genuine; a displaced older duplicate may be missed, which only makes
// the curve conservative.
type CPackStream struct {
	dict *cpackDict
	full map[uint32]int // word        → index
	hi3  map[uint32]int // word >> 8   → index
	hi2  map[uint32]int // word >> 16  → index
}

// NewCPackStream builds a streaming C-Pack with dictBytes of FIFO
// dictionary retained across lines.
func NewCPackStream(dictBytes int) *CPackStream {
	return &CPackStream{
		dict: newCPackDict(dictBytes/4, nil),
		full: make(map[uint32]int),
		hi3:  make(map[uint32]int),
		hi2:  make(map[uint32]int),
	}
}

func (c *CPackStream) push(w uint32) {
	d := c.dict
	if d.cap == 0 {
		return
	}
	var idx int
	if len(d.words) < d.cap {
		idx = len(d.words)
	} else {
		idx = d.next
	}
	d.push(w)
	c.full[w] = idx
	c.hi3[w>>8] = idx
	c.hi2[w>>16] = idx
}

// match finds the best indexed match: 4 (full), 3 (upper 3 bytes),
// 2 (upper half) or 0.
func (c *CPackStream) match(w uint32) (idx, matchBytes int) {
	d := c.dict
	if i, ok := c.full[w]; ok && i < len(d.words) && d.words[i] == w {
		return i, 4
	}
	if i, ok := c.hi3[w>>8]; ok && i < len(d.words) && d.words[i]>>8 == w>>8 {
		return i, 3
	}
	if i, ok := c.hi2[w>>16]; ok && i < len(d.words) && d.words[i]>>16 == w>>16 {
		return i, 2
	}
	return -1, 0
}

// CompressBits encodes one line into the persistent dictionary and
// returns the encoded size with pointer overhead (withPtr) and with
// free pointers (noPtr).
func (c *CPackStream) CompressBits(line []byte) (withPtr, noPtr int) {
	ib := c.dict.idxBits()
	for _, word := range Words(line) {
		switch {
		case word == 0:
			withPtr += 2
			noPtr += 2
		case word>>8 == 0:
			withPtr += 12
			noPtr += 12
		default:
			_, m := c.match(word)
			switch m {
			case 4:
				withPtr += 2 + ib
				noPtr += 2
			case 3:
				withPtr += 12 + ib
				noPtr += 12
				c.push(word)
			case 2:
				withPtr += 20 + ib
				noPtr += 20
				c.push(word)
			default:
				withPtr += 34
				noPtr += 34
				c.push(word)
			}
		}
	}
	return withPtr, noPtr
}
