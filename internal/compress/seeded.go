package compress

import "fmt"

// SeededLZSS adapts the streaming LZSS coder to the Engine interface for
// the CABLE+gzip configuration of Fig 20: each line is compressed
// against a fresh window primed with the reference lines, instead of a
// persistent link-wide window.
type SeededLZSS struct {
	name   string
	window int
}

// NewSeededLZSS returns a per-line, reference-seeded LZSS engine.
func NewSeededLZSS(name string, window int) *SeededLZSS {
	return &SeededLZSS{name: name, window: window}
}

// Name implements Engine.
func (s *SeededLZSS) Name() string { return s.name }

// Compress implements Engine.
func (s *SeededLZSS) Compress(line []byte, refs [][]byte) Encoded {
	z := NewLZSS(s.name, s.window)
	for _, r := range refs {
		z.appendHistory(r)
	}
	return z.Compress(line)
}

// Decompress implements Engine.
func (s *SeededLZSS) Decompress(enc Encoded, refs [][]byte, lineSize int) ([]byte, error) {
	d := NewLZSSDecoder(s.window)
	for _, r := range refs {
		d.history = append(d.history, r...)
	}
	return d.Decompress(enc, lineSize)
}

// Registry returns the evaluated engines by the names used throughout
// the paper's figures.
func Registry() map[string]Engine {
	return map[string]Engine{
		"bdi":      NewBDI(),
		"cpack":    NewCPack("cpack", 64),
		"cpack128": NewCPack("cpack128", 128),
		"lbe256":   NewLBE("lbe256", 256),
		"zero":     NewZero(),
		"fpc":      NewFPC(),
		"oracle":   NewOracle(),
	}
}

// NewEngine builds an engine by name, including the CABLE-seeded
// variants; it errors on unknown names.
func NewEngine(name string) (Engine, error) {
	switch name {
	case "bdi":
		return NewBDI(), nil
	case "cpack":
		return NewCPack("cpack", 64), nil
	case "cpack128":
		return NewCPack("cpack128", 128), nil
	case "lbe", "lbe256":
		return NewLBE(name, 256), nil
	case "zero":
		return NewZero(), nil
	case "fpc":
		return NewFPC(), nil
	case "oracle":
		return NewOracle(), nil
	case "gzip-seeded":
		return NewSeededLZSS(name, 32<<10), nil
	default:
		return nil, fmt.Errorf("compress: unknown engine %q", name)
	}
}
