package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

const lineSize = 64

// lineGen produces the data-pattern families the paper's workloads
// exhibit: zero lines, repeated values, pointer-like words, near-copies.
func lineGen(rng *rand.Rand) []byte {
	line := make([]byte, lineSize)
	switch rng.Intn(6) {
	case 0: // all zero
	case 1: // repeated 8-byte value
		v := rng.Uint64()
		for i := 0; i < lineSize; i += 8 {
			binary.LittleEndian.PutUint64(line[i:], v)
		}
	case 2: // small integers (BDI friendly)
		base := rng.Uint32() & 0xFFFF
		for i := 0; i < lineSize; i += 4 {
			binary.LittleEndian.PutUint32(line[i:], base+uint32(rng.Intn(64)))
		}
	case 3: // pointer-like array with shared upper bits
		base := rng.Uint64() &^ 0xFFFF
		for i := 0; i < lineSize; i += 8 {
			binary.LittleEndian.PutUint64(line[i:], base|uint64(rng.Intn(1<<16)))
		}
	case 4: // random
		rng.Read(line)
	case 5: // sparse: mostly zero with a few random words
		for i := 0; i < 3; i++ {
			off := rng.Intn(lineSize/4) * 4
			binary.LittleEndian.PutUint32(line[off:], rng.Uint32())
		}
	}
	return line
}

func refGen(rng *rand.Rand, line []byte) [][]byte {
	n := rng.Intn(4)
	refs := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		r := append([]byte(nil), line...)
		// Mutate a few words so references are similar-but-different.
		for k := 0; k < rng.Intn(6); k++ {
			off := rng.Intn(lineSize/4) * 4
			binary.LittleEndian.PutUint32(r[off:], rng.Uint32())
		}
		refs = append(refs, r)
	}
	return refs
}

func engines() []Engine {
	return []Engine{
		NewBDI(),
		NewCPack("cpack", 64),
		NewCPack("cpack128", 128),
		NewCPack("cpack0", 0),
		NewLBE("lbe256", 256),
		NewLBE("lbe1k", 1024),
		NewZero(),
		NewFPC(),
		NewOracle(),
		NewSeededLZSS("gzip-seeded", 32<<10),
	}
}

func TestEnginesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			for i := 0; i < 300; i++ {
				line := lineGen(rng)
				refs := refGen(rng, line)
				enc := e.Compress(line, refs)
				got, err := e.Decompress(enc, refs, lineSize)
				if err != nil {
					t.Fatalf("iter %d: decompress: %v", i, err)
				}
				if !bytes.Equal(got, line) {
					t.Fatalf("iter %d: round trip mismatch\n got %x\nwant %x", i, got, line)
				}
			}
		})
	}
}

func TestEnginesRoundTripQuick(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			f := func(raw [lineSize]byte, seed int64) bool {
				line := raw[:]
				refs := refGen(rand.New(rand.NewSource(seed)), line)
				enc := e.Compress(line, refs)
				got, err := e.Decompress(enc, refs, lineSize)
				return err == nil && bytes.Equal(got, line)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestZeroLineIsTiny(t *testing.T) {
	zeroLine := make([]byte, lineSize)
	for _, e := range engines() {
		enc := e.Compress(zeroLine, nil)
		// LZSS pays 15-bit offsets per run code (a real gzip would
		// Huffman-code these); everything else should reach 8x.
		want := 8.0
		if e.Name() == "gzip-seeded" {
			want = 4.0
		}
		if r := Ratio(lineSize, enc.NBits); r < want {
			t.Errorf("%s: zero line ratio %.1f < %.0f (%d bits)", e.Name(), r, want, enc.NBits)
		}
	}
}

func TestRandomLineExpandsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	line := make([]byte, lineSize)
	rng.Read(line)
	for _, e := range engines() {
		enc := e.Compress(line, nil)
		// Worst-case expansion should stay modest (< 13% for the
		// worst coder here, LZSS literals at 9/8 bits per byte).
		if enc.NBits > lineSize*8*9/8+bdiTagBits {
			t.Errorf("%s: random line expanded to %d bits", e.Name(), enc.NBits)
		}
	}
}

func TestSeededEnginesExploitReferences(t *testing.T) {
	// A line that is a near-copy of a reference must compress far
	// better with the reference than without — the CABLE premise.
	rng := rand.New(rand.NewSource(3))
	ref := make([]byte, lineSize)
	rng.Read(ref)
	line := append([]byte(nil), ref...)
	binary.LittleEndian.PutUint32(line[20:], rng.Uint32())
	for _, name := range []string{"cpack128", "lbe256", "gzip-seeded", "oracle"} {
		e, err := NewEngine(name)
		if err != nil {
			t.Fatal(err)
		}
		seeded := e.Compress(line, [][]byte{ref}).NBits
		bare := e.Compress(line, nil).NBits
		if seeded >= bare {
			t.Errorf("%s: seeded %d bits >= unseeded %d bits", name, seeded, bare)
		}
		if Ratio(lineSize, seeded) < 3 {
			t.Errorf("%s: near-copy with reference only reaches %.1fx", name, Ratio(lineSize, seeded))
		}
	}
}

func TestLBEAlignedBlockCopyBeatsCPack(t *testing.T) {
	// §VI-E: LBE copies large aligned blocks with lower overhead than
	// CPACK's per-word codes. An exact copy of a reference should cost
	// LBE far fewer bits.
	rng := rand.New(rand.NewSource(4))
	ref := make([]byte, lineSize)
	rng.Read(ref)
	line := append([]byte(nil), ref...)
	lbe := NewLBE("lbe", 256).Compress(line, [][]byte{ref}).NBits
	cp := NewCPack("cpack", 256).Compress(line, [][]byte{ref}).NBits
	if lbe >= cp {
		t.Fatalf("LBE %d bits should beat CPack %d bits on exact copy", lbe, cp)
	}
}

func TestCPackDictionarySweepMonotonicPointerCost(t *testing.T) {
	// Fig 3's mechanism: bigger dictionaries mean wider indices.
	small := NewCPack("s", 64)
	big := NewCPack("b", 1<<20)
	if got := indexBits(small.entries); got != 4 {
		t.Fatalf("64B dict index width = %d, want 4", got)
	}
	if got := indexBits(big.entries); got != 18 {
		t.Fatalf("1MB dict index width = %d, want 18", got)
	}
}

func TestLZSSStreamingRoundTrip(t *testing.T) {
	c := NewLZSS("gzip", 4096)
	d := NewLZSSDecoder(4096)
	rng := rand.New(rand.NewSource(5))
	pool := make([][]byte, 8)
	for i := range pool {
		pool[i] = lineGen(rng)
	}
	for i := 0; i < 500; i++ {
		var line []byte
		if rng.Intn(2) == 0 {
			// Near-copy of a pooled line: inter-line locality.
			line = append([]byte(nil), pool[rng.Intn(len(pool))]...)
			binary.LittleEndian.PutUint32(line[rng.Intn(16)*4:], rng.Uint32())
		} else {
			line = lineGen(rng)
		}
		enc := c.Compress(line)
		got, err := d.Decompress(enc, lineSize)
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if !bytes.Equal(got, line) {
			t.Fatalf("line %d: stream desync\n got %x\nwant %x", i, got, line)
		}
	}
}

func TestLZSSLearnsStream(t *testing.T) {
	// Repeating the same line must get cheap once it is in the window.
	c := NewLZSS("gzip", 32<<10)
	rng := rand.New(rand.NewSource(6))
	line := make([]byte, lineSize)
	rng.Read(line)
	first := c.Compress(line).NBits
	second := c.Compress(line).NBits
	if second >= first/4 {
		t.Fatalf("repeat cost %d bits not ≪ first cost %d bits", second, first)
	}
}

func TestLZSSWindowEviction(t *testing.T) {
	// After the window slides past a line, matches to it must vanish
	// but the stream must stay decodable.
	window := 1024
	c := NewLZSS("gzip", window)
	d := NewLZSSDecoder(window)
	rng := rand.New(rand.NewSource(7))
	marker := make([]byte, lineSize)
	rng.Read(marker)
	push := func(line []byte) {
		enc := c.Compress(line)
		got, err := d.Decompress(enc, lineSize)
		if err != nil || !bytes.Equal(got, line) {
			t.Fatalf("desync after eviction: %v", err)
		}
	}
	push(marker)
	for i := 0; i < 64; i++ { // flush the window several times over
		push(lineGen(rng))
	}
	enc := c.Compress(marker)
	got, err := d.Decompress(enc, lineSize)
	if err != nil || !bytes.Equal(got, marker) {
		t.Fatalf("marker after eviction: %v", err)
	}
}

func TestWordsPutWordsInverse(t *testing.T) {
	f := func(raw [lineSize]byte) bool {
		return bytes.Equal(PutWords(Words(raw[:])), raw[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(64, 64); r != 8 {
		t.Fatalf("Ratio(64B,64b) = %v, want 8", r)
	}
	if r := Ratio(64, 0); r <= 0 {
		t.Fatalf("Ratio with 0 bits must stay positive, got %v", r)
	}
}

func TestNewEngineUnknown(t *testing.T) {
	if _, err := NewEngine("nope"); err == nil {
		t.Fatal("expected error for unknown engine")
	}
	for _, name := range []string{"bdi", "cpack", "cpack128", "lbe", "lbe256", "zero", "oracle", "gzip-seeded"} {
		if _, err := NewEngine(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRegistryNamesMatch(t *testing.T) {
	for name, e := range Registry() {
		if e.Name() != name {
			t.Errorf("registry key %q has engine name %q", name, e.Name())
		}
	}
}

func TestOracleHandlesByteShift(t *testing.T) {
	// The oracle's defining ability (Fig 20): unaligned duplicates.
	rng := rand.New(rand.NewSource(8))
	ref := make([]byte, lineSize)
	rng.Read(ref)
	line := make([]byte, lineSize)
	copy(line, ref[1:]) // byte-shifted copy
	line[lineSize-1] = 0x42
	o := NewOracle()
	shifted := o.Compress(line, [][]byte{ref}).NBits
	cp := NewCPack("cpack", 256).Compress(line, [][]byte{ref}).NBits
	if shifted >= cp {
		t.Fatalf("oracle %d bits should beat cpack %d bits on byte-shifted copy", shifted, cp)
	}
	if Ratio(lineSize, shifted) < 4 {
		t.Fatalf("oracle only reaches %.1fx on byte-shifted copy", Ratio(lineSize, shifted))
	}
}

func TestBDIEncodesKnownPatterns(t *testing.T) {
	// Small-integer arrays should land in a narrow-delta encoding.
	line := make([]byte, lineSize)
	for i := 0; i < lineSize; i += 4 {
		binary.LittleEndian.PutUint32(line[i:], 1000+uint32(i))
	}
	enc := NewBDI().Compress(line, nil)
	if enc.NBits >= lineSize*8/2 {
		t.Fatalf("small-int array compresses to %d bits, want < %d", enc.NBits, lineSize*8/2)
	}
}

func BenchmarkCPackCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	line := lineGen(rng)
	e := NewCPack("cpack", 64)
	b.SetBytes(lineSize)
	for i := 0; i < b.N; i++ {
		e.Compress(line, nil)
	}
}

func BenchmarkLBECompressSeeded(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	line := lineGen(rng)
	refs := [][]byte{lineGen(rng), lineGen(rng), lineGen(rng)}
	e := NewLBE("lbe", 256)
	b.SetBytes(lineSize)
	for i := 0; i < b.N; i++ {
		e.Compress(line, refs)
	}
}

func BenchmarkLZSSStream(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	c := NewLZSS("gzip", 32<<10)
	lines := make([][]byte, 256)
	for i := range lines {
		lines[i] = lineGen(rng)
	}
	b.SetBytes(lineSize)
	for i := 0; i < b.N; i++ {
		c.Compress(lines[i%len(lines)])
	}
}

func TestFPCKnownPatterns(t *testing.T) {
	e := NewFPC()
	cases := []struct {
		name    string
		words   []uint32
		maxBits int
	}{
		{"zero-run", make([]uint32, 16), 2 * 6},                   // two 8-word runs
		{"small-ints", []uint32{1, 2, 3, 0xFFFFFFFF}, 4*7 + 12*6}, // 4-bit imms + zero runs
		{"repeated-bytes", []uint32{0x5A5A5A5A}, 11 + 2*6},
		{"halfword-hi", []uint32{0xABCD0000}, 19 + 2*6},
	}
	for _, c := range cases {
		line := PutWords(append(append([]uint32{}, c.words...), make([]uint32, 16-len(c.words))...))
		enc := e.Compress(line, nil)
		if enc.NBits > c.maxBits {
			t.Errorf("%s: %d bits, want ≤ %d", c.name, enc.NBits, c.maxBits)
		}
		dec, err := e.Decompress(enc, nil, 64)
		if err != nil || !bytes.Equal(dec, line) {
			t.Errorf("%s: round trip failed: %v", c.name, err)
		}
	}
}

func TestFPCSignExtension(t *testing.T) {
	e := NewFPC()
	// Negative values in each width class.
	words := []uint32{0xFFFFFFF8, 0xFFFFFF80, 0xFFFF8000, 0x00FF00FE}
	line := PutWords(append(words, make([]uint32, 12)...))
	enc := e.Compress(line, nil)
	dec, err := e.Decompress(enc, nil, 64)
	if err != nil || !bytes.Equal(dec, line) {
		t.Fatalf("sign-extension round trip failed: %v", err)
	}
}
