package compress

import (
	"fmt"

	"cable/internal/bits"
)

// FPC implements Frequent Pattern Compression (Alameldeen & Wood,
// UW-Madison TR-1500), the classic significance-based compressor cited
// by the paper's related work. Each 32-bit word gets a 3-bit prefix:
//
//	000 + 3-bit len   run of 1..8 zero words
//	001 + 4           4-bit sign-extended
//	010 + 8           8-bit sign-extended
//	011 + 16          16-bit sign-extended
//	100 + 16          halfword padded with a zero halfword (low half 0)
//	101 + 16          two halfwords, each a sign-extended byte
//	110 + 8           word of four repeated bytes
//	111 + 32          uncompressed word
//
// FPC is stateless per line; reference seeds are ignored.
type FPC struct{}

// NewFPC returns the FPC engine.
func NewFPC() *FPC { return &FPC{} }

// Name implements Engine.
func (*FPC) Name() string { return "fpc" }

func fitsSignedBits(w uint32, n int) bool {
	v := int32(w)
	limit := int32(1) << uint(n-1)
	return v >= -limit && v < limit
}

// Compress implements Engine.
func (*FPC) Compress(line []byte, refs [][]byte) Encoded {
	var w bits.Writer
	words := Words(line)
	for p := 0; p < len(words); {
		word := words[p]
		if word == 0 {
			run := zeroRun32(words[p:], 8)
			w.WriteBits(0b000, 3)
			w.WriteBits(uint64(run-1), 3)
			p += run
			continue
		}
		switch {
		case fitsSignedBits(word, 4):
			w.WriteBits(0b001, 3)
			w.WriteBits(uint64(word&0xF), 4)
		case fitsSignedBits(word, 8):
			w.WriteBits(0b010, 3)
			w.WriteBits(uint64(word&0xFF), 8)
		case fitsSignedBits(word, 16):
			w.WriteBits(0b011, 3)
			w.WriteBits(uint64(word&0xFFFF), 16)
		case word&0xFFFF == 0:
			w.WriteBits(0b100, 3)
			w.WriteBits(uint64(word>>16), 16)
		case halfwordsFitBytes(word):
			// Each halfword, as a signed 16-bit value, fits a byte.
			w.WriteBits(0b101, 3)
			w.WriteBits(uint64(word>>16&0xFF), 8)
			w.WriteBits(uint64(word&0xFF), 8)
		case word&0xFF == (word>>8)&0xFF && word&0xFF == (word>>16)&0xFF && word&0xFF == word>>24:
			w.WriteBits(0b110, 3)
			w.WriteBits(uint64(word&0xFF), 8)
		default:
			w.WriteBits(0b111, 3)
			w.WriteBits(uint64(word), 32)
		}
		p++
	}
	return Encoded{Data: w.Bytes(), NBits: w.Len()}
}

// halfwordsFitBytes reports whether both 16-bit halves of word are
// sign-extended bytes.
func halfwordsFitBytes(word uint32) bool {
	lo, hi := int16(word&0xFFFF), int16(word>>16)
	return lo >= -128 && lo < 128 && hi >= -128 && hi < 128
}

func signExtend32(v uint64, n int) uint32 {
	shift := uint(32 - n)
	return uint32(int32(uint32(v)<<shift) >> shift)
}

// Decompress implements Engine.
func (*FPC) Decompress(enc Encoded, refs [][]byte, lineSize int) ([]byte, error) {
	r := enc.Reader()
	nWords := lineSize / 4
	out := make([]uint32, 0, nWords)
	for len(out) < nWords {
		code, err := r.ReadBits(3)
		if err != nil {
			return nil, fmt.Errorf("fpc: truncated stream: %w", err)
		}
		switch code {
		case 0b000:
			n, err := r.ReadBits(3)
			if err != nil {
				return nil, err
			}
			for i := uint64(0); i <= n; i++ {
				out = append(out, 0)
			}
		case 0b001:
			v, err := r.ReadBits(4)
			if err != nil {
				return nil, err
			}
			out = append(out, signExtend32(v, 4))
		case 0b010:
			v, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			out = append(out, signExtend32(v, 8))
		case 0b011:
			v, err := r.ReadBits(16)
			if err != nil {
				return nil, err
			}
			out = append(out, signExtend32(v, 16))
		case 0b100:
			v, err := r.ReadBits(16)
			if err != nil {
				return nil, err
			}
			out = append(out, uint32(v)<<16)
		case 0b101:
			hi, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			lo, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			word := (signExtend32(hi, 8)&0xFFFF)<<16 | signExtend32(lo, 8)&0xFFFF
			out = append(out, word)
		case 0b110:
			b, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			v := uint32(b)
			out = append(out, v|v<<8|v<<16|v<<24)
		case 0b111:
			v, err := r.ReadBits(32)
			if err != nil {
				return nil, err
			}
			out = append(out, uint32(v))
		}
	}
	if len(out) != nWords {
		return nil, fmt.Errorf("fpc: decoded %d words, want %d", len(out), nWords)
	}
	return PutWords(out), nil
}
