package compress

import (
	"fmt"

	"cable/internal/bits"
)

// Zero is the simplest link encoder class the paper cites (dynamic zero
// compression): each 32-bit word carries a 1-bit flag — 0 for a zero
// word, 1 followed by the raw word. It is the floor any scheme should
// beat and the reason zero-dominant benchmarks compress well everywhere.
type Zero struct{}

// NewZero returns the zero-word encoder.
func NewZero() *Zero { return &Zero{} }

// Name implements Engine.
func (*Zero) Name() string { return "zero" }

// Compress implements Engine. refs are ignored.
func (*Zero) Compress(line []byte, refs [][]byte) Encoded {
	var w bits.Writer
	for _, word := range Words(line) {
		if word == 0 {
			w.WriteBit(0)
		} else {
			w.WriteBit(1)
			w.WriteBits(uint64(word), 32)
		}
	}
	return Encoded{Data: w.Bytes(), NBits: w.Len()}
}

// Decompress implements Engine.
func (*Zero) Decompress(enc Encoded, refs [][]byte, lineSize int) ([]byte, error) {
	r := enc.Reader()
	out := make([]uint32, lineSize/4)
	for i := range out {
		flag, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("zero: truncated stream: %w", err)
		}
		if flag == 1 {
			v, err := r.ReadBits(32)
			if err != nil {
				return nil, err
			}
			out[i] = uint32(v)
		}
	}
	return PutWords(out), nil
}
