// Package compress implements the compression engines CABLE delegates
// to (§II-B: "CABLE is a compression framework and not a compression
// algorithm") and the baseline link compressors the paper evaluates
// against: CPACK, CPACK128, BDI, LBE256 and a gzip-class streaming LZSS.
//
// Every engine is bit-exact: Decompress(Compress(line)) == line, and
// encoded sizes are counted in bits because the paper's ratios and link
// flit quantization depend on exact payload bits.
package compress

import (
	"encoding/binary"
	"fmt"

	"cable/internal/bits"
	"cable/internal/obs"
)

// Encoded is a compressed block: a bit stream plus its exact length.
type Encoded struct {
	Data  []byte
	NBits int
}

// Reader returns a bit reader over the encoded stream.
func (e Encoded) Reader() *bits.Reader { return bits.NewReader(e.Data, e.NBits) }

// Engine compresses a single cache line, optionally seeded with
// reference lines that form a temporary dictionary (Fig 10). Engines
// must be deterministic and bit-exact round-trip.
type Engine interface {
	// Name identifies the engine in reports ("cpack", "lbe", ...).
	Name() string
	// Compress encodes line. refs, if non-empty, seed the engine's
	// dictionary; both sides of the link must pass identical refs.
	Compress(line []byte, refs [][]byte) Encoded
	// Decompress inverts Compress given the same refs and the
	// original line size.
	Decompress(enc Encoded, refs [][]byte, lineSize int) ([]byte, error)
}

// StreamEngine is a link compressor with persistent inter-block state
// (gzip-class). Compressor and decompressor are separate objects whose
// dictionaries evolve in lock-step as blocks flow over the link.
type StreamEngine interface {
	Name() string
	Compress(line []byte) Encoded
}

// StreamDecoder mirrors a StreamEngine on the receiving side.
type StreamDecoder interface {
	Decompress(enc Encoded, lineSize int) ([]byte, error)
}

// Scratch holds the reusable buffers of the allocation-free compression
// path. One Scratch belongs to one caller (a link end, a meter); it
// must not be shared across goroutines. The Encoded returned by
// CompressWith aliases the Scratch and is valid until the next call
// with the same Scratch.
type Scratch struct {
	w    bits.Writer
	dict []uint32
	src  []uint32

	mx       *compressCounters // nil = process-default block
	shard    uint32            // metrics shard, drawn lazily (zero value is valid)
	hasShard bool
}

// UseRegistry points this scratch's compression counters at reg; nil
// restores the process-default registry. Memoized experiment cells run
// their link ends against private registries so metric deltas can be
// replayed on cache hits.
func (s *Scratch) UseRegistry(reg *obs.Registry) {
	if reg == nil {
		s.mx = nil
		return
	}
	mx := newCompressCounters(reg)
	s.mx = &mx
}

// ScratchEngine is implemented by engines offering an allocation-free
// compression path into caller-owned scratch space.
type ScratchEngine interface {
	Engine
	// CompressScratch behaves like Compress but reuses s's buffers;
	// the result aliases s.
	CompressScratch(s *Scratch, line []byte, refs [][]byte) Encoded
}

// CompressWith compresses via the engine's scratch path when it offers
// one, falling back to the allocating Compress. Passing a nil Scratch
// always falls back.
func CompressWith(e Engine, s *Scratch, line []byte, refs [][]byte) Encoded {
	var enc Encoded
	if se, ok := e.(ScratchEngine); ok && s != nil {
		enc = se.CompressScratch(s, line, refs)
	} else {
		enc = e.Compress(line, refs)
	}
	var mx *compressCounters
	var shard uint32
	if s != nil {
		if !s.hasShard {
			s.shard, s.hasShard = obs.NextShard(), true
		}
		shard = s.shard
		mx = s.mx
	}
	if mx == nil {
		mx = compressMetrics()
	}
	mx.ops.Inc(shard)
	mx.outBits.Add(shard, uint64(enc.NBits))
	return enc
}

// DecScratch holds the reusable buffers of the allocation-free
// decompression path. One DecScratch belongs to one caller (a link
// end); it must not be shared across goroutines. The slice returned by
// DecompressWith aliases the DecScratch and is valid until the next
// call with the same DecScratch.
type DecScratch struct {
	dict []uint32
	out  []uint32
	res  []byte
	r    bits.Reader
}

// ScratchDecoder is implemented by engines offering an allocation-free
// decompression path into caller-owned scratch space.
type ScratchDecoder interface {
	Engine
	// DecompressScratch behaves like Decompress but reuses s's
	// buffers; the result aliases s.
	DecompressScratch(s *DecScratch, enc Encoded, refs [][]byte, lineSize int) ([]byte, error)
}

// DecompressWith decompresses via the engine's scratch path when it
// offers one, falling back to the allocating Decompress. Passing a nil
// DecScratch always falls back.
func DecompressWith(e Engine, s *DecScratch, enc Encoded, refs [][]byte, lineSize int) ([]byte, error) {
	if sd, ok := e.(ScratchDecoder); ok && s != nil {
		return sd.DecompressScratch(s, enc, refs, lineSize)
	}
	return e.Decompress(enc, refs, lineSize)
}

// Words reinterprets a line as little-endian 32-bit words.
func Words(line []byte) []uint32 {
	return AppendWords(make([]uint32, 0, len(line)/4), line)
}

// Word32 reads the little-endian 32-bit word at byte offset off.
func Word32(p []byte, off int) uint32 {
	return binary.LittleEndian.Uint32(p[off : off+4])
}

// AppendWords appends line's little-endian 32-bit words to dst.
func AppendWords(dst []uint32, line []byte) []uint32 {
	if len(line)%4 != 0 {
		panic(fmt.Sprintf("compress: line size %d not word aligned", len(line)))
	}
	for i := 0; i+4 <= len(line); i += 4 {
		dst = append(dst, binary.LittleEndian.Uint32(line[i:]))
	}
	return dst
}

// PutWords serializes words back to bytes.
func PutWords(ws []uint32) []byte {
	return AppendPutWords(make([]byte, 0, len(ws)*4), ws)
}

// AppendPutWords appends words' little-endian bytes to dst.
func AppendPutWords(dst []byte, ws []uint32) []byte {
	for _, w := range ws {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], w)
		dst = append(dst, b[:]...)
	}
	return dst
}

// Ratio is uncompressed size over compressed size, the paper's metric
// (compression ratios are represented as uncompressed ÷ compressed).
func Ratio(rawBytes int, compressedBits int) float64 {
	if compressedBits == 0 {
		compressedBits = 1
	}
	return float64(rawBytes*8) / float64(compressedBits)
}

// indexBits returns the pointer width needed to address n dictionary
// entries — the "pointer overhead" at the heart of Fig 3.
func indexBits(n int) int {
	b := 0
	for (1 << uint(b)) < n {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
