package compress

import (
	"fmt"

	"cable/internal/bits"
)

// Oracle is the CABLE+ORACLE upper bound of Fig 20: given the same
// reference lines as the other engines, it may exploit *any* data
// pattern — aligned duplicates, byte shifts, unaligned copies — that
// word-aligned engines miss.
//
// Coding (byte granularity):
//
//	0   + 8-bit literal                                  9 bits
//	10  + offset + 6-bit len     general match            3+off+6
//	11  + 2-bit ref + 6-bit len  aligned copy from the    11 bits
//	                             same position of ref r
//
// The general-match offset addresses the concatenated references plus
// the already-emitted prefix of the line; overlapping matches are legal
// (the decoder copies byte-by-byte).
//
// Because the oracle may exploit *any* pattern, it additionally
// considers the word-aligned LBE coding of the same line and keeps
// whichever is smaller (1-bit selector): byte-granular LZ wins on
// shifts and unaligned duplicates, word-aligned coding wins on
// FP-style partial-word matches.
type Oracle struct {
	lbe *LBE
}

// NewOracle returns the oracle engine.
func NewOracle() *Oracle { return &Oracle{lbe: NewLBE("oracle-lbe", 256)} }

// Name implements Engine.
func (*Oracle) Name() string { return "oracle" }

const (
	oracleMinMatch = 2
	oracleMaxMatch = oracleMinMatch + 63 // 6-bit length field
)

// Compress implements Engine.
func (o *Oracle) Compress(line []byte, refs [][]byte) Encoded {
	lz := o.compressLZ(line, refs)
	wa := o.lbe.Compress(line, refs)
	var w bits.Writer
	best := lz
	if wa.NBits < lz.NBits {
		w.WriteBit(1)
		best = wa
	} else {
		w.WriteBit(0)
	}
	w.WriteStream(best.Data, best.NBits)
	return Encoded{Data: w.Bytes(), NBits: w.Len()}
}

// compressLZ is the byte-granular arm of the oracle.
func (*Oracle) compressLZ(line []byte, refs [][]byte) Encoded {
	var w bits.Writer
	var region []byte
	for _, r := range refs {
		region = append(region, r...)
	}
	refLen := len(region)
	ob := indexBits(refLen + len(line))
	srcByte := func(pos int) byte {
		if pos < refLen {
			return region[pos]
		}
		return line[pos-refLen]
	}
	for p := 0; p < len(line); {
		max := oracleMaxMatch
		if len(line)-p < max {
			max = len(line) - p
		}
		// Aligned copy: same offset within a reference.
		alignedLen, alignedRef := 0, 0
		for r, ref := range refs {
			if p >= len(ref) {
				continue
			}
			l := matchLen(ref[p:], line[p:], max)
			if l > alignedLen {
				alignedLen, alignedRef = l, r
			}
		}
		// General match anywhere in refs + emitted prefix.
		genLen, genOff := 0, 0
		for off := 0; off < refLen+p; off++ {
			l := 0
			for l < max && srcByte(off+l) == line[p+l] {
				l++
			}
			if l > genLen {
				genLen, genOff = l, off
				if genLen == max {
					break
				}
			}
		}
		// Pick by bits-per-byte: aligned costs 11 bits, general
		// 3+ob+6, literal 9.
		alignedOK := alignedLen >= oracleMinMatch
		genOK := genLen >= oracleMinMatch
		switch {
		case alignedOK && (!genOK || float64(11)/float64(alignedLen) <= float64(9+ob)/float64(genLen)):
			w.WriteBits(0b11, 2)
			w.WriteBits(uint64(alignedRef), 2)
			w.WriteBits(uint64(alignedLen-oracleMinMatch), 6)
			p += alignedLen
		case genOK:
			w.WriteBits(0b10, 2)
			w.WriteBits(uint64(genOff), ob)
			w.WriteBits(uint64(genLen-oracleMinMatch), 6)
			p += genLen
		default:
			w.WriteBit(0)
			w.WriteBits(uint64(line[p]), 8)
			p++
		}
	}
	return Encoded{Data: w.Bytes(), NBits: w.Len()}
}

// Decompress implements Engine.
func (o *Oracle) Decompress(enc Encoded, refs [][]byte, lineSize int) ([]byte, error) {
	r0 := enc.Reader()
	sel, err := r0.ReadBit()
	if err != nil {
		return nil, fmt.Errorf("oracle: empty stream: %w", err)
	}
	var dw bits.Writer
	dw.CopyRemaining(r0)
	inner := Encoded{Data: dw.Bytes(), NBits: dw.Len()}
	if sel == 1 {
		return o.lbe.Decompress(inner, refs, lineSize)
	}
	return o.decompressLZ(inner, refs, lineSize)
}

// decompressLZ inverts compressLZ.
func (*Oracle) decompressLZ(enc Encoded, refs [][]byte, lineSize int) ([]byte, error) {
	var region []byte
	for _, r := range refs {
		region = append(region, r...)
	}
	refLen := len(region)
	ob := indexBits(refLen + lineSize)
	r := enc.Reader()
	out := make([]byte, 0, lineSize)
	for len(out) < lineSize {
		b0, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("oracle: truncated stream: %w", err)
		}
		if b0 == 0 {
			v, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			out = append(out, byte(v))
			continue
		}
		b1, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b1 == 1 { // aligned copy
			refIdx, err := r.ReadBits(2)
			if err != nil {
				return nil, err
			}
			l64, err := r.ReadBits(6)
			if err != nil {
				return nil, err
			}
			if int(refIdx) >= len(refs) {
				return nil, fmt.Errorf("oracle: aligned copy from missing ref %d", refIdx)
			}
			ref := refs[refIdx]
			length := int(l64) + oracleMinMatch
			if len(out)+length > len(ref) {
				return nil, fmt.Errorf("oracle: aligned copy overruns reference")
			}
			out = append(out, ref[len(out):len(out)+length]...)
			continue
		}
		// General match.
		off64, err := r.ReadBits(ob)
		if err != nil {
			return nil, err
		}
		l64, err := r.ReadBits(6)
		if err != nil {
			return nil, err
		}
		off := int(off64)
		length := int(l64) + oracleMinMatch
		for i := 0; i < length; i++ {
			pos := off + i
			var b byte
			switch {
			case pos < refLen:
				b = region[pos]
			case pos-refLen < len(out):
				b = out[pos-refLen]
			default:
				return nil, fmt.Errorf("oracle: match offset %d beyond decoded prefix", pos)
			}
			out = append(out, b)
		}
	}
	if len(out) != lineSize {
		return nil, fmt.Errorf("oracle: decoded %d bytes, want %d", len(out), lineSize)
	}
	return out, nil
}
