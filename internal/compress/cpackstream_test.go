package compress

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestCPackStreamZeroAndTrivial(t *testing.T) {
	cs := NewCPackStream(1024)
	zero := make([]byte, 64)
	w, np := cs.CompressBits(zero)
	if w != 32 || np != 32 {
		t.Fatalf("zero line = %d/%d bits, want 32/32 (16 zzzz codes)", w, np)
	}
	small := make([]byte, 64)
	for i := 0; i < 64; i += 4 {
		small[i] = byte(i + 1) // zzzx pattern
	}
	w, np = cs.CompressBits(small)
	if w != 16*12 || np != 16*12 {
		t.Fatalf("small-byte line = %d/%d bits, want 192/192", w, np)
	}
}

func TestCPackStreamLearnsAcrossLines(t *testing.T) {
	cs := NewCPackStream(4096)
	line := make([]byte, 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i += 4 {
		binary.LittleEndian.PutUint32(line[i:], rng.Uint32()|0x01000000)
	}
	first, firstNP := cs.CompressBits(line)
	second, secondNP := cs.CompressBits(line)
	if second >= first {
		t.Fatalf("repeat cost %d not below first %d (dictionary inert)", second, first)
	}
	if secondNP >= firstNP {
		t.Fatalf("no-pointer repeat cost %d not below first %d", secondNP, firstNP)
	}
	// Pointer-free coding must always be ≤ pointer-priced coding.
	if secondNP > second {
		t.Fatalf("noPtr %d exceeds withPtr %d", secondNP, second)
	}
}

func TestCPackStreamPointerWidthGrows(t *testing.T) {
	// The Fig 3 mechanism: with identical content, a bigger dictionary
	// pays more pointer bits per full match.
	mkLine := func(seed int64) []byte {
		line := make([]byte, 64)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 64; i += 4 {
			binary.LittleEndian.PutUint32(line[i:], rng.Uint32()|0x01000000)
		}
		return line
	}
	small := NewCPackStream(256)
	big := NewCPackStream(1 << 20)
	line := mkLine(7)
	small.CompressBits(line)
	big.CompressBits(line)
	ws, _ := small.CompressBits(line)
	wb, _ := big.CompressBits(line)
	if wb <= ws {
		t.Fatalf("1MB-dict repeat %d bits should exceed 256B-dict %d bits (wider indices)", wb, ws)
	}
}

func TestCPackStreamPartialMatches(t *testing.T) {
	cs := NewCPackStream(1024)
	a := make([]byte, 64)
	for i := 0; i < 64; i += 4 {
		binary.LittleEndian.PutUint32(a[i:], 0xABCD0000|uint32(i))
	}
	cs.CompressBits(a)
	// Same upper halves, different low halves → mmxx (20+ib bits).
	b := make([]byte, 64)
	for i := 0; i < 64; i += 4 {
		binary.LittleEndian.PutUint32(b[i:], 0xABCD0000|uint32(i)<<8|0x77)
	}
	w, np := cs.CompressBits(b)
	if np >= 16*34 {
		t.Fatalf("partial matches not found: %d bits no-pointer", np)
	}
	if w <= np {
		t.Fatalf("pointer cost missing: %d vs %d", w, np)
	}
}
