package compress

import "cable/internal/obs"

// BatchCompressor amortizes CompressWith's per-call bookkeeping across a
// batch of lines: the scratch-engine capability check happens once at
// construction, and the ops/out-bits counters accumulate in plain fields
// until Flush folds them into the registry with two atomic adds. Totals
// are exactly what the same sequence of CompressWith calls would have
// produced. A BatchCompressor belongs to one goroutine; callers must
// Flush before the batch's counters are observed.
type BatchCompressor struct {
	e   Engine
	se  ScratchEngine // non-nil when e offers the scratch path and s != nil
	lbe *LBE          // devirtualized fast path when the engine is the default LBE
	s   *Scratch

	ops     uint64
	outBits uint64
}

// NewBatchCompressor wraps an engine + scratch pair for batched
// compression. A nil Scratch falls back to the allocating path, exactly
// like CompressWith.
func NewBatchCompressor(e Engine, s *Scratch) BatchCompressor {
	b := BatchCompressor{e: e, s: s}
	if se, ok := e.(ScratchEngine); ok && s != nil {
		b.se = se
		if lbe, ok := e.(*LBE); ok {
			b.lbe = lbe
		}
	}
	return b
}

// Compress is CompressWith with the metric writes deferred to Flush.
// The result aliases the scratch and is valid until the next call.
func (b *BatchCompressor) Compress(line []byte, refs [][]byte) Encoded {
	var enc Encoded
	if b.lbe != nil {
		enc = b.lbe.CompressScratch(b.s, line, refs)
	} else if b.se != nil {
		enc = b.se.CompressScratch(b.s, line, refs)
	} else {
		enc = b.e.Compress(line, refs)
	}
	b.ops++
	b.outBits += uint64(enc.NBits)
	return enc
}

// Flush publishes the accumulated counters and resets the accumulator.
// Shard and registry resolution match CompressWith exactly.
func (b *BatchCompressor) Flush() {
	if b.ops == 0 {
		return
	}
	var mx *compressCounters
	var shard uint32
	if b.s != nil {
		if !b.s.hasShard {
			b.s.shard, b.s.hasShard = obs.NextShard(), true
		}
		shard = b.s.shard
		mx = b.s.mx
	}
	if mx == nil {
		mx = compressMetrics()
	}
	mx.ops.Add(shard, b.ops)
	mx.outBits.Add(shard, b.outBits)
	b.ops, b.outBits = 0, 0
}
