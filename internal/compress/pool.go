package compress

import "sync"

// The scratch compressors' word buffers (dictionary and source views)
// are small but built once per link end, and parallel simulation cells
// build many short-lived ends. Prime/Release cycle those buffers
// through shared pools so cell startup reuses grown capacity instead of
// re-allocating it. Both are optional: a zero-valued Scratch still
// works, growing its buffers on first use.

var (
	wordBufPool sync.Pool // []uint32, any capacity
	byteBufPool sync.Pool // []byte, any capacity
)

func getWordBuf() []uint32 {
	if v := wordBufPool.Get(); v != nil {
		return v.([]uint32)[:0]
	}
	return nil
}

func putWordBuf(s []uint32) {
	if cap(s) > 0 {
		wordBufPool.Put(s[:0])
	}
}

func getByteBuf() []byte {
	if v := byteBufPool.Get(); v != nil {
		return v.([]byte)[:0]
	}
	return nil
}

func putByteBuf(s []byte) {
	if cap(s) > 0 {
		byteBufPool.Put(s[:0])
	}
}

// Prime seeds the scratch with recycled buffer capacity.
func (s *Scratch) Prime() {
	if s.dict == nil {
		s.dict = getWordBuf()
	}
	if s.src == nil {
		s.src = getWordBuf()
	}
}

// Release returns the scratch's buffers to the pool. The scratch stays
// usable but starts from empty capacity again.
func (s *Scratch) Release() {
	putWordBuf(s.dict)
	putWordBuf(s.src)
	s.dict, s.src = nil, nil
}

// Prime seeds the decode scratch with recycled buffer capacity.
func (s *DecScratch) Prime() {
	if s.dict == nil {
		s.dict = getWordBuf()
	}
	if s.out == nil {
		s.out = getWordBuf()
	}
	if s.res == nil {
		s.res = getByteBuf()
	}
}

// Release returns the decode scratch's buffers to the pool. The scratch
// stays usable but starts from empty capacity again.
func (s *DecScratch) Release() {
	putWordBuf(s.dict)
	putWordBuf(s.out)
	putByteBuf(s.res)
	s.dict, s.out, s.res = nil, nil, nil
}
