package compress

import (
	"math/rand"
	"testing"
)

// Naive references for the word-level match primitives: the per-element
// loops the SWAR kernels replaced.

func naiveMatchLen(a, b []byte, max int) int {
	if len(a) < max {
		max = len(a)
	}
	if len(b) < max {
		max = len(b)
	}
	l := 0
	for l < max && a[l] == b[l] {
		l++
	}
	return l
}

func naiveMatchLen32(a, b []uint32, max int) int {
	if len(a) < max {
		max = len(a)
	}
	if len(b) < max {
		max = len(b)
	}
	l := 0
	for l < max && a[l] == b[l] {
		l++
	}
	return l
}

func naiveZeroRun32(a []uint32, max int) int {
	if len(a) < max {
		max = len(a)
	}
	l := 0
	for l < max && a[l] == 0 {
		l++
	}
	return l
}

// bytePairs yields byte-slice pairs covering every alignment, tail
// length, mismatch position, and the equal/all-zero extremes.
func bytePairs(rng *rand.Rand) [][2][]byte {
	var cases [][2][]byte
	for n := 0; n <= 40; n++ {
		eq := make([]byte, n)
		rng.Read(eq)
		cases = append(cases, [2][]byte{eq, append([]byte(nil), eq...)})
		for _, mis := range []int{0, 1, 7, 8, 9, 15, 16, n - 1} {
			if mis < 0 || mis >= n {
				continue
			}
			b := append([]byte(nil), eq...)
			b[mis] ^= 0x01
			cases = append(cases, [2][]byte{eq, b})
		}
	}
	for i := 0; i < 200; i++ {
		a := make([]byte, rng.Intn(300))
		b := make([]byte, rng.Intn(300))
		rng.Read(a)
		// Bias toward long shared prefixes so match extension is hit.
		copy(b, a)
		if len(b) > 0 && rng.Intn(2) == 0 {
			b[rng.Intn(len(b))] ^= byte(1 << uint(rng.Intn(8)))
		}
		cases = append(cases, [2][]byte{a, b})
	}
	return cases
}

func TestMatchLenMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for ci, c := range bytePairs(rng) {
		a, b := c[0], c[1]
		// Unaligned views of the same pair exercise every load offset.
		for off := 0; off <= 3 && off <= len(a) && off <= len(b); off++ {
			for _, max := range []int{0, 1, 2, 7, 8, 9, 63, 258, 1 << 20} {
				got := matchLen(a[off:], b[off:], max)
				want := naiveMatchLen(a[off:], b[off:], max)
				if got != want {
					t.Fatalf("case %d off %d max %d: matchLen=%d want %d", ci, off, max, got, want)
				}
			}
		}
	}
}

func TestMatchLen32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 0; n <= 20; n++ {
		for trial := 0; trial < 50; trial++ {
			a := make([]uint32, n)
			b := make([]uint32, rng.Intn(n+4))
			for i := range a {
				a[i] = rng.Uint32() >> uint(rng.Intn(32)) // bias toward zeros
			}
			copy(b, a)
			if len(b) > 0 && rng.Intn(2) == 0 {
				b[rng.Intn(len(b))] ^= 1 << uint(rng.Intn(32))
			}
			for _, max := range []int{0, 1, 2, 3, 8, 15, 16, 1 << 20} {
				if got, want := matchLen32(a, b, max), naiveMatchLen32(a, b, max); got != want {
					t.Fatalf("n=%d max=%d: matchLen32=%d want %d (a=%x b=%x)", n, max, got, want, a, b)
				}
			}
		}
	}
}

func TestZeroRun32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 20; n++ {
		for trial := 0; trial < 50; trial++ {
			a := make([]uint32, n)
			// Mostly-zero prefix with a random break point.
			if n > 0 && rng.Intn(4) != 0 {
				a[rng.Intn(n)] = rng.Uint32() | 1
			}
			if rng.Intn(8) == 0 {
				for i := range a {
					a[i] = rng.Uint32()
				}
			}
			for _, max := range []int{0, 1, 2, 3, 8, 15, 16, 1 << 20} {
				if got, want := zeroRun32(a, max), naiveZeroRun32(a, max); got != want {
					t.Fatalf("n=%d max=%d: zeroRun32=%d want %d (a=%x)", n, max, got, want, a)
				}
			}
		}
	}
}
