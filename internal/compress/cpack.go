package compress

import (
	"fmt"

	"cable/internal/bits"
)

// CPack implements C-Pack (Chen et al., TVLSI 2010), the scalable
// pattern + dictionary cache compressor the paper uses as its primary
// baseline. Words are matched against a FIFO dictionary; full and
// partial matches are encoded with the C-Pack code table:
//
//	zzzz (zero word)            00                      2 bits
//	xxxx (no match)             01 + 32                34 bits
//	mmmm (full match)           10 + idx            2+idx bits
//	mmxx (upper half match)     1100 + idx + 16    20+idx bits
//	zzzx (zero upper 3 bytes)   1101 + 8               12 bits
//	mmmx (upper 3 bytes match)  1110 + idx + 8     12+idx bits
//
// The dictionary size is configurable: 64 B (16 entries) is the paper's
// CPACK, 128 B is CPACK128, and Fig 3 sweeps it to megabytes to expose
// pointer-width overhead. With zero dictionary entries CPack degrades
// to a pattern-only coder (zzzz/zzzx/xxxx).
type CPack struct {
	name    string
	entries int // dictionary capacity in 32-bit words
}

// NewCPack returns a C-Pack engine with dictBytes of FIFO dictionary.
func NewCPack(name string, dictBytes int) *CPack {
	if dictBytes < 0 || dictBytes%4 != 0 {
		panic(fmt.Sprintf("compress: cpack dictionary %dB not word aligned", dictBytes))
	}
	return &CPack{name: name, entries: dictBytes / 4}
}

// Name implements Engine.
func (c *CPack) Name() string { return c.name }

// DictBytes returns the configured dictionary capacity in bytes.
func (c *CPack) DictBytes() int { return c.entries * 4 }

// dict is the FIFO word dictionary shared by compressor and
// decompressor. Insertion order alone determines contents, so both
// sides stay synchronized by construction.
type cpackDict struct {
	words []uint32
	cap   int
	next  int // FIFO cursor once full
}

func newCPackDict(capEntries int, refs [][]byte) *cpackDict {
	d := &cpackDict{cap: capEntries}
	for _, r := range refs {
		for _, w := range Words(r) {
			d.push(w)
		}
	}
	return d
}

func (d *cpackDict) push(w uint32) {
	if d.cap == 0 {
		return
	}
	if len(d.words) < d.cap {
		d.words = append(d.words, w)
		return
	}
	d.words[d.next] = w
	d.next = (d.next + 1) % d.cap
}

// match returns the best dictionary match for w: the index and how many
// of the upper bytes match (4 = full, 3 = mmmx, 2 = mmxx, 0 = none).
func (d *cpackDict) match(w uint32) (idx, matchBytes int) {
	best := 0
	bestIdx := -1
	for i, e := range d.words {
		var m int
		switch {
		case e == w:
			m = 4
		case e>>8 == w>>8:
			m = 3
		case e>>16 == w>>16:
			m = 2
		default:
			continue
		}
		if m > best {
			best, bestIdx = m, i
			if m == 4 {
				break
			}
		}
	}
	return bestIdx, best
}

func (d *cpackDict) idxBits() int { return indexBits(d.cap) }

// Compress implements Engine. refs seed the dictionary (used by the
// CABLE+CPACK configuration); the baseline link compressor passes nil
// and resets its dictionary per line, as C-Pack does per block.
func (c *CPack) Compress(line []byte, refs [][]byte) Encoded {
	d := newCPackDict(c.entries, refs)
	ib := d.idxBits()
	var w bits.Writer
	for _, word := range Words(line) {
		switch {
		case word == 0:
			w.WriteBits(0b00, 2) // zzzz
		case word>>8 == 0:
			w.WriteBits(0b1101, 4) // zzzx
			w.WriteBits(uint64(word&0xFF), 8)
		default:
			idx, m := d.match(word)
			switch m {
			case 4:
				w.WriteBits(0b10, 2) // mmmm
				w.WriteBits(uint64(idx), ib)
			case 3:
				w.WriteBits(0b1110, 4) // mmmx
				w.WriteBits(uint64(idx), ib)
				w.WriteBits(uint64(word&0xFF), 8)
				d.push(word)
			case 2:
				w.WriteBits(0b1100, 4) // mmxx
				w.WriteBits(uint64(idx), ib)
				w.WriteBits(uint64(word&0xFFFF), 16)
				d.push(word)
			default:
				w.WriteBits(0b01, 2) // xxxx
				w.WriteBits(uint64(word), 32)
				d.push(word)
			}
		}
	}
	return Encoded{Data: w.Bytes(), NBits: w.Len()}
}

// Decompress implements Engine.
func (c *CPack) Decompress(enc Encoded, refs [][]byte, lineSize int) ([]byte, error) {
	d := newCPackDict(c.entries, refs)
	ib := d.idxBits()
	r := enc.Reader()
	nWords := lineSize / 4
	out := make([]uint32, 0, nWords)
	for len(out) < nWords {
		b0, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("cpack: truncated stream: %w", err)
		}
		if b0 == 0 {
			b1, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			if b1 == 0 { // 00 zzzz
				out = append(out, 0)
				continue
			}
			// 01 xxxx
			v, err := r.ReadBits(32)
			if err != nil {
				return nil, err
			}
			out = append(out, uint32(v))
			d.push(uint32(v))
			continue
		}
		b1, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b1 == 0 { // 10 mmmm
			idx, err := r.ReadBits(ib)
			if err != nil {
				return nil, err
			}
			if int(idx) >= len(d.words) {
				return nil, fmt.Errorf("cpack: dictionary index %d out of range %d", idx, len(d.words))
			}
			out = append(out, d.words[idx])
			continue
		}
		// 11xx prefixes
		b2, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		b3, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		switch b2<<1 | b3 {
		case 0b00: // 1100 mmxx
			idx, err := r.ReadBits(ib)
			if err != nil {
				return nil, err
			}
			low, err := r.ReadBits(16)
			if err != nil {
				return nil, err
			}
			if int(idx) >= len(d.words) {
				return nil, fmt.Errorf("cpack: dictionary index %d out of range %d", idx, len(d.words))
			}
			word := d.words[idx]&0xFFFF0000 | uint32(low)
			out = append(out, word)
			d.push(word)
		case 0b01: // 1101 zzzx
			low, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			out = append(out, uint32(low))
		case 0b10: // 1110 mmmx
			idx, err := r.ReadBits(ib)
			if err != nil {
				return nil, err
			}
			low, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			if int(idx) >= len(d.words) {
				return nil, fmt.Errorf("cpack: dictionary index %d out of range %d", idx, len(d.words))
			}
			word := d.words[idx]&0xFFFFFF00 | uint32(low)
			out = append(out, word)
			d.push(word)
		default:
			return nil, fmt.Errorf("cpack: invalid code 1111")
		}
	}
	return PutWords(out), nil
}
