package compress

import (
	"sync"

	"cable/internal/obs"
)

// compressCounters aggregates engine invocations process-wide. Each
// Scratch lazily draws its own shard the first time it flows through
// CompressWith, so concurrent experiment cells do not contend on one
// cache line; scratch-less callers fall back to shard 0.
type compressCounters struct {
	ops     *obs.Counter
	outBits *obs.Counter
}

func newCompressCounters(r *obs.Registry) compressCounters {
	return compressCounters{
		ops:     r.Counter("compress.ops"),
		outBits: r.Counter("compress.out_bits"),
	}
}

var (
	compressCountersOnce   sync.Once
	sharedCompressCounters compressCounters
)

func compressMetrics() *compressCounters {
	compressCountersOnce.Do(func() {
		sharedCompressCounters = newCompressCounters(obs.Default())
	})
	return &sharedCompressCounters
}
