package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"cable/internal/fault"
	"cable/internal/obs"
)

// sumWindows folds every window of every track of a recorder dump.
func sumWindows(d obs.RecorderDump) (w obs.WindowDump) {
	for _, tr := range d.Tracks {
		for _, win := range tr.Windows {
			w.Transfers += win.Transfers
			w.SourceBits += win.SourceBits
			w.WireBits += win.WireBits
			w.Toggles += win.Toggles
			w.Encodes += win.Encodes
			w.Skips += win.Skips
			w.Decodes += win.Decodes
			w.Writebacks += win.Writebacks
			w.Faults += win.Faults
			w.DecodeErrors += win.DecodeErrors
			w.RawFallbacks += win.RawFallbacks
		}
	}
	return w
}

// TestFlightWindowsReconcile: the recorder's window deltas are a
// partition of the chip's own totals — summing them back recovers the
// cable accumulator and the link's toggle counter exactly.
func TestFlightWindowsReconcile(t *testing.T) {
	rec := obs.NewRecorder(obs.FlightConfig{Window: 512})
	cfg := DefaultMemLinkConfig("bzip2")
	cfg.AccessesPerProgram = 6000
	cfg.WithMeters = false
	cfg.Recorder = rec
	res, err := RunMemoryLink(cfg)
	if err != nil {
		t.Fatal(err)
	}

	got := sumWindows(rec.Dump(false))
	want := res.Total["cable"]
	if got.SourceBits != want.SourceBits || got.WireBits != want.WireBits {
		t.Fatalf("window sums source/wire = %d/%d, chip total = %d/%d",
			got.SourceBits, got.WireBits, want.SourceBits, want.WireBits)
	}
	if got.Toggles != res.Chip.CableLink.Toggles {
		t.Fatalf("window toggles = %d, link counter = %d", got.Toggles, res.Chip.CableLink.Toggles)
	}
	if got.Transfers == 0 || got.Encodes == 0 || got.Decodes == 0 {
		t.Fatalf("no activity recorded: %+v", got)
	}
	if rec.Now() == 0 {
		t.Fatal("virtual clock never ticked")
	}
	if rec.Now() < got.Transfers {
		t.Fatalf("now %d < transfers %d: ticks must dominate transfers", rec.Now(), got.Transfers)
	}
}

// TestFlightWindowsUnderFault: with the injector on, the recorder's
// fault/fallback deltas reconcile with the chip's degradation counters.
func TestFlightWindowsUnderFault(t *testing.T) {
	rec := obs.NewRecorder(obs.FlightConfig{Window: 512})
	cfg := DefaultMemLinkConfig("bzip2")
	cfg.AccessesPerProgram = 6000
	cfg.WithMeters = false
	cfg.Chip.Fault = fault.Config{BitRate: 1e-3, Seed: 7}
	cfg.Recorder = rec
	res, err := RunMemoryLink(cfg)
	if err != nil {
		t.Fatal(err)
	}

	got := sumWindows(rec.Dump(false))
	chip := res.Chip
	if chip.FaultsInjected == 0 {
		t.Fatal("fault injector never fired; raise the rate or accesses")
	}
	if got.Faults != chip.FaultsInjected {
		t.Fatalf("window faults = %d, chip = %d", got.Faults, chip.FaultsInjected)
	}
	if got.DecodeErrors != chip.DecodeErrors || got.RawFallbacks != chip.RawFallbacks {
		t.Fatalf("window errors/fallbacks = %d/%d, chip = %d/%d",
			got.DecodeErrors, got.RawFallbacks, chip.DecodeErrors, chip.RawFallbacks)
	}
	// Raw-fallback resends ride the wire, so the recorder's wire total
	// must still equal the chip's accumulator (which includes them).
	if want := res.Total["cable"]; got.WireBits != want.WireBits {
		t.Fatalf("window wire bits = %d, chip total = %d", got.WireBits, want.WireBits)
	}
}

// TestFlightRerunIdentical: running the same cell twice into two fresh
// recorders yields byte-identical deterministic dumps (the contract the
// Flight's register-first policy relies on).
func TestFlightRerunIdentical(t *testing.T) {
	run := func() []byte {
		rec := obs.NewRecorder(obs.FlightConfig{Window: 256})
		cfg := DefaultMemLinkConfig("gcc")
		cfg.AccessesPerProgram = 4000
		cfg.WithMeters = false
		cfg.Recorder = rec
		if _, err := RunMemoryLink(cfg); err != nil {
			t.Fatal(err)
		}
		d := rec.Dump(false)
		if len(d.Tracks) == 0 || len(d.Events) == 0 {
			t.Fatal("nothing recorded")
		}
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("re-running an identical cell produced different recorder content")
	}
}
