package sim

import "cable/internal/cache"

// PrivateConfig sizes the per-core private levels of Table IV: a 32 KB
// 4-way single-cycle L1 and a 128 KB 8-way 4-cycle L2.
type PrivateConfig struct {
	L1Bytes, L1Ways, L1Cycles int
	L2Bytes, L2Ways, L2Cycles int
	LineSize                  int
}

// DefaultPrivateConfig returns the Table IV private hierarchy.
func DefaultPrivateConfig() PrivateConfig {
	return PrivateConfig{
		L1Bytes: 32 << 10, L1Ways: 4, L1Cycles: 1,
		L2Bytes: 128 << 10, L2Ways: 8, L2Cycles: 4,
		LineSize: 64,
	}
}

// privateHier is one thread's private L1/L2 filter in the timing
// simulator. It tracks residency only — line data lives in the shared
// hierarchy — and models write-through private caches: stores always
// reach the LLC (keeping CABLE's upgrade/synchronization exact), while
// read hits are absorbed at L1/L2 cost.
type privateHier struct {
	l1, l2 *cache.Cache
	filler []byte

	// Stats for the Table V energy model.
	L1Accesses uint64
	L2Accesses uint64
}

func newPrivateHier(cfg PrivateConfig) *privateHier {
	return &privateHier{
		l1:     cache.New(cache.Config{Name: "l1", SizeBytes: cfg.L1Bytes, Ways: cfg.L1Ways, LineSize: cfg.LineSize}),
		l2:     cache.New(cache.Config{Name: "l2", SizeBytes: cfg.L2Bytes, Ways: cfg.L2Ways, LineSize: cfg.LineSize}),
		filler: make([]byte, cfg.LineSize),
	}
}

// release recycles the private levels' line backings (the hierarchy is
// per-thread and per-run, so the timing simulator releases it on exit).
func (p *privateHier) release() {
	p.l1.Release()
	p.l2.Release()
	p.l1, p.l2 = nil, nil
}

// lookup probes L1 then L2, installing on hit promotion. It returns
// which level hit (1, 2) or 0 for a miss; misses are installed in both
// levels (allocate on fill).
func (p *privateHier) lookup(lineAddr uint64) int {
	p.L1Accesses++
	if _, _, ok := p.l1.Access(lineAddr); ok {
		return 1
	}
	p.L2Accesses++
	if _, _, ok := p.l2.Access(lineAddr); ok {
		p.l1.Insert(lineAddr, p.filler, cache.Shared)
		return 2
	}
	p.l1.Insert(lineAddr, p.filler, cache.Shared)
	p.l2.Insert(lineAddr, p.filler, cache.Shared)
	return 0
}
