package sim

import (
	"testing"

	"cable/internal/cache"
	"cable/internal/link"
	"cable/internal/workload"
)

func smallChipConfig() ChipConfig {
	cfg := DefaultChipConfig()
	cfg.LLCBytes = 64 << 10
	cfg.L4Bytes = 256 << 10
	return cfg
}

func smallMemLink(benchmarks ...string) MemLinkConfig {
	cfg := DefaultMemLinkConfig(benchmarks...)
	cfg.Chip = smallChipConfig()
	cfg.AccessesPerProgram = 20000
	return cfg
}

func TestMemLinkRunsAllSchemes(t *testing.T) {
	res, err := RunMemoryLink(smallMemLink("dealII"))
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"none", "bdi", "cpack", "cpack128", "lbe256", "gzip", "cable"} {
		r, ok := res.Total[scheme]
		if !ok {
			t.Fatalf("scheme %s missing from results", scheme)
		}
		if r.SourceBits == 0 {
			t.Fatalf("scheme %s saw no traffic", scheme)
		}
	}
	// Every scheme sees the same source traffic.
	src := res.Total["none"].SourceBits
	for scheme, r := range res.Total {
		if r.SourceBits != src {
			t.Fatalf("scheme %s source bits %d != none %d", scheme, r.SourceBits, src)
		}
	}
}

func TestMemLinkSchemeOrdering(t *testing.T) {
	// The paper's qualitative ordering on a similarity-rich benchmark:
	// cable > {gzip, lbe256} > cpack > bdi ≥ none, and none ≈ 1.
	res, err := RunMemoryLink(smallMemLink("dealII"))
	if err != nil {
		t.Fatal(err)
	}
	get := res.Ratio
	if r := get("none"); r < 0.95 || r > 1.0+1e-9 {
		t.Fatalf("raw baseline ratio %v, want ≈1 (flit padding only)", r)
	}
	if get("cable") <= get("cpack") {
		t.Fatalf("cable %.2f should beat cpack %.2f", get("cable"), get("cpack"))
	}
	if get("cable") <= get("bdi") {
		t.Fatalf("cable %.2f should beat bdi %.2f", get("cable"), get("bdi"))
	}
	if get("cpack128") < get("cpack")*0.9 {
		t.Fatalf("cpack128 %.2f much worse than cpack %.2f", get("cpack128"), get("cpack"))
	}
	t.Logf("dealII ratios: cable=%.2f gzip=%.2f lbe256=%.2f cpack=%.2f bdi=%.2f",
		get("cable"), get("gzip"), get("lbe256"), get("cpack"), get("bdi"))
}

func TestMemLinkZeroDominantAllSchemesHigh(t *testing.T) {
	// Fig 12 right group: everything compresses well on mcf-like
	// traffic; CABLE and CPACK both reach high ratios.
	res, err := RunMemoryLink(smallMemLink("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"cpack", "lbe256", "cable"} {
		if r := res.Ratio(scheme); r < 6 {
			t.Fatalf("%s on mcf = %.2f, want ≥6", scheme, r)
		}
	}
}

func TestMemLinkMultiprogram(t *testing.T) {
	res, err := RunMemoryLink(smallMemLink("gcc", "bzip2", "tonto", "cactusADM"))
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"gzip", "cable"} {
		per := res.PerProgram[scheme]
		if len(per) != 4 {
			t.Fatalf("%s per-program has %d entries", scheme, len(per))
		}
		var total uint64
		for _, r := range per {
			if r.SourceBits == 0 {
				t.Fatalf("%s: a program saw no traffic", scheme)
			}
			total += r.SourceBits
		}
		if total != res.Total[scheme].SourceBits {
			t.Fatalf("%s: per-program bits don't sum to total", scheme)
		}
	}
}

func TestChipInclusiveInvariant(t *testing.T) {
	cfg := smallMemLink("omnetpp")
	cfg.AccessesPerProgram = 15000
	res, err := RunMemoryLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chip := res.Chip
	violations := 0
	chip.LLC.ForEach(func(addr uint64, _ cache.LineID, _ *cache.Line) {
		if _, _, ok := chip.L4.Probe(addr); !ok {
			violations++
		}
	})
	if violations > 0 {
		t.Fatalf("%d LLC lines not present in L4 (inclusivity broken)", violations)
	}
	if chip.Fills == 0 || chip.WBs == 0 || chip.Upgrades == 0 {
		t.Fatalf("protocol paths unexercised: fills=%d wbs=%d upgrades=%d",
			chip.Fills, chip.WBs, chip.Upgrades)
	}
}

func TestChipDRAMTrafficConsistent(t *testing.T) {
	res, err := RunMemoryLink(smallMemLink("soplex"))
	if err != nil {
		t.Fatal(err)
	}
	chip := res.Chip
	if chip.Store.Reads == 0 {
		t.Fatal("no DRAM reads")
	}
	if chip.Store.Reads > chip.Fills {
		t.Fatalf("DRAM reads %d exceed fills %d (L4 should filter)", chip.Store.Reads, chip.Fills)
	}
}

func TestMetersQuantizeIdentically(t *testing.T) {
	// A meter fed incompressible lines must report ≈1× after flit
	// quantization (513 bits → 33 flits ≈ 0.97).
	m := NewRawMeter(link.DefaultConfig())
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i*37 + 1)
	}
	for i := 0; i < 10; i++ {
		m.OnFill(data, 0)
	}
	if r := m.Total().Value(); r != 1.0 {
		t.Fatalf("raw meter ratio %v, want exactly 1 (512 bits = 32 flits)", r)
	}
}

func TestTransferReporting(t *testing.T) {
	gen, _ := workload.New("gcc", 0, 0)
	chip, err := NewChip(smallChipConfig(), gen.LineData)
	if err != nil {
		t.Fatal(err)
	}
	sawFill, sawHit := false, false
	for i := 0; i < 20000 && !(sawFill && sawHit); i++ {
		tr := chip.Access(gen.Next(), 0)
		if tr.Fill {
			sawFill = true
			if tr.FillBits <= 0 {
				t.Fatal("fill with no bits")
			}
			if tr.LLCHit {
				t.Fatal("fill on an LLC hit")
			}
		}
		if tr.LLCHit {
			sawHit = true
			if tr.FillBits != 0 || tr.DRAMReads != 0 {
				t.Fatal("hit should not produce traffic")
			}
		}
	}
	if !sawFill || !sawHit {
		t.Fatalf("fill=%v hit=%v — stream did not exercise both", sawFill, sawHit)
	}
}

func TestRunMemoryLinkErrors(t *testing.T) {
	if _, err := RunMemoryLink(MemLinkConfig{}); err == nil {
		t.Fatal("empty benchmark list should error")
	}
	cfg := smallMemLink("nonexistent")
	if _, err := RunMemoryLink(cfg); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestProtocolDecoupledFromReplacementPolicy(t *testing.T) {
	// §II-C: "CABLE is decoupled from replacement policies because it
	// tracks cache line evictions precisely." The full protocol must
	// stay bit-exact (Verify panics otherwise) whatever picks victims.
	for _, policy := range []cache.Policy{cache.PolicyFIFO, cache.PolicyRandom} {
		gen, _ := workload.New("omnetpp", 0, 0)
		pcfg := smallChipConfig()
		pcfg.LLCPolicy = policy
		pcfg.L4Policy = policy
		pchip, err := NewChip(pcfg, gen.LineData)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			pchip.Access(gen.Next(), 0) // Verify=true: corruption panics
		}
		if pchip.Fills == 0 || pchip.WBs == 0 {
			t.Fatalf("policy %v: protocol unexercised", policy)
		}
		if pchip.CableTotal().Value() <= 1.2 {
			t.Fatalf("policy %v: ratio %.2f", policy, pchip.CableTotal().Value())
		}
	}
}
