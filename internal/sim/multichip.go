package sim

import (
	"bytes"
	"fmt"
	"sync"

	"cable/internal/bits"
	"cable/internal/cache"
	"cable/internal/compress"
	"cable/internal/core"
	"cable/internal/fault"
	"cable/internal/link"
	"cable/internal/mem"
	"cable/internal/obs"
	"cable/internal/stats"
	"cable/internal/trace"
)

// MultiChipConfig drives the coherence-link study (§V-B, Fig 13): a
// NUMA system whose memory pages are interleaved round-robin across
// nodes. The benchmark runs on node 0; lines homed on other nodes cross
// a point-to-point coherence link with one CABLE pipeline per link pair.
type MultiChipConfig struct {
	Nodes     int // 4 in the paper, 2–8 in the NUMA-count study
	Benchmark string
	Accesses  int
	// PageLines is the interleaving granularity (4 KB pages = 64
	// lines).
	PageLines uint64
	// LLCBytes sizes each node's LLC (the requester's remote cache
	// and each home node's home cache).
	LLCBytes int
	LLCWays  int
	Link     link.Config
	Cable    core.Config
	// WithMeters attaches the baseline comparison set per link.
	WithMeters bool
	// PooledWMT enables the §IV-D super-WMT: all links share one
	// capacity-managed way-map pool instead of per-link full WMTs.
	// Write-back compression is disabled in this mode (pool evictions
	// are invisible to the remote side, §IV-C fallback).
	PooledWMT bool
	// PooledWMTFactor scales pool capacity relative to the remote
	// cache's line count (default 0.5 when pooled).
	PooledWMTFactor float64
	// Verify checks every decode bit-exact against the home data and
	// panics on mismatch. Defaults on; the fault-soak runs disable it
	// to prove graceful degradation.
	Verify bool
	// Fault configures deterministic corruption of the coherence-link
	// wire images. One injector covers all node-pair links in access
	// order, so the fault pattern is a pure function of (seed,
	// transfer stream). The zero value injects nothing and keeps every
	// code path byte-identical to a fault-free build.
	Fault fault.Config
	// Recorder, when non-nil, attaches a virtual-time flight recorder:
	// every access ticks it and each node-pair link feeds its own
	// "link<h>" track. Observation-only; excluded from content digests.
	Recorder *obs.Recorder
	// Replay, when non-nil, feeds a recorded capture instead of the
	// live Benchmark generator (mutually exclusive with Benchmark).
	// Behavioral, so folded into the digest.
	Replay *trace.Trace
}

// DefaultMultiChipConfig is the paper's 4-node setup.
func DefaultMultiChipConfig(benchmark string) MultiChipConfig {
	cable := core.DefaultConfig()
	// §VI-A: coherence-link hash tables are quarter-sized.
	cable.HashSizeFactor = 0.25
	return MultiChipConfig{
		Nodes: 4, Benchmark: benchmark, Accesses: 60000,
		PageLines: 64,
		LLCBytes:  1 << 20, LLCWays: 8,
		Link:       link.DefaultConfig(),
		Cable:      cable,
		WithMeters: true,
		Verify:     true,
	}
}

// coherenceLink is one node-pair CABLE pipeline: requester node 0's LLC
// is the remote cache; home node h's LLC is the home cache.
type coherenceLink struct {
	homeLLC *cache.Cache
	he      *core.HomeEnd
	re      *core.RemoteEnd
	lnk     *link.Link
	ratio   stats.Ratio
	meters  []Meter
	// track is this link's flight-recorder track (nil when recording
	// is off).
	track *obs.Track
}

// MultiChipResult reports the coherence-link compression outcomes.
type MultiChipResult struct {
	// Total maps scheme → aggregate ratio across all links.
	Total map[string]stats.Ratio
	// RemoteFills / DirtyWBs count cross-chip transfers.
	RemoteFills, DirtyWBs uint64
	// LocalAccesses never crossed a link.
	LocalAccesses uint64
	// FaultsInjected / DecodeErrors / RawFallbacks account the
	// graceful-degradation pipeline (zero in fault-free runs; equal to
	// each other by construction with injection on).
	FaultsInjected uint64
	DecodeErrors   uint64
	RawFallbacks   uint64
}

// Ratio returns a scheme's aggregate ratio.
func (r *MultiChipResult) Ratio(scheme string) float64 {
	if t, ok := r.Total[scheme]; ok {
		return t.Value()
	}
	return 1
}

// RunMultiChip executes the functional 4-chip coherence simulation.
func RunMultiChip(cfg MultiChipConfig) (*MultiChipResult, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("sim: multichip needs ≥2 nodes, got %d", cfg.Nodes)
	}
	src, err := newSingleSource(cfg.Benchmark, cfg.Replay, cfg.Accesses)
	if err != nil {
		return nil, err
	}
	store := mem.NewStore(64, src.LineData)
	home := func(addr uint64) int { return int((addr / cfg.PageLines) % uint64(cfg.Nodes)) }

	reqLLC := cache.New(cache.Config{Name: "llc0", SizeBytes: cfg.LLCBytes, Ways: cfg.LLCWays, LineSize: 64})
	cableCfg := cfg.Cable
	var pool *core.SuperWMT
	var geom *cache.Cache
	if cfg.PooledWMT {
		cableCfg.WritebackCompression = false
		factor := cfg.PooledWMTFactor
		if factor <= 0 {
			factor = 0.5
		}
		geom = cache.New(cache.Config{Name: "geom", SizeBytes: cfg.LLCBytes, Ways: cfg.LLCWays, LineSize: 64})
		pool = core.NewSuperWMT(int(float64(geom.NumLines())*factor), 4, geom, reqLLC)
	}
	links := make([]*coherenceLink, cfg.Nodes) // index by home node; [0] unused
	for h := 1; h < cfg.Nodes; h++ {
		homeLLC := cache.New(cache.Config{Name: fmt.Sprintf("llc%d", h), SizeBytes: cfg.LLCBytes, Ways: cfg.LLCWays, LineSize: 64})
		var wm core.WayMap
		if pool != nil {
			wm = pool.View(h)
		}
		he, err := core.NewHomeEndWithWayMap(cableCfg, homeLLC, reqLLC, wm)
		if err != nil {
			return nil, err
		}
		re, err := core.NewRemoteEnd(cableCfg, reqLLC)
		if err != nil {
			return nil, err
		}
		cl := &coherenceLink{homeLLC: homeLLC, he: he, re: re, lnk: link.New(cfg.Link)}
		if cfg.WithMeters {
			cl.meters = DefaultMeters(cfg.Link)
		}
		if cfg.Recorder != nil {
			cl.track = cfg.Recorder.Track(fmt.Sprintf("link%d", h))
			he.SetRecorder(cfg.Recorder, cl.track)
			re.SetRecorder(cfg.Recorder, cl.track)
		}
		links[h] = cl
	}
	rec := cfg.Recorder
	res := &MultiChipResult{Total: map[string]stats.Ratio{}}
	injector := fault.New(cfg.Fault)
	var dmx *degradeCounters
	var dshard uint32
	degrade := func() *degradeCounters {
		if dmx == nil {
			dmx, dshard = degradeMetricsIn(nil)
		}
		return dmx
	}
	// rawResend recovers a failed decode with an uncompressed raw
	// re-transfer (delivered clean — a fresh transmission, not a replay
	// of the corrupted image), charged on top of the failed attempt.
	// mw is the run's marshal scratch: every wire image is consumed
	// (sent + corrupted + unmarshaled) before the next marshal, so one
	// buffer serves the whole serial access loop instead of allocating
	// per transfer.
	var mw bits.Writer
	rawResend := func(cl *coherenceLink, data []byte, ackSeq uint64) int {
		res.RawFallbacks++
		degrade().rawFallbacks.Inc(dshard)
		p := core.Payload{Raw: data, AckSeq: ackSeq}
		var enc compress.Encoded
		if injector != nil {
			enc = p.MarshalGuardedInto(&mw, reqLLC.IndexBits(), reqLLC.WayBits())
		} else {
			enc = p.MarshalInto(&mw, reqLLC.IndexBits(), reqLLC.WayBits())
		}
		wire := cl.lnk.SendWire(enc.Data, enc.NBits)
		if rec != nil {
			rec.Degrade(cl.track, wire)
		}
		return wire
	}
	// corruptAndDecode runs one guarded payload image over cl's link
	// through the fault pipeline; see Chip.corruptAndDecode for the
	// accounting contract.
	corruptAndDecode := func(cl *coherenceLink, p core.Payload, want []byte, lineAddr uint64,
		decode func(core.Payload) ([]byte, error)) (wire int, derr error) {
		enc := p.MarshalGuardedInto(&mw, reqLLC.IndexBits(), reqLLC.WayBits())
		wire = cl.lnk.SendWire(enc.Data, enc.NBits)
		nb, corrupted := injector.Corrupt(enc.Data, enc.NBits)
		var got []byte
		q, derr := core.UnmarshalPayloadGuarded(compress.Encoded{Data: enc.Data, NBits: nb},
			reqLLC.IndexBits(), reqLLC.WayBits(), 64)
		if derr == nil {
			q.AckSeq = p.AckSeq
			got, derr = decode(q)
		}
		if corrupted {
			res.FaultsInjected++
			degrade().faultsInjected.Inc(dshard)
			if rec != nil {
				rec.Fault(cl.track)
			}
			if derr == nil && !bytes.Equal(got, want) {
				derr = fmt.Errorf("sim: corruption of line %#x escaped the CRC guard: %w", lineAddr, core.ErrCRCMismatch)
			}
			if derr == nil {
				derr = fmt.Errorf("sim: corrupted frame for line %#x absorbed: %w", lineAddr, core.ErrCRCMismatch)
			}
		} else {
			if derr != nil && cfg.Verify {
				panic(fmt.Sprintf("sim: multichip decode of clean image %#x: %v", lineAddr, derr))
			}
			if derr == nil && cfg.Verify && !bytes.Equal(got, want) {
				panic(fmt.Sprintf("sim: multichip clean transfer corrupted %#x", lineAddr))
			}
		}
		return wire, derr
	}
	writeVersions := writeVersionPool.Get().(map[uint64]uint32)
	mutate := func(data []byte, addr uint64) {
		v := writeVersions[addr]
		writeVersions[addr] = v + 1
		word := int(addr^uint64(v)) % (len(data) / 4)
		x := uint32((addr*2654435761+uint64(v)*40503)&0x3FF | 1)
		data[word*4] = byte(x)
		data[word*4+1] = byte(x >> 8)
		data[word*4+2] = 0
		data[word*4+3] = 0
	}

	// evictReq processes a requester-LLC eviction, routing the
	// notices (and a dirty write-back) to the owning home node.
	evictReq := func(ev cache.Eviction) {
		h := home(ev.LineAddr)
		if h == 0 {
			if ev.State == cache.Modified {
				store.Write(ev.LineAddr, ev.Data)
			}
			return
		}
		cl := links[h]
		if ev.State == cache.Modified {
			res.DirtyWBs++
			var togglesBefore uint64
			if rec != nil {
				togglesBefore = cl.lnk.Toggles
			}
			p := cl.re.EncodeWriteback(ev.Data)
			var wire int
			if injector != nil {
				var derr error
				wire, derr = corruptAndDecode(cl, p, ev.Data, ev.LineAddr, cl.he.DecodeWriteback)
				if derr != nil {
					res.DecodeErrors++
					degrade().decodeErrors.Inc(dshard)
					wire += rawResend(cl, ev.Data, p.AckSeq)
				}
			} else {
				got, err := cl.he.DecodeWriteback(p)
				if err != nil && cfg.Verify {
					panic(fmt.Sprintf("sim: multichip WB decode %#x: %v", ev.LineAddr, err))
				}
				if err == nil && cfg.Verify && !bytes.Equal(got, ev.Data) {
					panic(fmt.Sprintf("sim: multichip WB corrupted %#x", ev.LineAddr))
				}
				enc := p.MarshalInto(&mw, reqLLC.IndexBits(), reqLLC.WayBits())
				wire = cl.lnk.SendWire(enc.Data, enc.NBits)
				if err != nil {
					res.DecodeErrors++
					degrade().decodeErrors.Inc(dshard)
					wire += rawResend(cl, ev.Data, p.AckSeq)
				}
			}
			cl.ratio.Add(len(ev.Data)*8, wire)
			if rec != nil {
				rec.Transfer(cl.track, len(ev.Data)*8, wire, cl.lnk.Toggles-togglesBefore)
			}
			for _, m := range cl.meters {
				m.OnWriteback(ev.Data, 0)
			}
			// The home copy absorbs the requester's dirty data (what
			// the decode reconstructed, or the raw retry delivered).
			if hl, _, ok := cl.homeLLC.Probe(ev.LineAddr); ok {
				copy(hl.Data, ev.Data)
				hl.State = cache.Modified
			} else {
				panic(fmt.Sprintf("sim: multichip inclusivity violated for %#x", ev.LineAddr))
			}
		}
		seq := cl.re.OnEviction(ev.ID, ev.Data)
		cl.he.OnRemoteEviction(ev.ID, seq)
	}

	// ensureHomeLLC installs addr in its home node's LLC, handling the
	// inclusive back-invalidation of the requester's copy.
	ensureHomeLLC := func(cl *coherenceLink, addr uint64) {
		if _, _, ok := cl.homeLLC.Probe(addr); ok {
			return
		}
		idx := cl.homeLLC.IndexOf(addr)
		way := cl.homeLLC.VictimWay(idx)
		if victim, ok := cl.homeLLC.LineAddrOf(cache.LineID{Index: idx, Way: way}); ok {
			if ev, hit := reqLLC.Invalidate(victim); hit {
				evictReq(ev)
			}
			cl.he.OnHomeEviction(victim)
			if vl, _, _ := cl.homeLLC.Probe(victim); vl.State == cache.Modified {
				store.Write(victim, vl.Data)
			}
		}
		cl.homeLLC.InsertAt(addr, store.Read(addr), cache.Shared, way)
	}

	for i := 0; i < cfg.Accesses; i++ {
		if rec != nil {
			rec.Tick()
		}
		a, err := src.Next()
		if err != nil {
			return nil, fmt.Errorf("sim: access %d: %w", i, err)
		}
		h := home(a.LineAddr)
		if line, id, ok := reqLLC.Access(a.LineAddr); ok {
			if a.Write && line.State == cache.Shared {
				if h != 0 {
					links[h].re.OnUpgrade(id, line.Data)
					links[h].he.OnUpgrade(a.LineAddr)
				}
				line.State = cache.Modified
			}
			if a.Write {
				mutate(line.Data, a.LineAddr)
			}
			continue
		}
		// Requester miss: evict the victim first.
		idx := reqLLC.IndexOf(a.LineAddr)
		way := reqLLC.VictimWay(idx)
		if victim, ok := reqLLC.LineAddrOf(cache.LineID{Index: idx, Way: way}); ok {
			ev, _ := reqLLC.Invalidate(victim)
			evictReq(ev)
		}
		state := cache.Shared
		if a.Write {
			state = cache.Modified
		}
		if h == 0 {
			res.LocalAccesses++
			reqLLC.InsertAt(a.LineAddr, store.Read(a.LineAddr), state, way)
			if a.Write {
				l, _, _ := reqLLC.Probe(a.LineAddr)
				mutate(l.Data, a.LineAddr)
			}
			continue
		}
		cl := links[h]
		ensureHomeLLC(cl, a.LineAddr)
		res.RemoteFills++
		var togglesBefore uint64
		if rec != nil {
			togglesBefore = cl.lnk.Toggles
		}
		p, _, err := cl.he.EncodeFill(a.LineAddr, state, way)
		if err != nil {
			// Encode failure is a sender-side invariant violation, not
			// a link fault: always fatal.
			panic(fmt.Sprintf("sim: multichip fill %#x: %v", a.LineAddr, err))
		}
		want, _, _ := cl.homeLLC.Probe(a.LineAddr)
		var data []byte
		var wire int
		if injector != nil {
			var derr error
			wire, derr = corruptAndDecode(cl, p, want.Data, a.LineAddr, cl.re.DecodeFill)
			if derr != nil {
				res.DecodeErrors++
				degrade().decodeErrors.Inc(dshard)
				wire += rawResend(cl, want.Data, p.AckSeq)
			}
			data = want.Data
		} else {
			var derr error
			data, derr = cl.re.DecodeFill(p)
			if derr != nil && cfg.Verify {
				panic(fmt.Sprintf("sim: multichip decode %#x: %v", a.LineAddr, derr))
			}
			if derr == nil && cfg.Verify && !bytes.Equal(data, want.Data) {
				panic(fmt.Sprintf("sim: multichip fill corrupted %#x", a.LineAddr))
			}
			enc := p.MarshalInto(&mw, reqLLC.IndexBits(), reqLLC.WayBits())
			wire = cl.lnk.SendWire(enc.Data, enc.NBits)
			if derr != nil {
				res.DecodeErrors++
				degrade().decodeErrors.Inc(dshard)
				wire += rawResend(cl, want.Data, p.AckSeq)
				data = want.Data
			}
		}
		cl.ratio.Add(len(data)*8, wire)
		if rec != nil {
			rec.Transfer(cl.track, len(data)*8, wire, cl.lnk.Toggles-togglesBefore)
		}
		for _, m := range cl.meters {
			m.OnFill(want.Data, 0)
		}
		reqLLC.InsertAt(a.LineAddr, data, state, way)
		cl.re.OnFillInstalled(cache.LineID{Index: idx, Way: way}, data, state)
		cl.re.OnAck(p.AckSeq)
		if a.Write {
			l, _, _ := reqLLC.Probe(a.LineAddr)
			mutate(l.Data, a.LineAddr)
		}
	}

	var cableTotal stats.Ratio
	meterTotals := map[string]*stats.Ratio{}
	for h := 1; h < cfg.Nodes; h++ {
		cableTotal.Merge(links[h].ratio)
		for _, m := range links[h].meters {
			if t, ok := meterTotals[m.Name()]; ok {
				tt := m.Total()
				t.Merge(tt)
			} else {
				tt := m.Total()
				meterTotals[m.Name()] = &tt
			}
		}
	}
	res.Total["cable"] = cableTotal
	for name, t := range meterTotals {
		res.Total[name] = *t
	}

	// Recycle the run's directory state: the write-version map returns to
	// its pool and every cache backing and CABLE-end table goes back to
	// the shared pools, so sweeps that run many multichip cells stop
	// re-growing the same multi-megabyte allocations per cell.
	clear(writeVersions)
	writeVersionPool.Put(writeVersions)
	for h := 1; h < cfg.Nodes; h++ {
		links[h].he.Release()
		links[h].re.Release()
		links[h].homeLLC.Release()
	}
	reqLLC.Release()
	if geom != nil {
		geom.Release()
	}
	return res, nil
}

// writeVersionPool recycles the per-run write-version maps (address →
// mutation count). A full run touches tens of thousands of addresses,
// so rebuilding the map each cell was a measurable slice of multichip
// sweep allocations.
var writeVersionPool = sync.Pool{
	New: func() interface{} { return make(map[uint64]uint32, 1<<12) },
}
