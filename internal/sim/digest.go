package sim

import (
	"math"

	"cable/internal/cache"
	"cable/internal/core"
	"cable/internal/fault"
	"cable/internal/link"
	"cable/internal/trace"
)

// This file derives canonical content digests for simulation configs.
// Two configs with equal digests produce bit-identical simulation
// results: every behavioral field is folded in with a stable, explicit
// encoding (field order is part of the format), while observation-only
// fields (Metrics registries, tracers) are deliberately excluded. The
// experiments' cell memo keys on these digests.
//
// The digest is 128 bits of FNV-1a, computed as two independent 64-bit
// streams over the same bytes (different offset bases), which is far
// past collision range for the handful of distinct cells a report run
// produces.

// Digest is a 128-bit canonical config fingerprint.
type Digest [16]byte

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
	// fnvOffsetAlt decorrelates the second 64-bit stream.
	fnvOffsetAlt = 0x6c62272e07bb0142
)

type digester struct {
	h1, h2 uint64
}

func newDigester() digester {
	return digester{h1: fnvOffset64, h2: fnvOffsetAlt}
}

func (d *digester) byte(b byte) {
	d.h1 = (d.h1 ^ uint64(b)) * fnvPrime64
	d.h2 = (d.h2 ^ uint64(b)) * fnvPrime64
}

func (d *digester) u64(v uint64) {
	for i := 0; i < 8; i++ {
		d.byte(byte(v >> (8 * i)))
	}
}

func (d *digester) i(v int)       { d.u64(uint64(int64(v))) }
func (d *digester) i64(v int64)   { d.u64(uint64(v)) }
func (d *digester) f64(v float64) { d.u64(math.Float64bits(v)) }

func (d *digester) bool(v bool) {
	if v {
		d.byte(1)
	} else {
		d.byte(0)
	}
}

// str folds in a length-prefixed string, so concatenations can't alias.
func (d *digester) str(s string) {
	d.i(len(s))
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
}

// folder adapts the internal digester to spec.Folder so workload
// specs fold themselves into config digests without importing sim.
type folder struct{ d *digester }

func (f folder) Str(s string)  { f.d.str(s) }
func (f folder) Int(v int)     { f.d.i(v) }
func (f folder) U64(v uint64)  { f.d.u64(v) }
func (f folder) F64(v float64) { f.d.f64(v) }
func (f folder) Bool(v bool)   { f.d.bool(v) }

// replays folds a replay capture list: count, then each capture's
// content digest (which covers header and every record).
func (d *digester) replays(ts []*trace.Trace) {
	d.i(len(ts))
	for _, t := range ts {
		td := t.Digest()
		for _, b := range td {
			d.byte(b)
		}
	}
}

// singleReplay folds an optional single capture.
func (d *digester) singleReplay(t *trace.Trace) {
	if t == nil {
		d.replays(nil)
		return
	}
	d.replays([]*trace.Trace{t})
}

func (d *digester) sum() Digest {
	var out Digest
	for i := 0; i < 8; i++ {
		out[i] = byte(d.h1 >> (8 * i))
		out[8+i] = byte(d.h2 >> (8 * i))
	}
	return out
}

func (d *digester) coreConfig(c core.Config) {
	d.i(c.MaxSearchSigs)
	d.i(c.AccessCount)
	d.i(c.MaxRefs)
	d.i(c.BucketDepth)
	d.i(c.InsertSigs)
	d.f64(c.HashSizeFactor)
	d.f64(c.StandaloneThreshold)
	d.str(c.EngineName)
	d.i64(c.SigSeed)
	d.i(c.PointerBitsOverride)
	d.bool(c.WritebackCompression)
	// c.Metrics is observation-only: excluded.
}

func (d *digester) linkConfig(c link.Config) {
	d.i(c.WidthBits)
	d.f64(c.FreqHz)
	d.bool(c.Packed)
}

func (d *digester) policy(p cache.Policy) { d.byte(byte(p)) }

func (d *digester) faultConfig(c fault.Config) {
	d.f64(c.BitRate)
	d.f64(c.TruncRate)
	d.u64(c.Seed)
}

func (d *digester) chipConfig(c ChipConfig) {
	d.i(c.LLCBytes)
	d.i(c.LLCWays)
	d.i(c.L4Bytes)
	d.i(c.L4Ways)
	d.i(c.LineSize)
	d.policy(c.LLCPolicy)
	d.policy(c.L4Policy)
	d.linkConfig(c.Link)
	d.coreConfig(c.Cable)
	d.bool(c.EnableCable)
	d.str(c.Scheme)
	d.bool(c.Verify)
	d.bool(c.TagPointers)
	d.bool(c.SilentEvictions)
	// Fault is behavioral: injected corruption changes wire bits and
	// the degradation counters, so it must split memo cells.
	d.faultConfig(c.Fault)
	// c.Metrics is observation-only: excluded.
}

// Digest fingerprints every behavioral field of the config. Trace and
// Metrics are excluded: they observe the simulation without altering
// it (callers that attach a Tracer must not be memoized — the trace
// itself is a fresh side effect per run).
func (c MemLinkConfig) Digest() Digest {
	d := newDigester()
	d.str("memlink/v1")
	d.chipConfig(c.Chip)
	d.i(len(c.Benchmarks))
	for _, b := range c.Benchmarks {
		d.str(b)
	}
	d.i(c.AccessesPerProgram)
	d.bool(c.ScaleCachesByPrograms)
	d.bool(c.WithMeters)
	// Workload and Replay change the access stream, so they split memo
	// cells: distinct specs (or captures) must never alias.
	d.bool(c.Workload != nil)
	if c.Workload != nil {
		c.Workload.Fold(folder{&d})
	}
	d.replays(c.Replay)
	return d.sum()
}

// Digest fingerprints every behavioral field of the config; Recorder
// is excluded (observation-only).
func (c MultiChipConfig) Digest() Digest {
	d := newDigester()
	d.str("multichip/v1")
	d.i(c.Nodes)
	d.str(c.Benchmark)
	d.i(c.Accesses)
	d.u64(c.PageLines)
	d.i(c.LLCBytes)
	d.i(c.LLCWays)
	d.linkConfig(c.Link)
	d.coreConfig(c.Cable)
	d.bool(c.WithMeters)
	d.bool(c.PooledWMT)
	d.f64(c.PooledWMTFactor)
	d.bool(c.Verify)
	d.faultConfig(c.Fault)
	d.singleReplay(c.Replay)
	return d.sum()
}

// Digest fingerprints every behavioral field of the config; Recorder
// is excluded (observation-only).
func (c NonInclusiveConfig) Digest() Digest {
	d := newDigester()
	d.str("noninclusive/v1")
	d.str(c.Benchmark)
	d.i(c.Accesses)
	d.i(c.RemoteBytes)
	d.i(c.RemoteWays)
	d.i(c.HomeBytes)
	d.i(c.HomeWays)
	d.linkConfig(c.Link)
	d.coreConfig(c.Cable)
	d.bool(c.Verify)
	d.faultConfig(c.Fault)
	d.singleReplay(c.Replay)
	return d.sum()
}

// Digest fingerprints every behavioral field of the config; Metrics
// and Recorder are excluded (observation-only).
func (c TimingConfig) Digest() Digest {
	d := newDigester()
	d.str("timing/v1")
	d.str(c.Scheme)
	d.str(c.Benchmark)
	d.i(c.Threads)
	d.i(c.TotalTh)
	d.u64(c.InstrPerTh)
	d.u64(c.WarmupPerTh)
	d.f64(c.CoreHz)
	d.i(c.Private.L1Bytes)
	d.i(c.Private.L1Ways)
	d.i(c.Private.L1Cycles)
	d.i(c.Private.L2Bytes)
	d.i(c.Private.L2Ways)
	d.i(c.Private.L2Cycles)
	d.i(c.Private.LineSize)
	d.i(c.LLCCycles)
	d.i(c.L4Cycles)
	d.f64(c.LinkSetupNs)
	d.f64(c.TotalLinkBW)
	d.f64(c.TotalDRAMBW)
	d.i(c.LLCPerThread)
	d.i(c.L4Ratio)
	d.i(c.RequestBits)
	d.linkConfig(c.Link)
	d.coreConfig(c.Cable)
	d.bool(c.OnOff)
	d.f64(c.SampleWindowSec)
	d.bool(c.NoWorkingSetScale)
	d.bool(c.Verify)
	d.faultConfig(c.Fault)
	return d.sum()
}

// Digester is the exported form of the canonical config digester, for
// simulator packages that live outside sim (internal/topo) but whose
// cells share the experiments' memo map. The folding primitives are
// the same stable encodings the sim digests use, so cross-package
// digests can never alias: every digest starts with a version-tagged
// string ("topo/v1", "memlink/v1", ...) and the length-prefixed string
// encoding keeps field concatenations unambiguous.
type Digester struct {
	d digester
}

// NewDigester starts a canonical digest stream tagged with a format
// version string (e.g. "topo/v1").
func NewDigester(version string) *Digester {
	d := &Digester{d: newDigester()}
	d.Str(version)
	return d
}

// Str folds in a length-prefixed string.
func (d *Digester) Str(s string) { d.d.str(s) }

// Int folds in an int.
func (d *Digester) Int(v int) { d.d.i(v) }

// U64 folds in a uint64.
func (d *Digester) U64(v uint64) { d.d.u64(v) }

// F64 folds in a float64 (by bit pattern).
func (d *Digester) F64(v float64) { d.d.f64(v) }

// Bool folds in a bool.
func (d *Digester) Bool(v bool) { d.d.bool(v) }

// LinkConfig folds in a link configuration with the canonical field
// order shared by every sim digest.
func (d *Digester) LinkConfig(c link.Config) { d.d.linkConfig(c) }

// CoreConfig folds in a CABLE core configuration (Metrics excluded:
// observation-only).
func (d *Digester) CoreConfig(c core.Config) { d.d.coreConfig(c) }

// FaultConfig folds in a fault-injection configuration.
func (d *Digester) FaultConfig(c fault.Config) { d.d.faultConfig(c) }

// Sum finalizes the 128-bit digest.
func (d *Digester) Sum() Digest { return d.d.sum() }
