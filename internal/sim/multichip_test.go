package sim

import "testing"

func quickMultiChip(bench string) MultiChipConfig {
	cfg := DefaultMultiChipConfig(bench)
	cfg.LLCBytes = 128 << 10
	cfg.Accesses = 25000
	return cfg
}

func TestMultiChipRuns(t *testing.T) {
	res, err := RunMultiChip(quickMultiChip("zeusmp"))
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteFills == 0 {
		t.Fatal("no cross-chip fills — page interleaving broken")
	}
	if res.DirtyWBs == 0 {
		t.Fatal("no dirty write-backs crossed a link")
	}
	if res.LocalAccesses == 0 {
		t.Fatal("no local (node-0 homed) traffic")
	}
	for _, scheme := range []string{"cable", "cpack", "gzip", "none"} {
		r, ok := res.Total[scheme]
		if !ok || r.SourceBits == 0 {
			t.Fatalf("scheme %s missing or empty", scheme)
		}
	}
	if res.Ratio("cable") <= res.Ratio("cpack") {
		t.Fatalf("coherence link: cable %.2f should beat cpack %.2f",
			res.Ratio("cable"), res.Ratio("cpack"))
	}
	t.Logf("zeusmp coherence: cable=%.2f gzip=%.2f cpack=%.2f (fills=%d wbs=%d local=%d)",
		res.Ratio("cable"), res.Ratio("gzip"), res.Ratio("cpack"),
		res.RemoteFills, res.DirtyWBs, res.LocalAccesses)
}

func TestMultiChipPageInterleaving(t *testing.T) {
	// With 4 nodes and round-robin pages, roughly 3/4 of misses are
	// remote.
	res, err := RunMultiChip(quickMultiChip("soplex"))
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.RemoteFills) / float64(res.RemoteFills+res.LocalAccesses)
	if frac < 0.6 || frac > 0.9 {
		t.Fatalf("remote fraction %.2f, want ≈0.75", frac)
	}
}

func TestMultiChipNUMACountInsensitive(t *testing.T) {
	// §VI-E: compression ratios are largely unaffected by node count.
	ratios := map[int]float64{}
	for _, nodes := range []int{2, 4, 8} {
		cfg := quickMultiChip("dealII")
		cfg.Nodes = nodes
		res, err := RunMultiChip(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ratios[nodes] = res.Ratio("cable")
	}
	for _, nodes := range []int{4, 8} {
		rel := ratios[nodes] / ratios[2]
		if rel < 0.7 || rel > 1.4 {
			t.Fatalf("cable ratio varies too much with NUMA count: %v", ratios)
		}
	}
}

func TestMultiChipRejectsBadConfig(t *testing.T) {
	cfg := quickMultiChip("zeusmp")
	cfg.Nodes = 1
	if _, err := RunMultiChip(cfg); err == nil {
		t.Fatal("1 node should error")
	}
	cfg = quickMultiChip("nope")
	if _, err := RunMultiChip(cfg); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestMultiChipPooledWMT(t *testing.T) {
	// §IV-D super-WMT: the three links share one capacity-managed
	// pool. Correctness holds (verified per transfer); compression
	// degrades only modestly versus private full WMTs.
	private, err := RunMultiChip(quickMultiChip("dealII"))
	if err != nil {
		t.Fatal(err)
	}
	pcfg := quickMultiChip("dealII")
	pcfg.PooledWMT = true
	pcfg.PooledWMTFactor = 0.25
	pooled, err := RunMultiChip(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	pr, qr := private.Ratio("cable"), pooled.Ratio("cable")
	if qr > pr*1.05 {
		t.Fatalf("pooled %.2f should not beat private %.2f", qr, pr)
	}
	if qr < pr*0.5 {
		t.Fatalf("pooled %.2f degraded too much vs private %.2f", qr, pr)
	}
	if qr <= pooled.Ratio("cpack") {
		t.Fatalf("pooled cable %.2f should still beat cpack %.2f", qr, pooled.Ratio("cpack"))
	}
	t.Logf("coherence cable ratio: private WMTs %.2f, pooled super-WMT %.2f", pr, qr)
}
