package sim

import "testing"

func TestPrivateHierFiltering(t *testing.T) {
	p := newPrivateHier(DefaultPrivateConfig())
	if lvl := p.lookup(100); lvl != 0 {
		t.Fatalf("cold access hit level %d", lvl)
	}
	if lvl := p.lookup(100); lvl != 1 {
		t.Fatalf("second access should hit L1, got %d", lvl)
	}
	if p.L1Accesses != 2 || p.L2Accesses != 1 {
		t.Fatalf("counters: L1=%d L2=%d", p.L1Accesses, p.L2Accesses)
	}
}

func TestPrivateHierL2Promotion(t *testing.T) {
	p := newPrivateHier(PrivateConfig{
		L1Bytes: 4 << 10, L1Ways: 4, L1Cycles: 1,
		L2Bytes: 64 << 10, L2Ways: 8, L2Cycles: 4,
		LineSize: 64,
	})
	// Touch enough lines to overflow L1 (64 lines) but not L2.
	for addr := uint64(0); addr < 256; addr++ {
		p.lookup(addr)
	}
	// Line 0 was evicted from L1 but should still be in L2.
	if lvl := p.lookup(0); lvl != 2 {
		t.Fatalf("expected L2 hit for evicted L1 line, got %d", lvl)
	}
	// After promotion it hits L1 again.
	if lvl := p.lookup(0); lvl != 1 {
		t.Fatalf("expected L1 hit after promotion, got %d", lvl)
	}
}

func TestTimingPrivateLevelsPopulated(t *testing.T) {
	res, err := RunTiming(quickTiming("none", "gobmk", 256))
	if err != nil {
		t.Fatal(err)
	}
	if res.L1Accesses == 0 || res.L2Accesses == 0 {
		t.Fatalf("private counters empty: L1=%d L2=%d", res.L1Accesses, res.L2Accesses)
	}
	if res.L2Accesses >= res.L1Accesses {
		t.Fatalf("L2 accesses %d should be < L1 %d (L1 filters)", res.L2Accesses, res.L1Accesses)
	}
	// Writes bypass the private levels (write-through model), so the
	// LLC sees L2-miss reads plus every store — strictly fewer than
	// total references.
	if res.LLCAccesses >= res.L1Accesses {
		t.Fatalf("LLC accesses %d should be < total refs %d", res.LLCAccesses, res.L1Accesses)
	}
}
