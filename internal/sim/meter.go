// Package sim ties the substrates together: a functional memory-link
// simulator (LLC + off-chip L4 + CABLE + baseline compressors measuring
// the same traffic), a multi-chip NUMA coherence simulator, and a
// cycle-approximate timing model for the throughput/latency studies.
package sim

import (
	"cable/internal/compress"
	"cable/internal/link"
	"cable/internal/obs"
	"cable/internal/stats"
)

// Meter measures one compression scheme over the off-chip transfer
// stream. All meters see the identical fill/write-back data that CABLE
// compresses, so per-scheme ratios are directly comparable (Fig 11/12).
type Meter interface {
	Name() string
	// OnFill accounts a home→remote data transfer by owner (program
	// index, for the multiprogram studies).
	OnFill(data []byte, owner int)
	// OnWriteback accounts a remote→home dirty transfer.
	OnWriteback(data []byte, owner int)
	// Ratio returns the accumulated compression ratio for one owner.
	Ratio(owner int) stats.Ratio
	// Total returns the aggregate ratio across owners.
	Total() stats.Ratio
	// Link exposes the meter's quantizing link (toggles, wire bits).
	Link() *link.Link
	// LastWire returns the on-wire bits of the most recent transfer,
	// which the timing simulator serializes over its channel.
	LastWire() int
	// ResetCounters zeroes accumulated ratios and link accounting
	// while keeping compressor state (a gzip window survives — only
	// the bookkeeping restarts after warm-up).
	ResetCounters()
}

// meterBase implements the owner bookkeeping shared by meters.
type meterBase struct {
	name     string
	lnk      *link.Link
	reg      *obs.Registry // nil = process-default
	owners   map[int]*stats.Ratio
	total    stats.Ratio
	lastWire int

	mx    *simCounters
	shard uint32
}

func newMeterBase(name string, cfg link.Config) meterBase {
	return newMeterBaseIn(name, cfg, nil)
}

func newMeterBaseIn(name string, cfg link.Config, reg *obs.Registry) meterBase {
	m := meterBase{name: name, lnk: link.NewIn(cfg, reg), reg: reg, owners: map[int]*stats.Ratio{}}
	m.mx, m.shard = simMetricsIn(reg)
	return m
}

func (m *meterBase) Name() string { return m.name }

func (m *meterBase) Link() *link.Link { return m.lnk }

func (m *meterBase) account(owner, sourceBits, payloadBits int, wire compress.Encoded) {
	m.mx.meterTransfers.Inc(m.shard)
	m.mx.meterSourceBits.Add(m.shard, uint64(sourceBits))
	wireBits := m.lnk.SendWire(wire.Data, payloadBits)
	m.lastWire = wireBits
	if r := m.owners[owner]; r != nil {
		r.Add(sourceBits, wireBits)
	} else {
		m.owners[owner] = &stats.Ratio{SourceBits: uint64(sourceBits), WireBits: uint64(wireBits)}
	}
	m.total.Add(sourceBits, wireBits)
}

func (m *meterBase) Ratio(owner int) stats.Ratio {
	if r := m.owners[owner]; r != nil {
		return *r
	}
	return stats.Ratio{}
}

func (m *meterBase) Total() stats.Ratio { return m.total }

func (m *meterBase) LastWire() int { return m.lastWire }

func (m *meterBase) ResetCounters() {
	cfg := m.lnk.Config()
	*m.lnk = *link.NewIn(cfg, m.reg)
	m.owners = map[int]*stats.Ratio{}
	m.total = stats.Ratio{}
	m.lastWire = 0
}

// RawMeter is the uncompressed baseline: every transfer is a full line.
type RawMeter struct{ meterBase }

// NewRawMeter builds the no-compression baseline meter.
func NewRawMeter(cfg link.Config) *RawMeter {
	return NewRawMeterIn(cfg, nil)
}

// NewRawMeterIn is NewRawMeter with an explicit metrics registry.
func NewRawMeterIn(cfg link.Config, reg *obs.Registry) *RawMeter {
	return &RawMeter{newMeterBaseIn("none", cfg, reg)}
}

// OnFill implements Meter.
func (m *RawMeter) OnFill(data []byte, owner int) {
	m.account(owner, len(data)*8, len(data)*8, compress.Encoded{Data: data, NBits: len(data) * 8})
}

// OnWriteback implements Meter.
func (m *RawMeter) OnWriteback(data []byte, owner int) { m.OnFill(data, owner) }

// EngineMeter measures a per-line engine (BDI, CPACK, CPACK128,
// LBE256): each transfer is compressed independently. These engines are
// self-delimiting with bounded worst-case expansion (C-Pack: 34/32 bits
// per word), so no flag or raw fallback is transmitted — unlike CABLE,
// whose payload carries the §III-E header.
type EngineMeter struct {
	meterBase
	engine compress.Engine
}

// NewEngineMeter wraps a per-line engine.
func NewEngineMeter(e compress.Engine, cfg link.Config) *EngineMeter {
	return NewEngineMeterIn(e, cfg, nil)
}

// NewEngineMeterIn is NewEngineMeter with an explicit metrics registry.
func NewEngineMeterIn(e compress.Engine, cfg link.Config, reg *obs.Registry) *EngineMeter {
	return &EngineMeter{meterBase: newMeterBaseIn(e.Name(), cfg, reg), engine: e}
}

func (m *EngineMeter) measure(data []byte, owner int) {
	enc := m.engine.Compress(data, nil)
	m.account(owner, len(data)*8, enc.NBits, enc)
}

// OnFill implements Meter.
func (m *EngineMeter) OnFill(data []byte, owner int) { m.measure(data, owner) }

// OnWriteback implements Meter.
func (m *EngineMeter) OnWriteback(data []byte, owner int) { m.measure(data, owner) }

// StreamMeter measures the gzip-class streaming compressor: one
// persistent dictionary per link direction, shared by every program on
// the link — which is exactly how it suffers dictionary pollution in
// the destructive multiprogram study (§VI-C).
type StreamMeter struct {
	meterBase
	down *compress.LZSS // home→remote (fills)
	up   *compress.LZSS // remote→home (write-backs)
}

// NewStreamMeter builds a gzip meter with the given window (32 KB in
// the paper — gzip's maximum).
func NewStreamMeter(name string, window int, cfg link.Config) *StreamMeter {
	return NewStreamMeterIn(name, window, cfg, nil)
}

// NewStreamMeterIn is NewStreamMeter with an explicit metrics registry.
func NewStreamMeterIn(name string, window int, cfg link.Config, reg *obs.Registry) *StreamMeter {
	return &StreamMeter{
		meterBase: newMeterBaseIn(name, cfg, reg),
		down:      compress.NewLZSS(name, window),
		up:        compress.NewLZSS(name, window),
	}
}

// OnFill implements Meter.
func (m *StreamMeter) OnFill(data []byte, owner int) {
	enc := m.down.Compress(data)
	m.account(owner, len(data)*8, enc.NBits, enc)
}

// OnWriteback implements Meter.
func (m *StreamMeter) OnWriteback(data []byte, owner int) {
	enc := m.up.Compress(data)
	m.account(owner, len(data)*8, enc.NBits, enc)
}

// DefaultMeters builds the paper's comparison set (Fig 12): BDI, CPACK,
// CPACK128, LBE256 and gzip with a 32 KB window.
func DefaultMeters(cfg link.Config) []Meter {
	return DefaultMetersIn(cfg, nil)
}

// DefaultMetersIn is DefaultMeters with an explicit metrics registry.
func DefaultMetersIn(cfg link.Config, reg *obs.Registry) []Meter {
	return []Meter{
		NewRawMeterIn(cfg, reg),
		NewEngineMeterIn(compress.NewBDI(), cfg, reg),
		NewEngineMeterIn(compress.NewCPack("cpack", 64), cfg, reg),
		NewEngineMeterIn(compress.NewCPack("cpack128", 128), cfg, reg),
		NewEngineMeterIn(compress.NewLBE("lbe256", 256), cfg, reg),
		NewStreamMeterIn("gzip", 32<<10, cfg, reg),
	}
}
