package sim

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"cable/internal/trace"
	"cable/internal/workload"
	"cable/internal/workload/spec"
)

// mixJSON is the acceptance-shaped mix: two clients, poisson +
// gamma-bursty arrivals, one phase change.
const mixJSON = `{
  "version": 1,
  "name": "sim-mix",
  "seed": 11,
  "mean_gap": 60,
  "clients": [
    {"id": "front", "rate_fraction": 0.6, "arrival": {"process": "poisson"},
     "content": {"base": "gcc"},
     "phases": [{"at": 0.5, "content": {"base": "omnetpp", "working_set_lines": 8192}}]},
    {"id": "batch", "rate_fraction": 0.4, "arrival": {"process": "gamma", "cv": 3},
     "content": {"base": "mcf", "stream_frac": 0.5}}
  ]
}`

func mustMix(t *testing.T, src string) *spec.Workload {
	t.Helper()
	w, err := spec.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func quickMixConfig(w *spec.Workload) MemLinkConfig {
	cfg := DefaultMemLinkConfig()
	cfg.Workload = w
	cfg.AccessesPerProgram = 3000
	cfg.Chip.LLCBytes = 128 << 10
	cfg.Chip.L4Bytes = 512 << 10
	return cfg
}

// stripChip drops the chip pointer so two runs' results can be
// compared structurally.
func stripChip(res *MemLinkResult) *MemLinkResult {
	c := *res
	c.Chip = nil
	return &c
}

func TestMemLinkSpecRunsAndRepeats(t *testing.T) {
	w := mustMix(t, mixJSON)
	cfg := quickMixConfig(w)
	a, err := RunMemoryLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Programs; len(got) != 2 || got[0] != "front" || got[1] != "batch" {
		t.Fatalf("programs = %v", got)
	}
	for _, scheme := range []string{"cable", "cpack", "gzip"} {
		if r, ok := a.Total[scheme]; !ok || r.SourceBits == 0 {
			t.Fatalf("scheme %s missing or empty", scheme)
		}
	}
	b, err := RunMemoryLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripChip(a), stripChip(b)) {
		t.Fatal("spec-driven run is not deterministic across repeats")
	}
}

// recordMixClients captures a live mix's per-client streams in memory.
func recordMixClients(t *testing.T, w *spec.Workload, n int) []*trace.Trace {
	t.Helper()
	bufs := map[string]*bytes.Buffer{}
	err := spec.RecordClients(w, n, func(id string) (io.WriteCloser, error) {
		b := &bytes.Buffer{}
		bufs[id] = b
		return nopCloser{b}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	traces := make([]*trace.Trace, len(w.Clients))
	for i, id := range w.ClientIDs() {
		tr, err := trace.ReadAll(bytes.NewReader(bufs[id].Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = tr
	}
	return traces
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

// TestMemLinkSpecReplayMatchesLive is the record→replay contract for
// spec mixes: per-client captures of a live mix, replayed through the
// same spec, reproduce every scheme's ratios exactly.
func TestMemLinkSpecReplayMatchesLive(t *testing.T) {
	w := mustMix(t, mixJSON)
	cfg := quickMixConfig(w)
	live, err := RunMemoryLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replay = recordMixClients(t, w, cfg.AccessesPerProgram*len(w.Clients))
	replay, err := RunMemoryLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripChip(live), stripChip(replay)) {
		t.Fatal("spec replay diverged from the live mix")
	}
}

// recordBench captures a benchmark generator's stream in memory,
// instance-decorated to match a live co-run slot (base 0: the replay
// source rebases onto its program slot).
func recordBench(t *testing.T, bench string, instance, n int) *trace.Trace {
	t.Helper()
	gen, err := workload.New(bench, instance, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Record(&buf, gen, n); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestMemLinkReplayMatchesLive replays plain per-program captures
// against the equivalent live multiprogram run.
func TestMemLinkReplayMatchesLive(t *testing.T) {
	cfg := DefaultMemLinkConfig("gcc", "mcf")
	cfg.AccessesPerProgram = 3000
	cfg.Chip.LLCBytes = 128 << 10
	cfg.Chip.L4Bytes = 512 << 10
	live, err := RunMemoryLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayCfg := cfg
	replayCfg.Benchmarks = nil
	replayCfg.Replay = []*trace.Trace{
		recordBench(t, "gcc", 0, cfg.AccessesPerProgram),
		recordBench(t, "mcf", 1, cfg.AccessesPerProgram),
	}
	replay, err := RunMemoryLink(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripChip(live), stripChip(replay)) {
		t.Fatal("capture replay diverged from the live generators")
	}
}

// TestMemLinkReplayTooShort pins the upfront length check: a capture
// shorter than the run fails immediately with ErrExhausted.
func TestMemLinkReplayTooShort(t *testing.T) {
	cfg := DefaultMemLinkConfig()
	cfg.AccessesPerProgram = 100
	cfg.Replay = []*trace.Trace{recordBench(t, "gcc", 0, 50)}
	if _, err := RunMemoryLink(cfg); err == nil {
		t.Fatal("short capture should fail the run upfront")
	}
}

// TestMultiChipReplayMatchesLive replays a capture through the
// coherence-link driver.
func TestMultiChipReplayMatchesLive(t *testing.T) {
	cfg := quickMultiChip("zeusmp")
	cfg.Accesses = 8000
	live, err := RunMultiChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayCfg := cfg
	replayCfg.Benchmark = ""
	replayCfg.Replay = recordBench(t, "zeusmp", 0, cfg.Accesses)
	replay, err := RunMultiChip(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replay) {
		t.Fatal("multichip replay diverged from the live generator")
	}
}

// TestWorkloadDigestsDistinct pins the memo-aliasing contract: spec,
// replay and benchmark runs of otherwise-identical configs key
// different memo cells, and distinct specs/captures never collide.
func TestWorkloadDigestsDistinct(t *testing.T) {
	w := mustMix(t, mixJSON)
	w2 := mustMix(t, mixJSON)
	w2.Seed = 12345
	base := quickMixConfig(w)
	altSpec := quickMixConfig(w2)
	replay := base
	replay.Replay = recordMixClients(t, w, 200)
	bench := base
	bench.Workload = nil
	bench.Benchmarks = []string{"gcc", "mcf"}
	plainReplay := bench
	plainReplay.Benchmarks = nil
	plainReplay.Replay = []*trace.Trace{recordBench(t, "gcc", 0, 200)}
	seen := map[[16]byte]string{}
	for name, cfg := range map[string]MemLinkConfig{
		"spec":         base,
		"spec-alt":     altSpec,
		"spec-replay":  replay,
		"benchmarks":   bench,
		"plain-replay": plainReplay,
	} {
		d := cfg.Digest()
		if prev, ok := seen[d]; ok {
			t.Fatalf("digest collision: %s aliases %s", name, prev)
		}
		seen[d] = name
	}
}
