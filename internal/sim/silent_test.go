package sim

import (
	"testing"

	"cable/internal/cache"
)

// TestSilentEvictionsCorrect runs the full protocol with §IV-B silent
// evictions: no clean-eviction notices, displacement tracked purely via
// replacement-way info. Verify stays on, so any decode divergence
// panics.
func TestSilentEvictionsCorrect(t *testing.T) {
	cfg := smallMemLink("omnetpp")
	cfg.Chip.SilentEvictions = true
	res, err := RunMemoryLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chip := res.Chip
	if chip.Fills == 0 || chip.WBs == 0 {
		t.Fatalf("protocol unexercised: fills=%d wbs=%d", chip.Fills, chip.WBs)
	}
	if chip.Notices != 0 {
		t.Fatalf("silent mode sent %d eviction notices", chip.Notices)
	}
	if chip.Remote.EvictionBuffer().Len() != 0 {
		t.Fatalf("silent mode buffered %d evictions", chip.Remote.EvictionBuffer().Len())
	}
	// Inclusivity must still hold.
	chip.LLC.ForEach(func(addr uint64, _ cache.LineID, _ *cache.Line) {
		if _, _, ok := chip.L4.Probe(addr); !ok {
			t.Fatalf("LLC line %#x missing from L4 under silent evictions", addr)
		}
	})
}

// TestSilentVsExplicitEquivalentRatios: the two protocols should
// compress nearly identically — silent mode may do marginally better
// because a fill can reference its own victim.
func TestSilentVsExplicitEquivalentRatios(t *testing.T) {
	explicit, err := RunMemoryLink(smallMemLink("dealII"))
	if err != nil {
		t.Fatal(err)
	}
	scfg := smallMemLink("dealII")
	scfg.Chip.SilentEvictions = true
	silent, err := RunMemoryLink(scfg)
	if err != nil {
		t.Fatal(err)
	}
	e, s := explicit.Ratio("cable"), silent.Ratio("cable")
	if s < e*0.95 {
		t.Fatalf("silent ratio %.3f much worse than explicit %.3f", s, e)
	}
	if explicit.Chip.Notices == 0 {
		t.Fatal("explicit mode sent no notices")
	}
	t.Logf("cable ratio: explicit %.3f (%d notices), silent %.3f (0 notices)",
		e, explicit.Chip.Notices, s)
}
