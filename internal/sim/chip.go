package sim

import (
	"bytes"
	"fmt"

	"cable/internal/bits"
	"cable/internal/cache"
	"cable/internal/compress"
	"cable/internal/core"
	"cable/internal/fault"
	"cable/internal/link"
	"cable/internal/mem"
	"cable/internal/obs"
	"cable/internal/stats"
	"cable/internal/workload"
)

// ChipConfig sizes a memory-link chip: an on-chip LLC (the remote
// cache) backed over a narrow off-chip link by a DRAM buffer L4 (the
// home cache, inclusive of the LLC — the Table IV configuration).
type ChipConfig struct {
	LLCBytes int
	LLCWays  int
	L4Bytes  int
	L4Ways   int
	LineSize int
	// LLCPolicy / L4Policy select replacement policies (LRU default).
	// CABLE's synchronization is policy-agnostic (§II-C).
	LLCPolicy cache.Policy
	L4Policy  cache.Policy
	Link      link.Config
	Cable     core.Config
	// EnableCable runs the full CABLE protocol (home/remote ends).
	EnableCable bool
	// Scheme selects the compressor whose bits drive Transfer
	// reporting when CABLE is disabled: "none", "bdi", "cpack",
	// "cpack128", "lbe256" or "gzip". The timing simulator runs one
	// scheme per simulation this way.
	Scheme string
	// Verify decodes every CABLE payload and checks it bit-exact
	// against the home data. Always on in tests; the pure-throughput
	// benches may disable it.
	Verify bool
	// TagPointers prices each reference at 40 tag bits instead of
	// RemoteLID width — the §III-D ablation quantifying what the WMT
	// buys.
	TagPointers bool
	// SilentEvictions enables the §IV-B protocol: clean LLC victims
	// send no eviction notice — the home cache learns of displacements
	// from the replacement-way info embedded in requests. Valid for
	// 1-1 home mappings (one DRAM buffer behind the LLC), as here.
	SilentEvictions bool
	// Fault configures deterministic corruption of the CABLE wire
	// images (bit flips, truncations). The zero value injects nothing
	// and leaves every code path byte-identical to a fault-free build;
	// a non-zero rate routes transfers through the guarded
	// marshal → corrupt → unmarshal → decode pipeline and degrades
	// failures to counted raw-transfer fallbacks.
	Fault fault.Config
	// Metrics, when non-nil, scopes this chip's obs counters (link
	// ends, links, scheme meter) to a private registry. Never affects
	// simulated results; excluded from content digests.
	Metrics *obs.Registry
	// Recorder, when non-nil, attaches a virtual-time flight recorder:
	// every access ticks it, and the CABLE link feeds a "cable" track
	// (transfers, encode/decode events, fault degradation). Never
	// affects simulated results; excluded from content digests.
	Recorder *obs.Recorder
}

// DefaultChipConfig returns the Table IV single-thread configuration:
// 1 MB LLC share, 4 MB L4 share (1:4), 16-bit 9.6 GHz link.
func DefaultChipConfig() ChipConfig {
	return ChipConfig{
		LLCBytes: 1 << 20, LLCWays: 8,
		L4Bytes: 4 << 20, L4Ways: 16,
		LineSize:    64,
		Link:        link.DefaultConfig(),
		Cable:       core.DefaultConfig(),
		EnableCable: true,
		Verify:      true,
	}
}

// Transfer reports what one access did, for the timing and energy
// models.
type Transfer struct {
	LLCHit  bool
	L4Hit   bool
	Fill    bool // an off-chip fill occurred
	WB      bool // an LLC victim was written back over the link
	Upgrade bool

	// FillBits / WBBits are CABLE wire bits for this access (raw line
	// bits when CABLE is disabled).
	FillBits int
	WBBits   int
	// DRAMReads/DRAMWrites are backing accesses triggered.
	DRAMReads  int
	DRAMWrites int
	// Latency is the CABLE pipeline cost of the fill.
	Latency core.FillLatency
}

// Chip is the functional memory-link model: it runs the full coherence
// and CABLE synchronization protocol over an inclusive LLC/L4 pair and
// feeds the identical off-chip transfer stream to every attached meter.
type Chip struct {
	cfg    ChipConfig
	LLC    *cache.Cache
	L4     *cache.Cache
	Home   *core.HomeEnd
	Remote *core.RemoteEnd
	Store  *mem.Store
	Meters []Meter

	// CableLink quantizes CABLE payloads (nil when disabled).
	CableLink *link.Link

	cableOwners map[int]*stats.Ratio
	cableTotal  stats.Ratio

	// writeVersions drives deterministic store-data mutation.
	writeVersions map[uint64]uint32

	// schemeMeter computes Transfer bits when CABLE is disabled.
	schemeMeter Meter

	// mw is the reusable payload-marshal writer; its image is consumed
	// by SendWire before the next marshal.
	mw bits.Writer

	// injector corrupts CABLE wire images when cfg.Fault is enabled
	// (nil otherwise — the hot path pays one pointer check).
	injector *fault.Injector
	// rec/recTrack feed the optional flight recorder (nil = disabled).
	rec      *obs.Recorder
	recTrack *obs.Track
	// dmx holds the graceful-degradation counters, resolved lazily on
	// the first decode error so fault-free runs register no new metric
	// names (keeping zero-rate `-metrics` dumps byte-identical).
	dmx    *degradeCounters
	dshard uint32

	// Stats
	Accesses  uint64
	Fills     uint64
	WBs       uint64
	Upgrades  uint64
	CompOps   uint64
	DecompOps uint64
	// Notices counts explicit eviction messages (zero under the
	// silent-eviction protocol).
	Notices uint64
	// FaultsInjected counts transfers whose wire image the injector
	// altered; DecodeErrors counts transfers the receiver could not
	// (or must not) reconstruct from the received image; RawFallbacks
	// counts the uncompressed re-transfers that recovered them. With
	// injection on, the three stay equal by construction.
	FaultsInjected uint64
	DecodeErrors   uint64
	RawFallbacks   uint64
}

// NewChip builds a chip over the given backing content function.
func NewChip(cfg ChipConfig, fill func(lineAddr uint64) []byte) (*Chip, error) {
	// The chip-level registry scopes every sub-component's counters.
	cfg.Cable.Metrics = cfg.Metrics
	llc := cache.New(cache.Config{Name: "llc", SizeBytes: cfg.LLCBytes, Ways: cfg.LLCWays, LineSize: cfg.LineSize, Policy: cfg.LLCPolicy})
	l4 := cache.New(cache.Config{Name: "l4", SizeBytes: cfg.L4Bytes, Ways: cfg.L4Ways, LineSize: cfg.LineSize, Policy: cfg.L4Policy})
	c := &Chip{
		cfg: cfg, LLC: llc, L4: l4,
		Store:         mem.NewStore(cfg.LineSize, fill),
		cableOwners:   map[int]*stats.Ratio{},
		writeVersions: map[uint64]uint32{},
	}
	if cfg.TagPointers {
		cfg.Cable.PointerBitsOverride = 40
		c.cfg = cfg
	}
	if cfg.EnableCable || cfg.Scheme == "cable" {
		he, err := core.NewHomeEnd(cfg.Cable, l4, llc)
		if err != nil {
			return nil, err
		}
		re, err := core.NewRemoteEnd(cfg.Cable, llc)
		if err != nil {
			return nil, err
		}
		c.Home, c.Remote = he, re
		if cfg.Recorder != nil {
			c.rec = cfg.Recorder
			c.recTrack = c.rec.Track("cable")
			he.SetRecorder(c.rec, c.recTrack)
			re.SetRecorder(c.rec, c.recTrack)
		}
		c.CableLink = link.NewIn(cfg.Link, cfg.Metrics)
		// Fault injection targets the CABLE payload stream (the
		// baseline scheme meters never materialize wire images).
		c.injector = fault.NewIn(cfg.Fault, cfg.Metrics)
		return c, nil
	}
	m, err := newSchemeMeter(cfg.Scheme, cfg.Link, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	c.schemeMeter = m
	return c, nil
}

// newSchemeMeter builds the single-scheme compressor used by the timing
// simulator when CABLE is not the scheme under test.
func newSchemeMeter(scheme string, cfg link.Config, reg *obs.Registry) (Meter, error) {
	switch scheme {
	case "", "none":
		return NewRawMeterIn(cfg, reg), nil
	case "gzip":
		return NewStreamMeterIn("gzip", 32<<10, cfg, reg), nil
	default:
		e, err := compress.NewEngine(scheme)
		if err != nil {
			return nil, err
		}
		return NewEngineMeterIn(e, cfg, reg), nil
	}
}

// Release recycles the chip's caches and link-end table backings into
// their pools (see core/pool.go and cache/pool.go). Only callers that
// can prove nothing retains the chip may call it: the memoizing
// experiment runner releases chips after deep-copying their results
// (memoized results carry Chip == nil), and RunTiming releases its
// private chip before returning. A released chip is unusable.
func (c *Chip) Release() {
	if c.Home != nil {
		c.Home.Release()
		c.Home = nil
	}
	if c.Remote != nil {
		c.Remote.Release()
		c.Remote = nil
	}
	if c.LLC != nil {
		c.LLC.Release()
		c.LLC = nil
	}
	if c.L4 != nil {
		c.L4.Release()
		c.L4 = nil
	}
}

// ResetStats zeroes every accumulated counter — event counts, meter
// ratios and link accounting — without touching cache or CABLE
// structure state. The timing simulator calls it after functional
// warm-up so measurements exclude compulsory cold misses, as the
// paper's 100M-instruction warm-up does.
func (c *Chip) ResetStats() {
	c.Accesses, c.Fills, c.WBs, c.Upgrades = 0, 0, 0, 0
	c.CompOps, c.DecompOps, c.Notices = 0, 0, 0
	c.FaultsInjected, c.DecodeErrors, c.RawFallbacks = 0, 0, 0
	if c.injector != nil {
		// Zero the accounting but keep the rng position: the fault
		// pattern stays one deterministic stream across warm-up and
		// measurement.
		c.injector.Stats = fault.Stats{}
	}
	c.cableOwners = map[int]*stats.Ratio{}
	c.cableTotal = stats.Ratio{}
	c.LLC.Stats = cache.Stats{}
	c.L4.Stats = cache.Stats{}
	c.Store.Reads, c.Store.Writes = 0, 0
	if c.CableLink != nil {
		*c.CableLink = *link.NewIn(c.cfg.Link, c.cfg.Metrics)
	}
	if c.schemeMeter != nil {
		c.schemeMeter.ResetCounters()
	}
	for _, m := range c.Meters {
		m.ResetCounters()
	}
}

// CableRatio returns CABLE's accumulated ratio for one owner.
func (c *Chip) CableRatio(owner int) stats.Ratio {
	if r := c.cableOwners[owner]; r != nil {
		return *r
	}
	return stats.Ratio{}
}

// CableTotal returns CABLE's aggregate ratio.
func (c *Chip) CableTotal() stats.Ratio { return c.cableTotal }

// SchemeRatio returns the ratio of whatever scheme drives this chip's
// Transfer bits (CABLE or the configured baseline).
func (c *Chip) SchemeRatio() stats.Ratio {
	if c.Home != nil {
		return c.cableTotal
	}
	return c.schemeMeter.Total()
}

// WireLink returns the quantizing link of the active scheme.
func (c *Chip) WireLink() *link.Link {
	if c.Home != nil {
		return c.CableLink
	}
	return c.schemeMeter.Link()
}

func (c *Chip) cableAccount(owner, sourceBits int, wire int) {
	if r := c.cableOwners[owner]; r != nil {
		r.Add(sourceBits, wire)
	} else {
		c.cableOwners[owner] = &stats.Ratio{SourceBits: uint64(sourceBits), WireBits: uint64(wire)}
	}
	c.cableTotal.Add(sourceBits, wire)
}

// mutate applies a deterministic store-data edit for a write to addr.
// Stores write small program-like values (counters, flags), so dirty
// lines get somewhat harder to compress without degenerating to random
// noise.
func (c *Chip) mutate(data []byte, addr uint64) {
	v := c.writeVersions[addr]
	c.writeVersions[addr] = v + 1
	word := int(addr^uint64(v)) % (len(data) / 4)
	x := uint32((addr*2654435761+uint64(v)*40503)&0x3FF | 1)
	data[word*4] = byte(x)
	data[word*4+1] = byte(x >> 8)
	data[word*4+2] = 0
	data[word*4+3] = 0
}

// degrade lazily resolves the graceful-degradation counter block: a
// run that never faults and never mis-decodes registers none of the
// sim.decode_errors / sim.raw_fallbacks / sim.faults_injected names,
// keeping zero-rate `-metrics` dumps byte-identical.
func (c *Chip) degrade() *degradeCounters {
	if c.dmx == nil {
		c.dmx, c.dshard = degradeMetricsIn(c.cfg.Metrics)
	}
	return c.dmx
}

func (c *Chip) noteFault() {
	c.FaultsInjected++
	c.degrade().faultsInjected.Inc(c.dshard)
	if c.rec != nil {
		c.rec.Fault(c.recTrack)
	}
}

func (c *Chip) noteDecodeError() {
	c.DecodeErrors++
	c.degrade().decodeErrors.Inc(c.dshard)
}

// rawResend recovers a failed decode by re-requesting the line as an
// uncompressed raw transfer, modeling the link-level retransmission a
// production link pairs with its CRC guard. The retry itself is
// delivered clean (it is a fresh transmission, not a replay of the
// corrupted image) and its wire cost is charged on top of the failed
// attempt. Returns the retry's wire bits.
func (c *Chip) rawResend(data []byte, ackSeq uint64) int {
	c.RawFallbacks++
	c.degrade().rawFallbacks.Inc(c.dshard)
	p := core.Payload{Raw: data, AckSeq: ackSeq}
	var enc compress.Encoded
	if c.injector != nil {
		enc = p.MarshalGuardedInto(&c.mw, c.LLC.IndexBits(), c.LLC.WayBits())
	} else {
		enc = p.MarshalInto(&c.mw, c.LLC.IndexBits(), c.LLC.WayBits())
	}
	wire := c.CableLink.SendWire(enc.Data, enc.NBits)
	if c.rec != nil {
		c.rec.Degrade(c.recTrack, wire)
	}
	return wire
}

// corruptAndDecode runs one guarded payload image through the fault
// pipeline: marshal with CRC guard, meter the wire, corrupt the image,
// then unmarshal + decode from what survived. decode is the
// end-specific reconstruction (fill or write-back); want is the ground
// truth the simulator holds. It returns the wire bits of the attempt
// and the decode error to degrade on (nil only for a clean,
// verified-correct transfer).
func (c *Chip) corruptAndDecode(p core.Payload, want []byte, lineAddr uint64,
	decode func(core.Payload) ([]byte, error)) (wire int, derr error) {
	enc := p.MarshalGuardedInto(&c.mw, c.LLC.IndexBits(), c.LLC.WayBits())
	wire = c.CableLink.SendWire(enc.Data, enc.NBits)
	nb, corrupted := c.injector.Corrupt(enc.Data, enc.NBits)
	var got []byte
	q, derr := core.UnmarshalPayloadGuarded(compress.Encoded{Data: enc.Data, NBits: nb},
		c.LLC.IndexBits(), c.LLC.WayBits(), c.cfg.LineSize)
	if derr == nil {
		// AckSeq rides the transport header, not the marshaled image.
		q.AckSeq = p.AckSeq
		got, derr = decode(q)
		c.DecompOps++
	}
	if corrupted {
		c.noteFault()
		// Every injector-touched frame is degraded, even the ~2^-8 of
		// multi-bit patterns that alias the CRC: the simulator's
		// ground truth catches silent escapes, and frames that decode
		// bit-exact anyway are still retransmitted (the receiver
		// cannot distinguish luck from integrity). This keeps
		// DecodeErrors == FaultsInjected == RawFallbacks exact.
		if derr == nil && !bytes.Equal(got, want) {
			derr = fmt.Errorf("sim: corruption of line %#x escaped the CRC guard: %w", lineAddr, core.ErrCRCMismatch)
		}
		if derr == nil {
			derr = fmt.Errorf("sim: corrupted frame for line %#x absorbed: %w", lineAddr, core.ErrCRCMismatch)
		}
	} else {
		if derr != nil && c.cfg.Verify {
			panic(fmt.Sprintf("sim: decode of clean image for line %#x: %v", lineAddr, derr))
		}
		if derr == nil && c.cfg.Verify && !bytes.Equal(got, want) {
			panic(fmt.Sprintf("sim: clean transfer corrupted for line %#x", lineAddr))
		}
	}
	return wire, derr
}

// evictLLC processes an LLC eviction: dirty data is write-back
// compressed over the link; either way the eviction is scrubbed from
// both ends' structures.
func (c *Chip) evictLLC(ev cache.Eviction, owner int, t *Transfer) {
	if ev.State == cache.Modified {
		c.WBs++
		t.WB = true
		lineBits := len(ev.Data) * 8
		if c.Remote != nil {
			var togglesBefore uint64
			if c.rec != nil {
				togglesBefore = c.CableLink.Toggles
			}
			p := c.Remote.EncodeWriteback(ev.Data)
			c.CompOps++
			var wire int
			if c.injector != nil {
				var derr error
				wire, derr = c.corruptAndDecode(p, ev.Data, ev.LineAddr, c.Home.DecodeWriteback)
				if derr != nil {
					c.noteDecodeError()
					wire += c.rawResend(ev.Data, p.AckSeq)
				}
			} else {
				got, err := c.Home.DecodeWriteback(p)
				c.DecompOps++
				if err != nil && c.cfg.Verify {
					panic(fmt.Sprintf("sim: writeback decode %#x: %v", ev.LineAddr, err))
				}
				if err == nil && c.cfg.Verify && !bytes.Equal(got, ev.Data) {
					panic(fmt.Sprintf("sim: writeback corrupted for line %#x", ev.LineAddr))
				}
				enc := p.MarshalInto(&c.mw, c.LLC.IndexBits(), c.LLC.WayBits())
				wire = c.CableLink.SendWire(enc.Data, p.Bits(c.Remote.RemoteLIDBits()))
				if err != nil {
					// Graceful degradation without injection: count
					// the anomaly and recover via a raw re-transfer.
					c.noteDecodeError()
					wire += c.rawResend(ev.Data, p.AckSeq)
				}
			}
			t.WBBits = wire
			c.cableAccount(owner, lineBits, wire)
			if c.rec != nil {
				c.rec.Transfer(c.recTrack, lineBits, wire, c.CableLink.Toggles-togglesBefore)
			}
		} else {
			c.schemeMeter.OnWriteback(ev.Data, owner)
			t.WBBits = c.schemeMeter.LastWire()
		}
		for _, m := range c.Meters {
			m.OnWriteback(ev.Data, owner)
		}
		// The home (L4) copy absorbs the dirty data.
		if l4l, _, ok := c.L4.Probe(ev.LineAddr); ok {
			copy(l4l.Data, ev.Data)
			l4l.State = cache.Modified
		} else {
			panic(fmt.Sprintf("sim: inclusive violation: LLC victim %#x absent from L4", ev.LineAddr))
		}
	}
	if c.Remote != nil {
		if c.cfg.SilentEvictions {
			c.Remote.OnSilentEviction(ev.ID, ev.Data)
		} else {
			seq := c.Remote.OnEviction(ev.ID, ev.Data)
			c.Home.OnRemoteEviction(ev.ID, seq)
			c.Notices++
		}
	}
}

// silentDisplace evicts a fill's victim under the silent protocol: it
// runs after the fill is decoded (the victim may have served as a
// reference) and immediately before the install that displaces it.
func (c *Chip) silentDisplace(victim uint64, haveVictim bool, owner int, t *Transfer) {
	if !c.cfg.SilentEvictions || !haveVictim {
		return
	}
	if ev, ok := c.LLC.Invalidate(victim); ok {
		c.evictLLC(ev, owner, t)
	}
}

// ensureL4 installs addr in the L4, evicting (and back-invalidating)
// as needed. It reports DRAM traffic into t.
func (c *Chip) ensureL4(addr uint64, owner int, t *Transfer) {
	if _, _, ok := c.L4.Probe(addr); ok {
		t.L4Hit = true
		return
	}
	idx := c.L4.IndexOf(addr)
	way := c.L4.VictimWay(idx)
	if victim, ok := c.L4.LineAddrOf(cache.LineID{Index: idx, Way: way}); ok {
		// Inclusive: force the LLC copy out first.
		if ev, hit := c.LLC.Invalidate(victim); hit {
			c.evictLLC(ev, owner, t)
		}
		if c.Home != nil {
			c.Home.OnHomeEviction(victim)
		}
		vl, _, _ := c.L4.Probe(victim)
		if vl.State == cache.Modified {
			c.Store.Write(victim, vl.Data)
			t.DRAMWrites++
		}
	}
	data := c.Store.Read(addr)
	t.DRAMReads++
	c.L4.InsertAt(addr, data, cache.Shared, way)
}

// Access runs one LLC-level reference through the hierarchy.
func (c *Chip) Access(a workload.Access, owner int) Transfer {
	c.Accesses++
	if c.rec != nil {
		// One access = one virtual-time tick: the recorder's clock is a
		// pure function of the access stream, never wall time.
		c.rec.Tick()
	}
	var t Transfer
	if line, id, ok := c.LLC.Access(a.LineAddr); ok {
		t.LLCHit = true
		if a.Write {
			if line.State == cache.Shared {
				t.Upgrade = true
				c.Upgrades++
				if c.Remote != nil {
					c.Remote.OnUpgrade(id, line.Data)
					c.Home.OnUpgrade(a.LineAddr)
				}
				line.State = cache.Modified
			}
			c.mutate(line.Data, a.LineAddr)
		}
		return t
	}

	c.ensureL4(a.LineAddr, owner, &t)

	idx := c.LLC.IndexOf(a.LineAddr)
	way := c.LLC.VictimWay(idx)
	victim, haveVictim := c.LLC.LineAddrOf(cache.LineID{Index: idx, Way: way})
	if haveVictim && !c.cfg.SilentEvictions {
		ev, _ := c.LLC.Invalidate(victim)
		c.evictLLC(ev, owner, &t)
	}
	// Under silent evictions the victim stays resident until the fill
	// installs — it may even serve as a reference for this very fill;
	// the home cleans its structures from the replacement-way info.

	state := cache.Shared
	if a.Write {
		state = cache.Modified
	}
	l4Line, _, _ := c.L4.Probe(a.LineAddr)
	want := l4Line.Data
	lineBits := len(want) * 8
	t.Fill = true
	c.Fills++
	if c.Home != nil {
		var togglesBefore uint64
		if c.rec != nil {
			togglesBefore = c.CableLink.Toggles
		}
		p, lat, err := c.Home.EncodeFill(a.LineAddr, state, way)
		if err != nil {
			// Encode runs against the sender's own structures; failure
			// here is a simulator invariant violation, not a link
			// fault, so it stays fatal regardless of cfg.Verify.
			panic(fmt.Sprintf("sim: encode fill %#x: %v", a.LineAddr, err))
		}
		c.CompOps++
		t.Latency = lat
		var data []byte
		var wire int
		if c.injector != nil {
			var derr error
			wire, derr = c.corruptAndDecode(p, want, a.LineAddr, c.Remote.DecodeFill)
			if derr != nil {
				c.noteDecodeError()
				wire += c.rawResend(want, p.AckSeq)
				data = want
			} else {
				// Clean transfers decoded bit-exact; install the
				// ground-truth copy (scratch aliasing makes the
				// decoded buffer unsafe to hold across the resend
				// bookkeeping above, and the bytes are equal).
				data = want
			}
		} else {
			var derr error
			data, derr = c.Remote.DecodeFill(p)
			c.DecompOps++
			if derr != nil && c.cfg.Verify {
				panic(fmt.Sprintf("sim: decode fill %#x: %v", a.LineAddr, derr))
			}
			if derr == nil && c.cfg.Verify && !bytes.Equal(data, want) {
				panic(fmt.Sprintf("sim: fill corrupted for line %#x", a.LineAddr))
			}
			enc := p.MarshalInto(&c.mw, c.LLC.IndexBits(), c.LLC.WayBits())
			wire = c.CableLink.SendWire(enc.Data, p.Bits(c.Home.RemoteLIDBits()))
			if derr != nil {
				c.noteDecodeError()
				wire += c.rawResend(want, p.AckSeq)
				data = want
			}
		}
		t.FillBits = wire
		c.cableAccount(owner, lineBits, wire)
		if c.rec != nil {
			c.rec.Transfer(c.recTrack, lineBits, wire, c.CableLink.Toggles-togglesBefore)
		}
		c.silentDisplace(victim, haveVictim, owner, &t)
		c.LLC.InsertAt(a.LineAddr, data, state, way)
		c.Remote.OnFillInstalled(cache.LineID{Index: idx, Way: way}, data, state)
		c.Remote.OnAck(p.AckSeq)
	} else {
		c.schemeMeter.OnFill(want, owner)
		t.FillBits = c.schemeMeter.LastWire()
		c.silentDisplace(victim, haveVictim, owner, &t)
		c.LLC.InsertAt(a.LineAddr, want, state, way)
	}
	for _, m := range c.Meters {
		m.OnFill(want, owner)
	}
	if a.Write {
		l, _, _ := c.LLC.Probe(a.LineAddr)
		c.mutate(l.Data, a.LineAddr)
	}
	return t
}
