package sim

import (
	"fmt"

	"cable/internal/obs"
	"cable/internal/stats"
	"cable/internal/workload"
)

// programSpacing separates co-running programs' address spaces.
const programSpacing = uint64(1) << 32

// MemLinkConfig drives the functional memory-link study (§VI-B/C): one
// or more programs share an LLC/L4 pair, and every compression scheme
// measures the identical off-chip transfer stream.
type MemLinkConfig struct {
	Chip ChipConfig
	// Benchmarks are the co-running programs (1 for single-program
	// studies, 4 for the multiprogram studies).
	Benchmarks []string
	// AccessesPerProgram bounds the simulation length.
	AccessesPerProgram int
	// ScaleCachesByPrograms multiplies LLC/L4 capacity by the program
	// count, matching the paper's per-thread 1 MB LLC share.
	ScaleCachesByPrograms bool
	// WithMeters attaches the baseline comparison set.
	WithMeters bool
	// Trace, when non-nil, is attached to the home end so every fill
	// encode is recorded (class counts exact, ring sampled). Used by
	// the breakdown experiment; nil keeps the nil-check fast path.
	Trace *obs.Tracer
	// Metrics, when non-nil, scopes the whole simulation's obs
	// counters (chip, links, meters, workload generators) to a private
	// registry. The cell memo runs memoized simulations this way and
	// merges the captured delta into the default registry per request.
	// Never affects simulated results; excluded from content digests.
	Metrics *obs.Registry
	// Recorder, when non-nil, attaches a virtual-time flight recorder
	// to the chip (see ChipConfig.Recorder). Observation-only; excluded
	// from content digests.
	Recorder *obs.Recorder
}

// DefaultMemLinkConfig returns the Table IV single-program setup.
func DefaultMemLinkConfig(benchmarks ...string) MemLinkConfig {
	return MemLinkConfig{
		Chip:                  DefaultChipConfig(),
		Benchmarks:            benchmarks,
		AccessesPerProgram:    60000,
		ScaleCachesByPrograms: true,
		WithMeters:            true,
	}
}

// MemLinkResult carries per-scheme compression outcomes.
type MemLinkResult struct {
	// Total maps scheme → aggregate link compression ratio.
	Total map[string]stats.Ratio
	// PerProgram maps scheme → per-program ratios, index-aligned with
	// Benchmarks.
	PerProgram map[string][]stats.Ratio
	// Toggles maps scheme → wire bit toggles (§VI-D).
	Toggles map[string]uint64
	// Chip exposes the simulated chip for energy/latency accounting.
	Chip *Chip
}

// Ratio returns the total ratio for a scheme (1.0 for unknown schemes).
func (r *MemLinkResult) Ratio(scheme string) float64 {
	if t, ok := r.Total[scheme]; ok {
		return t.Value()
	}
	return 1
}

// RunMemoryLink executes the functional memory-link simulation.
func RunMemoryLink(cfg MemLinkConfig) (*MemLinkResult, error) {
	if len(cfg.Benchmarks) == 0 {
		return nil, fmt.Errorf("sim: no benchmarks configured")
	}
	gens := make([]*workload.Generator, len(cfg.Benchmarks))
	for i, name := range cfg.Benchmarks {
		g, err := workload.NewIn(name, i, uint64(i)*programSpacing, cfg.Metrics)
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}
	chipCfg := cfg.Chip
	if cfg.Metrics != nil {
		chipCfg.Metrics = cfg.Metrics
	}
	if cfg.Recorder != nil {
		chipCfg.Recorder = cfg.Recorder
	}
	if cfg.ScaleCachesByPrograms {
		chipCfg.LLCBytes *= len(cfg.Benchmarks)
		chipCfg.L4Bytes *= len(cfg.Benchmarks)
	}
	chip, err := NewChip(chipCfg, func(addr uint64) []byte {
		return gens[int(addr/programSpacing)].LineData(addr)
	})
	if err != nil {
		return nil, err
	}
	if cfg.WithMeters {
		chip.Meters = DefaultMetersIn(chipCfg.Link, cfg.Metrics)
	}
	if cfg.Trace != nil && chip.Home != nil {
		chip.Home.SetTracer(cfg.Trace)
	}

	// Fine-grained round-robin interleave: the link sees the programs'
	// streams mixed, as a real shared memory controller would.
	for step := 0; step < cfg.AccessesPerProgram; step++ {
		for i, g := range gens {
			chip.Access(g.Next(), i)
		}
	}

	res := &MemLinkResult{
		Total:      map[string]stats.Ratio{},
		PerProgram: map[string][]stats.Ratio{},
		Toggles:    map[string]uint64{},
		Chip:       chip,
	}
	collect := func(name string, total stats.Ratio, per func(int) stats.Ratio, toggles uint64) {
		res.Total[name] = total
		rs := make([]stats.Ratio, len(gens))
		for i := range gens {
			rs[i] = per(i)
		}
		res.PerProgram[name] = rs
		res.Toggles[name] = toggles
	}
	for _, m := range chip.Meters {
		collect(m.Name(), m.Total(), m.Ratio, m.Link().Toggles)
	}
	if chip.Home != nil {
		collect("cable", chip.CableTotal(), chip.CableRatio, chip.CableLink.Toggles)
	}
	return res, nil
}
