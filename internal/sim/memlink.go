package sim

import (
	"fmt"

	"cable/internal/obs"
	"cable/internal/stats"
	"cable/internal/trace"
	"cable/internal/workload"
	"cable/internal/workload/spec"
)

// programSpacing separates co-running programs' address spaces.
const programSpacing = uint64(1) << 32

// MemLinkConfig drives the functional memory-link study (§VI-B/C): one
// or more programs share an LLC/L4 pair, and every compression scheme
// measures the identical off-chip transfer stream.
type MemLinkConfig struct {
	Chip ChipConfig
	// Benchmarks are the co-running programs (1 for single-program
	// studies, 4 for the multiprogram studies).
	Benchmarks []string
	// AccessesPerProgram bounds the simulation length.
	AccessesPerProgram int
	// ScaleCachesByPrograms multiplies LLC/L4 capacity by the program
	// count, matching the paper's per-thread 1 MB LLC share.
	ScaleCachesByPrograms bool
	// WithMeters attaches the baseline comparison set.
	WithMeters bool
	// Trace, when non-nil, is attached to the home end so every fill
	// encode is recorded (class counts exact, ring sampled). Used by
	// the breakdown experiment; nil keeps the nil-check fast path.
	Trace *obs.Tracer
	// Metrics, when non-nil, scopes the whole simulation's obs
	// counters (chip, links, meters, workload generators) to a private
	// registry. The cell memo runs memoized simulations this way and
	// merges the captured delta into the default registry per request.
	// Never affects simulated results; excluded from content digests.
	Metrics *obs.Registry
	// Recorder, when non-nil, attaches a virtual-time flight recorder
	// to the chip (see ChipConfig.Recorder). Observation-only; excluded
	// from content digests.
	Recorder *obs.Recorder
	// Workload, when non-nil, replaces Benchmarks with a declarative
	// multi-client mix (internal/workload/spec): arrival-process
	// scheduled clients instead of the fixed round-robin interleave.
	Workload *spec.Workload
	// Replay, when non-empty, feeds recorded captures instead of live
	// generators: one per program slot for plain captures, or —
	// combined with Workload — one per client as written by
	// spec.RecordClients. Behavioral, so folded into the digest.
	Replay []*trace.Trace
}

// DefaultMemLinkConfig returns the Table IV single-program setup.
func DefaultMemLinkConfig(benchmarks ...string) MemLinkConfig {
	return MemLinkConfig{
		Chip:                  DefaultChipConfig(),
		Benchmarks:            benchmarks,
		AccessesPerProgram:    60000,
		ScaleCachesByPrograms: true,
		WithMeters:            true,
	}
}

// MemLinkResult carries per-scheme compression outcomes.
type MemLinkResult struct {
	// Programs labels the per-program slots: benchmark names, spec
	// client IDs, or replayed capture names.
	Programs []string
	// Total maps scheme → aggregate link compression ratio.
	Total map[string]stats.Ratio
	// PerProgram maps scheme → per-program ratios, index-aligned with
	// Programs.
	PerProgram map[string][]stats.Ratio
	// Toggles maps scheme → wire bit toggles (§VI-D).
	Toggles map[string]uint64
	// Chip exposes the simulated chip for energy/latency accounting.
	Chip *Chip
}

// Ratio returns the total ratio for a scheme (1.0 for unknown schemes).
func (r *MemLinkResult) Ratio(scheme string) float64 {
	if t, ok := r.Total[scheme]; ok {
		return t.Value()
	}
	return 1
}

// accessFeed abstracts where the interleaved access stream and the
// backing-store contents come from: live generators, recorded-trace
// replays, or a declarative workload mix (live or replayed).
type accessFeed interface {
	// next returns the next access and its owning program slot.
	next() (workload.Access, int, error)
	// lineData materializes backing-store contents.
	lineData(addr uint64) []byte
	// labels names the program slots.
	labels() []string
}

// genFeed is the classic path: one live generator per co-running
// program, interleaved round-robin — the link sees the streams mixed,
// as a real shared memory controller would.
type genFeed struct {
	gens  []*workload.Generator
	names []string
	step  int
}

func (f *genFeed) next() (workload.Access, int, error) {
	i := f.step % len(f.gens)
	f.step++
	return f.gens[i].Next(), i, nil
}

func (f *genFeed) lineData(addr uint64) []byte {
	return f.gens[int(addr/programSpacing)].LineData(addr)
}

func (f *genFeed) labels() []string { return f.names }

// replayFeed round-robins recorded captures over the program slots,
// each rebased onto its slot's address space.
type replayFeed struct {
	srcs  []*trace.Source
	names []string
	step  int
}

func (f *replayFeed) next() (workload.Access, int, error) {
	i := f.step % len(f.srcs)
	f.step++
	a, err := f.srcs[i].Next()
	return a, i, err
}

func (f *replayFeed) lineData(addr uint64) []byte {
	return f.srcs[int(addr/programSpacing)].LineData(addr)
}

func (f *replayFeed) labels() []string { return f.names }

// mixFeed drives a declarative workload mix, live or replayed; program
// slots are the mix's clients and the interleave follows the clients'
// arrival processes instead of a fixed round-robin.
type mixFeed struct {
	mix *spec.Mix
}

func (f *mixFeed) next() (workload.Access, int, error) {
	e, err := f.mix.Next()
	return e.Access, e.Client, err
}

func (f *mixFeed) lineData(addr uint64) []byte { return f.mix.LineData(addr) }

func (f *mixFeed) labels() []string { return f.mix.ClientIDs() }

// newFeed compiles the config's workload selection into a feed and the
// total access count.
func newFeed(cfg MemLinkConfig) (accessFeed, int, error) {
	switch {
	case cfg.Workload != nil:
		if len(cfg.Benchmarks) > 0 {
			return nil, 0, fmt.Errorf("sim: Benchmarks and Workload are mutually exclusive")
		}
		total := cfg.AccessesPerProgram * len(cfg.Workload.Clients)
		mix, err := spec.NewMix(cfg.Workload, spec.MixOptions{
			Budget:   uint64(total),
			Registry: cfg.Metrics,
			Replay:   cfg.Replay,
		})
		if err != nil {
			return nil, 0, err
		}
		return &mixFeed{mix: mix}, total, nil
	case len(cfg.Replay) > 0:
		if len(cfg.Benchmarks) > 0 {
			return nil, 0, fmt.Errorf("sim: Benchmarks and Replay are mutually exclusive")
		}
		srcs := make([]*trace.Source, len(cfg.Replay))
		names := make([]string, len(cfg.Replay))
		for i, t := range cfg.Replay {
			src, err := t.Source(uint64(i)*programSpacing, cfg.Metrics)
			if err != nil {
				return nil, 0, err
			}
			if src.Len() < cfg.AccessesPerProgram {
				return nil, 0, fmt.Errorf("%w: capture %q has %d records, run needs %d per program",
					trace.ErrExhausted, t.Header.Benchmark, src.Len(), cfg.AccessesPerProgram)
			}
			srcs[i] = src
			names[i] = t.Header.Benchmark
		}
		return &replayFeed{srcs: srcs, names: names}, cfg.AccessesPerProgram * len(srcs), nil
	case len(cfg.Benchmarks) > 0:
		gens := make([]*workload.Generator, len(cfg.Benchmarks))
		for i, name := range cfg.Benchmarks {
			g, err := workload.NewIn(name, i, uint64(i)*programSpacing, cfg.Metrics)
			if err != nil {
				return nil, 0, err
			}
			gens[i] = g
		}
		return &genFeed{gens: gens, names: cfg.Benchmarks}, cfg.AccessesPerProgram * len(gens), nil
	default:
		return nil, 0, fmt.Errorf("sim: no benchmarks, workload, or replay configured")
	}
}

// newSingleSource resolves a one-program access source for the
// single-benchmark drivers (multichip, noninclusive): a live generator
// for benchmark, or a replay capture (mutually exclusive) with enough
// records to cover the run.
func newSingleSource(benchmark string, replay *trace.Trace, accesses int) (workload.Source, error) {
	if replay == nil {
		gen, err := workload.New(benchmark, 0, 0)
		if err != nil {
			return nil, err
		}
		return workload.AsSource(gen), nil
	}
	if benchmark != "" {
		return nil, fmt.Errorf("sim: Benchmark and Replay are mutually exclusive")
	}
	src, err := replay.Source(0, nil)
	if err != nil {
		return nil, err
	}
	if src.Len() < accesses {
		return nil, fmt.Errorf("%w: capture %q has %d records, run needs %d",
			trace.ErrExhausted, replay.Header.Benchmark, src.Len(), accesses)
	}
	return src, nil
}

// RunMemoryLink executes the functional memory-link simulation.
func RunMemoryLink(cfg MemLinkConfig) (*MemLinkResult, error) {
	feed, total, err := newFeed(cfg)
	if err != nil {
		return nil, err
	}
	programs := feed.labels()
	chipCfg := cfg.Chip
	if cfg.Metrics != nil {
		chipCfg.Metrics = cfg.Metrics
	}
	if cfg.Recorder != nil {
		chipCfg.Recorder = cfg.Recorder
	}
	if cfg.ScaleCachesByPrograms {
		chipCfg.LLCBytes *= len(programs)
		chipCfg.L4Bytes *= len(programs)
	}
	chip, err := NewChip(chipCfg, feed.lineData)
	if err != nil {
		return nil, err
	}
	if cfg.WithMeters {
		chip.Meters = DefaultMetersIn(chipCfg.Link, cfg.Metrics)
	}
	if cfg.Trace != nil && chip.Home != nil {
		chip.Home.SetTracer(cfg.Trace)
	}

	for step := 0; step < total; step++ {
		a, owner, err := feed.next()
		if err != nil {
			return nil, fmt.Errorf("sim: access %d: %w", step, err)
		}
		chip.Access(a, owner)
	}

	res := &MemLinkResult{
		Programs:   programs,
		Total:      map[string]stats.Ratio{},
		PerProgram: map[string][]stats.Ratio{},
		Toggles:    map[string]uint64{},
		Chip:       chip,
	}
	collect := func(name string, total stats.Ratio, per func(int) stats.Ratio, toggles uint64) {
		res.Total[name] = total
		rs := make([]stats.Ratio, len(programs))
		for i := range rs {
			rs[i] = per(i)
		}
		res.PerProgram[name] = rs
		res.Toggles[name] = toggles
	}
	for _, m := range chip.Meters {
		collect(m.Name(), m.Total(), m.Ratio, m.Link().Toggles)
	}
	if chip.Home != nil {
		collect("cable", chip.CableTotal(), chip.CableRatio, chip.CableLink.Toggles)
	}
	return res, nil
}
