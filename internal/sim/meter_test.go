package sim

import (
	"testing"

	"cable/internal/link"
)

// meterCorpus builds a stream of 64B lines with enough cross-line
// repetition that a streaming compressor's window keeps paying off.
func meterCorpus() [][]byte {
	corpus := make([][]byte, 256)
	for i := range corpus {
		line := make([]byte, 64)
		for j := range line {
			// A few recurring byte patterns, phase-shifted per line.
			line[j] = byte((j*7 + (i%8)*13) & 0xFF)
		}
		corpus[i] = line
	}
	return corpus
}

// TestMeterResetCountersKeepsCompressorState proves ResetCounters zeroes
// the bookkeeping (ratios, link accounting, last-wire) while the gzip
// meter's LZSS window survives: replaying the same corpus after a reset
// compresses strictly better than the cold first pass, which is only
// possible if the dictionary learned during that first pass is intact.
func TestMeterResetCountersKeepsCompressorState(t *testing.T) {
	m := NewStreamMeter("gzip", 32<<10, link.DefaultConfig())
	corpus := meterCorpus()
	for _, line := range corpus {
		m.OnFill(line, 0)
	}
	cold := m.Total().Value()
	if cold <= 1 {
		t.Fatalf("corpus should compress cold, ratio = %.3f", cold)
	}

	m.ResetCounters()
	if tot := m.Total(); tot.SourceBits != 0 || tot.WireBits != 0 {
		t.Fatalf("reset left totals: %+v", tot)
	}
	if r := m.Ratio(0); r.SourceBits != 0 {
		t.Fatalf("reset left per-owner ratio: %+v", r)
	}
	if l := m.Link(); l.Payloads != 0 || l.WireBits != 0 || l.Toggles != 0 {
		t.Fatalf("reset left link accounting: %+v", l)
	}
	if m.LastWire() != 0 {
		t.Fatalf("reset left last wire %d", m.LastWire())
	}

	for _, line := range corpus {
		m.OnFill(line, 0)
	}
	warm := m.Total().Value()
	if warm <= cold {
		t.Fatalf("warm replay ratio %.3f not better than cold %.3f — compressor window was lost by ResetCounters", warm, cold)
	}
}
