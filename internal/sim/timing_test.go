package sim

import (
	"testing"
)

func quickTiming(scheme, bench string, totalTh int) TimingConfig {
	cfg := DefaultTimingConfig(scheme, bench)
	cfg.Threads = 4
	cfg.TotalTh = totalTh
	cfg.InstrPerTh = 300_000
	cfg.LLCPerThread = 64 << 10
	cfg.Verify = true
	return cfg
}

func TestTimingBaselineRuns(t *testing.T) {
	res, err := RunTiming(quickTiming("none", "mcf", 2048))
	if err != nil {
		t.Fatal(err)
	}
	if res.IPCPerThread <= 0 || res.IPCPerThread > 1 {
		t.Fatalf("IPC = %v, want in (0,1] for an in-order core", res.IPCPerThread)
	}
	if res.Seconds <= 0 {
		t.Fatal("no simulated time")
	}
	if res.DRAMAccesses == 0 {
		t.Fatal("no DRAM traffic for mcf")
	}
}

func TestTimingCompressionHelpsWhenOversubscribed(t *testing.T) {
	// Fig 14a: at 2048 threads a memory-bound workload is link-bound;
	// CABLE's bandwidth amplification must raise throughput a lot.
	base, err := RunTiming(quickTiming("none", "mcf", 2048))
	if err != nil {
		t.Fatal(err)
	}
	cable, err := RunTiming(quickTiming("cable", "mcf", 2048))
	if err != nil {
		t.Fatal(err)
	}
	speedup := cable.Throughput / base.Throughput
	if speedup < 1.5 {
		t.Fatalf("cable speedup %.2f at 2048 threads, want ≥1.5 (paper: large gains)", speedup)
	}
	if base.LinkUtil < 0.5 {
		t.Fatalf("baseline link utilization %.2f — not oversubscribed", base.LinkUtil)
	}
	t.Logf("mcf @2048: base IPC %.4f util %.2f; cable IPC %.4f ratio %.1f speedup %.2f",
		base.IPCPerThread, base.LinkUtil, cable.IPCPerThread, cable.Ratio, speedup)
}

func TestTimingComputeBoundUnaffected(t *testing.T) {
	// Fig 14a: compute-intensive workloads (povray) gain little.
	base, err := RunTiming(quickTiming("none", "povray", 2048))
	if err != nil {
		t.Fatal(err)
	}
	cable, err := RunTiming(quickTiming("cable", "povray", 2048))
	if err != nil {
		t.Fatal(err)
	}
	speedup := cable.Throughput / base.Throughput
	if speedup > 1.5 {
		t.Fatalf("povray speedup %.2f — compute-bound workload should be flat", speedup)
	}
}

func TestTimingLatencyOverheadSingleThread(t *testing.T) {
	// Fig 17: with ample bandwidth (few threads), compression only
	// adds latency; CABLE's 48-cycle pipeline costs a few percent and
	// more than CPACK's 8/8.
	mk := func(scheme string) float64 {
		cfg := quickTiming(scheme, "omnetpp", 16)
		cfg.Threads = 1
		res, err := RunTiming(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPCPerThread
	}
	base := mk("none")
	cpack := mk("cpack")
	cable := mk("cable")
	if cable >= base {
		t.Fatalf("cable IPC %.4f should be below uncompressed %.4f", cable, base)
	}
	lossCable := 1 - cable/base
	lossCpack := 1 - cpack/base
	if lossCable <= lossCpack {
		t.Fatalf("cable loss %.3f should exceed cpack loss %.3f", lossCable, lossCpack)
	}
	if lossCable > 0.25 {
		t.Fatalf("cable single-thread loss %.3f too large (paper: ≈5%%)", lossCable)
	}
	t.Logf("single-thread loss: cpack %.3f cable %.3f", lossCpack, lossCable)
}

func TestTimingOnOffControlRecoversLatency(t *testing.T) {
	// §VI-D: with on/off control, single-thread degradation is
	// effectively nullified when the link is underutilized.
	cfg := quickTiming("cable", "omnetpp", 16)
	cfg.Threads = 1
	cfg.SampleWindowSec = 10e-6 // scaled runs simulate ≪1ms
	plain, err := RunTiming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OnOff = true
	adaptive, err := RunTiming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.OffWindows == 0 {
		t.Fatal("on/off control never disabled compression on an idle link")
	}
	if adaptive.IPCPerThread < plain.IPCPerThread {
		t.Fatalf("adaptive IPC %.4f below always-on %.4f", adaptive.IPCPerThread, plain.IPCPerThread)
	}
}

func TestTimingThreadSweepShape(t *testing.T) {
	// Fig 14b: gains grow with thread count as bandwidth becomes the
	// bottleneck.
	speedup := func(totalTh int) float64 {
		base, err := RunTiming(quickTiming("none", "milc", totalTh))
		if err != nil {
			t.Fatal(err)
		}
		cable, err := RunTiming(quickTiming("cable", "milc", totalTh))
		if err != nil {
			t.Fatal(err)
		}
		return cable.Throughput / base.Throughput
	}
	low := speedup(64)
	high := speedup(2048)
	if high <= low {
		t.Fatalf("speedup should grow with thread count: %.2f @64 vs %.2f @2048", low, high)
	}
	if low > 1.6 {
		t.Fatalf("speedup %.2f at low thread count — link should not be the bottleneck", low)
	}
}

func TestTimingRejectsBadConfig(t *testing.T) {
	cfg := quickTiming("cable", "mcf", 2048)
	cfg.Threads = 0
	if _, err := RunTiming(cfg); err == nil {
		t.Fatal("zero threads should error")
	}
	cfg = quickTiming("nope", "mcf", 2048)
	if _, err := RunTiming(cfg); err == nil {
		t.Fatal("unknown scheme should error")
	}
	cfg = quickTiming("cable", "nope", 2048)
	if _, err := RunTiming(cfg); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}
