package sim

import (
	"testing"

	"cable/internal/fault"
)

// soakFault is the ISSUE's soak point: a 1e-3 per-bit flip rate plus
// occasional truncations, Verify off, proving the decode paths degrade
// to counted errors and raw fallbacks instead of panicking.
var soakFault = fault.Config{BitRate: 1e-3, TruncRate: 1e-3, Seed: 0xC0FFEE}

// TestMemLinkFaultSoak drives the memory-link topology through >10k
// CABLE transfers under injection. Every injector-touched transfer
// must surface as exactly one decode error and one raw fallback.
func TestMemLinkFaultSoak(t *testing.T) {
	cfg := DefaultMemLinkConfig("gobmk", "omnetpp")
	cfg.AccessesPerProgram = 30000
	cfg.Chip.LLCBytes = 128 << 10 // raise the miss rate: more transfers
	cfg.Chip.L4Bytes = 512 << 10
	cfg.Chip.Verify = false
	cfg.Chip.Fault = soakFault
	cfg.WithMeters = false
	res, err := RunMemoryLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Chip
	transfers := c.Fills + c.WBs
	if transfers < 10000 {
		t.Fatalf("soak too small: %d transfers, want ≥10000", transfers)
	}
	if c.FaultsInjected == 0 {
		t.Fatalf("no faults injected over %d transfers at rate %g", transfers, soakFault.BitRate)
	}
	if c.DecodeErrors != c.FaultsInjected || c.RawFallbacks != c.FaultsInjected {
		t.Fatalf("accounting broken: faults=%d decodeErrors=%d rawFallbacks=%d",
			c.FaultsInjected, c.DecodeErrors, c.RawFallbacks)
	}
	t.Logf("memlink soak: %d transfers, %d faults degraded gracefully", transfers, c.FaultsInjected)
}

// TestMemLinkFaultDeterminism: same seed and rates must reproduce the
// identical result, bit for bit, on every run.
func TestMemLinkFaultDeterminism(t *testing.T) {
	run := func() (*MemLinkResult, error) {
		cfg := DefaultMemLinkConfig("gobmk")
		cfg.AccessesPerProgram = 8000
		cfg.Chip.LLCBytes = 128 << 10
		cfg.Chip.L4Bytes = 512 << 10
		cfg.Chip.Verify = false
		cfg.Chip.Fault = soakFault
		cfg.WithMeters = false
		return RunMemoryLink(cfg)
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Total["cable"] != b.Total["cable"] {
		t.Fatalf("faulted ratio not deterministic: %+v vs %+v", a.Total["cable"], b.Total["cable"])
	}
	if a.Chip.FaultsInjected != b.Chip.FaultsInjected ||
		a.Chip.DecodeErrors != b.Chip.DecodeErrors ||
		a.Chip.RawFallbacks != b.Chip.RawFallbacks {
		t.Fatalf("fault counters not deterministic: %d/%d/%d vs %d/%d/%d",
			a.Chip.FaultsInjected, a.Chip.DecodeErrors, a.Chip.RawFallbacks,
			b.Chip.FaultsInjected, b.Chip.DecodeErrors, b.Chip.RawFallbacks)
	}
	if a.Chip.FaultsInjected == 0 {
		t.Fatal("determinism check vacuous: no faults injected")
	}
}

// TestMemLinkZeroRateInert: the zero fault config must construct no
// injector and leave every new counter at zero.
func TestMemLinkZeroRateInert(t *testing.T) {
	cfg := DefaultMemLinkConfig("gobmk")
	cfg.AccessesPerProgram = 4000
	cfg.WithMeters = false
	res, err := RunMemoryLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Chip
	if c.injector != nil {
		t.Fatal("zero-rate run built an injector")
	}
	if c.FaultsInjected != 0 || c.DecodeErrors != 0 || c.RawFallbacks != 0 {
		t.Fatalf("zero-rate run counted degradation events: %d/%d/%d",
			c.FaultsInjected, c.DecodeErrors, c.RawFallbacks)
	}
	if c.dmx != nil {
		t.Fatal("zero-rate run resolved the degradation counters (would register metric names)")
	}
}

// TestMultiChipFaultSoak mirrors the soak on the coherence-link
// topology.
func TestMultiChipFaultSoak(t *testing.T) {
	cfg := DefaultMultiChipConfig("gobmk")
	cfg.Accesses = 60000
	cfg.LLCBytes = 128 << 10
	cfg.Verify = false
	cfg.Fault = soakFault
	cfg.WithMeters = false
	res, err := RunMultiChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	transfers := res.RemoteFills + res.DirtyWBs
	if transfers < 10000 {
		t.Fatalf("soak too small: %d transfers, want ≥10000", transfers)
	}
	if res.FaultsInjected == 0 {
		t.Fatalf("no faults injected over %d transfers", transfers)
	}
	if res.DecodeErrors != res.FaultsInjected || res.RawFallbacks != res.FaultsInjected {
		t.Fatalf("accounting broken: faults=%d decodeErrors=%d rawFallbacks=%d",
			res.FaultsInjected, res.DecodeErrors, res.RawFallbacks)
	}
	t.Logf("multichip soak: %d transfers, %d faults degraded gracefully", transfers, res.FaultsInjected)
}

// TestNonInclusiveFaultSoak mirrors the soak on the non-inclusive
// Home-Agent topology.
func TestNonInclusiveFaultSoak(t *testing.T) {
	cfg := DefaultNonInclusiveConfig("gobmk")
	cfg.Accesses = 60000
	cfg.RemoteBytes = 128 << 10
	cfg.HomeBytes = 256 << 10
	cfg.Verify = false
	cfg.Fault = soakFault
	res, err := RunNonInclusive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	transfers := res.ForwardedFills + res.CachedFills + res.WBs
	if transfers < 10000 {
		t.Fatalf("soak too small: %d transfers, want ≥10000", transfers)
	}
	if res.FaultsInjected == 0 {
		t.Fatalf("no faults injected over %d transfers", transfers)
	}
	if res.DecodeErrors != res.FaultsInjected || res.RawFallbacks != res.FaultsInjected {
		t.Fatalf("accounting broken: faults=%d decodeErrors=%d rawFallbacks=%d",
			res.FaultsInjected, res.DecodeErrors, res.RawFallbacks)
	}
	t.Logf("non-inclusive soak: %d transfers, %d faults degraded gracefully", transfers, res.FaultsInjected)
}

// TestFaultDigestSplitsCells: fault config is behavioral, so it must
// change the canonical digest (faulted and clean memo cells never
// alias).
func TestFaultDigestSplitsCells(t *testing.T) {
	a := DefaultMemLinkConfig("gobmk")
	b := DefaultMemLinkConfig("gobmk")
	b.Chip.Fault = soakFault
	if a.Digest() == b.Digest() {
		t.Fatal("fault config not folded into MemLinkConfig digest")
	}
	ta := DefaultTimingConfig("cable", "gobmk")
	tb := DefaultTimingConfig("cable", "gobmk")
	tb.Fault = soakFault
	if ta.Digest() == tb.Digest() {
		t.Fatal("fault config not folded into TimingConfig digest")
	}
}
