package sim

import (
	"container/heap"
	"fmt"

	"cable/internal/core"
	"cable/internal/dram"
	"cable/internal/fault"
	"cable/internal/link"
	"cable/internal/obs"
	"cable/internal/workload"
)

// TimingConfig parameterizes the cycle-approximate model behind the
// throughput (Fig 14), latency-overhead (Fig 17) and energy (Fig 18)
// studies. Following §VI-A, a group of Threads threads shares bandwidth
// competitively; the group's share of the system's links and DRAM
// scales with Threads/TotalThreads, so one simulated group represents
// the whole statistically-identical system.
type TimingConfig struct {
	Scheme     string // "none", "bdi", "cpack", "cpack128", "lbe256", "gzip", "cable"
	Benchmark  string
	Threads    int // simulated group size (8 in the paper)
	TotalTh    int // system thread count (256..2048)
	InstrPerTh uint64
	// WarmupPerTh instructions run functionally (caches and CABLE
	// structures fill, no timing) before measurement starts, mirroring
	// the paper's 100M-instruction SimPoint warm-up. Defaults to
	// InstrPerTh when zero; set negative semantics are not supported.
	WarmupPerTh uint64

	CoreHz       float64 // 2 GHz in-order, 1 CPI non-memory
	Private      PrivateConfig
	LLCCycles    int     // 30
	L4Cycles     int     // 30
	LinkSetupNs  float64 // 20 ns
	TotalLinkBW  float64 // bytes/s across the whole system (4×19.2 GB/s)
	TotalDRAMBW  float64 // bytes/s across the whole system (16×12.8 GB/s)
	LLCPerThread int     // bytes (1 MB)
	L4Ratio      int     // L4 = ratio × LLC (4)
	// RequestBits sizes the address-phase request packet (line
	// address + way-replacement info + EvictSeq ack). Requests travel
	// the command path — separate wires on DMI/HMC-class buffer
	// links — so they add latency but do not occupy the data link
	// (Table IV models no request bandwidth).
	RequestBits int

	Link  link.Config
	Cable core.Config

	// OnOff enables the §VI-D adaptive control: compression is turned
	// off when link utilization sampled over 1 ms falls below 80% and
	// back on above 90%.
	OnOff bool
	// SampleWindowSec is the on/off control sampling period (§VI-D:
	// 1 ms). Scaled-down runs that simulate less wall time may lower
	// it proportionally.
	SampleWindowSec float64
	// NoWorkingSetScale disables fitting each benchmark's working set
	// to the simulated cache scale. By default working sets are capped
	// at ¾ of the L4 share, preserving the paper's regime where the
	// L4 absorbs most post-LLC misses and the off-chip link — not
	// DRAM — is the bottleneck.
	NoWorkingSetScale bool
	// Verify keeps bit-exact payload checking on.
	Verify bool
	// Fault configures deterministic corruption of the CABLE wire
	// images (see ChipConfig.Fault). Only meaningful when Scheme is
	// "cable"; the zero value injects nothing.
	Fault fault.Config
	// Metrics, when non-nil, scopes the simulation's obs counters to a
	// private registry (see MemLinkConfig.Metrics). Never affects
	// simulated results; excluded from content digests.
	Metrics *obs.Registry
	// Recorder, when non-nil, attaches a virtual-time flight recorder
	// to the underlying chip (warm-up accesses tick it too — the clock
	// stays a pure function of the access stream). Observation-only;
	// excluded from content digests.
	Recorder *obs.Recorder
}

// DefaultTimingConfig returns the Table IV system for one benchmark.
func DefaultTimingConfig(scheme, benchmark string) TimingConfig {
	return TimingConfig{
		Scheme: scheme, Benchmark: benchmark,
		Threads: 8, TotalTh: 2048, InstrPerTh: 2_000_000,
		CoreHz: 2e9, Private: DefaultPrivateConfig(),
		LLCCycles: 30, L4Cycles: 30, LinkSetupNs: 20,
		TotalLinkBW: 4 * 19.2e9, TotalDRAMBW: 4 * 4 * 12.8e9,
		LLCPerThread: 1 << 20, L4Ratio: 4,
		RequestBits: 48,
		Link:        link.DefaultConfig(),
		Cable:       core.DefaultConfig(),
	}
}

// compLatencies returns the Table IV compression/decompression
// latencies in core cycles for a scheme. CABLE is charged its worst
// case (32 = 16 search + 16 compress, plus 16 decompress), as in the
// paper's latency studies.
func compLatencies(scheme string) (comp, decomp int) {
	switch scheme {
	case "", "none":
		return 0, 0
	case "gzip":
		return 64, 32
	case "cable":
		return core.SearchLatencyWorst + core.CompressLatency/2, core.DecompressLatency
	default: // CPACK-class engines
		return 8, 8
	}
}

// TimingResult reports one timing simulation.
type TimingResult struct {
	Scheme       string
	IPCPerThread float64
	// Throughput is system instructions/cycle: TotalTh × IPC.
	Throughput float64
	Seconds    float64 // simulated time
	LinkUtil   float64
	Ratio      float64 // achieved compression ratio on the down link
	// Counters for the energy model.
	L1Accesses, L2Accesses                uint64
	LLCAccesses, L4Accesses, DRAMAccesses uint64
	WireBytes                             uint64
	CompOps, DecompOps, SearchReads       uint64
	// OffWindows counts 1 ms windows with compression disabled.
	OffWindows, OnWindows uint64
}

// threadState tracks one thread's progress.
type threadState struct {
	id    int
	gen   *workload.Generator
	priv  *privateHier
	time  float64 // seconds
	instr uint64
}

// threadHeap orders threads by local time.
type threadHeap []*threadState

func (h threadHeap) Len() int            { return len(h) }
func (h threadHeap) Less(i, j int) bool  { return h[i].time < h[j].time }
func (h threadHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *threadHeap) Push(x interface{}) { *h = append(*h, x.(*threadState)) }
func (h *threadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RunTiming executes the cycle-approximate simulation.
func RunTiming(cfg TimingConfig) (*TimingResult, error) {
	if cfg.Threads <= 0 || cfg.TotalTh < cfg.Threads {
		return nil, fmt.Errorf("sim: bad thread counts %d/%d", cfg.Threads, cfg.TotalTh)
	}
	share := float64(cfg.Threads) / float64(cfg.TotalTh)

	chipCfg := ChipConfig{
		LLCBytes: cfg.LLCPerThread * cfg.Threads, LLCWays: 8,
		L4Bytes: cfg.LLCPerThread * cfg.Threads * cfg.L4Ratio, L4Ways: 16,
		LineSize: 64,
		Link:     cfg.Link,
		Cable:    cfg.Cable,
		Scheme:   cfg.Scheme,
		Verify:   cfg.Verify,
		Fault:    cfg.Fault,
		Metrics:  cfg.Metrics,
		Recorder: cfg.Recorder,
	}
	spec, err := workload.ByName(cfg.Benchmark)
	if err != nil {
		return nil, err
	}
	if !cfg.NoWorkingSetScale {
		l4Lines := cfg.LLCPerThread * cfg.L4Ratio / 64
		if cap := l4Lines * 3 / 4; spec.WorkingSetLines > cap {
			spec.WorkingSetLines = cap
		}
		llcLines := cfg.LLCPerThread / 64
		if cap := llcLines / 2; spec.HotLines > cap && cap > 0 {
			spec.HotLines = cap
		}
	}
	gens := make([]*workload.Generator, cfg.Threads)
	for i := range gens {
		gens[i] = workload.NewFromSpecIn(spec, i, uint64(i)*programSpacing, cfg.Metrics)
	}
	chip, err := NewChip(chipCfg, func(addr uint64) []byte {
		return gens[int(addr/programSpacing)].LineData(addr)
	})
	if err != nil {
		return nil, err
	}

	// The group's links: duplex down (fills) and up (requests + WBs),
	// each carrying the group's share of total system link bandwidth.
	mkLink := func(bw float64) *link.Channel {
		c := cfg.Link
		c.FreqHz = bw * 8 / float64(c.WidthBits)
		return link.NewChannel(c)
	}
	// Links are full duplex (QPI/HyperTransport-style): each direction
	// carries the group's share of the stated bandwidth.
	down := mkLink(cfg.TotalLinkBW * share)
	up := mkLink(cfg.TotalLinkBW * share)
	// The group's DRAM share behind the L4.
	dcfg := dram.DefaultConfig()
	dcfg.BusFreqHz = cfg.TotalDRAMBW * share / float64(dcfg.BusWidthBits/8)
	dchan := dram.NewChannel(dcfg)

	comp, decomp := compLatencies(cfg.Scheme)
	cyc := 1 / cfg.CoreHz

	h := make(threadHeap, 0, cfg.Threads)
	allThreads := make([]*threadState, cfg.Threads)
	for i, g := range gens {
		allThreads[i] = &threadState{id: i, gen: g, priv: newPrivateHier(cfg.Private)}
	}

	// Functional warm-up: fill the private levels, shared hierarchy
	// and CABLE structures so measurement excludes compulsory cold
	// misses (the paper warms 100M instructions per SimPoint).
	warm := cfg.WarmupPerTh
	if warm == 0 {
		warm = cfg.InstrPerTh
	}
	for _, th := range allThreads {
		var instr uint64
		for instr < warm {
			a := th.gen.Next()
			instr += uint64(a.Gap) + 1
			if lvl := th.priv.lookup(a.LineAddr); lvl == 0 || a.Write {
				chip.Access(a, th.id)
			}
		}
		th.priv.L1Accesses, th.priv.L2Accesses = 0, 0
	}
	chip.ResetStats()

	for _, th := range allThreads {
		heap.Push(&h, th)
	}

	res := &TimingResult{Scheme: cfg.Scheme}
	compressOn := true
	windowStart := 0.0
	window := cfg.SampleWindowSec
	if window <= 0 {
		window = 1e-3
	}
	var maxTime float64

	for h.Len() > 0 {
		th := heap.Pop(&h).(*threadState)
		a := th.gen.Next()
		th.time += float64(a.Gap) * cyc
		th.instr += uint64(a.Gap) + 1
		now := th.time

		// §VI-D on/off control, sampled on 1 ms boundaries.
		if cfg.OnOff && now-windowStart >= window {
			util := down.Utilization(now - windowStart)
			if compressOn && util < 0.80 {
				compressOn = false
			} else if !compressOn && util > 0.90 {
				compressOn = true
			}
			if compressOn {
				res.OnWindows++
			} else {
				res.OffWindows++
			}
			down.ResetWindow()
			windowStart = now
		}

		// Private L1/L2 filter (Table IV): read hits are absorbed at
		// private-level cost; stores write through so the shared-level
		// coherence (and CABLE synchronization) stays exact.
		level := th.priv.lookup(a.LineAddr)
		now += float64(cfg.Private.L1Cycles) * cyc
		if level >= 2 || level == 0 {
			now += float64(cfg.Private.L2Cycles) * cyc
		}
		if level != 0 && !a.Write {
			th.time = now
			if th.time > maxTime {
				maxTime = th.time
			}
			if th.instr < cfg.InstrPerTh {
				heap.Push(&h, th)
			}
			continue
		}

		tr := chip.Access(a, th.id)
		now += float64(cfg.LLCCycles) * cyc
		if !tr.LLCHit {
			// Request on the out-of-band command path: serialization
			// latency at the link rate, no data-channel occupancy.
			reqLat := float64(cfg.RequestBits) / (cfg.Link.FreqHz * float64(cfg.Link.WidthBits))
			now += reqLat + cfg.LinkSetupNs*1e-9
			now += float64(cfg.L4Cycles) * cyc
			if !tr.L4Hit {
				now = dchan.Access(now, a.LineAddr, 64)
			}
			fillBits := tr.FillBits
			c, d := comp, decomp
			if cfg.OnOff && !compressOn {
				fillBits = chip.WireLink().Flits(1+512) * cfg.Link.WidthBits
				c, d = 0, 0
			}
			now += float64(c) * cyc
			now = down.Transfer(now, fillBits)
			now += float64(d) * cyc
			if tr.WB {
				// Victim write-back occupies the up link but does
				// not block the requesting thread.
				up.Transfer(th.time, tr.WBBits)
			}
		}
		th.time = now
		if th.time > maxTime {
			maxTime = th.time
		}
		if th.instr < cfg.InstrPerTh {
			heap.Push(&h, th)
		}
	}

	// All threads ran the same instruction budget; the group IPC uses
	// the last finishing time (the paper keeps co-runners live until
	// all reach their budget).
	totalInstr := float64(cfg.InstrPerTh) * float64(cfg.Threads)
	totalIPC := totalInstr / (maxTime * cfg.CoreHz) / float64(cfg.Threads)

	res.IPCPerThread = totalIPC
	res.Throughput = totalIPC * float64(cfg.TotalTh)
	res.Seconds = maxTime
	res.LinkUtil = down.Utilization(maxTime)
	res.Ratio = chip.SchemeRatio().Value()
	for _, th := range allThreads {
		res.L1Accesses += th.priv.L1Accesses
		res.L2Accesses += th.priv.L2Accesses
	}
	res.LLCAccesses = chip.LLC.Stats.Accesses
	res.L4Accesses = chip.L4.Stats.Accesses + chip.L4.Stats.DataReads
	res.DRAMAccesses = chip.Store.Reads + chip.Store.Writes
	res.WireBytes = chip.WireLink().WireBits / 8
	res.CompOps = chip.CompOps
	res.DecompOps = chip.DecompOps
	res.SearchReads = chip.L4.Stats.DataReads
	// The result carries plain numbers only — recycle the run's chip
	// and private hierarchies for the next cell.
	for _, th := range allThreads {
		th.priv.release()
	}
	chip.Release()
	return res, nil
}
