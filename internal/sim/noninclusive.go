package sim

import (
	"bytes"
	"fmt"

	"cable/internal/bits"
	"cable/internal/cache"
	"cable/internal/compress"
	"cable/internal/core"
	"cable/internal/fault"
	"cable/internal/link"
	"cable/internal/mem"
	"cable/internal/obs"
	"cable/internal/stats"
	"cable/internal/trace"
)

// NonInclusiveConfig drives the §IV-C extension: a Haswell-EP-style
// Home Agent that is *not* inclusive of the remote Caching Agent. The
// home keeps a directory for coherence (it always knows what the remote
// holds) plus a non-inclusive data cache of recently-serviced lines;
// fills of lines it does not cache are forwarded straight from memory.
// CABLE compresses opportunistically: references must be lines the home
// still caches *and* the remote still holds; write-back compression is
// disabled (remote lines are not guaranteed to exist at the home).
type NonInclusiveConfig struct {
	Benchmark string
	Accesses  int
	// RemoteBytes sizes the Caching Agent's LLC.
	RemoteBytes int
	RemoteWays  int
	// HomeBytes sizes the Home Agent's non-inclusive data cache;
	// smaller than the remote is allowed logically, but the WMT
	// geometry requires ≥ remote sets, as in the paper's systems.
	HomeBytes int
	HomeWays  int
	Link      link.Config
	Cable     core.Config
	// Verify checks every decode bit-exact against the sent data and
	// panics on mismatch. Defaults on; the fault-soak runs disable it
	// to prove graceful degradation.
	Verify bool
	// Fault configures deterministic corruption of the wire images.
	// The zero value injects nothing and keeps every code path
	// byte-identical to a fault-free build.
	Fault fault.Config
	// Recorder, when non-nil, attaches a virtual-time flight recorder:
	// every access ticks it and the link feeds a "cable" track.
	// Observation-only; excluded from content digests.
	Recorder *obs.Recorder
	// Replay, when non-nil, feeds a recorded capture instead of the
	// live Benchmark generator (mutually exclusive with Benchmark).
	// Behavioral, so folded into the digest.
	Replay *trace.Trace
}

// DefaultNonInclusiveConfig mirrors the memory-link setup with a
// same-size Home Agent cache.
func DefaultNonInclusiveConfig(benchmark string) NonInclusiveConfig {
	cable := core.DefaultConfig()
	cable.WritebackCompression = false // §IV-C
	return NonInclusiveConfig{
		Benchmark:   benchmark,
		Accesses:    60000,
		RemoteBytes: 1 << 20, RemoteWays: 8,
		HomeBytes: 2 << 20, HomeWays: 16,
		Link:   link.DefaultConfig(),
		Cable:  cable,
		Verify: true,
	}
}

// NonInclusiveResult reports the opportunistic-compression outcome.
type NonInclusiveResult struct {
	Cable stats.Ratio
	// ForwardedFills bypassed the home cache (no reference insert).
	ForwardedFills uint64
	// CachedFills were serviced from (or installed into) the home
	// cache and became reference candidates.
	CachedFills uint64
	WBs         uint64
	HomeEvicts  uint64
	// FaultsInjected / DecodeErrors / RawFallbacks account the
	// graceful-degradation pipeline (zero in fault-free runs; equal to
	// each other by construction with injection on).
	FaultsInjected uint64
	DecodeErrors   uint64
	RawFallbacks   uint64
}

// RunNonInclusive executes the non-inclusive simulation.
func RunNonInclusive(cfg NonInclusiveConfig) (*NonInclusiveResult, error) {
	src, err := newSingleSource(cfg.Benchmark, cfg.Replay, cfg.Accesses)
	if err != nil {
		return nil, err
	}
	store := mem.NewStore(64, src.LineData)
	remote := cache.New(cache.Config{Name: "ca", SizeBytes: cfg.RemoteBytes, Ways: cfg.RemoteWays, LineSize: 64})
	home := cache.New(cache.Config{Name: "ha", SizeBytes: cfg.HomeBytes, Ways: cfg.HomeWays, LineSize: 64})
	he, err := core.NewHomeEnd(cfg.Cable, home, remote)
	if err != nil {
		return nil, err
	}
	re, err := core.NewRemoteEnd(cfg.Cable, remote)
	if err != nil {
		return nil, err
	}
	lnk := link.New(cfg.Link)
	rec := cfg.Recorder
	var track *obs.Track
	if rec != nil {
		track = rec.Track("cable")
		he.SetRecorder(rec, track)
		re.SetRecorder(rec, track)
	}
	res := &NonInclusiveResult{}
	injector := fault.New(cfg.Fault)
	var dmx *degradeCounters
	var dshard uint32
	degrade := func() *degradeCounters {
		if dmx == nil {
			dmx, dshard = degradeMetricsIn(nil)
		}
		return dmx
	}
	// rawResend recovers a failed decode with an uncompressed raw
	// re-transfer, delivered clean and charged on top of the attempt.
	// mw is the run's marshal scratch: every wire image is consumed
	// (sent + corrupted + unmarshaled) before the next marshal, so one
	// buffer serves the whole serial access loop instead of allocating
	// per transfer.
	var mw bits.Writer
	rawResend := func(data []byte, ackSeq uint64) int {
		res.RawFallbacks++
		degrade().rawFallbacks.Inc(dshard)
		p := core.Payload{Raw: data, AckSeq: ackSeq}
		var enc compress.Encoded
		if injector != nil {
			enc = p.MarshalGuardedInto(&mw, remote.IndexBits(), remote.WayBits())
		} else {
			enc = p.MarshalInto(&mw, remote.IndexBits(), remote.WayBits())
		}
		wire := lnk.SendWire(enc.Data, enc.NBits)
		if rec != nil {
			rec.Degrade(track, wire)
		}
		return wire
	}
	// corruptAndDecode runs one guarded payload image through the fault
	// pipeline; see Chip.corruptAndDecode for the accounting contract.
	corruptAndDecode := func(p core.Payload, want []byte, lineAddr uint64,
		decode func(core.Payload) ([]byte, error)) (wire int, derr error) {
		enc := p.MarshalGuardedInto(&mw, remote.IndexBits(), remote.WayBits())
		wire = lnk.SendWire(enc.Data, enc.NBits)
		nb, corrupted := injector.Corrupt(enc.Data, enc.NBits)
		var got []byte
		q, derr := core.UnmarshalPayloadGuarded(compress.Encoded{Data: enc.Data, NBits: nb},
			remote.IndexBits(), remote.WayBits(), 64)
		if derr == nil {
			q.AckSeq = p.AckSeq
			got, derr = decode(q)
		}
		if corrupted {
			res.FaultsInjected++
			degrade().faultsInjected.Inc(dshard)
			if rec != nil {
				rec.Fault(track)
			}
			if derr == nil && !bytes.Equal(got, want) {
				derr = fmt.Errorf("sim: corruption of line %#x escaped the CRC guard: %w", lineAddr, core.ErrCRCMismatch)
			}
			if derr == nil {
				derr = fmt.Errorf("sim: corrupted frame for line %#x absorbed: %w", lineAddr, core.ErrCRCMismatch)
			}
		} else {
			if derr != nil && cfg.Verify {
				panic(fmt.Sprintf("sim: non-inclusive decode of clean image %#x: %v", lineAddr, derr))
			}
			if derr == nil && cfg.Verify && !bytes.Equal(got, want) {
				panic(fmt.Sprintf("sim: non-inclusive clean transfer corrupted %#x", lineAddr))
			}
		}
		return wire, derr
	}
	writeVersions := writeVersionPool.Get().(map[uint64]uint32)
	mutate := func(data []byte, addr uint64) {
		v := writeVersions[addr]
		writeVersions[addr] = v + 1
		word := int(addr^uint64(v)) % (len(data) / 4)
		x := uint32((addr*2654435761+uint64(v)*40503)&0x3FF | 1)
		data[word*4] = byte(x)
		data[word*4+1] = byte(x >> 8)
		data[word*4+2] = 0
		data[word*4+3] = 0
	}

	// installHome caches a line at the Home Agent, evicting LRU
	// victims WITHOUT back-invalidating the remote — the defining
	// non-inclusive behavior. Evicted home lines just stop serving as
	// references.
	installHome := func(addr uint64, data []byte) {
		idx := home.IndexOf(addr)
		way := home.VictimWay(idx)
		if victim, ok := home.LineAddrOf(cache.LineID{Index: idx, Way: way}); ok {
			he.OnHomeEviction(victim)
			res.HomeEvicts++
			if vl, _, _ := home.Probe(victim); vl.State == cache.Modified {
				store.Write(victim, vl.Data)
			}
		}
		home.InsertAt(addr, data, cache.Shared, way)
	}

	for i := 0; i < cfg.Accesses; i++ {
		if rec != nil {
			rec.Tick()
		}
		a, err := src.Next()
		if err != nil {
			return nil, fmt.Errorf("sim: access %d: %w", i, err)
		}
		if line, id, ok := remote.Access(a.LineAddr); ok {
			if a.Write {
				if line.State == cache.Shared {
					re.OnUpgrade(id, line.Data)
					he.OnUpgrade(a.LineAddr)
					line.State = cache.Modified
				}
				mutate(line.Data, a.LineAddr)
			}
			continue
		}
		// Remote miss: evict the victim; dirty data goes home
		// uncompressed-by-references (standalone only, §IV-C).
		idx := remote.IndexOf(a.LineAddr)
		way := remote.VictimWay(idx)
		if victim, ok := remote.LineAddrOf(cache.LineID{Index: idx, Way: way}); ok {
			ev, _ := remote.Invalidate(victim)
			if ev.State == cache.Modified {
				res.WBs++
				var togglesBefore uint64
				if rec != nil {
					togglesBefore = lnk.Toggles
				}
				p := re.EncodeWriteback(ev.Data)
				if len(p.Refs) != 0 {
					// Sender-side protocol invariant (§IV-C), not a
					// link fault: always fatal.
					panic("sim: non-inclusive WB used references")
				}
				var wire int
				if injector != nil {
					var derr error
					wire, derr = corruptAndDecode(p, ev.Data, ev.LineAddr, he.DecodeWriteback)
					if derr != nil {
						res.DecodeErrors++
						degrade().decodeErrors.Inc(dshard)
						wire += rawResend(ev.Data, p.AckSeq)
					}
				} else {
					got, err := he.DecodeWriteback(p)
					if err != nil && cfg.Verify {
						panic(fmt.Sprintf("sim: non-inclusive WB decode: %v", err))
					}
					if err == nil && cfg.Verify && !bytes.Equal(got, ev.Data) {
						panic(fmt.Sprintf("sim: non-inclusive WB corrupted %#x", ev.LineAddr))
					}
					enc := p.MarshalInto(&mw, remote.IndexBits(), remote.WayBits())
					wire = lnk.SendWire(enc.Data, enc.NBits)
					if err != nil {
						res.DecodeErrors++
						degrade().decodeErrors.Inc(dshard)
						wire += rawResend(ev.Data, p.AckSeq)
					}
				}
				res.Cable.Add(len(ev.Data)*8, wire)
				if rec != nil {
					rec.Transfer(track, len(ev.Data)*8, wire, lnk.Toggles-togglesBefore)
				}
				// The home may or may not cache the WB; it caches. It
				// absorbs the remote's dirty data (what the decode
				// reconstructed, or the raw retry delivered).
				if hl, _, ok := home.Probe(ev.LineAddr); ok {
					copy(hl.Data, ev.Data)
					hl.State = cache.Modified
				} else {
					store.Write(ev.LineAddr, ev.Data)
				}
			}
			seq := re.OnEviction(ev.ID, ev.Data)
			he.OnRemoteEviction(ev.ID, seq)
		}
		state := cache.Shared
		if a.Write {
			state = cache.Modified
		}
		// Service the fill: from the home cache if present, else from
		// memory (forward). Forwarded clean fills are also installed
		// into the home cache — a recently-used-lines policy — which
		// is what makes future references possible.
		var data []byte
		if hl, _, ok := home.Probe(a.LineAddr); ok {
			data = hl.Data
			res.CachedFills++
		} else {
			data = store.Read(a.LineAddr)
			res.ForwardedFills++
			installHome(a.LineAddr, data)
		}
		var togglesBefore uint64
		if rec != nil {
			togglesBefore = lnk.Toggles
		}
		p, _, err := he.EncodeFillData(a.LineAddr, data, state, way)
		if err != nil {
			// Encode failure is a sender-side invariant violation, not
			// a link fault: always fatal.
			panic(fmt.Sprintf("sim: non-inclusive fill: %v", err))
		}
		var got []byte
		var wire int
		if injector != nil {
			var derr error
			wire, derr = corruptAndDecode(p, data, a.LineAddr, re.DecodeFill)
			if derr != nil {
				res.DecodeErrors++
				degrade().decodeErrors.Inc(dshard)
				wire += rawResend(data, p.AckSeq)
			}
			got = data
		} else {
			var derr error
			got, derr = re.DecodeFill(p)
			if derr != nil && cfg.Verify {
				panic(fmt.Sprintf("sim: non-inclusive decode %#x: %v", a.LineAddr, derr))
			}
			if derr == nil && cfg.Verify && !bytes.Equal(got, data) {
				panic(fmt.Sprintf("sim: non-inclusive fill corrupted %#x", a.LineAddr))
			}
			enc := p.MarshalInto(&mw, remote.IndexBits(), remote.WayBits())
			wire = lnk.SendWire(enc.Data, enc.NBits)
			if derr != nil {
				res.DecodeErrors++
				degrade().decodeErrors.Inc(dshard)
				wire += rawResend(data, p.AckSeq)
				got = data
			}
		}
		res.Cable.Add(len(data)*8, wire)
		if rec != nil {
			rec.Transfer(track, len(data)*8, wire, lnk.Toggles-togglesBefore)
		}
		remote.InsertAt(a.LineAddr, got, state, way)
		re.OnFillInstalled(cache.LineID{Index: idx, Way: way}, got, state)
		re.OnAck(p.AckSeq)
		if a.Write {
			l, _, _ := remote.Probe(a.LineAddr)
			mutate(l.Data, a.LineAddr)
		}
	}
	// Recycle the run's state: the write-version map returns to its pool
	// and the CABLE-end tables and cache backings go back to the shared
	// pools, so fault soaks and sweeps that run many non-inclusive cells
	// stop re-growing the same multi-megabyte allocations per cell.
	clear(writeVersions)
	writeVersionPool.Put(writeVersions)
	he.Release()
	re.Release()
	remote.Release()
	home.Release()
	return res, nil
}
