package sim

import (
	"sync"

	"cable/internal/obs"
)

// simCounters aggregates meter traffic process-wide. One shard per
// meterBase, drawn at construction.
type simCounters struct {
	meterTransfers  *obs.Counter
	meterSourceBits *obs.Counter
}

func newSimCounters(r *obs.Registry) simCounters {
	return simCounters{
		meterTransfers:  r.Counter("sim.meter_transfers"),
		meterSourceBits: r.Counter("sim.meter_source_bits"),
	}
}

var (
	simCountersOnce   sync.Once
	sharedSimCounters simCounters
)

// simMetricsIn resolves the counter block against reg, or the shared
// process-default block when reg is nil, plus a fresh shard.
func simMetricsIn(reg *obs.Registry) (*simCounters, uint32) {
	if reg == nil {
		simCountersOnce.Do(func() {
			sharedSimCounters = newSimCounters(obs.Default())
		})
		return &sharedSimCounters, obs.NextShard()
	}
	sc := newSimCounters(reg)
	return &sc, obs.NextShard()
}

// degradeCounters aggregate the graceful-degradation events of the
// protocol drivers: injector-touched transfers, decode failures, and
// the raw re-transfers that recovered them. The block is resolved
// lazily — on the first fault or decode error — so a fault-free run
// registers none of these names and its deterministic `-metrics` dump
// stays byte-identical to a build without the fault layer.
type degradeCounters struct {
	faultsInjected *obs.Counter
	decodeErrors   *obs.Counter
	rawFallbacks   *obs.Counter
}

// degradeMetricsIn resolves the block against reg (nil means the
// process default). Registry lookups are idempotent, so every caller
// shares the underlying counters while drawing a private shard.
func degradeMetricsIn(reg *obs.Registry) (*degradeCounters, uint32) {
	if reg == nil {
		reg = obs.Default()
	}
	return &degradeCounters{
		faultsInjected: reg.Counter("sim.faults_injected"),
		decodeErrors:   reg.Counter("sim.decode_errors"),
		rawFallbacks:   reg.Counter("sim.raw_fallbacks"),
	}, obs.NextShard()
}
