package sim

import (
	"sync"

	"cable/internal/obs"
)

// simCounters aggregates meter traffic process-wide. One shard per
// meterBase, drawn at construction.
type simCounters struct {
	meterTransfers  *obs.Counter
	meterSourceBits *obs.Counter
}

func newSimCounters(r *obs.Registry) simCounters {
	return simCounters{
		meterTransfers:  r.Counter("sim.meter_transfers"),
		meterSourceBits: r.Counter("sim.meter_source_bits"),
	}
}

var (
	simCountersOnce   sync.Once
	sharedSimCounters simCounters
)

// simMetricsIn resolves the counter block against reg, or the shared
// process-default block when reg is nil, plus a fresh shard.
func simMetricsIn(reg *obs.Registry) (*simCounters, uint32) {
	if reg == nil {
		simCountersOnce.Do(func() {
			sharedSimCounters = newSimCounters(obs.Default())
		})
		return &sharedSimCounters, obs.NextShard()
	}
	sc := newSimCounters(reg)
	return &sc, obs.NextShard()
}
