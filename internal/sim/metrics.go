package sim

import (
	"sync"

	"cable/internal/obs"
)

// simCounters aggregates meter traffic process-wide. One shard per
// meterBase, drawn at construction.
type simCounters struct {
	meterTransfers  *obs.Counter
	meterSourceBits *obs.Counter
}

var (
	simCountersOnce   sync.Once
	sharedSimCounters simCounters
)

func simMetrics() (*simCounters, uint32) {
	simCountersOnce.Do(func() {
		r := obs.Default()
		sharedSimCounters = simCounters{
			meterTransfers:  r.Counter("sim.meter_transfers"),
			meterSourceBits: r.Counter("sim.meter_source_bits"),
		}
	})
	return &sharedSimCounters, obs.NextShard()
}
