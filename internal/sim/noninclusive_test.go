package sim

import "testing"

func quickNonInclusive(bench string) NonInclusiveConfig {
	cfg := DefaultNonInclusiveConfig(bench)
	cfg.Accesses = 20000
	cfg.RemoteBytes = 128 << 10
	cfg.HomeBytes = 256 << 10
	return cfg
}

func TestNonInclusiveRuns(t *testing.T) {
	res, err := RunNonInclusive(quickNonInclusive("dealII"))
	if err != nil {
		t.Fatal(err)
	}
	if res.ForwardedFills == 0 || res.CachedFills == 0 {
		t.Fatalf("fill paths unexercised: forwarded=%d cached=%d",
			res.ForwardedFills, res.CachedFills)
	}
	if res.HomeEvicts == 0 {
		t.Fatal("home agent never evicted — non-inclusive path untested")
	}
	if res.WBs == 0 {
		t.Fatal("no write-backs")
	}
	if r := res.Cable.Value(); r <= 1.2 {
		t.Fatalf("opportunistic compression ratio %.2f too low", r)
	}
	t.Logf("non-inclusive: ratio %.2f (forwarded %d, cached %d, home evicts %d)",
		res.Cable.Value(), res.ForwardedFills, res.CachedFills, res.HomeEvicts)
}

func TestNonInclusiveVsInclusive(t *testing.T) {
	// Opportunistic compression should land below the inclusive
	// configuration (references vanish on home evictions, WBs are
	// reference-free) but remain well above 1x.
	ni, err := RunNonInclusive(quickNonInclusive("dealII"))
	if err != nil {
		t.Fatal(err)
	}
	incl, err := RunMemoryLink(smallMemLink("dealII"))
	if err != nil {
		t.Fatal(err)
	}
	if ni.Cable.Value() > incl.Ratio("cable")*1.15 {
		t.Fatalf("non-inclusive %.2f should not beat inclusive %.2f",
			ni.Cable.Value(), incl.Ratio("cable"))
	}
	t.Logf("cable ratio: inclusive %.2f, non-inclusive %.2f",
		incl.Ratio("cable"), ni.Cable.Value())
}

func TestNonInclusiveRejectsUnknownBenchmark(t *testing.T) {
	cfg := quickNonInclusive("nope")
	if _, err := RunNonInclusive(cfg); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}
