package sim

import "testing"

// TestDigestStability: equal configs digest equal; each behavioral
// field change moves the digest; observation-only fields don't.
func TestDigestStability(t *testing.T) {
	base := DefaultMemLinkConfig("gcc")
	if base.Digest() != DefaultMemLinkConfig("gcc").Digest() {
		t.Fatal("equal configs produced different digests")
	}

	muts := map[string]func(*MemLinkConfig){
		"benchmark":   func(c *MemLinkConfig) { c.Benchmarks = []string{"mcf"} },
		"extra bench": func(c *MemLinkConfig) { c.Benchmarks = append(c.Benchmarks, "mcf") },
		"accesses":    func(c *MemLinkConfig) { c.AccessesPerProgram++ },
		"scale":       func(c *MemLinkConfig) { c.ScaleCachesByPrograms = !c.ScaleCachesByPrograms },
		"meters":      func(c *MemLinkConfig) { c.WithMeters = !c.WithMeters },
		"llc":         func(c *MemLinkConfig) { c.Chip.LLCBytes *= 2 },
		"link width":  func(c *MemLinkConfig) { c.Chip.Link.WidthBits *= 2 },
		"engine":      func(c *MemLinkConfig) { c.Chip.Cable.EngineName = "bdi" },
		"sig seed":    func(c *MemLinkConfig) { c.Chip.Cable.SigSeed++ },
		"scheme":      func(c *MemLinkConfig) { c.Chip.Scheme = "gzip" },
		"tag ptrs":    func(c *MemLinkConfig) { c.Chip.TagPointers = !c.Chip.TagPointers },
	}
	seen := map[Digest]string{base.Digest(): "base"}
	for name, mut := range muts {
		cfg := DefaultMemLinkConfig("gcc")
		mut(&cfg)
		d := cfg.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[d] = name
	}

	// A benchmark list must not alias a differently-split list.
	a := DefaultMemLinkConfig("gcc", "mcf")
	b := DefaultMemLinkConfig("gccm", "cf")
	if a.Digest() == b.Digest() {
		t.Error("length-prefixed strings should prevent list aliasing")
	}

	tbase := DefaultTimingConfig("cable", "gcc")
	if tbase.Digest() != DefaultTimingConfig("cable", "gcc").Digest() {
		t.Fatal("equal timing configs produced different digests")
	}
	tmut := DefaultTimingConfig("cable", "gcc")
	tmut.OnOff = true
	if tmut.Digest() == tbase.Digest() {
		t.Error("timing OnOff change did not move the digest")
	}
	if tbase.Digest() == base.Digest() {
		t.Error("timing and memlink digests must live in distinct namespaces")
	}
}
