package fault

import (
	"bytes"
	"sync"
	"testing"
)

func TestZeroConfigBuildsNoInjector(t *testing.T) {
	if in := New(Config{}); in != nil {
		t.Fatalf("zero config built an injector: %+v", in)
	}
	if in := New(Config{Seed: 42}); in != nil {
		t.Fatal("seed without rates built an injector")
	}
	if New(Config{BitRate: 1e-3}) == nil {
		t.Fatal("non-zero BitRate built no injector")
	}
	if New(Config{TruncRate: 1e-2}) == nil {
		t.Fatal("non-zero TruncRate built no injector")
	}
}

// TestDeterministicPattern: same seed and rates over the same image
// stream must corrupt identically, byte for byte and stat for stat.
func TestDeterministicPattern(t *testing.T) {
	cfg := Config{BitRate: 1e-2, TruncRate: 1e-2, Seed: 7}
	run := func() ([][]byte, []int, Stats) {
		in := New(cfg)
		var imgs [][]byte
		var lens []int
		for i := 0; i < 500; i++ {
			img := make([]byte, 64)
			for j := range img {
				img[j] = byte(i + j)
			}
			nb, _ := in.Corrupt(img, len(img)*8)
			imgs = append(imgs, img)
			lens = append(lens, nb)
		}
		return imgs, lens, in.Stats
	}
	a, al, as := run()
	b, bl, bs := run()
	if as != bs {
		t.Fatalf("stats diverged: %+v vs %+v", as, bs)
	}
	if as.Corrupted == 0 {
		t.Fatal("500 images at 1e-2 rates corrupted nothing; rate plumbing broken")
	}
	for i := range a {
		if al[i] != bl[i] || !bytes.Equal(a[i], b[i]) {
			t.Fatalf("image %d diverged between identical runs", i)
		}
	}
}

// TestAccountingInvariants: Corrupted counts exactly the images whose
// bits or length changed, and truncation never lengthens an image.
func TestAccountingInvariants(t *testing.T) {
	in := New(Config{BitRate: 5e-3, TruncRate: 5e-2, Seed: 1})
	var observed uint64
	for i := 0; i < 2000; i++ {
		img := make([]byte, 32)
		for j := range img {
			img[j] = byte(j * 3)
		}
		orig := append([]byte(nil), img...)
		nbits := len(img) * 8
		nb, corrupted := in.Corrupt(img, nbits)
		if nb > nbits {
			t.Fatalf("truncation grew the image: %d > %d", nb, nbits)
		}
		changed := nb != nbits || !bytes.Equal(img, orig)
		if changed != corrupted {
			t.Fatalf("image %d: corrupted=%v but changed=%v", i, corrupted, changed)
		}
		if corrupted {
			observed++
		}
	}
	if in.Stats.Images != 2000 {
		t.Fatalf("Images = %d, want 2000", in.Stats.Images)
	}
	if in.Stats.Corrupted != observed {
		t.Fatalf("Stats.Corrupted = %d, observed %d", in.Stats.Corrupted, observed)
	}
	if in.Stats.BitsFlipped == 0 || in.Stats.Truncations == 0 {
		t.Fatalf("expected both fault kinds at these rates: %+v", in.Stats)
	}
}

func TestRateToThreshold(t *testing.T) {
	if got := rateToThreshold(0); got != 0 {
		t.Fatalf("rate 0 → %d, want 0", got)
	}
	if got := rateToThreshold(1); got != ^uint64(0) {
		t.Fatalf("rate 1 → %d, want max", got)
	}
	if got := rateToThreshold(0.5); got < 1<<62 || got > 1<<63 {
		t.Fatalf("rate 0.5 → %#x, want ≈ 1<<63", got)
	}
	// rate 1 must flip every bit.
	in := New(Config{BitRate: 1, Seed: 3})
	img := []byte{0x00, 0xFF}
	nb, corrupted := in.Corrupt(img, 16)
	if !corrupted || nb != 16 || img[0] != 0xFF || img[1] != 0x00 {
		t.Fatalf("rate-1 flip: corrupted=%v nb=%d img=%x", corrupted, nb, img)
	}
}

// TestConcurrentInjectors drives independent injectors (the supported
// concurrency model: one per simulation) against the shared default
// metric counters from many goroutines; run under -race in CI.
func TestConcurrentInjectors(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			in := New(Config{BitRate: 1e-2, Seed: seed})
			img := make([]byte, 64)
			for i := 0; i < 200; i++ {
				in.Corrupt(img, len(img)*8)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
}
