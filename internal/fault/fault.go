// Package fault injects deterministic, rate-controlled corruption into
// CABLE wire images: independent per-bit flips and whole-image
// truncations, driven by a seeded splitmix64 stream. The simulators use
// it to prove the decode paths degrade gracefully — corrupted traffic
// becomes counted errors and raw-transfer fallbacks, never a panic.
// Same seed and rates give the identical fault pattern on the identical
// transfer stream, so fault-injected runs stay bit-reproducible at any
// parallelism (each simulation owns one injector).
package fault

import (
	"sync"

	"cable/internal/obs"
)

// Config describes one link's fault model. The zero value disables
// injection entirely: drivers construct no injector and every code path
// stays byte-identical to a fault-free build.
type Config struct {
	// BitRate is the independent per-bit flip probability on each wire
	// image (1e-3 flips ~0.5 bits per 64 B raw line).
	BitRate float64
	// TruncRate is the per-image probability that the frame is cut
	// short at a uniformly-chosen bit boundary before any flips apply.
	TruncRate float64
	// Seed selects the deterministic fault pattern.
	Seed uint64
}

// Enabled reports whether this configuration injects anything.
func (c Config) Enabled() bool { return c.BitRate > 0 || c.TruncRate > 0 }

// Stats counts one injector's activity.
type Stats struct {
	// Images is the number of wire images offered to the injector.
	Images uint64
	// Corrupted is the number of images actually altered — the figure
	// the drivers' decode_errors accounting must match.
	Corrupted uint64
	// BitsFlipped and Truncations break down the corruption applied.
	BitsFlipped uint64
	Truncations uint64
}

// Injector applies the configured faults to wire images in place.
// Not goroutine-safe: one injector per simulation, like the link ends.
type Injector struct {
	cfg   Config
	state uint64
	// thresholds are the rates scaled to the full uint64 range so one
	// rng draw decides each Bernoulli trial.
	bitThresh   uint64
	truncThresh uint64

	// Stats is the authoritative per-injector accounting.
	Stats Stats

	mx    *faultCounters
	shard uint32
}

// New builds an injector against the process-default metrics registry.
// It returns nil when cfg injects nothing, so callers gate the fault
// path on a single pointer check and a zero-rate run registers no fault
// metrics at all (keeping `-metrics` dumps byte-identical to a build
// without injection).
func New(cfg Config) *Injector { return NewIn(cfg, nil) }

// NewIn is New with an explicit metrics registry (nil means the
// process default). Memoized experiment cells pass their private
// registry, exactly like the link ends.
func NewIn(cfg Config, reg *obs.Registry) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	in := &Injector{
		cfg:         cfg,
		state:       cfg.Seed,
		bitThresh:   rateToThreshold(cfg.BitRate),
		truncThresh: rateToThreshold(cfg.TruncRate),
	}
	in.mx, in.shard = faultMetricsIn(reg)
	return in
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// rateToThreshold maps a probability in [0,1] to a uint64 comparison
// threshold. float64 has ample precision for the rates studied (1e-6
// and up).
func rateToThreshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return ^uint64(0)
	}
	return uint64(rate * (1 << 63) * 2)
}

// next advances the splitmix64 stream.
func (in *Injector) next() uint64 {
	in.state += 0x9E3779B97F4A7C15
	z := in.state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// Corrupt applies the fault model to the first nbits of data in place
// and returns the post-fault bit length (shorter when truncated) and
// whether anything was altered. One rng draw per bit keeps the fault
// pattern a pure function of (seed, transfer stream), independent of
// buffer capacities or scheduling.
func (in *Injector) Corrupt(data []byte, nbits int) (outBits int, corrupted bool) {
	in.Stats.Images++
	in.mx.images.Inc(in.shard)
	outBits = nbits
	if in.truncThresh > 0 && nbits > 0 && in.next() < in.truncThresh {
		outBits = int(in.next() % uint64(nbits))
		in.Stats.Truncations++
		in.mx.truncations.Inc(in.shard)
		corrupted = true
	}
	if in.bitThresh > 0 {
		for pos := 0; pos < outBits; pos++ {
			if in.next() < in.bitThresh {
				data[pos/8] ^= 0x80 >> uint(pos%8)
				in.Stats.BitsFlipped++
				in.mx.bitsFlipped.Inc(in.shard)
				corrupted = true
			}
		}
	}
	if corrupted {
		in.Stats.Corrupted++
		in.mx.corrupted.Inc(in.shard)
	}
	return outBits, corrupted
}

// faultCounters aggregates injector activity process-wide. The block is
// resolved only when an enabled injector is constructed, so fault-free
// runs never register these metric names.
type faultCounters struct {
	images      *obs.Counter
	corrupted   *obs.Counter
	bitsFlipped *obs.Counter
	truncations *obs.Counter
}

func newFaultCounters(r *obs.Registry) faultCounters {
	return faultCounters{
		images:      r.Counter("fault.images"),
		corrupted:   r.Counter("fault.corrupted"),
		bitsFlipped: r.Counter("fault.bits_flipped"),
		truncations: r.Counter("fault.truncations"),
	}
}

var (
	faultCountersOnce   sync.Once
	sharedFaultCounters faultCounters
)

func faultMetricsIn(reg *obs.Registry) (*faultCounters, uint32) {
	if reg == nil {
		faultCountersOnce.Do(func() {
			sharedFaultCounters = newFaultCounters(obs.Default())
		})
		return &sharedFaultCounters, obs.NextShard()
	}
	fc := newFaultCounters(reg)
	return &fc, obs.NextShard()
}
