// Package dram models the main-memory backend of Table IV: DDR3-1600
// with 9-9-9 sub-timings, a closed-page FCFS controller, four memory
// controllers per chip/buffer, and a 64-bit 1.6 GHz data bus
// (12.8 GB/s per channel).
package dram

import "fmt"

// Config describes one DRAM channel.
type Config struct {
	// BusWidthBits is the data bus width (64).
	BusWidthBits int
	// BusFreqHz is the effective transfer rate (1.6 GT/s).
	BusFreqHz float64
	// TRCDNs, TCASNs, TRPNs are the 9-9-9 sub-timings in nanoseconds
	// (9 cycles at the 800 MHz command clock = 11.25 ns each).
	TRCDNs, TCASNs, TRPNs float64
	// Banks per channel; bank-level parallelism hides precharge.
	Banks int
}

// DefaultConfig returns the Table IV DDR3-1600 9-9-9 channel.
func DefaultConfig() Config {
	const cmdClk = 800e6 // DDR3-1600 command clock
	cyc := 1 / cmdClk * 1e9
	return Config{
		BusWidthBits: 64,
		BusFreqHz:    1.6e9,
		TRCDNs:       9 * cyc,
		TCASNs:       9 * cyc,
		TRPNs:        9 * cyc,
		Banks:        8,
	}
}

// BytesPerSec is the channel's raw data bandwidth.
func (c Config) BytesPerSec() float64 { return c.BusFreqHz * float64(c.BusWidthBits) / 8 }

// Channel is a closed-page FCFS DRAM channel: every access pays
// activate (tRCD) + CAS (tCAS) + burst, and its bank is then busy
// through precharge (tRP). Requests serialize on the shared data bus
// and on their bank.
type Channel struct {
	cfg      Config
	bankFree []float64 // seconds
	busFree  float64

	// Stats
	Accesses uint64
	BusyBus  float64
}

// NewChannel builds a channel; it panics on a non-positive geometry.
func NewChannel(cfg Config) *Channel {
	if cfg.Banks <= 0 || cfg.BusWidthBits <= 0 || cfg.BusFreqHz <= 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	return &Channel{cfg: cfg, bankFree: make([]float64, cfg.Banks)}
}

// Config returns the channel configuration.
func (c *Channel) Config() Config { return c.cfg }

// burst returns the data-transfer time of nbytes.
func (c *Channel) burst(nbytes int) float64 {
	return float64(nbytes*8) / (c.cfg.BusFreqHz * float64(c.cfg.BusWidthBits))
}

// Access schedules a closed-page read/write of nbytes to lineAddr at
// time now and returns the completion time (data available).
func (c *Channel) Access(now float64, lineAddr uint64, nbytes int) float64 {
	c.Accesses++
	bank := int(lineAddr) % c.cfg.Banks
	// Row activate can start once the bank is ready.
	start := now
	if c.bankFree[bank] > start {
		start = c.bankFree[bank]
	}
	ready := start + c.cfg.TRCDNs*1e-9 + c.cfg.TCASNs*1e-9
	// The burst needs the shared data bus.
	if c.busFree > ready {
		ready = c.busFree
	}
	done := ready + c.burst(nbytes)
	c.busFree = done
	c.BusyBus += c.burst(nbytes)
	// Closed page: auto-precharge after the burst.
	c.bankFree[bank] = done + c.cfg.TRPNs*1e-9
	return done
}

// IdleLatency is the unloaded access latency for nbytes.
func (c *Channel) IdleLatency(nbytes int) float64 {
	return (c.cfg.TRCDNs+c.cfg.TCASNs)*1e-9 + c.burst(nbytes)
}

// Utilization is the data-bus busy fraction over elapsed seconds.
func (c *Channel) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := c.BusyBus / elapsed
	if u > 1 {
		u = 1
	}
	return u
}
