package dram

import (
	"math"
	"testing"
)

func TestDefaultConfigMatchesTableIV(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.BytesPerSec(); math.Abs(got-12.8e9) > 1 {
		t.Fatalf("bandwidth = %g, want 12.8 GB/s", got)
	}
	if math.Abs(cfg.TRCDNs-11.25) > 1e-9 {
		t.Fatalf("tRCD = %v ns, want 11.25 (9 cycles @ 800MHz)", cfg.TRCDNs)
	}
}

func TestIdleLatency(t *testing.T) {
	c := NewChannel(DefaultConfig())
	// tRCD + tCAS + 64B burst = 22.5ns + 5ns = 27.5ns
	want := 27.5e-9
	if got := c.IdleLatency(64); math.Abs(got-want) > 1e-12 {
		t.Fatalf("idle latency = %g, want %g", got, want)
	}
	done := c.Access(0, 0, 64)
	if math.Abs(done-want) > 1e-12 {
		t.Fatalf("first access done = %g, want %g", done, want)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	c := NewChannel(DefaultConfig())
	d1 := c.Access(0, 0, 64) // bank 0
	d2 := c.Access(0, 8, 64) // bank 0 again (8 % 8 == 0)
	// Second access must wait for precharge after the first.
	if d2 <= d1+c.Config().TRPNs*1e-9 {
		t.Fatalf("bank conflict not serialized: d1=%g d2=%g", d1, d2)
	}
}

func TestBankParallelismOverlapsActivates(t *testing.T) {
	c := NewChannel(DefaultConfig())
	d1 := c.Access(0, 0, 64) // bank 0
	d2 := c.Access(0, 1, 64) // bank 1: activate overlaps, bus serializes
	serial := 2 * c.IdleLatency(64)
	if d2 >= serial {
		t.Fatalf("different banks should overlap: d2=%g, serial=%g, d1=%g", d2, serial, d1)
	}
	if d2 <= d1 {
		t.Fatal("bus must still serialize the bursts")
	}
}

func TestBusUtilization(t *testing.T) {
	c := NewChannel(DefaultConfig())
	for i := 0; i < 100; i++ {
		c.Access(0, uint64(i), 64)
	}
	if c.Accesses != 100 {
		t.Fatalf("accesses = %d", c.Accesses)
	}
	// 100 64B bursts = 500ns of bus time.
	if math.Abs(c.BusyBus-500e-9) > 1e-12 {
		t.Fatalf("bus busy = %g, want 500ns", c.BusyBus)
	}
	if u := c.Utilization(1e-6); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %v", u)
	}
	if u := c.Utilization(0); u != 0 {
		t.Fatal("zero elapsed should be 0")
	}
}

func TestSaturatedChannelApproachesPeakBandwidth(t *testing.T) {
	c := NewChannel(DefaultConfig())
	n := 10000
	var done float64
	for i := 0; i < n; i++ {
		done = c.Access(0, uint64(i), 64)
	}
	gbs := float64(n*64) / done / 1e9
	if gbs < 11 || gbs > 12.9 {
		t.Fatalf("saturated throughput %.2f GB/s, want ≈12.8", gbs)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChannel(Config{})
}
