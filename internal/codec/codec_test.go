package codec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"cable/internal/core"
)

// testPayload builds len-byte plaintext with cache-line-like structure:
// runs of word-aligned records whose fields drift slowly, so the CABLE
// pipeline finds signature matches, plus a noise span to exercise the
// raw-payload fallback.
func testPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n)
	base := rng.Uint32()
	for len(out) < n {
		switch rng.Intn(4) {
		case 0: // pointer-ish words drifting from a base
			for i := 0; i < 16 && len(out) < n; i++ {
				v := base + uint32(rng.Intn(256))
				out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
		case 1: // zero run
			for i := 0; i < 32 && len(out) < n; i++ {
				out = append(out, 0)
			}
		case 2: // repeated record
			rec := make([]byte, 12)
			rng.Read(rec)
			for i := 0; i < 8 && len(out) < n; i++ {
				rec[0] = byte(i)
				out = append(out, rec...)
			}
		default: // noise
			b := make([]byte, 24)
			rng.Read(b)
			out = append(out, b...)
		}
	}
	return out[:n]
}

// encodeAll runs plaintext through a fresh encoder in chunks of
// writeChunk bytes and returns the wire image.
func encodeAll(t *testing.T, plaintext []byte, o Options, writeChunk int) []byte {
	t.Helper()
	var wire bytes.Buffer
	e, err := NewEncoder(&wire, o)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	for off := 0; off < len(plaintext); off += writeChunk {
		end := off + writeChunk
		if end > len(plaintext) {
			end = len(plaintext)
		}
		if _, err := e.Write(plaintext[off:end]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return wire.Bytes()
}

func decodeAll(t *testing.T, wire []byte, readChunk int) []byte {
	t.Helper()
	d := NewDecoder(bytes.NewReader(wire))
	var out bytes.Buffer
	buf := make([]byte, readChunk)
	for {
		n, err := d.Read(buf)
		out.Write(buf[:n])
		if err == io.EOF {
			return out.Bytes()
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	plaintext := testPayload(64<<10, 1)
	for _, batch := range []int{1, 5, 32} {
		for _, extra := range []int{0, 1, 63} { // tail lengths
			t.Run(fmt.Sprintf("batch=%d/tail=%d", batch, extra), func(t *testing.T) {
				in := plaintext[:len(plaintext)-64+extra]
				wire := encodeAll(t, in, Options{Batch: batch}, 1000)
				got := decodeAll(t, wire, 777)
				if !bytes.Equal(got, in) {
					t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(in))
				}
			})
		}
	}
}

func TestRoundTripPipelined(t *testing.T) {
	in := testPayload(128<<10, 2)
	plain := encodeAll(t, in, Options{}, 4096)
	piped := encodeAll(t, in, Options{Pipeline: true}, 4096)
	if !bytes.Equal(plain, piped) {
		t.Fatal("pipelined wire image differs from direct")
	}
	if got := decodeAll(t, piped, 4096); !bytes.Equal(got, in) {
		t.Fatal("pipelined round trip mismatch")
	}
}

func TestRoundTripEngines(t *testing.T) {
	in := testPayload(32<<10, 3)
	for _, eng := range []string{"lbe", "bdi", "fpc"} {
		t.Run(eng, func(t *testing.T) {
			wire := encodeAll(t, in, Options{Engine: eng}, 4096)
			if got := decodeAll(t, wire, 4096); !bytes.Equal(got, in) {
				t.Fatal("round trip mismatch")
			}
		})
	}
}

func TestRoundTripLineSizes(t *testing.T) {
	in := testPayload(32<<10, 4)
	for _, ls := range []int{16, 32, 128} {
		t.Run(fmt.Sprintf("line=%d", ls), func(t *testing.T) {
			wire := encodeAll(t, in, Options{LineSize: ls, DictBytes: 64 << 10}, 4096)
			if got := decodeAll(t, wire, 4096); !bytes.Equal(got, in) {
				t.Fatal("round trip mismatch")
			}
		})
	}
}

// TestRawPassthrough feeds incompressible noise and checks the encoder
// falls back to raw frames — and that later compressible frames can
// still reference lines installed by raw ones.
func TestRawPassthrough(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	noise := make([]byte, 32<<10)
	rng.Read(noise)
	in := append(append([]byte(nil), noise...), testPayload(32<<10, 6)...)

	var wire bytes.Buffer
	e, err := NewEncoder(&wire, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Write(in); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Stats.RawFrames == 0 {
		t.Fatal("no raw frames for pure noise input")
	}
	if e.Stats.CableFrames == 0 {
		t.Fatal("no cable frames for structured input")
	}
	if got := decodeAll(t, wire.Bytes(), 4096); !bytes.Equal(got, in) {
		t.Fatal("round trip mismatch")
	}
	if uint64(wire.Len()) != e.Stats.OutBytes {
		t.Fatalf("OutBytes %d, wire %d", e.Stats.OutBytes, wire.Len())
	}
}

// TestEncoderReset checks a Reset encoder emits a byte-identical stream
// to a fresh one, even after encoding unrelated content first.
func TestEncoderReset(t *testing.T) {
	a := testPayload(48<<10, 7)
	b := testPayload(48<<10, 8)

	fresh := encodeAll(t, b, Options{}, 4096)

	var w1, w2 bytes.Buffer
	e, err := NewEncoder(&w1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Write(a); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e.Reset(&w2)
	if _, err := e.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w2.Bytes(), fresh) {
		t.Fatal("reset encoder wire image differs from fresh encoder")
	}

	// Decoder reset across the two streams (matching geometry path).
	d := NewDecoder(bytes.NewReader(w1.Bytes()))
	got, err := io.ReadAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Fatal("stream 1 mismatch")
	}
	d.Reset(bytes.NewReader(w2.Bytes()))
	if got, err = io.ReadAll(d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("stream 2 mismatch after decoder reset")
	}
}

// TestDeterminism: two independent encoders over the same stream must
// produce byte-identical wire images regardless of write chunking.
func TestDeterminism(t *testing.T) {
	in := testPayload(64<<10, 9)
	w1 := encodeAll(t, in, Options{}, 4096)
	w2 := encodeAll(t, in, Options{}, 123)
	if !bytes.Equal(w1, w2) {
		t.Fatal("wire image depends on write chunking")
	}
}

func TestFlushMidStream(t *testing.T) {
	in := testPayload(10_000, 10)
	var wire bytes.Buffer
	e, err := NewEncoder(&wire, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Write(in[:5000]); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	mark := wire.Len()
	if mark == 0 {
		t.Fatal("flush emitted nothing")
	}
	if _, err := e.Write(in[5000:]); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := decodeAll(t, wire.Bytes(), 512); !bytes.Equal(got, in) {
		t.Fatal("round trip mismatch across flush")
	}
}

// typedDecodeError reports whether err belongs to the documented error
// taxonomy for corrupted streams.
func typedDecodeError(err error) bool {
	return errors.Is(err, ErrBadFrame) ||
		errors.Is(err, core.ErrTruncatedPayload) ||
		errors.Is(err, core.ErrCRCMismatch) ||
		errors.Is(err, core.ErrCorruptDiff) ||
		errors.Is(err, core.ErrBadReference)
}

// drainDecoder decodes until EOF or error; corruption may legitimately
// go unnoticed (a flipped bit inside a raw line changes content, not
// structure), so the only hard requirements are no panic and, when an
// error does surface, that it is typed.
func drainDecoder(t *testing.T, wire []byte) {
	t.Helper()
	d := NewDecoder(bytes.NewReader(wire))
	buf := make([]byte, 4096)
	for {
		_, err := d.Read(buf)
		if err == io.EOF {
			return
		}
		if err != nil {
			if !typedDecodeError(err) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
	}
}

// TestCorruptionExhaustive flips every bit position (stride-sampled for
// speed) and truncates at every byte boundary of a real stream; the
// decoder must survive all of it.
func TestCorruptionExhaustive(t *testing.T) {
	in := testPayload(4<<10, 11)
	wire := encodeAll(t, in, Options{Batch: 8, DictBytes: 64 << 10}, 4096)

	for pos := 0; pos < len(wire); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), wire...)
			mut[pos] ^= 1 << bit
			drainDecoder(t, mut)
		}
	}
	for cut := 0; cut <= len(wire); cut++ {
		drainDecoder(t, wire[:cut])
	}
}

func TestEmptyStream(t *testing.T) {
	wire := encodeAll(t, nil, Options{}, 1)
	if got := decodeAll(t, wire, 16); len(got) != 0 {
		t.Fatalf("decoded %d bytes from empty stream", len(got))
	}
	// A zero-byte wire is a clean EOF, not an error.
	d := NewDecoder(bytes.NewReader(nil))
	if _, err := d.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("empty wire: got %v, want io.EOF", err)
	}
}

func TestSubLineStream(t *testing.T) {
	in := []byte("shorter than one line")
	wire := encodeAll(t, in, Options{}, 4)
	if got := decodeAll(t, wire, 4); !bytes.Equal(got, in) {
		t.Fatal("sub-line round trip mismatch")
	}
}

func TestOptionsValidate(t *testing.T) {
	for _, o := range []Options{
		{LineSize: 13},
		{LineSize: 8192},
		{Engine: "no-such-engine-name-that-is-far-too-long!"},
		{DictBytes: 1 << 30, LineSize: 16, DictWays: 1},
	} {
		if _, err := NewEncoder(io.Discard, o); err == nil {
			t.Fatalf("options %+v accepted", o)
		}
	}
	if _, err := NewEncoder(io.Discard, Options{Engine: "nope"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// countWriter counts bytes without retaining them.
type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

// TestCodecEncodeAllocs pins the steady-state encode path at zero
// allocations per Write once the encoder is warm.
func TestCodecEncodeAllocs(t *testing.T) {
	in := testPayload(1<<20, 12)
	e, err := NewEncoder(&countWriter{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: grow every scratch buffer to steady-state size.
	if _, err := e.Write(in); err != nil {
		t.Fatal(err)
	}
	chunk := in[:64<<10]
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := e.Write(chunk); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Write allocates %.1f times per call, want 0", allocs)
	}
}

// TestCodecDecodeAllocsBounded pins the warm decode path: no more than
// one alloc per Read call on average (growth paths aside).
func TestCodecDecodeAllocsBounded(t *testing.T) {
	in := testPayload(256<<10, 13)
	wire := encodeAll(t, in, Options{}, 1<<20)
	d := NewDecoder(bytes.NewReader(wire))
	if _, err := io.ReadAll(d); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	allocs := testing.AllocsPerRun(10, func() {
		d.Reset(bytes.NewReader(wire))
		for {
			if _, err := d.Read(buf); err != nil {
				if err == io.EOF {
					return
				}
				t.Fatal(err)
			}
		}
	})
	if allocs > 4 {
		t.Fatalf("warm decode allocates %.1f times per stream, want <= 4", allocs)
	}
}

func TestStatsRatioConsistency(t *testing.T) {
	in := testPayload(128<<10, 14)
	var wire bytes.Buffer
	e, err := NewEncoder(&wire, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Write(in); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Stats.InBytes != uint64(len(in)) {
		t.Fatalf("InBytes %d, want %d", e.Stats.InBytes, len(in))
	}
	if e.Stats.OutBytes != uint64(wire.Len()) {
		t.Fatalf("OutBytes %d, want wire %d", e.Stats.OutBytes, wire.Len())
	}
	d := NewDecoder(bytes.NewReader(wire.Bytes()))
	if _, err := io.ReadAll(d); err != nil {
		t.Fatal(err)
	}
	if d.Stats.InBytes != uint64(len(in)) {
		t.Fatalf("decoder InBytes %d, want %d", d.Stats.InBytes, len(in))
	}
	if d.Stats.OutBytes != uint64(wire.Len()) {
		t.Fatalf("decoder OutBytes %d, want %d", d.Stats.OutBytes, wire.Len())
	}
	if e.Stats.Lines != d.Stats.Lines || e.Stats.CableFrames != d.Stats.CableFrames ||
		e.Stats.RawFrames != d.Stats.RawFrames || e.Stats.TailBytes != d.Stats.TailBytes {
		t.Fatalf("stats disagree: enc %+v dec %+v", e.Stats, d.Stats)
	}
}
