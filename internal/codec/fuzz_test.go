package codec

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"cable/internal/core"
)

// FuzzCodecFrameDecode throws arbitrary bytes at the decoder. Seeds are
// real encoded streams (several geometries plus raw and tail frames),
// so the mutator spends its time past the header checks. The decoder
// must either finish or return a typed error; it must never panic and
// never allocate proportionally to a corrupted length field.
func FuzzCodecFrameDecode(f *testing.F) {
	seed := func(in []byte, o Options) {
		var wire bytes.Buffer
		e, err := NewEncoder(&wire, o)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := e.Write(in); err != nil {
			f.Fatal(err)
		}
		if err := e.Close(); err != nil {
			f.Fatal(err)
		}
		f.Add(wire.Bytes())
	}
	// Seeds are kept small (a few hundred wire bytes): the fuzz
	// minimizer re-executes the target once per candidate byte removal,
	// so kilobyte seeds turn every new-coverage hit into tens of
	// seconds of minimization on one core.
	structured := testPayload(256, 42)
	seed(structured, Options{DictBytes: 16 << 10})
	seed(structured, Options{DictBytes: 16 << 10, LineSize: 32, Batch: 3, Engine: "bdi"})
	seed(append(structured, 0xAB, 0xCD), Options{DictBytes: 16 << 10}) // tail frame
	noise := make([]byte, 256)
	for i := range noise {
		noise[i] = byte(i*197 + i>>3) // incompressible-ish: raw frames
	}
	seed(noise, Options{DictBytes: 16 << 10, Batch: 4})
	f.Add([]byte("CBLC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, wire []byte) {
		d := NewDecoder(bytes.NewReader(wire))
		buf := make([]byte, 4096)
		for {
			_, err := d.Read(buf)
			if err == nil {
				continue
			}
			if err == io.EOF {
				return
			}
			if typedDecodeError(err) || errors.Is(err, io.ErrUnexpectedEOF) {
				// The error must be sticky: further reads repeat it.
				if _, again := d.Read(buf); again == nil {
					t.Fatal("decoder kept reading after a decode error")
				}
				return
			}
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}

// FuzzCodecRoundTrip checks the full property on arbitrary plaintext:
// whatever bytes go in must come back out unchanged.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte("hello, cable"), uint8(1))
	f.Add(testPayload(600, 43), uint8(7))
	f.Add(make([]byte, 300), uint8(64))
	f.Fuzz(func(t *testing.T, in []byte, batch uint8) {
		var wire bytes.Buffer
		e, err := NewEncoder(&wire, Options{DictBytes: 32 << 10, Batch: int(batch)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Write(in); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		d := NewDecoder(bytes.NewReader(wire.Bytes()))
		got, err := io.ReadAll(d)
		if err != nil {
			t.Fatalf("decode of freshly encoded stream: %v", err)
		}
		if !bytes.Equal(got, in) {
			t.Fatalf("round trip mismatch: %d bytes in, %d out", len(in), len(got))
		}
		// Corrupted streams must fail typed, not panic (single probe per
		// input; the exhaustive sweep lives in TestCorruptionExhaustive).
		if wire.Len() > 0 {
			mut := wire.Bytes()
			mut[len(mut)/2] ^= 0x10
			d := NewDecoder(bytes.NewReader(mut))
			for {
				if _, err := d.Read(make([]byte, 512)); err != nil {
					if err != io.EOF && !typedDecodeError(err) && !errors.Is(err, io.ErrUnexpectedEOF) {
						t.Fatalf("untyped decode error: %v", err)
					}
					break
				}
			}
		}
	})
}

var _ = core.ErrTruncatedPayload // keep the import obvious at a glance
