package codec

import (
	"fmt"
	"io"

	"cable/internal/cache"
	"cable/internal/compress"
	"cable/internal/core"
)

// Decoder reconstructs the plaintext stream from the wire format. It is
// an io.Reader; geometry and engine come from the stream header, so a
// Decoder needs no configuration. Reset re-arms it for the next stream,
// reusing the dictionary when the new header matches the old geometry.
type Decoder struct {
	r io.Reader

	dict   *cache.Cache
	re     *core.RemoteEnd
	geom   cache.Config
	engine string

	sets, ways       uint64
	lineSize         int
	idxBits, wayBits int

	seq        uint64
	headerDone bool
	head       [frameHdrLen]byte
	body       []byte
	ps         []core.Payload
	scrs       []core.PayloadScratch
	out        []byte
	outPos     int
	err        error

	// emitFn is the DecodeFills callback, built once; it reads curBase.
	emitFn  func(i int, data []byte)
	curBase uint64

	// Stats accumulates this stream's traffic; Reset zeroes it.
	Stats StreamStats
}

// NewDecoder builds a decoder reading the encoded stream from r.
func NewDecoder(r io.Reader) *Decoder {
	d := &Decoder{r: r}
	d.emitFn = d.emitLine
	return d
}

// Reset discards all stream state and re-arms the decoder on r. The
// dictionary survives if the next stream's header declares the same
// geometry and engine — the common case when pooling connections with
// one codec configuration.
func (d *Decoder) Reset(r io.Reader) {
	d.r = r
	d.seq = 0
	d.headerDone = false
	d.out = d.out[:0]
	d.outPos = 0
	d.err = nil
	d.Stats = StreamStats{}
}

// Read implements io.Reader. At end of stream it returns io.EOF; any
// corruption surfaces as a typed error (ErrBadFrame or the core payload
// error taxonomy), sticky across calls.
func (d *Decoder) Read(p []byte) (int, error) {
	for d.outPos == len(d.out) {
		if d.err != nil {
			return 0, d.err
		}
		d.out = d.out[:0]
		d.outPos = 0
		if err := d.nextFrame(); err != nil {
			d.err = err
			if len(d.out) > 0 {
				break // deliver what the frame produced before failing
			}
			return 0, err
		}
	}
	n := copy(p, d.out[d.outPos:])
	d.outPos += n
	return n, nil
}

// emitLine is the DecodeFills callback: install decoded line i at its
// slot before payload i+1 decodes, keeping the dictionary synchronized
// for payload i+1's references.
func (d *Decoder) emitLine(i int, data []byte) {
	d.installLine(d.curBase+uint64(i), data)
	d.out = append(d.out, data...)
	d.Stats.InBytes += uint64(len(data))
}

// installLine mirrors the encoder's dictionary install. The decoder
// never touches the link tables: only the compressing side needs them.
func (d *Decoder) installLine(s uint64, data []byte) {
	slot := slotOf(s, d.sets, d.ways)
	d.dict.OverwriteAt(s, data, cache.Shared, slot.Way)
}

// readFull wraps io.ReadFull, converting a mid-object EOF into a typed
// truncation error.
func (d *Decoder) readFull(buf []byte, what string) error {
	if _, err := io.ReadFull(d.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("codec: %s: %w: %w", what, core.ErrTruncatedPayload, err)
	}
	return nil
}

// readHeader parses and validates the stream header, (re)building the
// dictionary and remote end unless the previous stream's survive the
// geometry check.
func (d *Decoder) readHeader() error {
	var fixed [headerFixed]byte
	if _, err := io.ReadFull(d.r, fixed[:1]); err != nil {
		return io.EOF // empty stream: clean EOF before any magic byte
	}
	if err := d.readFull(fixed[1:], "stream header"); err != nil {
		return err
	}
	if [4]byte(fixed[:4]) != magic {
		return fmt.Errorf("%w: bad magic %q", ErrBadFrame, fixed[:4])
	}
	if fixed[4] != version {
		return fmt.Errorf("%w: version %d, want %d", ErrBadFrame, fixed[4], version)
	}
	lineSize := int(rd16(fixed[5:7]))
	sets := int(rd32(fixed[7:11]))
	ways := int(fixed[11])
	nameLen := int(fixed[12])
	if lineSize < minLineSize || lineSize > maxLineSize || lineSize%4 != 0 {
		return fmt.Errorf("%w: line size %d", ErrBadFrame, lineSize)
	}
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 || sets > maxDictLines/ways {
		return fmt.Errorf("%w: geometry %d sets x %d ways", ErrBadFrame, sets, ways)
	}
	if nameLen > maxEngName {
		return fmt.Errorf("%w: %d-byte engine name", ErrBadFrame, nameLen)
	}
	name := make([]byte, nameLen)
	if err := d.readFull(name, "engine name"); err != nil {
		return err
	}
	geom := dictConfig(sets*ways*lineSize, ways, lineSize)
	if err := geom.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadFrame, err)
	}
	if d.dict != nil && d.geom == geom && d.engine == string(name) {
		// Same shape as the previous stream: rewind in place.
		d.dict.Reset()
		d.re.Reset()
	} else {
		dict := cache.New(geom)
		re, err := core.NewRemoteEnd(codecConfig(string(name)), dict)
		if err != nil {
			return fmt.Errorf("%w: %w", ErrBadFrame, err)
		}
		d.dict, d.re, d.geom, d.engine = dict, re, geom, string(name)
	}
	d.sets = uint64(sets)
	d.ways = uint64(ways)
	d.lineSize = lineSize
	d.idxBits = d.dict.IndexBits()
	d.wayBits = d.dict.WayBits()
	d.headerDone = true
	d.Stats.OutBytes += uint64(headerFixed + nameLen)
	return nil
}

// nextFrame reads and decodes one frame into d.out.
func (d *Decoder) nextFrame() error {
	if !d.headerDone {
		if err := d.readHeader(); err != nil {
			return err
		}
	}
	if _, err := io.ReadFull(d.r, d.head[:1]); err != nil {
		if err == io.EOF {
			return io.EOF // clean end of stream at a frame boundary
		}
		return fmt.Errorf("codec: frame header: %w: %w", core.ErrTruncatedPayload, err)
	}
	if err := d.readFull(d.head[1:], "frame header"); err != nil {
		return err
	}
	kind := d.head[0]
	count := int(rd16(d.head[1:3]))
	bodyLen := int(rd32(d.head[3:7]))
	d.Stats.OutBytes += uint64(frameHdrLen + bodyLen)

	// Sanity-check the header before allocating or reading the body, so
	// a corrupted length cannot provoke a huge allocation and contradictory
	// fields die as ErrBadFrame rather than a misparse.
	switch kind {
	case kindCable:
		if count < 1 || count > MaxBatch {
			return fmt.Errorf("%w: cable frame of %d lines", ErrBadFrame, count)
		}
		if bodyLen < 2*count || bodyLen > count*(4*d.lineSize+16) {
			return fmt.Errorf("%w: cable frame body %dB for %d lines", ErrBadFrame, bodyLen, count)
		}
	case kindRaw:
		if count < 1 || count > MaxBatch {
			return fmt.Errorf("%w: raw frame of %d lines", ErrBadFrame, count)
		}
		if bodyLen != count*d.lineSize {
			return fmt.Errorf("%w: raw frame body %dB for %d lines", ErrBadFrame, bodyLen, count)
		}
	case kindTail:
		if count != bodyLen || count < 1 || count >= d.lineSize {
			return fmt.Errorf("%w: tail frame of %dB (body %dB)", ErrBadFrame, count, bodyLen)
		}
	default:
		return fmt.Errorf("%w: kind %d", ErrBadFrame, kind)
	}

	if cap(d.body) < bodyLen {
		d.body = make([]byte, bodyLen)
	}
	d.body = d.body[:bodyLen]
	if err := d.readFull(d.body, "frame body"); err != nil {
		return err
	}

	switch kind {
	case kindCable:
		return d.decodeCableFrame(count)
	case kindRaw:
		for i := 0; i < count; i++ {
			d.installLine(d.seq+uint64(i), d.body[i*d.lineSize:(i+1)*d.lineSize])
		}
		d.out = append(d.out, d.body...)
		d.seq += uint64(count)
		d.Stats.Lines += uint64(count)
		d.Stats.RawFrames++
		d.Stats.InBytes += uint64(len(d.body))
		return nil
	default: // kindTail
		d.out = append(d.out, d.body...)
		d.Stats.TailBytes += uint64(count)
		d.Stats.InBytes += uint64(count)
		return nil
	}
}

// decodeCableFrame parses the count payload entries out of d.body and
// runs them through the batched decode path.
func (d *Decoder) decodeCableFrame(count int) error {
	if cap(d.ps) < count {
		d.ps = make([]core.Payload, count)
		d.scrs = make([]core.PayloadScratch, count)
	}
	d.ps = d.ps[:count]
	d.scrs = d.scrs[:count]
	off := 0
	for i := 0; i < count; i++ {
		if off+2 > len(d.body) {
			return fmt.Errorf("%w: payload %d header past frame end", ErrBadFrame, i)
		}
		nb := int(rd16(d.body[off : off+2]))
		off += 2
		nbytes := (nb + 7) / 8
		if off+nbytes > len(d.body) {
			return fmt.Errorf("codec: payload %d: %d bits past frame end: %w", i, nb, core.ErrTruncatedPayload)
		}
		enc := compress.Encoded{Data: d.body[off : off+nbytes], NBits: nb}
		off += nbytes
		if err := core.UnmarshalPayloadGuardedScratch(&d.ps[i], &d.scrs[i], enc, d.idxBits, d.wayBits, d.lineSize); err != nil {
			return fmt.Errorf("codec: payload %d: %w", i, err)
		}
	}
	if off != len(d.body) {
		return fmt.Errorf("%w: %d trailing bytes after %d payloads", ErrBadFrame, len(d.body)-off, count)
	}
	d.curBase = d.seq
	if err := d.re.DecodeFills(d.ps, d.emitFn); err != nil {
		return fmt.Errorf("codec: frame at line %d: %w", d.seq, err)
	}
	d.seq += uint64(count)
	d.Stats.Lines += uint64(count)
	d.Stats.CableFrames++
	return nil
}
