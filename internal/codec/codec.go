// Package codec turns the CABLE link encoder into a transport-agnostic
// streaming codec: an io.Writer-style Encoder and io.Reader-style
// Decoder whose shared compression dictionary is a pair of
// lock-stepped caches — the home/remote dictionary of a CABLE link —
// kept synchronized purely by the byte stream itself.
//
// # Dictionary synchronization
//
// The encoder owns one dictionary cache and drives a core.HomeEnd over
// it (the cache serves as both the "home" and the "remote" side: the
// encoder's dictionary is, by construction, an exact mirror of the
// decoder's). The byte stream is chopped into fixed-size lines; line
// number s is installed at the deterministic slot
//
//	index = s mod sets,  way = (s / sets) mod ways
//
// before it is encoded, so the CABLE pipeline can compress it as a DIFF
// against similar earlier lines still resident in the dictionary. The
// decoder replays the identical installs from the decoded lines, so
// both dictionaries hold the same bytes at the same slots at every line
// boundary — which is exactly the contract reference pointers
// (RemoteLIDs) need. Decode order is therefore the synchronization
// barrier: payload s may reference any slot as of line s-1, so lines
// must decode (and install) strictly in stream order.
//
// # Wire format (version 1)
//
//	header:  "CBLC" | ver u8 | lineSize u16 | sets u32 | ways u8 |
//	         engLen u8 | engine name
//	frame:   kind u8 | count u16 | bodyLen u32 | body
//
// Integers are little-endian. Frame kinds:
//
//	kindCable (1): count lines; body is count × (nbits u16 | guarded
//	               payload image of ceil(nbits/8) bytes) — the CRC-8
//	               guarded CABLE payload of PR 4.
//	kindRaw   (2): count lines verbatim (count × lineSize bytes) — the
//	               raw-passthrough fallback for incompressible spans.
//	               Dictionary installs still happen, so later frames
//	               may reference these lines.
//	kindTail  (3): count (== bodyLen < lineSize) literal trailing
//	               bytes; not installed. At most one, at end of stream.
//
// Corruption anywhere surfaces as a typed error — ErrBadFrame for
// structural damage, core.ErrTruncatedPayload / core.ErrCRCMismatch /
// core.ErrCorruptDiff / core.ErrBadReference for payload damage —
// never a panic.
package codec

import (
	"errors"
	"fmt"

	"cable/internal/cache"
	"cable/internal/core"
)

// ErrBadFrame marks structural damage to the stream framing: a bad
// magic or version, an unknown frame kind, or frame counts/lengths
// that contradict each other. (Payload-level damage surfaces as the
// core error taxonomy instead.)
var ErrBadFrame = errors.New("codec: bad frame")

// Wire constants.
const (
	version     = 1
	headerFixed = 13 // magic + ver + lineSize + sets + ways + engLen
	frameHdrLen = 7  // kind + count + bodyLen

	kindCable = 1
	kindRaw   = 2
	kindTail  = 3

	// MaxBatch bounds lines per frame; the count field could carry
	// 65535 but bounding it keeps a corrupted count from provoking a
	// large allocation before the body-length cross-check runs.
	MaxBatch = 4096

	minLineSize = 16
	maxLineSize = 4096
	maxEngName  = 32

	// maxDictLines bounds sets × ways for any stream this package will
	// produce or accept: large enough for a 16 MB dictionary of 64-byte
	// lines (500× the 32 KB window the paper models for gzip), small
	// enough that a corrupted header cannot talk the decoder into a
	// giant table allocation — the decoder builds the dictionary before
	// it has seen anything but the 13-byte header.
	maxDictLines = 1 << 18
)

var magic = [4]byte{'C', 'B', 'L', 'C'}

// Options configures an Encoder (and, implicitly, the Decoder: the
// decoder reads geometry and engine from the stream header).
type Options struct {
	// LineSize is the dictionary line size in bytes (default 64, the
	// cache-line granularity the CABLE pipeline is built for).
	LineSize int
	// DictBytes sizes the dictionary cache (default 1 MB). Bigger
	// dictionaries keep references alive longer; both sides allocate
	// this much.
	DictBytes int
	// DictWays is the dictionary associativity (default 8).
	DictWays int
	// Engine names the delegated per-line compression engine
	// (default "lbe").
	Engine string
	// Batch is the number of lines encoded per EncodeFills call and
	// framed together (default 32, clamped to [1, MaxBatch]).
	Batch int
	// Pipeline runs frame emission on a writer goroutine so fill
	// batching overlaps the underlying Write calls. Output bytes are
	// identical; Close/Flush block until drained.
	Pipeline bool
}

// normalize fills defaults and validates.
func (o Options) normalize() (Options, error) {
	if o.LineSize == 0 {
		o.LineSize = 64
	}
	if o.DictBytes == 0 {
		o.DictBytes = 1 << 20
	}
	if o.DictWays == 0 {
		o.DictWays = 8
	}
	if o.Engine == "" {
		o.Engine = "lbe"
	}
	if o.Batch == 0 {
		o.Batch = 32
	}
	if o.Batch < 1 {
		o.Batch = 1
	}
	if o.Batch > MaxBatch {
		o.Batch = MaxBatch
	}
	if o.LineSize < minLineSize || o.LineSize > maxLineSize || o.LineSize%4 != 0 {
		return o, fmt.Errorf("codec: line size %d outside [%d, %d] or not word-aligned", o.LineSize, minLineSize, maxLineSize)
	}
	if len(o.Engine) > maxEngName {
		return o, fmt.Errorf("codec: engine name %q longer than %d bytes", o.Engine, maxEngName)
	}
	cfg := dictConfig(o.DictBytes, o.DictWays, o.LineSize)
	if err := cfg.Validate(); err != nil {
		return o, err
	}
	if cfg.SizeBytes/cfg.LineSize > maxDictLines {
		return o, fmt.Errorf("codec: dictionary of %d lines exceeds the wire limit of %d", cfg.SizeBytes/cfg.LineSize, maxDictLines)
	}
	return o, nil
}

func dictConfig(sizeBytes, ways, lineSize int) cache.Config {
	return cache.Config{Name: "codec-dict", SizeBytes: sizeBytes, Ways: ways, LineSize: lineSize}
}

// StreamStats counts one stream's traffic.
type StreamStats struct {
	Lines       uint64 // full lines encoded/decoded
	CableFrames uint64
	RawFrames   uint64
	TailBytes   uint64 // trailing sub-line bytes
	InBytes     uint64 // plaintext side
	OutBytes    uint64 // encoded side
}

// Ratio returns plaintext bytes per encoded byte (>1 is compression).
func (s StreamStats) Ratio() float64 {
	if s.OutBytes == 0 {
		return 1
	}
	return float64(s.InBytes) / float64(s.OutBytes)
}

// slotOf maps line number s to its dictionary slot: round-robin over
// sets, then ways — a pure function both ends compute identically.
func slotOf(s, sets, ways uint64) cache.LineID {
	return cache.LineID{Index: int(s & (sets - 1)), Way: int((s / sets) % ways)}
}

// codecConfig is the CABLE framework configuration both ends derive
// from the engine name; only EngineName and the geometry matter for
// wire compatibility.
func codecConfig(engine string) core.Config {
	cfg := core.DefaultConfig()
	cfg.EngineName = engine
	cfg.WritebackCompression = false // one-way stream: no write-backs
	return cfg
}

func le16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func le32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func rd16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func rd32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
