package codec

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"cable/internal/bits"
	"cable/internal/cache"
	"cable/internal/core"
)

// Encoder compresses a byte stream through a CABLE link into the
// chunked wire format. It is an io.Writer with explicit Flush/Close;
// one Encoder serves one stream at a time, and Reset re-arms it for the
// next stream without rebuilding its dictionary or tables — Encoders
// are sync.Pool-friendly.
//
// The hot path rides the batched EncodeFills API: Write accumulates
// lines until a full batch is ready (or consumes full batches straight
// from the caller's buffer, copy-free), encodes the batch in one call,
// and frames the guarded payload images. Steady-state encoding
// allocates nothing.
type Encoder struct {
	w   io.Writer
	opt Options

	dict *cache.Cache
	he   *core.HomeEnd

	sets, ways       uint64
	lineSize         int
	batchBytes       int
	idxBits, wayBits int

	seq        uint64 // lines committed to the dictionary
	buf        []byte // pending input (partial batch + partial line)
	reqs       []core.BatchFill
	frame      []byte // frame under construction, header reserved at [0:frameHdrLen]
	mw         bits.Writer
	headerDone bool
	closed     bool
	err        error

	// emitFn is the EncodeFills callback, built once so the per-batch
	// call does not allocate a closure; it reads the cur* fields.
	emitFn   func(i int, p core.Payload, lat core.FillLatency)
	curBlock []byte
	curBase  uint64
	curN     int

	pipe *framePipe // non-nil in pipelined mode

	// Stats accumulates this stream's traffic; Reset zeroes it.
	Stats StreamStats
}

// NewEncoder builds an encoder writing the encoded stream to w.
func NewEncoder(w io.Writer, o Options) (*Encoder, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	dict := cache.New(dictConfig(o.DictBytes, o.DictWays, o.LineSize))
	he, err := core.NewHomeEnd(codecConfig(o.Engine), dict, dict)
	if err != nil {
		return nil, err
	}
	e := &Encoder{
		w:          w,
		opt:        o,
		dict:       dict,
		he:         he,
		sets:       uint64(dict.NumSets()),
		ways:       uint64(o.DictWays),
		lineSize:   o.LineSize,
		batchBytes: o.Batch * o.LineSize,
		idxBits:    dict.IndexBits(),
		wayBits:    dict.WayBits(),
	}
	e.emitFn = e.emitPayload
	if o.Pipeline {
		e.pipe = newFramePipe(w)
	}
	return e, nil
}

// errClosed reports writes after Close.
var errClosed = errors.New("codec: encoder is closed")

// Write implements io.Writer: it buffers p into lines and encodes every
// full batch. Write never fails on content — only on underlying writer
// errors (which are sticky).
func (e *Encoder) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	if e.closed {
		return 0, errClosed
	}
	n := len(p)
	e.Stats.InBytes += uint64(n)
	// Copy-free fast path: with nothing pending, full batches encode
	// straight out of the caller's buffer.
	for len(e.buf) == 0 && len(p) >= e.batchBytes {
		if err := e.encodeLines(p[:e.batchBytes]); err != nil {
			return n - len(p), err
		}
		p = p[e.batchBytes:]
	}
	for len(p) > 0 {
		take := e.batchBytes - len(e.buf)
		if take > len(p) {
			take = len(p)
		}
		e.buf = append(e.buf, p[:take]...)
		p = p[take:]
		if len(e.buf) == e.batchBytes {
			if err := e.encodeLines(e.buf); err != nil {
				return n - len(p), err
			}
			e.buf = e.buf[:0]
		}
	}
	return n, nil
}

// Flush encodes every buffered complete line as a (possibly short)
// frame and blocks until the underlying writer has consumed everything
// emitted so far. Bytes short of a line stay buffered: only Close can
// emit them (as the tail frame).
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	full := len(e.buf) / e.lineSize * e.lineSize
	if full > 0 {
		if err := e.encodeLines(e.buf[:full]); err != nil {
			return err
		}
		rem := copy(e.buf, e.buf[full:])
		e.buf = e.buf[:rem]
	}
	if e.pipe != nil {
		if err := e.pipe.drain(); err != nil {
			e.err = err
			return err
		}
	}
	return nil
}

// Close flushes buffered lines, emits the tail frame for any sub-line
// remainder, and shuts the pipeline down. It does not close the
// underlying writer. Close is idempotent.
func (e *Encoder) Close() error {
	if e.closed {
		return e.err
	}
	if err := e.Flush(); err != nil {
		e.closed = true
		e.finishPipe()
		return err
	}
	if err := e.ensureHeader(); err != nil {
		e.closed = true
		e.finishPipe()
		return err
	}
	if len(e.buf) > 0 {
		e.frame = append(e.frame[:0], make([]byte, frameHdrLen)...)
		e.frame = append(e.frame, e.buf...)
		e.Stats.TailBytes += uint64(len(e.buf))
		err := e.emitFrame(kindTail, len(e.buf))
		e.buf = e.buf[:0]
		if err != nil {
			e.closed = true
			e.finishPipe()
			return err
		}
	}
	e.closed = true
	if err := e.finishPipe(); err != nil {
		e.err = err
		return err
	}
	return nil
}

func (e *Encoder) finishPipe() error {
	if e.pipe == nil {
		return nil
	}
	err := e.pipe.stop()
	e.pipe = nil
	return err
}

// Reset discards all stream state — buffered bytes, the dictionary,
// the link tables, stats, any error — and re-arms the encoder on w. A
// Reset encoder emits byte-identical output to a newly built one with
// the same Options, which is what makes pooling instances safe.
func (e *Encoder) Reset(w io.Writer) {
	e.finishPipe()
	e.w = w
	e.dict.Reset()
	e.he.Reset()
	e.seq = 0
	e.buf = e.buf[:0]
	e.frame = e.frame[:0]
	e.headerDone = false
	e.closed = false
	e.err = nil
	e.Stats = StreamStats{}
	if e.opt.Pipeline {
		e.pipe = newFramePipe(w)
	}
}

// ensureHeader writes the stream header before the first frame.
func (e *Encoder) ensureHeader() error {
	if e.headerDone {
		return nil
	}
	hdr := make([]byte, 0, headerFixed+len(e.opt.Engine))
	hdr = append(hdr, magic[:]...)
	hdr = append(hdr, version)
	hdr = append(hdr, byte(e.lineSize), byte(e.lineSize>>8))
	var s4 [4]byte
	le32(s4[:], uint32(e.sets))
	hdr = append(hdr, s4[:]...)
	hdr = append(hdr, byte(e.ways), byte(len(e.opt.Engine)))
	hdr = append(hdr, e.opt.Engine...)
	e.headerDone = true
	return e.writeOut(hdr)
}

// installLine commits line s to the dictionary: scrub the displaced
// occupant from the link tables (the home-side half of the §III-F
// synchronization), then overwrite the slot in place. The decoder
// performs the same install — minus the table scrub, which only the
// compressing side needs — from the decoded bytes.
func (e *Encoder) installLine(s uint64, data []byte) {
	slot := slotOf(s, e.sets, e.ways)
	if victim, ok := e.dict.LineAddrOf(slot); ok {
		e.he.OnHomeEviction(victim)
	}
	e.dict.OverwriteAt(s, data, cache.Shared, slot.Way)
}

// emitPayload is the EncodeFills callback: marshal payload i into the
// frame, then install line i+1 — the exact point between line i's
// structural mutations and line i+1's probe where the batch path
// guarantees sequential equivalence.
func (e *Encoder) emitPayload(i int, p core.Payload, _ core.FillLatency) {
	enc := p.MarshalGuardedInto(&e.mw, e.idxBits, e.wayBits)
	if enc.NBits > 0xFFFF {
		// Unreachable for any supported lineSize/engine (see
		// maxLineSize); guard the u16 field anyway.
		if e.err == nil {
			e.err = fmt.Errorf("codec: %d-bit payload overflows frame entry", enc.NBits)
		}
		return
	}
	e.frame = append(e.frame, byte(enc.NBits), byte(enc.NBits>>8))
	e.frame = append(e.frame, enc.Data[:(enc.NBits+7)/8]...)
	if i+1 < e.curN {
		off := (i + 1) * e.lineSize
		e.installLine(e.curBase+uint64(i+1), e.curBlock[off:off+e.lineSize])
	}
}

// encodeLines encodes a block of 1..Batch complete lines as one frame.
func (e *Encoder) encodeLines(block []byte) error {
	if err := e.ensureHeader(); err != nil {
		return err
	}
	n := len(block) / e.lineSize
	e.curBlock, e.curBase, e.curN = block, e.seq, n
	e.reqs = e.reqs[:0]
	for i := 0; i < n; i++ {
		s := e.seq + uint64(i)
		e.reqs = append(e.reqs, core.BatchFill{
			LineAddr: s,
			State:    cache.Shared,
			ReplWay:  slotOf(s, e.sets, e.ways).Way,
		})
	}
	e.frame = append(e.frame[:0], make([]byte, frameHdrLen)...)
	e.installLine(e.seq, block[:e.lineSize])
	if err := e.he.EncodeFills(e.reqs, e.emitFn); err != nil {
		e.err = err
		return err
	}
	if e.err != nil {
		return e.err
	}
	e.seq += uint64(n)
	e.Stats.Lines += uint64(n)
	if len(e.frame)-frameHdrLen >= n*e.lineSize {
		// Incompressible span: the payload framing costs at least as
		// much as the lines themselves, so pass them through raw. The
		// link tables already absorbed the batch identically, and the
		// decoder installs raw lines at the same slots, so dictionary
		// sync holds either way.
		e.frame = append(e.frame[:0], make([]byte, frameHdrLen)...)
		for i := 0; i < n; i++ {
			line := e.dict.ReadByID(slotOf(e.curBase+uint64(i), e.sets, e.ways))
			e.frame = append(e.frame, line.Data...)
		}
		e.Stats.RawFrames++
		return e.emitFrame(kindRaw, n)
	}
	e.Stats.CableFrames++
	return e.emitFrame(kindCable, n)
}

// emitFrame stamps the reserved header of e.frame and ships it.
func (e *Encoder) emitFrame(kind byte, count int) error {
	body := len(e.frame) - frameHdrLen
	e.frame[0] = kind
	le16(e.frame[1:3], uint16(count))
	le32(e.frame[3:7], uint32(body))
	return e.writeOut(e.frame)
}

// writeOut ships one buffer: directly, or through the pipeline (which
// swaps e.frame for a recycled buffer so encoding can continue while
// the writer goroutine drains).
func (e *Encoder) writeOut(buf []byte) error {
	e.Stats.OutBytes += uint64(len(buf))
	if e.pipe != nil {
		next, err := e.pipe.send(buf)
		if err != nil {
			e.err = err
			return err
		}
		if len(e.frame) > 0 && &buf[0] == &e.frame[0] {
			e.frame = next
		}
		return nil
	}
	if _, err := e.w.Write(buf); err != nil {
		e.err = err
		return err
	}
	return nil
}

// framePipe is the optional emission pipeline: a writer goroutine and a
// two-buffer rotation, so the encoder fills the next frame while the
// previous one is being written. Frames are written strictly in send
// order, so pipelined output is byte-identical to direct output.
type framePipe struct {
	ch   chan pipeMsg
	free chan []byte
	done chan struct{}

	mu  sync.Mutex
	err error
}

type pipeMsg struct {
	buf []byte
	ack chan struct{}
}

func newFramePipe(w io.Writer) *framePipe {
	p := &framePipe{
		ch:   make(chan pipeMsg, 1),
		free: make(chan []byte, 2),
		done: make(chan struct{}),
	}
	p.free <- nil // second rotation buffer, grown on first use
	go func() {
		defer close(p.done)
		for m := range p.ch {
			if m.buf != nil {
				if p.fail() == nil {
					if _, err := w.Write(m.buf); err != nil {
						p.setErr(err)
					}
				}
				select {
				case p.free <- m.buf:
				default:
				}
			}
			if m.ack != nil {
				close(m.ack)
			}
		}
	}()
	return p
}

func (p *framePipe) fail() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *framePipe) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// send ships buf and returns a recycled buffer (length 0) for the
// caller's next frame.
func (p *framePipe) send(buf []byte) ([]byte, error) {
	p.ch <- pipeMsg{buf: buf}
	next := <-p.free
	if next == nil {
		next = make([]byte, 0, cap(buf))
	}
	return next[:0], p.fail()
}

// drain blocks until every sent frame has been written.
func (p *framePipe) drain() error {
	ack := make(chan struct{})
	p.ch <- pipeMsg{ack: ack}
	<-ack
	return p.fail()
}

// stop drains and terminates the writer goroutine.
func (p *framePipe) stop() error {
	close(p.ch)
	<-p.done
	return p.fail()
}
