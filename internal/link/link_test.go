package link

import (
	"math"
	"testing"
)

func TestFlitsQuantization(t *testing.T) {
	l := New(Config{WidthBits: 16, FreqHz: 9.6e9})
	cases := []struct{ bits, flits int }{
		{0, 0}, {1, 1}, {16, 1}, {17, 2}, {512, 32}, {513, 33},
	}
	for _, c := range cases {
		if got := l.Flits(c.bits); got != c.flits {
			t.Errorf("Flits(%d) = %d, want %d", c.bits, got, c.flits)
		}
	}
}

func TestMaxCompressionCap(t *testing.T) {
	// §III-E: the 16-bit bus caps effective compression at 32×.
	l := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		l.Send(1) // maximally compressed payloads
	}
	ratio := l.EffectiveRatio(100 * 64)
	if math.Abs(ratio-32) > 1e-9 {
		t.Fatalf("max effective ratio %.2f, want 32", ratio)
	}
}

func TestPackedTransportSavesPadding(t *testing.T) {
	plain := New(Config{WidthBits: 64, FreqHz: 1})
	packed := New(Config{WidthBits: 64, FreqHz: 1, Packed: true})
	// 20-bit payloads: plain wastes 44 bits each; packed only adds a
	// 6-bit length.
	for i := 0; i < 1000; i++ {
		plain.Send(20)
		packed.Send(20)
	}
	if plain.WireBits != 64000 {
		t.Fatalf("plain wire bits = %d", plain.WireBits)
	}
	if packed.WireBits != 26000 {
		t.Fatalf("packed wire bits = %d, want 26000", packed.WireBits)
	}
	if packed.EffectiveRatio(1000*64) <= plain.EffectiveRatio(1000*64) {
		t.Fatal("packed transport should beat plain at wide widths")
	}
}

func TestPackedResidualAccounting(t *testing.T) {
	l := New(Config{WidthBits: 16, FreqHz: 1, Packed: true})
	l.Send(5) // 11 bits used, residual 5
	if l.residualBits != 5 {
		t.Fatalf("residual = %d, want 5", l.residualBits)
	}
	l.Send(10) // 16 bits: 5 residual + 11 of a new flit → residual 5
	if l.residualBits != 5 {
		t.Fatalf("residual = %d, want 5", l.residualBits)
	}
	if l.WireBits != 5+6+10+6 {
		t.Fatalf("wire bits = %d", l.WireBits)
	}
}

func TestToggleCounting(t *testing.T) {
	l := New(Config{WidthBits: 8, FreqHz: 1})
	// Words: 0xFF, 0x00, 0xFF → 8 + 8 toggles after the first word
	// (prev starts at 0 → first word adds 8).
	l.SendWire([]byte{0xFF, 0x00, 0xFF}, 24)
	if l.Toggles != 24 {
		t.Fatalf("toggles = %d, want 24", l.Toggles)
	}
	// Constant data: no further toggles.
	l2 := New(Config{WidthBits: 8, FreqHz: 1})
	l2.SendWire([]byte{0x55, 0x55, 0x55}, 24)
	if l2.Toggles != 4 { // 0x00→0x55 then two zero-toggle words
		t.Fatalf("constant toggles = %d, want 4", l2.Toggles)
	}
}

func TestToggleCountsPartialTailWord(t *testing.T) {
	l := New(Config{WidthBits: 16, FreqHz: 1})
	l.SendWire([]byte{0xFF, 0xFF, 0xFF}, 20) // 16-bit word + 4-bit tail
	if l.Toggles == 0 {
		t.Fatal("tail bits should still toggle")
	}
}

func TestBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.BytesPerSec(); math.Abs(got-19.2e9) > 1 {
		t.Fatalf("bandwidth = %g, want 19.2 GB/s (Table IV)", got)
	}
}

func TestChannelSerialization(t *testing.T) {
	// 16 bits at 1 GHz × 16-bit width = 1e9 bits... transfer of 160
	// bits takes 10 ns.
	c := NewChannel(Config{WidthBits: 16, FreqHz: 1e9})
	done1 := c.Transfer(0, 160)
	if math.Abs(done1-10e-9) > 1e-15 {
		t.Fatalf("done1 = %g, want 10ns", done1)
	}
	// Second transfer issued at t=0 must queue behind the first.
	done2 := c.Transfer(0, 160)
	if math.Abs(done2-20e-9) > 1e-15 {
		t.Fatalf("done2 = %g, want 20ns", done2)
	}
	// A transfer issued after the channel drains starts immediately.
	done3 := c.Transfer(100e-9, 160)
	if math.Abs(done3-110e-9) > 1e-15 {
		t.Fatalf("done3 = %g, want 110ns", done3)
	}
}

func TestChannelUtilization(t *testing.T) {
	c := NewChannel(Config{WidthBits: 16, FreqHz: 1e9})
	c.Transfer(0, 16000) // 1 µs of occupancy
	if u := c.Utilization(2e-6); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	c.ResetWindow()
	if u := c.Utilization(1e-6); u != 0 {
		t.Fatalf("utilization after reset = %v", u)
	}
	if u := c.Utilization(0); u != 0 {
		t.Fatal("zero elapsed must not divide by zero")
	}
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width 0")
		}
	}()
	New(Config{WidthBits: 0, FreqHz: 1})
}

func TestEffectiveRatioEmptyLink(t *testing.T) {
	l := New(DefaultConfig())
	if r := l.EffectiveRatio(0); r != 1 {
		t.Fatalf("empty link ratio = %v, want 1", r)
	}
}

// Regression: the packed transport's 6-bit length prefix can only
// represent 0–63 bytes, but a raw 64 B line plus header already
// exceeds that. The escape/continuation encoding (63 = "63 bytes plus
// next chunk") must kick in exactly at the 63-byte boundary; the
// pre-fix fixed-width prefix silently under-modeled large frames.
func TestPackedLengthEscapeBoundary(t *testing.T) {
	cases := []struct{ nbytes, prefix int }{
		{0, 6}, {1, 6}, {62, 6},
		{63, 12}, {64, 12}, {125, 12},
		{126, 18}, {127, 18},
	}
	for _, c := range cases {
		if got := packedPrefixBits(c.nbytes); got != c.prefix {
			t.Errorf("packedPrefixBits(%d) = %d, want %d", c.nbytes, got, c.prefix)
		}
	}

	// End-to-end through Send: the wire charge is payload + prefix.
	for _, c := range []struct{ nbytes, wire int }{
		{62, 62*8 + 6},
		{63, 63*8 + 12},
		{64, 64*8 + 12},
	} {
		l := New(Config{WidthBits: 16, FreqHz: 1, Packed: true})
		if got := l.Send(c.nbytes * 8); got != c.wire {
			t.Errorf("packed Send(%d bytes) charged %d wire bits, want %d", c.nbytes, got, c.wire)
		}
	}
}

// Regression: a payload whose final word drives only part of the bus
// must count transitions on the driven lanes only; undriven lanes keep
// their previous state. The pre-fix code compared right-aligned words
// against the full previous word, so undriven lanes toggled spuriously.
func TestToggleCountsPartialFinalWordMasked(t *testing.T) {
	l := New(Config{WidthBits: 16, FreqHz: 1})

	// All 16 lanes rise from idle zero.
	l.SendWire([]byte{0xFF, 0xFF}, 16)
	if l.Toggles != 16 {
		t.Fatalf("full word of ones: %d toggles, want 16", l.Toggles)
	}
	// An 8-bit payload drives lanes 15..8, which already carry ones:
	// no transitions anywhere.
	l.SendWire([]byte{0xFF}, 8)
	if l.Toggles != 16 {
		t.Fatalf("partial word repeating lane state: %d toggles, want 16", l.Toggles)
	}
	// Full word of ones again: the undriven lanes 7..0 kept their
	// ones, so still no transitions. The pre-fix code zeroed them into
	// the lane state and over-counted 8 here.
	l.SendWire([]byte{0xFF, 0xFF}, 16)
	if l.Toggles != 16 {
		t.Fatalf("undriven lanes lost state: %d toggles, want 16", l.Toggles)
	}
	// A non-byte-aligned 5-bit tail 0b10110 drives lanes 15..11 with
	// 1,0,1,1,0: exactly lanes 14 and 11 fall. 2 new toggles.
	l.SendWire([]byte{0xB0}, 5)
	if l.Toggles != 18 {
		t.Fatalf("5-bit tail: %d toggles, want 18", l.Toggles)
	}
	// A 24-bit payload of ones: word 1 re-raises lanes 14 and 11
	// (2 toggles); the 8-bit tail word repeats ones on 15..8 (0).
	l.SendWire([]byte{0xFF, 0xFF, 0xFF}, 24)
	if l.Toggles != 20 {
		t.Fatalf("multi-word with partial tail: %d toggles, want 20", l.Toggles)
	}
}
