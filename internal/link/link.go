// Package link models the narrow off-chip links CABLE compresses: flit
// quantization (which caps effective compression at width/8 per byte —
// 32× for the default 16-bit bus, §III-E), the packed transport of
// Fig 23, wire bit-toggle counting (§VI-D), and a busy-until channel for
// the timing simulator.
package link

import (
	"fmt"
	"math/bits"

	"cable/internal/obs"
)

// Config describes one physical link.
type Config struct {
	// WidthBits is the physical width; Table IV uses 16 bits.
	WidthBits int
	// FreqHz is the transfer rate; Table IV uses 9.6 GHz (19.2 GB/s
	// at 16 bits).
	FreqHz float64
	// Packed enables the Fig 23 "Packed" transport: transactions are
	// packed back-to-back with a 6-bit length prefix instead of being
	// padded to flit boundaries.
	Packed bool
}

// DefaultConfig is the paper's off-chip link (Table IV).
func DefaultConfig() Config {
	return Config{WidthBits: 16, FreqHz: 9.6e9}
}

// BytesPerSec is the raw link bandwidth.
func (c Config) BytesPerSec() float64 { return c.FreqHz * float64(c.WidthBits) / 8 }

// packedLenBits is the per-transaction length prefix of the packed
// transport (§VI-E: "a 6-bit value specifying the length in bytes").
const packedLenBits = 6

// packedLenEscape is the continuation marker of the length prefix: a
// 6-bit chunk can only represent 0–63 bytes, but a raw 64 B line plus
// header already exceeds that, so the value 63 means "63 bytes plus the
// next chunk" and chunks chain until a terminal value < 63 (the escape
// the original 6-bit field lacked — without it, large transactions were
// silently under-modeled on the wire).
const packedLenEscape = 1<<packedLenBits - 1

// packedPrefixBits returns the wire cost of the length prefix for a
// transaction of nbytes payload bytes under the escape/continuation
// encoding.
func packedPrefixBits(nbytes int) int {
	bits := packedLenBits
	for nbytes >= packedLenEscape {
		nbytes -= packedLenEscape
		bits += packedLenBits
	}
	return bits
}

// Link accumulates traffic statistics for one direction of a channel.
type Link struct {
	cfg Config

	// Payloads is the number of transactions sent.
	Payloads uint64
	// PayloadBits is the pre-quantization compressed size.
	PayloadBits uint64
	// WireBits is the post-quantization on-wire size (flits × width,
	// or exact bits + length prefixes when packed).
	WireBits uint64
	// Toggles counts wire bit transitions (§VI-D).
	Toggles uint64

	residualBits int    // unused bits in the current packed flit
	prevWord     uint64 // last transmitted width-wide word, for toggles

	mx    *linkCounters
	shard uint32
}

// New builds a link. Width must be in (0, 64] to fit toggle words.
func New(cfg Config) *Link { return NewIn(cfg, nil) }

// NewIn is New with an explicit metrics registry (nil means the
// process-default registry). Memoized experiment cells run their links
// against private registries.
func NewIn(cfg Config, reg *obs.Registry) *Link {
	if cfg.WidthBits <= 0 || cfg.WidthBits > 64 {
		panic(fmt.Sprintf("link: width %d out of range", cfg.WidthBits))
	}
	l := &Link{cfg: cfg}
	l.mx, l.shard = linkMetricsIn(reg)
	return l
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// Flits returns how many width-wide transfers a payload of n bits
// occupies on an unpacked link.
func (l *Link) Flits(nbits int) int {
	return (nbits + l.cfg.WidthBits - 1) / l.cfg.WidthBits
}

// Send accounts one payload of nbits and returns its on-wire size in
// bits after quantization/packing.
func (l *Link) Send(nbits int) int {
	l.Payloads++
	l.PayloadBits += uint64(nbits)
	var wire int
	if l.cfg.Packed {
		total := nbits + packedPrefixBits((nbits+7)/8)
		// Consume the residual of the current flit first.
		if l.residualBits >= total {
			l.residualBits -= total
			wire = total
		} else {
			rem := total - l.residualBits
			flits := (rem + l.cfg.WidthBits - 1) / l.cfg.WidthBits
			l.residualBits = flits*l.cfg.WidthBits - rem
			wire = total
		}
	} else {
		wire = l.Flits(nbits) * l.cfg.WidthBits
	}
	l.WireBits += uint64(wire)
	l.mx.payloads.Inc(l.shard)
	l.mx.payloadBits.Add(l.shard, uint64(nbits))
	l.mx.wireBits.Add(l.shard, uint64(wire))
	return wire
}

// SendWire accounts a payload with its wire image for toggle counting:
// the bit stream is split into width-wide words and transitions between
// consecutive words (including across payloads) are counted, modeling
// an unscrambled DDR-style bus. nbits sizes the transfer; if the image
// is shorter than nbits (small framing bits not materialized), toggles
// are counted over the available image only.
func (l *Link) SendWire(data []byte, nbits int) int {
	wire := l.Send(nbits)
	w := l.cfg.WidthBits
	toggleBits := nbits
	if m := len(data) * 8; m < toggleBits {
		toggleBits = m
	}
	before := l.Toggles
	for off := 0; off < toggleBits; off += w {
		n := w
		if off+n > toggleBits {
			n = toggleBits - off
		}
		var word uint64
		for b := 0; b < n; b++ {
			byteIdx := (off + b) / 8
			bit := (data[byteIdx] >> (7 - uint((off+b)%8))) & 1
			word = word<<1 | uint64(bit)
		}
		// Bit i of word (from the word's MSB at position w-1) is wire
		// lane i. A partial final word drives only the first n lanes:
		// left-align it and mask the comparison to the driven lanes, so
		// undriven wires contribute no toggles and keep their state.
		word <<= uint(w - n)
		mask := (^uint64(0) >> uint(64-n)) << uint(w-n)
		l.Toggles += uint64(bits.OnesCount64((word ^ l.prevWord) & mask))
		l.prevWord = l.prevWord&^mask | word
	}
	l.mx.toggles.Add(l.shard, l.Toggles-before)
	return wire
}

// EffectiveRatio is the paper's headline metric: source bytes over wire
// bits, i.e. how much raw bandwidth the link now appears to have.
func (l *Link) EffectiveRatio(sourceBytes uint64) float64 {
	if l.WireBits == 0 {
		return 1
	}
	return float64(sourceBytes*8) / float64(l.WireBits)
}

// Channel is the busy-until timing model for one link direction: FCFS
// occupancy, no preemption — exactly the first-order serialization
// bottleneck the throughput study measures.
type Channel struct {
	cfg       Config
	busyUntil float64 // seconds
	Busy      float64 // accumulated occupancy, for utilization metrics
}

// NewChannel builds a timing channel.
func NewChannel(cfg Config) *Channel { return &Channel{cfg: cfg} }

// Transfer schedules nbits at time now (seconds) and returns the
// completion time. Transfers serialize FCFS.
func (c *Channel) Transfer(now float64, nbits int) float64 {
	dur := float64(nbits) / (c.cfg.FreqHz * float64(c.cfg.WidthBits))
	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	c.busyUntil = start + dur
	c.Busy += dur
	return c.busyUntil
}

// Utilization returns the busy fraction over elapsed seconds.
func (c *Channel) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := c.Busy / elapsed
	if u > 1 {
		u = 1
	}
	return u
}

// ResetWindow clears the occupancy accumulator (used by the §VI-D
// on/off control scheme, which samples utilization every millisecond).
func (c *Channel) ResetWindow() { c.Busy = 0 }
