package link

import (
	"sync"

	"cable/internal/obs"
)

// linkCounters aggregates wire traffic across every Link in the
// process. Each Link draws its own shard at construction, so the
// per-payload accounting in Send/SendWire stays a handful of
// uncontended atomic adds.
type linkCounters struct {
	payloads    *obs.Counter
	payloadBits *obs.Counter
	wireBits    *obs.Counter
	toggles     *obs.Counter
}

var (
	linkCountersOnce   sync.Once
	sharedLinkCounters linkCounters
)

func linkMetrics() (*linkCounters, uint32) {
	linkCountersOnce.Do(func() {
		r := obs.Default()
		sharedLinkCounters = linkCounters{
			payloads:    r.Counter("link.payloads"),
			payloadBits: r.Counter("link.payload_bits"),
			wireBits:    r.Counter("link.wire_bits"),
			toggles:     r.Counter("link.toggles"),
		}
	})
	return &sharedLinkCounters, obs.NextShard()
}
