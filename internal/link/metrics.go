package link

import (
	"sync"

	"cable/internal/obs"
)

// linkCounters aggregates wire traffic across every Link in the
// process. Each Link draws its own shard at construction, so the
// per-payload accounting in Send/SendWire stays a handful of
// uncontended atomic adds.
type linkCounters struct {
	payloads    *obs.Counter
	payloadBits *obs.Counter
	wireBits    *obs.Counter
	toggles     *obs.Counter
}

func newLinkCounters(r *obs.Registry) linkCounters {
	return linkCounters{
		payloads:    r.Counter("link.payloads"),
		payloadBits: r.Counter("link.payload_bits"),
		wireBits:    r.Counter("link.wire_bits"),
		toggles:     r.Counter("link.toggles"),
	}
}

var (
	linkCountersOnce   sync.Once
	sharedLinkCounters linkCounters
)

// linkMetricsIn resolves the counter block against reg, or the shared
// process-default block when reg is nil, plus a fresh shard for the
// calling link.
func linkMetricsIn(reg *obs.Registry) (*linkCounters, uint32) {
	if reg == nil {
		linkCountersOnce.Do(func() {
			sharedLinkCounters = newLinkCounters(obs.Default())
		})
		return &sharedLinkCounters, obs.NextShard()
	}
	lc := newLinkCounters(reg)
	return &lc, obs.NextShard()
}

func linkMetrics() (*linkCounters, uint32) { return linkMetricsIn(nil) }
