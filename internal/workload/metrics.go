package workload

import (
	"sync"

	"cable/internal/obs"
)

// lineCounters aggregates line-content-cache traffic. Hit/miss/evict
// counts are a pure function of the access stream (direct-mapped cache,
// deterministic addresses), so they are registered non-volatile and
// survive byte-identical metric comparisons at any parallelism.
type lineCounters struct {
	hits      *obs.Counter
	misses    *obs.Counter // lines materialized
	evictions *obs.Counter // slot conflicts that displaced a line
}

var (
	lineCountersOnce   sync.Once
	sharedLineCounters lineCounters
)

func newLineCounters(r *obs.Registry) *lineCounters {
	return &lineCounters{
		hits:      r.Counter("workload.linecache_hits"),
		misses:    r.Counter("workload.linecache_misses"),
		evictions: r.Counter("workload.linecache_evictions"),
	}
}

// lineMetricsIn resolves the counter block for a generator: the shared
// default-registry block (fast path, resolved once), or a fresh block
// bound to an explicit registry (memoized cells run against private
// registries whose deltas are replayed into the default one).
func lineMetricsIn(r *obs.Registry) (*lineCounters, uint32) {
	if r == nil {
		lineCountersOnce.Do(func() {
			sharedLineCounters = *newLineCounters(obs.Default())
		})
		return &sharedLineCounters, obs.NextShard()
	}
	return newLineCounters(r), obs.NextShard()
}
