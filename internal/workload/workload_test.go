package workload

import (
	"bytes"
	"testing"

	"cable/internal/sig"
)

func TestSuiteComplete(t *testing.T) {
	if len(All()) != 29 {
		t.Fatalf("suite has %d benchmarks, want 29 (full SPEC CPU2006)", len(All()))
	}
	seen := map[string]bool{}
	ints, fps := 0, 0
	for _, s := range All() {
		if seen[s.Name] {
			t.Fatalf("duplicate benchmark %q", s.Name)
		}
		seen[s.Name] = true
		switch s.Class {
		case "int":
			ints++
		case "fp":
			fps++
		default:
			t.Fatalf("%s: bad class %q", s.Name, s.Class)
		}
	}
	if ints != 12 || fps != 17 {
		t.Fatalf("int/fp split = %d/%d, want 12/17", ints, fps)
	}
}

func TestNonTrivialExcludesZeroDominant(t *testing.T) {
	for _, s := range NonTrivial() {
		if s.ZeroDominant {
			t.Fatalf("%s is zero-dominant but in NonTrivial()", s.Name)
		}
	}
	if len(NonTrivial()) >= len(All()) {
		t.Fatal("zero-dominant group is empty")
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("mcf")
	if err != nil || s.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %+v, %v", s, err)
	}
	if !s.ZeroDominant {
		t.Fatal("mcf should be zero-dominant (Fig 12 right group)")
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestMixesUseKnownBenchmarks(t *testing.T) {
	for i, mix := range Mixes {
		for _, name := range mix {
			if _, err := ByName(name); err != nil {
				t.Fatalf("MIX%d references %q: %v", i, name, err)
			}
		}
	}
}

func TestSpecSanity(t *testing.T) {
	for _, s := range All() {
		if s.ZeroFrac+s.ProtoFrac > 1 {
			t.Errorf("%s: ZeroFrac+ProtoFrac = %v > 1", s.Name, s.ZeroFrac+s.ProtoFrac)
		}
		if s.HotFrac+s.StreamFrac > 1 {
			t.Errorf("%s: HotFrac+StreamFrac = %v > 1", s.Name, s.HotFrac+s.StreamFrac)
		}
		if s.WorkingSetLines <= 0 || s.HotLines <= 0 || s.ProtoCount <= 0 ||
			s.ObjLines <= 0 || s.PhaseLen <= 0 || s.GapInstrs <= 0 {
			t.Errorf("%s: non-positive parameter in %+v", s.Name, s)
		}
		if s.HotLines > s.WorkingSetLines {
			t.Errorf("%s: hot set larger than working set", s.Name)
		}
	}
}

func TestLineDataDeterministic(t *testing.T) {
	a, _ := New("gcc", 0, 0)
	b, _ := New("gcc", 0, 0)
	for addr := uint64(0); addr < 200; addr++ {
		if !bytes.Equal(a.LineData(addr), b.LineData(addr)) {
			t.Fatalf("addr %d: LineData not deterministic", addr)
		}
	}
}

func TestLineDataRespectsAddrBase(t *testing.T) {
	a, _ := New("gcc", 0, 0)
	b, _ := New("gcc", 0, 1<<30)
	for addr := uint64(0); addr < 100; addr++ {
		if !bytes.Equal(a.LineData(addr), b.LineData(addr+1<<30)) {
			t.Fatalf("addr %d: content should be relative to addrBase", addr)
		}
	}
}

func TestCopiesSimilarNotIdentical(t *testing.T) {
	// Cooperative multiprogram premise (§VI-C): co-run copies share
	// object layouts (same prototypes) but differ in details.
	a, _ := New("dealII", 0, 0)
	b, _ := New("dealII", 1, 1<<30)
	identical, similar := 0, 0
	ex := sig.NewExtractor(LineSize, 1)
	for addr := uint64(0); addr < 500; addr++ {
		la := a.LineData(addr)
		lb := b.LineData(addr + 1<<30)
		if bytes.Equal(la, lb) {
			identical++
			continue
		}
		sa := ex.SearchSignatures(la, 16)
		set := map[sig.Signature]bool{}
		for _, s := range sa {
			set[s] = true
		}
		shared := 0
		for _, s := range ex.SearchSignatures(lb, 16) {
			if set[s] {
				shared++
			}
		}
		if shared >= 4 {
			similar++
		}
	}
	// Cross-copy sharing: input-determined lines are identical (the
	// §VI-C cooperative-sharing source), execution-dependent ones are
	// similar-but-distinct; together they must dominate.
	if identical+similar < 250 {
		t.Fatalf("copies share content on only %d+%d of 500 lines", identical, similar)
	}
	if similar < 50 {
		t.Fatalf("only %d/500 lines are similar-but-distinct", similar)
	}
	if identical > 450 {
		t.Fatalf("%d/500 lines identical across copies — too much", identical)
	}
}

func TestZeroDominantContent(t *testing.T) {
	g, _ := New("mcf", 0, 0)
	zeroish := 0
	for addr := uint64(0); addr < 1000; addr++ {
		if sig.NonTrivialWords(g.LineData(addr)) <= 2 {
			zeroish++
		}
	}
	if zeroish < 600 {
		t.Fatalf("mcf: only %d/1000 lines are zero-dominated", zeroish)
	}
}

func TestPrototypeSimilarityAcrossAddresses(t *testing.T) {
	// CABLE's premise: similar lines at unrelated addresses. dealII
	// has ProtoFrac 0.6; distinct far-apart addresses must frequently
	// share signatures.
	g, _ := New("dealII", 0, 0)
	ex := sig.NewExtractor(LineSize, 1)
	sigOwners := map[sig.Signature]int{}
	for addr := uint64(0); addr < 2000; addr++ {
		for _, s := range ex.InsertSignatures(g.LineData(addr * 37)) {
			sigOwners[s]++
		}
	}
	sharedSigs := 0
	for _, n := range sigOwners {
		if n >= 2 {
			sharedSigs++
		}
	}
	if sharedSigs < 50 {
		t.Fatalf("only %d signatures shared across addresses", sharedSigs)
	}
}

func TestAccessStreamShape(t *testing.T) {
	g, _ := New("omnetpp", 0, 0)
	writes, total := 0, 20000
	seen := map[uint64]int{}
	var gaps int64
	for i := 0; i < total; i++ {
		a := g.Next()
		if a.Write {
			writes++
		}
		if a.LineAddr < g.AddrBase() || a.LineAddr >= g.AddrBase()+uint64(g.Spec().WorkingSetLines) {
			t.Fatalf("access %#x outside working set", a.LineAddr)
		}
		if a.Gap < 1 {
			t.Fatalf("gap %d < 1", a.Gap)
		}
		gaps += int64(a.Gap)
		seen[a.LineAddr]++
	}
	wf := float64(writes) / float64(total)
	if wf < g.Spec().WriteFrac-0.05 || wf > g.Spec().WriteFrac+0.05 {
		t.Fatalf("write fraction %.3f, spec %v", wf, g.Spec().WriteFrac)
	}
	meanGap := float64(gaps) / float64(total)
	want := float64(g.Spec().GapInstrs)
	if meanGap < want*0.8 || meanGap > want*1.2 {
		t.Fatalf("mean gap %.1f, want ≈%v", meanGap, want)
	}
	// Locality: some lines must be touched many times (hot set).
	max := 0
	for _, n := range seen {
		if n > max {
			max = n
		}
	}
	if max < 3 {
		t.Fatal("no reuse in access stream")
	}
}

func TestPhasesShiftRegions(t *testing.T) {
	g, _ := New("gcc", 0, 0)
	firstPhase := map[uint64]bool{}
	for i := 0; i < g.Spec().PhaseLen/2; i++ {
		firstPhase[g.Next().LineAddr] = true
	}
	// Jump several phases ahead.
	for i := 0; i < 4*g.Spec().PhaseLen; i++ {
		g.Next()
	}
	overlap, count := 0, 0
	for i := 0; i < g.Spec().PhaseLen/2; i++ {
		if firstPhase[g.Next().LineAddr] {
			overlap++
		}
		count++
	}
	if overlap > count*3/4 {
		t.Fatalf("phases fully overlap (%d/%d) — no phase behavior", overlap, count)
	}
}

func TestInstancesDesynchronize(t *testing.T) {
	a, _ := New("gcc", 0, 0)
	b, _ := New("gcc", 1, 0)
	// After ¾ of a phase, instance 1 (offset by half a phase) has
	// crossed into the next phase while instance 0 has not.
	for i := 0; i < a.Spec().PhaseLen*3/4; i++ {
		a.Next()
		b.Next()
	}
	if a.phase() == b.phase() {
		t.Fatalf("instances synchronized: both in phase %d", a.phase())
	}
}

func BenchmarkLineData(b *testing.B) {
	g, _ := New("dealII", 0, 0)
	for i := 0; i < b.N; i++ {
		g.LineData(uint64(i % 100000))
	}
}

func BenchmarkNext(b *testing.B) {
	g, _ := New("mcf", 0, 0)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func TestValueModelFamilies(t *testing.T) {
	// Each content family must have its distinguishing statistical
	// signature; this is what the per-benchmark calibration rests on.
	byModel := map[ValueModel]string{
		ValuePointer: "mcf", ValueInt: "gobmk", ValueFP: "lbm",
		ValueText: "bzip2", ValueRandom: "namd",
	}
	for model, bench := range byModel {
		s, err := ByName(bench)
		if err != nil || s.Model != model {
			t.Fatalf("%s should be model %v", bench, model)
		}
	}
}

func TestTextLinesAreASCII(t *testing.T) {
	g := NewFromSpec(Spec{
		Name: "texty", Class: "int", Model: ValueText,
		ProtoCount: 4, ObjLines: 1, MutateWords: 0,
		WorkingSetLines: 1024, HotLines: 16, PhaseLen: 100, GapInstrs: 1,
	}, 0, 0)
	line := g.LineData(500) // beyond Zero/Proto fractions (both 0) → fresh
	for i, b := range line {
		if b >= 0x80 {
			t.Fatalf("byte %d = %#x not ASCII in text model", i, b)
		}
	}
}

func TestFPLinesShareExponents(t *testing.T) {
	g := NewFromSpec(Spec{
		Name: "fpy", Class: "fp", Model: ValueFP,
		ProtoCount: 4, ObjLines: 1, MutateWords: 0,
		WorkingSetLines: 1024, HotLines: 16, PhaseLen: 100, GapInstrs: 1,
	}, 0, 0)
	line := g.LineData(321)
	// All eight doubles come from base + i·delta: top bytes repeat.
	top := line[7]
	same := 0
	for i := 7; i < 64; i += 8 {
		if line[i] == top {
			same++
		}
	}
	if same < 6 {
		t.Fatalf("only %d/8 doubles share the exponent byte", same)
	}
}

func TestPointerLinesShareBase(t *testing.T) {
	g := NewFromSpec(Spec{
		Name: "ptr", Class: "int", Model: ValuePointer,
		ProtoCount: 4, ObjLines: 1, MutateWords: 0,
		WorkingSetLines: 1024, HotLines: 16, PhaseLen: 100, GapInstrs: 1,
	}, 0, 0)
	line := g.LineData(99)
	nonNull := 0
	for i := 0; i < 64; i += 8 {
		hi := uint32(line[i+4]) | uint32(line[i+5])<<8 | uint32(line[i+6])<<16 | uint32(line[i+7])<<24
		if hi != 0 {
			nonNull++
			if line[i+5] != 0x7F {
				t.Fatalf("pointer %d lacks the shared heap base: %x", i/8, line[i:i+8])
			}
		}
	}
	if nonNull < 4 {
		t.Fatalf("only %d non-null pointers", nonNull)
	}
}

func TestByteShiftedCopies(t *testing.T) {
	// bzip2 has ByteShiftFrac 0.5: a good fraction of proto copies
	// must be byte-shifted (defeating word-aligned matching).
	g, _ := New("bzip2", 0, 0)
	ex := 0
	for addr := uint64(0); addr < 4000; addr++ {
		line := g.LineData(addr)
		_ = line
		ex++
	}
	if ex == 0 {
		t.Fatal("unreachable")
	}
}
