package workload

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"

	"cable/internal/obs"
)

// LineSize is the cache-line granularity of generated content.
const LineSize = 64

// Access is one LLC-level memory reference.
type Access struct {
	// LineAddr is the line address (byte address / 64).
	LineAddr uint64
	// Write marks stores.
	Write bool
	// Gap is the number of non-memory instructions preceding this
	// access (1 CPI each on the Table IV in-order core).
	Gap int
}

// Generator produces the access stream and memory contents of one
// benchmark instance. Instances of the same benchmark share prototype
// pools (object layouts are a property of the program, not the copy),
// so SPECrate-style co-runs exhibit the cross-program similarity the
// cooperative study measures — while per-copy mutations keep contents
// similar rather than identical.
type Generator struct {
	spec     Spec
	instance int
	addrBase uint64
	seed     uint64 // nameSeed(spec.Name), cached off the hot path

	rng       *rand.Rand
	protos    [][]byte
	accesses  uint64
	streamPos uint64

	// Line-content cache: a direct-mapped cache of materialized lines,
	// sized to the spec's working set (bounded). Content is a pure
	// function of the address, so a tag match can return the slot
	// without re-derivation; repeat accesses — the overwhelming
	// majority — become a copy-free lookup. Slots are allocated lazily
	// so access-stream-only generators pay nothing.
	tags  []uint64 // lineAddr+1 per slot; 0 marks an empty slot
	lines []byte   // contiguous slot storage, slots × LineSize
	mask  uint64

	// mutRng/editRng are the reusable scratch rngs of materializeInto,
	// reseeded in place per line instead of allocating ~5 KB of rng
	// state per call.
	mutRng  *rand.Rand
	editRng *rand.Rand

	mx    *lineCounters
	shard uint32
}

// splitmix64 is a fast deterministic scrambler for per-address seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func nameSeed(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// New builds a generator for a named benchmark. instance distinguishes
// co-running copies; addrBase places its address space.
func New(name string, instance int, addrBase uint64) (*Generator, error) {
	return NewIn(name, instance, addrBase, nil)
}

// NewIn is New with an explicit metrics registry (nil means the
// process-default registry).
func NewIn(name string, instance int, addrBase uint64, reg *obs.Registry) (*Generator, error) {
	spec, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return NewFromSpecIn(spec, instance, addrBase, reg), nil
}

// NewFromSpec builds a generator from an explicit spec, reporting into
// the process-default metrics registry.
func NewFromSpec(spec Spec, instance int, addrBase uint64) *Generator {
	return NewFromSpecIn(spec, instance, addrBase, nil)
}

// NewFromSpecIn builds a generator whose line-cache counters report
// into reg (nil means the process-default registry). Memoized
// experiment cells run against private registries so their metric
// deltas can be replayed deterministically.
func NewFromSpecIn(spec Spec, instance int, addrBase uint64, reg *obs.Registry) *Generator {
	g := &Generator{
		spec:     spec,
		instance: instance,
		addrBase: addrBase,
		seed:     nameSeed(spec.Name),
		rng:      rand.New(rand.NewSource(int64(nameSeed(spec.Name)) + int64(instance)*7919)),
		mutRng:   rand.New(rand.NewSource(0)),
		editRng:  rand.New(rand.NewSource(0)),
	}
	g.mx, g.shard = lineMetricsIn(reg)
	// Prototypes depend only on the benchmark: every copy lays out
	// the same object types.
	protoRng := rand.New(rand.NewSource(int64(nameSeed(spec.Name)) ^ 0x70726f746f))
	g.protos = make([][]byte, spec.ProtoCount)
	for i := range g.protos {
		g.protos[i] = freshLine(spec.Model, protoRng)
	}
	return g
}

// Spec returns the benchmark parameters.
func (g *Generator) Spec() Spec { return g.spec }

// AddrBase returns the base line address of this instance's space.
func (g *Generator) AddrBase() uint64 { return g.addrBase }

// Instance returns the co-run copy index this generator was built with.
func (g *Generator) Instance() int { return g.instance }

// freshLine generates a unique line in the given content family.
func freshLine(m ValueModel, rng *rand.Rand) []byte {
	line := make([]byte, LineSize)
	freshLineInto(line, m, rng)
	return line
}

// freshLineInto derives a fresh line into line, which may hold stale
// slot contents and is zeroed first (the value models assume a zeroed
// canvas, e.g. null-pointer gaps).
func freshLineInto(line []byte, m ValueModel, rng *rand.Rand) {
	for i := range line {
		line[i] = 0
	}
	switch m {
	case ValuePointer:
		base := uint64(0x00007F00<<32) | uint64(rng.Intn(1<<20))<<12
		for i := 0; i < LineSize; i += 8 {
			if rng.Intn(5) == 0 {
				continue // null pointer
			}
			binary.LittleEndian.PutUint64(line[i:], base|uint64(rng.Intn(1<<16))<<3)
		}
	case ValueInt:
		for i := 0; i < LineSize; i += 4 {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4, 5, 6: // small counter values
				binary.LittleEndian.PutUint32(line[i:], uint32(rng.Intn(256)))
			case 7, 8: // medium values
				binary.LittleEndian.PutUint32(line[i:], uint32(rng.Intn(1<<20)))
			default: // flags / sentinels
				binary.LittleEndian.PutUint32(line[i:], rng.Uint32())
			}
		}
	case ValueFP:
		base := (1 + rng.Float64()) * math.Pow(10, float64(rng.Intn(6)))
		delta := base / 256
		for i := 0; i < LineSize; i += 8 {
			v := base + float64(i/8)*delta + rng.Float64()*delta/16
			binary.LittleEndian.PutUint64(line[i:], math.Float64bits(v))
		}
	case ValueText:
		syllables := []string{"th", "er", "on", "an", "re", "he", "in", "ed", "nd", "ha"}
		pos := 0
		for pos < LineSize {
			s := syllables[rng.Intn(len(syllables))]
			if rng.Intn(4) == 0 {
				s = " "
			}
			for i := 0; i < len(s) && pos < LineSize; i++ {
				line[pos] = s[i]
				pos++
			}
		}
	case ValueRandom:
		rng.Read(line)
	}
}

// zeroLineInto derives a zero-dominated line into line, which every
// scheme compresses well (the Fig 12 right group's traffic): usually
// all zero, sometimes with one or two small values.
func zeroLineInto(line []byte, rng *rand.Rand) {
	for i := range line {
		line[i] = 0
	}
	if rng.Intn(4) > 0 {
		return
	}
	for k := 1 + rng.Intn(2); k > 0; k-- {
		off := rng.Intn(LineSize/4) * 4
		binary.LittleEndian.PutUint32(line[off:], uint32(rng.Intn(1<<10)))
	}
}

// lineCacheMaxSlots bounds the direct-mapped line cache at 2 MB of
// slot storage per generator (the largest specs have 1<<20-line
// working sets; caching their full set would cost 64 MB each).
const lineCacheMaxSlots = 1 << 15

// lineCacheSlots sizes the cache to the working set: the next power of
// two ≥ workingSetLines, clamped to [64, lineCacheMaxSlots]. Slots are
// indexed by relative address, so a working set that fits maps without
// conflict misses.
func lineCacheSlots(workingSetLines int) int {
	n := 64
	for n < workingSetLines && n < lineCacheMaxSlots {
		n <<= 1
	}
	return n
}

func (g *Generator) ensureLineCache() {
	if g.tags != nil {
		return
	}
	n := lineCacheSlots(g.spec.WorkingSetLines)
	g.tags = make([]uint64, n)
	g.lines = make([]byte, n*LineSize)
	g.mask = uint64(n - 1)
}

// LineData materializes the memory contents of lineAddr. Content is a
// pure function of (benchmark, relative address, instance), so backing
// stores can fill lazily and co-run copies agree on structure.
//
// The returned slice aliases the generator's line cache: it is
// read-only and valid until a conflicting LineData call reuses the
// slot. Callers that retain line contents (backing stores, caches)
// must copy; the simulators all do.
func (g *Generator) LineData(lineAddr uint64) []byte {
	g.ensureLineCache()
	slot := (lineAddr - g.addrBase) & g.mask
	buf := g.lines[slot*LineSize : slot*LineSize+LineSize : slot*LineSize+LineSize]
	tag := lineAddr + 1
	if g.tags[slot] == tag {
		g.mx.hits.Inc(g.shard)
		return buf
	}
	g.mx.misses.Inc(g.shard)
	if g.tags[slot] != 0 {
		g.mx.evictions.Inc(g.shard)
	}
	g.materializeInto(buf, lineAddr)
	g.tags[slot] = tag
	return buf
}

// materializeInto is the pure derivation behind LineData: it derives
// the contents of lineAddr into dst (LineSize bytes, stale contents
// allowed — every path fully overwrites). It is bit-identical to the
// historical allocate-per-call path by construction: reseeding the
// scratch rngs via (*rand.Rand).Seed runs the same generator seeding
// as rand.New(rand.NewSource(seed)) and also resets Read state.
func (g *Generator) materializeInto(dst []byte, lineAddr uint64) {
	rel := lineAddr - g.addrBase
	h := splitmix64(g.seed ^ rel)
	u := unit(h)
	mutRng := g.mutRng
	mutRng.Seed(int64(splitmix64(h ^ uint64(g.instance)*0x9E37)))
	switch {
	case u < g.spec.ZeroFrac:
		zeroLineInto(dst, mutRng)
	case u < g.spec.ZeroFrac+g.spec.ProtoFrac:
		objID := rel / uint64(g.spec.ObjLines)
		oh := splitmix64(g.seed ^ objID ^ 0x6F626A)
		proto := g.protos[oh%uint64(len(g.protos))]
		copy(dst, proto)
		// Copies carry 0..MutateWords edits: many object copies are
		// byte-identical to their prototype in most fields. A majority
		// of lines are input-determined (identical across SPECrate
		// copies at the same relative address — the cross-program
		// sharing the cooperative study measures, §VI-C); the rest are
		// execution-dependent and differ per instance.
		editRng := mutRng
		if unit(splitmix64(h^0xC0DE)) < 0.6 {
			editRng = g.editRng
			editRng.Seed(int64(splitmix64(h ^ 0x1D3)))
		}
		for k := editRng.Intn(g.spec.MutateWords + 1); k > 0; k-- {
			off := editRng.Intn(LineSize/4) * 4
			binary.LittleEndian.PutUint32(dst[off:], editRng.Uint32())
		}
		if unit(splitmix64(oh^0x73686966)) < g.spec.ByteShiftFrac {
			shift := 1 + int(oh%3)
			var tmp [LineSize]byte
			copy(tmp[shift:], dst)
			copy(tmp[:shift], dst[LineSize-shift:])
			copy(dst, tmp[:])
		}
	default:
		freshLineInto(dst, g.spec.Model, mutRng)
		if g.spec.ZeroDominant {
			sparsify(dst, mutRng)
		}
	}
}

// sparsify zeroes most of a line: the non-zero traffic of the
// zero-dominant group is sparse structures (e.g. mcf's arc nodes), so
// even its "fresh" lines compress well everywhere (Fig 12 right group).
func sparsify(line []byte, rng *rand.Rand) {
	for off := 0; off < LineSize; off += 4 {
		if rng.Intn(4) != 0 {
			for b := 0; b < 4; b++ {
				line[off+b] = 0
			}
		}
	}
}

// streamRegionLines is the span one phase streams over.
func (g *Generator) streamRegionLines() uint64 {
	r := uint64(g.spec.WorkingSetLines / 8)
	if r == 0 {
		r = 1
	}
	return r
}

// phase returns the current program phase; co-run instances are offset
// by half a phase so copies desynchronize, as real SPECrate runs do
// (§VI-C: "threads can desynchronize and execute dissimilar phases").
func (g *Generator) phase() uint64 {
	return (g.accesses + uint64(g.instance)*uint64(g.spec.PhaseLen)/2) / uint64(g.spec.PhaseLen)
}

// Next produces the next LLC-level access.
func (g *Generator) Next() Access {
	g.accesses++
	ws := uint64(g.spec.WorkingSetLines)
	phase := g.phase()
	var rel uint64
	u := g.rng.Float64()
	switch {
	case u < g.spec.StreamFrac:
		region := g.streamRegionLines()
		base := (phase * region) % ws
		rel = (base + g.streamPos%region) % ws
		g.streamPos++
	case u < g.spec.StreamFrac+g.spec.HotFrac:
		// The hot set is persistent (program globals and top-level
		// structures live at fixed addresses across phases); this is
		// also where co-run copies overlap (§VI-C).
		rel = uint64(g.rng.Intn(g.spec.HotLines))
	default:
		rel = uint64(g.rng.Intn(g.spec.WorkingSetLines))
	}
	gap := 1
	if g.spec.GapInstrs > 0 {
		gap = 1 + g.rng.Intn(2*g.spec.GapInstrs)
	}
	return Access{
		LineAddr: g.addrBase + rel,
		Write:    g.rng.Float64() < g.spec.WriteFrac,
		Gap:      gap,
	}
}

// Accesses returns how many accesses have been generated.
func (g *Generator) Accesses() uint64 { return g.accesses }
