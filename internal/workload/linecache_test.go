package workload

import (
	"bytes"
	"testing"

	"cable/internal/obs"
)

// TestLineCacheBitIdentical is the Level-1 cache contract: LineData
// through the direct-mapped line cache returns bytes identical to the
// pure derivation, for every benchmark spec, across instances, under a
// pattern that exercises hits, misses, conflict evictions and refills.
func TestLineCacheBitIdentical(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, instance := range []int{0, 3} {
				addrBase := uint64(instance) * (1 << 32)
				cached := NewFromSpec(spec, instance, addrBase)
				// ref shares nothing with cached; materializeInto
				// reseeds its scratch rngs per call, so it is the
				// uncached derivation.
				ref := NewFromSpec(spec, instance, addrBase)
				refBuf := make([]byte, LineSize)

				slots := uint64(lineCacheSlots(spec.WorkingSetLines))
				rels := []uint64{
					0, 1, 7, // cold misses
					0, 1, // hits
					slots,        // conflicts with rel 0: eviction
					0,            // refill after eviction
					slots + 1, 1, // evict and refill slot 1
					2 * slots, 0, // second-generation conflict on slot 0
					uint64(spec.WorkingSetLines - 1),
				}
				for i, rel := range rels {
					addr := addrBase + rel
					got := cached.LineData(addr)
					if len(got) != LineSize {
						t.Fatalf("LineData(%#x) len = %d", addr, len(got))
					}
					// Dirty the reference buffer first: materializeInto
					// must fully overwrite stale contents.
					for j := range refBuf {
						refBuf[j] = 0xA5
					}
					ref.materializeInto(refBuf, addr)
					if !bytes.Equal(got, refBuf) {
						t.Fatalf("step %d: cached LineData(%#x) differs from pure derivation\n got %x\nwant %x",
							i, addr, got, refBuf)
					}
				}
			}
		})
	}
}

// TestLineCacheCounters pins the cache's observable behavior on a
// private registry: the access pattern above has a known hit/miss/
// eviction decomposition.
func TestLineCacheCounters(t *testing.T) {
	spec, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	g := NewFromSpecIn(spec, 0, 0, reg)
	slots := uint64(lineCacheSlots(spec.WorkingSetLines))

	// miss, hit, miss(conflict evict), miss(refill evict), hit
	for _, rel := range []uint64{0, 0, slots, 0, 0} {
		g.LineData(rel)
	}
	snap := reg.Snapshot(false)
	if got := snap.Counters["workload.linecache_hits"]; got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if got := snap.Counters["workload.linecache_misses"]; got != 3 {
		t.Errorf("misses = %d, want 3", got)
	}
	if got := snap.Counters["workload.linecache_evictions"]; got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
}
