package workload

// Source is the access-stream + content abstraction the simulators
// consume: live generators, recorded-trace replays, and declarative
// workload mixes all satisfy it. Next returns an error only for
// bounded sources (a replay running past its capture); live generators
// are endless.
type Source interface {
	Next() (Access, error)
	LineData(lineAddr uint64) []byte
}

// generatorSource adapts a live Generator to the Source interface.
type generatorSource struct{ g *Generator }

func (s generatorSource) Next() (Access, error)       { return s.g.Next(), nil }
func (s generatorSource) LineData(addr uint64) []byte { return s.g.LineData(addr) }

// AsSource adapts a live generator to the Source interface.
func AsSource(g *Generator) Source { return generatorSource{g} }
