package spec

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"testing"

	"cable/internal/obs"
	"cable/internal/trace"
)

// exampleJSON is a compact two-client mix used across the tests:
// poisson + bursty gamma arrivals and one phase change, mirroring the
// committed examples/workloads/bursty-mix.json.
const exampleJSON = `{
  "version": 1,
  "name": "test-mix",
  "seed": 7,
  "mean_gap": 50,
  "clients": [
    {"id": "a", "rate_fraction": 0.7, "arrival": {"process": "poisson"},
     "content": {"base": "gcc"},
     "phases": [{"at": 0.5, "content": {"base": "omnetpp", "working_set_lines": 4096, "hot_lines": 512}}]},
    {"id": "b", "rate_fraction": 0.3, "arrival": {"process": "gamma", "cv": 3},
     "content": {"base": "mcf", "stream_frac": 0.5}}
  ]
}`

func mustParse(t *testing.T, src string) *Workload {
	t.Helper()
	w, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestParseExample(t *testing.T) {
	w := mustParse(t, exampleJSON)
	if got := w.ClientIDs(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("client ids = %v", got)
	}
	r := w.Rates()
	if math.Abs(r[0]-0.7) > 1e-12 || math.Abs(r[1]-0.3) > 1e-12 {
		t.Fatalf("rates = %v", r)
	}
	if w.PhaseCount(0) != 2 || w.PhaseCount(1) != 1 {
		t.Fatalf("phase counts = %d, %d", w.PhaseCount(0), w.PhaseCount(1))
	}
	if s := w.Resolved(0, 1); s.Name != "omnetpp" || s.WorkingSetLines != 4096 {
		t.Fatalf("resolved phase 1 = %+v", s)
	}
	if s := w.Resolved(1, 0); s.StreamFrac != 0.5 || s.Name != "mcf" {
		t.Fatalf("override not applied: %+v", s)
	}
}

func TestCommittedExampleParses(t *testing.T) {
	w, err := Load("../../../examples/workloads/bursty-mix.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Clients) < 2 || w.PhaseCount(0) < 2 {
		t.Fatalf("committed example lost its shape: %+v", w.ClientIDs())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad version":       `{"version": 2, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc"}}]}`,
		"no name":           `{"version": 1, "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc"}}]}`,
		"no clients":        `{"version": 1, "name": "x", "clients": []}`,
		"unknown field":     `{"version": 1, "name": "x", "unknown": true, "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc"}}]}`,
		"unknown axis":      `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc", "zerofrac": 0.5}}]}`,
		"dup id":            `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc"}}, {"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc"}}]}`,
		"no process":        `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {}, "content": {"base": "gcc"}}]}`,
		"bad process":       `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "pareto"}, "content": {"base": "gcc"}}]}`,
		"gamma no cv":       `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "gamma"}, "content": {"base": "gcc"}}]}`,
		"weibull bad shape": `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "weibull", "shape": -1}, "content": {"base": "gcc"}}]}`,
		"no base":           `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {}}]}`,
		"bad base":          `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "nope"}}]}`,
		"bad model":         `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc", "model": "quantum"}}]}`,
		"frac over 1":       `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc", "zero_frac": 1.5}}]}`,
		"frac sum over 1":   `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc", "zero_frac": 0.7, "proto_frac": 0.7}}]}`,
		"hot > ws":          `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc", "working_set_lines": 64, "hot_lines": 128}}]}`,
		"ws too big":        `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc", "working_set_lines": 33554432}}]}`,
		"phase at 0":        `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc"}, "phases": [{"at": 0}]}]}`,
		"phase at 1":        `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc"}, "phases": [{"at": 1}]}]}`,
		"phase order":       `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc"}, "phases": [{"at": 0.6}, {"at": 0.4}]}]}`,
		"negative rate":     `{"version": 1, "name": "x", "clients": [{"id": "a", "rate_fraction": -1, "arrival": {"process": "poisson"}, "content": {"base": "gcc"}}]}`,
		"partial rates":     `{"version": 1, "name": "x", "clients": [{"id": "a", "rate_fraction": 0.5, "arrival": {"process": "poisson"}, "content": {"base": "gcc"}}, {"id": "b", "arrival": {"process": "poisson"}, "content": {"base": "gcc"}}]}`,
		"trailing data":     `{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "poisson"}, "content": {"base": "gcc"}}]} {"more": 1}`,
		"not json":          `version: 1`,
	}
	for name, src := range cases {
		if _, err := Parse([]byte(src)); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: want ErrInvalid, got %v", name, err)
		}
	}
}

// TestSamplerStats sanity-checks each process: deterministic given a
// seed, gaps >= 1, and an empirical mean near the configured one.
func TestSamplerStats(t *testing.T) {
	for _, a := range []Arrival{
		{Process: "poisson"},
		{Process: "gamma", CV: 3},
		{Process: "gamma", CV: 0.5},
		{Process: "weibull", Shape: 0.7},
		{Process: "fixed"},
	} {
		const mean = 200.0
		const n = 200000
		s1 := newSampler(a, mean, 99)
		s2 := newSampler(a, mean, 99)
		var sum float64
		for i := 0; i < n; i++ {
			g1, g2 := s1.next(), s2.next()
			if g1 != g2 {
				t.Fatalf("%s: draw %d diverged: %d != %d", a.Process, i, g1, g2)
			}
			if g1 < 1 {
				t.Fatalf("%s: gap %d < 1", a.Process, g1)
			}
			sum += float64(g1)
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("%s: empirical mean %.1f, want ~%.1f", a.Process, got, mean)
		}
	}
}

func runMix(t *testing.T, w *Workload, o MixOptions, n int) []Emission {
	t.Helper()
	m, err := NewMix(w, o)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Emission, n)
	for i := range out {
		e, err := m.Next()
		if err != nil {
			t.Fatalf("emission %d: %v", i, err)
		}
		out[i] = e
	}
	return out
}

func TestMixDeterministicAndOrdered(t *testing.T) {
	w := mustParse(t, exampleJSON)
	const n = 20000
	o := MixOptions{Budget: n, Registry: obs.NewRegistry()}
	e1 := runMix(t, w, o, n)
	o.Registry = obs.NewRegistry()
	e2 := runMix(t, w, o, n)
	counts := make(map[int]int)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("emission %d diverged: %+v != %+v", i, e1[i], e2[i])
		}
		if i > 0 && e1[i].At < e1[i-1].At {
			t.Fatalf("emission %d: time went backwards (%d < %d)", i, e1[i].At, e1[i-1].At)
		}
		counts[e1[i].Client]++
		base := ClientBase(e1[i].Client)
		if e1[i].Access.LineAddr < base || e1[i].Access.LineAddr >= base+1<<ClientShift {
			t.Fatalf("emission %d: address %#x outside client %d space",
				i, e1[i].Access.LineAddr, e1[i].Client)
		}
	}
	// Rate fractions steer the split (0.7/0.3 within a loose band).
	fracA := float64(counts[0]) / n
	if fracA < 0.6 || fracA > 0.8 {
		t.Fatalf("client a emitted %.2f of traffic, want ~0.7", fracA)
	}
}

// TestMixPhaseChange proves the phase machinery moves the working set:
// client a's early accesses stay in its phase-0 subrange and its late
// accesses migrate to the phase-1 subrange.
func TestMixPhaseChange(t *testing.T) {
	w := mustParse(t, exampleJSON)
	const n = 20000
	es := runMix(t, w, MixOptions{Budget: n, Registry: obs.NewRegistry()}, n)
	var early, lateP1 int
	var aSeen int
	for _, e := range es {
		if e.Client != 0 {
			continue
		}
		aSeen++
		inP1 := e.Access.LineAddr >= PhaseBase(0, 1)
		if aSeen < 1000 {
			if inP1 {
				t.Fatalf("access %d of client a already in phase 1 (%#x)", aSeen, e.Access.LineAddr)
			}
			early++
		} else if inP1 {
			lateP1++
		}
	}
	if lateP1 == 0 {
		t.Fatal("client a never reached its phase-1 subrange")
	}
}

// TestMixVariants: different variants draw different address streams
// (decorrelated chips) but share the content function.
func TestMixVariants(t *testing.T) {
	w := mustParse(t, exampleJSON)
	const n = 2000
	e0 := runMix(t, w, MixOptions{Budget: n, Registry: obs.NewRegistry()}, n)
	e1 := runMix(t, w, MixOptions{Budget: n, Variant: 1, Registry: obs.NewRegistry()}, n)
	same := 0
	for i := range e0 {
		if e0[i].Access.LineAddr == e1[i].Access.LineAddr {
			same++
		}
	}
	if same == n {
		t.Fatal("variant 1 drew the identical address stream")
	}
	t0, _ := NewContentTable(w, obs.NewRegistry())
	t1, _ := NewContentTable(w, obs.NewRegistry())
	for i := 0; i < 200; i++ {
		addr := e0[i].Access.LineAddr
		if !bytes.Equal(t0.LineData(addr), t1.LineData(addr)) {
			t.Fatalf("content diverged at %#x", addr)
		}
	}
}

// TestRecordReplayIdentity is the heart of the replay contract: a live
// mix, its per-client captures, and a replay mix over those captures
// must produce identical emission sequences — time, client, and access.
func TestRecordReplayIdentity(t *testing.T) {
	w := mustParse(t, exampleJSON)
	const n = 10000
	live := runMix(t, w, MixOptions{Budget: n, Registry: obs.NewRegistry()}, n)

	files := map[string]*bytes.Buffer{}
	err := RecordClients(w, n, func(id string) (io.WriteCloser, error) {
		b := &bytes.Buffer{}
		files[id] = b
		return nopCloser{b}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	traces := make([]*trace.Trace, len(w.Clients))
	for i, id := range w.ClientIDs() {
		tr, err := trace.ReadAll(bytes.NewReader(files[id].Bytes()))
		if err != nil {
			t.Fatalf("client %s: %v", id, err)
		}
		traces[i] = tr
	}
	replay := runMix(t, w, MixOptions{Replay: traces, Registry: obs.NewRegistry()}, n)
	for i := range live {
		if live[i] != replay[i] {
			t.Fatalf("emission %d: live %+v != replay %+v", i, live[i], replay[i])
		}
	}

	// One more emission than recorded must fail loudly.
	m, err := NewMix(w, MixOptions{Replay: traces, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := m.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Next(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
}

// TestReplayMismatch: captures from the wrong client layout are
// rejected up front.
func TestReplayMismatch(t *testing.T) {
	w := mustParse(t, exampleJSON)
	if _, err := NewMix(w, MixOptions{Replay: []*trace.Trace{}}); !errors.Is(err, ErrReplayMismatch) {
		t.Fatalf("want ErrReplayMismatch for wrong count, got %v", err)
	}
	bad := []*trace.Trace{
		{Header: trace.Header{Benchmark: "a", Instance: 0}},
		{Header: trace.Header{Benchmark: "wrong", Instance: 1}},
	}
	if _, err := NewMix(w, MixOptions{Replay: bad}); !errors.Is(err, ErrReplayMismatch) {
		t.Fatalf("want ErrReplayMismatch for wrong id, got %v", err)
	}
}

// TestFoldDistinguishesSpecs: the digest folding must separate specs
// differing in any semantic field.
func TestFoldDistinguishesSpecs(t *testing.T) {
	base := mustParse(t, exampleJSON)
	variants := []string{
		`{"version": 1, "name": "test-mix", "seed": 8, "mean_gap": 50, "clients": [
		  {"id": "a", "rate_fraction": 0.7, "arrival": {"process": "poisson"}, "content": {"base": "gcc"},
		   "phases": [{"at": 0.5, "content": {"base": "omnetpp", "working_set_lines": 4096, "hot_lines": 512}}]},
		  {"id": "b", "rate_fraction": 0.3, "arrival": {"process": "gamma", "cv": 3}, "content": {"base": "mcf", "stream_frac": 0.5}}]}`,
		`{"version": 1, "name": "test-mix", "seed": 7, "mean_gap": 50, "clients": [
		  {"id": "a", "rate_fraction": 0.7, "arrival": {"process": "poisson"}, "content": {"base": "gcc"},
		   "phases": [{"at": 0.6, "content": {"base": "omnetpp", "working_set_lines": 4096, "hot_lines": 512}}]},
		  {"id": "b", "rate_fraction": 0.3, "arrival": {"process": "gamma", "cv": 3}, "content": {"base": "mcf", "stream_frac": 0.5}}]}`,
		`{"version": 1, "name": "test-mix", "seed": 7, "mean_gap": 50, "clients": [
		  {"id": "a", "rate_fraction": 0.7, "arrival": {"process": "poisson"}, "content": {"base": "gcc"},
		   "phases": [{"at": 0.5, "content": {"base": "omnetpp", "working_set_lines": 4096, "hot_lines": 512}}]},
		  {"id": "b", "rate_fraction": 0.3, "arrival": {"process": "gamma", "cv": 2}, "content": {"base": "mcf", "stream_frac": 0.5}}]}`,
	}
	baseFold := foldString(base)
	if baseFold != foldString(mustParse(t, exampleJSON)) {
		t.Fatal("identical specs folded differently")
	}
	for i, src := range variants {
		if foldString(mustParse(t, src)) == baseFold {
			t.Errorf("variant %d folded identically to base", i)
		}
	}
}

type recordingFolder struct{ buf bytes.Buffer }

func (r *recordingFolder) Str(s string) { r.buf.WriteString("s:" + s + ";") }
func (r *recordingFolder) Int(v int)    { writeInt(&r.buf, int64(v)) }
func (r *recordingFolder) U64(v uint64) { writeInt(&r.buf, int64(v)) }
func (r *recordingFolder) F64(v float64) {
	r.buf.WriteString("f:")
	writeInt(&r.buf, int64(math.Float64bits(v)))
}
func (r *recordingFolder) Bool(v bool) { r.buf.WriteString(map[bool]string{true: "T", false: "F"}[v]) }

func writeInt(b *bytes.Buffer, v int64) {
	var tmp [8]byte
	for i := range tmp {
		tmp[i] = byte(v >> (8 * i))
	}
	b.Write(tmp[:])
	b.WriteByte(';')
}

func foldString(w *Workload) string {
	var r recordingFolder
	w.Fold(&r)
	return r.buf.String()
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func TestMain(m *testing.M) { os.Exit(m.Run()) }
