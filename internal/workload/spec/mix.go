// The mix engine: compiles a Workload into a deterministic merged
// access stream. Each client owns a private arrival sampler and one
// stream generator per phase; emissions merge on an exact uint64
// virtual clock with client index as the tie-break. Because each
// emission carries its client's integer inter-arrival gap, a set of
// per-client captures (RecordClients) holds everything needed to
// rebuild the clocks — so a replay mix reproduces the identical merge
// order, and replay-vs-live byte identity holds by construction.
package spec

import (
	"errors"
	"fmt"
	"io"

	"cable/internal/obs"
	"cable/internal/trace"
	"cable/internal/workload"
)

// ErrExhausted reports a replay mix asked for more emissions than its
// captures hold.
var ErrExhausted = errors.New("spec: replay mix exhausted")

// ErrReplayMismatch reports captures that do not match the workload
// they are replayed into.
var ErrReplayMismatch = errors.New("spec: replay captures do not match workload")

// MixOptions parameterize mix construction.
type MixOptions struct {
	// Variant decorrelates the stream generators of independent mixes
	// of the same workload (the topology driver passes the chip
	// index). Content is variant-independent: it remains a pure
	// function of the absolute address.
	Variant uint64
	// Budget is the run's total access budget — the denominator for
	// phase-change boundaries. Live mixes require it; replay mixes
	// ignore it (recorded addresses already encode their phase).
	Budget uint64
	// Registry receives content-cache counters (nil: process default).
	Registry *obs.Registry
	// Replay, when set, supplies one capture per client (in client
	// order, as written by RecordClients); the mix then replays the
	// recorded streams instead of sampling live.
	Replay []*trace.Trace
}

// Emission is one access of the merged stream.
type Emission struct {
	// Client is the index of the emitting client.
	Client int
	// At is the virtual arrival time (cumulative gaps).
	At uint64
	// Access is the emitted access; its Gap is the emitting client's
	// inter-arrival gap, not the merged stream's delta.
	Access workload.Access
}

type mixClient struct {
	id     string
	base   uint64
	bounds []uint64 // per-phase start counts; bounds[0] == 0
	gens   []*workload.Generator
	samp   *sampler

	replay     []workload.Access
	replayBase uint64
	rpos       int

	clock uint64 // arrival time of the next emission
	gap   uint64 // the gap that advanced clock there
	count uint64
	done  bool
}

// Mix is a compiled workload: a deterministic merged access stream
// plus the content table for its address space.
type Mix struct {
	w       *Workload
	clients []*mixClient
	content *ContentTable
	emitted uint64
}

// NewMix compiles a workload into a mix. With o.Replay set, the mix
// replays the captures; otherwise it samples arrivals live against
// o.Budget.
func NewMix(w *Workload, o MixOptions) (*Mix, error) {
	if o.Replay != nil && len(o.Replay) != len(w.Clients) {
		return nil, fmt.Errorf("%w: %d captures for %d clients", ErrReplayMismatch, len(o.Replay), len(w.Clients))
	}
	if o.Replay == nil && o.Budget == 0 {
		return nil, fmt.Errorf("spec: live mix needs a positive access budget")
	}
	content, err := NewContentTable(w, o.Registry)
	if err != nil {
		return nil, err
	}
	m := &Mix{w: w, content: content, clients: make([]*mixClient, len(w.Clients))}
	for i := range w.Clients {
		c := &mixClient{
			id:     w.Clients[i].ID,
			base:   ClientBase(i),
			bounds: phaseBounds(w, i, o.Budget),
		}
		m.clients[i] = c
		if o.Replay != nil {
			t := o.Replay[i]
			if t.Header.Benchmark != c.id || int(t.Header.Instance) != i {
				return nil, fmt.Errorf("%w: capture %d is %q/%d, want %q/%d",
					ErrReplayMismatch, i, t.Header.Benchmark, t.Header.Instance, c.id, i)
			}
			c.replay = t.Accesses
			c.replayBase = t.Header.AddrBase
			if len(c.replay) == 0 {
				c.done = true
				continue
			}
			c.gap = uint64(c.replay[0].Gap)
			c.clock = c.gap
			continue
		}
		// Stream generators are variant-decorated so independent mixes
		// (chips) draw decorrelated address sequences; the content
		// generators in the ContentTable stay at instance == client.
		streamInstance := i + int(o.Variant)*MaxClients
		c.gens = make([]*workload.Generator, len(w.resolved[i]))
		for p, s := range w.resolved[i] {
			c.gens[p] = workload.NewFromSpecIn(s, streamInstance, PhaseBase(i, p), o.Registry)
		}
		c.samp = newSampler(w.Clients[i].Arrival, mixMean(w, i),
			splitmix64(w.Seed^(uint64(i)+1)*0x517CC1B727220A95^o.Variant*0x2545F4914F6CDD1D))
		c.gap = c.samp.next()
		c.clock = c.gap
	}
	return m, nil
}

// mixMean is client i's mean inter-arrival gap: the aggregate mean
// over its normalized rate share.
func mixMean(w *Workload, i int) float64 {
	return float64(w.MeanGap) / w.rates[i]
}

// phaseBounds computes the access counts at which client i's phases
// begin, against its share of the run budget.
func phaseBounds(w *Workload, i int, budget uint64) []uint64 {
	phases := w.resolved[i]
	bounds := make([]uint64, len(phases))
	clientBudget := float64(budget) * w.rates[i]
	for p := 1; p < len(phases); p++ {
		bounds[p] = uint64(w.Clients[i].Phases[p-1].At * clientBudget)
	}
	return bounds
}

// phase returns the client's current phase index for its next access.
func (c *mixClient) phase() int {
	p := len(c.bounds) - 1
	for p > 0 && c.count < c.bounds[p] {
		p--
	}
	return p
}

// ClientIDs returns the client identifiers in emission-index order.
func (m *Mix) ClientIDs() []string { return m.w.ClientIDs() }

// Emitted returns how many accesses the mix has produced.
func (m *Mix) Emitted() uint64 { return m.emitted }

// LineData materializes line contents anywhere in the mix's address
// space (content generators at instance == client index, so contents
// are identical across variants and across live/replay).
func (m *Mix) LineData(lineAddr uint64) []byte { return m.content.LineData(lineAddr) }

// Next produces the next access of the merged stream.
func (m *Mix) Next() (Emission, error) {
	best := -1
	for i, c := range m.clients {
		if c.done {
			continue
		}
		if best < 0 || c.clock < m.clients[best].clock {
			best = i
		}
	}
	if best < 0 {
		return Emission{}, fmt.Errorf("%w after %d accesses", ErrExhausted, m.emitted)
	}
	c := m.clients[best]
	var a workload.Access
	if c.replay != nil {
		a = c.replay[c.rpos]
		a.LineAddr = a.LineAddr - c.replayBase + c.base
		c.rpos++
	} else {
		a = c.gens[c.phase()].Next()
		a.Gap = int(c.gap)
	}
	e := Emission{Client: best, At: c.clock, Access: a}
	c.count++
	m.emitted++
	switch {
	case c.replay != nil && c.rpos >= len(c.replay):
		c.done = true
	case c.replay != nil:
		c.gap = uint64(c.replay[c.rpos].Gap)
		c.clock += c.gap
	default:
		c.gap = c.samp.next()
		c.clock += c.gap
	}
	return e, nil
}

// RecordClients runs a live mix for n emissions and streams one trace
// per client through create (called with the client id, in client
// order). The captures carry per-client arrival gaps, so replaying
// them through NewMix reconstructs the identical merged stream.
func RecordClients(w *Workload, n int, create func(id string) (io.WriteCloser, error)) error {
	m, err := NewMix(w, MixOptions{Budget: uint64(n), Registry: obs.NewRegistry()})
	if err != nil {
		return err
	}
	perClient := make([][]workload.Access, len(m.clients))
	for i := 0; i < n; i++ {
		e, err := m.Next()
		if err != nil {
			return err
		}
		perClient[e.Client] = append(perClient[e.Client], e.Access)
	}
	for i, c := range m.clients {
		wc, err := create(c.id)
		if err != nil {
			return err
		}
		tw, err := trace.NewWriter(wc, trace.Header{
			Benchmark: c.id,
			Instance:  uint32(i),
			AddrBase:  ClientBase(i),
			Records:   uint64(len(perClient[i])),
		})
		if err != nil {
			wc.Close()
			return err
		}
		for _, a := range perClient[i] {
			if err := tw.Write(a); err != nil {
				wc.Close()
				return err
			}
		}
		if err := tw.Close(); err != nil {
			wc.Close()
			return err
		}
		if err := wc.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ContentTable dispatches LineData over a workload's address space:
// client index from the high address bits, phase from the subrange
// bits, then the matching content generator (instance == client, so
// every consumer — any chip, any worker, live or replay — derives
// identical bytes). Generators materialize lazily on first touch.
// A ContentTable is not safe for concurrent use; parallel consumers
// build one each, as the topology encode workers do.
type ContentTable struct {
	w    *Workload
	gens [][]*workload.Generator
	reg  *obs.Registry
}

// NewContentTable builds the dispatch table for a workload, reporting
// content-cache counters into reg (nil: process default).
func NewContentTable(w *Workload, reg *obs.Registry) (*ContentTable, error) {
	if w == nil || w.resolved == nil {
		return nil, fmt.Errorf("spec: workload not compiled (use Parse or Load)")
	}
	gens := make([][]*workload.Generator, len(w.Clients))
	for i := range gens {
		gens[i] = make([]*workload.Generator, len(w.resolved[i]))
	}
	return &ContentTable{w: w, gens: gens, reg: reg}, nil
}

// LineData materializes the contents of lineAddr.
func (t *ContentTable) LineData(lineAddr uint64) []byte {
	ci := int(lineAddr >> ClientShift)
	rel := lineAddr & (1<<ClientShift - 1)
	pi := int(rel >> phaseShift)
	if ci >= len(t.gens) || pi >= len(t.gens[ci]) {
		panic(fmt.Sprintf("spec: address %#x outside workload %q (client %d phase %d)",
			lineAddr, t.w.Name, ci, pi))
	}
	g := t.gens[ci][pi]
	if g == nil {
		g = workload.NewFromSpecIn(t.w.resolved[ci][pi], ci, PhaseBase(ci, pi), t.reg)
		t.gens[ci][pi] = g
	}
	return g.LineData(lineAddr)
}
