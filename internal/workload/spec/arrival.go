// Seeded inter-arrival samplers. Every process draws from a private
// splitmix64 counter stream, so a client's gap sequence is a pure
// function of (workload seed, client index, variant) — independent of
// evaluation order, parallelism, and the other clients. Gaps are
// integers in [1, 2^32-1]: they merge on an exact virtual clock (no
// float comparisons in the hot path) and fit the trace format's
// on-disk gap field, which is what makes record→replay reconstruct
// the identical merge order.
package spec

import "math"

const maxGap = 1<<32 - 1

// Arrival process kinds, resolved from the DSL's process names.
type arrivalKind int

const (
	arrFixed arrivalKind = iota
	arrPoisson
	arrGamma
	arrWeibull
)

// sampler produces one client's integer gap sequence.
type sampler struct {
	state uint64
	kind  arrivalKind
	mean  float64

	// gamma(k, theta) via Marsaglia–Tsang.
	k, theta float64
	// weibull scale/shape.
	lambda, invShape float64
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// newSampler builds the sampler for one client: mean is the client's
// mean inter-arrival gap (aggregate mean over its normalized rate),
// seed its private stream seed.
func newSampler(a Arrival, mean float64, seed uint64) *sampler {
	s := &sampler{state: seed, mean: mean}
	switch a.Process {
	case "poisson":
		s.kind = arrPoisson
	case "gamma":
		s.kind = arrGamma
		// CV = 1/sqrt(k): burstiness picks the shape, the mean the scale.
		s.k = 1 / (a.CV * a.CV)
		s.theta = mean / s.k
	case "weibull":
		s.kind = arrWeibull
		s.invShape = 1 / a.Shape
		s.lambda = mean / math.Gamma(1+s.invShape)
	default: // "fixed"
		s.kind = arrFixed
	}
	return s
}

// uniform returns the next draw in (0, 1); never 0, so logs are safe.
func (s *sampler) uniform() float64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return (float64(z>>11) + 0.5) / float64(1<<53)
}

// normal returns a standard normal draw (Box–Muller; the second
// variate is discarded to keep the stream's draw count data-dependent
// only on accepted samples).
func (s *sampler) normal() float64 {
	u1, u2 := s.uniform(), s.uniform()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// next returns the client's next inter-arrival gap.
func (s *sampler) next() uint64 {
	var x float64
	switch s.kind {
	case arrPoisson:
		x = -s.mean * math.Log(s.uniform())
	case arrGamma:
		x = s.theta * s.gammaVariate(s.k)
	case arrWeibull:
		x = s.lambda * math.Pow(-math.Log(s.uniform()), s.invShape)
	default:
		x = s.mean
	}
	g := math.Round(x)
	if !(g >= 1) { // NaN-safe: extreme parameters clamp to the floor
		return 1
	}
	if g > maxGap {
		return maxGap
	}
	return uint64(g)
}

// gammaVariate draws gamma(k, 1) via Marsaglia–Tsang (2000); the k<1
// case boosts a gamma(k+1) draw, which is where bursty cv>1 arrivals
// land.
func (s *sampler) gammaVariate(k float64) float64 {
	if k < 1 {
		return s.gammaVariate(k+1) * math.Pow(s.uniform(), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.uniform()
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}
