package spec

import (
	"errors"
	"testing"
)

// FuzzParseSpec is the CI contract for the DSL's front door: arbitrary
// bytes must never panic the parser, and every rejection must be a
// typed ErrInvalid — so CLI callers can always distinguish a malformed
// spec from an I/O failure.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(exampleJSON))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version": 1}`))
	f.Add([]byte(`{"version": 1, "name": "x", "clients": [{"id": "a", "arrival": {"process": "weibull", "shape": 1e308}, "content": {"base": "gcc"}}]}`))
	f.Add([]byte(`{"version": 1, "name": "x", "clients": [{"id": "a", "rate_fraction": 1e-300, "arrival": {"process": "gamma", "cv": 100}, "content": {"base": "lbm", "phase_len": 1}}]}`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`null`))
	f.Add([]byte("\x00\xff CBLT"))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := Parse(data)
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		// Accepted specs must be usable: folding and a short mix walk
		// must not panic either.
		var r recordingFolder
		w.Fold(&r)
		m, err := NewMix(w, MixOptions{Budget: 64})
		if err != nil {
			return
		}
		for i := 0; i < 64; i++ {
			if _, err := m.Next(); err != nil {
				break
			}
		}
	})
}
