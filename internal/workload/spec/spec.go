// Package spec is the declarative workload layer: a JSON DSL
// describing multi-client traffic mixes — per-client rate fractions,
// seeded stochastic arrival processes, content models drawn from the
// 29 synthetic benchmarks (with per-axis overrides), and phase changes
// over virtual time — compiled into deterministic access sources any
// driver can consume, live or replayed from recorded captures.
//
// Address layout: client i owns the line-address range [i<<32,
// (i+1)<<32); phase p of a client shifts its working set to the
// disjoint subrange starting at (i<<32)+(p<<26). Content therefore
// stays a pure function of the absolute line address — the invariant
// the parallel topology encode pass and the cell memo depend on —
// while the access stream migrates between working sets at phase
// boundaries.
package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"

	"cable/internal/workload"
)

// ErrInvalid is wrapped by every spec parse or validation failure, so
// callers (and the fuzz harness) can separate malformed input from
// I/O errors with errors.Is.
var ErrInvalid = errors.New("workload spec invalid")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("spec: "+format+": %w", append(args, ErrInvalid)...)
}

// Address-space carving (line addresses).
const (
	// ClientShift positions each client's address space: client i
	// owns [i<<ClientShift, (i+1)<<ClientShift).
	ClientShift = 32
	// phaseShift positions phase subspaces inside a client's range.
	phaseShift = 26

	// MaxClients and MaxPhases bound the carving: 64 clients × 64
	// subranges of 1<<26 lines each.
	MaxClients = 64
	MaxPhases  = 16

	// maxWorkingSet keeps every working set inside its phase subrange.
	maxWorkingSet = 1 << 24
)

// ClientBase returns the base line address of client i's space.
func ClientBase(i int) uint64 { return uint64(i) << ClientShift }

// PhaseBase returns the base line address of phase p of client i.
func PhaseBase(i, p int) uint64 { return ClientBase(i) + uint64(p)<<phaseShift }

// Workload is the root of the DSL: a named, seeded multi-client mix.
type Workload struct {
	// Version pins the DSL revision; must be 1.
	Version int `json:"version"`
	// Name labels the scenario in tables and digests.
	Name string `json:"name"`
	// Seed drives every arrival sampler; same seed, same mix.
	Seed uint64 `json:"seed"`
	// MeanGap is the aggregate mean inter-arrival gap of the merged
	// stream (instruction gaps on the memlink driver, link cycles on
	// the topology driver). Defaults to 100.
	MeanGap int `json:"mean_gap,omitempty"`
	// Clients are the traffic sources of the mix.
	Clients []Client `json:"clients"`

	// Compiled state, populated by validation.
	rates    []float64         // normalized rate fractions
	resolved [][]workload.Spec // per client, per phase
}

// Client is one traffic source.
type Client struct {
	// ID names the client; unique within the workload.
	ID string `json:"id"`
	// RateFraction is the client's share of aggregate traffic; the
	// fractions are normalized over the mix, so they need not sum to
	// 1. Defaults to an equal share when every client omits it.
	RateFraction float64 `json:"rate_fraction,omitempty"`
	// Arrival selects the inter-arrival process.
	Arrival Arrival `json:"arrival"`
	// Content selects the line-content and access-pattern model.
	Content Content `json:"content"`
	// Phases switch the client to new content/working sets as the run
	// progresses; the initial phase is the top-level Content.
	Phases []PhaseChange `json:"phases,omitempty"`
}

// Arrival is a seeded stochastic inter-arrival process.
type Arrival struct {
	// Process is one of "poisson", "gamma", "weibull", "fixed".
	Process string `json:"process"`
	// CV is the coefficient of variation for gamma arrivals; cv > 1
	// models bursty tenants, cv < 1 smooth ones.
	CV float64 `json:"cv,omitempty"`
	// Shape is the Weibull shape parameter (shape < 1 is
	// heavy-tailed/bursty).
	Shape float64 `json:"shape,omitempty"`
}

// Content names a base benchmark and optional per-axis overrides.
// Pointer fields distinguish "absent" from an explicit zero.
type Content struct {
	// Base is a benchmark name from the synthetic suite. Required at
	// the client level; optional inside a phase change, where axes
	// default to the client's resolved content.
	Base string `json:"base,omitempty"`

	Model           *string  `json:"model,omitempty"` // pointer|int|fp|text|random
	ZeroFrac        *float64 `json:"zero_frac,omitempty"`
	ProtoFrac       *float64 `json:"proto_frac,omitempty"`
	ProtoCount      *int     `json:"proto_count,omitempty"`
	MutateWords     *int     `json:"mutate_words,omitempty"`
	ByteShiftFrac   *float64 `json:"byte_shift_frac,omitempty"`
	ObjLines        *int     `json:"obj_lines,omitempty"`
	WorkingSetLines *int     `json:"working_set_lines,omitempty"`
	HotLines        *int     `json:"hot_lines,omitempty"`
	HotFrac         *float64 `json:"hot_frac,omitempty"`
	StreamFrac      *float64 `json:"stream_frac,omitempty"`
	WriteFrac       *float64 `json:"write_frac,omitempty"`
	PhaseLen        *int     `json:"phase_len,omitempty"`
}

// PhaseChange switches a client's content model at a point in the run.
type PhaseChange struct {
	// At is the fraction of the client's access budget at which the
	// phase begins; strictly increasing in (0, 1).
	At float64 `json:"at"`
	// Content overrides axes for this phase; an empty Base inherits
	// the client's resolved content.
	Content Content `json:"content,omitempty"`
}

var valueModels = map[string]workload.ValueModel{
	"pointer": workload.ValuePointer,
	"int":     workload.ValueInt,
	"fp":      workload.ValueFP,
	"text":    workload.ValueText,
	"random":  workload.ValueRandom,
}

// Parse decodes and validates a workload spec. Unknown fields are
// rejected, so typos in axis names cannot silently fall back to
// defaults. Every failure wraps ErrInvalid.
func Parse(data []byte) (*Workload, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w Workload
	if err := dec.Decode(&w); err != nil {
		return nil, invalidf("%v", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err == nil {
		return nil, invalidf("trailing data after spec document")
	}
	if err := w.compile(); err != nil {
		return nil, err
	}
	return &w, nil
}

// Load reads and parses a workload spec file.
func Load(path string) (*Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	w, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return w, nil
}

// compile validates the spec and materializes the normalized rates and
// per-phase resolved benchmark specs.
func (w *Workload) compile() error {
	if w.Version != 1 {
		return invalidf("version %d unsupported (want 1)", w.Version)
	}
	if w.Name == "" {
		return invalidf("name is required")
	}
	if w.MeanGap == 0 {
		w.MeanGap = 100
	}
	if w.MeanGap < 1 || w.MeanGap > 1<<20 {
		return invalidf("mean_gap %d out of range [1, 2^20]", w.MeanGap)
	}
	if len(w.Clients) == 0 {
		return invalidf("at least one client is required")
	}
	if len(w.Clients) > MaxClients {
		return invalidf("%d clients exceeds the maximum of %d", len(w.Clients), MaxClients)
	}

	seen := make(map[string]bool, len(w.Clients))
	w.rates = make([]float64, len(w.Clients))
	w.resolved = make([][]workload.Spec, len(w.Clients))
	allDefault := true
	var rateSum float64
	for i := range w.Clients {
		c := &w.Clients[i]
		if c.ID == "" {
			return invalidf("client %d: id is required", i)
		}
		if seen[c.ID] {
			return invalidf("client %d: duplicate id %q", i, c.ID)
		}
		seen[c.ID] = true
		if c.RateFraction < 0 || math.IsNaN(c.RateFraction) || math.IsInf(c.RateFraction, 0) {
			return invalidf("client %q: rate_fraction %v must be finite and >= 0", c.ID, c.RateFraction)
		}
		if c.RateFraction != 0 {
			allDefault = false
		}
		rateSum += c.RateFraction
		if err := validateArrival(c.ID, c.Arrival); err != nil {
			return err
		}
		if c.Content.Base == "" {
			return invalidf("client %q: content.base is required", c.ID)
		}
		base, err := resolveContent(c.ID, c.Content, nil)
		if err != nil {
			return err
		}
		if len(c.Phases) > MaxPhases-1 {
			return invalidf("client %q: %d phase changes exceeds the maximum of %d",
				c.ID, len(c.Phases), MaxPhases-1)
		}
		phases := []workload.Spec{base}
		prevAt := 0.0
		for p, ph := range c.Phases {
			if !(ph.At > prevAt && ph.At < 1) {
				return invalidf("client %q: phase %d at=%v must be strictly increasing in (0, 1)",
					c.ID, p, ph.At)
			}
			prevAt = ph.At
			s, err := resolveContent(c.ID, ph.Content, &base)
			if err != nil {
				return err
			}
			phases = append(phases, s)
		}
		w.resolved[i] = phases
	}
	switch {
	case allDefault:
		for i := range w.rates {
			w.rates[i] = 1 / float64(len(w.Clients))
		}
	case rateSum <= 0:
		return invalidf("rate fractions must sum to a positive value")
	default:
		for i := range w.rates {
			if w.Clients[i].RateFraction == 0 {
				return invalidf("client %q: rate_fraction is required when any client sets one",
					w.Clients[i].ID)
			}
			w.rates[i] = w.Clients[i].RateFraction / rateSum
		}
	}
	return nil
}

func validateArrival(id string, a Arrival) error {
	switch a.Process {
	case "poisson", "fixed":
	case "gamma":
		if !(a.CV > 0) || math.IsInf(a.CV, 0) {
			return invalidf("client %q: gamma arrivals need cv > 0, got %v", id, a.CV)
		}
	case "weibull":
		if !(a.Shape > 0) || math.IsInf(a.Shape, 0) {
			return invalidf("client %q: weibull arrivals need shape > 0, got %v", id, a.Shape)
		}
	case "":
		return invalidf("client %q: arrival.process is required", id)
	default:
		return invalidf("client %q: unknown arrival process %q", id, a.Process)
	}
	return nil
}

// resolveContent materializes a Content into a concrete benchmark
// spec: the named base (or the inherited spec when Base is empty and
// inherit is non-nil), with explicit axis overrides applied, then
// validated against the generator's invariants.
func resolveContent(id string, c Content, inherit *workload.Spec) (workload.Spec, error) {
	var s workload.Spec
	switch {
	case c.Base != "":
		base, err := workload.ByName(c.Base)
		if err != nil {
			return s, invalidf("client %q: %v", id, err)
		}
		s = base
	case inherit != nil:
		s = *inherit
	default:
		return s, invalidf("client %q: content.base is required", id)
	}
	if c.Model != nil {
		m, ok := valueModels[*c.Model]
		if !ok {
			return s, invalidf("client %q: unknown value model %q", id, *c.Model)
		}
		s.Model = m
	}
	for _, f := range []struct {
		name string
		dst  *float64
		src  *float64
	}{
		{"zero_frac", &s.ZeroFrac, c.ZeroFrac},
		{"proto_frac", &s.ProtoFrac, c.ProtoFrac},
		{"byte_shift_frac", &s.ByteShiftFrac, c.ByteShiftFrac},
		{"hot_frac", &s.HotFrac, c.HotFrac},
		{"stream_frac", &s.StreamFrac, c.StreamFrac},
		{"write_frac", &s.WriteFrac, c.WriteFrac},
	} {
		if f.src == nil {
			continue
		}
		if *f.src < 0 || *f.src > 1 || math.IsNaN(*f.src) {
			return s, invalidf("client %q: %s %v out of [0, 1]", id, f.name, *f.src)
		}
		*f.dst = *f.src
	}
	for _, f := range []struct {
		name     string
		dst      *int
		src      *int
		min, max int
	}{
		{"proto_count", &s.ProtoCount, c.ProtoCount, 1, 1 << 12},
		{"mutate_words", &s.MutateWords, c.MutateWords, 0, workload.LineSize / 4},
		{"obj_lines", &s.ObjLines, c.ObjLines, 1, 1 << 12},
		{"working_set_lines", &s.WorkingSetLines, c.WorkingSetLines, 1, maxWorkingSet},
		{"hot_lines", &s.HotLines, c.HotLines, 1, maxWorkingSet},
		{"phase_len", &s.PhaseLen, c.PhaseLen, 1, 1 << 30},
	} {
		if f.src == nil {
			continue
		}
		if *f.src < f.min || *f.src > f.max {
			return s, invalidf("client %q: %s %d out of [%d, %d]", id, f.name, *f.src, f.min, f.max)
		}
		*f.dst = *f.src
	}
	if s.ZeroFrac+s.ProtoFrac > 1 {
		return s, invalidf("client %q: zero_frac+proto_frac %v exceeds 1", id, s.ZeroFrac+s.ProtoFrac)
	}
	if s.HotFrac+s.StreamFrac > 1 {
		return s, invalidf("client %q: hot_frac+stream_frac %v exceeds 1", id, s.HotFrac+s.StreamFrac)
	}
	if s.WorkingSetLines > maxWorkingSet {
		return s, invalidf("client %q: working_set_lines %d exceeds the phase subrange (%d)",
			id, s.WorkingSetLines, maxWorkingSet)
	}
	if s.HotLines > s.WorkingSetLines {
		return s, invalidf("client %q: hot_lines %d exceeds working_set_lines %d",
			id, s.HotLines, s.WorkingSetLines)
	}
	return s, nil
}

// Rates returns the normalized per-client rate fractions.
func (w *Workload) Rates() []float64 { return append([]float64(nil), w.rates...) }

// Resolved returns the materialized benchmark spec of one client phase
// (phase 0 is the client's top-level content).
func (w *Workload) Resolved(client, phase int) workload.Spec { return w.resolved[client][phase] }

// PhaseCount returns how many phases a client runs (1 + phase changes).
func (w *Workload) PhaseCount(client int) int { return len(w.resolved[client]) }

// ClientIDs returns the client identifiers in declaration order.
func (w *Workload) ClientIDs() []string {
	ids := make([]string, len(w.Clients))
	for i, c := range w.Clients {
		ids[i] = c.ID
	}
	return ids
}

// Folder is the digest sink Fold writes to; cable's config digesters
// satisfy it without this package importing them.
type Folder interface {
	Str(s string)
	Int(v int)
	U64(v uint64)
	F64(v float64)
	Bool(v bool)
}

// Fold writes a canonical encoding of the spec into f, so distinct
// specs never alias config-digest memo cells. Every semantic field is
// folded; compiled state is derived deterministically from them.
func (w *Workload) Fold(f Folder) {
	f.Str("wspec/v1")
	f.Int(w.Version)
	f.Str(w.Name)
	f.U64(w.Seed)
	f.Int(w.MeanGap)
	f.Int(len(w.Clients))
	for i := range w.Clients {
		c := &w.Clients[i]
		f.Str(c.ID)
		f.F64(w.rates[i])
		f.Str(c.Arrival.Process)
		f.F64(c.Arrival.CV)
		f.F64(c.Arrival.Shape)
		f.Int(len(w.resolved[i]))
		for p, s := range w.resolved[i] {
			if p > 0 {
				f.F64(c.Phases[p-1].At)
			}
			foldSpec(f, s)
		}
	}
}

func foldSpec(f Folder, s workload.Spec) {
	f.Str(s.Name)
	f.Int(int(s.Model))
	f.F64(s.ZeroFrac)
	f.F64(s.ProtoFrac)
	f.Int(s.ProtoCount)
	f.Int(s.MutateWords)
	f.F64(s.ByteShiftFrac)
	f.Int(s.ObjLines)
	f.Int(s.WorkingSetLines)
	f.Int(s.HotLines)
	f.F64(s.HotFrac)
	f.F64(s.StreamFrac)
	f.F64(s.WriteFrac)
	f.Int(s.PhaseLen)
	f.Bool(s.ZeroDominant)
}
