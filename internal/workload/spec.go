// Package workload provides synthetic stand-ins for the SPEC2006
// SimPoint traces the paper evaluates with. Real traces are not
// available offline, so each benchmark is modeled along the axes that
// drive link-compression behavior (see DESIGN.md):
//
//   - zero dominance (the paper's "easier to compress" right group of
//     Fig 12, which every scheme pushes past 16×),
//   - inter-line similarity at unrelated addresses — copies of objects
//     sharing a prototype layout — which only a cache-sized dictionary
//     (CABLE) can exploit once the reuse distance exceeds gzip's 32 KB
//     window,
//   - stream-local byte-level redundancy and byte-shifted copies, which
//     favor gzip's byte-granular sliding window over CABLE's
//     word-aligned signatures,
//   - memory intensity and footprint, which drive the throughput and
//     latency studies.
//
// Parameters are calibrated so that the published qualitative ordering
// holds per benchmark group; absolute ratios are synthetic.
package workload

import "fmt"

// ValueModel selects the content family for fresh lines and prototypes.
type ValueModel int

// Content families.
const (
	// ValuePointer: arrays of 8-byte pointers sharing a heap base.
	ValuePointer ValueModel = iota
	// ValueInt: small integers and counters; many trivial words.
	ValueInt
	// ValueFP: doubles sharing exponent bytes, smooth mantissas.
	ValueFP
	// ValueText: ASCII with repeated fragments; byte-granular
	// redundancy.
	ValueText
	// ValueRandom: incompressible content.
	ValueRandom
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name  string
	Class string // "int" or "fp"
	Model ValueModel

	// Content axes.
	ZeroFrac      float64 // P(line is zero-dominated)
	ProtoFrac     float64 // P(line is a mutated prototype copy)
	ProtoCount    int     // prototype pool size
	MutateWords   int     // words edited per prototype copy
	ByteShiftFrac float64 // P(prototype copy is byte-shifted)
	ObjLines      int     // consecutive lines sharing one prototype

	// Access-pattern axes.
	WorkingSetLines int     // footprint in 64B lines
	HotLines        int     // hot subset size
	HotFrac         float64 // P(access in hot subset)
	StreamFrac      float64 // P(access continues the stream)
	WriteFrac       float64 // P(access is a store)
	PhaseLen        int     // accesses per program phase

	// Timing axes.
	GapInstrs int // mean non-memory instructions between LLC accesses

	// ZeroDominant marks the Fig 12 right group, excluded from the
	// multiprogram and sensitivity studies (§VI-A footnote 5).
	ZeroDominant bool
}

// specs is the full SPEC CPU2006 suite, modeled per the axes above.
var specs = []Spec{
	// ---- CINT2006 ----
	{Name: "perlbench", Class: "int", Model: ValueText, ZeroFrac: 0.20, ProtoFrac: 0.25, ProtoCount: 48, MutateWords: 3, ByteShiftFrac: 0.45, ObjLines: 4, WorkingSetLines: 1 << 15, HotLines: 1 << 12, HotFrac: 0.6, StreamFrac: 0.3, WriteFrac: 0.30, PhaseLen: 40000, GapInstrs: 160},
	{Name: "bzip2", Class: "int", Model: ValueText, ZeroFrac: 0.15, ProtoFrac: 0.20, ProtoCount: 32, MutateWords: 4, ByteShiftFrac: 0.50, ObjLines: 8, WorkingSetLines: 1 << 16, HotLines: 1 << 12, HotFrac: 0.4, StreamFrac: 0.5, WriteFrac: 0.35, PhaseLen: 30000, GapInstrs: 100},
	{Name: "gcc", Class: "int", Model: ValuePointer, ZeroFrac: 0.35, ProtoFrac: 0.35, ProtoCount: 64, MutateWords: 2, ByteShiftFrac: 0.20, ObjLines: 4, WorkingSetLines: 1 << 17, HotLines: 1 << 13, HotFrac: 0.4, StreamFrac: 0.3, WriteFrac: 0.30, PhaseLen: 8000, GapInstrs: 100},
	{Name: "mcf", Class: "int", Model: ValuePointer, ZeroFrac: 0.94, ProtoFrac: 0.04, ProtoCount: 16, MutateWords: 2, ByteShiftFrac: 0, ObjLines: 2, WorkingSetLines: 1 << 20, HotLines: 1 << 14, HotFrac: 0.2, StreamFrac: 0.2, WriteFrac: 0.25, PhaseLen: 50000, GapInstrs: 12, ZeroDominant: true},
	{Name: "gobmk", Class: "int", Model: ValueInt, ZeroFrac: 0.30, ProtoFrac: 0.55, ProtoCount: 96, MutateWords: 1, ByteShiftFrac: 0, ObjLines: 2, WorkingSetLines: 1 << 14, HotLines: 1 << 11, HotFrac: 0.6, StreamFrac: 0.1, WriteFrac: 0.30, PhaseLen: 25000, GapInstrs: 250},
	{Name: "hmmer", Class: "int", Model: ValueInt, ZeroFrac: 0.10, ProtoFrac: 0.20, ProtoCount: 24, MutateWords: 6, ByteShiftFrac: 0.15, ObjLines: 4, WorkingSetLines: 1 << 13, HotLines: 1 << 10, HotFrac: 0.7, StreamFrac: 0.25, WriteFrac: 0.40, PhaseLen: 60000, GapInstrs: 200},
	{Name: "sjeng", Class: "int", Model: ValueRandom, ZeroFrac: 0.15, ProtoFrac: 0.15, ProtoCount: 32, MutateWords: 5, ByteShiftFrac: 0.05, ObjLines: 2, WorkingSetLines: 1 << 16, HotLines: 1 << 12, HotFrac: 0.5, StreamFrac: 0.1, WriteFrac: 0.25, PhaseLen: 40000, GapInstrs: 250},
	{Name: "libquantum", Class: "int", Model: ValueInt, ZeroFrac: 0.95, ProtoFrac: 0.04, ProtoCount: 8, MutateWords: 1, ByteShiftFrac: 0, ObjLines: 16, WorkingSetLines: 1 << 19, HotLines: 1 << 12, HotFrac: 0.1, StreamFrac: 0.8, WriteFrac: 0.30, PhaseLen: 80000, GapInstrs: 20, ZeroDominant: true},
	{Name: "h264ref", Class: "int", Model: ValueText, ZeroFrac: 0.25, ProtoFrac: 0.25, ProtoCount: 40, MutateWords: 4, ByteShiftFrac: 0.40, ObjLines: 8, WorkingSetLines: 1 << 14, HotLines: 1 << 11, HotFrac: 0.5, StreamFrac: 0.45, WriteFrac: 0.35, PhaseLen: 30000, GapInstrs: 200},
	{Name: "omnetpp", Class: "int", Model: ValuePointer, ZeroFrac: 0.30, ProtoFrac: 0.45, ProtoCount: 80, MutateWords: 2, ByteShiftFrac: 0.05, ObjLines: 2, WorkingSetLines: 1 << 18, HotLines: 1 << 13, HotFrac: 0.35, StreamFrac: 0.1, WriteFrac: 0.35, PhaseLen: 50000, GapInstrs: 28},
	{Name: "astar", Class: "int", Model: ValuePointer, ZeroFrac: 0.30, ProtoFrac: 0.40, ProtoCount: 48, MutateWords: 2, ByteShiftFrac: 0.05, ObjLines: 2, WorkingSetLines: 1 << 17, HotLines: 1 << 13, HotFrac: 0.4, StreamFrac: 0.15, WriteFrac: 0.30, PhaseLen: 40000, GapInstrs: 50},
	{Name: "xalancbmk", Class: "int", Model: ValueText, ZeroFrac: 0.25, ProtoFrac: 0.35, ProtoCount: 64, MutateWords: 3, ByteShiftFrac: 0.35, ObjLines: 4, WorkingSetLines: 1 << 17, HotLines: 1 << 12, HotFrac: 0.45, StreamFrac: 0.3, WriteFrac: 0.25, PhaseLen: 30000, GapInstrs: 80},
	// ---- CFP2006 ----
	{Name: "bwaves", Class: "fp", Model: ValueFP, ZeroFrac: 0.92, ProtoFrac: 0.06, ProtoCount: 16, MutateWords: 3, ByteShiftFrac: 0, ObjLines: 16, WorkingSetLines: 1 << 19, HotLines: 1 << 13, HotFrac: 0.15, StreamFrac: 0.75, WriteFrac: 0.30, PhaseLen: 80000, GapInstrs: 28, ZeroDominant: true},
	{Name: "gamess", Class: "fp", Model: ValueRandom, ZeroFrac: 0.08, ProtoFrac: 0.12, ProtoCount: 24, MutateWords: 6, ByteShiftFrac: 0.05, ObjLines: 2, WorkingSetLines: 1 << 13, HotLines: 1 << 10, HotFrac: 0.7, StreamFrac: 0.2, WriteFrac: 0.35, PhaseLen: 60000, GapInstrs: 600},
	{Name: "milc", Class: "fp", Model: ValueFP, ZeroFrac: 0.92, ProtoFrac: 0.06, ProtoCount: 16, MutateWords: 3, ByteShiftFrac: 0, ObjLines: 8, WorkingSetLines: 1 << 19, HotLines: 1 << 12, HotFrac: 0.15, StreamFrac: 0.7, WriteFrac: 0.35, PhaseLen: 70000, GapInstrs: 25, ZeroDominant: true},
	{Name: "zeusmp", Class: "fp", Model: ValueFP, ZeroFrac: 0.30, ProtoFrac: 0.55, ProtoCount: 72, MutateWords: 1, ByteShiftFrac: 0, ObjLines: 8, WorkingSetLines: 1 << 18, HotLines: 1 << 13, HotFrac: 0.3, StreamFrac: 0.5, WriteFrac: 0.35, PhaseLen: 60000, GapInstrs: 66},
	{Name: "gromacs", Class: "fp", Model: ValueFP, ZeroFrac: 0.20, ProtoFrac: 0.30, ProtoCount: 40, MutateWords: 4, ByteShiftFrac: 0.05, ObjLines: 4, WorkingSetLines: 1 << 15, HotLines: 1 << 12, HotFrac: 0.55, StreamFrac: 0.3, WriteFrac: 0.35, PhaseLen: 50000, GapInstrs: 125},
	{Name: "cactusADM", Class: "fp", Model: ValueFP, ZeroFrac: 0.35, ProtoFrac: 0.40, ProtoCount: 56, MutateWords: 2, ByteShiftFrac: 0, ObjLines: 8, WorkingSetLines: 1 << 18, HotLines: 1 << 13, HotFrac: 0.25, StreamFrac: 0.6, WriteFrac: 0.35, PhaseLen: 70000, GapInstrs: 83},
	{Name: "leslie3d", Class: "fp", Model: ValueFP, ZeroFrac: 0.35, ProtoFrac: 0.35, ProtoCount: 48, MutateWords: 2, ByteShiftFrac: 0, ObjLines: 8, WorkingSetLines: 1 << 18, HotLines: 1 << 13, HotFrac: 0.2, StreamFrac: 0.65, WriteFrac: 0.35, PhaseLen: 60000, GapInstrs: 40},
	{Name: "namd", Class: "fp", Model: ValueRandom, ZeroFrac: 0.10, ProtoFrac: 0.18, ProtoCount: 160, MutateWords: 6, ByteShiftFrac: 0.05, ObjLines: 2, WorkingSetLines: 1 << 14, HotLines: 1 << 11, HotFrac: 0.6, StreamFrac: 0.25, WriteFrac: 0.35, PhaseLen: 50000, GapInstrs: 333},
	{Name: "dealII", Class: "fp", Model: ValueFP, ZeroFrac: 0.25, ProtoFrac: 0.60, ProtoCount: 112, MutateWords: 1, ByteShiftFrac: 0, ObjLines: 2, WorkingSetLines: 1 << 17, HotLines: 1 << 12, HotFrac: 0.4, StreamFrac: 0.15, WriteFrac: 0.30, PhaseLen: 45000, GapInstrs: 125},
	{Name: "soplex", Class: "fp", Model: ValueFP, ZeroFrac: 0.40, ProtoFrac: 0.40, ProtoCount: 64, MutateWords: 2, ByteShiftFrac: 0, ObjLines: 4, WorkingSetLines: 1 << 18, HotLines: 1 << 13, HotFrac: 0.3, StreamFrac: 0.35, WriteFrac: 0.25, PhaseLen: 50000, GapInstrs: 25},
	{Name: "povray", Class: "fp", Model: ValueRandom, ZeroFrac: 0.12, ProtoFrac: 0.20, ProtoCount: 48, MutateWords: 5, ByteShiftFrac: 0.05, ObjLines: 2, WorkingSetLines: 1 << 12, HotLines: 1 << 10, HotFrac: 0.8, StreamFrac: 0.1, WriteFrac: 0.30, PhaseLen: 40000, GapInstrs: 666},
	{Name: "calculix", Class: "fp", Model: ValueFP, ZeroFrac: 0.15, ProtoFrac: 0.25, ProtoCount: 40, MutateWords: 5, ByteShiftFrac: 0.05, ObjLines: 4, WorkingSetLines: 1 << 14, HotLines: 1 << 11, HotFrac: 0.6, StreamFrac: 0.25, WriteFrac: 0.35, PhaseLen: 50000, GapInstrs: 250},
	{Name: "GemsFDTD", Class: "fp", Model: ValueFP, ZeroFrac: 0.91, ProtoFrac: 0.07, ProtoCount: 24, MutateWords: 2, ByteShiftFrac: 0, ObjLines: 16, WorkingSetLines: 1 << 19, HotLines: 1 << 12, HotFrac: 0.15, StreamFrac: 0.7, WriteFrac: 0.35, PhaseLen: 70000, GapInstrs: 33, ZeroDominant: true},
	{Name: "tonto", Class: "fp", Model: ValueFP, ZeroFrac: 0.25, ProtoFrac: 0.58, ProtoCount: 96, MutateWords: 1, ByteShiftFrac: 0, ObjLines: 2, WorkingSetLines: 1 << 16, HotLines: 1 << 12, HotFrac: 0.45, StreamFrac: 0.15, WriteFrac: 0.30, PhaseLen: 45000, GapInstrs: 200},
	{Name: "lbm", Class: "fp", Model: ValueFP, ZeroFrac: 0.94, ProtoFrac: 0.05, ProtoCount: 8, MutateWords: 2, ByteShiftFrac: 0, ObjLines: 16, WorkingSetLines: 1 << 20, HotLines: 1 << 12, HotFrac: 0.05, StreamFrac: 0.9, WriteFrac: 0.45, PhaseLen: 100000, GapInstrs: 16, ZeroDominant: true},
	{Name: "wrf", Class: "fp", Model: ValueFP, ZeroFrac: 0.35, ProtoFrac: 0.35, ProtoCount: 56, MutateWords: 2, ByteShiftFrac: 0, ObjLines: 8, WorkingSetLines: 1 << 17, HotLines: 1 << 13, HotFrac: 0.3, StreamFrac: 0.5, WriteFrac: 0.30, PhaseLen: 60000, GapInstrs: 55},
	{Name: "sphinx3", Class: "fp", Model: ValueFP, ZeroFrac: 0.40, ProtoFrac: 0.30, ProtoCount: 48, MutateWords: 3, ByteShiftFrac: 0.05, ObjLines: 4, WorkingSetLines: 1 << 18, HotLines: 1 << 13, HotFrac: 0.35, StreamFrac: 0.4, WriteFrac: 0.20, PhaseLen: 50000, GapInstrs: 40},
}

// All returns every benchmark spec in suite order.
func All() []Spec { return append([]Spec(nil), specs...) }

// NonTrivial returns the suite minus the zero-dominant group, the set
// used by the multiprogram and sensitivity studies (§VI footnote 5).
func NonTrivial() []Spec {
	out := make([]Spec, 0, len(specs))
	for _, s := range specs {
		if !s.ZeroDominant {
			out = append(out, s)
		}
	}
	return out
}

// ByName looks up a benchmark spec.
func ByName(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns all benchmark names.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Mixes is Table VI: the randomly chosen destructive multiprogram
// mixes.
var Mixes = [8][4]string{
	{"h264ref", "soplex", "hmmer", "bzip2"}, // MIX0
	{"gcc", "gobmk", "gcc", "soplex"},       // MIX1
	{"bzip2", "lbm", "gobmk", "perlbench"},  // MIX2
	{"gcc", "bzip2", "tonto", "cactusADM"},  // MIX3
	{"perlbench", "wrf", "gobmk", "gcc"},    // MIX4
	{"omnetpp", "bzip2", "bzip2", "gobmk"},  // MIX5
	{"gcc", "tonto", "gamess", "cactusADM"}, // MIX6
	{"gcc", "wrf", "gcc", "bzip2"},          // MIX7
}
