package stats

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders one column of the table as a horizontal ASCII bar
// chart, the terminal rendition of the paper's figures. Bars scale to
// the column maximum; NaN rows are skipped.
func (t *Table) Chart(col string) string {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		return fmt.Sprintf("(no column %q)\n", col)
	}
	max := 0.0
	for _, r := range t.rows {
		if v := t.data[r][ci]; !math.IsNaN(v) && v > max {
			max = v
		}
	}
	if max <= 0 {
		return "(no data)\n"
	}
	rowW := 10
	for _, r := range t.rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	const width = 48
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.Title, col)
	for _, r := range t.rows {
		v := t.data[r][ci]
		if math.IsNaN(v) {
			continue
		}
		n := int(v / max * width)
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s |%-*s %8.3f\n", rowW, r, width, strings.Repeat("#", n), v)
	}
	return b.String()
}

// ChartAll renders every column as a grouped chart: per row, one bar
// per column, labeled — useful for scheme-comparison figures.
func (t *Table) ChartAll() string {
	max := 0.0
	for _, r := range t.rows {
		for _, v := range t.data[r] {
			if !math.IsNaN(v) && v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		return "(no data)\n"
	}
	colW := 8
	for _, c := range t.Columns {
		if len(c) > colW {
			colW = len(c)
		}
	}
	const width = 40
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%s\n", r)
		for i, c := range t.Columns {
			v := t.data[r][i]
			if math.IsNaN(v) {
				continue
			}
			n := int(v / max * width)
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "  %-*s |%-*s %8.3f\n", colW, c, width, strings.Repeat("#", n), v)
		}
	}
	return b.String()
}
