package stats

import (
	"math"
	"strings"
	"testing"
)

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 1 {
		t.Fatal("empty ratio should be 1")
	}
	r.Add(512, 64)
	r.Add(512, 64)
	if r.Value() != 8 {
		t.Fatalf("ratio = %v, want 8", r.Value())
	}
	var o Ratio
	o.Add(512, 512)
	r.Merge(o)
	if math.Abs(r.Value()-1536.0/640) > 1e-12 {
		t.Fatalf("merged ratio = %v", r.Value())
	}
}

func TestMeans(t *testing.T) {
	xs := []float64{2, 8}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if GeoMean(xs) != 4 {
		t.Fatalf("geomean = %v", GeoMean(xs))
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty means should be 0")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("non-positive geomean should be 0")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Fig X", "a", "b")
	tb.Set("r1", "a", 1)
	tb.Set("r1", "b", 2)
	tb.Set("r2", "a", 3)
	if got := tb.Get("r1", "b"); got != 2 {
		t.Fatalf("Get = %v", got)
	}
	if !math.IsNaN(tb.Get("r2", "b")) {
		t.Fatal("unset cell should be NaN")
	}
	if !math.IsNaN(tb.Get("zzz", "a")) {
		t.Fatal("unknown row should be NaN")
	}
	tb.AddMeanRow("mean")
	if got := tb.Get("mean", "a"); got != 2 {
		t.Fatalf("mean a = %v, want 2", got)
	}
	if got := tb.Get("mean", "b"); got != 2 {
		t.Fatalf("mean b = %v, want 2 (NaN ignored)", got)
	}
	s := tb.String()
	for _, want := range []string{"Fig X", "r1", "r2", "mean", "2.000"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTableSortRows(t *testing.T) {
	tb := NewTable("s", "v")
	tb.Set("big", "v", 9)
	tb.Set("small", "v", 1)
	tb.Set("mid", "v", 5)
	tb.SortRows("v")
	rows := tb.Rows()
	if rows[0] != "small" || rows[2] != "big" {
		t.Fatalf("sorted rows = %v", rows)
	}
	tb.SortRows("nope") // unknown column: no-op
	if got := tb.Rows(); got[0] != "small" {
		t.Fatalf("unknown column sort changed order: %v", got)
	}
}

func TestTableUnknownColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("t", "a").Set("r", "zzz", 1)
}

func TestChart(t *testing.T) {
	tb := NewTable("Fig X", "ratio")
	tb.Set("alpha", "ratio", 4)
	tb.Set("beta", "ratio", 2)
	tb.Set("gamma", "ratio", 0) // zero-length bar, still listed
	s := tb.Chart("ratio")
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "####") {
		t.Fatalf("chart missing bars:\n%s", s)
	}
	// alpha's bar must be about twice beta's.
	var alphaBar, betaBar int
	for _, line := range strings.Split(s, "\n") {
		n := strings.Count(line, "#")
		if strings.HasPrefix(line, "alpha") {
			alphaBar = n
		}
		if strings.HasPrefix(line, "beta") {
			betaBar = n
		}
	}
	if alphaBar != 2*betaBar {
		t.Fatalf("bar scaling wrong: alpha=%d beta=%d", alphaBar, betaBar)
	}
	if got := tb.Chart("nope"); !strings.Contains(got, "no column") {
		t.Fatalf("unknown column: %q", got)
	}
	empty := NewTable("E", "v")
	if got := empty.Chart("v"); !strings.Contains(got, "no data") {
		t.Fatalf("empty chart: %q", got)
	}
}

func TestChartAll(t *testing.T) {
	tb := NewTable("Grouped", "a", "b")
	tb.Set("row1", "a", 1)
	tb.Set("row1", "b", 3)
	s := tb.ChartAll()
	for _, want := range []string{"Grouped", "row1", "a", "b"} {
		if !strings.Contains(s, want) {
			t.Fatalf("grouped chart missing %q:\n%s", want, s)
		}
	}
	if got := NewTable("E", "v").ChartAll(); !strings.Contains(got, "no data") {
		t.Fatalf("empty grouped chart: %q", got)
	}
}
