// Package stats provides the accumulators and table formatting used by
// the experiment drivers to report paper-style results.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Ratio tracks an uncompressed/compressed pair.
type Ratio struct {
	SourceBits uint64
	WireBits   uint64
}

// Add accumulates one transfer.
func (r *Ratio) Add(sourceBits, wireBits int) {
	r.SourceBits += uint64(sourceBits)
	r.WireBits += uint64(wireBits)
}

// Merge folds another accumulator in.
func (r *Ratio) Merge(o Ratio) {
	r.SourceBits += o.SourceBits
	r.WireBits += o.WireBits
}

// Value returns uncompressed ÷ compressed (the paper's metric).
func (r Ratio) Value() float64 {
	if r.WireBits == 0 {
		return 1
	}
	return float64(r.SourceBits) / float64(r.WireBits)
}

// Mean is the arithmetic mean of xs (the paper reports arithmetic
// averages of per-benchmark ratios).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean is the geometric mean, reported alongside for robustness.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Table is a simple named-rows × named-columns float table that renders
// in the fixed-width style of the paper's figures.
type Table struct {
	Title   string
	Columns []string
	rows    []string
	data    map[string][]float64
}

// NewTable creates a table with the given columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns, data: map[string][]float64{}}
}

// Set stores a cell; rows appear in first-set order.
func (t *Table) Set(row, col string, v float64) {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		panic(fmt.Sprintf("stats: unknown column %q in table %q", col, t.Title))
	}
	if _, ok := t.data[row]; !ok {
		t.rows = append(t.rows, row)
		t.data[row] = make([]float64, len(t.Columns))
		for i := range t.data[row] {
			t.data[row][i] = math.NaN()
		}
	}
	t.data[row][ci] = v
}

// Get reads a cell (NaN when unset).
func (t *Table) Get(row, col string) float64 {
	for i, c := range t.Columns {
		if c == col {
			if vs, ok := t.data[row]; ok {
				return vs[i]
			}
		}
	}
	return math.NaN()
}

// Rows returns row names in insertion order.
func (t *Table) Rows() []string { return append([]string(nil), t.rows...) }

// AddMeanRow appends a "mean" row averaging every column over the
// current rows (ignoring NaNs).
func (t *Table) AddMeanRow(name string) {
	means := make([]float64, len(t.Columns))
	counts := make([]int, len(t.Columns))
	for _, r := range t.rows {
		for i, v := range t.data[r] {
			if !math.IsNaN(v) {
				means[i] += v
				counts[i]++
			}
		}
	}
	for i := range means {
		if counts[i] > 0 {
			means[i] /= float64(counts[i])
		} else {
			means[i] = math.NaN()
		}
	}
	t.rows = append(t.rows, name)
	t.data[name] = means
}

// SortRows orders rows by a column, ascending.
func (t *Table) SortRows(col string) {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		return
	}
	sort.SliceStable(t.rows, func(a, b int) bool {
		return t.data[t.rows[a]][ci] < t.data[t.rows[b]][ci]
	})
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", t.Title)
	rowW := 12
	for _, r := range t.rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	fmt.Fprintf(&b, "%-*s", rowW+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", rowW+2, r)
		for _, v := range t.data[r] {
			if math.IsNaN(v) {
				fmt.Fprintf(&b, "%12s", "-")
			} else {
				fmt.Fprintf(&b, "%12.3f", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
