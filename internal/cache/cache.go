// Package cache models the set-associative, coherent caches between
// which CABLE compresses traffic: the on-chip LLC, the off-chip L4
// (DRAM buffer), and per-node LLCs in a multi-chip system. The model is
// functional (contents + states + LRU), with precise eviction and
// way-replacement information — the inputs CABLE's synchronization
// depends on (§III-F).
package cache

import (
	"fmt"
	"math/bits"
)

// State is a cache-coherence state. CABLE only uses lines in Shared
// state as dictionary references: Modified lines can change silently and
// would corrupt decompression (§II-A).
type State uint8

// Coherence states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// LineID identifies a cache line by physical position — index + way —
// the compact pointer representation CABLE transmits instead of tags
// (§III-D). A LineID is only meaningful relative to a specific cache
// geometry.
type LineID struct {
	Index int
	Way   int
}

// Line is one cache entry.
type Line struct {
	Tag   uint64 // line address / number of sets
	State State
	Data  []byte
	lru   uint64
	valid bool
}

// Valid reports whether the entry holds a line.
func (l *Line) Valid() bool { return l.valid }

// Policy selects the replacement policy. CABLE is decoupled from the
// policy (§II-C): it tracks evictions precisely via the per-request
// way-replacement info, whatever chose the way.
type Policy uint8

// Replacement policies.
const (
	// PolicyLRU is least-recently-used (the default).
	PolicyLRU Policy = iota
	// PolicyFIFO evicts the oldest insertion regardless of reuse.
	PolicyFIFO
	// PolicyRandom picks a pseudo-random way (deterministic xorshift,
	// seeded per cache, so runs stay reproducible).
	PolicyRandom
)

// Config describes a cache geometry.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineSize  int
	// Policy defaults to PolicyLRU.
	Policy Policy
}

// Validate checks the geometry is a usable power-of-two layout.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry %+v", c.Name, c)
	}
	if c.SizeBytes%(c.Ways*c.LineSize) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*line %d", c.Name, c.SizeBytes, c.Ways*c.LineSize)
	}
	sets := c.SizeBytes / (c.Ways * c.LineSize)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: %d sets not a power of two", c.Name, sets)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// DataReads counts data-array reads done on behalf of CABLE's
	// search/decompress (reference fetches), for the energy model.
	DataReads uint64
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	cfg     Config
	sets    [][]Line
	backing *backing
	tick    uint64
	rng     uint64 // xorshift state for PolicyRandom

	// Stats accumulates event counts; callers may reset it.
	Stats Stats
}

// rngSeed is the initial xorshift state for PolicyRandom; Reset rewinds
// to it so a reused cache replays the same way choices as a fresh one.
const rngSeed = 0x9E3779B97F4A7C15

// New builds a cache; it panics on invalid geometry (a configuration
// bug, not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.SizeBytes / (cfg.Ways * cfg.LineSize)
	// One contiguous backing array for all lines (sets are views into
	// it) plus one contiguous data arena, both drawn from the geometry
	// pool — see pool.go. This collapses the per-set and per-line
	// allocations of large caches into recycled slabs.
	b := getBacking(n, cfg.Ways, cfg.LineSize)
	return &Cache{cfg: cfg, sets: b.sets, backing: b, rng: rngSeed}
}

// Reset invalidates every line and rewinds replacement state and stats
// to a fresh cache's, keeping the backing arrays (and each slot's data
// buffer) for reuse. Callers cannot distinguish a Reset cache from a
// newly built one of the same geometry.
func (c *Cache) Reset() {
	for idx := range c.sets {
		for w := range c.sets[idx] {
			l := &c.sets[idx][w]
			*l = Line{Data: l.Data[:0]}
		}
	}
	c.tick = 0
	c.rng = rngSeed
	c.Stats = Stats{}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// NumLines returns the total line capacity.
func (c *Cache) NumLines() int { return len(c.sets) * c.cfg.Ways }

// IndexBits returns the number of set-index bits.
func (c *Cache) IndexBits() int { return bits.Len(uint(len(c.sets))) - 1 }

// WayBits returns the number of way bits.
func (c *Cache) WayBits() int {
	b := bits.Len(uint(c.cfg.Ways)) - 1
	if 1<<uint(b) < c.cfg.Ways {
		b++
	}
	return b
}

// LineIDBits is the transmitted width of a LineID for this geometry —
// 17 bits for the paper's 8-way 8 MB LLC (Table III).
func (c *Cache) LineIDBits() int { return c.IndexBits() + c.WayBits() }

// IndexOf maps a line address to its set index.
func (c *Cache) IndexOf(lineAddr uint64) int {
	return int(lineAddr & uint64(len(c.sets)-1))
}

// TagOf maps a line address to its tag.
func (c *Cache) TagOf(lineAddr uint64) uint64 {
	return lineAddr >> uint(c.IndexBits())
}

// AddrOf reconstructs a line address from tag and index.
func (c *Cache) AddrOf(tag uint64, index int) uint64 {
	return tag<<uint(c.IndexBits()) | uint64(index)
}

// Probe looks up a line without touching LRU state or stats.
func (c *Cache) Probe(lineAddr uint64) (*Line, LineID, bool) {
	idx := c.IndexOf(lineAddr)
	tag := c.TagOf(lineAddr)
	for w := range c.sets[idx] {
		l := &c.sets[idx][w]
		if l.valid && l.Tag == tag {
			return l, LineID{Index: idx, Way: w}, true
		}
	}
	return nil, LineID{}, false
}

// Access looks up a line, updating LRU and hit/miss stats.
func (c *Cache) Access(lineAddr uint64) (*Line, LineID, bool) {
	c.Stats.Accesses++
	l, id, ok := c.Probe(lineAddr)
	if ok {
		if c.cfg.Policy == PolicyLRU {
			c.tick++
			l.lru = c.tick
		}
		c.Stats.Hits++
		return l, id, true
	}
	c.Stats.Misses++
	return nil, LineID{}, false
}

// VictimWay returns the way that an insertion into idx would replace —
// the way-replacement info that remote caches embed in requests so the
// home cache can track displacements (§II-C). Invalid ways win first.
// VictimWay is idempotent between insertions so a request's embedded
// way info always matches where the fill lands, under every policy.
func (c *Cache) VictimWay(idx int) int {
	victim, oldest := 0, ^uint64(0)
	for w := range c.sets[idx] {
		l := &c.sets[idx][w]
		if !l.valid {
			return w
		}
		if l.lru < oldest {
			oldest, victim = l.lru, w
		}
	}
	if c.cfg.Policy == PolicyRandom {
		// Hash the deterministic state with the set index so the
		// choice is stable until the next insertion into this set.
		x := c.rng ^ uint64(idx)*0x9E3779B97F4A7C15
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(c.cfg.Ways))
	}
	return victim
}

// Eviction describes a line displaced by an insertion.
type Eviction struct {
	LineAddr uint64
	State    State
	Data     []byte
	ID       LineID
}

// InsertAt installs a line at an explicit way and returns the displaced
// line, if any. The data slice is copied into the slot's reused buffer
// (an Eviction's Data is a fresh copy — eviction buffers retain it).
func (c *Cache) InsertAt(lineAddr uint64, data []byte, st State, way int) (Eviction, bool) {
	if len(data) != c.cfg.LineSize {
		panic(fmt.Sprintf("cache %q: insert of %dB line, want %dB", c.cfg.Name, len(data), c.cfg.LineSize))
	}
	idx := c.IndexOf(lineAddr)
	var ev Eviction
	evicted := false
	l := &c.sets[idx][way]
	if l.valid {
		c.Stats.Evictions++
		ev = Eviction{
			LineAddr: c.AddrOf(l.Tag, idx),
			State:    l.State,
			Data:     append([]byte(nil), l.Data...),
			ID:       LineID{Index: idx, Way: way},
		}
		evicted = true
	}
	c.tick++
	c.rng += 0x2545F4914F6CDD1D // advance PolicyRandom state per insertion
	buf := l.Data
	if cap(buf) >= c.cfg.LineSize {
		buf = buf[:c.cfg.LineSize]
	} else {
		buf = make([]byte, c.cfg.LineSize)
	}
	copy(buf, data)
	*l = Line{Tag: c.TagOf(lineAddr), State: st, Data: buf, lru: c.tick, valid: true}
	return ev, evicted
}

// OverwriteAt installs a line at an explicit way without materializing
// the displaced line: the previous occupant (if any) still counts as an
// eviction, but its data is not copied out — the allocation-free
// sibling of InsertAt for callers that track victims themselves (via
// LineAddrOf before overwriting) or do not need them. Replacement state
// advances exactly as InsertAt's does, so interleaving the two keeps
// policy decisions identical.
func (c *Cache) OverwriteAt(lineAddr uint64, data []byte, st State, way int) {
	if len(data) != c.cfg.LineSize {
		panic(fmt.Sprintf("cache %q: overwrite of %dB line, want %dB", c.cfg.Name, len(data), c.cfg.LineSize))
	}
	idx := c.IndexOf(lineAddr)
	l := &c.sets[idx][way]
	if l.valid {
		c.Stats.Evictions++
	}
	c.tick++
	c.rng += 0x2545F4914F6CDD1D
	buf := l.Data
	if cap(buf) >= c.cfg.LineSize {
		buf = buf[:c.cfg.LineSize]
	} else {
		buf = make([]byte, c.cfg.LineSize)
	}
	copy(buf, data)
	*l = Line{Tag: c.TagOf(lineAddr), State: st, Data: buf, lru: c.tick, valid: true}
}

// Insert installs a line at the LRU victim way.
func (c *Cache) Insert(lineAddr uint64, data []byte, st State) (Eviction, bool) {
	return c.InsertAt(lineAddr, data, st, c.VictimWay(c.IndexOf(lineAddr)))
}

// Invalidate removes a line if present, returning its previous content.
func (c *Cache) Invalidate(lineAddr uint64) (Eviction, bool) {
	l, id, ok := c.Probe(lineAddr)
	if !ok {
		return Eviction{}, false
	}
	ev := Eviction{LineAddr: lineAddr, State: l.State, Data: append([]byte(nil), l.Data...), ID: id}
	buf := l.Data[:0] // keep the slot buffer for the next insert
	*l = Line{Data: buf}
	return ev, true
}

// ReadByID reads the data array directly by position, without a tag
// check — the cheap access CABLE's search step uses for reference
// candidates (§III-C). It returns nil for an invalid entry.
func (c *Cache) ReadByID(id LineID) *Line {
	if id.Index < 0 || id.Index >= len(c.sets) || id.Way < 0 || id.Way >= c.cfg.Ways {
		return nil
	}
	c.Stats.DataReads++
	l := &c.sets[id.Index][id.Way]
	if !l.valid {
		return nil
	}
	return l
}

// LineAddrOf returns the line address stored at id, if valid.
func (c *Cache) LineAddrOf(id LineID) (uint64, bool) {
	if id.Index < 0 || id.Index >= len(c.sets) || id.Way < 0 || id.Way >= c.cfg.Ways {
		return 0, false
	}
	l := &c.sets[id.Index][id.Way]
	if !l.valid {
		return 0, false
	}
	return c.AddrOf(l.Tag, id.Index), true
}

// ForEach visits every valid line.
func (c *Cache) ForEach(fn func(lineAddr uint64, id LineID, l *Line)) {
	for idx := range c.sets {
		for w := range c.sets[idx] {
			l := &c.sets[idx][w]
			if l.valid {
				fn(c.AddrOf(l.Tag, idx), LineID{Index: idx, Way: w}, l)
			}
		}
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	c.ForEach(func(uint64, LineID, *Line) { n++ })
	return n
}
