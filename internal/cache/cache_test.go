package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testCache(t testing.TB) *Cache {
	t.Helper()
	return New(Config{Name: "test", SizeBytes: 8 << 10, Ways: 4, LineSize: 64})
}

func line64(b byte) []byte {
	d := make([]byte, 64)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero", SizeBytes: 0, Ways: 4, LineSize: 64},
		{Name: "odd", SizeBytes: 1000, Ways: 4, LineSize: 64},
		{Name: "nonpow2sets", SizeBytes: 3 * 4 * 64, Ways: 4, LineSize: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.Name)
		}
	}
	good := Config{Name: "ok", SizeBytes: 1 << 20, Ways: 8, LineSize: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometry(t *testing.T) {
	// Paper Table III: 8-way 8MB LLC with 64B lines → 17-bit LineIDs.
	c := New(Config{Name: "llc", SizeBytes: 8 << 20, Ways: 8, LineSize: 64})
	if c.NumSets() != 16384 {
		t.Fatalf("sets = %d, want 16384", c.NumSets())
	}
	if c.IndexBits() != 14 || c.WayBits() != 3 {
		t.Fatalf("index/way bits = %d/%d, want 14/3", c.IndexBits(), c.WayBits())
	}
	if c.LineIDBits() != 17 {
		t.Fatalf("LineIDBits = %d, want 17 (paper Table III)", c.LineIDBits())
	}
	// 16-way 16MB DRAM buffer → 18-bit HomeLIDs (§IV-D).
	l4 := New(Config{Name: "l4", SizeBytes: 16 << 20, Ways: 16, LineSize: 64})
	if l4.LineIDBits() != 18 {
		t.Fatalf("L4 LineIDBits = %d, want 18", l4.LineIDBits())
	}
}

func TestAddrRoundTrip(t *testing.T) {
	c := testCache(t)
	f := func(lineAddr uint64) bool {
		lineAddr &= (1 << 40) - 1
		idx := c.IndexOf(lineAddr)
		tag := c.TagOf(lineAddr)
		return c.AddrOf(tag, idx) == lineAddr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertLookup(t *testing.T) {
	c := testCache(t)
	if _, _, ok := c.Access(100); ok {
		t.Fatal("hit in empty cache")
	}
	c.Insert(100, line64(0xAA), Shared)
	l, id, ok := c.Access(100)
	if !ok {
		t.Fatal("miss after insert")
	}
	if l.State != Shared || l.Data[0] != 0xAA {
		t.Fatalf("wrong line: %v %x", l.State, l.Data[0])
	}
	if got := c.ReadByID(id); got == nil || got.Data[0] != 0xAA {
		t.Fatal("ReadByID disagrees with Access")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestInsertCopiesData(t *testing.T) {
	c := testCache(t)
	d := line64(1)
	c.Insert(7, d, Shared)
	d[0] = 99
	l, _, _ := c.Probe(7)
	if l.Data[0] != 1 {
		t.Fatal("Insert must copy the data slice")
	}
}

func TestLRUEviction(t *testing.T) {
	c := testCache(t) // 32 sets, 4 ways
	sets := uint64(c.NumSets())
	// Fill one set: addresses with the same index.
	for i := uint64(0); i < 4; i++ {
		if _, ev := c.Insert(5+i*sets, line64(byte(i)), Shared); ev {
			t.Fatalf("unexpected eviction filling ways (%d)", i)
		}
	}
	// Touch line 0 so line 1 becomes LRU.
	c.Access(5 + 0*sets)
	ev, evicted := c.Insert(5+9*sets, line64(9), Shared)
	if !evicted {
		t.Fatal("expected an eviction from a full set")
	}
	if ev.LineAddr != 5+1*sets {
		t.Fatalf("evicted %d, want LRU line %d", ev.LineAddr, 5+sets)
	}
	if ev.Data[0] != 1 {
		t.Fatalf("eviction carries wrong data %x", ev.Data[0])
	}
}

func TestVictimWayPrefersInvalid(t *testing.T) {
	c := testCache(t)
	c.Insert(3, line64(0), Shared)
	idx := c.IndexOf(3)
	w := c.VictimWay(idx)
	if w == 0 {
		// way 0 holds the only valid line; victim must be another way
		t.Fatal("victim should be an invalid way")
	}
}

func TestVictimWayMatchesInsert(t *testing.T) {
	// The way-replacement info a remote cache sends must predict
	// exactly where Insert will place the line (§IV-B).
	c := testCache(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		addr := uint64(rng.Intn(512))
		idx := c.IndexOf(addr)
		if _, _, hit := c.Access(addr); hit {
			continue
		}
		predicted := c.VictimWay(idx)
		c.Insert(addr, line64(byte(i)), Shared)
		_, id, ok := c.Probe(addr)
		if !ok || id.Way != predicted {
			t.Fatalf("iter %d: inserted at way %d, predicted %d", i, id.Way, predicted)
		}
	}
}

func TestInvalidate(t *testing.T) {
	c := testCache(t)
	c.Insert(42, line64(7), Modified)
	ev, ok := c.Invalidate(42)
	if !ok || ev.State != Modified || ev.Data[0] != 7 {
		t.Fatalf("invalidate returned %+v, %v", ev, ok)
	}
	if _, _, hit := c.Probe(42); hit {
		t.Fatal("line still present after invalidate")
	}
	if _, ok := c.Invalidate(42); ok {
		t.Fatal("second invalidate should miss")
	}
}

func TestReadByIDBounds(t *testing.T) {
	c := testCache(t)
	for _, id := range []LineID{{-1, 0}, {0, -1}, {c.NumSets(), 0}, {0, 99}} {
		if c.ReadByID(id) != nil {
			t.Fatalf("out-of-range id %v returned a line", id)
		}
	}
	if c.ReadByID(LineID{0, 0}) != nil {
		t.Fatal("invalid entry should read as nil")
	}
}

func TestLineAddrOf(t *testing.T) {
	c := testCache(t)
	c.Insert(1234, line64(0), Shared)
	_, id, _ := c.Probe(1234)
	got, ok := c.LineAddrOf(id)
	if !ok || got != 1234 {
		t.Fatalf("LineAddrOf = %d,%v want 1234,true", got, ok)
	}
}

func TestForEachAndOccupancy(t *testing.T) {
	c := testCache(t)
	for i := uint64(0); i < 10; i++ {
		c.Insert(i, line64(byte(i)), Shared)
	}
	if got := c.Occupancy(); got != 10 {
		t.Fatalf("occupancy = %d, want 10", got)
	}
	seen := map[uint64]bool{}
	c.ForEach(func(addr uint64, id LineID, l *Line) { seen[addr] = true })
	if len(seen) != 10 {
		t.Fatalf("ForEach visited %d lines", len(seen))
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	c := testCache(t)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		c.Insert(uint64(rng.Intn(4096)), line64(byte(i)), Shared)
		if c.Occupancy() > c.NumLines() {
			t.Fatal("occupancy exceeds capacity")
		}
	}
	if c.Occupancy() != c.NumLines() {
		t.Fatalf("cache should be full: %d/%d", c.Occupancy(), c.NumLines())
	}
}

// Property: after any sequence of inserts, at most one copy of each
// line address exists (no tag duplicated within a set).
func TestNoDuplicateTags(t *testing.T) {
	f := func(seed int64) bool {
		c := New(Config{Name: "q", SizeBytes: 4 << 10, Ways: 4, LineSize: 64})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(256))
			if _, _, hit := c.Access(addr); !hit {
				c.Insert(addr, line64(byte(i)), Shared)
			}
		}
		seen := map[uint64]int{}
		c.ForEach(func(addr uint64, _ LineID, _ *Line) { seen[addr]++ })
		for _, n := range seen {
			if n > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", State(9): "?"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{Name: "bench", SizeBytes: 1 << 20, Ways: 8, LineSize: 64})
	for i := uint64(0); i < 1024; i++ {
		c.Insert(i, line64(byte(i)), Shared)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) & 1023)
	}
}

func TestPolicyFIFO(t *testing.T) {
	c := New(Config{Name: "fifo", SizeBytes: 8 << 10, Ways: 4, LineSize: 64, Policy: PolicyFIFO})
	sets := uint64(c.NumSets())
	for i := uint64(0); i < 4; i++ {
		c.Insert(3+i*sets, line64(byte(i)), Shared)
	}
	// Touching line 0 must NOT save it under FIFO.
	c.Access(3 + 0*sets)
	ev, evicted := c.Insert(3+9*sets, line64(9), Shared)
	if !evicted || ev.LineAddr != 3+0*sets {
		t.Fatalf("FIFO should evict the oldest insertion, got %#x", ev.LineAddr)
	}
}

func TestPolicyRandomDeterministicAndStable(t *testing.T) {
	mk := func() *Cache {
		return New(Config{Name: "rnd", SizeBytes: 8 << 10, Ways: 4, LineSize: 64, Policy: PolicyRandom})
	}
	a, b := mk(), mk()
	for i := 0; i < 500; i++ {
		addr := uint64(i*37) % 512
		if wa, wb := a.VictimWay(a.IndexOf(addr)), b.VictimWay(b.IndexOf(addr)); wa != wb {
			t.Fatalf("iter %d: random policy not deterministic (%d vs %d)", i, wa, wb)
		}
		a.Insert(addr, line64(byte(i)), Shared)
		b.Insert(addr, line64(byte(i)), Shared)
	}
	// Stability: repeated VictimWay calls without insertions agree.
	c := mk()
	for i := uint64(0); i < 8; i++ {
		c.Insert(i*uint64(c.NumSets()), line64(1), Shared) // fill set 0
	}
	w1 := c.VictimWay(0)
	w2 := c.VictimWay(0)
	if w1 != w2 {
		t.Fatalf("VictimWay not stable between insertions: %d vs %d", w1, w2)
	}
}

func TestPolicyRandomSpreadsWays(t *testing.T) {
	c := New(Config{Name: "rnd", SizeBytes: 8 << 10, Ways: 4, LineSize: 64, Policy: PolicyRandom})
	// Fill set 0 so no invalid way short-circuits.
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*uint64(c.NumSets()), line64(1), Shared)
	}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		w := c.VictimWay(0)
		seen[w] = true
		c.InsertAt(uint64(i+10)*uint64(c.NumSets()), line64(2), Shared, w)
	}
	if len(seen) < 3 {
		t.Fatalf("random policy used only %d distinct ways", len(seen))
	}
}
