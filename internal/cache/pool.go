package cache

import "sync"

// A cache's line array plus its data arena is by far the largest
// allocation a simulation cell makes (MBs at paper geometries), and
// parallel cells build and drop caches constantly. backing bundles the
// two so Release can recycle them together; New draws from the pool
// keyed by geometry.
type backing struct {
	lines []Line
	sets  [][]Line
	// data is the contiguous arena the slots' Data buffers point into:
	// line i owns data[i*lineSize : (i+1)*lineSize], handed out as a
	// zero-length slice capped at the line size so InsertAt's capacity
	// check reuses it forever without allocating.
	data []byte
}

type backingKey struct {
	lines    int // total line count
	ways     int
	lineSize int
}

var backingPools sync.Map // backingKey -> *sync.Pool of *backing

// getBacking returns a reset backing for the geometry: every Line is
// zeroed with its Data pointed at its arena slot. Arena bytes are not
// zeroed — a slot's data is fully overwritten before its length grows.
func getBacking(sets, ways, lineSize int) *backing {
	total := sets * ways
	key := backingKey{lines: total, ways: ways, lineSize: lineSize}
	var b *backing
	if c, ok := backingPools.Load(key); ok {
		if v := c.(*sync.Pool).Get(); v != nil {
			b = v.(*backing)
		}
	}
	if b == nil {
		b = &backing{
			lines: make([]Line, total),
			sets:  make([][]Line, sets),
			data:  make([]byte, total*lineSize),
		}
		for i := range b.sets {
			b.sets[i] = b.lines[i*ways : (i+1)*ways : (i+1)*ways]
		}
	}
	for i := range b.lines {
		b.lines[i] = Line{Data: b.data[i*lineSize : i*lineSize : (i+1)*lineSize]}
	}
	return b
}

func putBacking(b *backing, lineSize int) {
	if b == nil || len(b.lines) == 0 {
		return
	}
	key := backingKey{lines: len(b.lines), ways: len(b.lines) / len(b.sets), lineSize: lineSize}
	c, ok := backingPools.Load(key)
	if !ok {
		c, _ = backingPools.LoadOrStore(key, &sync.Pool{})
	}
	c.(*sync.Pool).Put(b)
}

// Release returns the cache's line backing to the geometry pool. The
// cache is unusable afterwards; callers must guarantee nothing retains
// pointers into it (Line pointers, Data slices, the sets views).
func (c *Cache) Release() {
	if c.backing == nil {
		return
	}
	putBacking(c.backing, c.cfg.LineSize)
	c.backing = nil
	c.sets = nil
}
