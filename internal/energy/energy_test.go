package energy

import (
	"math"
	"testing"
)

func TestTableIIScales(t *testing.T) {
	// Table II: cache access 2×, IO link 300×, DRAM ~1000× CPACK.
	if CacheAccessPJ/CPackCompressPJ != 2 {
		t.Fatal("cache access should be 2× CPACK")
	}
	if IOLinkPJ/CPackCompressPJ != 300 {
		t.Fatal("IO link should be 300× CPACK")
	}
	if DRAMAccessPJ/CPackCompressPJ != 1012 {
		t.Fatalf("DRAM should be ≈1000× CPACK, got %d×", DRAMAccessPJ/CPackCompressPJ)
	}
}

func TestWorstCaseRequestEnergyBelowLink(t *testing.T) {
	// §IV-D: worst-case CABLE energy ≈1.6nJ per request, about 1/10
	// of an off-chip transfer (15nJ).
	p := Default()
	nineReads := 9 * 100e-12 // nine cache reads at ~100pJ (Table II)
	comp := p.CompJ + p.DecompJ
	worst := nineReads + comp
	if worst > 2.2e-9 {
		t.Fatalf("worst-case request energy %.2g J too high", worst)
	}
	if worst > float64(IOLinkPJ)*1e-12/5 {
		t.Fatalf("request energy %.2g not ≪ link energy", worst)
	}
}

func TestComputeBreakdown(t *testing.T) {
	p := Default()
	c := Counts{
		Seconds:     1e-3,
		L1Accesses:  1000,
		LLCAccesses: 100,
		BufAccesses: 50,
		DRAMAccess:  10,
		LinkBytes:   6400, // 100 transfers
		CompOps:     100,
		DecompOps:   100,
	}
	b := p.Compute(c, 600)
	wantStatic := 1e-3 * (7 + 20 + 169.7 + 22) * 1e-3
	if math.Abs(b.SRAMStatic-wantStatic) > 1e-12 {
		t.Fatalf("static = %g, want %g", b.SRAMStatic, wantStatic)
	}
	wantLink := 100 * 25e-9
	if math.Abs(b.Link-wantLink) > 1e-15 {
		t.Fatalf("link = %g, want %g", b.Link, wantLink)
	}
	if math.Abs(b.DRAM-10*50.6e-9) > 1e-15 {
		t.Fatalf("dram = %g", b.DRAM)
	}
	if math.Abs(b.CompEngine-100*(1000e-12+200e-12)) > 1e-15 {
		t.Fatalf("comp = %g", b.CompEngine)
	}
	if b.CompSRAM <= 0 {
		t.Fatal("comp SRAM reads must cost energy")
	}
	if b.Total() <= b.Link {
		t.Fatal("total must exceed any component")
	}
}

func TestLinkDominatesCompression(t *testing.T) {
	// The paper's core energy argument: saving a 64B transfer (25nJ)
	// dwarfs the compression spent to save it (1.2nJ + reads).
	p := Default()
	saved := p.LinkPer64BJ
	spent := p.CompJ + p.DecompJ + 9*p.BufDynJ
	if spent*5 > saved {
		t.Fatalf("compression %.3g J not ≪ link transfer %.3g J", spent, saved)
	}
}
