// Package energy implements the paper's power model (Table II and
// Table V): CACTI-derived static/dynamic cache energies, Micron-derived
// DRAM access energy, and the I/O link energy estimate of 25 nJ per
// 64-byte transfer (§VI-A). The Fig 18 breakdown applies these
// constants to event counts from the simulator.
package energy

// Table II relative scales (documentation constants, asserted in tests).
const (
	CPackCompressPJ = 50    // one CPACK compression
	CacheAccessPJ   = 100   // 1MB slice access
	IOLinkPJ        = 15000 // off-chip IO transfer (Table II)
	DRAMAccessPJ    = 50600 // one DRAM access
)

// Params holds the Table V / §VI-A model constants.
type Params struct {
	// Static power in watts.
	L1StaticW, L2StaticW, LLCStaticW, BufStaticW float64
	// Dynamic energy per access in joules.
	L1DynJ, L2DynJ, LLCDynJ, BufDynJ float64
	// CABLE+LBE compression/decompression per operation (Table V).
	CompJ, DecompJ float64
	// Link energy per 64-byte-equivalent transfer: estimated at 50%
	// of DRAM access energy (§VI-A), 25 nJ per 64 B.
	LinkPer64BJ float64
	// DRAM access energy (Micron DDR3 calculator).
	DRAMAccessJ float64
}

// Default returns the paper's constants.
func Default() Params {
	return Params{
		L1StaticW: 7.0e-3, L2StaticW: 20.0e-3, LLCStaticW: 169.7e-3, BufStaticW: 22.0e-3,
		L1DynJ: 61.0e-12, L2DynJ: 32.0e-12, LLCDynJ: 92.1e-12, BufDynJ: 149.4e-12,
		CompJ:       1000e-12,
		DecompJ:     200e-12,
		LinkPer64BJ: 25e-9,
		DRAMAccessJ: 50.6e-9,
	}
}

// Counts are the simulator event totals the model consumes.
type Counts struct {
	Seconds     float64 // simulated wall time (for static power)
	L1Accesses  uint64
	L2Accesses  uint64
	LLCAccesses uint64
	BufAccesses uint64 // DRAM-buffer (L4) accesses, incl. CABLE reads
	DRAMAccess  uint64
	LinkBytes   uint64 // on-wire bytes after compression
	CompOps     uint64 // compression operations (incl. ranking reads)
	DecompOps   uint64
}

// Breakdown is the Fig 18 energy decomposition in joules.
type Breakdown struct {
	SRAMStatic  float64
	SRAMDynamic float64
	Link        float64
	DRAM        float64
	CompEngine  float64
	CompSRAM    float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.SRAMStatic + b.SRAMDynamic + b.Link + b.DRAM + b.CompEngine + b.CompSRAM
}

// Compute applies the model. compSRAMReads is the number of extra
// data-array reads CABLE's search performs (eDRAM reference fetches).
func (p Params) Compute(c Counts, compSRAMReads uint64) Breakdown {
	return Breakdown{
		SRAMStatic: c.Seconds * (p.L1StaticW + p.L2StaticW + p.LLCStaticW + p.BufStaticW),
		SRAMDynamic: float64(c.L1Accesses)*p.L1DynJ + float64(c.L2Accesses)*p.L2DynJ +
			float64(c.LLCAccesses)*p.LLCDynJ + float64(c.BufAccesses)*p.BufDynJ,
		Link:       float64(c.LinkBytes) / 64 * p.LinkPer64BJ,
		DRAM:       float64(c.DRAMAccess) * p.DRAMAccessJ,
		CompEngine: float64(c.CompOps)*p.CompJ + float64(c.DecompOps)*p.DecompJ,
		CompSRAM:   float64(compSRAMReads) * p.BufDynJ,
	}
}
