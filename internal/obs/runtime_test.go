package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"runtime"
	rm "runtime/metrics"
	"strings"
	"testing"
)

// TestRuntimeGaugesPopulated: a scrape refresh fills the go.* volatile
// gauges with sane values and keeps them out of deterministic dumps.
func TestRuntimeGaugesPopulated(t *testing.T) {
	r := NewRegistry()
	runtime.GC() // guarantee at least one GC cycle and pause sample
	UpdateRuntimeGauges(r)

	if v := r.VolatileGauge("go.goroutines").Value(); v < 1 {
		t.Fatalf("go.goroutines = %d", v)
	}
	if v := r.VolatileGauge("go.heap_objects_bytes").Value(); v <= 0 {
		t.Fatalf("go.heap_objects_bytes = %d", v)
	}
	if v := r.VolatileGauge("go.total_bytes").Value(); v <= 0 {
		t.Fatalf("go.total_bytes = %d", v)
	}
	if v := r.VolatileGauge("go.gc_cycles").Value(); v < 1 {
		t.Fatalf("go.gc_cycles = %d after runtime.GC()", v)
	}
	if v := r.VolatileGauge("go.gc_pause_max_ns").Value(); v < 0 {
		t.Fatalf("go.gc_pause_max_ns = %d", v)
	}
	p50 := r.VolatileGauge("go.gc_pause_p50_ns").Value()
	max := r.VolatileGauge("go.gc_pause_max_ns").Value()
	if p50 > max {
		t.Fatalf("gc pause p50 %d > max %d", p50, max)
	}

	var det, vol bytes.Buffer
	if err := r.WriteJSON(&det, false); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&vol, true); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(det.Bytes(), []byte("go.goroutines")) {
		t.Fatal("runtime gauges leaked into the deterministic dump")
	}
	if !bytes.Contains(vol.Bytes(), []byte("go.goroutines")) {
		t.Fatal("runtime gauges missing from the volatile dump")
	}
}

// TestHistPercentile exercises the histogram helpers on a hand-built
// histogram with an infinite tail bucket.
func TestHistPercentile(t *testing.T) {
	h := &rm.Float64Histogram{
		Counts:  []uint64{10, 80, 10},
		Buckets: []float64{0, 1e-6, 1e-3, 1e9}, // 3 buckets: [0,1µs) [1µs,1ms) [1ms,...)
	}
	if got := histPercentileNs(h, 0.50); got != 1e6 { // lands in the middle bucket, upper bound 1ms
		t.Fatalf("p50 = %d ns, want 1e6", got)
	}
	if got := histMaxNs(h); got != 1e18 {
		t.Fatalf("max = %d ns, want 1e18", got)
	}
	empty := &rm.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if histPercentileNs(empty, 0.5) != 0 || histMaxNs(empty) != 0 {
		t.Fatal("empty histogram should read 0")
	}
	// ±Inf boundary falls back to the nearest finite bound.
	inf := &rm.Float64Histogram{
		Counts:  []uint64{1},
		Buckets: []float64{1e-6, math.Inf(1)},
	}
	if got := histMaxNs(inf); got != 1000 {
		t.Fatalf("inf-bounded max = %d ns, want 1000", got)
	}
}

// TestHandlerFlightEndpoints: /windows and /timeline serve the attached
// flight's volatile dumps, 404 without one; /health serves the
// dashboard; /metrics carries the runtime gauges.
func TestHandlerFlightEndpoints(t *testing.T) {
	r := NewRegistry()
	f := NewFlight(FlightConfig{Window: 4})
	rec := f.Recorder("cell-a")
	tr := rec.Track("cable")
	rec.Tick()
	rec.Transfer(tr, 512, 256, 8)
	f.MemoEvent(false)

	h := HandlerWith(r, f)
	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w
	}

	if w := get("/windows"); w.Code != 200 {
		t.Fatalf("/windows = %d", w.Code)
	} else {
		var d FlightWindowsDump
		if err := json.Unmarshal(w.Body.Bytes(), &d); err != nil {
			t.Fatalf("/windows not JSON: %v", err)
		}
		if len(d.Cells) != 1 || d.Cells[0].Cell != "cell-a" {
			t.Fatalf("/windows cells = %+v", d.Cells)
		}
	}
	if w := get("/timeline"); w.Code != 200 {
		t.Fatalf("/timeline = %d", w.Code)
	} else if !strings.Contains(w.Body.String(), "memo_events") {
		t.Fatal("/timeline (live) should carry volatile memo events")
	}
	if w := get("/health"); w.Code != 200 || !strings.Contains(w.Body.String(), "<html") {
		t.Fatalf("/health = %d, body %.60q", w.Code, w.Body.String())
	}
	if w := get("/metrics"); !strings.Contains(w.Body.String(), "go.goroutines") {
		t.Fatal("/metrics missing runtime gauges")
	}

	// Without a flight the endpoints 404 with a hint.
	bare := HandlerWith(r, nil)
	w := httptest.NewRecorder()
	bare.ServeHTTP(w, httptest.NewRequest("GET", "/windows", nil))
	if w.Code != 404 || !strings.Contains(w.Body.String(), "flight recorder not enabled") {
		t.Fatalf("bare /windows = %d %q", w.Code, w.Body.String())
	}
}
