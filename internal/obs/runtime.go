package obs

import (
	"math"
	"runtime"
	rm "runtime/metrics"
)

// This file surfaces Go runtime health — GC pauses, heap footprint,
// goroutine count, scheduler latency — as volatile gauges refreshed on
// each /metrics scrape. They describe the process hosting the
// simulation, not the simulated machine, so they are volatile by
// definition: excluded from deterministic dumps, visible live.

// runtimeSamples is the fixed runtime/metrics sample set, prepared once
// (names are validated against the runtime's registry on first use;
// unknown names read as KindBad and are skipped, keeping this forward-
// and backward-compatible across toolchains).
var runtimeSamples = []rm.Sample{
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/memory/classes/total:bytes"},
	{Name: "/gc/cycles/total:gc-cycles"},
	{Name: "/gc/pauses:seconds"},
	{Name: "/sched/latencies:seconds"},
}

// UpdateRuntimeGauges refreshes the go.* volatile gauges in r from
// runtime/metrics. Handler calls it on every /metrics scrape; tests
// and dashboards may call it directly. Durations are reported in
// nanoseconds, sizes in bytes.
func UpdateRuntimeGauges(r *Registry) {
	samples := make([]rm.Sample, len(runtimeSamples))
	copy(samples, runtimeSamples)
	rm.Read(samples)

	r.VolatileGauge("go.goroutines").Set(int64(runtime.NumGoroutine()))
	for _, s := range samples {
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == rm.KindUint64 {
				r.VolatileGauge("go.heap_objects_bytes").Set(int64(s.Value.Uint64()))
			}
		case "/memory/classes/total:bytes":
			if s.Value.Kind() == rm.KindUint64 {
				r.VolatileGauge("go.total_bytes").Set(int64(s.Value.Uint64()))
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == rm.KindUint64 {
				r.VolatileGauge("go.gc_cycles").Set(int64(s.Value.Uint64()))
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == rm.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				r.VolatileGauge("go.gc_pause_p50_ns").Set(histPercentileNs(h, 0.50))
				r.VolatileGauge("go.gc_pause_max_ns").Set(histMaxNs(h))
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == rm.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				r.VolatileGauge("go.sched_latency_p50_ns").Set(histPercentileNs(h, 0.50))
				r.VolatileGauge("go.sched_latency_p99_ns").Set(histPercentileNs(h, 0.99))
			}
		}
	}
}

// histPercentileNs estimates the p-quantile of a runtime seconds
// histogram in nanoseconds, using each bucket's upper bound (a
// conservative over-estimate). ±Inf bounds fall back to the nearest
// finite bound.
func histPercentileNs(h *rm.Float64Histogram, p float64) int64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			return boundNs(h, i+1)
		}
	}
	return boundNs(h, len(h.Buckets)-1)
}

// histMaxNs returns the upper bound of the highest non-empty bucket.
func histMaxNs(h *rm.Float64Histogram) int64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			return boundNs(h, i+1)
		}
	}
	return 0
}

// boundNs converts bucket boundary i to nanoseconds, stepping inward
// past ±Inf bounds.
func boundNs(h *rm.Float64Histogram, i int) int64 {
	if i < 0 || len(h.Buckets) == 0 {
		return 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	b := h.Buckets[i]
	for i > 0 && math.IsInf(b, +1) {
		i--
		b = h.Buckets[i]
	}
	if math.IsInf(b, -1) || math.IsNaN(b) || b < 0 {
		return 0
	}
	return int64(b * 1e9)
}
