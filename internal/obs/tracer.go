package obs

import "sync"

// EncodeClass is the outcome of one per-line encode decision — the
// classes whose per-benchmark mix explains the Fig 11/12 ordering.
type EncodeClass uint8

// Encode outcome classes.
const (
	ClassRaw        EncodeClass = iota // uncompressed fallback won
	ClassStandalone                    // compressed without references
	ClassDiff1                         // DIFF against 1 reference
	ClassDiff2                         // DIFF against 2 references
	ClassDiff3                         // DIFF against 3 references
	NumClasses
)

// String names the class for reports.
func (c EncodeClass) String() string {
	switch c {
	case ClassRaw:
		return "raw"
	case ClassStandalone:
		return "standalone"
	case ClassDiff1:
		return "diff-1ref"
	case ClassDiff2:
		return "diff-2ref"
	case ClassDiff3:
		return "diff-3ref"
	}
	return "unknown"
}

// DiffClass returns the class for a DIFF outcome with n references
// (n in 1..3).
func DiffClass(n int) EncodeClass {
	switch n {
	case 1:
		return ClassDiff1
	case 2:
		return ClassDiff2
	default:
		return ClassDiff3
	}
}

// EncodeRecord is one per-encode decision record for offline analysis.
type EncodeRecord struct {
	// Seq is the 1-based encode ordinal on this tracer.
	Seq uint64
	// LineAddr is the line being transferred.
	LineAddr uint64
	// Class is the winning encoding class.
	Class EncodeClass
	// Refs is the number of references the winner used.
	Refs uint8
	// SigsSearched / Candidates describe the search that led to the
	// decision (both 0 on a threshold skip).
	SigsSearched uint8
	Candidates   uint8
	// ThresholdSkip marks encodes whose standalone ratio cleared the
	// threshold, so the signature search never ran.
	ThresholdSkip bool
	// PayloadBits is the pre-quantization payload size.
	PayloadBits uint32
}

// Tracer is the optional decision-trace hook: class totals are exact
// (every encode is counted), while full records are sampled into a
// fixed ring buffer so long runs stay bounded. A nil *Tracer is the
// fast path — callers guard the hook with one pointer check, and the
// disabled cost is zero.
//
// Record takes a mutex; a tracer is meant to be attached to one link
// end (the parallel drivers build one tracer per cell), so the lock is
// uncontended — it exists so a shared tracer is merely slow, not racy.
type Tracer struct {
	mu      sync.Mutex
	sample  int
	seq     uint64
	ring    []EncodeRecord
	next    int
	wrapped bool

	classCounts [NumClasses]uint64
	skips       uint64
	payloadBits uint64
}

// NewTracer builds a tracer keeping up to capacity sampled records,
// recording every sample-th encode (sample <= 1 records all of them).
func NewTracer(capacity, sample int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	if sample < 1 {
		sample = 1
	}
	return &Tracer{sample: sample, ring: make([]EncodeRecord, 0, capacity)}
}

// Record registers one encode decision. Aggregates (class counts,
// payload bits) are exact; the full record enters the ring only on
// sampled encodes.
func (t *Tracer) Record(r EncodeRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	r.Seq = t.seq
	t.classCounts[r.Class]++
	t.payloadBits += uint64(r.PayloadBits)
	if r.ThresholdSkip {
		t.skips++
	}
	if t.seq%uint64(t.sample) != 0 {
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, r)
		return
	}
	t.ring[t.next] = r
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
}

// Total returns the number of encodes seen (sampled or not).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// ClassCounts returns exact per-class encode counts.
func (t *Tracer) ClassCounts() [NumClasses]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.classCounts
}

// ThresholdSkips returns how many encodes short-circuited on the
// standalone threshold.
func (t *Tracer) ThresholdSkips() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.skips
}

// PayloadBits returns the exact sum of payload bits across every
// encode seen.
func (t *Tracer) PayloadBits() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.payloadBits
}

// Records returns the sampled records, oldest first.
func (t *Tracer) Records() []EncodeRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]EncodeRecord(nil), t.ring...)
	}
	out := make([]EncodeRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}
