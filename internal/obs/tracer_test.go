package obs

import "testing"

func TestTracerExactAggregatesSampledRing(t *testing.T) {
	tr := NewTracer(8, 4) // keep 8 records, sample every 4th encode
	const n = 100
	for i := 0; i < n; i++ {
		tr.Record(EncodeRecord{
			LineAddr:    uint64(i),
			Class:       EncodeClass(i % int(NumClasses)),
			PayloadBits: 10,
		})
	}
	if tr.Total() != n {
		t.Fatalf("total = %d", tr.Total())
	}
	if tr.PayloadBits() != n*10 {
		t.Fatalf("payload bits = %d", tr.PayloadBits())
	}
	counts := tr.ClassCounts()
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	if sum != n {
		t.Fatalf("class counts sum %d, want %d (counts=%v)", sum, n, counts)
	}
	recs := tr.Records()
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records, want 8", len(recs))
	}
	// Oldest-first, every 4th encode, ending at seq 100.
	for i, r := range recs {
		want := uint64(100 - 4*(7-i))
		if r.Seq != want {
			t.Fatalf("record %d seq = %d, want %d", i, r.Seq, want)
		}
		if r.LineAddr != want-1 {
			t.Fatalf("record %d addr = %d, want %d", i, r.LineAddr, want-1)
		}
	}
}

func TestTracerSampleOneKeepsEverythingUpToCapacity(t *testing.T) {
	tr := NewTracer(16, 1)
	for i := 0; i < 10; i++ {
		tr.Record(EncodeRecord{Class: ClassStandalone, ThresholdSkip: i%2 == 0})
	}
	recs := tr.Records()
	if len(recs) != 10 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("seq %d at %d", r.Seq, i)
		}
	}
	if tr.ThresholdSkips() != 5 {
		t.Fatalf("skips = %d", tr.ThresholdSkips())
	}
}

func TestTracerDegenerateArgs(t *testing.T) {
	tr := NewTracer(0, 0) // clamped to capacity 1, sample 1
	tr.Record(EncodeRecord{Class: ClassRaw})
	tr.Record(EncodeRecord{Class: ClassDiff3})
	recs := tr.Records()
	if len(recs) != 1 || recs[0].Seq != 2 {
		t.Fatalf("ring = %+v", recs)
	}
	if tr.Total() != 2 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestEncodeClassNames(t *testing.T) {
	want := map[EncodeClass]string{
		ClassRaw:        "raw",
		ClassStandalone: "standalone",
		ClassDiff1:      "diff-1ref",
		ClassDiff2:      "diff-2ref",
		ClassDiff3:      "diff-3ref",
		NumClasses:      "unknown",
	}
	for c, name := range want {
		if c.String() != name {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if DiffClass(1) != ClassDiff1 || DiffClass(2) != ClassDiff2 || DiffClass(3) != ClassDiff3 {
		t.Fatal("DiffClass mapping wrong")
	}
}
