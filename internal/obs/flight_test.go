package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// drive feeds a small fixed workload through a recorder: n ticks with
// one transfer+encode per tick and a decode every other tick.
func drive(r *Recorder, t *Track, n int) {
	for i := 0; i < n; i++ {
		r.Tick()
		r.Transfer(t, 512, 300+i%7, uint64(100+i%13))
		r.Encode(t, EncodeClass(i%int(NumClasses)), 280+i%5, i%10 == 0, 0)
		if i%2 == 0 {
			r.Span(t, EvDecode, 280, 0)
		}
	}
}

func TestRecorderWindowSealing(t *testing.T) {
	r := NewRecorder(FlightConfig{Window: 8})
	tr := r.Track("cable")
	drive(r, tr, 20) // 2 sealed windows of 8, partial window of 4

	d := r.Dump(false)
	if d.Now != 20 {
		t.Fatalf("now = %d, want 20", d.Now)
	}
	if len(d.Tracks) != 1 || d.Tracks[0].Name != "cable" {
		t.Fatalf("tracks = %+v", d.Tracks)
	}
	ws := d.Tracks[0].Windows
	if len(ws) != 3 {
		t.Fatalf("got %d windows, want 2 sealed + 1 partial", len(ws))
	}
	bounds := [][2]uint64{{0, 8}, {8, 16}, {16, 20}}
	var transfers, encodes, decodes uint64
	for i, w := range ws {
		if w.Start != bounds[i][0] || w.End != bounds[i][1] {
			t.Fatalf("window %d = (%d,%d], want (%d,%d]", i, w.Start, w.End, bounds[i][0], bounds[i][1])
		}
		transfers += w.Transfers
		encodes += w.Encodes
		decodes += w.Decodes
	}
	if transfers != 20 || encodes != 20 || decodes != 10 {
		t.Fatalf("totals transfers=%d encodes=%d decodes=%d, want 20/20/10", transfers, encodes, decodes)
	}
	// Class counts across the whole run must sum to the encode count.
	var classes uint64
	for _, w := range ws {
		classes += w.Raw + w.Standalone + w.Diff1 + w.Diff2 + w.Diff3
	}
	if classes != encodes {
		t.Fatalf("class sum %d != encodes %d", classes, encodes)
	}
}

func TestRecorderDerivedRates(t *testing.T) {
	r := NewRecorder(FlightConfig{Window: 16})
	tr := r.Track("cable")
	for i := 0; i < 4; i++ {
		r.Tick()
		r.Transfer(tr, 512, 256, 64)
		r.Encode(tr, ClassDiff1, 200, i == 0, 0)
	}
	r.Fault(tr)
	r.Degrade(tr, 512)

	// Nothing sealed yet: the dump exposes the open window as a partial.
	w := r.Dump(false).Tracks[0].Windows[0]
	if w.BitsPerLine != 256 {
		t.Fatalf("bits_per_line = %v, want 256", w.BitsPerLine)
	}
	if w.SkipRate != 0.25 {
		t.Fatalf("skip_rate = %v, want 0.25", w.SkipRate)
	}
	if w.FaultRate != 0.25 || w.FallbackRate != 0.25 {
		t.Fatalf("fault/fallback = %v/%v, want 0.25/0.25", w.FaultRate, w.FallbackRate)
	}
	if w.ToggleRate != 0.25 { // 4*64 toggles over 4*256 wire bits
		t.Fatalf("toggle_rate = %v, want 0.25", w.ToggleRate)
	}
}

// TestRecorderRingBounds drives past both ring limits and checks drops
// are counted and the survivors are the newest entries in order.
func TestRecorderRingBounds(t *testing.T) {
	r := NewRecorder(FlightConfig{Window: 2, MaxWindows: 3, MaxEvents: 5})
	tr := r.Track("cable")
	drive(r, tr, 20) // 10 sealable windows, 30 events

	d := r.Dump(false)
	td := d.Tracks[0]
	// 10 seals with a ring of 3 keeps the newest 3, plus the open
	// partial (the final iteration records after the tick at 20 seals).
	if len(td.Windows) != 4 {
		t.Fatalf("got %d windows, want 3 ring survivors + 1 partial", len(td.Windows))
	}
	if td.DroppedWindows != 7 {
		t.Fatalf("dropped_windows = %d, want 7", td.DroppedWindows)
	}
	for i := 1; i < len(td.Windows); i++ {
		if td.Windows[i].Start != td.Windows[i-1].End {
			t.Fatalf("surviving windows not contiguous: %+v", td.Windows)
		}
	}
	if td.Windows[len(td.Windows)-1].End != 20 {
		t.Fatalf("newest window end = %d, want 20", td.Windows[len(td.Windows)-1].End)
	}
	if len(d.Events) != 5 {
		t.Fatalf("got %d events, want ring bound 5", len(d.Events))
	}
	if d.DroppedEvents != 25 {
		t.Fatalf("dropped_events = %d, want 25", d.DroppedEvents)
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].VT < d.Events[i-1].VT {
			t.Fatalf("event ring not oldest-first: %+v", d.Events)
		}
	}
}

// TestRecorderVolatileExclusion: wall-clock durations appear only in
// volatile dumps; the deterministic dump zeroes them.
func TestRecorderVolatileExclusion(t *testing.T) {
	r := NewRecorder(FlightConfig{Window: 4, WallClock: true})
	tr := r.Track("cable")
	r.Tick()
	start := r.Clock()
	if start == 0 {
		t.Fatal("Clock() = 0 with WallClock on")
	}
	r.Encode(tr, ClassStandalone, 100, false, 12345)

	if d := r.Dump(true); d.Events[0].DurNs != 12345 {
		t.Fatalf("volatile dur = %d, want 12345", d.Events[0].DurNs)
	}
	if d := r.Dump(false); d.Events[0].DurNs != 0 {
		t.Fatalf("deterministic dur = %d, want 0", d.Events[0].DurNs)
	}

	off := NewRecorder(FlightConfig{})
	if off.Clock() != 0 {
		t.Fatal("Clock() != 0 with WallClock off")
	}
}

// TestFlightRecorderDedup: the first request per key registers; later
// requests get a live throwaway that never shows up in dumps.
func TestFlightRecorderDedup(t *testing.T) {
	f := NewFlight(FlightConfig{Window: 4})
	a := f.Recorder("cell-a")
	dup := f.Recorder("cell-a")
	b := f.Recorder("cell-b")
	if a == dup {
		t.Fatal("duplicate key returned the registered recorder")
	}
	if f.Lookup("cell-a") != a || f.Lookup("cell-b") != b {
		t.Fatal("Lookup does not return the first-registered recorder")
	}
	if got := f.Keys(); len(got) != 2 || got[0] != "cell-a" || got[1] != "cell-b" {
		t.Fatalf("Keys() = %v", got)
	}

	// The throwaway must still be fully usable (memo-off duplicate runs
	// feed it), it just doesn't appear in the flight dump.
	dt := dup.Track("cable")
	dup.Tick()
	dup.Transfer(dt, 512, 256, 1)

	at := a.Track("cable")
	a.Tick()
	a.Transfer(at, 512, 300, 2)

	d := f.WindowsDump(false)
	if len(d.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(d.Cells))
	}
	if w := d.Cells[0].Tracks[0].Windows; len(w) != 1 || w[0].WireBits != 300 {
		t.Fatalf("cell-a windows = %+v, want the registered recorder's 300 wire bits", w)
	}
}

// TestFlightMemoEventsVolatileOnly: memo hit/miss events ride only in
// volatile timeline exports.
func TestFlightMemoEventsVolatileOnly(t *testing.T) {
	f := NewFlight(FlightConfig{})
	f.MemoEvent(false)
	f.MemoEvent(true)

	if d := f.TimelineDump(true); len(d.MemoEvents) != 2 || !d.MemoEvents[1].Hit || d.MemoEvents[0].Hit {
		t.Fatalf("volatile memo events = %+v", d.MemoEvents)
	}
	if d := f.TimelineDump(false); d.MemoEvents != nil {
		t.Fatalf("deterministic dump carries memo events: %+v", d.MemoEvents)
	}
}

// TestFlightDumpByteStable: two structurally identical flights produce
// byte-identical deterministic JSON, and repeated dumps of one flight
// are stable too.
func TestFlightDumpByteStable(t *testing.T) {
	build := func() *Flight {
		f := NewFlight(FlightConfig{Window: 8})
		for _, key := range []string{"cell-b", "cell-a"} {
			r := f.Recorder(key)
			drive(r, r.Track("cable"), 20)
			r.Fault(r.Track("cable"))
		}
		return f
	}
	var w1, w2, t1, t2 bytes.Buffer
	f1, f2 := build(), build()
	if err := f1.WriteWindowsJSON(&w1, false); err != nil {
		t.Fatal(err)
	}
	if err := f2.WriteWindowsJSON(&w2, false); err != nil {
		t.Fatal(err)
	}
	if err := f1.WriteTimelineJSON(&t1, false); err != nil {
		t.Fatal(err)
	}
	if err := f2.WriteTimelineJSON(&t2, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("windows dumps differ between identical flights")
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("timeline dumps differ between identical flights")
	}
	// Cells must come out key-sorted regardless of registration order.
	var wd FlightWindowsDump
	if err := json.Unmarshal(w1.Bytes(), &wd); err != nil {
		t.Fatal(err)
	}
	if wd.Cells[0].Cell != "cell-a" || wd.Cells[1].Cell != "cell-b" {
		t.Fatalf("cells not key-sorted: %s, %s", wd.Cells[0].Cell, wd.Cells[1].Cell)
	}
	if !strings.Contains(t1.String(), `"kind":"fault"`) {
		t.Fatal("timeline missing the fault event")
	}
}

func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EvEncode: "encode", EvDecode: "decode",
		EvWBEncode: "wb-encode", EvWBDecode: "wb-decode",
		EvFault: "fault", EvDegrade: "degrade",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if !EvWBDecode.span() || EvFault.span() {
		t.Fatal("span() boundary wrong")
	}
}
