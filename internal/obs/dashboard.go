package obs

// dashboardHTML is the self-contained /health link-health dashboard:
// no external assets, inline CSS/JS, inline-SVG sparklines. It polls
// /windows (flight window ring) and /metrics (registry + runtime
// gauges) every 2 s and degrades gracefully when the flight recorder
// is off (/windows answers 404) — the runtime-health tiles still work.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>CABLE link health</title>
<style>
  body { font: 13px/1.45 system-ui, sans-serif; margin: 1.2em; background: #14171c; color: #dde3ea; }
  h1 { font-size: 1.25em; margin: 0 0 .2em; }
  h2 { font-size: 1em; margin: 1.2em 0 .35em; color: #9fb4cc; }
  .muted { color: #788599; }
  .tiles { display: flex; flex-wrap: wrap; gap: .6em; }
  .tile { background: #1d2229; border: 1px solid #2c333d; border-radius: 6px; padding: .5em .8em; min-width: 9em; }
  .tile .v { font-size: 1.25em; font-weight: 600; }
  .tile .k { color: #788599; font-size: .85em; }
  table.cells { border-collapse: collapse; width: 100%; }
  table.cells td, table.cells th { padding: .3em .6em; border-bottom: 1px solid #2c333d; text-align: left; vertical-align: middle; }
  table.cells th { color: #9fb4cc; font-weight: 600; }
  svg.spark { display: block; }
  .bad { color: #ff8484; }
  .warn { color: #ffc966; }
  .ok { color: #7fd98b; }
  code { color: #9fb4cc; }
</style>
</head>
<body>
<h1>CABLE link health</h1>
<div class="muted" id="status">connecting…</div>
<h2>Process</h2>
<div class="tiles" id="runtime"></div>
<h2>Links <span class="muted">(per window: bits/line, fault + fallback rates)</span></h2>
<div id="flight" class="muted">waiting for /windows…</div>
<script>
"use strict";
function fmt(n) {
  if (n == null) return "–";
  if (Math.abs(n) >= 1e9) return (n/1e9).toFixed(2)+"G";
  if (Math.abs(n) >= 1e6) return (n/1e6).toFixed(2)+"M";
  if (Math.abs(n) >= 1e3) return (n/1e3).toFixed(1)+"k";
  return (typeof n === "number" && !Number.isInteger(n)) ? n.toFixed(2) : String(n);
}
function spark(values, w, h, color) {
  if (!values.length) return "<span class=muted>no data</span>";
  var max = Math.max.apply(null, values), min = Math.min.apply(null, values);
  if (max === min) { max = min + 1; }
  var pts = values.map(function (v, i) {
    var x = values.length === 1 ? w/2 : i * (w-2) / (values.length-1) + 1;
    var y = h-2 - (v-min) * (h-4) / (max-min);
    return x.toFixed(1) + "," + y.toFixed(1);
  }).join(" ");
  return '<svg class=spark width='+w+' height='+h+' viewBox="0 0 '+w+' '+h+'">' +
    '<polyline fill=none stroke="'+color+'" stroke-width=1.5 points="'+pts+'"/></svg>';
}
function tile(k, v, cls) {
  return '<div class=tile><div class="v '+(cls||"")+'">'+v+'</div><div class=k>'+k+'</div></div>';
}
function renderRuntime(m) {
  var g = m.gauges || {};
  var html = "";
  html += tile("goroutines", fmt(g["go.goroutines"]));
  html += tile("heap objects", fmt(g["go.heap_objects_bytes"]) + "B");
  html += tile("runtime total", fmt(g["go.total_bytes"]) + "B");
  html += tile("GC cycles", fmt(g["go.gc_cycles"]));
  html += tile("GC pause p50", fmt(g["go.gc_pause_p50_ns"]) + "ns");
  html += tile("GC pause max", fmt(g["go.gc_pause_max_ns"]) + "ns");
  html += tile("sched lat p50", fmt(g["go.sched_latency_p50_ns"]) + "ns");
  html += tile("sched lat p99", fmt(g["go.sched_latency_p99_ns"]) + "ns");
  document.getElementById("runtime").innerHTML = html;
}
function renderFlight(d) {
  var el = document.getElementById("flight");
  if (!d || !d.cells || !d.cells.length) {
    el.innerHTML = "<span class=muted>flight recorder attached, no windows sealed yet</span>";
    return;
  }
  var html = '<table class=cells><tr><th>cell / track</th><th>vt</th>' +
    '<th>bits/line</th><th>trend</th><th>fault rate</th><th>fallback rate</th><th>faults</th></tr>';
  d.cells.forEach(function (cell) {
    (cell.tracks || []).forEach(function (tr) {
      var ws = tr.windows || [];
      var tail = ws.slice(-60);
      var bpl = tail.map(function (w) { return w.bits_per_line || 0; });
      var fr  = tail.map(function (w) { return w.fault_rate || 0; });
      var fbr = tail.map(function (w) { return w.fallback_rate || 0; });
      var last = ws[ws.length-1] || {};
      var faults = ws.reduce(function (a, w) { return a + (w.faults||0); }, 0);
      var fcls = faults ? (last.fault_rate > 0.01 ? "bad" : "warn") : "ok";
      html += "<tr><td><code>" + cell.cell + "</code> · " + tr.name +
        (tr.dropped_windows ? ' <span class=warn>(' + tr.dropped_windows + ' dropped)</span>' : '') +
        "</td><td>" + fmt(cell.now) + "</td>" +
        "<td>" + fmt(last.bits_per_line) + "</td>" +
        "<td>" + spark(bpl, 160, 28, "#6fb3ff") + "</td>" +
        "<td>" + spark(fr, 90, 28, "#ff8484") + "</td>" +
        "<td>" + spark(fbr, 90, 28, "#ffc966") + "</td>" +
        '<td class="' + fcls + '">' + fmt(faults) + "</td></tr>";
    });
  });
  html += "</table>";
  el.innerHTML = html;
}
function refresh() {
  fetch("/metrics").then(function (r) { return r.json(); }).then(function (m) {
    renderRuntime(m);
    document.getElementById("status").textContent =
      "live · " + new Date().toLocaleTimeString();
  }).catch(function (e) {
    document.getElementById("status").textContent = "metrics fetch failed: " + e;
  });
  fetch("/windows").then(function (r) {
    if (!r.ok) { throw new Error(String(r.status)); }
    return r.json();
  }).then(renderFlight).catch(function () {
    document.getElementById("flight").innerHTML =
      "<span class=muted>flight recorder off — run with <code>-windows</code>/<code>-timeline</code> to enable</span>";
  });
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
