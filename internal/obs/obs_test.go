package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterShardsSum(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	for shard := uint32(0); shard < NumShards; shard++ {
		c.Add(shard, uint64(shard))
	}
	want := uint64(NumShards * (NumShards - 1) / 2)
	if got := c.Value(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	c.Inc(7)
	if got := c.Value(); got != want+1 {
		t.Fatalf("after Inc: %d, want %d", got, want+1)
	}
	// Out-of-range shards mask down instead of panicking.
	c.Inc(NumShards + 3)
	if got := c.Value(); got != want+2 {
		t.Fatalf("masked shard lost the increment: %d", got)
	}
}

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Fatal("different names must differ")
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc")
	g := r.Gauge("gauge")
	h := r.Histogram("hist")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard uint32) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(shard)
				g.Add(1)
				h.Observe(uint64(i))
			}
		}(NextShard())
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bits")
	h.Observe(0) // bit length 0
	h.Observe(1) // 1
	h.Observe(2) // 2
	h.Observe(3) // 2
	h.Observe(1 << 20)
	s := r.Snapshot(false).Histograms["bits"]
	if s.Count != 5 || s.Sum != 6+1<<20 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if s.Log2Buckets[0] != 1 || s.Log2Buckets[1] != 1 || s.Log2Buckets[2] != 2 || s.Log2Buckets[21] != 1 {
		t.Fatalf("buckets = %v", s.Log2Buckets)
	}
	if m := h.Mean(); m < 209715 || m > 209717 {
		t.Fatalf("mean = %f", m)
	}
}

func TestVolatileExcludedFromDeterministicSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("stable").Inc(0)
	r.VolatileCounter("wallclock").Inc(0)
	r.VolatileGauge("queue").Set(3)
	r.VolatileHistogram("ms").Observe(12)
	det := r.Snapshot(false)
	if _, ok := det.Counters["wallclock"]; ok {
		t.Fatal("volatile counter leaked into deterministic snapshot")
	}
	if len(det.Gauges) != 0 || len(det.Histograms) != 0 {
		t.Fatalf("volatile metrics leaked: %+v", det)
	}
	if det.Counters["stable"] != 1 {
		t.Fatal("stable counter missing")
	}
	all := r.Snapshot(true)
	if all.Counters["wallclock"] != 1 || all.Gauges["queue"] != 3 || all.Histograms["ms"].Count != 1 {
		t.Fatalf("full snapshot wrong: %+v", all)
	}
}

func TestJSONDeterministicAndParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(1, 2)
	r.Counter("a.one").Add(2, 1)
	r.Histogram("h").Observe(5)
	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1, false); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same state must serialize identically")
	}
	var s Snapshot
	if err := json.Unmarshal(b1.Bytes(), &s); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if s.Counters["a.one"] != 1 || s.Counters["b.two"] != 2 {
		t.Fatalf("round trip lost values: %+v", s)
	}
	// Sorted keys: "a.one" must appear before "b.two".
	txt := b1.String()
	if strings.Index(txt, "a.one") > strings.Index(txt, "b.two") {
		t.Fatal("JSON keys not sorted")
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(0, 9)
	g := r.Gauge("g")
	g.Set(4)
	h := r.Histogram("h")
	h.Observe(3)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("reset left values: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
	// Identities survive the reset.
	if r.Counter("c") != c {
		t.Fatal("reset must not replace metric objects")
	}
	c.Inc(0)
	if c.Value() != 1 {
		t.Fatal("counter unusable after reset")
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc(0)
	r.Counter("a.first").Add(0, 2)
	r.Gauge("m.gauge").Set(-3)
	var b bytes.Buffer
	if err := r.WriteText(&b, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %q", lines)
	}
	if lines[0] != "a.first 2" || lines[1] != "m.gauge -3" || lines[2] != "z.last 1" {
		t.Fatalf("unsorted or malformed: %q", lines)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("served").Add(0, 7)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, `"served": 7`) {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/metrics.txt"); code != 200 || !strings.Contains(body, "served 7") {
		t.Fatalf("/metrics.txt: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/: code=%d body=%q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path should 404, got %d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code=%d body=%q", code, body)
	}
}

func TestNextShardInRange(t *testing.T) {
	for i := 0; i < 3*NumShards; i++ {
		if s := NextShard(); s >= NumShards {
			t.Fatalf("shard %d out of range", s)
		}
	}
}

// mergeSource builds the snapshot the merge tests replay: counters,
// gauges and histograms, including zero-valued entries (Merge must
// still create those for name-set parity).
func mergeSource() Snapshot {
	src := NewRegistry()
	src.Counter("m.count").Add(0, 3)
	src.Counter("m.zero")
	src.Gauge("m.gauge").Add(-2)
	src.Gauge("m.gzero")
	src.Histogram("m.hist").Observe(5)
	src.Histogram("m.hist").Observe(300)
	src.Histogram("m.hzero")
	return src.Snapshot(false)
}

// TestConcurrentMerge drives Registry.Merge from many goroutines (run
// under -race in CI) and checks the final non-volatile snapshot equals
// the serial sum of the same merges.
func TestConcurrentMerge(t *testing.T) {
	s := mergeSource()
	const workers, perWorker = 8, 200

	serial := NewRegistry()
	for i := 0; i < workers*perWorker; i++ {
		serial.Merge(s)
	}

	conc := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				conc.Merge(s)
			}
		}()
	}
	wg.Wait()

	want, err := json.Marshal(serial.Snapshot(false))
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(conc.Snapshot(false))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("concurrent merge diverged from serial sum:\n got %s\nwant %s", got, want)
	}
}

// TestPreparedMergeDelta checks PrepareMerge + repeated Apply matches
// the same number of Merge calls, including metric creation for
// zero-valued names, and that concurrent Applys of one delta are safe.
func TestPreparedMergeDelta(t *testing.T) {
	s := mergeSource()
	const applies = 50

	viaMerge := NewRegistry()
	for i := 0; i < applies; i++ {
		viaMerge.Merge(s)
	}

	viaDelta := NewRegistry()
	d := viaDelta.PrepareMerge(s)
	var wg sync.WaitGroup
	for w := 0; w < 5; w++ {
		wg.Add(1)
		go func(shard uint32) {
			defer wg.Done()
			for i := 0; i < applies/5; i++ {
				d.Apply(shard)
			}
		}(NextShard())
	}
	wg.Wait()

	want, _ := json.Marshal(viaMerge.Snapshot(false))
	got, _ := json.Marshal(viaDelta.Snapshot(false))
	if !bytes.Equal(got, want) {
		t.Fatalf("prepared delta diverged from Merge:\n got %s\nwant %s", got, want)
	}
}
