package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the virtual-time flight recorder: windowed time-series
// deltas and a span/event timeline for every link end a simulation
// drives, stamped with the simulation's own access tick instead of wall
// clock. Virtual time is a pure function of the workload, so recorder
// dumps (with volatile fields excluded) are byte-identical at any
// -parallel setting, with the cell memo on or off, and at any
// GOMAXPROCS — the same contract the metrics registry keeps.
//
// Layering:
//
//   - Recorder: one per simulation. Owns the virtual clock (advanced by
//     the sim's access loop via Tick), a set of per-link Tracks whose
//     counters seal into bounded window rings at window boundaries, and
//     one bounded event ring for the timeline.
//   - Track: one per link end ("cable" for the single-link simulators,
//     "link1..linkN" for the multi-chip coherence study).
//   - Flight: a keyed collection of Recorders for multi-cell experiment
//     runs (the -windows/-timeline CLI flags). Each distinct cell
//     digest registers exactly one recorder regardless of scheduling,
//     which is what makes whole-run dumps deterministic.
//
// The disabled path follows the Tracer discipline: a nil *Recorder
// costs one pointer check and zero allocations on the encode path.

// Default flight-recorder bounds. Window is in virtual-time ticks (one
// tick per simulated access); the rings bound memory for arbitrarily
// long runs by dropping oldest entries (drop counts are reported, so
// truncation is visible, and deterministic — drops depend only on event
// counts).
const (
	DefaultFlightWindow = 2048
	defaultMaxWindows   = 1024
	defaultMaxEvents    = 8192
	defaultMaxMemoEv    = 4096
)

// FlightConfig sizes a Recorder (and every recorder a Flight creates).
type FlightConfig struct {
	// Window is the virtual-time window length in ticks (simulated
	// accesses). 0 means DefaultFlightWindow.
	Window int
	// MaxWindows bounds each track's sealed-window ring; oldest windows
	// are dropped (and counted) beyond it. 0 means 1024.
	MaxWindows int
	// MaxEvents bounds the recorder's timeline ring. 0 means 8192.
	MaxEvents int
	// WallClock additionally stamps spans with wall-clock durations.
	// Durations are volatile: they never appear in deterministic dumps,
	// only in live (/timeline) views and includeVolatile exports.
	WallClock bool
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.Window <= 0 {
		c.Window = DefaultFlightWindow
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = defaultMaxWindows
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = defaultMaxEvents
	}
	return c
}

// EventKind classifies one timeline entry.
type EventKind uint8

// Timeline event kinds. Encode/decode/writeback kinds are spans (they
// have a duration when wall-clock stamping is on); fault and degrade
// are instants.
const (
	EvEncode   EventKind = iota // home-end fill encode
	EvDecode                    // remote-end fill decode
	EvWBEncode                  // remote-end write-back encode
	EvWBDecode                  // home-end write-back decode
	EvFault                     // injector corrupted a wire image
	EvDegrade                   // decode error degraded to a raw resend
	numEventKinds
)

// String names the kind for exports.
func (k EventKind) String() string {
	switch k {
	case EvEncode:
		return "encode"
	case EvDecode:
		return "decode"
	case EvWBEncode:
		return "wb-encode"
	case EvWBDecode:
		return "wb-decode"
	case EvFault:
		return "fault"
	case EvDegrade:
		return "degrade"
	}
	return "unknown"
}

// span reports whether the kind is a duration-carrying span (vs an
// instant).
func (k EventKind) span() bool { return k <= EvWBDecode }

// Window accumulates one virtual-time window's deltas for one track.
// All fields are pure functions of the simulated transfer stream.
type Window struct {
	// Start/End bound the window in virtual time: (Start, End].
	Start, End uint64
	// Transfers counts line transfers (fills + write-backs); SourceBits
	// and WireBits are their pre/post-compression totals (wire includes
	// raw-fallback resends); Toggles counts wire bit transitions.
	Transfers  uint64
	SourceBits uint64
	WireBits   uint64
	Toggles    uint64
	// Encodes/PayloadBits/Skips/Classes describe the home-end fill
	// encodes in the window (Classes indexed by EncodeClass).
	Encodes     uint64
	PayloadBits uint64
	Skips       uint64
	Classes     [NumClasses]uint64
	// Decodes counts fill + write-back decodes; Writebacks counts
	// write-back encodes.
	Decodes    uint64
	Writebacks uint64
	// Faults/DecodeErrors/RawFallbacks account the degradation pipeline.
	Faults       uint64
	DecodeErrors uint64
	RawFallbacks uint64
}

// active reports whether anything landed in the window.
func (w Window) active() bool {
	z := w
	z.Start, z.End = 0, 0
	return z != Window{}
}

// Event is one timeline entry.
type Event struct {
	VT    uint64
	Kind  EventKind
	Track int32
	Class EncodeClass
	Skip  bool
	Bits  uint32
	// DurNs is the volatile wall-clock duration (0 when wall-clock
	// stamping is off, and excluded from deterministic exports).
	DurNs int64
}

// Track is one link end's window accumulator inside a Recorder. Feed it
// only through the owning Recorder's methods (which take the lock).
type Track struct {
	name    string
	index   int32
	cur     Window
	ring    []Window
	next    int
	wrapped bool
	dropped uint64
}

// Name returns the track's name.
func (t *Track) Name() string { return t.name }

// Recorder is one simulation's flight recorder. The simulation thread
// writes; live HTTP readers snapshot concurrently, so every operation
// takes the recorder mutex (uncontended in the common one-writer case,
// same discipline as Tracer).
type Recorder struct {
	mu        sync.Mutex
	cfg       FlightConfig
	now       uint64
	tracks    []*Track
	byName    map[string]*Track
	events    []Event
	evNext    int
	evWrapped bool
	evDropped uint64
}

// NewRecorder builds a recorder with the given bounds (zero fields take
// defaults).
func NewRecorder(cfg FlightConfig) *Recorder {
	return &Recorder{cfg: cfg.withDefaults(), byName: map[string]*Track{}}
}

// Config returns the recorder's effective (defaulted) configuration.
func (r *Recorder) Config() FlightConfig { return r.cfg }

// Track returns (creating on first use) the named per-link track.
// Simulators create tracks in deterministic construction order.
func (r *Recorder) Track(name string) *Track {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.byName[name]; ok {
		return t
	}
	t := &Track{name: name, index: int32(len(r.tracks))}
	r.tracks = append(r.tracks, t)
	r.byName[name] = t
	return t
}

// Tick advances virtual time by one simulated access. Crossing a window
// boundary seals every track's open window into its ring.
func (r *Recorder) Tick() {
	r.mu.Lock()
	r.now++
	if r.now%uint64(r.cfg.Window) == 0 {
		for _, t := range r.tracks {
			r.sealLocked(t)
		}
	}
	r.mu.Unlock()
}

// Now returns the current virtual time (ticks so far).
func (r *Recorder) Now() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.now
}

// Clock returns a wall-clock timestamp in nanoseconds when wall-clock
// stamping is enabled, else 0. Callers bracket a span with two Clock
// calls and pass the difference as the span's duration; with stamping
// off both reads are 0 and the duration stays 0.
func (r *Recorder) Clock() int64 {
	if !r.cfg.WallClock {
		return 0
	}
	return time.Now().UnixNano()
}

func (r *Recorder) sealLocked(t *Track) { r.sealAtLocked(t, r.now) }

// sealAtLocked closes t's open window at virtual time end and opens the
// next one there. Tick-driven recording always seals at r.now (which
// sits exactly on a window boundary when Tick calls it); vt-driven
// recording seals at explicit boundaries.
func (r *Recorder) sealAtLocked(t *Track, end uint64) {
	t.cur.End = end
	if len(t.ring) < r.cfg.MaxWindows {
		t.ring = append(t.ring, t.cur)
	} else {
		t.ring[t.next] = t.cur
		t.next++
		if t.next == len(t.ring) {
			t.next = 0
		}
		t.wrapped = true
		t.dropped++
	}
	t.cur = Window{Start: end}
}

// advanceTrackLocked seals every window boundary t crosses on the way
// to virtual time vt. Track starts are always boundary-aligned in
// vt-driven recording (they begin at 0 and every seal lands on a
// multiple of the window length), so the loop emits exactly the same
// window sequence a Tick-driven recorder would, empty windows included
// — which is what keeps window dumps a pure function of the event
// stream.
func (r *Recorder) advanceTrackLocked(t *Track, vt uint64) {
	w := uint64(r.cfg.Window)
	for vt >= t.cur.Start+w {
		r.sealAtLocked(t, t.cur.Start+w)
	}
}

func (r *Recorder) eventLocked(e Event) {
	e.VT = r.now
	if len(r.events) < r.cfg.MaxEvents {
		r.events = append(r.events, e)
		return
	}
	r.events[r.evNext] = e
	r.evNext++
	if r.evNext == len(r.events) {
		r.evNext = 0
	}
	r.evWrapped = true
	r.evDropped++
}

// Transfer records one line transfer on a track: pre-compression source
// bits, post-quantization wire bits (raw-fallback resends included) and
// the wire-toggle delta.
func (r *Recorder) Transfer(t *Track, sourceBits, wireBits int, toggles uint64) {
	r.mu.Lock()
	t.cur.Transfers++
	t.cur.SourceBits += uint64(sourceBits)
	t.cur.WireBits += uint64(wireBits)
	t.cur.Toggles += toggles
	r.mu.Unlock()
}

// Encode records one home-end fill encode: the winning class, the
// pre-quantization payload bits, whether the signature search was
// threshold-skipped, and the optional wall-clock duration.
func (r *Recorder) Encode(t *Track, class EncodeClass, payloadBits int, skip bool, durNs int64) {
	r.mu.Lock()
	t.cur.Encodes++
	t.cur.PayloadBits += uint64(payloadBits)
	if skip {
		t.cur.Skips++
	}
	if class < NumClasses {
		t.cur.Classes[class]++
	}
	r.eventLocked(Event{Kind: EvEncode, Track: t.index, Class: class, Skip: skip, Bits: uint32(payloadBits), DurNs: durNs})
	r.mu.Unlock()
}

// Span records a decode or write-back span (EvDecode, EvWBEncode,
// EvWBDecode) with the payload bits it carried and the optional
// wall-clock duration.
func (r *Recorder) Span(t *Track, kind EventKind, bits int, durNs int64) {
	r.mu.Lock()
	switch kind {
	case EvDecode, EvWBDecode:
		t.cur.Decodes++
	case EvWBEncode:
		t.cur.Writebacks++
	}
	r.eventLocked(Event{Kind: kind, Track: t.index, Bits: uint32(bits), DurNs: durNs})
	r.mu.Unlock()
}

// Fault records an injector-corrupted wire image on a track.
func (r *Recorder) Fault(t *Track) {
	r.mu.Lock()
	t.cur.Faults++
	r.eventLocked(Event{Kind: EvFault, Track: t.index})
	r.mu.Unlock()
}

// Degrade records a decode error recovered by a raw resend of
// resendBits wire bits.
func (r *Recorder) Degrade(t *Track, resendBits int) {
	r.mu.Lock()
	t.cur.DecodeErrors++
	t.cur.RawFallbacks++
	r.eventLocked(Event{Kind: EvDegrade, Track: t.index, Bits: uint32(resendBits)})
	r.mu.Unlock()
}

// The *At methods below are the explicit-virtual-time feeding API used
// by the discrete-event topology engine (internal/topo): instead of a
// global Tick per simulated access, each per-link track advances to
// the event's own completion time, so tracks with very different
// traffic rates still seal identical window grids. They are
// window-only — no timeline events are emitted — because the topology
// engine records during its serial timing-replay pass, where windows
// are the deliverable and a 10M-transfer soak would cycle the event
// ring thousands of times over for nothing.

// TransferAt records one line transfer on t at virtual time vt,
// sealing any window boundaries crossed since t's previous event.
// Per-track vt must be monotonically non-decreasing.
func (r *Recorder) TransferAt(t *Track, vt uint64, sourceBits, wireBits int, toggles uint64) {
	r.mu.Lock()
	r.advanceTrackLocked(t, vt)
	t.cur.Transfers++
	t.cur.SourceBits += uint64(sourceBits)
	t.cur.WireBits += uint64(wireBits)
	t.cur.Toggles += toggles
	r.mu.Unlock()
}

// FaultAt records an injector-corrupted wire image on t at virtual
// time vt (window-only; no timeline event).
func (r *Recorder) FaultAt(t *Track, vt uint64) {
	r.mu.Lock()
	r.advanceTrackLocked(t, vt)
	t.cur.Faults++
	r.mu.Unlock()
}

// DegradeAt records a decode error recovered by a raw resend on t at
// virtual time vt (window-only; no timeline event).
func (r *Recorder) DegradeAt(t *Track, vt uint64) {
	r.mu.Lock()
	r.advanceTrackLocked(t, vt)
	t.cur.DecodeErrors++
	t.cur.RawFallbacks++
	r.mu.Unlock()
}

// AdvanceTo seals every track's crossed window boundaries through vt
// and moves the recorder clock forward to vt (never backward), so the
// final partial window in a Dump ends at the simulation's makespan.
// Callers finish a vt-driven recording with one AdvanceTo(makespan).
func (r *Recorder) AdvanceTo(vt uint64) {
	r.mu.Lock()
	for _, t := range r.tracks {
		r.advanceTrackLocked(t, vt)
	}
	if vt > r.now {
		r.now = vt
	}
	r.mu.Unlock()
}

// WindowDump is one exported window: the raw deltas plus derived rates
// (all pure integer arithmetic over deterministic counters, so float
// formatting is stable).
type WindowDump struct {
	Start        uint64 `json:"start"`
	End          uint64 `json:"end"`
	Transfers    uint64 `json:"transfers"`
	SourceBits   uint64 `json:"source_bits"`
	WireBits     uint64 `json:"wire_bits"`
	Toggles      uint64 `json:"toggles"`
	Encodes      uint64 `json:"encodes"`
	PayloadBits  uint64 `json:"payload_bits"`
	Skips        uint64 `json:"skips"`
	Raw          uint64 `json:"raw"`
	Standalone   uint64 `json:"standalone"`
	Diff1        uint64 `json:"diff1"`
	Diff2        uint64 `json:"diff2"`
	Diff3        uint64 `json:"diff3"`
	Decodes      uint64 `json:"decodes"`
	Writebacks   uint64 `json:"writebacks"`
	Faults       uint64 `json:"faults,omitempty"`
	DecodeErrors uint64 `json:"decode_errors,omitempty"`
	RawFallbacks uint64 `json:"raw_fallbacks,omitempty"`
	// Derived per-window rates: wire bits per transferred line, ratio of
	// threshold skips to encodes, faults and raw fallbacks per transfer,
	// and toggles per wire bit.
	BitsPerLine  float64 `json:"bits_per_line"`
	SkipRate     float64 `json:"skip_rate"`
	FaultRate    float64 `json:"fault_rate,omitempty"`
	FallbackRate float64 `json:"fallback_rate,omitempty"`
	ToggleRate   float64 `json:"toggle_rate"`
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func dumpWindow(w Window) WindowDump {
	return WindowDump{
		Start: w.Start, End: w.End,
		Transfers: w.Transfers, SourceBits: w.SourceBits, WireBits: w.WireBits, Toggles: w.Toggles,
		Encodes: w.Encodes, PayloadBits: w.PayloadBits, Skips: w.Skips,
		Raw: w.Classes[ClassRaw], Standalone: w.Classes[ClassStandalone],
		Diff1: w.Classes[ClassDiff1], Diff2: w.Classes[ClassDiff2], Diff3: w.Classes[ClassDiff3],
		Decodes: w.Decodes, Writebacks: w.Writebacks,
		Faults: w.Faults, DecodeErrors: w.DecodeErrors, RawFallbacks: w.RawFallbacks,
		BitsPerLine:  ratio(w.WireBits, w.Transfers),
		SkipRate:     ratio(w.Skips, w.Encodes),
		FaultRate:    ratio(w.Faults, w.Transfers),
		FallbackRate: ratio(w.RawFallbacks, w.Transfers),
		ToggleRate:   ratio(w.Toggles, w.WireBits),
	}
}

// TrackDump is one exported track: sealed windows oldest-first, plus
// the open partial window when it has activity.
type TrackDump struct {
	Name           string       `json:"name"`
	DroppedWindows uint64       `json:"dropped_windows,omitempty"`
	Windows        []WindowDump `json:"windows"`
}

// EventDump is one exported timeline entry.
type EventDump struct {
	VT    uint64 `json:"vt"`
	Kind  string `json:"kind"`
	Track string `json:"track"`
	Class string `json:"class,omitempty"`
	Bits  uint32 `json:"bits,omitempty"`
	Skip  bool   `json:"skip,omitempty"`
	DurNs int64  `json:"dur_ns,omitempty"`
}

// RecorderDump is a recorder's full exported state.
type RecorderDump struct {
	Now           uint64      `json:"now"`
	Tracks        []TrackDump `json:"tracks"`
	DroppedEvents uint64      `json:"dropped_events,omitempty"`
	Events        []EventDump `json:"events"`
}

// Dump snapshots the recorder. With includeVolatile false, wall-clock
// durations are zeroed out of the timeline, so the dump is a pure
// function of the simulated workload.
func (r *Recorder) Dump(includeVolatile bool) RecorderDump {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := RecorderDump{Now: r.now, DroppedEvents: r.evDropped}
	d.Tracks = make([]TrackDump, 0, len(r.tracks))
	for _, t := range r.tracks {
		td := TrackDump{Name: t.name, DroppedWindows: t.dropped}
		var ws []Window
		if t.wrapped {
			ws = append(ws, t.ring[t.next:]...)
			ws = append(ws, t.ring[:t.next]...)
		} else {
			ws = t.ring
		}
		td.Windows = make([]WindowDump, 0, len(ws)+1)
		for _, w := range ws {
			td.Windows = append(td.Windows, dumpWindow(w))
		}
		if t.cur.active() {
			part := t.cur
			part.End = r.now
			td.Windows = append(td.Windows, dumpWindow(part))
		}
		d.Tracks = append(d.Tracks, td)
	}
	var evs []Event
	if r.evWrapped {
		evs = append(evs, r.events[r.evNext:]...)
		evs = append(evs, r.events[:r.evNext]...)
	} else {
		evs = r.events
	}
	d.Events = make([]EventDump, 0, len(evs))
	for _, e := range evs {
		ed := EventDump{VT: e.VT, Kind: e.Kind.String(), Bits: e.Bits, Skip: e.Skip}
		if int(e.Track) < len(r.tracks) {
			ed.Track = r.tracks[e.Track].name
		}
		if e.Kind == EvEncode {
			ed.Class = e.Class.String()
		}
		if includeVolatile {
			ed.DurNs = e.DurNs
		}
		d.Events = append(d.Events, ed)
	}
	return d
}

// Flight collects one Recorder per distinct simulation cell for a
// multi-cell experiment run. Recorder(key) registers the first recorder
// requested for a key and hands duplicate requesters a throwaway: with
// the cell memo on, only the single-flight compute owner ever asks;
// with it off, repeated runs of an identical cell record identical
// content and only the first registration is kept. Either way the
// collection — and its dumps — depends only on the set of distinct
// cells, not on scheduling.
type Flight struct {
	cfg FlightConfig

	mu   sync.Mutex
	recs map[string]*Recorder

	memoHits   uint64
	memoMisses uint64
	memoEvents []FlightMemoEvent
	memoDrops  uint64
}

// FlightMemoEvent is one cell-memo outcome observed during a flight
// (volatile: arrival order and wall timestamps depend on scheduling).
type FlightMemoEvent struct {
	Hit    bool  `json:"hit"`
	WallNs int64 `json:"wall_ns"`
}

// NewFlight builds a flight collection; every recorder it creates
// shares cfg.
func NewFlight(cfg FlightConfig) *Flight {
	return &Flight{cfg: cfg.withDefaults(), recs: map[string]*Recorder{}}
}

// Config returns the flight's effective recorder configuration.
func (f *Flight) Config() FlightConfig { return f.cfg }

// Recorder returns a recorder for the cell key: the registered one on
// first request, a feed-and-forget duplicate afterwards (identical
// cells record identical content, so dropping repeats loses nothing
// and keeps dumps scheduling-independent).
func (f *Flight) Recorder(key string) *Recorder {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.recs[key]; ok {
		return NewRecorder(f.cfg)
	}
	r := NewRecorder(f.cfg)
	f.recs[key] = r
	return r
}

// Lookup returns the registered recorder for a key (nil if none).
func (f *Flight) Lookup(key string) *Recorder {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.recs[key]
}

// Keys lists registered cell keys, sorted.
func (f *Flight) Keys() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.recs))
	for k := range f.recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MemoEvent records one cell-memo outcome (hit or miss) for the
// timeline's volatile view.
func (f *Flight) MemoEvent(hit bool) {
	f.mu.Lock()
	if hit {
		f.memoHits++
	} else {
		f.memoMisses++
	}
	if len(f.memoEvents) < defaultMaxMemoEv {
		f.memoEvents = append(f.memoEvents, FlightMemoEvent{Hit: hit, WallNs: time.Now().UnixNano()})
	} else {
		f.memoDrops++
	}
	f.mu.Unlock()
}

// FlightCellWindows is one cell's windowed time series.
type FlightCellWindows struct {
	Cell   string      `json:"cell"`
	Now    uint64      `json:"now"`
	Tracks []TrackDump `json:"tracks"`
}

// FlightWindowsDump is the -windows file format.
type FlightWindowsDump struct {
	Window int                 `json:"window"`
	Cells  []FlightCellWindows `json:"cells"`
}

// FlightCellTimeline is one cell's event timeline.
type FlightCellTimeline struct {
	Cell          string      `json:"cell"`
	Now           uint64      `json:"now"`
	DroppedEvents uint64      `json:"dropped_events,omitempty"`
	Events        []EventDump `json:"events"`
}

// FlightTimelineDump is the -timeline file format (the tools/traceexport
// input).
type FlightTimelineDump struct {
	Window int                  `json:"window"`
	Cells  []FlightCellTimeline `json:"cells"`
	// MemoEvents appears only in volatile exports.
	MemoEvents []FlightMemoEvent `json:"memo_events,omitempty"`
}

// snapshot dumps every registered recorder in key order.
func (f *Flight) snapshot(includeVolatile bool) (keys []string, dumps []RecorderDump) {
	keys = f.Keys()
	dumps = make([]RecorderDump, len(keys))
	for i, k := range keys {
		dumps[i] = f.Lookup(k).Dump(includeVolatile)
	}
	return keys, dumps
}

// WindowsDump exports every cell's windowed time series, cells sorted
// by key.
func (f *Flight) WindowsDump(includeVolatile bool) FlightWindowsDump {
	keys, dumps := f.snapshot(includeVolatile)
	out := FlightWindowsDump{Window: f.cfg.Window, Cells: make([]FlightCellWindows, len(keys))}
	for i, k := range keys {
		out.Cells[i] = FlightCellWindows{Cell: k, Now: dumps[i].Now, Tracks: dumps[i].Tracks}
	}
	return out
}

// TimelineDump exports every cell's event timeline, cells sorted by
// key. Volatile exports carry wall-clock durations and the cell-memo
// hit/miss events; deterministic exports exclude both.
func (f *Flight) TimelineDump(includeVolatile bool) FlightTimelineDump {
	keys, dumps := f.snapshot(includeVolatile)
	out := FlightTimelineDump{Window: f.cfg.Window, Cells: make([]FlightCellTimeline, len(keys))}
	for i, k := range keys {
		out.Cells[i] = FlightCellTimeline{
			Cell: k, Now: dumps[i].Now,
			DroppedEvents: dumps[i].DroppedEvents, Events: dumps[i].Events,
		}
	}
	if includeVolatile {
		f.mu.Lock()
		out.MemoEvents = append([]FlightMemoEvent(nil), f.memoEvents...)
		f.mu.Unlock()
	}
	return out
}

// WriteWindowsJSON writes the windowed time series as indented JSON.
// Struct field order is fixed and cells are key-sorted, so the
// deterministic form is byte-stable.
func (f *Flight) WriteWindowsJSON(w io.Writer, includeVolatile bool) error {
	return writeJSON(w, f.WindowsDump(includeVolatile), true)
}

// WriteTimelineJSON writes the event timeline as compact JSON (timeline
// files carry thousands of events; the converter re-shapes them).
func (f *Flight) WriteTimelineJSON(w io.Writer, includeVolatile bool) error {
	return writeJSON(w, f.TimelineDump(includeVolatile), false)
}

// WriteWindowsFile dumps the windows JSON to path (the -windows flag).
func (f *Flight) WriteWindowsFile(path string, includeVolatile bool) error {
	return writeJSONFile(path, func(w io.Writer) error { return f.WriteWindowsJSON(w, includeVolatile) })
}

// WriteTimelineFile dumps the timeline JSON to path (the -timeline
// flag).
func (f *Flight) WriteTimelineFile(path string, includeVolatile bool) error {
	return writeJSONFile(path, func(w io.Writer) error { return f.WriteTimelineJSON(w, includeVolatile) })
}

func writeJSON(w io.Writer, v interface{}, indent bool) error {
	var b []byte
	var err error
	if indent {
		b, err = json.MarshalIndent(v, "", "  ")
	} else {
		b, err = json.Marshal(v)
	}
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func writeJSONFile(path string, write func(io.Writer) error) error {
	var sb strings.Builder
	if err := write(&sb); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
