package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves live metrics and profiling for long simulator runs
// (the cablesim -http flag). Equivalent to HandlerWith(r, nil): the
// flight endpoints answer 404 until a Flight is attached.
func Handler(r *Registry) http.Handler { return HandlerWith(r, nil) }

// HandlerWith serves live metrics, profiling, and — when f is non-nil
// — the flight recorder's windowed time series, event timeline, and a
// self-contained link-health dashboard:
//
//	/metrics      registry snapshot as JSON (volatile metrics included,
//	              Go runtime health gauges refreshed on scrape)
//	/metrics.txt  flat sorted "name value" text dump
//	/windows      flight windowed time series as JSON (volatile form)
//	/timeline     flight event timeline as JSON (volatile form)
//	/health       HTML dashboard (sparklines over /windows + /metrics)
//	/debug/pprof  the standard net/http/pprof profile index
//
// The handler reads through the same atomics and mutexes the hot paths
// update, so hitting it mid-run is safe and does not pause the
// simulation. Live views deliberately include volatile fields
// (wall-clock durations, memo events, runtime gauges); the
// deterministic dump contract applies to the -metrics/-windows/
// -timeline files, not to live scrapes.
func HandlerWith(r *Registry, f *Flight) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		UpdateRuntimeGauges(r)
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w, true)
	})
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, req *http.Request) {
		UpdateRuntimeGauges(r)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w, true)
	})
	mux.HandleFunc("/windows", func(w http.ResponseWriter, req *http.Request) {
		if f == nil {
			http.Error(w, "flight recorder not enabled (run with -windows/-timeline/-http flight flags)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = f.WriteWindowsJSON(w, true)
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, req *http.Request) {
		if f == nil {
			http.Error(w, "flight recorder not enabled (run with -windows/-timeline/-http flight flags)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = f.WriteTimelineJSON(w, true)
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHTML))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("cable metrics endpoints:\n  /metrics\n  /metrics.txt\n  /windows\n  /timeline\n  /health\n  /debug/pprof/\n"))
	})
	return mux
}
