package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves live metrics and profiling for long simulator runs
// (the cablesim -http flag):
//
//	/metrics      registry snapshot as JSON (volatile metrics included)
//	/metrics.txt  flat sorted "name value" text dump
//	/debug/pprof  the standard net/http/pprof profile index
//
// The handler reads through the same atomics the hot paths update, so
// hitting it mid-run is safe and does not pause the simulation.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w, true)
	})
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w, true)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("cable metrics endpoints:\n  /metrics\n  /metrics.txt\n  /debug/pprof/\n"))
	})
	return mux
}
