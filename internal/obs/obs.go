// Package obs is the dependency-free observability layer: a sharded
// atomic counter/histogram registry threaded through the encode hot
// paths, a sampled decision tracer, and deterministic snapshot export
// (JSON/text dumps, an expvar-style HTTP handler).
//
// Design constraints, in order:
//
//   - The hot path must stay allocation-free and cheap. Counters are
//     cache-line-padded shards; each link end (or scratch, or meter)
//     resolves its counter pointers once at construction and owns a
//     shard index, so a steady-state increment is a single uncontended
//     atomic add with no map lookup and no false sharing.
//   - Snapshots must be deterministic. Shard assignment varies with
//     worker scheduling but sums do not, and JSON map keys marshal in
//     sorted order, so a snapshot of the non-volatile metrics is
//     byte-identical at any Options.Parallelism. Wall-clock and
//     queue-depth metrics are registered as volatile and excluded from
//     deterministic dumps.
//   - Optional hooks (the decision tracer) are nil by default and
//     guarded by a single pointer check.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// NumShards is the number of padded slots per counter. Each link end
// round-robins onto one shard, so concurrent simulation workers update
// disjoint cache lines. Power of two for cheap masking.
const NumShards = 32

// shardCursor round-robins shard assignment across link ends.
var shardCursor atomic.Uint32

// NextShard assigns a shard index to a new counter owner (a link end, a
// compression scratch, a meter). Assignment is round-robin, so ends
// built by different workers land on different cache lines.
func NextShard() uint32 {
	return shardCursor.Add(1) & (NumShards - 1)
}

// slot is one cache-line-padded counter shard: the uint64 plus 56 pad
// bytes fill a 64-byte line, so adjacent shards never false-share.
type slot struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonic sharded counter.
type Counter struct {
	name     string
	volatile bool
	shards   [NumShards]slot
}

// Inc adds 1 on the caller's shard.
func (c *Counter) Inc(shard uint32) { c.shards[shard&(NumShards-1)].v.Add(1) }

// Add adds n on the caller's shard.
func (c *Counter) Add(shard uint32, n uint64) { c.shards[shard&(NumShards-1)].v.Add(n) }

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Value sums every shard.
func (c *Counter) Value() uint64 {
	var s uint64
	for i := range c.shards {
		s += c.shards[i].v.Load()
	}
	return s
}

func (c *Counter) reset() {
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}

// Gauge is a settable instantaneous value (queue depths, in-flight
// work). Gauges are coarse-grained — one atomic, no sharding.
type Gauge struct {
	name     string
	volatile bool
	v        atomic.Int64
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set stores an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

func (g *Gauge) reset() { g.v.Store(0) }

// HistBuckets is the fixed bucket count of a Histogram: bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
const HistBuckets = 32

// Histogram is a log2-bucketed histogram. Buckets are plain atomics
// (one add per observation is rare enough not to shard).
type Histogram struct {
	name     string
	volatile bool
	count    atomic.Uint64
	sum      atomic.Uint64
	buckets  [HistBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(1)
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// merge folds a snapshot of another histogram into this one.
func (h *Histogram) merge(s HistSnapshot) {
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for i := range h.buckets {
		h.buckets[i].Add(s.Log2Buckets[i])
	}
}

// HistAcc accumulates observations in plain (non-atomic) fields so a
// batch-processing hot loop can observe per item and pay the atomic
// cost once: FlushTo folds the whole accumulation into a Histogram with
// one atomic add per touched field. An accumulator belongs to one
// goroutine.
type HistAcc struct {
	Count   uint64
	Sum     uint64
	Buckets [HistBuckets]uint64
}

// Observe records one value locally (same bucketing as
// Histogram.Observe).
func (a *HistAcc) Observe(v uint64) {
	a.Count++
	a.Sum += v
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	a.Buckets[b]++
}

// FlushTo folds the accumulation into h and resets the accumulator.
func (a *HistAcc) FlushTo(h *Histogram) {
	if a.Count == 0 && a.Sum == 0 {
		return
	}
	h.count.Add(a.Count)
	h.sum.Add(a.Sum)
	for i, v := range a.Buckets {
		if v != 0 {
			h.buckets[i].Add(v)
		}
	}
	*a = HistAcc{}
}

// HistSnapshot is the exported form of a Histogram.
type HistSnapshot struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	// Log2Buckets[i] counts values whose bit length is i.
	Log2Buckets [HistBuckets]uint64 `json:"log2_buckets"`
}

// Registry holds named metrics. Registration takes a lock (rare — once
// per metric name); updates are lock-free on the metric itself.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// defaultRegistry is the process-wide registry the hot paths feed.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating on first use) the named counter. A counter
// created here is deterministic: its value depends only on the work
// performed, not on scheduling, so it is included in snapshots used for
// byte-identical comparison.
func (r *Registry) Counter(name string) *Counter { return r.counter(name, false) }

// VolatileCounter returns a counter excluded from deterministic
// snapshots (values that depend on timing or scheduling).
func (r *Registry) VolatileCounter(name string) *Counter { return r.counter(name, true) }

func (r *Registry) counter(name string, volatile bool) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, volatile: volatile}
	r.counters[name] = c
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return r.gauge(name, false) }

// VolatileGauge returns a gauge excluded from deterministic snapshots.
func (r *Registry) VolatileGauge(name string) *Gauge { return r.gauge(name, true) }

func (r *Registry) gauge(name string, volatile bool) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, volatile: volatile}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram { return r.histogram(name, false) }

// VolatileHistogram returns a histogram excluded from deterministic
// snapshots (e.g. wall-clock distributions).
func (r *Registry) VolatileHistogram(name string) *Histogram { return r.histogram(name, true) }

func (r *Registry) histogram(name string, volatile bool) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name, volatile: volatile}
	r.hists[name] = h
	return h
}

// Reset zeroes every metric (for tests and warm-up boundaries). Metric
// identities survive — resolved pointers held by link ends stay valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Merge folds a snapshot into this registry, adding counter and gauge
// values and accumulating histograms. Metrics named in the snapshot are
// created (non-volatile) if absent — zero-valued entries included, so a
// merge also establishes name-set parity with the snapshot's source.
// Memoized simulation cells use this: a cell runs once against a
// private registry and its delta is merged here on every logical
// request, computed or cached, keeping totals request-accurate.
//
// A one-shot merge is PrepareMerge + Apply; callers replaying the same
// snapshot many times (the cell memo) should prepare once and re-apply
// the delta, which skips the registry lock entirely.
func (r *Registry) Merge(s Snapshot) {
	r.PrepareMerge(s).Apply(NextShard())
}

// counterDelta / gaugeDelta / histDelta pair a resolved metric with the
// amount one Apply adds to it.
type counterDelta struct {
	c *Counter
	v uint64
}

type gaugeDelta struct {
	g *Gauge
	v int64
}

type histDelta struct {
	h *Histogram
	s HistSnapshot
}

// MergeDelta is a Snapshot resolved against a destination registry:
// every metric named in the snapshot has been looked up (and created,
// non-volatile, when absent — zero values included, preserving Merge's
// name-set parity) under a single registry lock. Applying the delta is
// pure lock-free atomic adds, so a prepared delta can be re-applied on
// every memo hit without touching the registry mutex — the serialization
// point the per-counter Merge path used to be under -parallel.
type MergeDelta struct {
	counters []counterDelta
	gauges   []gaugeDelta
	hists    []histDelta
}

// PrepareMerge resolves s against r, creating absent metrics, and
// returns a reusable delta. The registry lock is taken exactly once.
func (r *Registry) PrepareMerge(s Snapshot) MergeDelta {
	d := MergeDelta{}
	if len(s.Counters) > 0 {
		d.counters = make([]counterDelta, 0, len(s.Counters))
	}
	if len(s.Gauges) > 0 {
		d.gauges = make([]gaugeDelta, 0, len(s.Gauges))
	}
	if len(s.Histograms) > 0 {
		d.hists = make([]histDelta, 0, len(s.Histograms))
	}
	r.mu.Lock()
	for name, v := range s.Counters {
		c, ok := r.counters[name]
		if !ok {
			c = &Counter{name: name}
			r.counters[name] = c
		}
		d.counters = append(d.counters, counterDelta{c: c, v: v})
	}
	for name, v := range s.Gauges {
		g, ok := r.gauges[name]
		if !ok {
			g = &Gauge{name: name}
			r.gauges[name] = g
		}
		d.gauges = append(d.gauges, gaugeDelta{g: g, v: v})
	}
	for name, hs := range s.Histograms {
		h, ok := r.hists[name]
		if !ok {
			h = &Histogram{name: name}
			r.hists[name] = h
		}
		d.hists = append(d.hists, histDelta{h: h, s: hs})
	}
	r.mu.Unlock()
	return d
}

// Apply adds the delta once, on the given counter shard. It is safe to
// call concurrently and repeatedly; zero-valued entries cost nothing
// (their metrics were already created by PrepareMerge).
func (d MergeDelta) Apply(shard uint32) {
	for _, cd := range d.counters {
		if cd.v != 0 {
			cd.c.Add(shard, cd.v)
		}
	}
	for _, gd := range d.gauges {
		if gd.v != 0 {
			gd.g.Add(gd.v)
		}
	}
	for _, hd := range d.hists {
		if hd.s.Count != 0 || hd.s.Sum != 0 {
			hd.h.merge(hd.s)
		}
	}
}

// Snapshot is a point-in-time copy of a registry's metrics.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures the current metric values. With includeVolatile
// false, timing/scheduling-dependent metrics are omitted and the result
// is deterministic for a deterministic workload.
func (r *Registry) Snapshot(includeVolatile bool) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	for name, c := range r.counters {
		if c.volatile && !includeVolatile {
			continue
		}
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		if g.volatile && !includeVolatile {
			continue
		}
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		if h.volatile && !includeVolatile {
			continue
		}
		hs := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
		for i := range h.buckets {
			hs.Log2Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes an indented JSON snapshot. encoding/json marshals
// map keys in sorted order, so the output is byte-for-byte stable for
// equal metric values.
func (r *Registry) WriteJSON(w io.Writer, includeVolatile bool) error {
	b, err := json.MarshalIndent(r.Snapshot(includeVolatile), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJSONFile dumps a JSON snapshot to path (the -metrics flag).
func (r *Registry) WriteJSONFile(path string, includeVolatile bool) error {
	var sb strings.Builder
	if err := r.WriteJSON(&sb, includeVolatile); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// WriteText writes a flat "name value" dump, sorted by name — the
// grep-friendly sibling of WriteJSON.
func (r *Registry) WriteText(w io.Writer, includeVolatile bool) error {
	s := r.Snapshot(includeVolatile)
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = float64(h.Sum) / float64(h.Count)
		}
		lines = append(lines, fmt.Sprintf("%s count=%d sum=%d mean=%.1f", name, h.Count, h.Sum, mean))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := io.WriteString(w, l+"\n"); err != nil {
			return err
		}
	}
	return nil
}
