package experiments

import (
	"bytes"
	"io"
	"testing"

	"cable/internal/trace"
	"cable/internal/workload/spec"
)

// expMixJSON is the acceptance-shaped mix: two clients, poisson +
// gamma-bursty arrivals, one phase change.
const expMixJSON = `{
  "version": 1,
  "name": "exp-mix",
  "seed": 3,
  "mean_gap": 40,
  "clients": [
    {"id": "front", "rate_fraction": 0.6, "arrival": {"process": "poisson"},
     "content": {"base": "gcc"},
     "phases": [{"at": 0.5, "content": {"base": "omnetpp", "working_set_lines": 8192}}]},
    {"id": "batch", "rate_fraction": 0.4, "arrival": {"process": "gamma", "cv": 3},
     "content": {"base": "mcf", "stream_frac": 0.5}}
  ]
}`

func expMix(t *testing.T) *spec.Workload {
	t.Helper()
	w, err := spec.Parse([]byte(expMixJSON))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWorkloadExperimentPlaceholder: with no source configured the
// driver must return an explanatory placeholder, not an error, so
// full-suite report runs stay green.
func TestWorkloadExperimentPlaceholder(t *testing.T) {
	res, err := Workload(Options{Quick: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) == 0 {
		t.Fatal("placeholder should explain how to configure a source")
	}
}

// TestWorkloadExperimentsDeterministic is the acceptance contract for
// the spec path: the workload experiment (memlink driver) and the mesh
// experiment (topology DES) produce byte-identical tables and metrics
// dumps at any parallelism, memo on or off.
func TestWorkloadExperimentsDeterministic(t *testing.T) {
	w := expMix(t)
	ids := []string{"workload", "mesh"}
	base := Options{Quick: true, Parallelism: 1, DisableCellMemo: true, Workload: w}
	baseTables, baseMetrics := renderAll(t, ids, base)
	for _, opt := range []Options{
		{Quick: true, Parallelism: 8, DisableCellMemo: true, Workload: w},
		{Quick: true, Parallelism: 1, Workload: w},
		{Quick: true, Parallelism: 8, Workload: w},
	} {
		tables, metrics := renderAll(t, ids, opt)
		if tables != baseTables {
			t.Fatalf("tables diverge at parallel=%d memo=%v:\n%s\n-- vs --\n%s",
				opt.Parallelism, !opt.DisableCellMemo, tables, baseTables)
		}
		if !bytes.Equal(metrics, baseMetrics) {
			t.Fatalf("metrics dump diverges at parallel=%d memo=%v",
				opt.Parallelism, !opt.DisableCellMemo)
		}
	}
}

// recordExpClients captures the live mix's per-client streams.
func recordExpClients(t *testing.T, w *spec.Workload, n int) []*trace.Trace {
	t.Helper()
	bufs := map[string]*bytes.Buffer{}
	err := spec.RecordClients(w, n, func(id string) (io.WriteCloser, error) {
		b := &bytes.Buffer{}
		bufs[id] = b
		return writeNopCloser{b}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	traces := make([]*trace.Trace, len(w.Clients))
	for i, id := range w.ClientIDs() {
		tr, err := trace.ReadAll(bytes.NewReader(bufs[id].Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = tr
	}
	return traces
}

type writeNopCloser struct{ io.Writer }

func (writeNopCloser) Close() error { return nil }

// TestWorkloadExperimentReplayMatchesLive: per-client captures of the
// live mix, replayed through the same spec, regenerate the identical
// ratio table.
func TestWorkloadExperimentReplayMatchesLive(t *testing.T) {
	w := expMix(t)
	liveOpt := Options{Quick: true, Parallelism: 2, Workload: w}
	live, err := Workload(liveOpt)
	if err != nil {
		t.Fatal(err)
	}
	n := accesses(liveOpt) * len(w.Clients)
	replayOpt := liveOpt
	replayOpt.Replay = recordExpClients(t, w, n)
	replay, err := Workload(replayOpt)
	if err != nil {
		t.Fatal(err)
	}
	if live.Table.String() != replay.Table.String() {
		t.Fatalf("replay table diverged from live:\n%s\n-- vs --\n%s",
			replay.Table, live.Table)
	}
}
