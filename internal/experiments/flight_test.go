package experiments

import (
	"bytes"
	"testing"

	"cable/internal/fault"
	"cable/internal/obs"
)

// flightDumps resets the shared registry + memo, runs the experiments
// with a fresh Flight at the given parallelism/memo setting, and
// returns the deterministic windows and timeline dumps.
func flightDumps(t *testing.T, ids []string, opt Options) (windows, timeline []byte) {
	t.Helper()
	obs.Default().Reset()
	ResetCellMemo()
	f := obs.NewFlight(obs.FlightConfig{Window: 512})
	opt.Flight = f
	if _, err := RunAll(ids, opt); err != nil {
		t.Fatal(err)
	}
	var w, tl bytes.Buffer
	if err := f.WriteWindowsJSON(&w, false); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteTimelineJSON(&tl, false); err != nil {
		t.Fatal(err)
	}
	if len(f.Keys()) == 0 {
		t.Fatal("no cells registered a recorder")
	}
	return w.Bytes(), tl.Bytes()
}

// TestFlightDeterministicAcrossParallelism is the -windows/-timeline
// contract: dumps are byte-identical whether cells ran serially with
// the memo on or across a pool with the memo off.
func TestFlightDeterministicAcrossParallelism(t *testing.T) {
	ids := []string{"fig12"}
	baseW, baseT := flightDumps(t, ids, Options{Quick: true, Parallelism: 1})
	for _, opt := range []Options{
		{Quick: true, Parallelism: 8},
		{Quick: true, Parallelism: 1, DisableCellMemo: true},
		{Quick: true, Parallelism: 8, DisableCellMemo: true},
	} {
		w, tl := flightDumps(t, ids, opt)
		if !bytes.Equal(baseW, w) {
			t.Fatalf("windows dump differs at parallel=%d nomemo=%v", opt.Parallelism, opt.DisableCellMemo)
		}
		if !bytes.Equal(baseT, tl) {
			t.Fatalf("timeline dump differs at parallel=%d nomemo=%v", opt.Parallelism, opt.DisableCellMemo)
		}
	}
	if !bytes.Contains(baseW, []byte(`"bits_per_line"`)) {
		t.Fatal("windows dump missing derived rates")
	}
	if !bytes.Contains(baseT, []byte(`"kind":"encode"`)) {
		t.Fatal("timeline dump missing encode events")
	}
	if bytes.Contains(baseT, []byte("memo_events")) {
		t.Fatal("deterministic timeline leaked volatile memo events")
	}
}

// TestFlightDeterministicUnderFault: the same contract with the link
// fault injector on — degradation events land in the dumps and still
// byte-match across scheduling.
func TestFlightDeterministicUnderFault(t *testing.T) {
	ids := []string{"fig21"}
	fc := fault.Config{BitRate: 2e-4, Seed: 7}
	baseW, baseT := flightDumps(t, ids, Options{Quick: true, Parallelism: 1, Fault: fc})
	w, tl := flightDumps(t, ids, Options{Quick: true, Parallelism: 8, DisableCellMemo: true, Fault: fc})
	if !bytes.Equal(baseW, w) {
		t.Fatal("faulted windows dump differs between serial+memo and parallel+nomemo")
	}
	if !bytes.Equal(baseT, tl) {
		t.Fatal("faulted timeline dump differs between serial+memo and parallel+nomemo")
	}
	if !bytes.Contains(baseT, []byte(`"kind":"fault"`)) {
		t.Fatal("faulted timeline carries no fault events")
	}
}

// TestFlightKeysStable: distinct cells get distinct digest-derived
// keys, and a repeated run registers the same key set.
func TestFlightKeysStable(t *testing.T) {
	keys := func() []string {
		obs.Default().Reset()
		ResetCellMemo()
		f := obs.NewFlight(obs.FlightConfig{Window: 512})
		if _, err := RunAll([]string{"fig12"}, Options{Quick: true, Parallelism: 4, Flight: f}); err != nil {
			t.Fatal(err)
		}
		return f.Keys()
	}
	a, b := keys(), keys()
	if len(a) < 2 {
		t.Fatalf("fig12 should register multiple cells, got %v", a)
	}
	if len(a) != len(b) {
		t.Fatalf("key sets differ across runs: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("key %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}
