package experiments

import (
	"fmt"

	"cable/internal/sim"
	"cable/internal/stats"
)

// sweepCells fans a (sweep point × benchmark) grid out across the cell
// worker pool: one memory-link run per cell, results slot-indexed as
// point*len(names)+nameIdx so callers aggregate serially in loop order.
func sweepCells(opt Options, points int, names []string,
	run func(point int, name string) (*sim.MemLinkResult, error)) ([]*sim.MemLinkResult, []error) {
	results := make([]*sim.MemLinkResult, points*len(names))
	errs := make([]error, len(results))
	cellRun(opt.workers(), len(results), func(k int) {
		results[k], errs[k] = run(k/len(names), names[k%len(names)])
	})
	return results, errs
}

// Fig19a sweeps the per-thread LLC allocation (1:4 LLC:L4 kept).
func Fig19a(opt Options) (*Result, error) {
	sizes := []int{128 << 10, 512 << 10, 2 << 20, 8 << 20}
	if opt.Quick {
		sizes = []int{64 << 10, 256 << 10, 1 << 20}
	}
	t := stats.NewTable("Fig 19a: compression vs LLC size", "cpack", "gzip", "cable")
	names := sweepSubset(opt)
	results, errs := sweepCells(opt, len(sizes), names, func(si int, name string) (*sim.MemLinkResult, error) {
		cfg := memLinkCfg(opt, name)
		cfg.Chip.LLCBytes = sizes[si]
		cfg.Chip.L4Bytes = sizes[si] * 4
		return runMemLink(opt, cfg)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for si, size := range sizes {
		agg := map[string][]float64{}
		for ni := range names {
			res := results[si*len(names)+ni]
			for _, s := range []string{"cpack", "gzip", "cable"} {
				agg[s] = append(agg[s], res.Ratio(s))
			}
		}
		row := fmt.Sprintf("%dKB", size>>10)
		if size >= 1<<20 {
			row = fmt.Sprintf("%dMB", size>>20)
		}
		for s, vs := range agg {
			t.Set(row, s, stats.Mean(vs))
		}
	}
	return &Result{ID: "fig19a", Table: t, Notes: []string{
		"paper: ratios mostly static across cache sizes, improving slightly at larger caches",
	}}, nil
}

// Fig19b sweeps the LLC:L4 ratio with the LLC fixed: the reachable
// shared data is bounded by the smaller cache, so ratios barely move.
func Fig19b(opt Options) (*Result, error) {
	ratios := []int{2, 4, 8}
	t := stats.NewTable("Fig 19b: compression vs LLC:L4 ratio", "cpack", "gzip", "cable")
	names := sweepSubset(opt)
	results, errs := sweepCells(opt, len(ratios), names, func(ri int, name string) (*sim.MemLinkResult, error) {
		cfg := memLinkCfg(opt, name)
		cfg.Chip.L4Bytes = cfg.Chip.LLCBytes * ratios[ri]
		return runMemLink(opt, cfg)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for ri, r := range ratios {
		agg := map[string][]float64{}
		for ni := range names {
			res := results[ri*len(names)+ni]
			for _, s := range []string{"cpack", "gzip", "cable"} {
				agg[s] = append(agg[s], res.Ratio(s))
			}
		}
		for s, vs := range agg {
			t.Set(fmt.Sprintf("1:%d", r), s, stats.Mean(vs))
		}
	}
	return &Result{ID: "fig19b", Table: t, Notes: []string{
		"paper: averages vary within ~1% across L4 ratios (dictionary bounded by the smaller cache)",
	}}, nil
}

// Fig21 sweeps the hash table size from 2x down to 1/2048x of
// full-sized, reporting compression relative to the 2x table.
func Fig21(opt Options) (*Result, error) {
	factors := []float64{2, 1, 0.5, 0.125, 1.0 / 64, 1.0 / 512, 1.0 / 2048}
	if opt.Quick {
		factors = []float64{2, 0.5, 1.0 / 64, 1.0 / 2048}
	}
	names := sweepSubset(opt)
	t := stats.NewTable("Fig 21: compression vs hash table size (relative to 2x)", "relative")
	results, errs := sweepCells(opt, len(factors), names, func(fi int, name string) (*sim.MemLinkResult, error) {
		cfg := memLinkCfg(opt, name)
		cfg.WithMeters = false
		cfg.Chip.Cable.HashSizeFactor = factors[fi]
		return runMemLink(opt, cfg)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	var base float64
	for fi, f := range factors {
		var vs []float64
		for ni := range names {
			vs = append(vs, results[fi*len(names)+ni].Ratio("cable"))
		}
		m := stats.Mean(vs)
		if base == 0 {
			base = m
		}
		t.Set(fmt.Sprintf("%gx", f), "relative", m/base)
	}
	return &Result{ID: "fig21", Table: t, Notes: []string{
		"paper: graceful degradation; 1/8x loses <7% worst case",
	}}, nil
}

// Fig22 sweeps the data access count (pre-ranked candidates read from
// the data array), relative to 64 accesses.
func Fig22(opt Options) (*Result, error) {
	counts := []int{1, 2, 4, 6, 8, 16, 32, 64}
	if opt.Quick {
		counts = []int{1, 6, 16, 64}
	}
	names := sweepSubset(opt)
	t := stats.NewTable("Fig 22: compression vs data access count (relative to 64)", "relative")
	results, errs := sweepCells(opt, len(counts), names, func(ci int, name string) (*sim.MemLinkResult, error) {
		cfg := memLinkCfg(opt, name)
		cfg.WithMeters = false
		cfg.Chip.Cable.AccessCount = counts[ci]
		return runMemLink(opt, cfg)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	means := map[int]float64{}
	for ci, n := range counts {
		var vs []float64
		for ni := range names {
			vs = append(vs, results[ci*len(names)+ni].Ratio("cable"))
		}
		means[n] = stats.Mean(vs)
	}
	base := means[64]
	for _, n := range counts {
		t.Set(fmt.Sprintf("%d", n), "relative", means[n]/base)
	}
	return &Result{ID: "fig22", Table: t, Notes: []string{
		"paper: one access stays within 80% of 64 accesses — pre-ranking filters collisions well",
	}}, nil
}

// Fig23 sweeps the physical link width; wide flits waste bits on small
// payloads unless the packed transport is used.
func Fig23(opt Options) (*Result, error) {
	type variant struct {
		name   string
		width  int
		packed bool
	}
	variants := []variant{
		{"16-bit", 16, false},
		{"32-bit", 32, false},
		{"64-bit", 64, false},
		{"64-bit-packed", 64, true},
	}
	names := append(sweepSubset(opt), "mcf", "lbm")
	t := stats.NewTable("Fig 23: effective compression vs link width", "cable")
	results, errs := sweepCells(opt, len(variants), names, func(vi int, name string) (*sim.MemLinkResult, error) {
		cfg := memLinkCfg(opt, name)
		cfg.WithMeters = false
		cfg.Chip.Link.WidthBits = variants[vi].width
		cfg.Chip.Link.Packed = variants[vi].packed
		return runMemLink(opt, cfg)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for vi, v := range variants {
		var vs []float64
		for ni := range names {
			vs = append(vs, results[vi*len(names)+ni].Ratio("cable"))
		}
		t.Set(v.name, "cable", stats.Mean(vs))
	}
	return &Result{ID: "fig23", Table: t, Notes: []string{
		"paper: effective ratio degrades at wider links (flit padding); packed transport recovers it",
	}}, nil
}
