// Package experiments contains one driver per table and figure of the
// paper's evaluation (§VI). Each driver regenerates the corresponding
// rows/series; cmd/cablereport runs them all and EXPERIMENTS.md records
// paper-vs-measured values. The same drivers back the bench_test.go
// targets.
package experiments

import (
	"fmt"
	"sort"

	"cable/internal/fault"
	"cable/internal/obs"
	"cable/internal/stats"
	"cable/internal/trace"
	"cable/internal/workload"
	"cable/internal/workload/spec"
)

// Options tune experiment scale. Quick mode shrinks caches, access
// counts and benchmark subsets so the whole suite runs in seconds (for
// tests and benches); full mode is for cmd/cablereport.
type Options struct {
	Quick bool

	// Parallelism bounds the worker pool used both across experiments
	// (RunAll/RunAllStream) and across independent cells inside a
	// driver (per-benchmark, per-sweep-point). Zero or negative means
	// runtime.GOMAXPROCS(0). Results are bit-identical at any setting:
	// every cell seeds its own generators and tables are filled in
	// loop order after collection.
	Parallelism int

	// DisableCellMemo turns off the cross-experiment cell cache
	// (memo.go), forcing every simulation to recompute. Outputs are
	// bit-identical either way; the flag exists for A/B verification
	// and for the `-nomemo` CLI escape hatch.
	DisableCellMemo bool

	// Fault applies deterministic link fault injection to every
	// CABLE simulation the drivers run (the `-fault-rate`/`-fault-seed`
	// CLI flags). The zero value injects nothing and keeps all outputs
	// byte-identical to a build without the fault layer. Fault config
	// is folded into the cell-memo digests, so faulted and clean cells
	// never alias.
	Fault fault.Config

	// Topology/Chips override the `mesh` experiment's interconnect
	// shape ("ring"|"mesh"|"star") and chip count from the CLI
	// (`-topology`, `-chips`). Zero values mean the driver default
	// (16-chip mesh; 8 chips in quick mode).
	Topology string
	Chips    int

	// Workload, when non-nil, is a declarative workload spec (the
	// `-workload-spec` CLI flag). The `workload` experiment runs it
	// through the memory-link driver, and the `mesh` experiment swaps
	// its benchmark sweep for a single spec-driven topology run. Folded
	// into the cell digests, so distinct specs never alias memo cells.
	Workload *spec.Workload

	// Replay, when non-empty, feeds recorded cabletrace captures (the
	// `-replay` CLI flag) instead of live generators: the `workload`
	// experiment maps one capture per program slot (or per client when
	// combined with Workload), and the `mesh` experiment maps one per
	// chip. Behavioral, so folded into the cell digests.
	Replay []*trace.Trace

	// Flight, when non-nil, attaches a virtual-time flight recorder to
	// every simulation cell the drivers run (the `-windows`/`-timeline`
	// CLI flags). Each distinct cell digest registers exactly one
	// recorder — under the cell memo only the single-flight compute
	// owner records; with the memo off, repeated identical cells record
	// identical content and only the first registration is kept — so
	// flight dumps are byte-identical at any Parallelism, memo on or
	// off. Observation-only: simulated results are unaffected.
	Flight *obs.Flight
}

// Result is one regenerated table/figure.
type Result struct {
	ID    string
	Table *stats.Table
	Notes []string
}

type driver struct {
	id   string
	desc string
	run  func(Options) (*Result, error)
}

var drivers = []driver{
	{"fig3", "compression ratio vs dictionary size, with/without pointer overhead", Fig3},
	{"fig11", "off-chip link compression normalized to CPACK", Fig11},
	{"fig12", "off-chip link compression, raw ratios", Fig12},
	{"fig13", "4-chip coherence link compression", Fig13},
	{"fig14a", "throughput speedup at 2048 threads", Fig14a},
	{"fig14b", "mean throughput speedup vs thread count", Fig14b},
	{"fig15", "cooperative multiprogram (Single vs Multi4)", Fig15},
	{"fig16", "destructive multiprogram mixes (Table VI)", Fig16},
	{"fig17", "single-thread degradation from compression latency", Fig17},
	{"fig18", "memory subsystem energy breakdown", Fig18},
	{"fig19a", "compression vs LLC size", Fig19a},
	{"fig19b", "compression vs LLC:L4 ratio", Fig19b},
	{"fig20", "CABLE with different compression engines", Fig20},
	{"fig21", "hash table size sensitivity", Fig21},
	{"fig22", "data access count sensitivity", Fig22},
	{"fig23", "link width sensitivity", Fig23},
	{"tab3", "area overheads (hash table, WMT, RemoteLID width)", Tab3},
	{"toggles", "bit-toggle reduction on the 16-bit link", Toggles},
	{"headline", "headline aggregates (§VI-B)", Headline},
	{"onoff", "on/off compression control (§VI-D)", OnOff},
	{"ablation", "design-choice ablations (pointer width, bucket depth, insert signatures)", Ablation},
	{"breakdown", "per-benchmark encoding-class coverage (raw/standalone/diff-N, skips, bits per line)", Breakdown},
	{"mesh", "N-chip topology scale-out (ring/mesh/star, discrete-event contention)", Mesh},
	{"workload", "declarative workload-spec mix / trace replay through the memory-link driver", Workload},
}

// IDs lists every experiment id in paper order.
func IDs() []string {
	ids := make([]string, len(drivers))
	for i, d := range drivers {
		ids[i] = d.id
	}
	return ids
}

// Describe returns the one-line description of an experiment.
func Describe(id string) string {
	for _, d := range drivers {
		if d.id == id {
			return d.desc
		}
	}
	return ""
}

// Run executes one experiment by id.
func Run(id string, opt Options) (*Result, error) {
	for _, d := range drivers {
		if d.id == id {
			return d.run(opt)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
}

// benchSubset returns the benchmark list for an option level: a
// representative 8-benchmark subset in quick mode, the full suite
// otherwise.
func benchSubset(opt Options, nonTrivialOnly bool) []string {
	var specs []workload.Spec
	if nonTrivialOnly {
		specs = workload.NonTrivial()
	} else {
		specs = workload.All()
	}
	names := make([]string, 0, len(specs))
	for _, s := range specs {
		names = append(names, s.Name)
	}
	if !opt.Quick {
		return names
	}
	quick := []string{"gcc", "bzip2", "omnetpp", "dealII", "tonto", "gobmk", "povray", "soplex"}
	if !nonTrivialOnly {
		quick = append(quick, "mcf", "lbm")
	}
	sort.Strings(quick)
	return quick
}

// accesses returns the per-program access budget.
func accesses(opt Options) int {
	if opt.Quick {
		return 12000
	}
	return 60000
}

// sweepSubset returns the benchmark list for parameter sweeps, which
// multiply run count by sweep width: a fixed representative subset
// (half similarity-rich, half mixed/hard) rather than the full suite.
func sweepSubset(opt Options) []string {
	if opt.Quick {
		return []string{"dealII", "gobmk", "omnetpp", "bzip2"}
	}
	return []string{"dealII", "tonto", "gobmk", "omnetpp", "soplex", "bzip2", "gcc", "povray"}
}

// zeroDominantLast orders benchmark rows with the zero-dominant group
// on the right/bottom, as Fig 12 does.
func zeroDominantLast(names []string) []string {
	var normal, zd []string
	for _, n := range names {
		s, err := workload.ByName(n)
		if err == nil && s.ZeroDominant {
			zd = append(zd, n)
		} else {
			normal = append(normal, n)
		}
	}
	return append(normal, zd...)
}
