package experiments

import (
	"math"
	"testing"
)

var quick = Options{Quick: true}

func run(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, quick)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.Table == nil || len(res.Table.Rows()) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	t.Logf("\n%s", res.Table)
	return res
}

func TestIDsComplete(t *testing.T) {
	// Every table/figure in the evaluation must have a driver.
	want := []string{"fig3", "fig11", "fig12", "fig13", "fig14a", "fig14b",
		"fig15", "fig16", "fig17", "fig18", "fig19a", "fig19b", "fig20",
		"fig21", "fig22", "fig23", "tab3", "toggles", "headline", "onoff"}
	ids := IDs()
	set := map[string]bool{}
	for _, id := range ids {
		set[id] = true
		if Describe(id) == "" {
			t.Errorf("%s has no description", id)
		}
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("missing experiment %s", w)
		}
	}
	if _, err := Run("nope", quick); err == nil {
		t.Error("unknown id should error")
	}
	if Describe("nope") != "" {
		t.Error("unknown id should have empty description")
	}
}

func TestFig3Shape(t *testing.T) {
	res := run(t, "fig3")
	rows := res.Table.Rows()
	first, last := rows[0], rows[len(rows)-1]
	// Ideal must grow with dictionary size…
	if res.Table.Get(last, "ideal") <= res.Table.Get(first, "ideal")*1.02 {
		t.Fatalf("ideal does not grow: %.3f → %.3f",
			res.Table.Get(first, "ideal"), res.Table.Get(last, "ideal"))
	}
	// …while pointer overhead flattens or reverses the gains.
	idealGain := res.Table.Get(last, "ideal") / res.Table.Get(first, "ideal")
	ptrGain := res.Table.Get(last, "ideal+pointer") / res.Table.Get(first, "ideal+pointer")
	if ptrGain > idealGain*0.9 {
		t.Fatalf("pointer overhead should eat the gains: ideal %.3fx vs with-pointer %.3fx", idealGain, ptrGain)
	}
}

func TestFig12Shape(t *testing.T) {
	res := run(t, "fig12")
	cable := res.Table.Get("mean", "cable")
	cpack := res.Table.Get("mean", "cpack")
	bdi := res.Table.Get("mean", "bdi")
	if cable <= cpack {
		t.Fatalf("CABLE mean %.2f must beat CPACK %.2f", cable, cpack)
	}
	if cable/cpack < 1.3 {
		t.Fatalf("CABLE/CPACK = %.2f, want ≥1.3 (paper: 1.82)", cable/cpack)
	}
	if cpack < bdi*0.8 {
		t.Fatalf("CPACK %.2f should be ≥ BDI %.2f ballpark", cpack, bdi)
	}
	// Zero-dominant group (mcf, lbm in quick set) must be ≥10x for
	// CABLE and high for everyone.
	for _, zd := range []string{"mcf", "lbm"} {
		if v := res.Table.Get(zd, "cable"); !math.IsNaN(v) && v < 10 {
			t.Fatalf("%s cable = %.2f, want ≥10", zd, v)
		}
	}
}

func TestFig11NormalizedToCPack(t *testing.T) {
	res := run(t, "fig11")
	if v := res.Table.Get("gcc", "cpack"); math.Abs(v-1) > 1e-9 {
		t.Fatalf("cpack column must be 1 after normalization, got %v", v)
	}
	if res.Table.Get("mean", "cable") <= 1.2 {
		t.Fatalf("normalized CABLE mean %.2f, want >1.2", res.Table.Get("mean", "cable"))
	}
}

func TestFig13Shape(t *testing.T) {
	res := run(t, "fig13")
	if res.Table.Get("mean", "cable") <= res.Table.Get("mean", "cpack") {
		t.Fatal("coherence-link CABLE must beat CPACK on average")
	}
}

func TestFig15CooperativeShape(t *testing.T) {
	res := run(t, "fig15")
	cableGain := res.Table.Get("mean", "cable-multi4") / res.Table.Get("mean", "cable-single")
	gzipGain := res.Table.Get("mean", "gzip-multi4") / res.Table.Get("mean", "gzip-single")
	if cableGain <= gzipGain {
		t.Fatalf("cooperative co-run: CABLE gain %.3f must exceed gzip gain %.3f", cableGain, gzipGain)
	}
	if cableGain < 1.05 {
		t.Fatalf("CABLE should benefit from cooperative co-runs, got %.3f", cableGain)
	}
}

func TestFig16DestructiveShape(t *testing.T) {
	res := run(t, "fig16")
	gzip := res.Table.Get("mean", "gzip")
	cable := res.Table.Get("mean", "cable")
	if gzip >= 1.0 {
		t.Fatalf("gzip should suffer dictionary pollution: relative %.3f", gzip)
	}
	if cable <= gzip {
		t.Fatalf("CABLE %.3f must hold up better than gzip %.3f under pollution", cable, gzip)
	}
	if cable < 0.9 {
		t.Fatalf("CABLE should roughly maintain single-run ratios, got %.3f", cable)
	}
}

func TestFig17LatencyShape(t *testing.T) {
	res := run(t, "fig17")
	cpack := res.Table.Get("mean", "cpack")
	gzip := res.Table.Get("mean", "gzip")
	cable := res.Table.Get("mean", "cable")
	if !(cpack <= cable && cable <= gzip+0.05) {
		t.Fatalf("overhead should order cpack ≤ cable ≲ gzip: %.3f %.3f %.3f", cpack, cable, gzip)
	}
	if cable > 0.2 {
		t.Fatalf("CABLE mean overhead %.3f too high (paper ≈5%%)", cable)
	}
}

func TestFig18EnergyShape(t *testing.T) {
	res := run(t, "fig18")
	if v := res.Table.Get("mean", "cable-total"); v >= 1.0 {
		t.Fatalf("CABLE should reduce memory-subsystem energy, got %.3f of baseline", v)
	}
	if comp := res.Table.Get("mean", "cable-comp"); comp > 0.15 {
		t.Fatalf("compression energy %.3f of baseline — should be small", comp)
	}
	if link := res.Table.Get("mean", "base-link"); link < 0.05 {
		t.Fatalf("baseline link energy fraction %.3f — too small to matter", link)
	}
}

func TestFig20EngineOrdering(t *testing.T) {
	res := run(t, "fig20")
	oracle := res.Table.Get("mean", "oracle")
	lbe := res.Table.Get("mean", "lbe")
	cp128 := res.Table.Get("mean", "cpack128")
	if oracle <= lbe {
		t.Fatalf("ORACLE %.2f must top LBE %.2f", oracle, lbe)
	}
	if lbe <= cp128 {
		t.Fatalf("LBE %.2f must beat CPACK128 %.2f (pointer overhead)", lbe, cp128)
	}
}

func TestFig21GracefulDegradation(t *testing.T) {
	res := run(t, "fig21")
	rows := res.Table.Rows()
	smallest := res.Table.Get(rows[len(rows)-1], "relative")
	if smallest < 0.5 {
		t.Fatalf("1/2048x table keeps only %.2f of performance — not graceful", smallest)
	}
	if smallest > 1.02 {
		t.Fatalf("smaller table should not beat 2x: %.3f", smallest)
	}
	half := res.Table.Get("0.5x", "relative")
	if half < 0.85 {
		t.Fatalf("half-sized table at %.2f — should be within ~15%%", half)
	}
}

func TestFig22AccessCountResilient(t *testing.T) {
	res := run(t, "fig22")
	one := res.Table.Get("1", "relative")
	if one < 0.7 {
		t.Fatalf("1-access case %.2f, paper says within 80%% of 64", one)
	}
	six := res.Table.Get("6", "relative")
	if six < one {
		t.Fatalf("6 accesses (%.3f) should be ≥ 1 access (%.3f)", six, one)
	}
}

func TestFig23LinkWidthShape(t *testing.T) {
	res := run(t, "fig23")
	w16 := res.Table.Get("16-bit", "cable")
	w64 := res.Table.Get("64-bit", "cable")
	packed := res.Table.Get("64-bit-packed", "cable")
	if w64 >= w16 {
		t.Fatalf("64-bit flits %.2f should waste more than 16-bit %.2f", w64, w16)
	}
	if packed <= w64 {
		t.Fatalf("packed transport %.2f must recover padding vs %.2f", packed, w64)
	}
}

func TestTab3MatchesPaper(t *testing.T) {
	res := run(t, "tab3")
	check := func(row, col string, lo, hi float64) {
		v := res.Table.Get(row, col)
		if v < lo || v > hi {
			t.Errorf("%s/%s = %.3f, want in [%v, %v]", row, col, v, lo, hi)
		}
	}
	// Paper Table III: 1.76 / 3.32 / 2.50 % hash tables; 0.4 / 1.74 %
	// WMTs; 17/18/17-bit RemoteLIDs.
	check("off-chip buffer", "hash-table-%", 1.2, 2.4)
	check("on-chip cache", "hash-table-%", 2.5, 4.2)
	check("multi-chip LLC", "hash-table-%", 0.5, 3.0)
	check("off-chip buffer", "wmt-%", 0.2, 0.8)
	check("multi-chip LLC", "wmt-%", 1.0, 2.5)
	check("off-chip buffer", "remotelid-bits", 17, 17)
	check("on-chip cache", "remotelid-bits", 18, 18)
	check("multi-chip LLC", "remotelid-bits", 17, 17)
}

func TestTogglesReduced(t *testing.T) {
	res := run(t, "toggles")
	cable := res.Table.Get("mean", "cable")
	if cable <= 0 {
		t.Fatalf("CABLE should reduce toggles, got %.3f", cable)
	}
}

func TestHeadline(t *testing.T) {
	res := run(t, "headline")
	rel := res.Table.Get("cable vs cpack", "value")
	if rel < 1.3 {
		t.Fatalf("headline CABLE/CPACK %.2f, want ≥1.3", rel)
	}
}

func TestOnOffControl(t *testing.T) {
	res := run(t, "onoff")
	always := res.Table.Get("mean", "always-on-loss")
	adaptive := res.Table.Get("mean", "adaptive-loss")
	if adaptive > always {
		t.Fatalf("adaptive loss %.3f should not exceed always-on %.3f", adaptive, always)
	}
}

func TestFig14aThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	res := run(t, "fig14a")
	cable := res.Table.Get("mean", "cable")
	cpack := res.Table.Get("mean", "cpack")
	if cable <= 1.0 {
		t.Fatalf("CABLE mean speedup %.2f at 2048 threads, want >1", cable)
	}
	if cable < cpack {
		t.Fatalf("CABLE %.2f should be at least CPACK %.2f", cable, cpack)
	}
	// Memory-bound gains most; compute-bound ~flat (paper Fig 14a).
	if mcf, pov := res.Table.Get("mcf", "cable"), res.Table.Get("povray", "cable"); mcf <= pov {
		t.Fatalf("mcf %.2f should out-speed povray %.2f", mcf, pov)
	}
}

func TestFig14bThreadSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	res := run(t, "fig14b")
	rows := res.Table.Rows()
	lo := res.Table.Get(rows[0], "cable")
	hi := res.Table.Get(rows[len(rows)-1], "cable")
	if hi <= lo {
		t.Fatalf("speedup should grow with thread count: %.2f → %.2f", lo, hi)
	}
}

func TestAblationShape(t *testing.T) {
	res := run(t, "ablation")
	base := res.Table.Get("baseline (17b LIDs, depth 2, 2 sigs)", "ratio")
	tags := res.Table.Get("40b tag pointers (no WMT)", "ratio")
	if tags >= base {
		t.Fatalf("tag pointers %.3f should cost vs LIDs %.3f (§III-D)", tags, base)
	}
	for _, row := range []string{"bucket depth 1", "bucket depth 4", "1 insert signatures", "4 insert signatures"} {
		v := res.Table.Get(row, "ratio")
		if v < base*0.7 || v > base*1.3 {
			t.Fatalf("%s = %.3f wildly off baseline %.3f", row, v, base)
		}
	}
}
