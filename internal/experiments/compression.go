package experiments

import (
	"fmt"

	"cable/internal/compress"
	"cable/internal/sim"
	"cable/internal/stats"
	"cable/internal/workload"
)

// memLinkSchemes are the Fig 11/12 comparison columns.
var memLinkSchemes = []string{"bdi", "cpack", "cpack128", "lbe256", "gzip", "cable"}

func memLinkCfg(opt Options, benchmarks ...string) sim.MemLinkConfig {
	cfg := sim.DefaultMemLinkConfig(benchmarks...)
	cfg.AccessesPerProgram = accesses(opt)
	if opt.Quick {
		cfg.Chip.LLCBytes = 128 << 10
		cfg.Chip.L4Bytes = 512 << 10
	}
	return cfg
}

// runPerBenchmark runs the memory-link sim once per benchmark —
// benchmarks fan out across the cell worker pool — and returns scheme
// ratios.
func runPerBenchmark(opt Options, names []string) (map[string]map[string]float64, error) {
	rows := make([]map[string]float64, len(names))
	errs := make([]error, len(names))
	cellRun(opt.workers(), len(names), func(i int) {
		res, err := runMemLink(opt, memLinkCfg(opt, names[i]))
		if err != nil {
			errs[i] = err
			return
		}
		row := make(map[string]float64, len(memLinkSchemes))
		for _, s := range memLinkSchemes {
			row[s] = res.Ratio(s)
		}
		rows[i] = row
	})
	out := make(map[string]map[string]float64, len(names))
	for i, name := range names {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[name] = rows[i]
	}
	return out, nil
}

// firstErr returns the first non-nil error in cell order, mirroring
// the error a serial loop would have surfaced.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Fig3 reproduces the motivation plot: an ideal streaming dictionary
// keeps improving with size, but pointer overhead flattens the curve.
func Fig3(opt Options) (*Result, error) {
	t := stats.NewTable("Fig 3: compression ratio vs dictionary size", "ideal", "ideal+pointer")
	sizes := []int{128, 512, 2 << 10, 8 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20}
	if opt.Quick {
		sizes = []int{128, 2 << 10, 32 << 10, 512 << 10}
	}
	names := benchSubset(opt, true)
	// One cell per (dictionary size, benchmark): each owns its own
	// generator and stream dictionary, so all cells are independent.
	type fig3Cell struct {
		withPtr, noPtr, src uint64
		err                 error
	}
	cells := make([]fig3Cell, len(sizes)*len(names))
	cellRun(opt.workers(), len(cells), func(k int) {
		size, name := sizes[k/len(names)], names[k%len(names)]
		c := &cells[k]
		g, err := workload.New(name, 0, 0)
		if err != nil {
			c.err = err
			return
		}
		cs := compress.NewCPackStream(size)
		// Compress the raw miss-stream contents: Fig 3 is a
		// profiling study over benchmark data, pre-simulation.
		n := accesses(opt) / 4
		for i := 0; i < n; i++ {
			a := g.Next()
			w, np := cs.CompressBits(g.LineData(a.LineAddr))
			c.withPtr += uint64(w)
			c.noPtr += uint64(np)
			c.src += 512
		}
	})
	for si, size := range sizes {
		var withPtr, noPtr, src uint64
		for ni := range names {
			c := &cells[si*len(names)+ni]
			if c.err != nil {
				return nil, c.err
			}
			withPtr += c.withPtr
			noPtr += c.noPtr
			src += c.src
		}
		row := fmt.Sprintf("%dB", size)
		if size >= 1<<20 {
			row = fmt.Sprintf("%dMB", size>>20)
		} else if size >= 1<<10 {
			row = fmt.Sprintf("%dKB", size>>10)
		}
		t.Set(row, "ideal", float64(src)/float64(noPtr))
		t.Set(row, "ideal+pointer", float64(src)/float64(withPtr))
	}
	return &Result{ID: "fig3", Table: t, Notes: []string{
		"ideal grows with dictionary size; ideal+pointer stays flat (pointer overhead cancels the gains)",
	}}, nil
}

// Fig12 is the raw off-chip compression comparison; the zero-dominant
// group is listed last, as in the paper.
func Fig12(opt Options) (*Result, error) {
	names := zeroDominantLast(benchSubset(opt, false))
	rows, err := runPerBenchmark(opt, names)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig 12: off-chip link compression (raw ratios)", memLinkSchemes...)
	for _, name := range names {
		for s, v := range rows[name] {
			t.Set(name, s, v)
		}
	}
	t.AddMeanRow("mean")
	return &Result{ID: "fig12", Table: t, Notes: []string{
		"paper: CABLE 8.2x mean vs CPACK 4.5x (82% better); zero-dominant group ≥16x for every scheme",
	}}, nil
}

// Fig11 is Fig 12 normalized to CPACK.
func Fig11(opt Options) (*Result, error) {
	names := zeroDominantLast(benchSubset(opt, false))
	rows, err := runPerBenchmark(opt, names)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig 11: off-chip link compression (normalized to CPACK)", memLinkSchemes...)
	for _, name := range names {
		base := rows[name]["cpack"]
		for s, v := range rows[name] {
			t.Set(name, s, v/base)
		}
	}
	t.AddMeanRow("mean")
	return &Result{ID: "fig11", Table: t, Notes: []string{
		"paper: CABLE ≈1.47x CPACK relative on average (46.9% better per-benchmark mean)",
	}}, nil
}

// Fig13 is the 4-chip coherence-link study.
func Fig13(opt Options) (*Result, error) {
	names := zeroDominantLast(benchSubset(opt, false))
	schemes := []string{"bdi", "cpack", "cpack128", "lbe256", "gzip", "cable"}
	t := stats.NewTable("Fig 13: coherence-link compression, 4-chip CMP", schemes...)
	results := make([]*sim.MultiChipResult, len(names))
	errs := make([]error, len(names))
	cellRun(opt.workers(), len(names), func(i int) {
		cfg := sim.DefaultMultiChipConfig(names[i])
		cfg.Accesses = accesses(opt)
		cfg.Fault = opt.Fault
		if opt.Quick {
			cfg.LLCBytes = 128 << 10
		}
		if opt.Flight != nil {
			// Multichip runs are not memoized; duplicate keys get
			// throwaway recorders, keeping flight dumps deterministic.
			cfg.Recorder = opt.Flight.Recorder(multiChipFlightKey(cfg))
		}
		results[i], errs[i] = sim.RunMultiChip(cfg)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for i, name := range names {
		for _, s := range schemes {
			t.Set(name, s, results[i].Ratio(s))
		}
	}
	t.AddMeanRow("mean")
	return &Result{ID: "fig13", Table: t, Notes: []string{
		"paper: CABLE+LBE 10.6x average, 86.4% better than CPACK; dirty transfers lower ratios slightly",
	}}, nil
}

// Fig20 swaps the engine CABLE delegates to.
func Fig20(opt Options) (*Result, error) {
	engines := []string{"cpack128", "gzip-seeded", "lbe", "oracle"}
	t := stats.NewTable("Fig 20: CABLE with different engines", engines...)
	names := sweepSubset(opt)
	ratios := make([]float64, len(names)*len(engines))
	errs := make([]error, len(ratios))
	cellRun(opt.workers(), len(ratios), func(k int) {
		cfg := memLinkCfg(opt, names[k/len(engines)])
		cfg.WithMeters = false
		cfg.Chip.Cable.EngineName = engines[k%len(engines)]
		res, err := runMemLink(opt, cfg)
		if err != nil {
			errs[k] = err
			return
		}
		ratios[k] = res.Ratio("cable")
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for ni, name := range names {
		for ei, eng := range engines {
			t.Set(name, eng, ratios[ni*len(engines)+ei])
		}
	}
	t.AddMeanRow("mean")
	return &Result{ID: "fig20", Table: t, Notes: []string{
		"paper ordering: ORACLE > LBE > gzip > CPACK128 (pointer overhead and unaligned patterns matter)",
	}}, nil
}

// Toggles measures wire bit-toggle reduction (§VI-D).
func Toggles(opt Options) (*Result, error) {
	names := benchSubset(opt, false)
	t := stats.NewTable("§VI-D: bit-toggle reduction vs uncompressed", "cpack", "cable")
	results := make([]*sim.MemLinkResult, len(names))
	errs := make([]error, len(names))
	cellRun(opt.workers(), len(names), func(i int) {
		results[i], errs[i] = runMemLink(opt, memLinkCfg(opt, names[i]))
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for i, name := range names {
		res := results[i]
		base := float64(res.Toggles["none"])
		if base == 0 {
			continue
		}
		t.Set(name, "cpack", 1-float64(res.Toggles["cpack"])/base)
		t.Set(name, "cable", 1-float64(res.Toggles["cable"])/base)
	}
	t.AddMeanRow("mean")
	return &Result{ID: "toggles", Table: t, Notes: []string{
		"paper: CABLE reduces toggles by 30.2% on average, 16.9% beyond CPACK",
	}}, nil
}

// Headline aggregates the §VI-B numbers.
func Headline(opt Options) (*Result, error) {
	names := workload.Names()
	if opt.Quick {
		names = benchSubset(opt, false)
	}
	rows, err := runPerBenchmark(opt, names)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Headline (§VI-B)", "value")
	perScheme := map[string][]float64{}
	for _, name := range names {
		for s, v := range rows[name] {
			perScheme[s] = append(perScheme[s], v)
		}
	}
	cable := stats.Mean(perScheme["cable"])
	cpack := stats.Mean(perScheme["cpack"])
	t.Set("cable mean ratio", "value", cable)
	t.Set("cpack mean ratio", "value", cpack)
	t.Set("cable vs cpack", "value", cable/cpack)
	t.Set("gzip mean ratio", "value", stats.Mean(perScheme["gzip"]))
	t.Set("lbe256 mean ratio", "value", stats.Mean(perScheme["lbe256"]))
	t.Set("bdi mean ratio", "value", stats.Mean(perScheme["bdi"]))
	return &Result{ID: "headline", Table: t, Notes: []string{
		"paper: CABLE 8.2x vs CPACK 4.5x (1.82x relative); effective bandwidth 7.2x",
	}}, nil
}
