package experiments

import (
	"fmt"

	"cable/internal/compress"
	"cable/internal/sim"
	"cable/internal/stats"
	"cable/internal/workload"
)

// memLinkSchemes are the Fig 11/12 comparison columns.
var memLinkSchemes = []string{"bdi", "cpack", "cpack128", "lbe256", "gzip", "cable"}

func memLinkCfg(opt Options, benchmarks ...string) sim.MemLinkConfig {
	cfg := sim.DefaultMemLinkConfig(benchmarks...)
	cfg.AccessesPerProgram = accesses(opt)
	if opt.Quick {
		cfg.Chip.LLCBytes = 128 << 10
		cfg.Chip.L4Bytes = 512 << 10
	}
	return cfg
}

// runPerBenchmark runs the memory-link sim once per benchmark and
// returns scheme ratios.
func runPerBenchmark(opt Options, names []string) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	for _, name := range names {
		res, err := sim.RunMemoryLink(memLinkCfg(opt, name))
		if err != nil {
			return nil, err
		}
		row := map[string]float64{}
		for _, s := range memLinkSchemes {
			row[s] = res.Ratio(s)
		}
		out[name] = row
	}
	return out, nil
}

// Fig3 reproduces the motivation plot: an ideal streaming dictionary
// keeps improving with size, but pointer overhead flattens the curve.
func Fig3(opt Options) (*Result, error) {
	t := stats.NewTable("Fig 3: compression ratio vs dictionary size", "ideal", "ideal+pointer")
	sizes := []int{128, 512, 2 << 10, 8 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20}
	if opt.Quick {
		sizes = []int{128, 2 << 10, 32 << 10, 512 << 10}
	}
	names := benchSubset(opt, true)
	for _, size := range sizes {
		var withPtr, noPtr, src uint64
		for _, name := range names {
			g, err := workload.New(name, 0, 0)
			if err != nil {
				return nil, err
			}
			cs := compress.NewCPackStream(size)
			// Compress the raw miss-stream contents: Fig 3 is a
			// profiling study over benchmark data, pre-simulation.
			n := accesses(opt) / 4
			for i := 0; i < n; i++ {
				a := g.Next()
				w, np := cs.CompressBits(g.LineData(a.LineAddr))
				withPtr += uint64(w)
				noPtr += uint64(np)
				src += 512
			}
		}
		row := fmt.Sprintf("%dB", size)
		if size >= 1<<20 {
			row = fmt.Sprintf("%dMB", size>>20)
		} else if size >= 1<<10 {
			row = fmt.Sprintf("%dKB", size>>10)
		}
		t.Set(row, "ideal", float64(src)/float64(noPtr))
		t.Set(row, "ideal+pointer", float64(src)/float64(withPtr))
	}
	return &Result{ID: "fig3", Table: t, Notes: []string{
		"ideal grows with dictionary size; ideal+pointer stays flat (pointer overhead cancels the gains)",
	}}, nil
}

// Fig12 is the raw off-chip compression comparison; the zero-dominant
// group is listed last, as in the paper.
func Fig12(opt Options) (*Result, error) {
	names := zeroDominantLast(benchSubset(opt, false))
	rows, err := runPerBenchmark(opt, names)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig 12: off-chip link compression (raw ratios)", memLinkSchemes...)
	for _, name := range names {
		for s, v := range rows[name] {
			t.Set(name, s, v)
		}
	}
	t.AddMeanRow("mean")
	return &Result{ID: "fig12", Table: t, Notes: []string{
		"paper: CABLE 8.2x mean vs CPACK 4.5x (82% better); zero-dominant group ≥16x for every scheme",
	}}, nil
}

// Fig11 is Fig 12 normalized to CPACK.
func Fig11(opt Options) (*Result, error) {
	names := zeroDominantLast(benchSubset(opt, false))
	rows, err := runPerBenchmark(opt, names)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig 11: off-chip link compression (normalized to CPACK)", memLinkSchemes...)
	for _, name := range names {
		base := rows[name]["cpack"]
		for s, v := range rows[name] {
			t.Set(name, s, v/base)
		}
	}
	t.AddMeanRow("mean")
	return &Result{ID: "fig11", Table: t, Notes: []string{
		"paper: CABLE ≈1.47x CPACK relative on average (46.9% better per-benchmark mean)",
	}}, nil
}

// Fig13 is the 4-chip coherence-link study.
func Fig13(opt Options) (*Result, error) {
	names := benchSubset(opt, false)
	schemes := []string{"bdi", "cpack", "cpack128", "lbe256", "gzip", "cable"}
	t := stats.NewTable("Fig 13: coherence-link compression, 4-chip CMP", schemes...)
	for _, name := range zeroDominantLast(names) {
		cfg := sim.DefaultMultiChipConfig(name)
		cfg.Accesses = accesses(opt)
		if opt.Quick {
			cfg.LLCBytes = 128 << 10
		}
		res, err := sim.RunMultiChip(cfg)
		if err != nil {
			return nil, err
		}
		for _, s := range schemes {
			t.Set(name, s, res.Ratio(s))
		}
	}
	t.AddMeanRow("mean")
	return &Result{ID: "fig13", Table: t, Notes: []string{
		"paper: CABLE+LBE 10.6x average, 86.4% better than CPACK; dirty transfers lower ratios slightly",
	}}, nil
}

// Fig20 swaps the engine CABLE delegates to.
func Fig20(opt Options) (*Result, error) {
	engines := []string{"cpack128", "gzip-seeded", "lbe", "oracle"}
	t := stats.NewTable("Fig 20: CABLE with different engines", engines...)
	names := sweepSubset(opt)
	for _, name := range names {
		for _, eng := range engines {
			cfg := memLinkCfg(opt, name)
			cfg.WithMeters = false
			cfg.Chip.Cable.EngineName = eng
			res, err := sim.RunMemoryLink(cfg)
			if err != nil {
				return nil, err
			}
			t.Set(name, eng, res.Ratio("cable"))
		}
	}
	t.AddMeanRow("mean")
	return &Result{ID: "fig20", Table: t, Notes: []string{
		"paper ordering: ORACLE > LBE > gzip > CPACK128 (pointer overhead and unaligned patterns matter)",
	}}, nil
}

// Toggles measures wire bit-toggle reduction (§VI-D).
func Toggles(opt Options) (*Result, error) {
	names := benchSubset(opt, false)
	t := stats.NewTable("§VI-D: bit-toggle reduction vs uncompressed", "cpack", "cable")
	for _, name := range names {
		res, err := sim.RunMemoryLink(memLinkCfg(opt, name))
		if err != nil {
			return nil, err
		}
		base := float64(res.Toggles["none"])
		if base == 0 {
			continue
		}
		t.Set(name, "cpack", 1-float64(res.Toggles["cpack"])/base)
		t.Set(name, "cable", 1-float64(res.Toggles["cable"])/base)
	}
	t.AddMeanRow("mean")
	return &Result{ID: "toggles", Table: t, Notes: []string{
		"paper: CABLE reduces toggles by 30.2% on average, 16.9% beyond CPACK",
	}}, nil
}

// Headline aggregates the §VI-B numbers.
func Headline(opt Options) (*Result, error) {
	names := workload.Names()
	if opt.Quick {
		names = benchSubset(opt, false)
	}
	rows, err := runPerBenchmark(opt, names)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Headline (§VI-B)", "value")
	perScheme := map[string][]float64{}
	for _, name := range names {
		for s, v := range rows[name] {
			perScheme[s] = append(perScheme[s], v)
		}
	}
	cable := stats.Mean(perScheme["cable"])
	cpack := stats.Mean(perScheme["cpack"])
	t.Set("cable mean ratio", "value", cable)
	t.Set("cpack mean ratio", "value", cpack)
	t.Set("cable vs cpack", "value", cable/cpack)
	t.Set("gzip mean ratio", "value", stats.Mean(perScheme["gzip"]))
	t.Set("lbe256 mean ratio", "value", stats.Mean(perScheme["lbe256"]))
	t.Set("bdi mean ratio", "value", stats.Mean(perScheme["bdi"]))
	return &Result{ID: "headline", Table: t, Notes: []string{
		"paper: CABLE 8.2x vs CPACK 4.5x (1.82x relative); effective bandwidth 7.2x",
	}}, nil
}
