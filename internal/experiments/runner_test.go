package experiments

import (
	"strings"
	"sync/atomic"
	"testing"

	"cable/internal/fault"
)

func TestCellRun(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		var hits [37]int32
		var concurrent, peak int32
		cellRun(workers, len(hits), func(i int) {
			c := atomic.AddInt32(&concurrent, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
					break
				}
			}
			atomic.AddInt32(&hits[i], 1)
			atomic.AddInt32(&concurrent, -1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, h)
			}
		}
		if workers > 1 && int(peak) > workers {
			t.Fatalf("workers=%d: observed %d concurrent cells", workers, peak)
		}
	}
	cellRun(4, 0, func(int) { t.Fatal("fn called with n=0") })
}

func TestRunAllStreamOrder(t *testing.T) {
	// Paper-order delivery with a deliberately unfair worker pool: the
	// cheap experiment (tab3) finishes long before the expensive one,
	// but must still arrive in ids order.
	ids := []string{"fig21", "tab3"}
	opt := Options{Quick: true, Parallelism: 4}
	var got []string
	for sr := range RunAllStream(ids, opt) {
		if sr.Err != nil {
			t.Fatalf("%s: %v", sr.ID, sr.Err)
		}
		if sr.Elapsed <= 0 {
			t.Errorf("%s: non-positive elapsed %v", sr.ID, sr.Elapsed)
		}
		got = append(got, sr.ID)
	}
	if len(got) != len(ids) {
		t.Fatalf("got %d results, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("stream order %v, want %v", got, ids)
		}
	}
}

func TestRunAllErrors(t *testing.T) {
	results, err := RunAll([]string{"tab3", "nope"}, Options{Quick: true, Parallelism: 2})
	if err == nil {
		t.Fatal("unknown id should surface an error")
	}
	if results[0] == nil {
		t.Error("healthy experiment should still produce a result")
	}
	if results[1] != nil {
		t.Error("failed experiment should have a nil result")
	}
}

// TestParallelDeterminism is the ISSUE's acceptance gate: a driver run
// with a parallel worker pool must render byte-identical tables to a
// serial run — every cell seeds its own generators and rows are
// committed in loop order, so parallelism must be unobservable.
// fig11 covers the memory-link path, fig13 the multi-chip path.
func TestParallelDeterminism(t *testing.T) {
	for _, id := range []string{"fig11", "fig13"} {
		serial, err := Run(id, Options{Quick: true, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		parallel, err := Run(id, Options{Quick: true, Parallelism: 8})
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if s, p := serial.Table.String(), parallel.Table.String(); s != p {
			t.Errorf("%s: parallel table differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", id, s, p)
		}
	}
}

// TestParallelDeterminismUnderFault pins the same invariant with the
// link-fault layer armed: the fault pattern is keyed by payload content
// and seed, never by scheduling, so an 8-worker pool must corrupt
// exactly the same wire images — and hence render the same tables and
// notes — as a serial run, with the cell memo on or off. PR 4 proved
// this only via a ci/check.sh binary diff; this is the in-tree gate
// (ci/check.sh also runs it under GOMAXPROCS=2 -race).
func TestParallelDeterminismUnderFault(t *testing.T) {
	ids := []string{"fig11", "fig13"}
	fc := fault.Config{BitRate: 1e-4, TruncRate: 1e-5, Seed: 7}
	render := func(opt Options) []string {
		t.Helper()
		results, err := RunAll(ids, opt)
		if err != nil {
			t.Fatalf("RunAll(parallel=%d, nomemo=%v): %v", opt.Parallelism, opt.DisableCellMemo, err)
		}
		out := make([]string, len(results))
		for i, r := range results {
			out[i] = r.Table.String() + "\n" + strings.Join(r.Notes, "\n")
		}
		return out
	}
	base := render(Options{Quick: true, Parallelism: 1, Fault: fc})
	for _, par := range []int{2, 8} {
		for _, nomemo := range []bool{false, true} {
			got := render(Options{Quick: true, Parallelism: par, Fault: fc, DisableCellMemo: nomemo})
			for i := range base {
				if got[i] != base[i] {
					t.Errorf("%s: faulted run at parallel=%d nomemo=%v differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
						ids[i], par, nomemo, base[i], got[i])
				}
			}
		}
	}
}
