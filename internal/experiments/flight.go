package experiments

import (
	"fmt"
	"strings"

	"cable/internal/sim"
)

// This file names flight-recorder cells. Every simulation a driver
// runs with Options.Flight set registers one recorder in the Flight
// keyed by a human-readable prefix (simulator kind, benchmark, scheme)
// plus a truncated config digest. The digest part is what makes keys
// collision-free: two sweeps over the same benchmark with different
// cache sizes are different cells, and aliasing them would make the
// registered recorder's content depend on scheduling order. 48 digest
// bits over the few hundred distinct cells of a full report is far
// past birthday range.

func memLinkFlightKey(cfg sim.MemLinkConfig) string {
	d := cfg.Digest()
	return fmt.Sprintf("memlink/%s/%x", memLinkSourceLabel(cfg), d[:6])
}

// memLinkSourceLabel names the workload source of a memory-link cell
// for flight keys: benchmark list, spec name, or replayed captures.
func memLinkSourceLabel(cfg sim.MemLinkConfig) string {
	switch {
	case cfg.Workload != nil && len(cfg.Replay) > 0:
		return "spec:" + cfg.Workload.Name + ":replay"
	case cfg.Workload != nil:
		return "spec:" + cfg.Workload.Name
	case len(cfg.Replay) > 0:
		names := make([]string, len(cfg.Replay))
		for i, t := range cfg.Replay {
			names[i] = t.Header.Benchmark
		}
		return "replay:" + strings.Join(names, "+")
	default:
		return strings.Join(cfg.Benchmarks, "+")
	}
}

func timingFlightKey(cfg sim.TimingConfig) string {
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = "none"
	}
	d := cfg.Digest()
	return fmt.Sprintf("timing/%s/%s/%x", scheme, cfg.Benchmark, d[:6])
}

func multiChipFlightKey(cfg sim.MultiChipConfig) string {
	d := cfg.Digest()
	return fmt.Sprintf("multichip/%s/%x", cfg.Benchmark, d[:6])
}
