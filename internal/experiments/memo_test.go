package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cable/internal/obs"
	"cable/internal/sim"
)

// renderAll runs experiments from a clean slate (fresh registry and
// memo) and renders everything a report consumer sees: tables, notes,
// and the deterministic metrics dump.
func renderAll(t *testing.T, ids []string, opt Options) (string, []byte) {
	t.Helper()
	obs.Default().Reset()
	ResetCellMemo()
	results, err := RunAll(ids, opt)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, r := range results {
		fmt.Fprintf(&sb, "== %s ==\n%s\n", r.ID, r.Table.String())
		for _, n := range r.Notes {
			fmt.Fprintln(&sb, n)
		}
	}
	var buf bytes.Buffer
	if err := obs.Default().WriteJSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	return sb.String(), buf.Bytes()
}

// TestCellMemoBitIdentical is the memo's acceptance contract: report
// tables AND the deterministic `-metrics` dump are byte-identical with
// the cell cache enabled or disabled, serial or parallel. fig11/fig12
// share every cell and fig17 exercises the timing memo, so the enabled
// runs take real hits, not just cold misses.
func TestCellMemoBitIdentical(t *testing.T) {
	ids := []string{"fig11", "fig12", "fig17"}
	baseTables, baseMetrics := renderAll(t, ids, Options{Quick: true, Parallelism: 1, DisableCellMemo: true})

	// Memo-off parallel determinism is already covered by
	// TestMetricsDeterministicAcrossParallelism; the variants here pin
	// the memo-on runs against the memo-off baseline.
	variants := []Options{
		{Quick: true, Parallelism: 1},
		{Quick: true, Parallelism: 4},
	}
	for _, opt := range variants {
		name := fmt.Sprintf("parallel=%d memo=%v", opt.Parallelism, !opt.DisableCellMemo)
		tables, metrics := renderAll(t, ids, opt)
		if tables != baseTables {
			t.Errorf("%s: tables differ from serial memo-off run:\n--- got ---\n%s\n--- want ---\n%s", name, tables, baseTables)
		}
		if !bytes.Equal(metrics, baseMetrics) {
			t.Errorf("%s: deterministic metrics dump differs from serial memo-off run:\n--- got ---\n%s\n--- want ---\n%s", name, metrics, baseMetrics)
		}
	}
}

// TestCellMemoReuse pins the memo mechanics: a repeated cell computes
// once, requesters get equal-but-unaliased results, and the replayed
// metrics delta matches a direct run's contribution.
func TestCellMemoReuse(t *testing.T) {
	obs.Default().Reset()
	ResetCellMemo()
	cfg := sim.DefaultMemLinkConfig("gcc")
	cfg.AccessesPerProgram = 2000
	cfg.Chip.LLCBytes = 128 << 10
	cfg.Chip.L4Bytes = 512 << 10

	first, err := runMemLink(Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := obs.Default().Snapshot(false)

	second, err := runMemLink(Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if entries := memo.len(); entries != 1 {
		t.Fatalf("memo holds %d entries after two identical requests, want 1", entries)
	}
	if !reflect.DeepEqual(first.Total, second.Total) ||
		!reflect.DeepEqual(first.PerProgram, second.PerProgram) ||
		!reflect.DeepEqual(first.Toggles, second.Toggles) {
		t.Fatal("hit returned a result different from the computing miss")
	}
	// Requesters must not share mutable state.
	second.Total["tamper"] = first.Total["cable"]
	if _, leaked := first.Total["tamper"]; leaked {
		t.Fatal("memo handed out aliased result maps")
	}

	// The hit merged the same delta again: every simulation counter
	// doubles exactly.
	afterSecond := obs.Default().Snapshot(false)
	for name, v := range afterFirst.Counters {
		if got := afterSecond.Counters[name]; got != 2*v {
			t.Errorf("counter %s = %d after hit, want %d (2× first run)", name, got, 2*v)
		}
	}

	// The memo's own counters are volatile: visible in the live view
	// (`-http` serves Snapshot(true)), absent from the deterministic
	// dump a -nomemo run must reproduce.
	vol := obs.Default().Snapshot(true)
	if got := vol.Counters["experiments.cellmemo_hits"]; got != 1 {
		t.Errorf("volatile cellmemo_hits = %d, want 1", got)
	}
	if got := vol.Counters["experiments.cellmemo_misses"]; got != 1 {
		t.Errorf("volatile cellmemo_misses = %d, want 1", got)
	}
	if _, leaked := afterSecond.Counters["experiments.cellmemo_hits"]; leaked {
		t.Error("cellmemo counters must not appear in the deterministic dump")
	}

	// Disabling the memo must bypass, not consult, the cache.
	third, err := runMemLink(Options{DisableCellMemo: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if third.Chip == nil {
		t.Fatal("bypassed run should carry the live chip, not a slim memo copy")
	}
	if !reflect.DeepEqual(first.Total, third.Total) {
		t.Fatal("memoized and direct runs disagree")
	}
}
